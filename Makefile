# Build / verify / bench entry points. Everything is stdlib-only Go; the
# toolchain is the only dependency.

GO ?= go
BENCH_OUT ?= BENCH_gemm.json
BENCH_N ?= 1024
BENCH_WORKERS ?= 4

.PHONY: build test vet race crash-test cluster-test factor-smoke fuzz verify bench bench-check bench-kernels bench-server bench-factor serve serve-bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race subset covers the packages with real concurrency: the task
# runtime (work-stealing engine, fault tolerance), the trace shards and
# metrics instruments it updates from every worker, the performance models
# recorded from every worker while Save snapshots them, the dynamic
# descriptors, the parallel BLAS kernels, the registry/server/query stack
# behind pdlserved (copy-on-write snapshots, LRU query cache, shared query
# roots), and the cluster master/worker engine (event loop, ship goroutines,
# heartbeats) with its shared HTTP client.
race:
	$(GO) test -race ./internal/taskrt/... ./internal/trace/... ./internal/metrics/... ./internal/perfmodel/... ./internal/dynamic/... ./internal/blas/... ./internal/registry/... ./internal/server/... ./internal/query/... ./internal/cluster/... ./internal/client/...

# crash-test exercises the durability layer's recovery guarantees under the
# race detector: byte-granular journal truncation, corrupt-snapshot fallback,
# read-only degradation, bundle round-trips, and the HTTP-level restart and
# 503 contracts.
crash-test:
	$(GO) test -race -run 'CrashRecovery|TornAndCorrupt|AppendReplayTruncates|SnapshotRoundTrip|CorruptSnapshot|ReadOnly|FsyncdRecovery|Bundle|Import|Durable|JournalFailure|WALMetrics|DuplicateUpload' ./internal/registry/... ./internal/server/...

# cluster-test is the multi-process cluster smoke: it builds the real
# pdlserved + pdlworkerd binaries, registers two workers through the
# registry, runs a distributed tiled DGEMM master against them (verifying
# the merged cluster trace and the federated fleet metrics), and SIGKILLs
# one worker mid-flight to prove its tasks resubmit to the survivor with
# the numerical result intact. Set SMOKE_ARTIFACTS to a directory to keep
# the merged Chrome trace and the metrics snapshots (CI uploads them).
cluster-test:
	PDL_CLUSTER_SMOKE=1 PDL_SMOKE_ARTIFACTS=$(SMOKE_ARTIFACTS) $(GO) test -run TestClusterSmoke -v -timeout 300s ./internal/cluster/smoke

# fuzz runs a time-boxed exploration of the journal record decoder on top of
# the committed seed corpus (which plain `go test` already replays).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/registry

# factor-smoke is the Ext-K regression gate at smoke size: both tiled
# factorizations on both pools, every run numerically verified against the
# serial reference — it fails on a wrong factor or a broken DAG, fast.
factor-smoke:
	$(GO) run ./cmd/pdlbench -exp factor -n 256 -tile 64 -reps 1

# verify is the tier-1 gate: build, full tests, vet, race subset,
# crash/recovery suite, multi-process cluster smoke, factorization smoke.
verify: build test vet race crash-test cluster-test factor-smoke

# bench runs the Ext-I pipeline: the Go benchmark pass over the GEMM
# kernels, then the measured harness that writes $(BENCH_OUT) including the
# workers×n kernel scaling matrix (GOMAXPROCS pinned per point).
bench: bench-kernels
	$(GO) run ./cmd/pdlbench -exp gemm -gemmn $(BENCH_N) -workers $(BENCH_WORKERS) -matrix -out $(BENCH_OUT)

# bench-check re-measures the dispatch rows and compares them against the
# committed $(BENCH_OUT) baseline; exits nonzero when any scheduler's
# µs/task regresses beyond +15% (tune with `-tol`). CI runs it non-blocking.
bench-check:
	$(GO) run ./cmd/pdlbench -exp check -baseline $(BENCH_OUT)

bench-kernels:
	$(GO) test -run=^$$ -bench=Gemm -benchtime=1x .

# bench-server measures the pdlserved HTTP query path (cached vs uncached),
# so cache effectiveness shows up in the perf trajectory.
bench-server:
	$(GO) test -run=^$$ -bench=ServerQuery -benchtime=200x .

# bench-factor regenerates the committed Ext-K rows (tiled Cholesky + LU,
# ws vs dmda on homogeneous and 1-fast+3-slow pools).
bench-factor:
	$(GO) run ./cmd/pdlbench -exp factor -reps 2 -out BENCH_factor.json

# serve-bench is the Ext-L load harness: spin a loopback pdlserved, wait for
# /healthz, replay the query/predict/observe mix at swept concurrency, and
# write SERVE_bench.json with server-side p50/p99 per level.
serve-bench:
	@$(GO) build -o /tmp/pdlserved-bench ./cmd/pdlserved
	@/tmp/pdlserved-bench -addr 127.0.0.1:18080 & echo $$! > /tmp/pdlserved-bench.pid; \
	for i in $$(seq 1 50); do curl -fsS http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	$(GO) run ./cmd/pdlbench -exp serve -server http://127.0.0.1:18080 -out SERVE_bench.json; \
	rc=$$?; kill $$(cat /tmp/pdlserved-bench.pid); rm -f /tmp/pdlserved-bench.pid; exit $$rc

# serve runs the registry service locally with the example platforms loaded.
serve:
	$(GO) run ./cmd/pdlserved -addr :8080 -preload internal/pdlxml/testdata

clean:
	rm -f $(BENCH_OUT)
