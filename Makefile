# Build / verify / bench entry points. Everything is stdlib-only Go; the
# toolchain is the only dependency.

GO ?= go
BENCH_OUT ?= BENCH_gemm.json
BENCH_N ?= 1024
BENCH_WORKERS ?= 4

.PHONY: build test vet race verify bench bench-kernels clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race subset covers the packages with real concurrency: the task
# runtime (work-stealing engine, fault tolerance), the dynamic descriptors
# and the parallel BLAS kernels.
race:
	$(GO) test -race ./internal/taskrt/... ./internal/dynamic/... ./internal/blas/...

# verify is the tier-1 gate: build, full tests, vet, race subset.
verify: build test vet race

# bench runs the Ext-I pipeline: the Go benchmark pass over the GEMM
# kernels, then the measured harness that writes $(BENCH_OUT).
bench: bench-kernels
	$(GO) run ./cmd/pdlbench -exp gemm -gemmn $(BENCH_N) -workers $(BENCH_WORKERS) -out $(BENCH_OUT)

bench-kernels:
	$(GO) test -run=^$$ -bench=Gemm -benchtime=1x .

clean:
	rm -f $(BENCH_OUT)
