package repro

// The benchmark harness regenerates the paper's evaluation. One benchmark
// per figure/series plus the ablation experiments of DESIGN.md:
//
//	BenchmarkFigure5/*        — the paper's Figure 5 (three series)
//	BenchmarkSchedulers/*     — Ext-A scheduler ablation
//	BenchmarkTileSweep/*      — Ext-B granularity ablation
//	BenchmarkBandwidthSweep/* — Ext-C PCIe bandwidth ablation
//	BenchmarkCrossover/*      — Ext-D problem-size crossover
//	BenchmarkRealCPUScaling/* — Ext-E real-mode CPU scaling on this host
//	BenchmarkFaultTolerance   — Ext-H in-flight GPU loss and recovery
//	BenchmarkGemmKernels/*    — the raw BLAS substrate
//	BenchmarkToolchain/*      — PDL codec / query / mapping / translation costs
//
// Simulated benchmarks report the virtual makespan as the custom metric
// "sim_s/run" next to the usual wall-clock ns/op (which measures the cost of
// running the simulation itself).

import (
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/blas"
	"repro/internal/csrc"
	"repro/internal/discover"
	"repro/internal/experiments"
	"repro/internal/mapping"
	"repro/internal/pdlxml"
	"repro/internal/query"
	"repro/internal/registry"
	"repro/internal/repo"
	"repro/internal/server"
	"repro/internal/trace"
)

// benchN is the default simulated problem size. The paper uses N=8192; the
// simulation of that size costs a few hundred ms per run, so benchmarks use
// 2048 by default and the full size remains available via cmd/pdlbench.
const (
	benchN    = 2048
	benchTile = 512
)

func BenchmarkFigure5(b *testing.B) {
	for _, series := range experiments.Fig5Series {
		b.Run(series.Label, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				pl := discover.MustPlatform(series.Platform)
				rep, err := experiments.SimDGEMM(pl, benchN, benchTile, "dmda")
				if err != nil {
					b.Fatal(err)
				}
				makespan = rep.MakespanSeconds
			}
			b.ReportMetric(makespan, "sim_s/run")
		})
	}
}

func BenchmarkSchedulers(b *testing.B) {
	for _, sched := range []string{"eager", "dmda", "heft", "random"} {
		b.Run(sched, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				pl := discover.MustPlatform("xeon-2gpu")
				rep, err := experiments.SimDGEMM(pl, benchN, benchTile, sched)
				if err != nil {
					b.Fatal(err)
				}
				makespan = rep.MakespanSeconds
			}
			b.ReportMetric(makespan, "sim_s/run")
		})
	}
}

func BenchmarkTileSweep(b *testing.B) {
	for _, tile := range []int{256, 512, 1024} {
		b.Run(fmt.Sprint(tile), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				pl := discover.MustPlatform("xeon-2gpu")
				rep, err := experiments.SimDGEMM(pl, benchN, tile, "dmda")
				if err != nil {
					b.Fatal(err)
				}
				makespan = rep.MakespanSeconds
			}
			b.ReportMetric(makespan, "sim_s/run")
		})
	}
}

func BenchmarkBandwidthSweep(b *testing.B) {
	for _, factor := range []float64{0.25, 1, 4} {
		b.Run(fmt.Sprintf("%gx", factor), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.BandwidthSweep(benchN, benchTile, []float64{factor})
				if err != nil {
					b.Fatal(err)
				}
				fmt.Sscanf(res.Rows[0][2], "%f", &makespan)
			}
			b.ReportMetric(makespan, "sim_s/run")
		})
	}
}

func BenchmarkCrossover(b *testing.B) {
	for _, n := range []int{512, 2048, 4096} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Crossover([]int{n}, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicFailover(benchN, benchTile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultTolerance(b *testing.B) {
	var degradation float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultTolerance(benchN, benchTile, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[0] == "gpu-loss" {
				fmt.Sscanf(row[3], "%f", &degradation)
			}
		}
	}
	b.ReportMetric(degradation, "degradation_x")
}

func BenchmarkStencil(b *testing.B) {
	for _, platform := range []string{"xeon-cpu", "xeon-2gpu"} {
		b.Run(platform, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				pl := discover.MustPlatform(platform)
				rep, err := experiments.SimStencil(pl, 1<<22, 32, 16, "dmda")
				if err != nil {
					b.Fatal(err)
				}
				makespan = rep.MakespanSeconds
			}
			b.ReportMetric(makespan, "sim_s/run")
		})
	}
}

func BenchmarkRealCPUScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			pl := discover.MustPlatform("this-host")
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RealDGEMM(pl, 384, 96, workers, false); err != nil {
					b.Fatal(err)
				}
			}
			flops := blas.FlopsGEMM(384, 384, 384)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkGemmKernels(b *testing.B) {
	const n = 256
	a, bb := blas.NewMatrix(n, n), blas.NewMatrix(n, n)
	a.FillRandom(1)
	bb.FillRandom(2)
	kernels := map[string]func(c *blas.Matrix) error{
		"naive":           func(c *blas.Matrix) error { return blas.GemmNaive(a, bb, c) },
		"blocked":         func(c *blas.Matrix) error { return blas.GemmBlocked(a, bb, c, blas.DefaultBlock) },
		"packed":          func(c *blas.Matrix) error { return blas.GemmPacked(a, bb, c, blas.DefaultBlock) },
		"packed-parallel": func(c *blas.Matrix) error { return blas.GemmPackedParallel(a, bb, c, blas.DefaultBlock, 4) },
		"parallel":        func(c *blas.Matrix) error { return blas.GemmParallel(a, bb, c, blas.DefaultBlock, 0) },
	}
	for _, name := range []string{"naive", "blocked", "packed", "packed-parallel", "parallel"} {
		b.Run(name, func(b *testing.B) {
			run := kernels[name]
			c := blas.NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(blas.FlopsGEMM(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkGemmDispatch measures real-engine dispatch overhead per scheduler
// (Ext-I's A/B): a fork graph of 2000 no-op tasks on 4 workers, so the
// metric is queue traffic, not kernel time. The "ws+trace" variant repeats
// the work-stealing point with causal tracing enabled — its delta against
// "ws" is the tracing overhead — and "dmda" prices the model-driven
// push-time placement.
func BenchmarkGemmDispatch(b *testing.B) {
	for _, sched := range []string{"eager", "ws", "ws+trace", "dmda"} {
		b.Run(sched, func(b *testing.B) {
			var us, steals float64
			for i := 0; i < b.N; i++ {
				points, err := experiments.DispatchBench(2000, 4, 1, sched)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range points {
					if p.Scheduler == sched {
						us = p.MicrosPerTask
						steals = float64(p.Steals)
					}
				}
			}
			b.ReportMetric(us, "us/task")
			b.ReportMetric(steals, "steals")
		})
	}
}

// BenchmarkHeteroDispatch compares blind work-stealing against model-driven
// dmda placement on a skewed pool (one fast worker, three 20× slower ones)
// at realistic millisecond task granularity — the setting dmda exists for.
// The fast_share metric is the fraction of tasks the fast worker executed.
func BenchmarkHeteroDispatch(b *testing.B) {
	for _, sched := range []string{"ws", "dmda"} {
		b.Run(sched, func(b *testing.B) {
			var makespan, fastShare float64
			for i := 0; i < b.N; i++ {
				points, err := experiments.HeteroDispatchBench(120, 3, 1, sched)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range points {
					if p.Scheduler == sched {
						makespan = p.Seconds
						fastShare = p.FastShare
					}
				}
			}
			b.ReportMetric(makespan, "makespan_s")
			b.ReportMetric(fastShare, "fast_share")
		})
	}
}

// BenchmarkRealGemmTracing measures tracing overhead at realistic task
// granularity: the real-engine tiled DGEMM (384², 96² tiles) with and
// without causal tracing, identical code path either way. Tile kernels run
// for milliseconds, so the fixed per-event recording cost (~140ns, visible
// in BenchmarkGemmDispatch/ws+trace where tasks are no-ops) vanishes into
// the noise — the "off" vs "on" delta is the overhead a real workload pays
// for always-on tracing.
func BenchmarkRealGemmTracing(b *testing.B) {
	for _, name := range []string{"off", "on"} {
		traced := name == "on"
		b.Run(name, func(b *testing.B) {
			pl := discover.MustPlatform("this-host")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var tr *trace.Trace
				if traced {
					tr = trace.New()
				}
				if _, err := experiments.RealDGEMMWithTrace(pl, 384, 96, 4, false, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

const benchProgram = `#pragma cascabel task : x86
 : Ivecadd
 : vecadd01
 : (A:readwrite, B:read)
void vector_add(double *A, double *B) { }
int main() {
#pragma cascabel execute Ivecadd (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
}
`

func BenchmarkToolchain(b *testing.B) {
	b.Run("pdl-roundtrip", func(b *testing.B) {
		pl := discover.MustPlatform("xeon-2gpu")
		for i := 0; i < b.N; i++ {
			data, err := pdlxml.Marshal(pl)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pdlxml.Unmarshal(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-selector", func(b *testing.B) {
		pl := discover.MustPlatform("xeon-2gpu")
		for i := 0; i < b.N; i++ {
			if _, err := query.Select(pl, "//Worker[ARCHITECTURE=gpu]"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("preselect", func(b *testing.B) {
		r := repo.NewWithLibrary()
		pl := discover.MustPlatform("xeon-2gpu")
		for i := 0; i < b.N; i++ {
			if _, err := mapping.Preselect(r, repo.IfaceDGEMM, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("translate", func(b *testing.B) {
		pl := discover.MustPlatform("xeon-2gpu")
		for i := 0; i < b.N; i++ {
			prog, err := csrc.ParseProgram(benchProgram)
			if err != nil {
				b.Fatal(err)
			}
			r := repo.NewWithLibrary()
			if err := r.RegisterProgram(prog, repo.DefaultKernels()); err != nil {
				b.Fatal(err)
			}
			if _, err := mapping.PlanProgram(prog, r, pl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerQuery measures the pdlserved HTTP query path in-process
// (httptest): the cached series hits the registry's LRU of compiled query
// results, the uncached series disables it, so the gap between the two is
// the cache's contribution to the serving hot path.
func BenchmarkServerQuery(b *testing.B) {
	doc, err := pdlxml.Marshal(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		b.Fatal(err)
	}
	bench := func(b *testing.B, cacheSize int) {
		reg := registry.New(registry.WithCacheSize(cacheSize))
		if _, _, err := reg.Put("xeon-2gpu", doc); err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(server.New(server.Config{Registry: reg}).Handler())
		defer srv.Close()
		url := srv.URL + "/platforms/xeon-2gpu/pus?kind=worker&arch=gpu"
		client := srv.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		st := reg.CacheStats()
		b.ReportMetric(st.HitRatio(), "cache_hit_ratio")
	}
	b.Run("cached", func(b *testing.B) { bench(b, 256) })
	b.Run("uncached", func(b *testing.B) { bench(b, 0) })
}
