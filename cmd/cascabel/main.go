// Command cascabel is the source-to-source translator of the paper's case
// study: it takes an annotated serial task-based C program and a PDL
// platform description, performs task registration, static variant
// pre-selection and output generation, and either writes the generated
// program plus compile plan or directly executes the translated task graph
// on the runtime (simulated or real).
//
// Usage:
//
//	cascabel -in prog.c -platform xeon-2gpu -o outdir
//	cascabel -in prog.c -pdl custom.pdl.xml -plan
//	cascabel -in prog.c -platform xeon-2gpu -run -sched dmda -n 1048576
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/csrc"
	"repro/internal/discover"
	"repro/internal/mapping"
	"repro/internal/pdlxml"
	"repro/internal/repo"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cascabel:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cascabel", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		in        = fs.String("in", "", "annotated input program (required)")
		platform  = fs.String("platform", "", "catalog platform name")
		pdlFile   = fs.String("pdl", "", "PDL document (alternative to -platform)")
		outDir    = fs.String("o", "", "write generated program and compile plan into this directory")
		showPlan  = fs.Bool("plan", false, "print the mapping summary and compile plan")
		doRun     = fs.Bool("run", false, "execute the translated program on the task runtime")
		mode      = fs.String("mode", "sim", "execution mode with -run: sim or real")
		sched     = fs.String("sched", "dmda", "scheduler with -run")
		n         = fs.Int("n", 1<<20, "vector length for distributed arguments with -run")
		pieces    = fs.Int("pieces", 0, "task decomposition width with -run (0 = one per unit)")
		showGantt = fs.Bool("trace", false, "with -run: print a per-unit execution timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in <program.c>")
	}
	var pl *core.Platform
	switch {
	case *platform != "" && *pdlFile != "":
		return fmt.Errorf("use either -platform or -pdl, not both")
	case *platform != "":
		p, err := discover.Platform(*platform)
		if err != nil {
			return err
		}
		pl = p
	case *pdlFile != "":
		p, err := pdlxml.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		pl = p
	default:
		return fmt.Errorf("missing target: pass -platform <name> or -pdl <file>")
	}

	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	prog, err := csrc.ParseProgram(string(src))
	if err != nil {
		return err
	}
	repository := repo.NewWithLibrary()
	if err := repository.RegisterProgram(prog, repo.DefaultKernels()); err != nil {
		return err
	}
	plan, err := mapping.PlanProgram(prog, repository, pl)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, plan.Summary())

	if *showPlan {
		fmt.Fprint(stdout, codegen.CompilePlan(plan))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		pdlPath := filepath.Join(*outDir, pl.Name+".pdl.xml")
		if err := pdlxml.WriteFile(pdlPath, pl); err != nil {
			return err
		}
		goSrc, err := codegen.GenerateGo(plan, codegen.GenOptions{
			PlatformFile: pl.Name + ".pdl.xml",
			Scheduler:    *sched,
		})
		if err != nil {
			return err
		}
		goPath := filepath.Join(*outDir, "main_generated.go")
		if err := os.WriteFile(goPath, goSrc, 0o644); err != nil {
			return err
		}
		cSrc, err := codegen.GenerateC(plan)
		if err != nil {
			return err
		}
		cPath := filepath.Join(*outDir, "main_generated.c")
		if err := os.WriteFile(cPath, cSrc, 0o644); err != nil {
			return err
		}
		planPath := filepath.Join(*outDir, "compile.plan")
		if err := os.WriteFile(planPath, []byte(codegen.CompilePlan(plan)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s, %s, %s, %s\n", goPath, cPath, planPath, pdlPath)
	}
	if *doRun {
		m := taskrt.Sim
		execArgs := map[string]any{}
		switch *mode {
		case "sim":
			for _, site := range plan.Sites {
				for _, arg := range site.Site.Call.Args {
					execArgs[arg] = codegen.SimVector{N: *n}
				}
			}
		case "real":
			m = taskrt.Real
			for _, site := range plan.Sites {
				for _, arg := range site.Site.Call.Args {
					v := make(codegen.Vector, *n)
					for i := range v {
						v[i] = float64(i % 97)
					}
					execArgs[arg] = v
				}
			}
		default:
			return fmt.Errorf("unknown mode %q (sim or real)", *mode)
		}
		var tr *trace.Trace
		if *showGantt {
			tr = trace.New()
		}
		rep, err := codegen.Execute(plan, codegen.ExecOptions{
			Mode:      m,
			Scheduler: *sched,
			Args:      execArgs,
			Pieces:    *pieces,
			Trace:     tr,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rep.String())
		if tr != nil {
			fmt.Fprint(stdout, tr.Gantt(72))
		}
	}
	return nil
}
