package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const vecaddSrc = `#pragma cascabel task : x86
 : Ivecadd
 : vecadd01
 : (A:readwrite, B:read)
void vector_add(double *A, double *B) { }
int main() {
#pragma cascabel execute Ivecadd (A:BLOCK:N, B:BLOCK:N)
vector_add(A, B);
return 0;
}
`

func writeProgram(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vecadd.c")
	if err := os.WriteFile(path, []byte(vecaddSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTranslateToDirectory(t *testing.T) {
	in := writeProgram(t)
	outDir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-in", in, "-platform", "xeon-2gpu", "-o", outDir, "-plan"}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	// Mapping summary printed.
	if !strings.Contains(out.String(), "Ivecadd") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
	// Compile plan printed with -plan.
	if !strings.Contains(out.String(), "nvcc") {
		t.Fatalf("compile plan missing:\n%s", out.String())
	}
	// Artifacts written.
	for _, f := range []string{"main_generated.go", "main_generated.c", "compile.plan", "xeon-2gpu.pdl.xml"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	gen, err := os.ReadFile(filepath.Join(outDir, "main_generated.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gen), "DO NOT EDIT") {
		t.Fatal("generated file lacks header")
	}
}

func TestRunSimMode(t *testing.T) {
	in := writeProgram(t)
	var out bytes.Buffer
	err := run([]string{"-in", in, "-platform", "xeon-2gpu", "-run", "-n", "65536", "-pieces", "8"}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mode=sim") {
		t.Fatalf("report missing:\n%s", out.String())
	}
}

func TestRunRealMode(t *testing.T) {
	in := writeProgram(t)
	var out bytes.Buffer
	err := run([]string{"-in", in, "-platform", "xeon-cpu", "-run", "-mode", "real", "-n", "10000"}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mode=real") {
		t.Fatalf("report missing:\n%s", out.String())
	}
}

func TestCustomPDLFile(t *testing.T) {
	in := writeProgram(t)
	pdl := filepath.Join(t.TempDir(), "custom.pdl.xml")
	doc := `<Platform name="custom"><Master id="m" quantity="4"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property></PUDescriptor></Master></Platform>`
	if err := os.WriteFile(pdl, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", in, "-pdl", pdl}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "custom") {
		t.Fatalf("summary = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	in := writeProgram(t)
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -in must fail")
	}
	if err := run([]string{"-in", in}, &out); err == nil {
		t.Fatal("missing platform must fail")
	}
	if err := run([]string{"-in", in, "-platform", "x", "-pdl", "y"}, &out); err == nil {
		t.Fatal("conflicting platform flags must fail")
	}
	if err := run([]string{"-in", "nosuch.c", "-platform", "xeon-cpu"}, &out); err == nil {
		t.Fatal("missing input must fail")
	}
	if err := run([]string{"-in", in, "-platform", "xeon-cpu", "-run", "-mode", "quantum"}, &out); err == nil {
		t.Fatal("bad mode must fail")
	}
	// Program whose only annotation targets an unsatisfiable platform.
	// The interface name must not collide with the built-in library, which
	// would supply a matching fallback variant.
	badSrc := strings.ReplaceAll(strings.ReplaceAll(vecaddSrc, ": x86", ": cell"), "Ivecadd", "Icellonly")
	bad := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(bad, []byte(badSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad, "-platform", "xeon-cpu"}, &out); err == nil {
		t.Fatal("unmatchable program must fail")
	}
}
