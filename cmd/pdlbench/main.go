// Command pdlbench runs the evaluation harnesses: the paper's Figure 5 and
// the ablation experiments Ext-A..Ext-E documented in DESIGN.md, printing
// the same rows the paper (or EXPERIMENTS.md) reports.
//
// Usage:
//
//	pdlbench -exp fig5 [-n 8192] [-tile 1024] [-sched dmda]
//	pdlbench -exp sched|tiles|bw|crossover|failover|stencil|realcpu
//	pdlbench -exp faults [-n 4096] [-tile 1024] [-seed 1]
//	pdlbench -exp gemm [-gemmn 1024] [-workers 0] [-matrix] [-out BENCH_gemm.json] [-trace out.json]
//	pdlbench -exp cholesky|lu|factor [-n 1024] [-tile 128] [-slow 3] [-reps 3] [-out BENCH_factor.json]
//	pdlbench -exp serve -server http://127.0.0.1:8080 [-conc 4,16] [-requests 400] [-out SERVE_bench.json]
//	pdlbench -exp check -baseline BENCH_gemm.json [-tol 0.15]
//	pdlbench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		exp      = fs.String("exp", "fig5", "experiment: fig5, sched, tiles, bw, crossover, failover, stencil, realcpu, faults, gemm, cholesky, lu, factor, serve, cluster or all")
		n        = fs.Int("n", 8192, "matrix extent")
		tile     = fs.Int("tile", 1024, "tile extent")
		sched    = fs.String("sched", "dmda", "scheduler for fig5/tiles and the gemm -trace real-engine run (eager, ws or dmda)")
		realN    = fs.Int("realn", 768, "matrix extent for the real-mode experiment")
		seed     = fs.Int64("seed", 1, "fault-plan seed for the faults experiment")
		gemmN    = fs.Int("gemmn", 1024, "matrix extent for the gemm kernel bench")
		workers  = fs.Int("workers", 0, "worker count for the gemm bench (0 = GOMAXPROCS)")
		out      = fs.String("out", "", "write the gemm bench as JSON to this path (e.g. BENCH_gemm.json)")
		traceTo  = fs.String("trace", "", "gemm only: run a traced real-mode tiled DGEMM and write the Chrome trace here (open in Perfetto)")
		matrix   = fs.Bool("matrix", false, "gemm only: add the workers×n kernel scaling matrix (2/4/8 workers, n up to 4096)")
		procs    = fs.Int("gomaxprocs", 0, "set GOMAXPROCS explicitly for the harness (0 = NumCPU); recorded in the bench output")
		baseline = fs.String("baseline", "BENCH_gemm.json", "check only: committed bench baseline to compare against")
		tol      = fs.Float64("tol", 0.15, "check only: regression threshold as a fraction (0.15 = +15%)")
		slow     = fs.Int("slow", 3, "cholesky/lu/factor: slow-worker count of the skewed 1-fast+N-slow pool")
		reps     = fs.Int("reps", 3, "cholesky/lu/factor: repetitions per timed row (best kept)")
		servURL  = fs.String("server", "", "serve only: base URL of the live pdlserved instance to replay against")
		concCSV  = fs.String("conc", "4,16", "serve only: comma-separated concurrency levels")
		requests = fs.Int("requests", 400, "serve only: requests replayed per concurrency level")
		nodes    = fs.String("nodes", "", "cluster only: comma-separated pdlworkerd base URLs (empty = spawn loopback workers)")
		nproc    = fs.Int("inprocess", 2, "cluster only: loopback worker count when -nodes is empty")
		pprofOn  = fs.String("pprof", "", "serve /debug/pprof, /debug/trace and /metrics on this address while the harness runs ('' = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Pin GOMAXPROCS explicitly: inherited settings (cgroup shims, test
	// runners) silently skewed earlier bench captures. The effective value is
	// recorded in the gemm bench JSON either way.
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	} else {
		runtime.GOMAXPROCS(runtime.NumCPU())
	}
	if *pprofOn != "" {
		// The master-side observability surface: the live merged cluster
		// trace (for -exp cluster), process metrics and pprof, so a long
		// harness run can be watched and profiled while it executes.
		ln, err := net.Listen("tcp", *pprofOn)
		if err != nil {
			return err
		}
		defer ln.Close()
		go http.Serve(ln, cluster.DebugHandler())
		fmt.Fprintf(stdout, "observability: http://%s (/debug/trace, /metrics, /debug/pprof/)\n", ln.Addr())
	}
	runOne := func(name string) error {
		var res *experiments.Result
		var err error
		switch name {
		case "fig5":
			res, err = experiments.Figure5(experiments.Fig5Config{N: *n, Tile: *tile, Scheduler: *sched})
		case "sched":
			res, err = experiments.SchedulerSweep(*n, *tile, nil)
		case "tiles":
			res, err = experiments.TileSweep(*n, nil, *sched)
		case "bw":
			res, err = experiments.BandwidthSweep(*n, *tile, nil)
		case "crossover":
			res, err = experiments.Crossover(nil, *tile)
		case "failover":
			res, err = experiments.DynamicFailover(*n, *tile)
		case "stencil":
			res, err = experiments.StencilSweep(1<<24, 64, 32)
		case "realcpu":
			res, err = experiments.RealCPUScaling(*realN, *realN/4, nil)
		case "faults":
			fn, ftile := *n, *tile
			if fn == 8192 && ftile == 1024 { // flag defaults target fig5; Ext-H's default is N=4096
				fn = 4096
			}
			res, err = experiments.FaultTolerance(fn, ftile, *seed)
		case "check":
			// Sub-microsecond dispatch costs are noisy on small or shared
			// hosts; best-of-7 keeps the ±15% threshold meaningful.
			rows, cerr := experiments.BenchCheck(*baseline, 7, *tol)
			if cerr != nil {
				return cerr
			}
			table, regressed := experiments.BenchCheckResult(rows, *tol)
			fmt.Fprintln(stdout, table.Table())
			if len(regressed) > 0 {
				return fmt.Errorf("bench-check: %d dispatch row(s) regressed beyond +%.0f%%: %v",
					len(regressed), *tol*100, regressed)
			}
			return nil
		case "cholesky", "lu", "factor":
			kinds := []string{name}
			if name == "factor" {
				kinds = []string{"cholesky", "lu"}
			}
			fn, ftile := *n, *tile
			if fn == 8192 && ftile == 1024 { // flag defaults target fig5; Ext-K's default is N=1024
				fn, ftile = 1024, 128
			}
			fw := *workers
			if fw <= 0 {
				fw = runtime.GOMAXPROCS(0)
			}
			data := &experiments.FactorBenchData{GoMaxProcs: runtime.GOMAXPROCS(0)}
			for _, kind := range kinds {
				res, rows, ferr := experiments.FactorExperiment(kind, fn, ftile, fw, *slow, *reps)
				if ferr != nil {
					return ferr
				}
				data.Rows = append(data.Rows, rows...)
				fmt.Fprintln(stdout, res.Table())
			}
			if *out != "" {
				if werr := data.WriteJSON(*out); werr != nil {
					return werr
				}
				fmt.Fprintf(stdout, "wrote %s\n", *out)
			}
			return nil
		case "serve":
			var conc []int
			for _, c := range strings.Split(*concCSV, ",") {
				if c = strings.TrimSpace(c); c != "" {
					v, cerr := strconv.Atoi(c)
					if cerr != nil {
						return fmt.Errorf("-conc: %q is not an integer", c)
					}
					conc = append(conc, v)
				}
			}
			var data *experiments.ServeBenchData
			res, data, err = experiments.ServeReplay(experiments.ServeConfig{
				Server: *servURL, Requests: *requests, Concurrency: conc,
			})
			if err == nil && *out != "" {
				if werr := data.WriteJSON(*out); werr != nil {
					return werr
				}
				fmt.Fprintf(stdout, "wrote %s\n", *out)
			}
		case "gemm":
			var data *experiments.GemmBenchData
			data, err = experiments.GemmBench(*gemmN, *workers, *matrix)
			if err == nil {
				res = data.Result()
				if *out != "" {
					if werr := data.WriteJSON(*out); werr != nil {
						return werr
					}
					fmt.Fprintf(stdout, "wrote %s\n", *out)
				}
				if *traceTo != "" {
					// A traced real-mode tiled DGEMM: per-worker lanes,
					// dependency arrows and steal arrows in one artefact.
					tr, rep, terr := experiments.TraceGemmRun(*realN, *realN/4, *workers, false, *sched)
					if terr != nil {
						return terr
					}
					if terr := tr.WriteChromeFile(*traceTo); terr != nil {
						return terr
					}
					fmt.Fprintf(stdout, "wrote %s (%d events, %d tasks, %d steals; load in https://ui.perfetto.dev)\n",
						*traceTo, tr.Len(), rep.Tasks, rep.Steals)
				}
			}
		case "cluster":
			var addrs []string
			if *nodes != "" {
				for _, a := range strings.Split(*nodes, ",") {
					if a = strings.TrimSpace(a); a != "" {
						addrs = append(addrs, a)
					}
				}
			}
			var tr *trace.Trace
			if *traceTo != "" {
				tr = trace.New()
			}
			res, err = experiments.ClusterDGEMM(experiments.ClusterConfig{
				N: 512, Tile: 128, Nodes: addrs, InProcess: *nproc, Trace: tr,
			})
			if err == nil && tr != nil {
				// Prefer the published merged timeline: master placement
				// instants plus every node's kernel spans on one time base.
				if merged := trace.Published(); merged != nil {
					tr = merged
				}
				if werr := tr.WriteChromeFile(*traceTo); werr != nil {
					return werr
				}
				fmt.Fprintf(stdout, "wrote %s (%d events; load in https://ui.perfetto.dev)\n", *traceTo, tr.Len())
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res.Table())
		return nil
	}
	if *exp == "all" {
		for _, name := range []string{"fig5", "sched", "tiles", "bw", "crossover", "failover", "stencil", "realcpu", "faults", "gemm"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}
