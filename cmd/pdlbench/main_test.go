package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig5Small(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-n", "1024", "-tile", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 5", "single", "starpu", "starpu+2gpu"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestOtherExperimentsSmall(t *testing.T) {
	for _, exp := range []string{"sched", "tiles", "bw", "crossover"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", exp, "-n", "1024", "-tile", "256"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "==") {
			t.Fatalf("%s produced no table", exp)
		}
	}
}

func TestRealCPUExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "realcpu", "-realn", "128"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Ext-E") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestFaultsExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "faults", "-n", "1024", "-tile", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Ext-H", "gpu-loss", "cpu-only", "real-verify", "blacklisted [dev0 dev1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "warp"}, &out); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
