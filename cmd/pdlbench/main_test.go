package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestFig5Small(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-n", "1024", "-tile", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 5", "single", "starpu", "starpu+2gpu"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestOtherExperimentsSmall(t *testing.T) {
	for _, exp := range []string{"sched", "tiles", "bw", "crossover"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", exp, "-n", "1024", "-tile", "256"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "==") {
			t.Fatalf("%s produced no table", exp)
		}
	}
}

func TestRealCPUExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "realcpu", "-realn", "128"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Ext-E") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestFaultsExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "faults", "-n", "1024", "-tile", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Ext-H", "gpu-loss", "cpu-only", "real-verify", "blacklisted [dev0 dev1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

// TestGemmBenchJSON smoke-tests the Ext-I pipeline end to end: the table
// renders, the -out artefact is written, and the JSON round-trips into the
// struct the harness serialises with both schedulers present.
func TestGemmBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_gemm.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "gemm", "-gemmn", "128", "-workers", "2", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ext-I", "kernel/packed", "dispatch/eager", "dispatch/ws"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bench experiments.GemmBenchData
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("BENCH_gemm.json does not parse: %v", err)
	}
	if bench.Experiment != "gemm-bench" || len(bench.Kernels) == 0 {
		t.Fatalf("unexpected bench contents: %+v", bench)
	}
	scheds := map[string]bool{}
	for _, d := range bench.Dispatch {
		scheds[d.Scheduler] = true
		if d.Seconds <= 0 || d.Tasks <= 0 {
			t.Errorf("dispatch point %+v has non-positive measurements", d)
		}
	}
	if !scheds["eager"] || !scheds["ws"] {
		t.Errorf("dispatch A/B incomplete, got %v", scheds)
	}
	for _, k := range bench.Kernels {
		if k.GFlops <= 0 {
			t.Errorf("kernel point %+v has non-positive GFLOP/s", k)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "warp"}, &out); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
