// Command pdlgen generates PDL platform descriptions: either one of the
// predefined catalog platforms (including the paper's Listing 1 node and the
// evaluation testbed) or a description of the current machine discovered via
// the host probe, optionally enriched with synthetic OpenCL device
// enumeration (the paper's Listing 2 content).
//
// Usage:
//
//	pdlgen -list
//	pdlgen -platform xeon-2gpu [-o out.pdl.xml]
//	pdlgen -discover [-gpus 2] [-concrete]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/pdlxml"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		list     = fs.Bool("list", false, "list catalog platforms")
		platform = fs.String("platform", "", "catalog platform name to emit")
		doProbe  = fs.Bool("discover", false, "probe this machine instead of using the catalog")
		gpus     = fs.Int("gpus", 0, "with -discover: attach N synthetic GPUs (GTX480/GTX285 alternating)")
		concrete = fs.Bool("concrete", false, "with -discover: attach runtime-derived (ocl:) properties")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range discover.CatalogNames() {
			fmt.Fprintf(stdout, "%-12s %s\n", name, discover.CatalogDoc(name))
		}
		return nil
	}
	var pl *core.Platform
	switch {
	case *platform != "" && *doProbe:
		return fmt.Errorf("use either -platform or -discover, not both")
	case *platform != "":
		p, err := discover.Platform(*platform)
		if err != nil {
			return err
		}
		pl = p
	case *doProbe:
		var devs []discover.Device
		for i := 0; i < *gpus; i++ {
			if i%2 == 0 {
				devs = append(devs, discover.GTX480())
			} else {
				devs = append(devs, discover.GTX285())
			}
		}
		p, err := discover.Generate(discover.Options{
			Name: "discovered", Devices: devs, Concrete: *concrete,
		})
		if err != nil {
			return err
		}
		pl = p
	default:
		return fmt.Errorf("nothing to do: pass -list, -platform <name> or -discover (see -h)")
	}
	if *out != "" {
		return pdlxml.WriteFile(*out, pl)
	}
	return pdlxml.Write(stdout, pl)
}
