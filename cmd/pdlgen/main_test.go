package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pdlxml"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gpgpu-node", "xeon-2gpu", "cell-blade"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestEmitCatalogPlatformToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-platform", "gpgpu-node"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`<Master id="0"`, `<Worker id="1"`, `type="rDMA"`} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Output reparses.
	if _, err := pdlxml.Unmarshal(out.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestEmitToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.pdl.xml")
	var out bytes.Buffer
	if err := run([]string{"-platform", "xeon-2gpu", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	pl, err := pdlxml.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Name != "xeon-2gpu" {
		t.Fatalf("name = %q", pl.Name)
	}
}

func TestDiscoverWithGPUs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-discover", "-gpus", "2", "-concrete"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "GeForce GTX 480") || !strings.Contains(s, "GeForce GTX 285") {
		t.Fatalf("devices missing:\n%s", s)
	}
	if !strings.Contains(s, "ocl:name") {
		t.Fatal("concrete properties missing")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no args must fail")
	}
	if err := run([]string{"-platform", "vax"}, &out); err == nil {
		t.Fatal("unknown platform must fail")
	}
	if err := run([]string{"-platform", "gpgpu-node", "-discover"}, &out); err == nil {
		t.Fatal("conflicting flags must fail")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("bad flag must fail")
	}
}
