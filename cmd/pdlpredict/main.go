// Command pdlpredict drives the pattern-keyed auto-tuning workflow of the
// paper's Figure 1: observe codelet execution times on one platform (here
// produced by the calibrated simulator), persist the pattern-keyed models,
// and later predict performance — and rank DGEMM implementation variants —
// for a different platform that was never measured.
//
// Usage:
//
//	pdlpredict -observe -platform xeon-2gpu -models models.json   # measure & save
//	pdlpredict -predict -platform gtx480 -models models.json -n 8192
//	pdlpredict -rank -platform gtx480 -models models.json -n 8192
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/discover"
	"repro/internal/experiments"
	"repro/internal/predict"
	"repro/internal/repo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlpredict", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		observe  = fs.Bool("observe", false, "run calibration workloads on the platform and record observations")
		doPred   = fs.Bool("predict", false, "predict DGEMM time on the platform from saved models")
		rank     = fs.Bool("rank", false, "rank DGEMM implementation variants for the platform")
		platform = fs.String("platform", "", "catalog platform name (required)")
		models   = fs.String("models", "", "model store JSON path (required)")
		n        = fs.Int("n", 8192, "matrix extent for -predict/-rank")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *platform == "" || *models == "" {
		return fmt.Errorf("usage: pdlpredict -observe|-predict|-rank -platform <name> -models <file.json>")
	}
	pl, err := discover.Platform(*platform)
	if err != nil {
		return err
	}
	tuner := predict.NewTuner()
	if _, err := os.Stat(*models); err == nil {
		if err := tuner.Store().Load(*models); err != nil {
			return err
		}
	}
	flopsOf := func(size int) float64 {
		return 2 * float64(size) * float64(size) * float64(size)
	}
	switch {
	case *observe:
		// Calibration sweep: the three library DGEMM variants at three
		// sizes, timed by the simulator on this platform's descriptor.
		for _, size := range []int{1024, 2048, 4096} {
			rep, err := experiments.SimDGEMM(pl, size, 512, "dmda")
			if err != nil {
				return err
			}
			// Attribute the measured makespan to the variant that dominated
			// the platform: cublas when GPUs ran tasks, goto otherwise.
			variant := "dgemm_goto"
			if rep.TasksOnArch("gpu") > rep.TasksOnArch("x86") {
				variant = "dgemm_cublas"
			}
			if err := tuner.Observe(pl, variant, flopsOf(size), rep.MakespanSeconds); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "observed %s n=%d: %.4fs (%s)\n", *platform, size, rep.MakespanSeconds, variant)
		}
		if err := tuner.Store().Save(*models); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved models to %s\n", *models)
		return nil
	case *doPred:
		for _, variant := range []string{"dgemm_cublas", "dgemm_goto"} {
			pred, err := tuner.Predict(pl, variant, flopsOf(*n))
			if err != nil {
				fmt.Fprintf(stdout, "%-14s no prediction (%v)\n", variant, err)
				continue
			}
			fmt.Fprintf(stdout, "%-14s predicted %.4fs via pattern %q (%d samples)\n",
				variant, pred.Seconds, pred.Pattern, pred.Samples)
		}
		return nil
	case *rank:
		ranked, err := tuner.RankVariants(repo.NewWithLibrary(), repo.IfaceDGEMM, pl, flopsOf(*n))
		if err != nil {
			return err
		}
		for i, rk := range ranked {
			if rk.Err != nil {
				fmt.Fprintf(stdout, "%d. %-14s (no observations)\n", i+1, rk.Variant.Name)
				continue
			}
			fmt.Fprintf(stdout, "%d. %-14s %.4fs via %q\n", i+1, rk.Variant.Name, rk.Prediction.Seconds, rk.Prediction.Pattern)
		}
		return nil
	}
	return fmt.Errorf("pass one of -observe, -predict or -rank")
}
