// Command pdlpredict drives the pattern-keyed auto-tuning workflow of the
// paper's Figure 1: observe codelet execution times on one platform (here
// produced by the calibrated simulator), persist the pattern-keyed models,
// and later predict performance — and rank DGEMM implementation variants —
// for a different platform that was never measured.
//
// Usage:
//
//	pdlpredict -observe -platform xeon-2gpu -models models.json   # measure & save
//	pdlpredict -predict -platform gtx480 -models models.json -n 8192
//	pdlpredict -rank -platform gtx480 -models models.json -n 8192
//	pdlpredict -observe -platform xeon-2gpu -server http://registry:8080
//	pdlpredict -predict -platform gtx480 -server http://registry:8080 -n 8192
//
// With -server the model store lives in a pdlserved registry instead of a
// local JSON file: -observe streams measurements to POST
// /platforms/{name}/observe and -predict/-rank query the server's
// pattern-keyed models, so several hosts share one tuning corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/discover"
	"repro/internal/experiments"
	"repro/internal/pdlxml"
	"repro/internal/predict"
	"repro/internal/repo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlpredict:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlpredict", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		observe  = fs.Bool("observe", false, "run calibration workloads on the platform and record observations")
		doPred   = fs.Bool("predict", false, "predict DGEMM time on the platform from saved models")
		rank     = fs.Bool("rank", false, "rank DGEMM implementation variants for the platform")
		platform = fs.String("platform", "", "catalog platform name (required)")
		models   = fs.String("models", "", "model store JSON path (required unless -server)")
		server   = fs.String("server", "", "pdlserved base URL holding the shared model store ('' = local -models file)")
		n        = fs.Int("n", 8192, "matrix extent for -predict/-rank")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *platform == "" || (*models == "" && *server == "") {
		return fmt.Errorf("usage: pdlpredict -observe|-predict|-rank -platform <name> (-models <file.json> | -server <url>)")
	}
	flopsOf := func(size int) float64 {
		return 2 * float64(size) * float64(size) * float64(size)
	}
	if *server != "" {
		return runServer(*server, *platform, *observe, *doPred, *rank, flopsOf(*n), stdout)
	}
	pl, err := discover.Platform(*platform)
	if err != nil {
		return err
	}
	tuner := predict.NewTuner()
	if _, err := os.Stat(*models); err == nil {
		if err := tuner.Store().Load(*models); err != nil {
			return err
		}
	}
	switch {
	case *observe:
		// Calibration sweep: the three library DGEMM variants at three
		// sizes, timed by the simulator on this platform's descriptor.
		for _, size := range []int{1024, 2048, 4096} {
			rep, err := experiments.SimDGEMM(pl, size, 512, "dmda")
			if err != nil {
				return err
			}
			// Attribute the measured makespan to the variant that dominated
			// the platform: cublas when GPUs ran tasks, goto otherwise.
			variant := "dgemm_goto"
			if rep.TasksOnArch("gpu") > rep.TasksOnArch("x86") {
				variant = "dgemm_cublas"
			}
			if err := tuner.Observe(pl, variant, flopsOf(size), rep.MakespanSeconds); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "observed %s n=%d: %.4fs (%s)\n", *platform, size, rep.MakespanSeconds, variant)
		}
		if err := tuner.Store().Save(*models); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved models to %s\n", *models)
		return nil
	case *doPred:
		for _, variant := range []string{"dgemm_cublas", "dgemm_goto"} {
			pred, err := tuner.Predict(pl, variant, flopsOf(*n))
			if err != nil {
				fmt.Fprintf(stdout, "%-14s no prediction (%v)\n", variant, err)
				continue
			}
			fmt.Fprintf(stdout, "%-14s predicted %.4fs via pattern %q (%d samples)\n",
				variant, pred.Seconds, pred.Pattern, pred.Samples)
		}
		return nil
	case *rank:
		ranked, err := tuner.RankVariants(repo.NewWithLibrary(), repo.IfaceDGEMM, pl, flopsOf(*n))
		if err != nil {
			return err
		}
		for i, rk := range ranked {
			if rk.Err != nil {
				fmt.Fprintf(stdout, "%d. %-14s (no observations)\n", i+1, rk.Variant.Name)
				continue
			}
			fmt.Fprintf(stdout, "%d. %-14s %.4fs via %q\n", i+1, rk.Variant.Name, rk.Prediction.Seconds, rk.Prediction.Pattern)
		}
		return nil
	}
	return fmt.Errorf("pass one of -observe, -predict or -rank")
}

// runServer performs the same three actions against a pdlserved registry:
// the model store lives server-side, keyed by the uploaded platform
// documents, so observations from many hosts pool into one corpus.
func runServer(base, platform string, observe, doPred, rank bool, flops float64, stdout io.Writer) error {
	ctl, err := client.New(base, client.WithRetry(2, 200*time.Millisecond))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	switch {
	case observe:
		pl, err := discover.Platform(platform)
		if err != nil {
			return err
		}
		// The observe endpoint models against the registered document, so
		// upload it first (idempotent PUT).
		xml, err := pdlxml.Marshal(pl)
		if err != nil {
			return err
		}
		if err := ctl.PutBytes(ctx, "/platforms/"+platform, "application/xml", xml); err != nil {
			return err
		}
		for _, size := range []int{1024, 2048, 4096} {
			rep, err := experiments.SimDGEMM(pl, size, 512, "dmda")
			if err != nil {
				return err
			}
			variant := "dgemm_goto"
			if rep.TasksOnArch("gpu") > rep.TasksOnArch("x86") {
				variant = "dgemm_cublas"
			}
			err = ctl.PostJSON(ctx, "/platforms/"+platform+"/observe", map[string]any{
				"codelet": variant,
				"size":    2 * float64(size) * float64(size) * float64(size),
				"seconds": rep.MakespanSeconds,
			}, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "observed %s n=%d: %.4fs (%s)\n", platform, size, rep.MakespanSeconds, variant)
		}
		fmt.Fprintf(stdout, "streamed observations to %s\n", ctl.Base())
		return nil
	case doPred:
		for _, variant := range []string{"dgemm_cublas", "dgemm_goto"} {
			var pred struct {
				Pattern string  `json:"pattern"`
				Seconds float64 `json:"seconds"`
				Samples int     `json:"samples"`
			}
			path := "/platforms/" + platform + "/predict?" + url.Values{
				"codelet": {variant}, "size": {strconv.FormatFloat(flops, 'f', -1, 64)},
			}.Encode()
			if err := ctl.GetJSON(ctx, path, &pred); err != nil {
				fmt.Fprintf(stdout, "%-14s no prediction (%v)\n", variant, err)
				continue
			}
			fmt.Fprintf(stdout, "%-14s predicted %.4fs via pattern %q (%d samples)\n",
				variant, pred.Seconds, pred.Pattern, pred.Samples)
		}
		return nil
	case rank:
		var out struct {
			Ranked []struct {
				Variant string  `json:"variant"`
				Seconds float64 `json:"seconds"`
				Pattern string  `json:"pattern"`
				Error   string  `json:"error"`
			} `json:"ranked"`
		}
		path := "/platforms/" + platform + "/rank?" + url.Values{
			"iface": {repo.IfaceDGEMM}, "size": {strconv.FormatFloat(flops, 'f', -1, 64)},
		}.Encode()
		if err := ctl.GetJSON(ctx, path, &out); err != nil {
			return err
		}
		for i, rk := range out.Ranked {
			if rk.Error != "" {
				fmt.Fprintf(stdout, "%d. %-14s (no observations)\n", i+1, rk.Variant)
				continue
			}
			fmt.Fprintf(stdout, "%d. %-14s %.4fs via %q\n", i+1, rk.Variant, rk.Seconds, rk.Pattern)
		}
		return nil
	}
	return fmt.Errorf("pass one of -observe, -predict or -rank")
}
