package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/discover"
	"repro/internal/pdlxml"
	"repro/internal/server"
)

func TestObservePredictRankWorkflow(t *testing.T) {
	models := filepath.Join(t.TempDir(), "models.json")
	var out bytes.Buffer

	// Observe on the GPU testbed and on the CPU box.
	if err := run([]string{"-observe", "-platform", "xeon-2gpu", "-models", models}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "saved models") {
		t.Fatalf("observe output = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-observe", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}

	// Predict on an unseen platform that shares patterns.
	out.Reset()
	if err := run([]string{"-predict", "-platform", "gtx480", "-models", models, "-n", "4096"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dgemm_cublas") || !strings.Contains(out.String(), "via pattern") {
		t.Fatalf("predict output = %q", out.String())
	}

	// Rank variants for the unseen platform.
	out.Reset()
	if err := run([]string{"-rank", "-platform", "gtx480", "-models", models}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1. ") {
		t.Fatalf("rank output = %q", out.String())
	}
}

// -server runs the same workflow against a pdlserved registry: observations
// stream to the shared store and predictions come back for platforms the
// client never measured locally.
func TestServerModeWorkflow(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	var out bytes.Buffer

	// Observe on two platforms; the command uploads each document itself.
	for _, pl := range []string{"xeon-2gpu", "xeon-cpu"} {
		out.Reset()
		if err := run([]string{"-observe", "-platform", pl, "-server", ts.URL}, &out); err != nil {
			t.Fatalf("%v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "streamed observations") {
			t.Fatalf("observe output = %q", out.String())
		}
	}

	// Register the unseen target platform, then predict and rank for it
	// using only the server-side corpus.
	xml, err := pdlxml.Marshal(discover.MustPlatform("gtx480"))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/platforms/gtx480", bytes.NewReader(xml))
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("registering gtx480: %s", resp.Status)
	}

	out.Reset()
	if err := run([]string{"-predict", "-platform", "gtx480", "-server", ts.URL, "-n", "4096"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dgemm_cublas") || !strings.Contains(out.String(), "via pattern") {
		t.Fatalf("predict output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-rank", "-platform", "gtx480", "-server", ts.URL, "-n", "4096"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1. ") {
		t.Fatalf("rank output = %q", out.String())
	}

	// An unregistered platform reports per-variant misses, like the local
	// no-observations path.
	out.Reset()
	if err := run([]string{"-predict", "-platform", "xeon-gtx480", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no prediction") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing flags must fail")
	}
	if err := run([]string{"-observe", "-platform", "vax", "-models", "m.json"}, &out); err == nil {
		t.Fatal("unknown platform must fail")
	}
	models := filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"-platform", "xeon-cpu", "-models", models}, &out); err == nil {
		t.Fatal("no action must fail")
	}
	// Predict without observations: the command reports per-variant misses
	// but does not error.
	out.Reset()
	if err := run([]string{"-predict", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no prediction") {
		t.Fatalf("output = %q", out.String())
	}
	// Rank without observations still lists matched variants (unranked).
	out.Reset()
	if err := run([]string{"-rank", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no observations") {
		t.Fatalf("output = %q", out.String())
	}
}
