package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestObservePredictRankWorkflow(t *testing.T) {
	models := filepath.Join(t.TempDir(), "models.json")
	var out bytes.Buffer

	// Observe on the GPU testbed and on the CPU box.
	if err := run([]string{"-observe", "-platform", "xeon-2gpu", "-models", models}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "saved models") {
		t.Fatalf("observe output = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-observe", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}

	// Predict on an unseen platform that shares patterns.
	out.Reset()
	if err := run([]string{"-predict", "-platform", "gtx480", "-models", models, "-n", "4096"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dgemm_cublas") || !strings.Contains(out.String(), "via pattern") {
		t.Fatalf("predict output = %q", out.String())
	}

	// Rank variants for the unseen platform.
	out.Reset()
	if err := run([]string{"-rank", "-platform", "gtx480", "-models", models}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1. ") {
		t.Fatalf("rank output = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing flags must fail")
	}
	if err := run([]string{"-observe", "-platform", "vax", "-models", "m.json"}, &out); err == nil {
		t.Fatal("unknown platform must fail")
	}
	models := filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"-platform", "xeon-cpu", "-models", models}, &out); err == nil {
		t.Fatal("no action must fail")
	}
	// Predict without observations: the command reports per-variant misses
	// but does not error.
	out.Reset()
	if err := run([]string{"-predict", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no prediction") {
		t.Fatalf("output = %q", out.String())
	}
	// Rank without observations still lists matched variants (unranked).
	out.Reset()
	if err := run([]string{"-rank", "-platform", "xeon-cpu", "-models", models}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no observations") {
		t.Fatalf("output = %q", out.String())
	}
}
