// Command pdlquery evaluates selector expressions and filter arguments
// against a PDL document: the query-API counterpart the paper positions
// next to hwloc and the OpenCL platform query functions.
//
// Usage:
//
//	pdlquery -f platform.pdl.xml '//Worker[ARCHITECTURE=gpu]'
//	pdlquery -f platform.pdl.xml kind=worker arch=gpu
//	pdlquery -f platform.pdl.xml kind=worker group=devset prop=VENDOR:Nvidia
//	pdlquery -f platform.pdl.xml -props '//Worker[@id=dev0]'
//	pdlquery -f platform.pdl.xml -groups
//	pdlquery -f platform.pdl.xml -route host,dev0
//	pdlquery -f platform.pdl.xml -tree
//
// Filter arguments use the same key=value DSL the pdlserved HTTP API accepts
// on /platforms/{name}/pus, so a query debugged here pastes directly into a
// URL (and vice versa). A single non-key=value argument is treated as a
// selector expression. Invalid filter arguments are all reported in one
// pass, not one at a time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlquery:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlquery", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		file   = fs.String("f", "", "PDL document to query (required)")
		props  = fs.Bool("props", false, "print descriptor properties of matched PUs")
		groups = fs.Bool("groups", false, "print the platform's logic groups")
		route  = fs.String("route", "", "print the interconnect route between two PU ids, comma separated")
		tree   = fs.Bool("tree", false, "print the platform hierarchy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("usage: pdlquery -f <file.pdl.xml> [selector | key=value ...]")
	}
	pl, err := pdlxml.ReadFile(*file)
	if err != nil {
		return err
	}
	switch {
	case *tree:
		fmt.Fprint(stdout, pl.Summary())
		return nil
	case *groups:
		for _, g := range pl.Groups() {
			ids := []string{}
			for _, pu := range pl.Group(g) {
				ids = append(ids, pu.ID)
			}
			fmt.Fprintf(stdout, "%s: %s\n", g, strings.Join(ids, ","))
		}
		return nil
	case *route != "":
		parts := strings.Split(*route, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-route needs exactly two PU ids, comma separated")
		}
		path, err := pl.Route(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		if len(path) == 0 {
			fmt.Fprintln(stdout, "(same PU)")
			return nil
		}
		for _, ic := range path {
			fmt.Fprintf(stdout, "%s %s -> %s\n", ic.Type, ic.From, ic.To)
		}
		return nil
	}
	matched, err := evaluate(pl, fs.Args())
	if err != nil {
		return err
	}
	for _, pu := range matched {
		fmt.Fprintln(stdout, pu)
		if *props {
			for _, p := range pu.Descriptor.Properties {
				fmt.Fprintf(stdout, "  %s\n", p)
			}
		}
	}
	fmt.Fprintf(stdout, "%d match(es)\n", len(matched))
	return nil
}

// evaluate runs either a single selector expression or a set of key=value
// DSL filters (the same vocabulary the pdlserved HTTP API accepts).
func evaluate(pl *core.Platform, args []string) ([]*core.PU, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("pass a selector, key=value filters, or -tree/-groups/-route")
	}
	// A single argument that starts with '/' (or carries no '=') is the
	// classic selector form; everything else is key=value DSL filters.
	if len(args) == 1 && (strings.HasPrefix(args[0], "/") || !strings.Contains(args[0], "=")) {
		return query.Select(pl, args[0])
	}
	// Otherwise: DSL filters. All invalid arguments are reported in one
	// pass via *query.FilterError.
	filters, err := query.ParseFilterArgs(args)
	if err != nil {
		if fe, ok := query.AsFilterError(err); ok {
			var b strings.Builder
			fmt.Fprintf(&b, "%d invalid filter argument(s):\n", len(fe.Problems))
			for _, p := range fe.Problems {
				fmt.Fprintf(&b, "  - %s\n", p)
			}
			return nil, fmt.Errorf("%s", strings.TrimSuffix(b.String(), "\n"))
		}
		return nil, err
	}
	q, err := filters.Apply(query.New(pl))
	if err != nil {
		return nil, err
	}
	return q.All(), nil
}
