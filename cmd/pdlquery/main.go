// Command pdlquery evaluates selector expressions and filter arguments
// against a PDL document: the query-API counterpart the paper positions
// next to hwloc and the OpenCL platform query functions.
//
// Usage:
//
//	pdlquery -f platform.pdl.xml '//Worker[ARCHITECTURE=gpu]'
//	pdlquery -f platform.pdl.xml kind=worker arch=gpu
//	pdlquery -f platform.pdl.xml kind=worker group=devset prop=VENDOR:Nvidia
//	pdlquery -f platform.pdl.xml -props '//Worker[@id=dev0]'
//	pdlquery -f platform.pdl.xml -groups
//	pdlquery -f platform.pdl.xml -route host,dev0
//	pdlquery -f platform.pdl.xml -tree
//	pdlquery -server http://registry:8080 -name xeon-2gpu kind=worker arch=gpu
//
// With -server the document is fetched from a pdlserved registry instead of
// a file; -f then names an optional local cache the fetch revalidates with
// If-None-Match, so repeated queries against an unchanged platform transfer
// no XML.
//
// Filter arguments use the same key=value DSL the pdlserved HTTP API accepts
// on /platforms/{name}/pus, so a query debugged here pastes directly into a
// URL (and vice versa). A single non-key=value argument is treated as a
// selector expression. Invalid filter arguments are all reported in one
// pass, not one at a time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdlquery:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlquery", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		file   = fs.String("f", "", "PDL document to query (with -server: optional local cache file)")
		server = fs.String("server", "", "pdlserved base URL to fetch the document from instead of a file")
		name   = fs.String("name", "", "platform name in the registry (required with -server)")
		props  = fs.Bool("props", false, "print descriptor properties of matched PUs")
		groups = fs.Bool("groups", false, "print the platform's logic groups")
		route  = fs.String("route", "", "print the interconnect route between two PU ids, comma separated")
		tree   = fs.Bool("tree", false, "print the platform hierarchy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pl *core.Platform
	var err error
	switch {
	case *server != "":
		if *name == "" {
			return fmt.Errorf("usage: pdlquery -server <url> -name <platform> [selector | key=value ...]")
		}
		pl, err = fetchPlatform(*server, *name, *file, stdout)
	case *file != "":
		pl, err = pdlxml.ReadFile(*file)
	default:
		return fmt.Errorf("usage: pdlquery -f <file.pdl.xml> | -server <url> -name <platform> [selector | key=value ...]")
	}
	if err != nil {
		return err
	}
	switch {
	case *tree:
		fmt.Fprint(stdout, pl.Summary())
		return nil
	case *groups:
		for _, g := range pl.Groups() {
			ids := []string{}
			for _, pu := range pl.Group(g) {
				ids = append(ids, pu.ID)
			}
			fmt.Fprintf(stdout, "%s: %s\n", g, strings.Join(ids, ","))
		}
		return nil
	case *route != "":
		parts := strings.Split(*route, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-route needs exactly two PU ids, comma separated")
		}
		path, err := pl.Route(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		if len(path) == 0 {
			fmt.Fprintln(stdout, "(same PU)")
			return nil
		}
		for _, ic := range path {
			fmt.Fprintf(stdout, "%s %s -> %s\n", ic.Type, ic.From, ic.To)
		}
		return nil
	}
	matched, err := evaluate(pl, fs.Args())
	if err != nil {
		return err
	}
	for _, pu := range matched {
		fmt.Fprintln(stdout, pu)
		if *props {
			for _, p := range pu.Descriptor.Properties {
				fmt.Fprintf(stdout, "  %s\n", p)
			}
		}
	}
	fmt.Fprintf(stdout, "%d match(es)\n", len(matched))
	return nil
}

// fetchPlatform pulls the named document from a pdlserved registry. When
// cache names a file, the fetch is conditional: the cached ETag (stored in a
// sidecar) rides along as If-None-Match and a 304 serves the cached bytes —
// the same revalidation flow the registry replicas use.
func fetchPlatform(base, name, cache string, stdout io.Writer) (*core.Platform, error) {
	c, err := client.New(base, client.WithRetry(2, 200*time.Millisecond))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var etag string
	sidecar := cache + ".etag"
	if cache != "" {
		if tag, err := os.ReadFile(sidecar); err == nil {
			etag = strings.TrimSpace(string(tag))
		}
	}
	data, newTag, notModified, err := c.GetBytesConditional(ctx, "/platforms/"+name, etag)
	if err != nil {
		return nil, err
	}
	if notModified {
		if data, err = os.ReadFile(cache); err != nil {
			return nil, fmt.Errorf("registry says cache is current but it is unreadable: %w", err)
		}
		fmt.Fprintf(stdout, "(cache hit: %s unchanged, ETag %s)\n", name, etag)
	} else if cache != "" {
		if err := os.WriteFile(cache, data, 0o644); err != nil {
			return nil, err
		}
		if newTag != "" {
			if err := os.WriteFile(sidecar, []byte(newTag), 0o644); err != nil {
				return nil, err
			}
		}
	}
	return pdlxml.Unmarshal(data)
}

// evaluate runs either a single selector expression or a set of key=value
// DSL filters (the same vocabulary the pdlserved HTTP API accepts).
func evaluate(pl *core.Platform, args []string) ([]*core.PU, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("pass a selector, key=value filters, or -tree/-groups/-route")
	}
	// A single argument that starts with '/' (or carries no '=') is the
	// classic selector form; everything else is key=value DSL filters.
	if len(args) == 1 && (strings.HasPrefix(args[0], "/") || !strings.Contains(args[0], "=")) {
		return query.Select(pl, args[0])
	}
	// Otherwise: DSL filters. All invalid arguments are reported in one
	// pass via *query.FilterError.
	filters, err := query.ParseFilterArgs(args)
	if err != nil {
		if fe, ok := query.AsFilterError(err); ok {
			var b strings.Builder
			fmt.Fprintf(&b, "%d invalid filter argument(s):\n", len(fe.Problems))
			for _, p := range fe.Problems {
				fmt.Fprintf(&b, "  - %s\n", p)
			}
			return nil, fmt.Errorf("%s", strings.TrimSuffix(b.String(), "\n"))
		}
		return nil, err
	}
	q, err := filters.Apply(query.New(pl))
	if err != nil {
		return nil, err
	}
	return q.All(), nil
}
