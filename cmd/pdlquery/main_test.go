package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/discover"
	"repro/internal/pdlxml"
	"repro/internal/server"
)

func fixtureFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.pdl.xml")
	if err := pdlxml.WriteFile(path, discover.MustPlatform("xeon-2gpu")); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelectorQuery(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "//Worker[ARCHITECTURE=gpu]"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dev0") || !strings.Contains(s, "dev1") {
		t.Fatalf("output = %q", s)
	}
	if !strings.Contains(s, "2 match(es)") {
		t.Fatalf("output = %q", s)
	}
}

func TestPropsFlag(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "-props", "//*[@id=dev0]"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GeForce GTX 480") {
		t.Fatalf("props missing:\n%s", out.String())
	}
}

func TestGroupsAndTree(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "-groups"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "devset: dev0,dev1") {
		t.Fatalf("groups = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-f", path, "-tree"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Master(id=host") {
		t.Fatalf("tree = %q", out.String())
	}
}

func TestRoute(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "-route", "host,dev0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PCIe host -> dev0") {
		t.Fatalf("route = %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-f", path, "-route", "host,host"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(same PU)") {
		t.Fatalf("route = %q", out.String())
	}
	if err := run([]string{"-f", path, "-route", "host"}, &out); err == nil {
		t.Fatal("route with one id must fail")
	}
	// Device-to-device routes stage through the host over the two PCIe links.
	out.Reset()
	if err := run([]string{"-f", path, "-route", "dev0,dev1"}, &out); err != nil {
		t.Fatalf("dev0->dev1 should route via host: %v", err)
	}
	if got := strings.Count(out.String(), "PCIe"); got != 2 {
		t.Fatalf("expected 2-hop route, got:\n%s", out.String())
	}
	if err := run([]string{"-f", path, "-route", "host,ghost"}, &out); err == nil {
		t.Fatal("route to unknown PU must fail")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -f must fail")
	}
	if err := run([]string{"-f", "nosuch.xml", "//Worker"}, &out); err == nil {
		t.Fatal("missing file must fail")
	}
	path := fixtureFile(t)
	if err := run([]string{"-f", path}, &out); err == nil {
		t.Fatal("missing selector must fail")
	}
	if err := run([]string{"-f", path, "///"}, &out); err == nil {
		t.Fatal("bad selector must fail")
	}
}

// -server fetches the document from a pdlserved registry; a second query
// with the same cache file revalidates via If-None-Match and hits the cache.
func TestServerModeWithConditionalCache(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	xml, err := pdlxml.Marshal(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/platforms/xeon-2gpu", bytes.NewReader(xml))
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("registering fixture: %s", resp.Status)
	}

	cache := filepath.Join(t.TempDir(), "cache.pdl.xml")
	var out bytes.Buffer
	args := []string{"-server", ts.URL, "-name", "xeon-2gpu", "-f", cache, "kind=worker", "arch=gpu"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 match(es)") {
		t.Fatalf("server query = %q", out.String())
	}
	if _, err := os.Stat(cache + ".etag"); err != nil {
		t.Fatalf("etag sidecar not written: %v", err)
	}

	out.Reset()
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cache hit") || !strings.Contains(out.String(), "2 match(es)") {
		t.Fatalf("revalidated query = %q", out.String())
	}

	// Server mode without a cache file still works (plain GET each time).
	out.Reset()
	if err := run([]string{"-server", ts.URL, "-name", "xeon-2gpu", "-tree"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Master(id=host") {
		t.Fatalf("tree = %q", out.String())
	}

	if err := run([]string{"-server", ts.URL, "kind=worker"}, &out); err == nil {
		t.Fatal("-server without -name must fail")
	}
	if err := run([]string{"-server", ts.URL, "-name", "ghost", "kind=worker"}, &out); err == nil {
		t.Fatal("unknown platform must fail")
	}
}

// The key=value DSL shares its parser with the pdlserved HTTP API.
func TestFilterDSL(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-f", path, "kind=worker", "arch=gpu"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dev0") || !strings.Contains(s, "dev1") || !strings.Contains(s, "2 match(es)") {
		t.Fatalf("output = %q", s)
	}
	out.Reset()
	if err := run([]string{"-f", path, "group=devset", "prop=ARCHITECTURE:gpu", "limit=1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 match(es)") {
		t.Fatalf("output = %q", out.String())
	}
	// A single key=value argument is DSL, not a selector.
	out.Reset()
	if err := run([]string{"-f", path, "kind=master"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 match(es)") {
		t.Fatalf("output = %q", out.String())
	}
}

// Satellite regression: every invalid filter argument is reported in one
// pass instead of bailing on the first.
func TestFilterDSLReportsAllErrors(t *testing.T) {
	path := fixtureFile(t)
	var out bytes.Buffer
	err := run([]string{"-f", path, "kind=banana", "bogus=1", "limit=x", "notkeyvalue", "arch=gpu"}, &out)
	if err == nil {
		t.Fatal("invalid filters must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "4 invalid filter argument(s)") {
		t.Fatalf("error does not aggregate: %q", msg)
	}
	for _, frag := range []string{"kind:", "bogus", "limit:", "notkeyvalue"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error %q missing %q", msg, frag)
		}
	}
	if strings.Contains(msg, "- arch") {
		t.Fatalf("valid filter reported as a problem: %q", msg)
	}
}
