// Command pdlserved serves the PDL platform registry over HTTP: upload and
// validate platform descriptions, evaluate the query DSL shared with
// pdlquery, record observations and get perfmodel-backed predictions, and
// scrape Prometheus-style metrics.
//
// Usage:
//
//	pdlserved -addr :8080
//	pdlserved -addr :8080 -preload internal/pdlxml/testdata
//	pdlserved -addr :8080 -rate 100 -burst 200 -max-body 1048576
//	pdlserved -addr :8080 -data-dir /var/lib/pdlserved -snapshot-every 1000
//	pdlserved export -data-dir /var/lib/pdlserved -out bundle.tar
//	pdlserved import -data-dir /var/lib/pdlserved-new -in bundle.tar
//
// With -data-dir set, every mutation is write-ahead journaled (fsync'd by
// default) and periodically compacted into snapshots; a restarted server
// replays snapshot + journal and comes back with identical versions, ETags
// and perfmodel history. The export/import subcommands move that state
// between air-gapped environments as a tar bundle.
//
// Endpoints:
//
//	PUT    /platforms/{name}           upload + validate PDL XML
//	GET    /platforms                  list stored platforms
//	GET    /platforms/{name}           canonical XML (ETag / If-None-Match)
//	DELETE /platforms/{name}           remove a platform
//	GET    /platforms/{name}/pus       query DSL: ?kind=worker&group=...&prop=...
//	GET    /platforms/{name}/predict   ?codelet=...&size=...
//	GET    /platforms/{name}/rank      ?iface=...&size=...
//	POST   /platforms/{name}/observe   {"codelet":..., "size":..., "seconds":...}
//	GET    /healthz                    liveness + store version
//	GET    /metrics                    Prometheus text format (+ federated taskrt_fleet_* series)
//	GET    /debug/trace                last published run trace (?format=chrome|jsonl)
//
// Fleet federation: with workers registered, pdlserved scrapes each leased
// worker's /metrics every -fleet-scrape interval and re-exports the
// taskrt_worker_* families on its own /metrics as node-labelled
// taskrt_fleet_* series — one scrape shows kernel latency across the whole
// cluster. Series for deregistered, expired or unreachable workers are
// removed, not frozen. -pprof mounts net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/predict"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/trace"

	// Register the task runtime's taskrt_* families in metrics.Default so
	// /metrics exposes runtime activity next to the pdlserved_* families
	// (net/http/pprof-style side-effect import; any in-process taskrt run —
	// embedded or future — reports through the same registry).
	_ "repro/internal/taskrt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdlserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "export":
			return runExport(args[1:])
		case "import":
			return runImport(args[1:])
		}
	}
	fs := flag.NewFlagSet("pdlserved", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		preload       = fs.String("preload", "", "directory of *.pdl.xml documents to load at boot")
		strictPreload = fs.Bool("strict-preload", false, "fail startup on any invalid preload file instead of logging and skipping it")
		cacheSize     = fs.Int("cache", 256, "query-result cache capacity (0 disables)")
		rate          = fs.Float64("rate", 0, "per-client request rate limit in req/s (0 disables)")
		burst         = fs.Float64("burst", 0, "rate-limit burst (default 2x rate)")
		maxBody       = fs.Int64("max-body", 4<<20, "maximum upload body size in bytes")
		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
		writeTimeout  = fs.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
		idleTimeout   = fs.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
		drain         = fs.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		accessLog     = fs.String("access-log", "-", "access log destination: '-' for stderr, a path, or '' to disable")
		traceFile     = fs.String("trace", "", "trace file (Chrome JSON or pdltrace JSONL) to serve at /debug/trace")
		dataDir       = fs.String("data-dir", "", "durability directory for the write-ahead journal and snapshots ('' = in-memory only)")
		snapshotEvery = fs.Int("snapshot-every", 1024, "compact a snapshot after this many journal records (0 disables automatic compaction)")
		fsync         = fs.Bool("fsync", true, "fsync the journal on every committed mutation")
		fleetEvery    = fs.Duration("fleet-scrape", server.DefaultFleetScrapeEvery, "interval for scraping leased workers' /metrics into the federated taskrt_fleet_* export (0 disables)")
		pprofOn       = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logDst io.Writer
	switch *accessLog {
	case "":
	case "-":
		logDst = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		logDst = f
	}

	if *traceFile != "" {
		tr, err := trace.ReadFile(*traceFile)
		if err != nil {
			return err
		}
		trace.Publish(tr)
		log.Printf("pdlserved: serving trace %s (%d events) at /debug/trace", *traceFile, tr.Len())
	}

	reg := registry.New(registry.WithCacheSize(*cacheSize))
	tuner := predict.NewTuner()

	var persist *registry.Persistence
	if *dataDir != "" {
		var err error
		persist, err = registry.OpenPersistence(*dataDir, reg, tuner, registry.PersistOptions{
			Fsync:         *fsync,
			SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", *dataDir, err)
		}
		defer persist.Close()
		rec := persist.Recovery()
		log.Printf("pdlserved: recovered %d platform(s) from %s (snapshot seq %d, %d journal record(s) replayed, torn tail: %v)",
			reg.Len(), *dataDir, rec.SnapshotSeq, rec.ReplayedRecords, rec.TornTail)
	}

	if *preload != "" {
		n, skipped, err := preloadDir(reg, persist, *preload, *strictPreload)
		if err != nil {
			return err
		}
		log.Printf("pdlserved: preloaded %d platform(s) from %s (%d skipped)", n, *preload, skipped)
	}

	srv := server.New(server.Config{
		Registry:     reg,
		Tuner:        tuner,
		Persist:      persist,
		MaxBodyBytes: *maxBody,
		RateLimit:    *rate,
		RateBurst:    *burst,
		AccessLog:    logDst,
	})

	if *fleetEvery > 0 {
		stopFleet := srv.StartFleetScrape(*fleetEvery)
		defer stopFleet()
		log.Printf("pdlserved: federating worker metrics every %s", *fleetEvery)
	}

	handler := srv.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, then drain
	// in-flight requests for up to -drain before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("pdlserved: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("pdlserved: shutting down, draining for up to %s", *drain)
	// Drain ordering: stop taking on worker leases first (new registrations
	// and heartbeat renewals 503 so the fleet fails over), let in-flight
	// requests — including /observe writes — complete under Shutdown, then
	// force the journal to stable storage before closing it. Without the
	// Sync, observations acknowledged under -fsync=false would ride the page
	// cache through exit.
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if persist != nil {
		if err := persist.Sync(); err != nil {
			log.Printf("pdlserved: journal sync on drain failed: %v", err)
		}
	}
	return <-errc
}

// preloadDir uploads every *.pdl.xml under dir into the registry, keyed by
// the file's base name without the .pdl.xml suffix. Invalid files are
// logged and skipped — one bad document must not keep the whole service
// down — unless strict is set, in which case the first failure aborts
// startup (for deployments that treat the preload set as authoritative).
// With a durability layer attached, preloaded documents are journaled like
// any other mutation; re-preloading an already-recovered document is a
// content-hash no-op and journals nothing.
func preloadDir(reg *registry.Registry, persist *registry.Persistence, dir string, strict bool) (loaded, skipped int, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pdl.xml"))
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		name := filepath.Base(p)
		name = name[:len(name)-len(".pdl.xml")]
		err := preloadOne(reg, persist, name, p)
		if err != nil {
			if strict {
				return loaded, skipped, fmt.Errorf("preload %s: %w (strict mode)", p, err)
			}
			skipped++
			log.Printf("pdlserved: skipping preload %s: %v", p, err)
			continue
		}
		loaded++
	}
	return loaded, skipped, nil
}

// preloadOne validates and commits a single preload file through the same
// write-ahead path PUT uses.
func preloadOne(reg *registry.Registry, persist *registry.Persistence, name, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prepared, err := reg.Prepare(name, data)
	if err != nil {
		return err
	}
	if cur, ok := reg.Get(name); ok && cur.ETag == prepared.ETag() {
		return nil // already recovered with identical content
	}
	if persist != nil {
		return persist.LogPut(name, prepared.XML(), func() { reg.CommitPrepared(prepared) })
	}
	reg.CommitPrepared(prepared)
	return nil
}

// runExport recovers the store from a data dir and writes it as a tar
// bundle (fresh compacted snapshot + manifest) for air-gapped promotion.
func runExport(args []string) error {
	fs := flag.NewFlagSet("pdlserved export", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "durability directory to export (required)")
	out := fs.String("out", "-", "bundle destination: a .tar path or '-' for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("export: -data-dir is required")
	}
	reg := registry.New()
	tuner := predict.NewTuner()
	persist, err := registry.OpenPersistence(*dataDir, reg, tuner, registry.PersistOptions{Fsync: false})
	if err != nil {
		return fmt.Errorf("export: open %s: %w", *dataDir, err)
	}
	defer persist.Close()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	man, err := persist.WriteBundle(w)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	log.Printf("pdlserved: exported %d platform(s), store version %d", man.Platforms, man.StoreVersion)
	return nil
}

// runImport seeds an empty data dir from a bundle and verifies it by
// running a full recovery over the imported snapshot.
func runImport(args []string) error {
	fs := flag.NewFlagSet("pdlserved import", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "empty durability directory to import into (required)")
	in := fs.String("in", "-", "bundle source: a .tar path or '-' for stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("import: -data-dir is required")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	man, err := registry.ImportBundle(r, *dataDir)
	if err != nil {
		return fmt.Errorf("import: %w", err)
	}
	// Prove the imported state recovers: open it exactly like serving would.
	reg := registry.New()
	persist, err := registry.OpenPersistence(*dataDir, reg, predict.NewTuner(), registry.PersistOptions{Fsync: false})
	if err != nil {
		return fmt.Errorf("import: verify recovery: %w", err)
	}
	persist.Close()
	log.Printf("pdlserved: imported %d platform(s) into %s (store version %d); serve with -data-dir %s",
		reg.Len(), *dataDir, man.StoreVersion, *dataDir)
	return nil
}
