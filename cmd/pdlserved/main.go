// Command pdlserved serves the PDL platform registry over HTTP: upload and
// validate platform descriptions, evaluate the query DSL shared with
// pdlquery, record observations and get perfmodel-backed predictions, and
// scrape Prometheus-style metrics.
//
// Usage:
//
//	pdlserved -addr :8080
//	pdlserved -addr :8080 -preload internal/pdlxml/testdata
//	pdlserved -addr :8080 -rate 100 -burst 200 -max-body 1048576
//
// Endpoints:
//
//	PUT    /platforms/{name}           upload + validate PDL XML
//	GET    /platforms                  list stored platforms
//	GET    /platforms/{name}           canonical XML (ETag / If-None-Match)
//	DELETE /platforms/{name}           remove a platform
//	GET    /platforms/{name}/pus       query DSL: ?kind=worker&group=...&prop=...
//	GET    /platforms/{name}/predict   ?codelet=...&size=...
//	GET    /platforms/{name}/rank      ?iface=...&size=...
//	POST   /platforms/{name}/observe   {"codelet":..., "size":..., "seconds":...}
//	GET    /healthz                    liveness + store version
//	GET    /metrics                    Prometheus text format
//	GET    /debug/trace                last published run trace (?format=chrome|jsonl)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/trace"

	// Register the task runtime's taskrt_* families in metrics.Default so
	// /metrics exposes runtime activity next to the pdlserved_* families
	// (net/http/pprof-style side-effect import; any in-process taskrt run —
	// embedded or future — reports through the same registry).
	_ "repro/internal/taskrt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdlserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdlserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		preload      = fs.String("preload", "", "directory of *.pdl.xml documents to load at boot")
		cacheSize    = fs.Int("cache", 256, "query-result cache capacity (0 disables)")
		rate         = fs.Float64("rate", 0, "per-client request rate limit in req/s (0 disables)")
		burst        = fs.Float64("burst", 0, "rate-limit burst (default 2x rate)")
		maxBody      = fs.Int64("max-body", 4<<20, "maximum upload body size in bytes")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
		drain        = fs.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		accessLog    = fs.String("access-log", "-", "access log destination: '-' for stderr, a path, or '' to disable")
		traceFile    = fs.String("trace", "", "trace file (Chrome JSON or pdltrace JSONL) to serve at /debug/trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logDst io.Writer
	switch *accessLog {
	case "":
	case "-":
		logDst = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		logDst = f
	}

	if *traceFile != "" {
		tr, err := trace.ReadFile(*traceFile)
		if err != nil {
			return err
		}
		trace.Publish(tr)
		log.Printf("pdlserved: serving trace %s (%d events) at /debug/trace", *traceFile, tr.Len())
	}

	reg := registry.New(registry.WithCacheSize(*cacheSize))
	if *preload != "" {
		n, err := preloadDir(reg, *preload)
		if err != nil {
			return err
		}
		log.Printf("pdlserved: preloaded %d platform(s) from %s", n, *preload)
	}

	srv := server.New(server.Config{
		Registry:     reg,
		MaxBodyBytes: *maxBody,
		RateLimit:    *rate,
		RateBurst:    *burst,
		AccessLog:    logDst,
	})

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, then drain
	// in-flight requests for up to -drain before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("pdlserved: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("pdlserved: shutting down, draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}

// preloadDir uploads every *.pdl.xml under dir into the registry, keyed by
// the file's base name without the .pdl.xml suffix.
func preloadDir(reg *registry.Registry, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pdl.xml"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return n, err
		}
		name := filepath.Base(p)
		name = name[:len(name)-len(".pdl.xml")]
		if _, _, err := reg.Put(name, data); err != nil {
			return n, fmt.Errorf("preload %s: %w", p, err)
		}
		n++
	}
	return n, nil
}
