package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/predict"
	"repro/internal/registry"
)

const testdataDir = "../../internal/pdlxml/testdata"

// mixedPreloadDir builds a preload directory with the real test platforms
// plus one file that cannot parse.
func mixedPreloadDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"gtx480", "cell-blade"} {
		data, err := os.ReadFile(filepath.Join(testdataDir, name+".pdl.xml"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".pdl.xml"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.pdl.xml"), []byte("<Platform"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestPreloadDirSkipsInvalidFiles(t *testing.T) {
	dir := mixedPreloadDir(t)
	reg := registry.New()
	loaded, skipped, err := preloadDir(reg, nil, dir, false)
	if err != nil {
		t.Fatalf("non-strict preload failed: %v", err)
	}
	if loaded != 2 || skipped != 1 {
		t.Fatalf("loaded=%d skipped=%d, want 2/1", loaded, skipped)
	}
	if _, ok := reg.Get("gtx480"); !ok {
		t.Fatal("valid platform missing after preload")
	}
}

func TestPreloadDirStrictFailsFast(t *testing.T) {
	dir := mixedPreloadDir(t)
	reg := registry.New()
	_, _, err := preloadDir(reg, nil, dir, true)
	if err == nil || !strings.Contains(err.Error(), "broken.pdl.xml") {
		t.Fatalf("strict preload err = %v, want failure naming broken.pdl.xml", err)
	}
}

// TestPreloadJournalsThroughPersistence checks the durable path: preloaded
// documents are journaled, and a second preload of identical content is a
// content-hash no-op (journal does not grow).
func TestPreloadJournalsThroughPersistence(t *testing.T) {
	dir := mixedPreloadDir(t)
	dataDir := t.TempDir()
	reg := registry.New()
	persist, err := registry.OpenPersistence(dataDir, reg, predict.NewTuner(), registry.PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer persist.Close()

	if _, _, err := preloadDir(reg, persist, dir, false); err != nil {
		t.Fatal(err)
	}
	size := persist.JournalSize()
	if size == 0 {
		t.Fatal("preload journaled nothing")
	}
	loaded, skipped, err := preloadDir(reg, persist, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	// Identical re-preload: counted as loaded (no error) but journals nothing.
	if loaded != 2 || skipped != 1 {
		t.Fatalf("re-preload loaded=%d skipped=%d, want 2/1", loaded, skipped)
	}
	if got := persist.JournalSize(); got != size {
		t.Fatalf("identical re-preload grew journal %d -> %d", size, got)
	}
}

// TestExportImportCommands drives the CLI subcommand plumbing end to end:
// populate a data dir, export to a tar file, import into a fresh dir, and
// open both to compare state.
func TestExportImportCommands(t *testing.T) {
	srcData := t.TempDir()
	reg := registry.New()
	persist, err := registry.OpenPersistence(srcData, reg, predict.NewTuner(), registry.PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gtx480", "xeon-2gpu"} {
		if err := preloadOne(reg, persist, name, filepath.Join(testdataDir, name+".pdl.xml")); err != nil {
			t.Fatal(err)
		}
	}
	wantVersion := reg.Version()
	wantETags := map[string]string{}
	for _, e := range reg.List() {
		wantETags[e.Platform.Name] = e.ETag
	}
	persist.Close()

	bundle := filepath.Join(t.TempDir(), "bundle.tar")
	if err := runExport([]string{"-data-dir", srcData, "-out", bundle}); err != nil {
		t.Fatalf("export: %v", err)
	}
	dstData := filepath.Join(t.TempDir(), "imported")
	if err := runImport([]string{"-data-dir", dstData, "-in", bundle}); err != nil {
		t.Fatalf("import: %v", err)
	}

	reg2 := registry.New()
	p2, err := registry.OpenPersistence(dstData, reg2, predict.NewTuner(), registry.PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if reg2.Version() != wantVersion || reg2.Len() != len(wantETags) {
		t.Fatalf("imported store version=%d len=%d, want %d/%d", reg2.Version(), reg2.Len(), wantVersion, len(wantETags))
	}
	for name, etag := range wantETags {
		e, ok := reg2.Get(name)
		if !ok || e.ETag != etag {
			t.Fatalf("imported %s etag drifted", name)
		}
	}

	// Importing into the now non-empty dir must refuse.
	if err := runImport([]string{"-data-dir", dstData, "-in", bundle}); err == nil {
		t.Fatal("import into non-empty dir succeeded")
	}
}
