// Command pdltrace inspects and converts runtime traces recorded by the
// task runtime (Config.Trace): summarize per-unit utilization and the
// critical path, convert between the Chrome trace_event JSON and pdltrace
// JSONL formats, and diff two traces A/B. Both input formats are sniffed, so
// any trace written by pdlbench -trace, examples/dgemm -trace or pdlserved's
// /debug/trace endpoint works everywhere a file is expected.
//
// Usage:
//
//	pdltrace summarize out.json
//	pdltrace convert out.json out.jsonl
//	pdltrace convert -to chrome out.jsonl perfetto.json
//	pdltrace diff before.json after.json
//	pdltrace merge -o cluster.json master.jsonl worker-a.jsonl worker-b.jsonl
//	pdltrace top -by node,codelet cluster.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pdltrace <summarize|convert|diff> [args]")
	}
	switch cmd := args[0]; cmd {
	case "summarize":
		return summarize(args[1:], stdout)
	case "convert":
		return convert(args[1:], stdout)
	case "diff":
		return diff(args[1:], stdout)
	case "merge":
		return merge(args[1:], stdout)
	case "top":
		return top(args[1:], stdout)
	default:
		return fmt.Errorf("unknown command %q (want summarize, convert, diff, merge or top)", cmd)
	}
}

// summarize prints run metadata, the critical path, and per-unit
// utilization with the steal/retry/failure breakdown.
func summarize(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdltrace summarize", flag.ContinueOnError)
	fs.SetOutput(stdout)
	gantt := fs.Bool("gantt", false, "also render the textual Gantt chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pdltrace summarize [-gantt] <trace-file>")
	}
	tr, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	makespan := tr.Makespan()
	units := tr.ByUnit()
	tasks, steals, retries, failures, transfers := 0, 0, 0, 0, 0
	for _, u := range units {
		tasks += u.Tasks
		steals += u.Steals
		retries += u.Retries
		failures += u.Failures
		transfers += u.Transfers
	}
	fmt.Fprintf(stdout, "trace: %d events, makespan %.6fs, %d task executions on %d units\n",
		tr.Len(), makespan, tasks, len(units))
	if meta := tr.Meta(); len(meta) > 0 {
		var pairs []string
		for _, k := range sortedKeys(meta) {
			pairs = append(pairs, fmt.Sprintf("%s=%s", k, meta[k]))
		}
		fmt.Fprintf(stdout, "meta:  %s\n", strings.Join(pairs, " "))
	}
	if steals+retries+failures+transfers > 0 {
		fmt.Fprintf(stdout, "flow:  %d steals, %d retries, %d failures, %d transfers\n",
			steals, retries, failures, transfers)
	}

	cp := tr.CriticalPath()
	if len(cp.TaskIDs) > 0 {
		frac := 0.0
		if makespan > 0 {
			frac = cp.Length / makespan * 100
		}
		fmt.Fprintf(stdout, "critical path: %d tasks, %.6fs (%.0f%% of makespan)\n",
			len(cp.TaskIDs), cp.Length, frac)
		for i, e := range cp.Events {
			if i == 8 && len(cp.Events) > 9 {
				fmt.Fprintf(stdout, "  ... %d more\n", len(cp.Events)-i)
				break
			}
			fmt.Fprintf(stdout, "  #%-5d %-10s %.6fs  %s\n", cp.TaskIDs[i], e.Unit, e.Duration(), e.Label)
		}
	}

	fmt.Fprintf(stdout, "%-12s %6s %10s %6s %7s %8s %9s\n",
		"unit", "tasks", "busy[s]", "util", "steals", "retries", "failures")
	for _, u := range units {
		util := 0.0
		if makespan > 0 {
			util = u.Busy / makespan * 100
		}
		fmt.Fprintf(stdout, "%-12s %6d %10.6f %5.0f%% %7d %8d %9d\n",
			u.Unit, u.Tasks, u.Busy, util, u.Steals, u.Retries, u.Failures)
	}
	if *gantt {
		fmt.Fprint(stdout, tr.Gantt(72))
	}
	return nil
}

// convert rewrites a trace into the other format (or an explicit -to).
func convert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdltrace convert", flag.ContinueOnError)
	fs.SetOutput(stdout)
	to := fs.String("to", "", "output format: chrome or jsonl (default: by output extension, .jsonl → jsonl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: pdltrace convert [-to chrome|jsonl] <in> <out>")
	}
	in, out := fs.Arg(0), fs.Arg(1)
	format := *to
	if format == "" {
		if strings.HasSuffix(out, ".jsonl") {
			format = "jsonl"
		} else {
			format = "chrome"
		}
	}
	tr, err := trace.ReadFile(in)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = tr.WriteChromeFile(out)
	case "jsonl":
		err = tr.WriteJSONLFile(out)
	default:
		return fmt.Errorf("unknown format %q (want chrome or jsonl)", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%s, %d events)\n", out, format, tr.Len())
	return nil
}

// merge combines per-node traces (pdlworkerd -trace outputs plus the
// master's) into one cluster-wide timeline: events keep or inherit their
// node identity, wall-clock epochs align the time bases when every input
// carries one, and the Chrome export lays each node out as its own process
// with per-unit lanes.
func merge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdltrace merge", flag.ContinueOnError)
	fs.SetOutput(stdout)
	out := fs.String("o", "merged.json", "output file (.jsonl → JSONL, otherwise Chrome JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: pdltrace merge [-o merged.json] <trace-file>...")
	}
	inputs := make([]*trace.Trace, 0, fs.NArg())
	for _, path := range fs.Args() {
		tr, err := trace.ReadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		inputs = append(inputs, tr)
	}
	merged, err := trace.Merge(inputs...)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*out, ".jsonl") {
		err = merged.WriteJSONLFile(*out)
	} else {
		err = merged.WriteChromeFile(*out)
	}
	if err != nil {
		return err
	}
	nodes := map[string]bool{}
	for _, e := range merged.Events() {
		if e.Node != "" {
			nodes[e.Node] = true
		}
	}
	fmt.Fprintf(stdout, "wrote %s (%d inputs, %d events, %d node lanes, makespan %.6fs)\n",
		*out, len(inputs), merged.Len(), len(nodes), merged.Makespan())
	return nil
}

// top aggregates a (usually merged cluster) trace's execution spans along
// chosen dimensions and prints the heaviest groups by busy time — the quick
// "where did the cluster's time go" view that a Perfetto load is overkill
// for.
func top(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdltrace top", flag.ContinueOnError)
	fs.SetOutput(stdout)
	by := fs.String("by", "node,codelet", "comma-separated grouping dimensions: node, unit, worker, codelet, label")
	n := fs.Int("n", 20, "rows to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pdltrace top [-by dims] [-n rows] <trace-file>")
	}
	var dims []string
	for _, d := range strings.Split(*by, ",") {
		switch d = strings.TrimSpace(d); d {
		case "node", "unit", "worker", "codelet", "label":
			dims = append(dims, d)
		case "":
		default:
			return fmt.Errorf("unknown dimension %q (want node, unit, worker, codelet or label)", d)
		}
	}
	if len(dims) == 0 {
		return fmt.Errorf("-by needs at least one dimension")
	}
	tr, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	type row struct {
		key           string
		tasks, failed int
		busy, longest float64
	}
	rows := map[string]*row{}
	totalBusy := 0.0
	for _, e := range tr.Events() {
		if e.Kind != trace.Task && e.Kind != trace.Failure {
			continue
		}
		parts := make([]string, len(dims))
		for i, d := range dims {
			parts[i] = dimValue(&e, d)
		}
		key := strings.Join(parts, " ")
		r, ok := rows[key]
		if !ok {
			r = &row{key: key}
			rows[key] = r
		}
		d := e.Duration()
		r.tasks++
		if e.Kind == trace.Failure {
			r.failed++
		}
		r.busy += d
		if d > r.longest {
			r.longest = d
		}
		totalBusy += d
	}
	if len(rows) == 0 {
		fmt.Fprintln(stdout, "no execution spans in trace")
		return nil
	}

	sorted := make([]*row, 0, len(rows))
	keyWidth := len(*by)
	for _, r := range rows {
		sorted = append(sorted, r)
		if len(r.key) > keyWidth {
			keyWidth = len(r.key)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].busy != sorted[j].busy {
			return sorted[i].busy > sorted[j].busy
		}
		return sorted[i].key < sorted[j].key
	})
	if *n > 0 && len(sorted) > *n {
		fmt.Fprintf(stdout, "top %d of %d groups (by busy time)\n", *n, len(sorted))
		sorted = sorted[:*n]
	}
	fmt.Fprintf(stdout, "%-*s %6s %6s %10s %9s %9s %6s\n",
		keyWidth, *by, "tasks", "failed", "busy[s]", "mean[ms]", "max[ms]", "share")
	for _, r := range sorted {
		share := 0.0
		if totalBusy > 0 {
			share = r.busy / totalBusy * 100
		}
		fmt.Fprintf(stdout, "%-*s %6d %6d %10.6f %9.3f %9.3f %5.1f%%\n",
			keyWidth, r.key, r.tasks, r.failed, r.busy,
			r.busy/float64(r.tasks)*1e3, r.longest*1e3, share)
	}
	return nil
}

// dimValue extracts one grouping dimension from an execution span. Missing
// values render as "-" so single-node traces still group cleanly.
func dimValue(e *trace.Event, dim string) string {
	switch dim {
	case "node":
		if e.Node == "" {
			return "-"
		}
		return e.Node
	case "unit":
		return e.Unit
	case "worker":
		return fmt.Sprintf("%d", e.Worker)
	case "codelet":
		return codeletOf(e.Label)
	default: // label
		return e.Label
	}
}

// codeletOf strips a task label like "dgemm(3,4)" or "C[0,1]+=A[0,0]*B[0,1]"
// to its kernel-family prefix, so per-tile instances group into one row.
func codeletOf(label string) string {
	if i := strings.IndexAny(label, "(["); i > 0 {
		return label[:i]
	}
	if label == "" {
		return "-"
	}
	return label
}

// diff compares two traces: totals first, then per-unit busy-time deltas.
func diff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdltrace diff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: pdltrace diff <before> <after>")
	}
	a, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := trace.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}

	type totals struct {
		makespan, critical               float64
		tasks, steals, retries, failures int
	}
	tally := func(t *trace.Trace) totals {
		var out totals
		out.makespan = t.Makespan()
		out.critical = t.CriticalPath().Length
		for _, u := range t.ByUnit() {
			out.tasks += u.Tasks
			out.steals += u.Steals
			out.retries += u.Retries
			out.failures += u.Failures
		}
		return out
	}
	ta, tb := tally(a), tally(b)

	rel := func(x, y float64) string {
		if x == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", (y-x)/x*100)
	}
	fmt.Fprintf(stdout, "%-14s %14s %14s %8s\n", "metric", "before", "after", "delta")
	row := func(name string, x, y float64, format string) {
		fmt.Fprintf(stdout, "%-14s "+format+" "+format+" %8s\n", name, x, y, rel(x, y))
	}
	row("makespan[s]", ta.makespan, tb.makespan, "%14.6f")
	row("critpath[s]", ta.critical, tb.critical, "%14.6f")
	row("tasks", float64(ta.tasks), float64(tb.tasks), "%14.0f")
	row("steals", float64(ta.steals), float64(tb.steals), "%14.0f")
	row("retries", float64(ta.retries), float64(tb.retries), "%14.0f")
	row("failures", float64(ta.failures), float64(tb.failures), "%14.0f")

	// Per-unit busy deltas for units present in both traces.
	busyA := map[string]float64{}
	for _, u := range a.ByUnit() {
		busyA[u.Unit] = u.Busy
	}
	printedHeader := false
	for _, u := range b.ByUnit() {
		before, ok := busyA[u.Unit]
		if !ok {
			continue
		}
		if !printedHeader {
			fmt.Fprintf(stdout, "%-14s %14s %14s %8s\n", "unit busy[s]", "before", "after", "delta")
			printedHeader = true
		}
		fmt.Fprintf(stdout, "%-14s %14.6f %14.6f %8s\n", u.Unit, before, u.Busy, rel(before, u.Busy))
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
