package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func writeSample(t *testing.T, path string) {
	t.Helper()
	tr := trace.New()
	tr.SetMeta("scheduler", "ws")
	tr.Record(trace.Event{Kind: trace.Task, Unit: "worker0", Label: "root", Start: 0, End: 1, TaskID: 0})
	tr.Record(trace.Event{Kind: trace.Steal, Unit: "worker1", Start: 1, End: 1, TaskID: 1, Worker: 1, From: "worker0"})
	tr.Record(trace.Event{Kind: trace.Task, Unit: "worker1", Label: "leaf", Start: 1, End: 3, TaskID: 1, ParentIDs: []int{0}, Worker: 1})
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	in := filepath.Join(t.TempDir(), "t.json")
	writeSample(t, in)
	var out strings.Builder
	if err := run([]string{"summarize", "-gantt", in}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"3 events", "2 task executions on 2 units",
		"scheduler=ws", "1 steals",
		"critical path: 2 tasks, 3.000000s (100% of makespan)",
		"worker0", "worker1", "gantt:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summarize lacks %q:\n%s", want, out.String())
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "t.json")
	writeSample(t, in)
	jsonl := filepath.Join(dir, "t.jsonl")
	back := filepath.Join(dir, "back.json")
	var out strings.Builder
	if err := run([]string{"convert", in, jsonl}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"convert", "-to", "chrome", jsonl, back}, &out); err != nil {
		t.Fatal(err)
	}
	a, err := trace.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Makespan() != b.Makespan() {
		t.Fatalf("round trip drifted: %d/%g vs %d/%g", a.Len(), a.Makespan(), b.Len(), b.Makespan())
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "t.json")
	writeSample(t, in)
	var out strings.Builder
	if err := run([]string{"diff", in, in}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"makespan[s]", "+0.0%", "unit busy[s]", "worker1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("diff lacks %q:\n%s", want, out.String())
		}
	}
}

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	writeNode := func(name string, epochMicros int64, path string) {
		tr := trace.New()
		tr.SetMeta(trace.MetaNode, name)
		tr.SetMeta(trace.MetaEpochMicros, fmt.Sprintf("%d", epochMicros))
		tr.Record(trace.Event{Kind: trace.Task, Unit: "worker0", Label: name + "-task", Start: 0, End: 0.5, TaskID: 0})
		if err := tr.WriteJSONLFile(path); err != nil {
			t.Fatal(err)
		}
	}
	inA := filepath.Join(dir, "a.jsonl")
	inB := filepath.Join(dir, "b.jsonl")
	writeNode("alpha", 1_000_000, inA)
	writeNode("beta", 1_500_000, inB)

	merged := filepath.Join(dir, "merged.jsonl")
	var out strings.Builder
	if err := run([]string{"merge", "-o", merged, inA, inB}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 inputs") || !strings.Contains(out.String(), "2 node lanes") {
		t.Fatalf("merge summary wrong:\n%s", out.String())
	}
	tr, err := trace.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("merged %d events, want 2", len(events))
	}
	// beta started 0.5s after alpha: its span must shift accordingly.
	var betaStart float64 = -1
	for _, e := range events {
		if e.Node == "beta" {
			betaStart = e.Start
		}
	}
	if betaStart != 0.5 {
		t.Fatalf("beta epoch not aligned: start %v, want 0.5", betaStart)
	}

	// Chrome output gets per-node process lanes.
	chrome := filepath.Join(dir, "merged.json")
	if err := run([]string{"merge", "-o", chrome, inA, inB}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"node:alpha"`, `"node:beta"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("chrome merge lacks %s process lane", want)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"summarize"},
		{"convert", "only-one"},
		{"diff", "one"},
		{"merge"},
		{"summarize", filepath.Join(t.TempDir(), "missing.json")},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("run(%v) succeeded; want error", args)
		}
	}
}
