// Command pdlvalidate checks a PDL document against the hierarchical
// machine model (structural rules: Masters at the top, Workers as leaves,
// valid interconnect endpoints, ...) and against the typed property schemas
// (units, value kinds, registered xsi:type subschemas).
//
// Exit status 0 means valid; 1 means the document violates the model;
// warnings about open-vocabulary properties never fail the run unless
// -strict is given.
//
// Usage:
//
//	pdlvalidate [-strict] file.pdl.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/pdlxml"
	"repro/internal/schema"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdlvalidate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdlvalidate", flag.ContinueOnError)
	fs.SetOutput(stdout)
	strict := fs.Bool("strict", false, "treat schema warnings as errors")
	schemas := fs.Bool("schemas", false, "list the registered property schemas and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schemas {
		reg := schema.Default()
		fmt.Fprintln(stdout, "base schema:")
		for _, s := range reg.BaseSpecs() {
			fmt.Fprintf(stdout, "  %-26s %-10s %s\n", s.Name, s.Kind, s.Doc)
		}
		for _, sub := range reg.Subschemas() {
			fmt.Fprintf(stdout, "subschema %s (v%s):\n", sub.QualifiedType(), sub.Version)
			names := make([]string, 0, len(sub.Specs))
			for n := range sub.Specs {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(stdout, "  %-26s %s\n", n, sub.Specs[n].Kind)
			}
		}
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pdlvalidate [-strict|-schemas] <file.pdl.xml>")
	}
	pl, err := pdlxml.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := schema.ValidatePlatform(pl, schema.Default())
	fmt.Fprint(stdout, rep.String())
	if !rep.OK() {
		return fmt.Errorf("%s: invalid platform description", fs.Arg(0))
	}
	if *strict && len(rep.Warnings) > 0 {
		return fmt.Errorf("%s: %d warning(s) in strict mode", fs.Arg(0), len(rep.Warnings))
	}
	return nil
}
