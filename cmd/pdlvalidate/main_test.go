package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/discover"
	"repro/internal/pdlxml"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.pdl.xml")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidDocument(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	path := filepath.Join(t.TempDir(), "x.pdl.xml")
	if err := pdlxml.WriteFile(path, pl); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("valid doc rejected: %v\n%s", err, out.String())
	}
}

func TestInvalidDocument(t *testing.T) {
	// A Worker at top level violates the machine model.
	path := writeTemp(t, `<Platform name="bad"><Master id="m"><Worker id="w"><Worker id="x"/></Worker></Master></Platform>`)
	var out bytes.Buffer
	err := run([]string{path}, &out)
	if err == nil {
		t.Fatal("invalid doc accepted")
	}
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("report = %q", out.String())
	}
}

func TestStrictModeFailsOnWarnings(t *testing.T) {
	path := writeTemp(t, `<Master id="m"><PUDescriptor><Property fixed="true"><name>MY_WEIRD_PROP</name><value>1</value></Property></PUDescriptor></Master>`)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("warnings must not fail by default: %v", err)
	}
	out.Reset()
	if err := run([]string{"-strict", path}, &out); err == nil {
		t.Fatal("strict mode must fail on warnings")
	}
}

func TestSchemasListing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-schemas"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"base schema:",
		"ARCHITECTURE",
		"subschema ocl:oclDevicePropertyType (v1.0):",
		"MAX_COMPUTE_UNITS",
		"subschema sim:simDevicePropertyType",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("schemas listing missing %q", want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no file must fail")
	}
	if err := run([]string{"nosuch.pdl.xml"}, &out); err == nil {
		t.Fatal("missing file must fail")
	}
}
