// Command pdlworkerd is a cluster execution node: it serves the cluster
// worker protocol (POST /v1/execute, GET /v1/info, GET /v1/trace,
// GET /healthz, GET /metrics) over the codelets in the shared cluster
// registry, and announces itself to a pdlserved instance — registering its
// PDL platform description, taking a worker lease, heartbeating it, and
// streaming execution observations into the server's perfmodels — so
// masters can discover execution nodes through the same registry that
// holds the platform descriptions they execute against.
//
// Usage:
//
//	pdlworkerd -addr 127.0.0.1:9091 -name worker-a
//	pdlworkerd -addr :9091 -server http://registry:8080 -platform xeon-gtx480
//	pdlworkerd -addr :9091 -slots 4 -trace worker-a.trace.jsonl
//	pdlworkerd -addr :9091 -pprof -fault-delay 50ms
//
// Without -server the daemon runs standalone (masters address it directly).
//
// Observability: kernel execution spans are always recorded, stamped with
// the node name and wall-clock epoch — masters collect them piggybacked on
// execute responses (or via GET /v1/trace) and merge them into one cluster
// timeline; -trace additionally writes them as pdltrace JSONL on shutdown.
// GET /metrics exposes the node's taskrt_worker_* families (kernel latency
// histograms, cache occupancy, inflight kernels) for pdlserved's fleet
// federation, GET /healthz reports cache and slot detail, and -pprof
// mounts net/http/pprof under /debug/pprof/. -fault-delay injects an
// artificial per-kernel slowdown — the gray failure used to exercise the
// master's straggler detector end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/experiments"
	"repro/internal/pdlxml"
	"repro/internal/perfmodel"
	"repro/internal/server"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdlworkerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdlworkerd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:9091", "listen address for the worker protocol")
		name      = fs.String("name", "", "node name (default: host name)")
		serverURL = fs.String("server", "", "pdlserved base URL to register with ('' = standalone)")
		platName  = fs.String("platform", "", "platform: a catalog name, a .pdl.xml path, or '' to probe the host")
		slots     = fs.Int("slots", 0, "concurrent executions (0 = probed host cores)")
		archsCSV  = fs.String("archs", "", "comma-separated executable architecture tags (default: probed host arch)")
		advertise = fs.String("advertise", "", "base URL masters should use to reach this node (default http://<addr>)")
		traceTo   = fs.String("trace", "", "write the node's execution trace as pdltrace JSONL here on exit")
		ttl       = fs.Duration("lease-ttl", server.DefaultWorkerTTL, "registry lease TTL the heartbeat cadence derives from (beat every ttl/3)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the worker listener")
		slowBy    = fs.Duration("fault-delay", 0, "inject this extra latency into every kernel (straggler/gray-failure injection)")
		traceCap  = fs.Int("trace-cap", 0, "max buffered execution spans before oldest-drop (0 = default cap, <0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	host := discover.ProbeHost()
	if *name == "" {
		h, err := os.Hostname()
		if err != nil || h == "" {
			h = "pdlworker"
		}
		*name = h
	}
	if *slots <= 0 {
		*slots = host.Cores
	}
	archs := []string{host.Arch}
	if *archsCSV != "" {
		archs = archs[:0]
		for _, a := range strings.Split(*archsCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				archs = append(archs, a)
			}
		}
	}

	// Resolve the node's platform description: catalog entry, XML file, or
	// a probe of the running host.
	pl, err := loadPlatform(*platName, *name, &host)
	if err != nil {
		return err
	}

	// Spans are always recorded: the master drains them over the protocol
	// to build the merged cluster timeline whether or not this node also
	// writes a JSONL file on exit.
	tr := trace.New()

	var faults *taskrt.FaultPlan
	if *slowBy < 0 {
		return fmt.Errorf("-fault-delay must be >= 0, got %s", *slowBy)
	}
	if *slowBy > 0 {
		faults = &taskrt.FaultPlan{Events: []taskrt.FaultEvent{{Unit: *name, Delay: slowBy.Seconds()}}}
		log.Printf("pdlworkerd: injecting %s of extra latency into every kernel (straggler injection)", *slowBy)
	}

	models := perfmodel.NewStore()
	var observe func(codelet, arch string, size, seconds float64)
	var observer *asyncObserver
	var ctl *client.Client
	if *serverURL != "" {
		if ctl, err = client.New(*serverURL); err != nil {
			return err
		}
		// Stream observations into the server's perfmodel for this platform
		// through a bounded async queue: a registry outage must never stall
		// an execution slot, so samples are shed (and counted) instead of
		// blocking once the backlog fills.
		observer = newAsyncObserver(ctl, "/platforms/"+pl.Name+"/observe")
		observe = observer.Observe
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:          *name,
		Codelets:      experiments.ClusterCodelets(),
		Archs:         archs,
		Slots:         *slots,
		Models:        models,
		OnObservation: observe,
		Trace:         tr,
		TraceCap:      *traceCap,
		Faults:        faults,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *advertise == "" {
		*advertise = "http://" + advertiseHost(ln.Addr().String())
	}
	handler := w.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		info := w.Info()
		log.Printf("pdlworkerd: node %s listening on %s (archs %v, %d slots, codelets %v)",
			*name, ln.Addr(), info.Archs, info.Workers, info.Codelets)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	if ctl != nil {
		go registerLoop(ctx, ctl, pl, w, *advertise, *ttl)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("pdlworkerd: shutting down")
	// Drop the lease eagerly (best-effort — expiry would reap it anyway),
	// stop accepting, then wait for in-flight executions.
	if ctl != nil {
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := ctl.Delete(dctx, "/workers/"+*name); err != nil && !client.IsStatus(err, http.StatusNotFound) {
			log.Printf("pdlworkerd: deregistering: %v", err)
		}
		cancel()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("pdlworkerd: shutdown: %v", err)
	}
	w.Wait()
	if observer != nil {
		if left := observer.Close(5 * time.Second); left > 0 {
			log.Printf("pdlworkerd: %d observations unsent at shutdown", left)
		}
		if d := observer.Dropped(); d > 0 {
			log.Printf("pdlworkerd: %d observations dropped (queue full) this run", d)
		}
	}
	if *traceTo != "" {
		if err := tr.WriteJSONLFile(*traceTo); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		log.Printf("pdlworkerd: wrote %s (%d events)", *traceTo, tr.Len())
	}
	return nil
}

// loadPlatform resolves -platform: an existing file path is parsed as PDL
// XML, a known catalog name builds that platform, and the empty string
// probes the running host. The platform is renamed to the node name so each
// worker's document registers distinctly.
func loadPlatform(spec, nodeName string, host *discover.HostInfo) (pl *platform, err error) {
	switch {
	case spec == "":
		p, err := discover.Generate(discover.Options{Name: nodeName, Host: host})
		if err != nil {
			return nil, err
		}
		return &platform{Platform: p, Name: p.Name}, nil
	default:
		if _, statErr := os.Stat(spec); statErr == nil {
			p, err := pdlxml.ReadFile(spec)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", spec, err)
			}
			return &platform{Platform: p, Name: p.Name}, nil
		}
		p, err := discover.Platform(spec)
		if err != nil {
			return nil, fmt.Errorf("unknown platform %q (not a file, not in catalog: %v)", spec, err)
		}
		return &platform{Platform: p, Name: p.Name}, nil
	}
}

// registerLoop keeps the node registered: upload the platform document,
// take the worker lease, then heartbeat at a third of the TTL,
// re-registering whenever the server restarted (404) or was draining (the
// client's retry/backoff already absorbs transient 503s).
func registerLoop(ctx context.Context, ctl *client.Client, pl *platform, w *cluster.Worker, advertise string, ttl time.Duration) {
	beat := ttl / 3
	if beat <= 0 {
		beat = 5 * time.Second
	}
	registered := false
	register := func() {
		xml, err := pdlxml.Marshal(pl.Platform)
		if err != nil {
			log.Printf("pdlworkerd: marshalling platform: %v", err)
			return
		}
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := ctl.PutBytes(rctx, "/platforms/"+pl.Name, "application/xml", xml); err != nil {
			log.Printf("pdlworkerd: uploading platform %s: %v", pl.Name, err)
			return
		}
		info := w.Info()
		err = ctl.PostJSON(rctx, "/workers/"+info.Name, server.WorkerInfo{
			ID:       info.Name,
			Addr:     advertise,
			Platform: pl.Name,
			Archs:    info.Archs,
			Workers:  info.Workers,
		}, nil)
		if err != nil {
			log.Printf("pdlworkerd: registering lease: %v", err)
			return
		}
		if !registered {
			log.Printf("pdlworkerd: registered with %s as %s (platform %s)", ctl.Base(), info.Name, pl.Name)
		}
		registered = true
	}
	register()
	t := time.NewTicker(beat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !registered {
			register()
			continue
		}
		bctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := ctl.PostJSON(bctx, "/workers/"+w.Info().Name+"/heartbeat", nil, nil)
		cancel()
		switch {
		case err == nil:
		case client.IsStatus(err, http.StatusNotFound):
			// Server lost the lease (restart or expiry): re-register.
			registered = false
			register()
		case ctx.Err() != nil:
			return
		default:
			log.Printf("pdlworkerd: heartbeat: %v", err)
		}
	}
}

// platform pairs a parsed platform with the registry name it is stored
// under.
type platform struct {
	Platform *core.Platform
	Name     string
}

// advertiseHost rewrites wildcard listen addresses into something another
// process can dial.
func advertiseHost(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
