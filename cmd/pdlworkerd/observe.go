package main

import (
	"context"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// observation is one kernel timing sample destined for the registry's
// perfmodel of this node's platform.
type observation struct {
	Codelet string  `json:"codelet"`
	Size    float64 `json:"size"`
	Seconds float64 `json:"seconds"`
}

// asyncObserver streams perfmodel observations to pdlserved without ever
// blocking the kernel execution path. Observe enqueues into a bounded
// channel and returns immediately; a single background goroutine posts the
// samples, each within its own timeout (the client's retry/backoff is the
// per-sample retry budget). When the registry is down or slow the queue
// fills and further samples are dropped and counted — losing telemetry is
// acceptable, stalling a kernel slot for the duration of an outage is not.
type asyncObserver struct {
	ctl      *client.Client
	path     string
	ch       chan observation
	done     chan struct{}
	dropped  atomic.Uint64
	sendFail atomic.Uint64
}

// observeQueueDepth bounds the in-flight observation backlog. At one sample
// per kernel execution this absorbs bursts while the sender catches up;
// past it the node is outrunning the registry and samples are shed.
const observeQueueDepth = 1024

// newAsyncObserver starts the sender goroutine. platformPath is the
// registry path observations are posted to, e.g. "/platforms/w1/observe".
func newAsyncObserver(ctl *client.Client, platformPath string) *asyncObserver {
	o := &asyncObserver{
		ctl:  ctl,
		path: platformPath,
		ch:   make(chan observation, observeQueueDepth),
		done: make(chan struct{}),
	}
	go o.send()
	return o
}

// Observe enqueues one sample. Never blocks: if the queue is full the
// sample is dropped and counted. Safe for concurrent use from every
// execution slot.
func (o *asyncObserver) Observe(codelet, arch string, size, seconds float64) {
	select {
	case o.ch <- observation{Codelet: codelet, Size: size, Seconds: seconds}:
	default:
		if n := o.dropped.Add(1); n == 1 || n%1000 == 0 {
			log.Printf("pdlworkerd: observation queue full, %d samples dropped so far", n)
		}
	}
}

// Dropped reports how many samples were shed because the queue was full.
func (o *asyncObserver) Dropped() uint64 { return o.dropped.Load() }

// SendFailures reports how many dequeued samples failed to post after the
// client's retry budget.
func (o *asyncObserver) SendFailures() uint64 { return o.sendFail.Load() }

func (o *asyncObserver) send() {
	defer close(o.done)
	for obs := range o.ch {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := o.ctl.PostJSON(ctx, o.path, obs, nil)
		cancel()
		if err != nil {
			// Best-effort: the sample is gone, the next one may land.
			if n := o.sendFail.Add(1); n == 1 || n%100 == 0 {
				log.Printf("pdlworkerd: streaming observation: %v (%d send failures so far)", err, n)
			}
		}
	}
}

// Close stops accepting samples and waits up to timeout for the queued
// backlog to flush. Returns the number of samples still unsent (queued or
// abandoned mid-flush) when the timeout expired, 0 on a clean drain.
func (o *asyncObserver) Close(timeout time.Duration) int {
	close(o.ch)
	select {
	case <-o.done:
		return 0
	case <-time.After(timeout):
		return len(o.ch) + 1
	}
}
