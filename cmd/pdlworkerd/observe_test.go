package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
)

// A registry outage must never stall the execution path: every Observe call
// has to return immediately even when the server black-holes the request
// (accepts the connection, never answers), with overflow shed and counted
// once the bounded queue fills.
func TestAsyncObserverNeverBlocksOnDeadRegistry(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Blackhole: hold the request until the client gives up (its
		// per-send timeout) or the test tears the connection down.
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer srv.Close()
	defer close(release)

	ctl, err := client.New(srv.URL, client.WithRetry(0, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	o := newAsyncObserver(ctl, "/platforms/w1/observe")

	const n = observeQueueDepth + 200
	start := time.Now()
	for i := 0; i < n; i++ {
		o.Observe("gemm", "x86", 1e6, 0.001)
	}
	elapsed := time.Since(start)

	// All sends enqueue or drop without touching the network; anywhere near
	// a single request timeout means Observe blocked on the dead server.
	if elapsed > time.Second {
		t.Fatalf("%d Observe calls against a black-holed registry took %s", n, elapsed)
	}
	// Queue depth + at most one sample in flight with the sender; the rest
	// must have been shed.
	if d := o.Dropped(); d < n-observeQueueDepth-1 {
		t.Fatalf("Dropped = %d, want >= %d", d, n-observeQueueDepth-1)
	}
	// Shutdown must not hang on the stuck in-flight send either.
	done := make(chan int, 1)
	go func() { done <- o.Close(50 * time.Millisecond) }()
	select {
	case left := <-done:
		if left == 0 {
			t.Fatal("Close reported a clean drain with a black-holed registry")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung past its timeout")
	}
	srv.CloseClientConnections()
}

// With a healthy registry the queued samples are all delivered, in order,
// with nothing dropped.
func TestAsyncObserverDeliversWhenHealthy(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/platforms/w1/observe" {
			t.Errorf("posted to %s", r.URL.Path)
		}
		var obs observation
		if err := json.NewDecoder(r.Body).Decode(&obs); err != nil {
			t.Errorf("bad observation body: %v", err)
		}
		if obs.Codelet != "gemm" || obs.Seconds <= 0 {
			t.Errorf("unexpected observation %+v", obs)
		}
		got.Add(1)
	}))
	defer srv.Close()

	ctl, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	o := newAsyncObserver(ctl, "/platforms/w1/observe")
	const n = 20
	for i := 0; i < n; i++ {
		o.Observe("gemm", "x86", float64(1+i), 0.002)
	}
	if left := o.Close(5 * time.Second); left != 0 {
		t.Fatalf("Close left %d samples unsent against a healthy registry", left)
	}
	if g := got.Load(); g != n {
		t.Fatalf("registry received %d observations, want %d", g, n)
	}
	if d, f := o.Dropped(), o.SendFailures(); d != 0 || f != 0 {
		t.Fatalf("healthy path dropped=%d sendFailures=%d, want 0/0", d, f)
	}
}
