// Package repro is a reproduction of "Explicit Platform Descriptions for
// Heterogeneous Many-Core Architectures" (Sandrieser, Benkner, Pllana; IPDPS
// Workshops 2011): a Platform Description Language (PDL) with its
// hierarchical Master/Hybrid/Worker machine model, an XML codec, typed
// property schemas, a query API, automatic descriptor generation, the
// Cascabel source-to-source translator for annotated task-based programs,
// and a StarPU-like heterogeneous task runtime with both a real goroutine
// execution engine and a calibrated discrete-event simulator standing in for
// the paper's GPU testbed.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/ directory
// for runnable end-to-end programs. The benchmark suite in bench_test.go
// regenerates the paper's Figure 5 and the ablation experiments.
package repro
