// Autotune demonstrates the paper's Figure 1 tool arrow ("selection of
// implementation variants, performance prediction"): execution times
// observed on one machine are attributed to the abstract architectural
// patterns that machine satisfies, and then predict performance — and rank
// implementation variants — on a machine never measured before, because the
// two machines share patterns.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"repro/internal/discover"
	"repro/internal/experiments"
	"repro/internal/predict"
	"repro/internal/repo"
)

func main() {
	tuner := predict.NewTuner()
	source := discover.MustPlatform("xeon-2gpu")

	// Phase 1: measure the DGEMM variants on the source machine via the
	// simulator (on a real deployment these would be real runs; the tuner
	// does not care where the seconds come from).
	fmt.Println("observing on", source.Name, "...")
	for _, n := range []int{1024, 2048, 4096} {
		flops := 2 * float64(n) * float64(n) * float64(n)
		rep, err := experiments.SimDGEMM(source, n, 512, "dmda")
		if err != nil {
			log.Fatal(err)
		}
		if err := tuner.Observe(source, "dgemm_cublas", flops, rep.MakespanSeconds); err != nil {
			log.Fatal(err)
		}
		cpu := discover.MustPlatform("xeon-cpu")
		cpuRep, err := experiments.SimDGEMM(cpu, n, 512, "dmda")
		if err != nil {
			log.Fatal(err)
		}
		if err := tuner.Observe(cpu, "dgemm_goto", flops, cpuRep.MakespanSeconds); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%d: gpu-platform %.4fs, cpu-platform %.4fs\n",
			n, rep.MakespanSeconds, cpuRep.MakespanSeconds)
	}

	// Phase 2: predict on an unseen machine (4 cores + one GTX480). It was
	// never measured, but it satisfies the same host-device/opencl patterns
	// as the source, so the pattern-keyed models transfer.
	target := discover.MustPlatform("gtx480")
	flops := 2 * float64(8192) * float64(8192) * float64(8192)
	pred, err := tuner.Predict(target, "dgemm_cublas", flops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprediction for %s, DGEMM 8192 via pattern %q: %.2fs (%d samples)\n",
		target.Name, pred.Pattern, pred.Seconds, pred.Samples)

	// Phase 3: rank the repository's implementation variants for the target.
	repository := repo.NewWithLibrary()
	ranked, err := tuner.RankVariants(repository, repo.IfaceDGEMM, target, flops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("variant ranking for", target.Name, "(fastest first):")
	for i, rk := range ranked {
		if rk.Err != nil {
			fmt.Printf("  %d. %-14s (no observations yet)\n", i+1, rk.Variant.Name)
			continue
		}
		fmt.Printf("  %d. %-14s predicted %.2fs via pattern %q\n",
			i+1, rk.Variant.Name, rk.Prediction.Seconds, rk.Prediction.Pattern)
	}
}
