// Dgemm reproduces the paper's case study (Section IV-D, Figure 5): a serial
// DGEMM program is translated for three different PDL platform descriptions
// without modifying the input program, and the resulting task graphs execute
// on the simulated evaluation testbed (dual Xeon X5550 + GTX480 + GTX285).
// A small real-mode run on this machine cross-checks the numerics.
//
// Run with:
//
//	go run ./examples/dgemm            # paper-size simulation (N=8192)
//	go run ./examples/dgemm -n 2048    # faster
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/discover"
	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 8192, "matrix extent")
	tile := flag.Int("tile", 1024, "tile extent")
	sched := flag.String("sched", "dmda", "scheduler (sim: any policy; the real-mode cross-check honours eager, ws and dmda)")
	traceTo := flag.String("trace", "", "write a Chrome trace of the real-mode cross-check here")
	flag.Parse()

	// Figure 5: same input program, three PDL descriptors.
	res, err := experiments.Figure5(experiments.Fig5Config{N: *n, Tile: *tile, Scheduler: *sched})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())

	// Real-mode cross-check on this host: the tiled task graph computes the
	// same result as the serial blocked kernel. With -trace, the run records
	// causal spans and writes a Perfetto-loadable Chrome trace.
	fmt.Println()
	if *traceTo != "" {
		tr, rep, err := experiments.TraceGemmRun(256, 64, 0, true, *sched)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeFile(*traceTo); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("real-mode cross-check (N=256): %d tasks in %.4fs, result verified\n",
			rep.Tasks, rep.MakespanSeconds)
		fmt.Printf("wrote %s (%d events; load in https://ui.perfetto.dev)\n", *traceTo, tr.Len())
		return
	}
	host := discover.MustPlatform("this-host")
	rep, err := experiments.RealDGEMMSched(host, 256, 64, 0, true, *sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real-mode cross-check (N=256): %d tasks in %.4fs, result verified\n",
		rep.Tasks, rep.MakespanSeconds)
}
