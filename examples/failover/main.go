// Failover demonstrates the paper's future-work direction (Section VI):
// platform descriptors that track dynamically changing resources and feed
// highly dynamic schedulers. A tracked PDL description of the evaluation
// testbed loses its GPUs one by one; after each event the DGEMM workload is
// re-planned against a snapshot of the current descriptor, and the logical
// views the machine still supports are recomputed.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/discover"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

func main() {
	platform := discover.MustPlatform("xeon-2gpu")
	tracker, err := dynamic.NewTracker(platform)
	if err != nil {
		log.Fatal(err)
	}
	tracker.OnChange(func(e dynamic.Event) {
		fmt.Printf("event v%d: %s %s\n", e.Version, e.Kind, e.PU)
	})

	run := func(stage string) {
		snap, err := tracker.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		tr := trace.New()
		rt, err := taskrt.New(taskrt.Config{
			Platform: snap, Mode: taskrt.Sim, Scheduler: "dmda", Trace: tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.SubmitTiledGEMM(rt, 2048, 512, nil); err != nil {
			log.Fatal(err)
		}
		rep, err := rt.Run()
		if err != nil {
			log.Fatal(err)
		}
		views, err := pattern.Views(snap)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, 0, len(views))
		for _, v := range views {
			names = append(names, v.Name)
		}
		fmt.Printf("[%s] makespan %.4fs, gpu tasks %d, logical views %v\n",
			stage, rep.MakespanSeconds, rep.TasksOnArch("gpu"), names)
		fmt.Print(tr.Gantt(64))
		fmt.Println()
	}

	run("all online")
	if err := tracker.SetOffline("dev0"); err != nil {
		log.Fatal(err)
	}
	run("gtx480 failed")
	if err := tracker.SetOffline("dev1"); err != nil {
		log.Fatal(err)
	}
	run("both gpus failed")

	// A runtime fills an unfixed descriptor property it just measured — the
	// paper's "later instantiation by a runtime" workflow.
	if err := tracker.FillProperty("dev1", "DRIVER_VERSION", "263.06"); err != nil {
		log.Fatal(err)
	}
	if err := tracker.SetOnline("dev1"); err != nil {
		log.Fatal(err)
	}
	run("gtx285 recovered")
}
