// Failover demonstrates the paper's future-work direction (Section VI):
// platform descriptors that track dynamically changing resources and feed
// highly dynamic schedulers. The evaluation testbed loses both GPUs while a
// DGEMM is in flight: the runtime detects the failures, retries the
// interrupted tiles on the CPU implementation variant, blacklists the dead
// devices into the tracked PDL description and completes the run — graceful
// degradation instead of failure.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/discover"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/pattern"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

const (
	n    = 2048
	tile = 512
)

// simRun plans and executes the tiled DGEMM once in simulation.
func simRun(pl *dynamic.Tracker, faults *taskrt.FaultPlan, tr *trace.Trace) *taskrt.Report {
	snap, err := pl.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := taskrt.New(taskrt.Config{
		Platform: snap, Mode: taskrt.Sim, Scheduler: "dmda",
		Faults: faults, Tracker: pl, Trace: tr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.SubmitTiledGEMM(rt, n, tile, nil); err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	platform := discover.MustPlatform("xeon-2gpu")
	tracker, err := dynamic.NewTracker(platform)
	if err != nil {
		log.Fatal(err)
	}
	tracker.OnChange(func(e dynamic.Event) {
		fmt.Printf("descriptor event v%d: %s %s\n", e.Version, e.Kind, e.PU)
	})

	// Clean run: the baseline.
	clean := simRun(tracker, nil, nil)
	fmt.Printf("[clean]    makespan %.4fs, gpu tasks %d, cpu tasks %d\n\n",
		clean.MakespanSeconds, clean.TasksOnArch("gpu"), clean.TasksOnArch("x86"))

	// In-flight failure: both GPUs die at 25% of the clean makespan, while
	// tasks are running on them. The runtime retries the interrupted tiles on
	// the x86 variant (their data recovered from the host memory node), takes
	// the devices out of scheduling and mirrors that into the tracked
	// descriptor via SetOffline.
	crashAt := 0.25 * clean.MakespanSeconds
	fmt.Printf("injecting: dev0 and dev1 crash at t=%.4fs (25%% of clean run)\n", crashAt)
	tr := trace.New()
	faulty := simRun(tracker, &taskrt.FaultPlan{Events: []taskrt.FaultEvent{
		{Unit: "dev0", AtTime: crashAt},
		{Unit: "dev1", AtTime: crashAt},
	}}, tr)
	fmt.Printf("[gpu-loss] makespan %.4fs, gpu tasks %d, cpu tasks %d\n",
		faulty.MakespanSeconds, faulty.TasksOnArch("gpu"), faulty.TasksOnArch("x86"))
	fmt.Printf("           failed attempts %d, retried tasks %d, blacklisted %v\n",
		faulty.FailedAttempts, faulty.RetriedTasks, faulty.Blacklisted)
	fmt.Printf("           degradation factor %.2fx\n\n", faulty.MakespanSeconds/clean.MakespanSeconds)
	fmt.Print(tr.Gantt(64))
	fmt.Println()

	// The tracked descriptor now reflects the degraded machine: re-planning
	// against a snapshot sees a CPU-only platform, and the logical views the
	// machine still supports shrink accordingly.
	snap, err := tracker.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	views, err := pattern.Views(snap)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(views))
	for _, v := range views {
		names = append(names, v.Name)
	}
	fmt.Printf("degraded descriptor: %d unit(s) offline, logical views %v\n",
		len(tracker.OfflineUnits()), names)

	// The operator replaces the card: the descriptor re-admits it (filling a
	// property a runtime just measured — the paper's "later instantiation"
	// workflow) and the next run uses the GPU again.
	if err := tracker.FillProperty("dev1", "DRIVER_VERSION", "263.06"); err != nil {
		log.Fatal(err)
	}
	if err := tracker.SetOnline("dev1"); err != nil {
		log.Fatal(err)
	}
	if err := tracker.SetOnline("dev0"); err != nil {
		log.Fatal(err)
	}
	recovered := simRun(tracker, nil, nil)
	fmt.Printf("[recovered] makespan %.4fs, gpu tasks %d — back to %.2fx of clean\n",
		recovered.MakespanSeconds, recovered.TasksOnArch("gpu"),
		recovered.MakespanSeconds/clean.MakespanSeconds)
}
