// Multiplatform demonstrates the paper's portability claim: one annotated
// program, three different target PDL descriptions — a CPU-only node, the
// GPU testbed and a Cell-like blade — produce three different mappings and
// compile plans, "without the need to modify the source program"
// (Section I).
//
// Run with:
//
//	go run ./examples/multiplatform
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/csrc"
	"repro/internal/discover"
	"repro/internal/mapping"
	"repro/internal/pragma"
	"repro/internal/repo"
	"repro/internal/taskrt"
)

// program provides three implementation variants of the same task interface
// — sequential x86, OpenCL/CUDA gpu, and Cell SPE — plus one call site.
const program = `
#pragma cascabel task : x86, seq
    : Iscale
    : scale_cpu
    : ( V: readwrite )
void scale(double *V) { /* V[i] *= 2 */ }

#pragma cascabel task : opencl, cuda
    : Iscale
    : scale_gpu
    : ( V: readwrite )
void scale_gpu_impl(double *V) { /* gpu kernel */ }

#pragma cascabel task : cell
    : Iscale
    : scale_spe
    : ( V: readwrite )
void scale_spe_impl(double *V) { /* spe kernel */ }

int main() {
    #pragma cascabel execute Iscale (V:BLOCK:N)
    scale( V );
    return 0;
}
`

func main() {
	prog, err := csrc.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []string{"xeon-cpu", "xeon-2gpu", "cell-blade"} {
		platform := discover.MustPlatform(target)
		repository := repo.New()
		// The scale kernels: the x86 variant is runnable, the accelerator
		// variants exist as simulated codelets.
		kernels := map[string]func(*taskrt.TaskContext) error{
			"scale_cpu": func(tc *taskrt.TaskContext) error {
				if v, ok := tc.Payload(0).([]float64); ok {
					for i := range v {
						v[i] *= 2
					}
				}
				return nil
			},
		}
		if err := repository.RegisterProgram(prog, kernels); err != nil {
			log.Fatal(err)
		}
		plan, err := mapping.PlanProgram(prog, repository, platform)
		if err != nil {
			log.Fatalf("%s: %v", target, err)
		}
		fmt.Printf("=== target %s ===\n", target)
		fmt.Print(plan.Summary())
		fmt.Print(codegen.CompilePlan(plan))

		// Execute the translated graph in simulation on each target.
		rep, err := codegen.Execute(plan, codegen.ExecOptions{
			Mode:      taskrt.Sim,
			Scheduler: "dmda",
			Args:      map[string]any{"V": codegen.SimVector{N: 1 << 22}},
			Pieces:    16,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated makespan: %.6fs across %d busy unit(s)\n\n",
			rep.MakespanSeconds, rep.BusyUnits())
	}
	// One more: the paper's Listing 3/4 annotation example parsed and shown.
	a, err := pragma.Parse("#pragma cascabel execute Iscale : gpuset (V:BLOCK:N)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotation demo: interface=%s group=%s dist=%s\n",
		a.Execute.Interface, a.Execute.Group, a.Execute.Dists[0].Dist)
}
