// Quickstart: build a platform description with the fluent builder, emit it
// as PDL XML (the paper's Listing 1 shape), validate it against the machine
// model and typed schemas, and query it with selector expressions.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
	"repro/internal/schema"
)

func main() {
	// 1. Describe a GPGPU node: an x86 Master controlling one gpu Worker
	//    over an rDMA interconnect — the paper's Listing 1.
	platform, err := core.NewBuilder("gpgpu-node").
		Master("0", core.Arch("x86"),
			core.WithUnitProp(core.PropClockMHz, "2660", "MHz"),
			core.InGroups("cpuset")).
		Worker("1", core.Arch("gpu"),
			core.WithProp(core.PropDeviceName, "GeForce GTX 480"),
			core.InGroups("gpuset")).
		Link(core.ICTypeRDMA, "0", "1", core.Bandwidth(5), core.Latency(10)).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Emit the PDL document.
	fmt.Println("--- PDL document ---")
	if err := pdlxml.Write(os.Stdout, platform); err != nil {
		log.Fatal(err)
	}

	// 3. Validate against the machine model and the typed property schemas.
	report := schema.ValidatePlatform(platform, schema.Default())
	fmt.Println("--- validation ---")
	fmt.Print(report.String())

	// 4. Query it: the API the paper positions next to hwloc and the OpenCL
	//    platform query functions.
	fmt.Println("--- queries ---")
	gpus := query.MustSelect(platform, "//Worker[ARCHITECTURE=gpu]")
	fmt.Printf("gpu workers: %d (%s)\n", len(gpus), gpus[0].ID)
	fmt.Printf("cpuset group: %v\n", query.New(platform).InGroup("cpuset").IDs())
	route, err := platform.Route("0", "1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route 0 -> 1: %s link\n", route[0].Type)

	// 5. Round-trip: parse the document back and confirm identity of the
	//    control view.
	data, err := pdlxml.Marshal(platform)
	if err != nil {
		log.Fatal(err)
	}
	back, err := pdlxml.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip: %d PUs, master controls %d unit(s)\n",
		len(back.AllPUs()), len(back.Masters[0].Children))
}
