// Vecadd runs the paper's annotation example (Listings 3/4) through the
// complete Cascabel pipeline: parse the annotated serial program, register
// its task variants, pre-select against a PDL platform, generate the output
// program, and execute the translated task graph for real on this machine —
// verifying it computes exactly what the serial input program computes.
//
// Run with:
//
//	go run ./examples/vecadd
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/csrc"
	"repro/internal/discover"
	"repro/internal/mapping"
	"repro/internal/repo"
	"repro/internal/taskrt"
)

// program is the paper's example: a vecadd task definition with access
// specifiers, and an annotated call site with BLOCK distributions.
const program = `
#pragma cascabel task : x86
    : Ivecadd
    : vecadd01
    : ( A: readwrite,
        B : read )
void vector_add(double *A, double *B) {
    /* for (i = 0; i < N; i++) A[i] += B[i]; */
}

int main() {
    #pragma cascabel execute Ivecadd
        : cpuset
        (A:BLOCK:N,
         B:BLOCK:N)
    vector_add( A, B );
    return 0;
}
`

func main() {
	// Frontend: parse annotations + C subset.
	prog, err := csrc.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	td := prog.TaskDefs()[0]
	fmt.Printf("task %s variant %s, params:", td.Annotation.Interface, td.Annotation.Name)
	for _, p := range td.Annotation.Params {
		fmt.Printf(" %s:%s", p.Name, p.Mode)
	}
	fmt.Println()

	// Task registration (paper IV-C step 1).
	repository := repo.NewWithLibrary()
	if err := repository.RegisterProgram(prog, repo.DefaultKernels()); err != nil {
		log.Fatal(err)
	}

	// Static pre-selection against the target PDL (step 2).
	platform := discover.MustPlatform("xeon-cpu")
	plan, err := mapping.PlanProgram(prog, repository, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Summary())

	// Output generation (step 3): the generated Go program.
	src, err := codegen.GenerateGo(plan, codegen.GenOptions{PlatformFile: "xeon-cpu.pdl.xml"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bytes of output program; compile plan:\n%s",
		len(src), codegen.CompilePlan(plan))

	// Execution: run the translated task graph for real on this host.
	const n = 1 << 20
	a := make(codegen.Vector, n)
	b := make(codegen.Vector, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 2 * float64(i)
	}
	report, err := codegen.Execute(plan, codegen.ExecOptions{
		Mode: taskrt.Real,
		Args: map[string]any{"A": a, "B": b},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	// Verify against the serial semantics A[i] += B[i].
	for i := 0; i < n; i++ {
		if a[i] != 3*float64(i) {
			log.Fatalf("verification failed at %d: %g", i, a[i])
		}
	}
	fmt.Printf("verified: %d elements match the serial program\n", n)
}
