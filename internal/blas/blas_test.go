package blas

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func randomGEMM(t testing.TB, m, n, k int, seed int64) (a, b, c *Matrix) {
	t.Helper()
	a, b, c = NewMatrix(m, k), NewMatrix(k, n), NewMatrix(m, n)
	a.FillRandom(seed)
	b.FillRandom(seed + 1)
	return a, b, c
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At broken")
	}
	cp := m.Clone()
	cp.Set(1, 2, 7)
	if m.At(1, 2) != 42 {
		t.Fatal("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero broken")
	}
	m.FillIdentity()
	if m.At(0, 0) != 1 || m.At(2, 2) != 1 || m.At(0, 1) != 0 {
		t.Fatal("FillIdentity broken")
	}
}

func TestSubView(t *testing.T) {
	m := NewMatrix(4, 4)
	m.FillRandom(1)
	sub := m.Sub(1, 1, 2, 2)
	if sub.At(0, 0) != m.At(1, 1) || sub.At(1, 1) != m.At(2, 2) {
		t.Fatal("Sub view misaligned")
	}
	sub.Set(0, 0, 99)
	if m.At(1, 1) != 99 {
		t.Fatal("Sub view should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Sub should panic")
		}
	}()
	m.Sub(3, 3, 2, 2)
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1, 2) should panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestGemmIdentity(t *testing.T) {
	a := NewMatrix(5, 5)
	a.FillRandom(3)
	id := NewMatrix(5, 5)
	id.FillIdentity()
	c := NewMatrix(5, 5)
	if err := GemmNaive(a, id, c); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, c, tol) {
		t.Fatalf("A*I != A (maxdiff %g)", MaxDiff(a, c))
	}
}

func TestGemmKnownValues(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a, b, c := NewMatrix(2, 2), NewMatrix(2, 2), NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	copy(b.Data, []float64{5, 6, 7, 8})
	if err := GemmNaive(a, b, c); err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v; want %v", c.Data, want)
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	a, b, c := randomGEMM(t, 3, 3, 3, 7)
	c.FillIdentity()
	ref := c.Clone()
	if err := GemmNaive(a, b, c); err != nil {
		t.Fatal(err)
	}
	if err := GemmNaive(a, b, ref); err != nil {
		t.Fatal(err)
	}
	if !Equal(c, ref, tol) {
		t.Fatal("accumulation not deterministic")
	}
	// C += A*B means starting from identity differs from starting from zero.
	zero := NewMatrix(3, 3)
	if err := GemmNaive(a, b, zero); err != nil {
		t.Fatal(err)
	}
	if Equal(c, zero, tol) {
		t.Fatal("GemmNaive overwrote instead of accumulating")
	}
}

func TestGemmVariantsAgree(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {2, 3, 4}, {17, 19, 23}, {64, 64, 64}, {65, 63, 67}, {100, 1, 50},
	}
	for _, s := range shapes {
		a, b, ref := randomGEMM(t, s.m, s.n, s.k, 42)
		if err := GemmNaive(a, b, ref); err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func(a, b, c *Matrix) error{
			"blocked":      func(a, b, c *Matrix) error { return GemmBlocked(a, b, c, 16) },
			"blockedDflt":  func(a, b, c *Matrix) error { return GemmBlocked(a, b, c, 0) },
			"parallel":     func(a, b, c *Matrix) error { return GemmParallel(a, b, c, 16, 4) },
			"parallelAuto": func(a, b, c *Matrix) error { return GemmParallel(a, b, c, 16, 0) },
			"parallel1":    func(a, b, c *Matrix) error { return GemmParallel(a, b, c, 16, 1) },
		} {
			c := NewMatrix(s.m, s.n)
			if err := run(a, b, c); err != nil {
				t.Fatalf("%s %+v: %v", name, s, err)
			}
			if d := MaxDiff(ref, c); d > 1e-8 {
				t.Fatalf("%s %+v: maxdiff %g", name, s, d)
			}
		}
	}
}

func TestGemmShapeErrors(t *testing.T) {
	a, b, c := NewMatrix(2, 3), NewMatrix(4, 2), NewMatrix(2, 2)
	if err := GemmNaive(a, b, c); err == nil {
		t.Fatal("inner dim mismatch must fail")
	}
	b2 := NewMatrix(3, 2)
	cBad := NewMatrix(3, 2)
	if err := GemmNaive(a, b2, cBad); err == nil {
		t.Fatal("output shape mismatch must fail")
	}
	if err := GemmBlocked(a, b, c, 8); err == nil {
		t.Fatal("blocked must validate shapes")
	}
	if err := GemmParallel(a, b, c, 8, 2); err == nil {
		t.Fatal("parallel must validate shapes")
	}
}

func TestVecAdd(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if err := VecAdd(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 11 || a[2] != 33 {
		t.Fatalf("a = %v", a)
	}
	if err := VecAdd(a, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestVecAddParallelAgrees(t *testing.T) {
	n := 10001
	a := make([]float64, n)
	b := make([]float64, n)
	ref := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(2 * i)
		ref[i] = float64(3 * i)
	}
	if err := VecAddParallel(a, b, 7); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != ref[i] {
			t.Fatalf("a[%d] = %g; want %g", i, a[i], ref[i])
		}
	}
	if err := VecAddParallel([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Fatal("length mismatch must fail")
	}
	small := []float64{1}
	if err := VecAddParallel(small, []float64{2}, 8); err != nil || small[0] != 3 {
		t.Fatalf("tiny parallel vecadd: %v %v", small, err)
	}
}

func TestDaxpyGemvDot(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	if err := Daxpy(2, x, y); err != nil || y[0] != 12 || y[1] != 24 {
		t.Fatalf("daxpy: %v", y)
	}
	if err := Daxpy(1, x, []float64{1}); err == nil {
		t.Fatal("daxpy mismatch must fail")
	}
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	yy := []float64{0, 0}
	if err := Gemv(a, []float64{1, 1}, yy); err != nil || yy[0] != 3 || yy[1] != 7 {
		t.Fatalf("gemv: %v", yy)
	}
	if err := Gemv(a, []float64{1}, yy); err == nil {
		t.Fatal("gemv x mismatch must fail")
	}
	if err := Gemv(a, []float64{1, 1}, []float64{0}); err == nil {
		t.Fatal("gemv y mismatch must fail")
	}
	d, err := Dot(x, x)
	if err != nil || d != 5 {
		t.Fatalf("dot = %g, %v", d, err)
	}
	if _, err := Dot(x, []float64{1}); err == nil {
		t.Fatal("dot mismatch must fail")
	}
}

func TestEqualAndMaxDiffShapeMismatch(t *testing.T) {
	if Equal(NewMatrix(2, 2), NewMatrix(2, 3), tol) {
		t.Fatal("shape mismatch should not be Equal")
	}
	if !math.IsInf(MaxDiff(NewMatrix(2, 2), NewMatrix(3, 2)), 1) {
		t.Fatal("MaxDiff on shape mismatch should be +Inf")
	}
}

func TestFlopsGEMM(t *testing.T) {
	if got := FlopsGEMM(10, 20, 30); got != 12000 {
		t.Fatalf("FlopsGEMM = %g", got)
	}
}

// Property-based: naive and blocked agree on random shapes.
func TestQuickGemmBlockedAgreesWithNaive(t *testing.T) {
	f := func(mm, nn, kk, bb uint8, seed int64) bool {
		m, n, k := int(mm%24)+1, int(nn%24)+1, int(kk%24)+1
		block := int(bb%8) + 1
		a, b, ref := NewMatrix(m, k), NewMatrix(k, n), NewMatrix(m, n)
		a.FillRandom(seed)
		b.FillRandom(seed + 1)
		if GemmNaive(a, b, ref) != nil {
			return false
		}
		c := NewMatrix(m, n)
		if GemmBlocked(a, b, c, block) != nil {
			return false
		}
		return MaxDiff(ref, c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: (A·I)·x == A·x through Gemv for random matrices.
func TestQuickGemvLinear(t *testing.T) {
	f := func(nn uint8, seed int64) bool {
		n := int(nn%16) + 1
		a := NewMatrix(n, n)
		a.FillRandom(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i + 1)
		}
		y1 := make([]float64, n)
		if Gemv(a, x, y1) != nil {
			return false
		}
		// Scale x by 2: result must double.
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = 2 * x[i]
		}
		y2 := make([]float64, n)
		if Gemv(a, x2, y2) != nil {
			return false
		}
		for i := range y1 {
			if math.Abs(y2[i]-2*y1[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
