// Dense factorization kernels for the tiled Cholesky and LU experiments:
// the four Cholesky tile operations (POTRF, the right-lower-transposed TRSM
// panel solve, the SYRK trailing update and its GEMM generalisation) and the
// LU-without-pivoting set (GETRF, the two unit/non-unit TRSM variants and
// the subtracting GEMM). All kernels operate in place on stride-aware views,
// so a tile task mutates its slice of the parent matrix directly — the same
// zero-copy convention the DGEMM harness uses.

package blas

import (
	"fmt"
	"math"
)

// Potrf computes the lower-triangular Cholesky factor of a symmetric
// positive-definite matrix in place: on return the lower triangle of a
// (diagonal included) holds L with A = L·Lᵀ. Only the lower triangle is
// read or written; the strictly-upper part is left untouched. Returns an
// error when a is not square or a pivot is not strictly positive (the
// matrix is not positive definite to working precision).
func Potrf(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("blas: Potrf needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		rowj := a.Data[j*a.Stride : j*a.Stride+j+1]
		d := rowj[j]
		for k := 0; k < j; k++ {
			d -= rowj[k] * rowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("blas: Potrf pivot %d is %g: matrix not positive definite", j, d)
		}
		d = math.Sqrt(d)
		rowj[j] = d
		for i := j + 1; i < n; i++ {
			rowi := a.Data[i*a.Stride : i*a.Stride+j+1]
			s := rowi[j]
			for k := 0; k < j; k++ {
				s -= rowi[k] * rowj[k]
			}
			rowi[j] = s / d
		}
	}
	return nil
}

// TrsmRLT solves X·Lᵀ = B in place (B := B·L⁻ᵀ) where l is the lower
// non-unit triangular factor produced by Potrf. This is the Cholesky panel
// solve: A[i][k] := A[i][k]·L[k][k]⁻ᵀ.
func TrsmRLT(l, b *Matrix) error {
	if l.Rows != l.Cols || l.Rows != b.Cols {
		return fmt.Errorf("blas: TrsmRLT shape mismatch: L %dx%d, B %dx%d", l.Rows, l.Cols, b.Rows, b.Cols)
	}
	n := l.Rows
	for j := 0; j < n; j++ {
		if l.At(j, j) == 0 {
			return fmt.Errorf("blas: TrsmRLT zero diagonal at %d", j)
		}
	}
	for i := 0; i < b.Rows; i++ {
		row := b.Data[i*b.Stride : i*b.Stride+n]
		for j := 0; j < n; j++ {
			lrow := l.Data[j*l.Stride : j*l.Stride+j+1]
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * lrow[k]
			}
			row[j] = s / lrow[j]
		}
	}
	return nil
}

// SyrkNT applies the symmetric rank-k trailing update C := C − A·Aᵀ to the
// lower triangle of c (diagonal included). The strictly-upper triangle of c
// is left untouched, matching what Potrf will later read.
func SyrkNT(a, c *Matrix) error {
	if c.Rows != c.Cols || c.Rows != a.Rows {
		return fmt.Errorf("blas: SyrkNT shape mismatch: A %dx%d, C %dx%d", a.Rows, a.Cols, c.Rows, c.Cols)
	}
	k := a.Cols
	for i := 0; i < c.Rows; i++ {
		ai := a.Data[i*a.Stride : i*a.Stride+k]
		ci := c.Data[i*c.Stride : i*c.Stride+i+1]
		for j := 0; j <= i; j++ {
			aj := a.Data[j*a.Stride : j*a.Stride+k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += ai[p] * aj[p]
			}
			ci[j] -= s
		}
	}
	return nil
}

// GemmNT applies C := C − A·Bᵀ, the general trailing update of the tiled
// Cholesky (A is the freshly-solved panel tile, B the panel tile of the
// destination's block column).
func GemmNT(a, b, c *Matrix) error {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		return fmt.Errorf("blas: GemmNT shape mismatch: A %dx%d, B %dx%d, C %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	k := a.Cols
	for i := 0; i < c.Rows; i++ {
		ai := a.Data[i*a.Stride : i*a.Stride+k]
		ci := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for j := 0; j < c.Cols; j++ {
			bj := b.Data[j*b.Stride : j*b.Stride+k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			ci[j] -= s
		}
	}
	return nil
}

// Getrf computes the LU factorization of a square matrix in place without
// pivoting (Doolittle): on return the strictly-lower triangle holds the
// unit-lower factor L (implicit unit diagonal) and the upper triangle holds
// U with A = L·U. Callers must supply a matrix for which pivot-free
// elimination is stable (the harness uses diagonally dominant inputs).
func Getrf(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("blas: Getrf needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	for k := 0; k < n; k++ {
		rowk := a.Data[k*a.Stride : k*a.Stride+n]
		p := rowk[k]
		if p == 0 || math.IsNaN(p) {
			return fmt.Errorf("blas: Getrf zero pivot at %d (matrix needs pivoting)", k)
		}
		for i := k + 1; i < n; i++ {
			rowi := a.Data[i*a.Stride : i*a.Stride+n]
			lik := rowi[k] / p
			rowi[k] = lik
			for j := k + 1; j < n; j++ {
				rowi[j] -= lik * rowk[j]
			}
		}
	}
	return nil
}

// TrsmLLUnit solves L·X = B in place (B := L⁻¹·B) where l holds a
// unit-lower triangular factor (implicit unit diagonal, as produced by
// Getrf). This is the LU row-panel solve: A[k][j] := L[k][k]⁻¹·A[k][j].
func TrsmLLUnit(l, b *Matrix) error {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		return fmt.Errorf("blas: TrsmLLUnit shape mismatch: L %dx%d, B %dx%d", l.Rows, l.Cols, b.Rows, b.Cols)
	}
	n := l.Rows
	for i := 1; i < n; i++ {
		rowi := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		lrow := l.Data[i*l.Stride : i*l.Stride+i]
		for k := 0; k < i; k++ {
			lik := lrow[k]
			if lik == 0 {
				continue
			}
			rowk := b.Data[k*b.Stride : k*b.Stride+b.Cols]
			for j := range rowi {
				rowi[j] -= lik * rowk[j]
			}
		}
	}
	return nil
}

// TrsmRU solves X·U = B in place (B := B·U⁻¹) where u holds a non-unit
// upper triangular factor (as produced by Getrf). This is the LU
// column-panel solve: A[i][k] := A[i][k]·U[k][k]⁻¹.
func TrsmRU(u, b *Matrix) error {
	if u.Rows != u.Cols || u.Rows != b.Cols {
		return fmt.Errorf("blas: TrsmRU shape mismatch: U %dx%d, B %dx%d", u.Rows, u.Cols, b.Rows, b.Cols)
	}
	n := u.Rows
	for j := 0; j < n; j++ {
		if u.At(j, j) == 0 {
			return fmt.Errorf("blas: TrsmRU zero diagonal at %d", j)
		}
	}
	for i := 0; i < b.Rows; i++ {
		row := b.Data[i*b.Stride : i*b.Stride+n]
		for j := 0; j < n; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * u.At(k, j)
			}
			row[j] = s / u.At(j, j)
		}
	}
	return nil
}

// GemmSub applies C := C − A·B, the trailing update of the tiled LU.
func GemmSub(a, b, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("blas: GemmSub shape mismatch: A %dx%d, B %dx%d, C %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	k := a.Cols
	for i := 0; i < c.Rows; i++ {
		ai := a.Data[i*a.Stride : i*a.Stride+k]
		ci := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*b.Stride : p*b.Stride+c.Cols]
			for j := range ci {
				ci[j] -= av * bp[j]
			}
		}
	}
	return nil
}

// FlopsPOTRF returns the flop count of an n×n Cholesky factorization
// (n³/3 to leading order).
func FlopsPOTRF(n int) float64 { f := float64(n); return f * f * f / 3 }

// FlopsGETRF returns the flop count of an n×n LU factorization
// (2n³/3 to leading order).
func FlopsGETRF(n int) float64 { f := float64(n); return 2 * f * f * f / 3 }

// FlopsTRSM returns the flop count of a triangular solve with an n×n
// triangle against m right-hand sides (m·n²).
func FlopsTRSM(n, m int) float64 { return float64(m) * float64(n) * float64(n) }

// FlopsSYRK returns the flop count of the lower-triangle rank-k update of
// an n×n tile (n²·k to leading order, counting only the written half).
func FlopsSYRK(n, k int) float64 { return float64(n) * float64(n) * float64(k) }
