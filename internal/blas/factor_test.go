package blas

import (
	"math"
	"testing"
)

// symDiagDominant builds a symmetric diagonally-dominant matrix (hence SPD
// by Gershgorin): off-diagonals in [-1, 1), diagonal = n.
func symDiagDominant(n int, seed int64) *Matrix {
	m := NewMatrix(n, n)
	m.FillRandom(seed)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			m.Set(j, i, m.At(i, j))
		}
		m.Set(i, i, float64(n))
	}
	return m
}

// diagDominant builds a (non-symmetric) diagonally-dominant matrix, stable
// for LU without pivoting.
func diagDominant(n int, seed int64) *Matrix {
	m := NewMatrix(n, n)
	m.FillRandom(seed)
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(n))
	}
	return m
}

// lowerFromPotrf extracts the lower triangle (diagonal included) of a
// factored matrix into a dense L, zeroing the rest.
func lowerFromPotrf(a *Matrix) *Matrix {
	l := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, a.At(i, j))
		}
	}
	return l
}

func TestPotrfReconstructs(t *testing.T) {
	const n = 64
	a := symDiagDominant(n, 7)
	orig := a.Clone()
	if err := Potrf(a); err != nil {
		t.Fatalf("Potrf: %v", err)
	}
	l := lowerFromPotrf(a)
	// L·Lᵀ must reproduce the original matrix.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(s - orig.At(i, j)); d > 1e-10 {
				t.Fatalf("L·Lᵀ[%d][%d] off by %g", i, j, d)
			}
		}
	}
	// Strictly-upper part must be untouched.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a.At(i, j) != orig.At(i, j) {
				t.Fatalf("Potrf touched upper element (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := NewMatrix(3, 3)
	a.FillIdentity()
	a.Set(1, 1, -1)
	if err := Potrf(a); err == nil {
		t.Fatal("Potrf accepted an indefinite matrix")
	}
	if err := Potrf(NewMatrix(2, 3)); err == nil {
		t.Fatal("Potrf accepted a non-square matrix")
	}
}

func TestTrsmRLTSolves(t *testing.T) {
	const n, m = 24, 17
	spd := symDiagDominant(n, 3)
	if err := Potrf(spd); err != nil {
		t.Fatalf("Potrf: %v", err)
	}
	l := lowerFromPotrf(spd)
	x := NewMatrix(m, n)
	x.FillRandom(5)
	// B = X·Lᵀ, then solving in place must recover X.
	b := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += x.At(i, k) * l.At(j, k)
			}
			b.Set(i, j, s)
		}
	}
	if err := TrsmRLT(l, b); err != nil {
		t.Fatalf("TrsmRLT: %v", err)
	}
	if d := MaxDiff(b, x); d > 1e-10 {
		t.Fatalf("TrsmRLT residual %g", d)
	}
}

func TestSyrkNTAndGemmNT(t *testing.T) {
	const n, k = 19, 13
	a := NewMatrix(n, k)
	a.FillRandom(11)
	b := NewMatrix(n, k)
	b.FillRandom(12)
	c := symDiagDominant(n, 13)
	want := c.Clone()
	if err := SyrkNT(a, c); err != nil {
		t.Fatalf("SyrkNT: %v", err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := want.At(i, j)
			if j <= i { // lower triangle only
				for p := 0; p < k; p++ {
					s -= a.At(i, p) * a.At(j, p)
				}
			}
			if d := math.Abs(c.At(i, j) - s); d > 1e-12 {
				t.Fatalf("SyrkNT[%d][%d] off by %g", i, j, d)
			}
		}
	}
	c2 := NewMatrix(n, n)
	c2.FillRandom(14)
	want2 := c2.Clone()
	if err := GemmNT(a, b, c2); err != nil {
		t.Fatalf("GemmNT: %v", err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := want2.At(i, j)
			for p := 0; p < k; p++ {
				s -= a.At(i, p) * b.At(j, p)
			}
			if d := math.Abs(c2.At(i, j) - s); d > 1e-12 {
				t.Fatalf("GemmNT[%d][%d] off by %g", i, j, d)
			}
		}
	}
}

func TestGetrfReconstructs(t *testing.T) {
	const n = 48
	a := diagDominant(n, 21)
	orig := a.Clone()
	if err := Getrf(a); err != nil {
		t.Fatalf("Getrf: %v", err)
	}
	// L (unit lower) times U must reproduce the original matrix.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				lv := a.At(i, k)
				if k == i {
					lv = 1
				}
				s += lv * a.At(k, j)
			}
			if d := math.Abs(s - orig.At(i, j)); d > 1e-10 {
				t.Fatalf("L·U[%d][%d] off by %g", i, j, d)
			}
		}
	}
}

func TestGetrfRejectsZeroPivot(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	if err := Getrf(a); err == nil {
		t.Fatal("Getrf accepted a zero pivot")
	}
}

func TestTrsmLLUnitSolves(t *testing.T) {
	const n, m = 21, 15
	fac := diagDominant(n, 31)
	if err := Getrf(fac); err != nil {
		t.Fatalf("Getrf: %v", err)
	}
	x := NewMatrix(n, m)
	x.FillRandom(33)
	// B = L·X with L unit lower, then solving must recover X.
	b := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			s := x.At(i, j)
			for k := 0; k < i; k++ {
				s += fac.At(i, k) * x.At(k, j)
			}
			b.Set(i, j, s)
		}
	}
	if err := TrsmLLUnit(fac, b); err != nil {
		t.Fatalf("TrsmLLUnit: %v", err)
	}
	if d := MaxDiff(b, x); d > 1e-10 {
		t.Fatalf("TrsmLLUnit residual %g", d)
	}
}

func TestTrsmRUSolves(t *testing.T) {
	const n, m = 21, 15
	fac := diagDominant(n, 41)
	if err := Getrf(fac); err != nil {
		t.Fatalf("Getrf: %v", err)
	}
	x := NewMatrix(m, n)
	x.FillRandom(43)
	// B = X·U with U upper non-unit, then solving must recover X.
	b := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += x.At(i, k) * fac.At(k, j)
			}
			b.Set(i, j, s)
		}
	}
	if err := TrsmRU(fac, b); err != nil {
		t.Fatalf("TrsmRU: %v", err)
	}
	if d := MaxDiff(b, x); d > 1e-10 {
		t.Fatalf("TrsmRU residual %g", d)
	}
}

func TestGemmSubMatchesNaive(t *testing.T) {
	const m, k, n = 17, 23, 11
	a := NewMatrix(m, k)
	a.FillRandom(51)
	b := NewMatrix(k, n)
	b.FillRandom(52)
	c := NewMatrix(m, n)
	c.FillRandom(53)
	want := c.Clone()
	if err := GemmSub(a, b, c); err != nil {
		t.Fatalf("GemmSub: %v", err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := want.At(i, j)
			for p := 0; p < k; p++ {
				s -= a.At(i, p) * b.At(p, j)
			}
			if d := math.Abs(c.At(i, j) - s); d > 1e-12 {
				t.Fatalf("GemmSub[%d][%d] off by %g", i, j, d)
			}
		}
	}
}

func TestFactorShapeErrors(t *testing.T) {
	bad := []error{
		TrsmRLT(NewMatrix(3, 3), NewMatrix(2, 4)),
		SyrkNT(NewMatrix(3, 2), NewMatrix(4, 4)),
		GemmNT(NewMatrix(3, 2), NewMatrix(3, 3), NewMatrix(3, 3)),
		TrsmLLUnit(NewMatrix(3, 3), NewMatrix(2, 3)),
		TrsmRU(NewMatrix(3, 3), NewMatrix(3, 2)),
		GemmSub(NewMatrix(3, 2), NewMatrix(3, 3), NewMatrix(3, 3)),
	}
	for i, err := range bad {
		if err == nil {
			t.Fatalf("case %d: shape mismatch accepted", i)
		}
	}
}
