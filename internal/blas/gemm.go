package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// shapeGEMM validates C = A·B conformability and returns m, n, k.
func shapeGEMM(a, b, c *Matrix) (m, n, k int, err error) {
	if a.Cols != b.Rows {
		return 0, 0, 0, fmt.Errorf("blas: gemm inner dims %d != %d", a.Cols, b.Rows)
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		return 0, 0, 0, fmt.Errorf("blas: gemm output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols)
	}
	return a.Rows, b.Cols, a.Cols, nil
}

// GemmNaive computes C += A·B with the textbook triple loop (ikj order so
// the inner loop streams rows). This is the "single" baseline kernel of the
// paper's input program before any translation.
func GemmNaive(a, b, c *Matrix) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+n]
		for l := 0; l < k; l++ {
			av := a.At(i, l)
			if av == 0 {
				continue
			}
			brow := b.Data[l*b.Stride : l*b.Stride+n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return nil
}

// DefaultBlock is the cache-blocking factor of the blocked kernels, sized so
// three blocks fit comfortably in a 256 kB L2.
const DefaultBlock = 64

// GemmBlocked computes C += A·B with three-level cache blocking, the
// single-threaded "optimized BLAS" stand-in.
func GemmBlocked(a, b, c *Matrix, block int) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	if block < 1 {
		block = DefaultBlock
	}
	for ii := 0; ii < m; ii += block {
		iMax := min(ii+block, m)
		for ll := 0; ll < k; ll += block {
			lMax := min(ll+block, k)
			for jj := 0; jj < n; jj += block {
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+n]
					for l := ll; l < lMax; l++ {
						av := a.At(i, l)
						if av == 0 {
							continue
						}
						brow := b.Data[l*b.Stride : l*b.Stride+n]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return nil
}

// GemmParallel computes C += A·B by splitting C's rows across `workers`
// goroutines, each running the blocked kernel on its stripe. workers <= 0
// uses GOMAXPROCS. This is the data-parallel CPU implementation the
// translator emits for the paper's "starpu" series when run in real mode.
func GemmParallel(a, b, c *Matrix, block, workers int) error {
	m, _, _, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		return GemmBlocked(a, b, c, block)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * rowsPer
		if start >= m {
			break
		}
		rows := min(rowsPer, m-start)
		wg.Add(1)
		go func(w, start, rows int) {
			defer wg.Done()
			errs[w] = GemmBlocked(a.Sub(start, 0, rows, a.Cols), b, c.Sub(start, 0, rows, c.Cols), block)
		}(w, start, rows)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
