package blas

import (
	"fmt"
	"runtime"
)

// shapeGEMM validates C = A·B conformability and returns m, n, k.
func shapeGEMM(a, b, c *Matrix) (m, n, k int, err error) {
	if a.Cols != b.Rows {
		return 0, 0, 0, fmt.Errorf("blas: gemm inner dims %d != %d", a.Cols, b.Rows)
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		return 0, 0, 0, fmt.Errorf("blas: gemm output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols)
	}
	return a.Rows, b.Cols, a.Cols, nil
}

// DefaultBlock is the cache-blocking factor of the blocked kernels, sized so
// three blocks fit comfortably in a 256 kB L2.
const DefaultBlock = 64

// clampBlock normalizes a blocking-factor argument: non-positive values take
// DefaultBlock. Every kernel accepting a block parameter validates it
// through this one helper.
func clampBlock(block int) int {
	if block < 1 {
		return DefaultBlock
	}
	return block
}

// clampWorkers normalizes a worker-count argument: non-positive values take
// GOMAXPROCS, and the result is clamped to [1, limit] so callers never spawn
// more goroutines than there are parallel grains (limit <= 0 means no upper
// bound). Every kernel accepting a workers parameter validates it through
// this one helper.
func clampWorkers(workers, limit int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if limit > 0 && workers > limit {
		workers = limit
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// GemmNaive computes C += A·B with the textbook triple loop (ikj order so
// the inner loop streams rows). This is the "single" baseline kernel of the
// paper's input program before any translation.
func GemmNaive(a, b, c *Matrix) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+n]
		for l := 0; l < k; l++ {
			av := a.At(i, l)
			if av == 0 {
				continue
			}
			brow := b.Data[l*b.Stride : l*b.Stride+n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return nil
}

// GemmBlocked computes C += A·B with three-level cache blocking, the
// single-threaded scalar baseline the packed micro-kernel path is measured
// against.
func GemmBlocked(a, b, c *Matrix, block int) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	block = clampBlock(block)
	for ii := 0; ii < m; ii += block {
		iMax := min(ii+block, m)
		for ll := 0; ll < k; ll += block {
			lMax := min(ll+block, k)
			for jj := 0; jj < n; jj += block {
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride : i*c.Stride+n]
					for l := ll; l < lMax; l++ {
						av := a.At(i, l)
						if av == 0 {
							continue
						}
						brow := b.Data[l*b.Stride : l*b.Stride+n]
						for j := jj; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return nil
}

// GemmParallel computes C += A·B across `workers` goroutines. This is the
// data-parallel CPU implementation the translator emits for the paper's
// "starpu" series in real mode; it routes through the packed micro-kernel
// path (GemmPackedParallel), so the parallel split and the per-core kernel
// improve together.
func GemmParallel(a, b, c *Matrix, block, workers int) error {
	return GemmPackedParallel(a, b, c, block, workers)
}
