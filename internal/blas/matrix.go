// Package blas implements the dense linear-algebra kernels the paper's case
// study exercises: double-precision matrix multiplication (DGEMM, the
// GotoBLAS2/CuBLAS workload of Section IV-D), matrix-vector multiplication,
// AXPY and the vector addition of the paper's annotation example. Kernels
// come in serial naive, cache-blocked and parallel blocked variants so the
// task runtime has genuinely different implementations to choose between.
package blas

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix view. Stride is the distance between
// row starts in Data, allowing zero-copy tile views into a parent matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("blas: negative matrix extent %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Sub returns a view of the rows×cols tile with upper-left corner (i, j).
// The view shares storage with m.
func (m *Matrix) Sub(i, j, rows, cols int) *Matrix {
	if i < 0 || j < 0 || rows < 0 || cols < 0 || i+rows > m.Rows || j+cols > m.Cols {
		panic(fmt.Sprintf("blas: Sub(%d,%d,%d,%d) out of %dx%d", i, j, rows, cols, m.Rows, m.Cols))
	}
	return &Matrix{
		Rows: rows, Cols: cols, Stride: m.Stride,
		Data: m.Data[i*m.Stride+j:],
	}
}

// Clone returns a compact deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Stride:i*out.Stride+m.Cols], m.Data[i*m.Stride:i*m.Stride+m.Cols])
	}
	return out
}

// Zero clears every element of the view.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// FillRandom fills the view with deterministic pseudo-random values in
// [-1, 1) from the given seed.
func (m *Matrix) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
	}
}

// FillIdentity writes the identity pattern into a square view.
func (m *Matrix) FillIdentity() {
	m.Zero()
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
}

// Equal reports whether two matrices have identical shape and elements
// within tolerance tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxDiff returns the maximum absolute element difference between two
// same-shaped matrices.
func MaxDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}

// FlopsGEMM returns the floating-point operation count of an m×k by k×n
// multiply-accumulate (2·m·n·k).
func FlopsGEMM(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}
