package blas

// The packed GEMM path bottoms out in a register-tiled micro-kernel: one
// microM×kb strip of packed A times one kb×microN strip of packed B,
// accumulated into a contiguous microM×microN tile that the caller adds into
// C. Both operand strips are k-major — element (p, i) of the A strip lives at
// pa[p*microM+i], element (p, j) of the B strip at pb[p*microN+j] — so the
// kernel streams both buffers with unit stride and keeps the whole
// accumulator tile in registers, the structure GotoBLAS2 (the "highly
// optimized" library of the paper's case study) builds its inner loop
// around.
const (
	// microM×microN is the register tile: 4×8 doubles fills the 8 YMM
	// accumulators of the AVX2 kernel and still fits the pure-Go fallback's
	// live-value budget.
	microM = 4
	microN = 8
)

// microAccum is one micro-tile's k-sum, row-major.
type microAccum [microM * microN]float64

// microKernel points at the fastest implementation available on this CPU:
// the portable Go reference below, or the AVX2/FMA assembly kernel installed
// by init on amd64 hosts whose CPUID reports support. It overwrites out with
// the full k-sum; callers add the valid sub-rectangle into C.
var microKernel = microKernelGo

// microKernelName labels the selected implementation for benchmark reports.
var microKernelName = "go"

// KernelISA reports which micro-kernel implementation is active ("avx2" or
// "go"), so benchmark artifacts record what they measured.
func KernelISA() string { return microKernelName }

// microKernelGo is the portable reference micro-kernel. The accumulator tile
// lives in a local array so the compiler can keep rows in registers; operand
// strips are re-sliced once to hoist bounds checks out of the k loop.
func microKernelGo(kb int, pa, pb []float64, out *microAccum) {
	var acc microAccum
	pa = pa[: kb*microM : kb*microM]
	pb = pb[: kb*microN : kb*microN]
	for p := 0; p < kb; p++ {
		bv := pb[p*microN : p*microN+microN : p*microN+microN]
		av := pa[p*microM : p*microM+microM]
		for i, ai := range av {
			if ai == 0 {
				continue // padded rows of short strips contribute nothing
			}
			row := acc[i*microN : i*microN+microN]
			for q, bq := range bv {
				row[q] += ai * bq
			}
		}
	}
	*out = acc
}
