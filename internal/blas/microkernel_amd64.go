//go:build amd64

package blas

// On amd64 the packed micro-kernel has an AVX2/FMA implementation: the 4×8
// accumulator tile occupies eight YMM registers, each k step broadcasts four
// A values and streams two B vectors, and sixteen flops retire per FMA pair
// — roughly an order of magnitude over the scalar mul+add ceiling the Go
// compiler can reach (it never vectorizes float64 loops and does not emit
// FMA on amd64). Selection happens once at init via CPUID; hosts without
// AVX2, FMA or OS-enabled YMM state keep the portable kernel.

func init() {
	if cpuHasAVX2FMA() {
		microKernel = microKernelAVX2
		microKernelName = "avx2"
	}
}

func microKernelAVX2(kb int, pa, pb []float64, out *microAccum) {
	if kb <= 0 {
		*out = microAccum{}
		return
	}
	// Re-slice so the race detector and bounds checks see the exact extent
	// the assembly will read.
	pa = pa[: kb*microM : kb*microM]
	pb = pb[: kb*microN : kb*microN]
	microAVX2(int64(kb), &pa[0], &pb[0], &out[0])
}

// microAVX2 computes out[i*8+j] = Σ_p pa[p*4+i]·pb[p*8+j] for a full 4×8
// tile (implemented in microkernel_amd64.s).
//
//go:noescape
func microAVX2(kb int64, pa, pb, out *float64)

// cpuHasAVX2FMA reports whether this CPU and OS support the AVX2/FMA kernel:
// CPUID must advertise FMA and AVX2, and XGETBV must confirm the OS saves
// XMM+YMM state on context switch.
func cpuHasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if c1&fma == 0 || c1&osxsave == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// cpuid executes CPUID with the given EAX/ECX inputs.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv executes XGETBV with ECX=0 (extended control register 0).
func xgetbv() (eax, edx uint32)
