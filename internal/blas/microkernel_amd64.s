//go:build amd64

#include "textflag.h"

// func microAVX2(kb int64, pa, pb, out *float64)
//
// 4×8 DGEMM micro-kernel: out[i*8+j] = Σ_p pa[p*4+i]·pb[p*8+j].
// Y0..Y7 hold the accumulator tile (two YMM per row of four doubles each);
// every k step loads one 8-wide B vector pair, broadcasts the four A values
// and issues eight FMAs (64 flops). out is overwritten with the k-sum; the
// Go caller adds the valid sub-rectangle into C.
TEXT ·microAVX2(SB), NOSPLIT, $0-32
	MOVQ kb+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ out+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD (DI), Y12
	VMOVUPD 32(DI), Y13

	VBROADCASTSD (SI), Y8
	VBROADCASTSD 8(SI), Y9
	VBROADCASTSD 16(SI), Y10
	VBROADCASTSD 24(SI), Y11

	VFMADD231PD Y12, Y8, Y0
	VFMADD231PD Y13, Y8, Y1
	VFMADD231PD Y12, Y9, Y2
	VFMADD231PD Y13, Y9, Y3
	VFMADD231PD Y12, Y10, Y4
	VFMADD231PD Y13, Y10, Y5
	VFMADD231PD Y12, Y11, Y6
	VFMADD231PD Y13, Y11, Y7

	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

store:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET
