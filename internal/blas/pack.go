package blas

import (
	"sync"
	"sync/atomic"
)

// Packed GEMM: the GotoBLAS-style kernel the paper's case study calls
// "highly optimized". C += A·B is decomposed into kc-deep panels; within
// each panel, B is packed once into strips of microN columns and A into
// strips of microM rows, both k-major and zero-padded to full strips, so the
// register-tiled micro-kernel (microkernel.go) streams unit-stride memory
// regardless of the operands' strides. Pack buffers are recycled through a
// sync.Pool so tiled task-runtime workloads (many GemmPacked calls on tile
// views) allocate only on first use. The parallel variant splits the
// row-panels of C across worker goroutines; every worker packs its own A
// strips while sharing the read-only packed B panel, and workers claim
// strips from an atomic counter so uneven strips cannot imbalance the pool.

// packPanelCols bounds the width of one packed B panel: kc×packPanelCols
// doubles must stay cache-resident, and a bound keeps the pack buffers small
// for very wide matrices.
const packPanelCols = 2048

// packPool recycles pack buffers across calls (and across the goroutines of
// the parallel path).
var packPool = sync.Pool{New: func() any { return new([]float64) }}

// packBuf returns a pooled buffer of length n.
func packBuf(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// roundUp returns v rounded up to a multiple of q.
func roundUp(v, q int) int { return (v + q - 1) / q * q }

// packPanelA copies the mb×kb block of a at (i0, p0) into pa as zero-padded
// strips of microM rows, k-major: strip s holds rows i0+s*microM.. and its
// element (p, r) lands at pa[s*kb*microM + p*microM + r].
func packPanelA(a *Matrix, i0, p0, mb, kb int, pa []float64) {
	idx := 0
	for i := 0; i < mb; i += microM {
		ih := min(microM, mb-i)
		for p := 0; p < kb; p++ {
			base := (i0+i)*a.Stride + p0 + p
			for r := 0; r < microM; r++ {
				v := 0.0
				if r < ih {
					v = a.Data[base+r*a.Stride]
				}
				pa[idx] = v
				idx++
			}
		}
	}
}

// packPanelB copies the kb×nb block of b at (p0, j0) into pb as zero-padded
// strips of microN columns, k-major: strip s holds columns j0+s*microN.. and
// its element (p, q) lands at pb[s*kb*microN + p*microN + q].
func packPanelB(b *Matrix, p0, j0, kb, nb int, pb []float64) {
	idx := 0
	for j := 0; j < nb; j += microN {
		jw := min(microN, nb-j)
		for p := 0; p < kb; p++ {
			base := (p0+p)*b.Stride + j0 + j
			for q := 0; q < microN; q++ {
				v := 0.0
				if q < jw {
					v = b.Data[base+q]
				}
				pb[idx] = v
				idx++
			}
		}
	}
}

// packedStrip multiplies one packed A row-strip against the shared packed B
// panel and accumulates into C. pa holds the strip's packed panel (filled
// here); pb is the caller's packed B panel for (p0, j0).
func packedStrip(a, c *Matrix, pa, pb []float64, i0, p0, j0, mb, kb, nb int) {
	packPanelA(a, i0, p0, mb, kb, pa)
	var out microAccum
	for i := 0; i < mb; i += microM {
		ih := min(microM, mb-i)
		sa := pa[(i/microM)*kb*microM:]
		for j := 0; j < nb; j += microN {
			jw := min(microN, nb-j)
			sb := pb[(j/microN)*kb*microN:]
			microKernel(kb, sa, sb, &out)
			for r := 0; r < ih; r++ {
				crow := c.Data[(i0+i+r)*c.Stride+j0+j:]
				acc := out[r*microN : r*microN+microN]
				if jw == microN {
					crow = crow[:microN]
					for q, v := range acc {
						crow[q] += v
					}
				} else {
					for q := 0; q < jw; q++ {
						crow[q] += acc[q]
					}
				}
			}
		}
	}
}

// GemmPacked computes C += A·B through the packed micro-kernel path,
// single-threaded. block (clamped by clampBlock) sets the panel depth kc and
// the row-panel height. On strided tile views (Sub) packing recovers the
// locality a plain blocked loop loses; the register tile then turns the
// recovered bandwidth into flops.
func GemmPacked(a, b, c *Matrix, block int) error {
	return gemmPacked(a, b, c, block, 1)
}

// GemmPackedParallel computes C += A·B on the packed micro-kernel path with
// the row-panels of C split across workers goroutines (clamped by
// clampWorkers). The panel decomposition — and therefore the floating-point
// result — is identical for every worker count.
func GemmPackedParallel(a, b, c *Matrix, block, workers int) error {
	return gemmPacked(a, b, c, block, workers)
}

func gemmPacked(a, b, c *Matrix, block, workers int) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	if m == 0 || n == 0 || k == 0 {
		return nil // degenerate: nothing to accumulate
	}
	kc := clampBlock(block)
	if kc > k {
		kc = k
	}
	mc := roundUp(kc, microM)
	nc := packPanelCols
	if n < nc {
		nc = n
	}
	strips := (m + mc - 1) / mc
	workers = clampWorkers(workers, strips)

	pb := packBuf(roundUp(nc, microN) * kc)
	defer packPool.Put(pb)
	paLen := func(kb int) int {
		if mc > m {
			return roundUp(m, microM) * kb
		}
		return mc * kb // mc is already a microM multiple
	}
	for p0 := 0; p0 < k; p0 += kc {
		kb := min(kc, k-p0)
		for j0 := 0; j0 < n; j0 += nc {
			nb := min(nc, n-j0)
			packPanelB(b, p0, j0, kb, nb, (*pb)[:roundUp(nb, microN)*kb])
			if workers == 1 {
				pa := packBuf(paLen(kb))
				for i0 := 0; i0 < m; i0 += mc {
					packedStrip(a, c, *pa, *pb, i0, p0, j0, min(mc, m-i0), kb, nb)
				}
				packPool.Put(pa)
				continue
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					pa := packBuf(paLen(kb))
					defer packPool.Put(pa)
					for {
						s := int(next.Add(1)) - 1
						if s >= strips {
							return
						}
						i0 := s * mc
						packedStrip(a, c, *pa, *pb, i0, p0, j0, min(mc, m-i0), kb, nb)
					}
				}()
			}
			wg.Wait()
		}
	}
	return nil
}
