package blas

// GemmPacked computes C += A·B with the GotoBLAS-style packing strategy:
// panels of B are copied into a contiguous buffer once per (l, j) block so
// the innermost kernel streams unit-stride memory regardless of the source
// stride. On strided tile views (Sub) this recovers most of the locality a
// plain blocked loop loses, which is why GotoBLAS2 packs — the detail the
// paper's case study leans on when it calls the library "highly optimized".
func GemmPacked(a, b, c *Matrix, block int) error {
	m, n, k, err := shapeGEMM(a, b, c)
	if err != nil {
		return err
	}
	if block < 1 {
		block = DefaultBlock
	}
	packed := make([]float64, block*block)
	for ll := 0; ll < k; ll += block {
		lMax := min(ll+block, k)
		for jj := 0; jj < n; jj += block {
			jMax := min(jj+block, n)
			// Pack B[ll:lMax, jj:jMax] row-major into the buffer.
			pw := jMax - jj
			for l := ll; l < lMax; l++ {
				copy(packed[(l-ll)*pw:(l-ll)*pw+pw], b.Data[l*b.Stride+jj:l*b.Stride+jMax])
			}
			for ii := 0; ii < m; ii += block {
				iMax := min(ii+block, m)
				for i := ii; i < iMax; i++ {
					crow := c.Data[i*c.Stride+jj : i*c.Stride+jMax]
					for l := ll; l < lMax; l++ {
						av := a.At(i, l)
						if av == 0 {
							continue
						}
						brow := packed[(l-ll)*pw : (l-ll)*pw+pw]
						for j := range brow {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return nil
}
