package blas

import (
	"testing"
	"testing/quick"
)

func TestGemmPackedAgreesWithNaive(t *testing.T) {
	for _, s := range []struct{ m, n, k int }{
		{1, 1, 1}, {7, 9, 11}, {64, 64, 64}, {65, 63, 67}, {128, 32, 96},
	} {
		a, b, ref := randomGEMM(t, s.m, s.n, s.k, 11)
		if err := GemmNaive(a, b, ref); err != nil {
			t.Fatal(err)
		}
		c := NewMatrix(s.m, s.n)
		if err := GemmPacked(a, b, c, 24); err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(ref, c); d > 1e-9 {
			t.Fatalf("%+v: maxdiff %g", s, d)
		}
	}
}

func TestGemmPackedOnStridedViews(t *testing.T) {
	// Packing must be correct when operands are tile views into a larger
	// parent (non-compact stride) — the case it exists for.
	parent := NewMatrix(64, 64)
	parent.FillRandom(3)
	a := parent.Sub(0, 0, 24, 24)
	b := parent.Sub(8, 8, 24, 24)
	ref := NewMatrix(24, 24)
	if err := GemmNaive(a, b, ref); err != nil {
		t.Fatal(err)
	}
	c := NewMatrix(24, 24)
	if err := GemmPacked(a, b, c, 10); err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(ref, c); d > 1e-9 {
		t.Fatalf("strided maxdiff %g", d)
	}
}

func TestGemmPackedShapeAndDefaults(t *testing.T) {
	a, b, c := NewMatrix(2, 3), NewMatrix(4, 2), NewMatrix(2, 2)
	if err := GemmPacked(a, b, c, 8); err == nil {
		t.Fatal("shape mismatch must fail")
	}
	// block <= 0 falls back to DefaultBlock.
	a2, b2, ref := randomGEMM(t, 16, 16, 16, 5)
	if err := GemmNaive(a2, b2, ref); err != nil {
		t.Fatal(err)
	}
	c2 := NewMatrix(16, 16)
	if err := GemmPacked(a2, b2, c2, 0); err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(ref, c2); d > 1e-9 {
		t.Fatalf("default block maxdiff %g", d)
	}
}

// TestGemmPackedDegenerateShapes cross-checks the packed kernels against the
// naive kernel on the shapes that stress panel edges: single-row, single-
// column, single-inner-dim, and empty (m, n or k zero — a no-op by the
// C += A·B contract).
func TestGemmPackedDegenerateShapes(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 64, 64}, {64, 1, 64}, {64, 64, 1},
		{1, 1, 64}, {1, 64, 1}, {64, 1, 1}, {1, 1, 1},
		{0, 8, 8}, {8, 0, 8}, {8, 8, 0}, {0, 0, 0},
		{3, 129, 65}, {129, 3, 7},
	}
	for _, s := range shapes {
		a, b := NewMatrix(s.m, s.k), NewMatrix(s.k, s.n)
		a.FillRandom(int64(s.m*1000 + s.n*100 + s.k))
		b.FillRandom(int64(s.n*1000 + s.k*100 + s.m))
		ref := NewMatrix(s.m, s.n)
		if err := GemmNaive(a, b, ref); err != nil {
			t.Fatalf("%+v: naive: %v", s, err)
		}
		c1 := NewMatrix(s.m, s.n)
		if err := GemmPacked(a, b, c1, 32); err != nil {
			t.Fatalf("%+v: packed: %v", s, err)
		}
		if d := MaxDiff(ref, c1); d > 1e-9 {
			t.Errorf("%+v: packed maxdiff %g", s, d)
		}
		for _, workers := range []int{1, 2, 3, 5} {
			c2 := NewMatrix(s.m, s.n)
			if err := GemmPackedParallel(a, b, c2, 32, workers); err != nil {
				t.Fatalf("%+v w=%d: packed-parallel: %v", s, workers, err)
			}
			if d := MaxDiff(ref, c2); d > 1e-9 {
				t.Errorf("%+v w=%d: packed-parallel maxdiff %g", s, workers, d)
			}
		}
	}
}

// Property-based: packed-parallel agrees with naive for any worker count on
// random non-block-multiple shapes.
func TestQuickGemmPackedParallelAgreesWithNaive(t *testing.T) {
	f := func(mm, nn, kk, bb, ww uint8, seed int64) bool {
		m, n, k := int(mm%33)+1, int(nn%33)+1, int(kk%33)+1
		block := int(bb%13) + 1
		workers := int(ww%6) + 1
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		a.FillRandom(seed)
		b.FillRandom(seed + 1)
		ref, c := NewMatrix(m, n), NewMatrix(m, n)
		if GemmNaive(a, b, ref) != nil || GemmPackedParallel(a, b, c, block, workers) != nil {
			return false
		}
		return MaxDiff(ref, c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: packed and blocked agree on random shapes and blocks.
func TestQuickGemmPackedAgreesWithBlocked(t *testing.T) {
	f := func(mm, nn, kk, bb uint8, seed int64) bool {
		m, n, k := int(mm%20)+1, int(nn%20)+1, int(kk%20)+1
		block := int(bb%10) + 1
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		a.FillRandom(seed)
		b.FillRandom(seed + 1)
		c1, c2 := NewMatrix(m, n), NewMatrix(m, n)
		if GemmBlocked(a, b, c1, block) != nil || GemmPacked(a, b, c2, block) != nil {
			return false
		}
		return MaxDiff(c1, c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
