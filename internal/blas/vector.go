package blas

import (
	"fmt"
	"sync"
)

// VecAdd computes a[i] += b[i], the paper's annotated example task
// ("vectoradd" with A:readwrite, B:read).
func VecAdd(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("blas: vecadd length mismatch %d != %d", len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return nil
}

// VecAddParallel splits VecAdd across workers goroutines.
func VecAddParallel(a, b []float64, workers int) error {
	if len(a) != len(b) {
		return fmt.Errorf("blas: vecadd length mismatch %d != %d", len(a), len(b))
	}
	workers = clampWorkers(workers, len(a))
	if workers <= 1 {
		return VecAdd(a, b)
	}
	var wg sync.WaitGroup
	chunk := (len(a) + workers - 1) / workers
	for start := 0; start < len(a); start += chunk {
		end := min(start+chunk, len(a))
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				a[i] += b[i]
			}
		}(start, end)
	}
	wg.Wait()
	return nil
}

// Daxpy computes y[i] += alpha*x[i].
func Daxpy(alpha float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("blas: daxpy length mismatch %d != %d", len(x), len(y))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
	return nil
}

// Gemv computes y += A·x.
func Gemv(a *Matrix, x, y []float64) error {
	if len(x) != a.Cols {
		return fmt.Errorf("blas: gemv x length %d, want %d", len(x), a.Cols)
	}
	if len(y) != a.Rows {
		return fmt.Errorf("blas: gemv y length %d, want %d", len(y), a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] += s
	}
	return nil
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("blas: dot length mismatch %d != %d", len(x), len(y))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s, nil
}
