// Package client is the shared HTTP client layer for tools and daemons that
// talk to pdlserved: pdlquery/pdlpredict server modes, pdlworkerd
// registration and heartbeats, and the cluster master's platform fetches.
//
// It packages the three behaviours every caller needs and none should
// re-implement:
//
//   - conditional GET: the server content-hashes documents into strong
//     ETags, so a cached ETag turns repeat fetches into 304s;
//   - bounded reads: response bodies are limited (the mirror of the
//     server's MaxBytesReader) so a misbehaving peer cannot balloon a
//     client;
//   - retry with capped exponential backoff on transport errors and
//     502/503/504, honouring Retry-After when the server sends one.
//
// Retries assume idempotent requests. That holds for every endpoint this
// package is pointed at — pdlserved PUTs are content-hash deduped, worker
// registration and heartbeats are lease upserts, DELETE is naturally
// idempotent — and is the caller's responsibility otherwise.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Defaults mirror the server's own limits.
const (
	DefaultMaxBodyBytes = 8 << 20
	DefaultRetries      = 3
	DefaultBackoff      = 100 * time.Millisecond
	maxBackoff          = 5 * time.Second
	maxRetryAfter       = 30 * time.Second
)

// StatusError is a non-2xx response, carrying the server's structured error
// body when it sent one ({"error": ..., "problems": [...]}).
type StatusError struct {
	Code     int
	Message  string
	Problems []string
}

func (e *StatusError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.Code)
	}
	if len(e.Problems) > 0 {
		return fmt.Sprintf("server returned %d: %s (%s)", e.Code, msg, strings.Join(e.Problems, "; "))
	}
	return fmt.Sprintf("server returned %d: %s", e.Code, msg)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// Client wraps a base URL with the shared request behaviours.
type Client struct {
	base    string
	http    *http.Client
	maxBody int64
	retries int
	backoff time.Duration
	// sleep is swapped in tests to avoid real delays.
	sleep func(context.Context, time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithMaxBody bounds response body reads.
func WithMaxBody(n int64) Option { return func(c *Client) { c.maxBody = n } }

// WithRetry sets the retry count (attempts = retries+1) and initial backoff.
// retries=0 disables retrying.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries = retries; c.backoff = backoff }
}

// New validates the base URL and builds a client.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: invalid base URL %q: %v", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		http:    &http.Client{Timeout: 30 * time.Second},
		maxBody: DefaultMaxBodyBytes,
		retries: DefaultRetries,
		backoff: DefaultBackoff,
		sleep:   sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Base returns the normalised base URL.
func (c *Client) Base() string { return c.base }

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether a response status is worth retrying: the server
// said "try later" (503 drain/read-only, 429 rate limit) or a gateway hop
// failed (502/504).
func retryable(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusTooManyRequests:
		return true
	}
	return false
}

// do runs one request with retries. body is re-materialised per attempt.
// Returns the final response (2xx or 304) with its body fully read and
// closed, the raw bytes, or an error.
func (c *Client) do(ctx context.Context, method, path string, header http.Header, body []byte) (*http.Response, []byte, error) {
	var lastErr error
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, nil, fmt.Errorf("client: building request: %v", err)
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.http.Do(req)
		var data []byte
		if err == nil {
			data, err = c.readBody(resp)
		}
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusNotModified,
			resp.StatusCode >= 200 && resp.StatusCode < 300:
			return resp, data, nil
		case retryable(resp.StatusCode):
			lastErr = statusError(resp, data)
			if ra := retryAfter(resp); ra > backoff {
				backoff = ra
			}
		default:
			return nil, nil, statusError(resp, data)
		}
		if attempt >= c.retries || ctx.Err() != nil {
			return nil, nil, lastErr
		}
		if err := c.sleep(ctx, backoff); err != nil {
			return nil, nil, lastErr
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// readBody drains and closes the response body under the size limit.
func (c *Client) readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %v", err)
	}
	if int64(len(data)) > c.maxBody {
		return nil, fmt.Errorf("client: response exceeds %d byte limit", c.maxBody)
	}
	return data, nil
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d := time.Duration(secs) * time.Second
			if d > maxRetryAfter {
				d = maxRetryAfter
			}
			return d
		}
	}
	return 0
}

func statusError(resp *http.Response, data []byte) error {
	se := &StatusError{Code: resp.StatusCode}
	var body struct {
		Error    string   `json:"error"`
		Problems []string `json:"problems"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		se.Message = body.Error
		se.Problems = body.Problems
	} else if len(data) > 0 {
		se.Message = strings.TrimSpace(string(data))
		if len(se.Message) > 200 {
			se.Message = se.Message[:200] + "..."
		}
	}
	return se
}

// GetJSON fetches path and decodes the JSON response into out (skipped when
// out is nil).
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	_, _, err := c.GetJSONConditional(ctx, path, "", out)
	return err
}

// GetJSONConditional fetches path with If-None-Match when etag is non-empty.
// On 304 it reports notModified=true and leaves out untouched; otherwise it
// decodes into out and returns the response's ETag for the next call.
func (c *Client) GetJSONConditional(ctx context.Context, path, etag string, out any) (newETag string, notModified bool, err error) {
	var h http.Header
	if etag != "" {
		h = http.Header{"If-None-Match": {etag}}
	}
	resp, data, err := c.do(ctx, http.MethodGet, path, h, nil)
	if err != nil {
		return "", false, err
	}
	if resp.StatusCode == http.StatusNotModified {
		return etag, true, nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return "", false, fmt.Errorf("client: decoding %s response: %v", path, err)
		}
	}
	return resp.Header.Get("ETag"), false, nil
}

// GetBytes fetches path raw (the XML platform documents).
func (c *Client) GetBytes(ctx context.Context, path string) ([]byte, error) {
	_, data, err := c.do(ctx, http.MethodGet, path, nil, nil)
	return data, err
}

// GetBytesConditional fetches path raw with If-None-Match when etag is
// non-empty. On 304 it reports notModified=true with nil data; otherwise it
// returns the body and the response's ETag for the next call.
func (c *Client) GetBytesConditional(ctx context.Context, path, etag string) (data []byte, newETag string, notModified bool, err error) {
	var h http.Header
	if etag != "" {
		h = http.Header{"If-None-Match": {etag}}
	}
	resp, data, err := c.do(ctx, http.MethodGet, path, h, nil)
	if err != nil {
		return nil, "", false, err
	}
	if resp.StatusCode == http.StatusNotModified {
		return nil, etag, true, nil
	}
	return data, resp.Header.Get("ETag"), false, nil
}

// PostJSON sends in as a JSON body and decodes the response into out
// (either may be nil).
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	return c.sendJSON(ctx, http.MethodPost, path, in, out)
}

// PutJSON sends in as a JSON body via PUT and decodes the response into out.
func (c *Client) PutJSON(ctx context.Context, path string, in, out any) error {
	return c.sendJSON(ctx, http.MethodPut, path, in, out)
}

func (c *Client) sendJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	h := http.Header{"Content-Type": {"application/json"}}
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s body: %v", path, err)
		}
	}
	_, data, err := c.do(ctx, method, path, h, body)
	if err != nil {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s response: %v", path, err)
		}
	}
	return nil
}

// PutBytes uploads a raw document (platform XML) with the given content type.
func (c *Client) PutBytes(ctx context.Context, path, contentType string, body []byte) error {
	h := http.Header{"Content-Type": {contentType}}
	_, _, err := c.do(ctx, http.MethodPut, path, h, body)
	return err
}

// Delete issues a DELETE; 404 surfaces as a StatusError for callers that
// care (deregistering an expired lease is not an error worth retrying).
func (c *Client) Delete(ctx context.Context, path string) error {
	_, _, err := c.do(ctx, http.MethodDelete, path, nil, nil)
	return err
}
