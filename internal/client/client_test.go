package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func noSleep(c *Client) {
	c.sleep = func(context.Context, time.Duration) error { return nil }
}

func newTest(t *testing.T, h http.Handler, opts ...Option) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	noSleep(c)
	return c, srv
}

func TestNewValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid base", bad)
		}
	}
	c, err := New("http://localhost:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != "http://localhost:8080" {
		t.Fatalf("base = %q; trailing slash not trimmed", c.Base())
	}
}

func TestGetJSONConditional(t *testing.T) {
	var hits atomic.Int64
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		const etag = `"abc123"`
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"name": "cell"})
	}))

	var out struct {
		Name string `json:"name"`
	}
	etag, notMod, err := c.GetJSONConditional(context.Background(), "/v1/platforms/cell", "", &out)
	if err != nil || notMod {
		t.Fatalf("first fetch: err=%v notMod=%v", err, notMod)
	}
	if out.Name != "cell" || etag != `"abc123"` {
		t.Fatalf("first fetch: out=%+v etag=%q", out, etag)
	}

	out.Name = ""
	etag2, notMod, err := c.GetJSONConditional(context.Background(), "/v1/platforms/cell", etag, &out)
	if err != nil || !notMod {
		t.Fatalf("conditional fetch: err=%v notMod=%v", err, notMod)
	}
	if etag2 != etag {
		t.Fatalf("304 must return the cached etag, got %q", etag2)
	}
	if out.Name != "" {
		t.Fatal("304 must not touch out")
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d; want 2", hits.Load())
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var hits atomic.Int64
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}), WithRetry(3, time.Millisecond))

	var out struct{ OK bool }
	if err := c.GetJSON(context.Background(), "/x", &out); err != nil || !out.OK {
		t.Fatalf("err=%v out=%+v", err, out)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d; want 3 (two retries)", hits.Load())
	}
}

func TestRetryExhaustedReturnsStatusError(t *testing.T) {
	var hits atomic.Int64
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"error": "read-only"})
	}), WithRetry(2, time.Millisecond))

	err := c.GetJSON(context.Background(), "/x", nil)
	if !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("err = %v; want 503 StatusError", err)
	}
	if !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("error lost server message: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d; want 3 (retries+1)", hits.Load())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]any{"error": "failed validation", "problems": []string{"p1", "p2"}})
	}), WithRetry(3, time.Millisecond))

	err := c.GetJSON(context.Background(), "/x", nil)
	if hits.Load() != 1 {
		t.Fatalf("hits = %d; 4xx must not retry", hits.Load())
	}
	var se *StatusError
	if !asStatus(err, &se) || se.Code != 422 || len(se.Problems) != 2 {
		t.Fatalf("err = %#v; want 422 with problems", err)
	}
}

func asStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

func TestBodyLimit(t *testing.T) {
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 4096))
	}), WithMaxBody(1024), WithRetry(0, 0))

	err := c.GetJSON(context.Background(), "/big", nil)
	if err == nil || !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("err = %v; want body-limit error", err)
	}
}

func TestPostJSONRoundTrip(t *testing.T) {
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.Header.Get("Content-Type") != "application/json" {
			t.Errorf("method=%s ct=%s", r.Method, r.Header.Get("Content-Type"))
		}
		var in map[string]string
		json.NewDecoder(r.Body).Decode(&in)
		json.NewEncoder(w).Encode(map[string]string{"echo": in["msg"]})
	}))

	var out struct {
		Echo string `json:"echo"`
	}
	if err := c.PostJSON(context.Background(), "/v1/workers", map[string]string{"msg": "hi"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Echo != "hi" {
		t.Fatalf("echo = %q", out.Echo)
	}
}

func TestDeleteSurfaces404(t *testing.T) {
	c, _ := newTest(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}), WithRetry(0, 0))
	if err := c.Delete(context.Background(), "/v1/workers/w1"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v; want 404", err)
	}
}

func TestContextCancelStopsRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		cancel() // cancel after first attempt; retry loop must stop
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, err := New(srv.URL, WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.GetJSON(ctx, "/x", nil); err == nil {
		t.Fatal("expected error after cancel")
	}
	if hits.Load() > 2 {
		t.Fatalf("hits = %d; retry loop ignored cancellation", hits.Load())
	}
}
