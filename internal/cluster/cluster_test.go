package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// --- payload codec ---

func TestPayloadCodecCompactsViews(t *testing.T) {
	parent := blas.NewMatrix(8, 8)
	parent.FillRandom(1)
	view := parent.Sub(2, 2, 4, 4)

	data, err := EncodePayload(view)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePayload(data)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.(*blas.Matrix)
	if !ok {
		t.Fatalf("decoded %T, want *blas.Matrix", got)
	}
	if m.Rows != 4 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 16 {
		t.Fatalf("view not compacted: %dx%d stride %d len %d", m.Rows, m.Cols, m.Stride, len(m.Data))
	}
	if d := blas.MaxDiff(view, m); d != 0 {
		t.Fatalf("compaction changed values (maxdiff %g)", d)
	}

	// A compact matrix ships as-is.
	compact := blas.NewMatrix(3, 3)
	if data, err = EncodePayload(compact); err != nil {
		t.Fatal(err)
	}
	if got, err = DecodePayload(data); err != nil {
		t.Fatal(err)
	}
	if m = got.(*blas.Matrix); m.Rows != 3 || m.Stride != 3 {
		t.Fatalf("compact matrix mangled: %+v", m)
	}
}

func TestApplyPayloadPreservesAliasing(t *testing.T) {
	parent := blas.NewMatrix(8, 8)
	view := parent.Sub(4, 4, 4, 4)
	src := blas.NewMatrix(4, 4)
	src.FillRandom(7)

	applied, err := ApplyPayload(view, src)
	if err != nil {
		t.Fatal(err)
	}
	if applied != any(view) {
		t.Fatal("apply over a matrix must mutate in place, not replace")
	}
	// The write must be visible through the parent.
	if parent.Data[4*8+4] != src.Data[0] {
		t.Fatal("apply did not write through the view into the parent")
	}
	// Elements outside the view stay zero.
	if parent.Data[0] != 0 {
		t.Fatal("apply leaked outside the view")
	}

	if _, err := ApplyPayload(view, blas.NewMatrix(2, 2)); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := ApplyPayload(view, []float64{1}); err == nil {
		t.Fatal("type mismatch over a matrix must error")
	}

	// nil destination: replacement.
	if got, _ := ApplyPayload(nil, src); got != any(src) {
		t.Fatal("nil dst must adopt src")
	}
	// Slice copy in place.
	d := []float64{0, 0}
	if got, _ := ApplyPayload(d, []float64{3, 4}); got == nil || d[1] != 4 {
		t.Fatal("float64 slice apply must copy in place")
	}
}

// --- worker protocol ---

func gemmTestCodelet(t testing.TB, delay time.Duration) *taskrt.Codelet {
	t.Helper()
	cl, err := taskrt.NewCodelet("dgemm",
		taskrt.Impl{Arch: "x86", Func: func(tc *taskrt.TaskContext) error {
			if delay > 0 {
				time.Sleep(delay)
			}
			a := tc.Payload(0).(*blas.Matrix)
			b := tc.Payload(1).(*blas.Matrix)
			c := tc.Payload(2).(*blas.Matrix)
			return blas.GemmPacked(a, b, c, 0)
		}})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func postExec(t *testing.T, url string, req *ExecRequest) *ExecResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+PathExecute, ContentTypeGob, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("execute returned %d", httpResp.StatusCode)
	}
	var resp ExecResponse
	if err := gob.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestWorkerExecuteCacheAndNeedData(t *testing.T) {
	w, err := NewWorker(WorkerConfig{
		Name: "w1", Archs: []string{"x86"},
		Codelets: []*taskrt.Codelet{gemmTestCodelet(t, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	a, b, c := blas.NewMatrix(4, 4), blas.NewMatrix(4, 4), blas.NewMatrix(4, 4)
	a.FillRandom(1)
	b.FillRandom(2)
	enc := func(m *blas.Matrix) []byte {
		data, err := EncodePayload(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	accesses := func(inline bool, cVer uint64) []AccessSpec {
		specs := []AccessSpec{
			{HandleID: 0, Name: "A", Mode: int(taskrt.Read)},
			{HandleID: 1, Name: "B", Mode: int(taskrt.Read)},
			{HandleID: 2, Name: "C", Mode: int(taskrt.ReadWrite), Version: cVer},
		}
		if inline {
			specs[0].Inline, specs[1].Inline, specs[2].Inline = enc(a), enc(b), enc(c)
		}
		return specs
	}

	// Reference without prior inline: a cache miss, not a fault.
	resp := postExec(t, srv.URL, &ExecRequest{TaskID: 0, Codelet: "dgemm", Accesses: accesses(false, 0)})
	if resp.OK || len(resp.NeedData) != 3 {
		t.Fatalf("cold cache must bounce all refs, got OK=%v NeedData=%v", resp.OK, resp.NeedData)
	}

	// Inline everything: executes, writes come back at version+1.
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 0, Codelet: "dgemm", Accesses: accesses(true, 0)})
	if !resp.OK {
		t.Fatalf("inline execute failed: %s", resp.Error)
	}
	if len(resp.Written) != 1 || resp.Written[0].HandleID != 2 || resp.Written[0].Version != 1 {
		t.Fatalf("written = %+v, want handle 2 at version 1", resp.Written)
	}

	// Same handles by reference at the cached versions: executes again,
	// accumulating on the worker-cached C (now at version 1).
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 1, Codelet: "dgemm", Accesses: accesses(false, 1)})
	if !resp.OK {
		t.Fatalf("cached execute failed: %s (NeedData=%v)", resp.Error, resp.NeedData)
	}
	if resp.Written[0].Version != 2 {
		t.Fatalf("second write version = %d, want 2", resp.Written[0].Version)
	}
	got, err := DecodePayload(resp.Written[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Two accumulations of A·B over a zero C.
	ref := blas.NewMatrix(4, 4)
	blas.GemmNaive(a, b, ref)
	blas.GemmNaive(a, b, ref)
	if d := blas.MaxDiff(ref, got.(*blas.Matrix)); d > 1e-12 {
		t.Fatalf("cached accumulation wrong (maxdiff %g)", d)
	}

	// Unknown codelet: in-band error, not NeedData.
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 2, Codelet: "fft"})
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown codelet must fail in-band, got %+v", resp)
	}
}

// A worker that serves non-tracing masters (or whose collector died)
// accumulates spans for the GET /v1/trace pull path on every execution; the
// TraceCap bound must hold the buffer at the cap with oldest-drop, export
// the drop count as a monotonic counter, and keep the drain path serving
// the newest spans.
func TestWorkerTraceSpanBufferBounded(t *testing.T) {
	cl, err := taskrt.NewCodelet("nop",
		taskrt.Impl{Arch: "x86", Func: func(*taskrt.TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	const cap = 8
	w, err := NewWorker(WorkerConfig{
		Name: "w", Archs: []string{"x86"},
		Codelets: []*taskrt.Codelet{cl},
		TraceCap: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	const execs = 40
	for i := 0; i < execs; i++ {
		if resp := postExec(t, srv.URL, &ExecRequest{TaskID: i, Codelet: "nop"}); !resp.OK {
			t.Fatalf("exec %d failed: %s", i, resp.Error)
		}
	}
	if got := w.Trace().Len(); got > cap {
		t.Fatalf("span buffer holds %d spans past cap %d", got, cap)
	}
	if got := w.Trace().DroppedTotal(); got != execs-cap {
		t.Fatalf("DroppedTotal = %d, want %d", got, execs-cap)
	}

	// The drop counter is federable worker telemetry.
	mres, err := http.Get(srv.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(mres.Body)
	mres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("taskrt_worker_trace_dropped_spans_total %d", execs-cap)
	if !strings.Contains(string(metricsBody), want) {
		t.Fatalf("metrics lack %q:\n%s", want, metricsBody)
	}

	// Drain still works and serves the newest spans, oldest-dropped.
	tres, err := http.Get(srv.URL + PathTrace + "?drain=1")
	if err != nil {
		t.Fatal(err)
	}
	drained, err := trace.ReadJSONL(tres.Body)
	tres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	events := drained.OfKind(trace.Task)
	if len(events) != cap {
		t.Fatalf("drained %d spans, want %d", len(events), cap)
	}
	for _, e := range events {
		if e.TaskID < execs-cap {
			t.Fatalf("drained span for task %d: an old span survived oldest-drop", e.TaskID)
		}
	}

	// Recording continues after the drain, with no further drops while the
	// buffer stays under the cap.
	for i := 0; i < 3; i++ {
		if resp := postExec(t, srv.URL, &ExecRequest{TaskID: 100 + i, Codelet: "nop"}); !resp.OK {
			t.Fatalf("post-drain exec failed: %s", resp.Error)
		}
	}
	if got := w.Trace().Len(); got != 3 {
		t.Fatalf("post-drain buffer holds %d spans, want 3", got)
	}
	if got := w.Trace().DroppedTotal(); got != execs-cap {
		t.Fatalf("DroppedTotal moved to %d while under the cap", got)
	}
}

func TestWorkerFailedKernelDropsWrittenCache(t *testing.T) {
	// A kernel that mutates its write-mode payload in place and then fails
	// must not leave the corrupted object cache-resident at its pre-write
	// version: the retry would silently consume it as pristine input.
	var fail atomic.Bool
	cl, err := taskrt.NewCodelet("poke",
		taskrt.Impl{Arch: "x86", Func: func(tc *taskrt.TaskContext) error {
			c := tc.Payload(0).(*blas.Matrix)
			c.Data[0]++
			if fail.Load() {
				return fmt.Errorf("injected failure after mutation")
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{Name: "w", Archs: []string{"x86"}, Codelets: []*taskrt.Codelet{cl}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	c := blas.NewMatrix(2, 2)
	enc, err := EncodePayload(c)
	if err != nil {
		t.Fatal(err)
	}
	access := func(inline []byte, ver uint64) []AccessSpec {
		return []AccessSpec{{HandleID: 0, Name: "C", Mode: int(taskrt.ReadWrite), Version: ver, Inline: inline}}
	}

	// Seed the cache: inline execute succeeds, C cached at version 1.
	resp := postExec(t, srv.URL, &ExecRequest{TaskID: 0, Codelet: "poke", Accesses: access(enc, 0)})
	if !resp.OK || resp.Written[0].Version != 1 {
		t.Fatalf("seed execute: %+v", resp)
	}

	// Cache-resident execute mutates C then fails in-band.
	fail.Store(true)
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 1, Codelet: "poke", Accesses: access(nil, 1)})
	if resp.OK || resp.Error == "" {
		t.Fatalf("injected failure not surfaced: %+v", resp)
	}

	// The corrupted entry must be gone: a reference at the pre-write version
	// bounces as NeedData instead of executing on poisoned data.
	fail.Store(false)
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 1, Codelet: "poke", Accesses: access(nil, 1)})
	if resp.OK || len(resp.NeedData) != 1 || resp.NeedData[0] != 0 {
		t.Fatalf("corrupted cache entry survived the failed kernel: %+v", resp)
	}

	// Re-inlining canonical bytes recovers: one mutation per success.
	canonical := blas.NewMatrix(2, 2)
	canonical.Data[0] = 1
	if enc, err = EncodePayload(canonical); err != nil {
		t.Fatal(err)
	}
	resp = postExec(t, srv.URL, &ExecRequest{TaskID: 1, Codelet: "poke", Accesses: access(enc, 1)})
	if !resp.OK {
		t.Fatalf("retry with canonical inline failed: %s", resp.Error)
	}
	got, err := DecodePayload(resp.Written[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.(*blas.Matrix).Data[0]; v != 2 {
		t.Fatalf("retry result = %g, want 2 (exactly one mutation per successful attempt)", v)
	}
}

// --- end-to-end cluster runs ---

func clusterPlatform(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("cpu").
		Master("host", core.Arch("x86"), core.Qty(2)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// submitTiledGemm builds the C += A·B tile graph (n divisible by tile) and
// returns the operands for verification.
func submitTiledGemm(t testing.TB, rt *taskrt.Runtime, cl *taskrt.Codelet, n, tile int) (a, b, c *blas.Matrix) {
	t.Helper()
	a, b, c = blas.NewMatrix(n, n), blas.NewMatrix(n, n), blas.NewMatrix(n, n)
	a.FillRandom(11)
	b.FillRandom(12)
	nt := n / tile
	handle := func(name string, m *blas.Matrix, i, j int) *taskrt.Handle {
		return rt.NewHandle(fmt.Sprintf("%s[%d,%d]", name, i, j),
			int64(tile)*int64(tile)*8, m.Sub(i*tile, j*tile, tile, tile))
	}
	hA := make([]*taskrt.Handle, nt*nt)
	hB := make([]*taskrt.Handle, nt*nt)
	hC := make([]*taskrt.Handle, nt*nt)
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			hA[i*nt+j] = handle("A", a, i, j)
			hB[i*nt+j] = handle("B", b, i, j)
			hC[i*nt+j] = handle("C", c, i, j)
		}
	}
	var graph []*taskrt.Task
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			for k := 0; k < nt; k++ {
				graph = append(graph, &taskrt.Task{
					Codelet: cl,
					Accesses: []taskrt.Access{
						taskrt.R(hA[i*nt+k]), taskrt.R(hB[k*nt+j]), taskrt.RW(hC[i*nt+j]),
					},
					Flops: blas.FlopsGEMM(tile, tile, tile),
					Label: fmt.Sprintf("C[%d,%d]+=A[%d,%d]*B[%d,%d]", i, j, i, k, k, j),
				})
			}
		}
	}
	if err := rt.SubmitBatch(graph); err != nil {
		t.Fatal(err)
	}
	return a, b, c
}

func verifyGemm(t testing.TB, a, b, c *blas.Matrix) {
	t.Helper()
	ref := blas.NewMatrix(a.Rows, b.Cols)
	if err := blas.GemmBlocked(a, b, ref, 0); err != nil {
		t.Fatal(err)
	}
	if d := blas.MaxDiff(ref, c); d > 1e-8 {
		t.Fatalf("cluster result wrong (maxdiff %g)", d)
	}
}

func startWorker(t testing.TB, name string, cl *taskrt.Codelet, opts WorkerConfig) (*Worker, *httptest.Server) {
	t.Helper()
	opts.Name = name
	opts.Archs = []string{"x86"}
	opts.Codelets = []*taskrt.Codelet{cl}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

func fastMaster(t testing.TB, nodes []NodeConfig, mut func(*Config)) *Master {
	t.Helper()
	cfg := Config{
		Nodes:          nodes,
		HeartbeatEvery: 10 * time.Millisecond,
		// The generous timeout matters under -race: a healthy /healthz can
		// take tens of milliseconds there, and false timeouts declare live
		// nodes dead. Tripped proxies fail with an immediate 503, so death
		// detection in the failure tests stays at misses×cadence.
		HeartbeatTimeout: 250 * time.Millisecond,
		HeartbeatMisses:  3,
		BackoffBase:      5 * time.Millisecond,
		BackoffCap:       50 * time.Millisecond,
		AllDeadTimeout:   5 * time.Second,
		Logf:             t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClusterGEMMTwoNodes(t *testing.T) {
	cl := gemmTestCodelet(t, 0)
	tr := trace.New()
	_, srv1 := startWorker(t, "w1", cl, WorkerConfig{Slots: 2})
	_, srv2 := startWorker(t, "w2", cl, WorkerConfig{Slots: 2})

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	m := fastMaster(t, []NodeConfig{
		{Name: "w1", Addr: srv1.URL},
		{Name: "w2", Addr: srv2.URL},
	}, func(cfg *Config) { cfg.Trace = tr })
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)

	if rep.Tasks != 64 {
		t.Fatalf("report tasks = %d, want 64", rep.Tasks)
	}
	total := 0
	for _, n := range rep.PerNode {
		total += n.Tasks
		if n.Dead {
			t.Fatalf("node %s reported dead in a healthy run", n.Name)
		}
	}
	if total != rep.Tasks {
		t.Fatalf("per-node tasks sum to %d, want %d (exactly-once violated)", total, rep.Tasks)
	}
	if rep.TransferBytes == 0 {
		t.Fatal("no transfer bytes accounted: inlining not recorded")
	}
	if len(tr.OfKind(trace.Place)) != 64+rep.PerNode[0].NeedData+rep.PerNode[1].NeedData {
		// One Place per dispatch; NeedData bounces redispatch.
		t.Fatalf("place events = %d for %d tasks", len(tr.OfKind(trace.Place)), rep.Tasks)
	}
	if rep.String() == "" {
		t.Fatal("empty report text")
	}
}

func TestClusterNeedDataSelfHeals(t *testing.T) {
	cl := gemmTestCodelet(t, 0)
	// A 1-entry cache guarantees evictions between tasks: the master's
	// residency beliefs go stale and every stale reference must bounce back
	// as NeedData and re-inline, never failing the run.
	_, srv := startWorker(t, "tiny", cl, WorkerConfig{Slots: 1, CacheEntries: 1})

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 32, 16)

	m := fastMaster(t, []NodeConfig{{Name: "tiny", Addr: srv.URL}}, nil)
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)
	if rep.PerNode[0].NeedData == 0 {
		t.Fatal("1-entry cache run must have bounced at least one dispatch")
	}
	if rep.FailedAttempts != 0 {
		t.Fatalf("NeedData must not consume attempts, got %d failures", rep.FailedAttempts)
	}
}

// flakyProxy wraps a worker handler with a controllable failure mode. Once
// tripped, control endpoints return 503; execute requests either hang until
// release (simulating a wedged node) or delay then serve (simulating a
// slow node whose late results race the resubmitted copies).
type flakyProxy struct {
	inner    http.Handler
	mu       sync.Mutex
	executes int
	tripAt   int  // trip when the Nth execute arrives (0: only manual)
	execOnly bool // tripped: fail only executes, keep control endpoints healthy
	tripped  bool
	hang     chan struct{} // non-nil: tripped executes block here
	delay    time.Duration // tripped executes sleep, then serve for real
}

func (f *flakyProxy) setTripped(v bool) {
	f.mu.Lock()
	f.tripped = v
	f.mu.Unlock()
}

func (f *flakyProxy) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	isExec := r.Method == http.MethodPost && r.URL.Path == PathExecute
	f.mu.Lock()
	if isExec {
		f.executes++
		// One-shot: re-arming would immediately re-trip a recovered node.
		if f.tripAt > 0 && f.executes >= f.tripAt {
			f.tripped = true
			f.tripAt = 0
		}
	}
	tripped := f.tripped
	f.mu.Unlock()
	if !tripped || (f.execOnly && !isExec) {
		f.inner.ServeHTTP(rw, r)
		return
	}
	if isExec {
		if f.hang != nil {
			<-f.hang
		} else if f.delay > 0 {
			time.Sleep(f.delay)
			f.inner.ServeHTTP(rw, r)
			return
		}
	}
	http.Error(rw, `{"error":"node down"}`, http.StatusServiceUnavailable)
}

func TestClusterWorkerDeathResubmits(t *testing.T) {
	cl := gemmTestCodelet(t, time.Millisecond)
	_, srv1 := startWorker(t, "ok", cl, WorkerConfig{Slots: 2})

	w2, err := NewWorker(WorkerConfig{
		Name: "doomed", Archs: []string{"x86"}, Slots: 2,
		Codelets: []*taskrt.Codelet{cl},
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	proxy := &flakyProxy{inner: w2.Handler(), tripAt: 3, hang: release}
	srv2 := httptest.NewServer(proxy)
	t.Cleanup(func() { close(release); srv2.Close() })

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	m := fastMaster(t, []NodeConfig{
		{Name: "ok", Addr: srv1.URL},
		{Name: "doomed", Addr: srv2.URL},
	}, nil)
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)

	if len(rep.DeadNodes) != 1 || rep.DeadNodes[0] != "doomed" {
		t.Fatalf("dead nodes = %v, want [doomed]", rep.DeadNodes)
	}
	if rep.Resubmissions == 0 {
		t.Fatal("tasks wedged on the dead node must have been resubmitted")
	}
	var okTasks, doomedTasks int
	for _, n := range rep.PerNode {
		switch n.Name {
		case "ok":
			okTasks = n.Tasks
		case "doomed":
			doomedTasks = n.Tasks
		}
	}
	if okTasks+doomedTasks != rep.Tasks {
		t.Fatalf("task split %d+%d != %d", okTasks, doomedTasks, rep.Tasks)
	}
	if okTasks < 60 {
		t.Fatalf("survivor ran %d tasks, expected to carry the run", okTasks)
	}
}

func TestClusterLateResultsExactlyOnce(t *testing.T) {
	cl := gemmTestCodelet(t, time.Millisecond)
	_, srv1 := startWorker(t, "ok", cl, WorkerConfig{Slots: 2})

	w2, err := NewWorker(WorkerConfig{
		Name: "slow", Archs: []string{"x86"}, Slots: 2,
		Codelets: []*taskrt.Codelet{cl},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Once tripped, "slow" stops heartbeating (503) but still finishes its
	// execute requests after a delay long past death detection, so its late
	// successes race the resubmitted copies: first-writer-wins must keep
	// each accumulation applied exactly once, or verification fails.
	proxy := &flakyProxy{inner: w2.Handler(), tripAt: 3, delay: 120 * time.Millisecond}
	srv2 := httptest.NewServer(proxy)
	t.Cleanup(srv2.Close)

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	m := fastMaster(t, []NodeConfig{
		{Name: "ok", Addr: srv1.URL},
		{Name: "slow", Addr: srv2.URL},
	}, nil)
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)
	total := 0
	for _, n := range rep.PerNode {
		total += n.Tasks
	}
	if total != rep.Tasks {
		t.Fatalf("per-node tasks sum to %d, want %d", total, rep.Tasks)
	}
}

func TestClusterNodeRejoinIsCleared(t *testing.T) {
	cl := gemmTestCodelet(t, 3*time.Millisecond)
	_, srv1 := startWorker(t, "steady", cl, WorkerConfig{Slots: 1})

	w2, err := NewWorker(WorkerConfig{
		Name: "bouncy", Archs: []string{"x86"}, Slots: 1,
		Codelets: []*taskrt.Codelet{cl},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: w2.Handler(), tripAt: 3}
	srv2 := httptest.NewServer(proxy)
	t.Cleanup(srv2.Close)
	// The node recovers mid-run: the master must clear its node-granularity
	// blacklist (and its residency beliefs) and hand it work again.
	recover := time.AfterFunc(60*time.Millisecond, func() { proxy.setTripped(false) })
	defer recover.Stop()

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	m := fastMaster(t, []NodeConfig{
		{Name: "steady", Addr: srv1.URL},
		{Name: "bouncy", Addr: srv2.URL},
	}, nil)
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)

	var bouncy NodeStats
	for _, n := range rep.PerNode {
		if n.Name == "bouncy" {
			bouncy = n
		}
	}
	if bouncy.Dead {
		t.Fatal("recovered node still blacklisted at end of run")
	}
	if bouncy.Tasks <= 2 {
		t.Fatalf("recovered node ran %d tasks, want more than its pre-death 2", bouncy.Tasks)
	}
}

func TestClusterRetryAfterMutatingFailure(t *testing.T) {
	// A kernel accumulates into a cache-resident C tile, then fails. The
	// retry must see canonical data (re-inlined by the master), not the
	// half-written resident copy: a double accumulation would corrupt the
	// numerical result without any error surfacing.
	var injected atomic.Bool
	cl, err := taskrt.NewCodelet("dgemm",
		taskrt.Impl{Arch: "x86", Func: func(tc *taskrt.TaskContext) error {
			a := tc.Payload(0).(*blas.Matrix)
			b := tc.Payload(1).(*blas.Matrix)
			c := tc.Payload(2).(*blas.Matrix)
			// Dirty C means a prior task of the chain accumulated into it,
			// so on a single node it is cache-resident — the case where a
			// post-mutation failure could poison the cache.
			dirty := false
			for _, v := range c.Data {
				if v != 0 {
					dirty = true
					break
				}
			}
			if err := blas.GemmPacked(a, b, c, 0); err != nil {
				return err
			}
			if dirty && injected.CompareAndSwap(false, true) {
				return fmt.Errorf("injected failure after mutating C")
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	_, srv := startWorker(t, "solo", cl, WorkerConfig{Slots: 2})

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 32, 16)

	m := fastMaster(t, []NodeConfig{{Name: "solo", Addr: srv.URL}}, nil)
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !injected.Load() {
		t.Fatal("failure injection never fired; test exercised nothing")
	}
	if rep.FailedAttempts != 1 || rep.RetriedTasks != 1 {
		t.Fatalf("failures=%d retried=%d, want 1/1", rep.FailedAttempts, rep.RetriedTasks)
	}
	verifyGemm(t, a, b, c)
}

func TestClusterSuspectDeclaredNodeRejoins(t *testing.T) {
	// Transport errors on the data plane take a node down ahead of the
	// heartbeat's verdict while /healthz keeps answering. The heartbeat
	// goroutine must converge to the loop's view and re-announce the node,
	// or a single-node cluster aborts despite its node being healthy.
	cl := gemmTestCodelet(t, time.Millisecond)
	w, err := NewWorker(WorkerConfig{
		Name: "shaky", Archs: []string{"x86"}, Slots: 1,
		Codelets: []*taskrt.Codelet{cl},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{inner: w.Handler(), tripAt: 1, execOnly: true}
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)
	untrip := time.AfterFunc(60*time.Millisecond, func() { proxy.setTripped(false) })
	defer untrip.Stop()

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 32, 16)

	m := fastMaster(t, []NodeConfig{{Name: "shaky", Addr: srv.URL}}, func(cfg *Config) {
		cfg.AllDeadTimeout = 2 * time.Second
	})
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatalf("suspect-declared node never rejoined: %v", err)
	}
	verifyGemm(t, a, b, c)
	if rep.PerNode[0].Dead {
		t.Fatal("healthy node still blacklisted at end of run")
	}
}

func TestHandleResultInBandOutcomesClearSuspects(t *testing.T) {
	// Any completed execute round-trip proves transport is healthy: both
	// the NeedData bounce and the in-band failure must reset the node's
	// consecutive-transport-suspect counter, and the in-band failure must
	// also drop residency for the handles the failed kernel may have
	// mutated (the worker dropped its cache entries for them).
	m, err := NewMaster(Config{Nodes: []NodeConfig{{Name: "n", Addr: "http://unused"}}})
	if err != nil {
		t.Fatal(err)
	}
	noop, err := taskrt.NewCodelet("noop",
		taskrt.Impl{Arch: "x86", Func: func(*taskrt.TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle("C", 32, blas.NewMatrix(2, 2))
	if err := rt.SubmitBatch([]*taskrt.Task{{Codelet: noop, Accesses: []taskrt.Access{taskrt.RW(h)}}}); err != nil {
		t.Fatal(err)
	}
	tasks, handles, err := rt.Graph()
	if err != nil {
		t.Fatal(err)
	}
	n := &nodeState{cfg: NodeConfig{Name: "n"}, alive: true, has: map[int]uint64{}}
	st := &runState{
		m: m, tasks: tasks, handles: handles,
		ver:   make([]uint64, len(handles)),
		indeg: map[int]int{}, attempts: map[int]int{},
		done: map[int]bool{}, inflight: map[int]*inflightRec{},
		events: make(chan event, 4), stop: make(chan struct{}),
		start: time.Now(), retriedTasks: map[int]bool{},
		nodes: []*nodeState{n},
	}
	defer close(st.stop)
	task := tasks[0]
	specs := []AccessSpec{{HandleID: h.ID(), Name: "C", Mode: int(taskrt.ReadWrite), Version: 0}}

	// NeedData bounce: suspects reset, stale residency dropped.
	n.suspects, n.has[h.ID()] = 1, 0
	rec := &inflightRec{task: task, node: n, specs: specs}
	st.inflight[task.ID()] = rec
	if done, err := st.handleResult(event{kind: evResult, rec: rec,
		resp: &ExecResponse{TaskID: task.ID(), NeedData: []int{h.ID()}}}); done || err != nil {
		t.Fatalf("NeedData handling: done=%v err=%v", done, err)
	}
	if n.suspects != 0 {
		t.Fatalf("NeedData round-trip left suspects=%d, want 0", n.suspects)
	}
	if _, resident := n.has[h.ID()]; resident {
		t.Fatal("NeedData must drop the stale residency belief")
	}

	// In-band failure: suspects reset, written-handle residency dropped.
	st.ready = nil
	n.suspects, n.has[h.ID()] = 1, 1
	rec = &inflightRec{task: task, node: n, specs: specs}
	st.inflight[task.ID()] = rec
	if done, err := st.handleResult(event{kind: evResult, rec: rec,
		resp: &ExecResponse{TaskID: task.ID(), Error: "kernel exploded"}}); done || err != nil {
		t.Fatalf("in-band failure handling: done=%v err=%v", done, err)
	}
	if n.suspects != 0 {
		t.Fatalf("in-band failure left suspects=%d, want 0", n.suspects)
	}
	if _, resident := n.has[h.ID()]; resident {
		t.Fatal("in-band failure must drop residency of written handles (worker dropped its copy)")
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(Config{}); err == nil {
		t.Fatal("no nodes must fail")
	}
	if _, err := NewMaster(Config{Nodes: []NodeConfig{{Name: "a"}}}); err == nil {
		t.Fatal("missing addr must fail")
	}
	if _, err := NewMaster(Config{Nodes: []NodeConfig{
		{Name: "a", Addr: "http://x"}, {Name: "a", Addr: "http://y"},
	}}); err == nil {
		t.Fatal("duplicate node name must fail")
	}
}

func TestMasterNoRunnableCodelet(t *testing.T) {
	// A worker that advertises no runnable codelet for the submitted work:
	// the master must fail fast instead of hanging.
	other, err := taskrt.NewCodelet("other",
		taskrt.Impl{Arch: "x86", Func: func(*taskrt.TaskContext) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	_, srv := startWorker(t, "w", other, WorkerConfig{})

	cl := gemmTestCodelet(t, 0)
	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	submitTiledGemm(t, rt, cl, 16, 16)

	m := fastMaster(t, []NodeConfig{{Name: "w", Addr: srv.URL}}, nil)
	if _, err := m.Run(rt); err == nil {
		t.Fatal("unrunnable codelet must error, not hang")
	}
}

// TestClusterMergedTraceSpans verifies the distributed trace propagation
// path end to end in-process: worker-side kernel spans ride back on execute
// responses, the master stitches them (with the master's own placement
// instants) into one epoch-aligned timeline, and every span keeps its
// causal identity.
func TestClusterMergedTraceSpans(t *testing.T) {
	cl := gemmTestCodelet(t, 0)
	tr := trace.New()
	_, srv1 := startWorker(t, "w1", cl, WorkerConfig{Slots: 2})
	_, srv2 := startWorker(t, "w2", cl, WorkerConfig{Slots: 2})

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	m := fastMaster(t, []NodeConfig{
		{Name: "w1", Addr: srv1.URL},
		{Name: "w2", Addr: srv2.URL},
	}, func(cfg *Config) { cfg.Trace = tr })
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c)

	if rep.Trace == nil {
		t.Fatal("report carries no merged trace")
	}
	spans := map[string]int{}
	taskIDs := map[int]bool{}
	for _, e := range rep.Trace.Events() {
		if e.Kind != trace.Task || e.Worker == 0 && e.Node == "" {
			continue
		}
		if e.Node != "w1" && e.Node != "w2" {
			t.Fatalf("kernel span with unexpected node %q", e.Node)
		}
		if e.Label == "" {
			t.Fatalf("kernel span lost causal identity: %+v", e)
		}
		if e.End < e.Start {
			t.Fatalf("kernel span with negative duration: %+v", e)
		}
		spans[e.Node]++
		taskIDs[e.TaskID] = true
	}
	for _, node := range []string{"w1", "w2"} {
		if spans[node] == 0 {
			t.Fatalf("merged trace has no kernel spans from %s (got %v)", node, spans)
		}
	}
	if spans["w1"]+spans["w2"] < rep.Tasks {
		t.Fatalf("merged trace has %d kernel spans for %d tasks", spans["w1"]+spans["w2"], rep.Tasks)
	}
	if len(taskIDs) != rep.Tasks {
		t.Fatalf("kernel spans cover %d distinct task ids, want %d", len(taskIDs), rep.Tasks)
	}
	if len(tr.OfKind(trace.Place)) == 0 {
		t.Fatal("master placement instants missing from the run trace")
	}
	// The merged trace is also published for /debug/trace.
	if trace.Published() == nil {
		t.Fatal("run finished without publishing the merged trace")
	}
}

// TestStragglerDetection injects a gray failure — one node that stays
// correct but runs every kernel ~40x slower than the perfmodel estimate —
// and asserts the master's detector flags it: straggler counters in the
// report, a Straggler trace instant naming the node, and placement
// back-pressure that drains work toward the healthy node.
func TestStragglerDetection(t *testing.T) {
	cl := gemmTestCodelet(t, time.Millisecond)
	tr := trace.New()
	_, fastSrv := startWorker(t, "strag-fast", cl, WorkerConfig{Slots: 2})
	_, slowSrv := startWorker(t, "strag-slow", cl, WorkerConfig{
		Slots: 2,
		Faults: &taskrt.FaultPlan{Events: []taskrt.FaultEvent{
			{Unit: "strag-slow", Delay: 0.04},
		}},
	})

	rt, err := taskrt.New(taskrt.Config{Platform: clusterPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := submitTiledGemm(t, rt, cl, 64, 16)

	// Seed the model the placement will use, so the very first executions
	// compare against a realistic estimate instead of running cold.
	models := perfmodel.NewStore()
	if err := models.Model("dgemm", "x86").Record(blas.FlopsGEMM(16, 16, 16), 1.2e-3); err != nil {
		t.Fatal(err)
	}

	m := fastMaster(t, []NodeConfig{
		{Name: "strag-fast", Addr: fastSrv.URL},
		{Name: "strag-slow", Addr: slowSrv.URL},
	}, func(cfg *Config) {
		cfg.Trace = tr
		cfg.Models = models
		cfg.Straggler = StragglerConfig{Multiple: 6, MinSamples: 1, Alpha: 0.5}
	})
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	verifyGemm(t, a, b, c) // slow, not wrong: results must stay correct

	if rep.Stragglers == 0 {
		t.Fatal("no stragglers flagged despite a 40ms injected delay vs a ~1ms estimate")
	}
	var fast, slow NodeStats
	for _, n := range rep.PerNode {
		switch n.Name {
		case "strag-fast":
			fast = n
		case "strag-slow":
			slow = n
		}
	}
	if slow.Stragglers == 0 {
		t.Fatalf("slow node not flagged: %+v", rep.PerNode)
	}
	if slow.Slowdown <= 1 {
		t.Fatalf("slow node slowdown score = %.2f, want > 1", slow.Slowdown)
	}
	if fast.Tasks <= slow.Tasks {
		t.Fatalf("placement did not drain toward the healthy node: fast=%d slow=%d tasks",
			fast.Tasks, slow.Tasks)
	}
	events := tr.OfKind(trace.Straggler)
	if len(events) == 0 {
		t.Fatal("no Straggler trace instants recorded")
	}
	for _, e := range events {
		if e.Node != "strag-slow" {
			t.Fatalf("straggler instant flagged node %q, want strag-slow", e.Node)
		}
		if e.From == "" {
			t.Fatal("straggler instant carries no reason")
		}
	}
}
