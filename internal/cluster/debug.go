package cluster

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// DebugHandler is the master-side observability surface: the live merged
// cluster trace (republished every Config.PublishEvery completions while a
// run progresses), the process metrics including the taskrt_cluster_*
// families, and pprof. A master is usually embedded (pdlbench, a test, an
// application), so this is a handler to mount rather than a daemon feature —
// pdlserved wires the equivalent endpoints itself.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/trace", func(rw http.ResponseWriter, r *http.Request) {
		tr := trace.Published()
		if tr == nil {
			http.Error(rw, "no trace published yet", http.StatusNotFound)
			return
		}
		switch r.URL.Query().Get("format") {
		case "jsonl":
			rw.Header().Set("Content-Type", "application/jsonl")
			tr.WriteJSONL(rw)
		default:
			rw.Header().Set("Content-Type", "application/json")
			rw.Header().Set("Content-Disposition", `attachment; filename="cluster_trace.json"`)
			tr.WriteChrome(rw)
		}
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		metrics.Default.WritePrometheus(rw)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
