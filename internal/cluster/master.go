package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// NodeConfig describes one execution node to the master.
type NodeConfig struct {
	// Name labels the node in traces, metrics and reports.
	Name string
	// Addr is the worker's base URL (http://host:port).
	Addr string
	// PU optionally anchors the node to a processing unit in
	// Config.Platform, so transfer costs follow the declared interconnect
	// route from MasterPU instead of the generic defaults.
	PU string
}

// Config wires a Master.
type Config struct {
	// Nodes lists the execution nodes. Archs, parallelism and runnable
	// codelets are probed from each node's /v1/info.
	Nodes []NodeConfig
	// Platform, with MasterPU and per-node PU set, prices master→node
	// transfers over the declared interconnect route (the paper's explicit
	// data-transfer paths); absent routes use defaults for a LAN hop.
	Platform *core.Platform
	MasterPU string
	// Models holds per-(codelet, arch) performance history for EFT
	// placement; a fresh store when nil (placement warms up via fallback
	// means). Workers feed their own observations back in each response,
	// so the store converges during a run.
	Models *perfmodel.Store
	// MaxInflight bounds outstanding invocations per node: the node-level
	// generalisation of the dispatcher's credit semaphore. Default
	// 2×(node workers), so each node always has the next wave queued.
	MaxInflight int
	// MaxAttempts bounds executions per task (in-band failures only;
	// transport errors and cache misses do not consume attempts). Default 5.
	MaxAttempts int
	// Heartbeat parameters: probe cadence, per-probe timeout, and how many
	// consecutive misses declare the node dead.
	HeartbeatEvery   time.Duration // default 250ms
	HeartbeatTimeout time.Duration // default = HeartbeatEvery
	HeartbeatMisses  int           // default 3
	// Retry backoff for failed attempts: BackoffBase doubled per attempt,
	// capped at BackoffCap. Defaults 25ms / 1s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// AllDeadTimeout aborts the run after every node has been dead this
	// long with work outstanding. Default 30s.
	AllDeadTimeout time.Duration
	// ExecTimeout bounds one invocation round-trip. Default 2m.
	ExecTimeout time.Duration
	// Trace, when set, records master-side spans (placements, transfers,
	// retries, node state changes) stamped Node=Name. Worker-side kernel
	// spans arriving on execute responses are kept in per-(node, epoch)
	// traces and merged with it for publishing and the final Report.Trace.
	Trace *trace.Trace
	// Straggler tunes the latency-anomaly detector (zero value = defaults:
	// flag at 4× the model estimate after 3 samples; set Multiple negative
	// to disable).
	Straggler StragglerConfig
	// PublishEvery is how many task completions elapse between live
	// re-publishes of the merged cluster trace to trace.Published (the
	// /debug/trace surface). Default 64; negative disables live publishing
	// (the final merge still lands in Report.Trace).
	PublishEvery int
	// Name is the master's node label in traces. Default "master".
	Name string
	// HTTP is the data-plane client. Default: dedicated client, no global
	// timeout (ExecTimeout bounds each call).
	HTTP *http.Client
	Logf func(format string, args ...any)
}

// NodeStats aggregates one node's contribution to a run.
type NodeStats struct {
	Name          string
	Tasks         int
	BusySeconds   float64 // summed kernel seconds reported by the node
	Transfers     int     // payloads inlined (cache misses by version)
	TransferBytes int64   // encoded bytes shipped
	Retries       int     // in-band failures requeued
	Resubmits     int     // tasks reassigned after this node died
	NeedData      int     // dispatches bounced for missing cached data
	Stragglers    int     // tasks flagged by the latency-anomaly detector
	Slowdown      float64 // final EWMA of observed/estimated latency (0 = no data)
	Dead          bool    // dead when the run ended
}

// Report is the outcome of Master.Run.
type Report struct {
	Tasks           int
	MakespanSeconds float64
	PerNode         []NodeStats
	FailedAttempts  int
	RetriedTasks    int
	Resubmissions   int
	Transfers       int
	TransferBytes   int64
	DeadNodes       []string
	Stragglers      int
	// Trace is the merged cluster timeline (master spans + worker kernel
	// spans, epoch-aligned), when the master was configured with a Trace.
	Trace *trace.Trace
}

// String renders a human-readable summary, in the shape of taskrt.Report.
func (r *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "mode=cluster sched=eft tasks=%d makespan=%.6fs transfers=%d (%.1f MB)",
		r.Tasks, r.MakespanSeconds, r.Transfers, float64(r.TransferBytes)/(1<<20))
	if r.FailedAttempts > 0 || r.Resubmissions > 0 || len(r.DeadNodes) > 0 {
		fmt.Fprintf(&b, " failures=%d retried=%d resubmitted=%d dead=%v",
			r.FailedAttempts, r.RetriedTasks, r.Resubmissions, r.DeadNodes)
	}
	b.WriteString("\n")
	for _, n := range r.PerNode {
		util := 0.0
		if r.MakespanSeconds > 0 {
			util = n.BusySeconds / r.MakespanSeconds
		}
		fmt.Fprintf(&b, "  %-10s tasks=%-5d busy=%.6fs util=%.0f%% shipped=%.1fMB",
			n.Name, n.Tasks, n.BusySeconds, util*100, float64(n.TransferBytes)/(1<<20))
		if n.Resubmits > 0 || n.Dead {
			fmt.Fprintf(&b, " resubmitted=%d dead=%v", n.Resubmits, n.Dead)
		}
		if n.Stragglers > 0 {
			fmt.Fprintf(&b, " stragglers=%d slowdown=x%.1f", n.Stragglers, n.Slowdown)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Master dispatches a task graph across worker nodes.
type Master struct {
	cfg  Config
	http *http.Client
}

// NewMaster validates the config and applies defaults.
func NewMaster(cfg Config) (*Master, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: master needs at least one node")
	}
	seen := map[string]bool{}
	for i, n := range cfg.Nodes {
		if n.Name == "" || n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %d needs name and addr", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	if cfg.Models == nil {
		cfg.Models = perfmodel.NewStore()
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = cfg.HeartbeatEvery
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = time.Second
	}
	if cfg.AllDeadTimeout <= 0 {
		cfg.AllDeadTimeout = 30 * time.Second
	}
	if cfg.ExecTimeout <= 0 {
		cfg.ExecTimeout = 2 * time.Minute
	}
	if cfg.Name == "" {
		cfg.Name = "master"
	}
	cfg.Straggler = cfg.Straggler.withDefaults()
	if cfg.PublishEvery == 0 {
		cfg.PublishEvery = 64
	}
	m := &Master{cfg: cfg, http: cfg.HTTP}
	if m.http == nil {
		m.http = &http.Client{}
	}
	return m, nil
}

// Default transfer characteristics for a node without a declared route:
// a LAN hop (~1 GB/s, 200µs).
const (
	defaultNodeBandwidth = 1 << 30
	defaultNodeLatencyNS = 200e3
)

// nodeState is the master's view of one node during a run. All fields are
// owned by the run loop goroutine except the control client and forcedDown.
type nodeState struct {
	cfg NodeConfig
	ctl *client.Client

	// forcedDown tells the heartbeat goroutine the loop declared the node
	// dead on its own evidence (consecutive transport suspects) while the
	// control plane still answered. The heartbeat swaps it off and reverts
	// to /v1/info probing so a healthy node re-announces itself; without
	// the handoff the two alive states diverge and the node could never
	// rejoin.
	forcedDown atomic.Bool

	alive    bool
	info     InfoResponse
	maxCred  int
	credits  int
	backlog  float64 // outstanding estimate, nanoseconds
	suspects int     // consecutive transport errors on the data plane
	has      map[int]uint64

	// Modelled transfer cost of the master→node route.
	latNanos     float64
	nanosPerByte float64

	// Fallback estimate: mean observed round-trip on this node.
	obsCount int
	obsMean  float64 // nanoseconds

	// Straggler detector state: EWMA of observed/estimated latency over
	// model-placed tasks, and how many such observations exist.
	slowEWMA    float64
	slowSamples int

	stats NodeStats
}

// events flowing into the run loop.
type eventKind int

const (
	evResult eventKind = iota
	evRequeue
	evNodeUp
	evNodeDown
	evAllDead
)

type event struct {
	kind eventKind
	node *nodeState
	rec  *inflightRec
	resp *ExecResponse
	err  error
	task *taskrt.Task
	info InfoResponse
}

type inflightRec struct {
	task     *taskrt.Task
	node     *nodeState
	specs    []AccessSpec
	est      float64 // charged estimate (slowdown-penalised), nanoseconds
	modelEst float64 // unscaled perfmodel estimate, nanoseconds (0 unless reason "model")
	released bool    // credit/backlog already returned (node died)
	shipped  int64   // encoded bytes inlined (set by the dispatch goroutine)
	inlines  int
}

// runState is the mutable state of one Run, owned by the loop goroutine.
type runState struct {
	m       *Master
	tasks   []*taskrt.Task
	handles []*taskrt.Handle
	nodes   []*nodeState

	ver      []uint64 // current version per handle id
	indeg    map[int]int
	attempts map[int]int
	done     map[int]bool
	inflight map[int]*inflightRec
	ready    []*taskrt.Task

	events chan event
	stop   chan struct{}
	start  time.Time

	failedAttempts int
	retriedTasks   map[int]bool
	resubmissions  int

	// Worker-side kernel spans, keyed by (node, process epoch) so a
	// restarted worker gets a fresh, correctly-aligned input trace instead
	// of polluting its predecessor's time base. Order is first-seen, for
	// deterministic merges.
	nodeTraces     map[nodeEpoch]*trace.Trace
	nodeTraceOrder []nodeEpoch
	sincePublish   int
}

// nodeEpoch identifies one worker process incarnation.
type nodeEpoch struct {
	node  string
	epoch int64
}

func (st *runState) send(ev event) {
	select {
	case st.events <- ev:
	case <-st.stop:
	}
}

func (m *Master) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Run executes a fully-submitted (and not yet run) Runtime's graph across
// the configured nodes, applying results into the Runtime's handle payloads
// exactly once. It is the cluster-wide counterpart of Runtime.Run.
func (m *Master) Run(rt *taskrt.Runtime) (*Report, error) {
	tasks, handles, err := rt.Graph()
	if err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return &Report{}, nil
	}
	st := &runState{
		m:            m,
		tasks:        tasks,
		handles:      handles,
		ver:          make([]uint64, len(handles)),
		indeg:        make(map[int]int, len(tasks)),
		attempts:     map[int]int{},
		done:         make(map[int]bool, len(tasks)),
		inflight:     map[int]*inflightRec{},
		events:       make(chan event, 64),
		stop:         make(chan struct{}),
		start:        time.Now(),
		retriedTasks: map[int]bool{},
	}
	defer close(st.stop)

	if tr := m.cfg.Trace; tr != nil {
		tr.SetMeta(trace.MetaNode, m.cfg.Name)
		tr.SetMeta(trace.MetaEpochMicros, fmt.Sprintf("%d", st.start.UnixMicro()))
	}

	for _, nc := range m.cfg.Nodes {
		ctl, err := client.New(nc.Addr,
			client.WithHTTPClient(&http.Client{Timeout: m.cfg.HeartbeatTimeout}),
			client.WithRetry(0, 0))
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s: %v", nc.Name, err)
		}
		n := &nodeState{cfg: nc, ctl: ctl, has: map[int]uint64{}}
		n.stats.Name = nc.Name
		n.latNanos, n.nanosPerByte = m.routeCost(nc.PU)
		st.nodes = append(st.nodes, n)
		cm.nodeUp.With(nc.Name).Set(0)
		go st.heartbeat(n)
	}

	for _, t := range tasks {
		st.indeg[t.ID()] = len(t.Deps())
		if len(t.Deps()) == 0 {
			st.ready = append(st.ready, t)
		}
	}

	remaining := len(tasks)
	var deadTimer *time.Timer
	defer func() {
		if deadTimer != nil {
			deadTimer.Stop()
		}
	}()
	for remaining > 0 {
		st.dispatchReady()
		if len(st.inflight) == 0 && len(st.ready) > 0 && st.aliveCount() > 0 {
			// Nothing in flight means every alive node has full credit, yet
			// no ready task was placeable: the codelet runs nowhere.
			t := st.ready[0]
			return nil, fmt.Errorf("cluster: no alive node can run codelet %q (task %d)", t.Codelet.Name, t.ID())
		}
		if st.aliveCount() == 0 {
			if deadTimer == nil {
				deadTimer = time.AfterFunc(m.cfg.AllDeadTimeout, func() { st.send(event{kind: evAllDead}) })
			}
		} else if deadTimer != nil {
			deadTimer.Stop()
			deadTimer = nil
		}

		ev := <-st.events
		switch ev.kind {
		case evNodeUp:
			st.nodeUp(ev.node, ev.info)
		case evNodeDown:
			st.nodeDown(ev.node)
		case evRequeue:
			st.ready = append(st.ready, ev.task)
		case evAllDead:
			if st.aliveCount() == 0 {
				return nil, fmt.Errorf("cluster: all %d nodes dead for %s with %d tasks outstanding",
					len(st.nodes), m.cfg.AllDeadTimeout, remaining)
			}
		case evResult:
			completed, err := st.handleResult(ev)
			if err != nil {
				return nil, err
			}
			if completed {
				remaining--
				st.sincePublish++
				if m.cfg.PublishEvery > 0 && st.sincePublish >= m.cfg.PublishEvery {
					st.publishMerged()
					st.sincePublish = 0
				}
			}
		}
	}

	rep := &Report{
		Tasks:           len(tasks),
		MakespanSeconds: time.Since(st.start).Seconds(),
		FailedAttempts:  st.failedAttempts,
		RetriedTasks:    len(st.retriedTasks),
		Resubmissions:   st.resubmissions,
	}
	for _, n := range st.nodes {
		n.stats.Dead = !n.alive
		if n.stats.Dead {
			rep.DeadNodes = append(rep.DeadNodes, n.cfg.Name)
		}
		rep.Transfers += n.stats.Transfers
		rep.TransferBytes += n.stats.TransferBytes
		rep.Stragglers += n.stats.Stragglers
		rep.PerNode = append(rep.PerNode, n.stats)
	}
	sort.Strings(rep.DeadNodes)
	sort.Slice(rep.PerNode, func(i, j int) bool { return rep.PerNode[i].Name < rep.PerNode[j].Name })
	rep.Trace = st.publishMerged()
	return rep, nil
}

// ingestSpans files the worker kernel spans piggybacked on a response into
// the per-(node, epoch) trace they belong to. Keying by process epoch means
// a restarted worker's spans align against its own time base instead of its
// predecessor's.
func (st *runState) ingestSpans(n *nodeState, resp *ExecResponse) {
	if len(resp.Spans) == 0 || resp.EpochMicros == 0 {
		return
	}
	key := nodeEpoch{node: n.cfg.Name, epoch: resp.EpochMicros}
	if st.nodeTraces == nil {
		st.nodeTraces = map[nodeEpoch]*trace.Trace{}
	}
	tr, ok := st.nodeTraces[key]
	if !ok {
		tr = trace.New()
		tr.SetMeta(trace.MetaNode, n.cfg.Name)
		tr.SetMeta(trace.MetaEpochMicros, fmt.Sprintf("%d", resp.EpochMicros))
		st.nodeTraces[key] = tr
		st.nodeTraceOrder = append(st.nodeTraceOrder, key)
	}
	for _, e := range resp.Spans {
		tr.Record(e)
	}
}

// publishMerged stitches the master trace and every node's span trace into
// one epoch-aligned timeline, publishes it as the process's current trace
// (the /debug/trace surface) and returns it. Nil when the master itself has
// no trace configured and no spans arrived.
func (st *runState) publishMerged() *trace.Trace {
	var inputs []*trace.Trace
	if st.m.cfg.Trace != nil {
		inputs = append(inputs, st.m.cfg.Trace)
	}
	for _, key := range st.nodeTraceOrder {
		inputs = append(inputs, st.nodeTraces[key])
	}
	if len(inputs) == 0 {
		return nil
	}
	merged, err := trace.Merge(inputs...)
	if err != nil {
		st.m.logf("cluster: merging node traces: %v", err)
		return nil
	}
	trace.Publish(merged)
	return merged
}

// routeCost prices the master→node path from the platform's declared
// interconnects, or the LAN defaults when unroutable.
func (m *Master) routeCost(pu string) (latNanos, nanosPerByte float64) {
	latNanos, nanosPerByte = defaultNodeLatencyNS, 1e9/float64(defaultNodeBandwidth)
	if m.cfg.Platform == nil || m.cfg.MasterPU == "" || pu == "" {
		return
	}
	route, err := m.cfg.Platform.Route(m.cfg.MasterPU, pu)
	if err != nil || len(route) == 0 {
		return
	}
	lat, perByte := 0.0, 0.0
	for _, ic := range route {
		l, ok := ic.LatencySeconds()
		if !ok {
			l = defaultNodeLatencyNS / 1e9
		}
		bw, ok := ic.BandwidthBytesPerSec()
		if !ok || bw <= 0 {
			bw = defaultNodeBandwidth
		}
		lat += l * 1e9
		perByte += 1e9 / bw
	}
	return lat, perByte
}

func (st *runState) aliveCount() int {
	n := 0
	for _, node := range st.nodes {
		if node.alive {
			n++
		}
	}
	return n
}

// heartbeat probes the node until the run ends: /v1/info while down (the
// probe doubles as capability discovery on first contact and after
// restarts), /healthz while up.
func (st *runState) heartbeat(n *nodeState) {
	cfg := st.m.cfg
	alive := false
	misses := 0
	for {
		if n.forcedDown.Swap(false) {
			// The loop blacklisted the node while /healthz still answered;
			// fall back to /v1/info probing so it can be re-announced.
			alive, misses = false, 0
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.HeartbeatTimeout)
		if !alive {
			var info InfoResponse
			if err := n.ctl.GetJSON(ctx, PathInfo, &info); err == nil {
				alive, misses = true, 0
				st.send(event{kind: evNodeUp, node: n, info: info})
			}
		} else if err := n.ctl.GetJSON(ctx, PathHealthz, nil); err != nil {
			misses++
			cm.hbMisses.With(n.cfg.Name).Inc()
			if misses >= cfg.HeartbeatMisses {
				alive = false
				st.send(event{kind: evNodeDown, node: n})
			}
		} else {
			misses = 0
		}
		cancel()
		select {
		case <-st.stop:
			return
		case <-time.After(cfg.HeartbeatEvery):
		}
	}
}

func (st *runState) nodeUp(n *nodeState, info InfoResponse) {
	if n.alive {
		return
	}
	n.alive = true
	n.info = info
	n.suspects = 0
	// Fresh (or restarted) process: its cache is unknown, so forget what we
	// believed resident — every first access re-inlines.
	n.has = map[int]uint64{}
	n.maxCred = st.m.cfg.MaxInflight
	if n.maxCred <= 0 {
		w := info.Workers
		if w <= 0 {
			w = 1
		}
		n.maxCred = 2 * w
	}
	n.credits = n.maxCred
	n.backlog = 0
	cm.nodeUp.With(n.cfg.Name).Set(1)
	st.m.logf("cluster: node %s up (archs %v, %d workers, %d codelets)",
		n.cfg.Name, info.Archs, info.Workers, len(info.Codelets))
	st.traceInstant(trace.Recover, n.cfg.Name, "", trace.NoTask)
}

// nodeDown blacklists the node and resubmits everything it had in flight.
func (st *runState) nodeDown(n *nodeState) {
	if !n.alive {
		return
	}
	n.alive = false
	n.forcedDown.Store(true)
	cm.nodeUp.With(n.cfg.Name).Set(0)
	// A dead node must not linger in scrapes as a ghost: its inflight gauge
	// goes to zero here (each resubmitted rec below also decrements, but a
	// defensive set keeps the invariant even if accounting ever drifts) and
	// its slowdown series is deleted outright — a score with no live node
	// behind it is noise, and a rejoining process starts fresh.
	cm.slowdown.Delete(n.cfg.Name)
	n.slowEWMA, n.slowSamples = 0, 0
	st.m.logf("cluster: node %s dead; resubmitting its in-flight tasks", n.cfg.Name)
	st.traceInstant(trace.Blacklist, n.cfg.Name, "", trace.NoTask)
	for id, rec := range st.inflight {
		if rec.node != n || rec.released {
			continue
		}
		rec.released = true
		cm.inflight.With(n.cfg.Name).Dec()
		delete(st.inflight, id)
		n.stats.Resubmits++
		st.resubmissions++
		cm.resubmits.With(n.cfg.Name).Inc()
		st.requeueWithBackoff(rec.task)
	}
	cm.inflight.With(n.cfg.Name).Set(0)
	n.credits, n.backlog = 0, 0
}

// requeueWithBackoff schedules the task back into ready after a capped
// exponential delay derived from its attempt count.
func (st *runState) requeueWithBackoff(t *taskrt.Task) {
	cfg := st.m.cfg
	d := cfg.BackoffBase << uint(st.attempts[t.ID()])
	if d > cfg.BackoffCap || d <= 0 {
		d = cfg.BackoffCap
	}
	task := t
	time.AfterFunc(d, func() { st.send(event{kind: evRequeue, task: task}) })
}

// nodeRuns reports whether the node advertises the codelet as runnable.
func (n *nodeState) nodeRuns(codelet string) bool {
	if len(n.info.Codelets) == 0 {
		return true // no advertisement: optimistic, execute surfaces errors
	}
	for _, c := range n.info.Codelets {
		if c == codelet {
			return true
		}
	}
	return false
}

// estimate returns the predicted execution nanoseconds for the task on the
// node and the decision source (model/fallback/cold).
func (st *runState) estimate(t *taskrt.Task, n *nodeState) (float64, string) {
	if t.Flops > 0 {
		for _, arch := range n.info.Archs {
			if t.Codelet.ImplFor(arch) == nil {
				continue
			}
			if sec, ok := st.m.cfg.Models.Model(t.Codelet.Name, arch).Estimate(t.Flops); ok {
				return sec * 1e9, "model"
			}
		}
	}
	if n.obsCount > 0 {
		return n.obsMean, "fallback"
	}
	return 1e6, "cold" // 1ms: nonzero so backlog still differentiates nodes
}

// hasVersion reports whether the node is believed to cache the handle at
// exactly this version. The explicit ok-check matters: handles start at
// version 0, and a missing map entry must not read as "version 0 resident".
func (n *nodeState) hasVersion(id int, ver uint64) bool {
	v, ok := n.has[id]
	return ok && v == ver
}

// transferNanos prices the payloads that would need inlining for the task
// on the node, given the node's version cache.
func (st *runState) transferNanos(t *taskrt.Task, n *nodeState) float64 {
	total := 0.0
	for _, a := range t.Accesses {
		id := a.Handle.ID()
		if n.hasVersion(id, st.ver[id]) {
			continue
		}
		total += n.latNanos + float64(a.Handle.Bytes)*n.nanosPerByte
	}
	return total
}

// placement is one EFT decision: the chosen node, the charged (penalised)
// estimate, the transfer term, the prediction source, and — when the source
// was the perfmodel — the unscaled estimate the straggler detector compares
// observations against.
type placement struct {
	node     *nodeState
	est      float64 // charged, nanoseconds (model estimate × node penalty)
	xfer     float64 // nanoseconds
	reason   string  // "model", "fallback", "cold"
	modelEst float64 // unscaled model estimate, 0 unless reason == "model"
}

// choose picks the node with the earliest modelled finish time among alive
// nodes with free credit that can run the codelet. Each node's execution
// estimate is scaled by its slowdown penalty (EWMA of observed/estimated
// latency, floored at 1), so detected stragglers bid with their real speed
// rather than the model's optimism.
func (st *runState) choose(t *taskrt.Task) (placement, bool) {
	var best placement
	bestScore := 0.0
	for _, n := range st.nodes {
		if !n.alive || n.credits <= 0 || !n.nodeRuns(t.Codelet.Name) {
			continue
		}
		est, reason := st.estimate(t, n)
		modelEst := 0.0
		if reason == "model" {
			modelEst = est
		}
		est *= n.penalty()
		xfer := st.transferNanos(t, n)
		score := n.backlog + est + xfer
		if best.node == nil || score < bestScore {
			best = placement{node: n, est: est, xfer: xfer, reason: reason, modelEst: modelEst}
			bestScore = score
		}
	}
	return best, best.node != nil
}

// dispatchReady places as many ready tasks as node credits allow.
func (st *runState) dispatchReady() {
	var defer2 []*taskrt.Task
	for len(st.ready) > 0 {
		t := st.ready[0]
		st.ready = st.ready[1:]
		if st.done[t.ID()] || st.inflight[t.ID()] != nil {
			continue // resubmitted and already handled
		}
		p, ok := st.choose(t)
		if !ok {
			defer2 = append(defer2, t)
			if st.aliveCount() == 0 {
				break // wait for a node; keep remaining ready intact
			}
			continue
		}
		st.dispatch(t, p)
	}
	st.ready = append(defer2, st.ready...)
}

// dispatch charges the node and ships the invocation asynchronously.
func (st *runState) dispatch(t *taskrt.Task, p placement) {
	n := p.node
	specs := make([]AccessSpec, len(t.Accesses))
	inline := make([]bool, len(t.Accesses))
	for i, a := range t.Accesses {
		id := a.Handle.ID()
		specs[i] = AccessSpec{
			HandleID: id,
			Name:     a.Handle.Name,
			Bytes:    a.Handle.Bytes,
			Mode:     int(a.Mode),
			Version:  st.ver[id],
		}
		inline[i] = !n.hasVersion(id, st.ver[id])
	}
	rec := &inflightRec{task: t, node: n, specs: specs, est: p.est, modelEst: p.modelEst}
	st.inflight[t.ID()] = rec
	n.credits--
	n.backlog += p.est + p.xfer
	cm.inflight.With(n.cfg.Name).Inc()
	cm.decisions.With(p.reason).Inc()
	st.traceDispatch(t, n, p.reason, p.xfer)

	var parents []int
	for _, d := range t.Deps() {
		parents = append(parents, d.ID())
	}
	req := &ExecRequest{
		TaskID:  t.ID(),
		Attempt: st.attempts[t.ID()],
		Codelet: t.Codelet.Name,
		Label:   t.Label,
		Flops:   t.Flops,
		Parents: parents,
	}
	payloads := make([]any, len(t.Accesses))
	for i, a := range t.Accesses {
		payloads[i] = a.Handle.Payload
	}
	go st.ship(rec, req, payloads, inline)
}

// ship encodes inline payloads and performs the execute round-trip. Runs
// outside the loop goroutine; it only touches payloads of the task's own
// accesses, whose writers have all been applied (DAG order), so the reads
// race with nothing.
func (st *runState) ship(rec *inflightRec, req *ExecRequest, payloads []any, inline []bool) {
	req.Accesses = append([]AccessSpec(nil), rec.specs...)
	for i := range req.Accesses {
		if !inline[i] {
			continue
		}
		data, err := EncodePayload(payloads[i])
		if err != nil {
			st.send(event{kind: evResult, rec: rec, err: fmt.Errorf("encoding handle %d: %w", req.Accesses[i].HandleID, err)})
			return
		}
		req.Accesses[i].Inline = data
		rec.shipped += int64(len(data))
		rec.inlines++
	}
	body, err := encodeGob(req)
	if err != nil {
		st.send(event{kind: evResult, rec: rec, err: err})
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), st.m.cfg.ExecTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, rec.node.cfg.Addr+PathExecute, bytes.NewReader(body))
	if err != nil {
		st.send(event{kind: evResult, rec: rec, err: err})
		return
	}
	httpReq.Header.Set("Content-Type", ContentTypeGob)
	httpResp, err := st.m.http.Do(httpReq)
	if err != nil {
		st.send(event{kind: evResult, rec: rec, err: err})
		return
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		st.send(event{kind: evResult, rec: rec, err: err})
		return
	}
	if httpResp.StatusCode != http.StatusOK {
		st.send(event{kind: evResult, rec: rec,
			err: fmt.Errorf("execute returned %d: %s", httpResp.StatusCode, bytes.TrimSpace(data))})
		return
	}
	var resp ExecResponse
	if err := decodeGob(data, &resp); err != nil {
		st.send(event{kind: evResult, rec: rec, err: err})
		return
	}
	st.send(event{kind: evResult, rec: rec, resp: &resp})
}

// handleResult applies one round-trip outcome. Returns whether a task
// newly completed. This is the exactly-once point: results for tasks
// already done (late arrivals from presumed-dead nodes, duplicates after
// resubmission) are dropped before any state changes.
func (st *runState) handleResult(ev event) (bool, error) {
	rec, n, t := ev.rec, ev.rec.node, ev.rec.task
	if !rec.released {
		rec.released = true
		n.credits++
		n.backlog -= rec.est
		if n.backlog < 0 {
			n.backlog = 0
		}
		cm.inflight.With(n.cfg.Name).Dec()
		delete(st.inflight, t.ID())
	}
	// Ingest piggybacked worker spans before the exactly-once drop: even a
	// duplicate attempt really executed, and the merged timeline should show
	// it (that is how duplicated work becomes visible).
	if ev.resp != nil {
		st.ingestSpans(n, ev.resp)
	}
	if st.done[t.ID()] {
		return false, nil // duplicate of a completed task: exactly-once drop
	}
	if cur := st.inflight[t.ID()]; cur != nil && cur != rec {
		// A late result from a presumed-dead node, while the resubmitted
		// copy is already in flight. Drop even a success: the copy was
		// dispatched from identical inputs and will produce the same
		// output, and applying now would race with the copy's payload
		// encoding.
		return false, nil
	}

	switch {
	case ev.err != nil:
		// Transport-level failure: the infrastructure faulted, not the
		// task, so no attempt is consumed; repeated faults take the node
		// down ahead of the heartbeat's verdict.
		n.suspects++
		st.m.logf("cluster: node %s transport error (task %d): %v", n.cfg.Name, t.ID(), ev.err)
		if n.suspects >= 2 && n.alive {
			st.nodeDown(n)
			// nodeDown resubmits in-flight tasks, but this rec was already
			// released above — requeue it explicitly.
			n.stats.Resubmits++
			st.resubmissions++
			cm.resubmits.With(n.cfg.Name).Inc()
		}
		st.requeueWithBackoff(t)
		return false, nil

	case len(ev.resp.NeedData) > 0:
		// Worker cache miss (eviction or restart): forget the stale
		// residency and redispatch; no attempt consumed, no backoff. The
		// completed round-trip also proves transport is healthy, so clear
		// suspicion like the other in-band outcomes do.
		n.suspects = 0
		for _, id := range ev.resp.NeedData {
			delete(n.has, id)
		}
		n.stats.NeedData++
		cm.needData.With(n.cfg.Name).Inc()
		st.ready = append(st.ready, t)
		return false, nil

	case !ev.resp.OK:
		// In-band execution failure: consumes an attempt. The failed kernel
		// may have mutated write-mode payloads in place (the worker drops
		// its cache entries for them), so forget their residency too and
		// re-inline canonical bytes on the retry instead of trusting — or
		// bouncing off — the node's copy.
		for _, spec := range rec.specs {
			if taskrt.AccessMode(spec.Mode).Writes() {
				delete(n.has, spec.HandleID)
			}
		}
		n.suspects = 0
		st.failedAttempts++
		n.stats.Retries++
		st.retriedTasks[t.ID()] = true
		cm.retries.With(n.cfg.Name).Inc()
		st.attempts[t.ID()]++
		st.traceInstant(trace.Retry, n.cfg.Name, t.Label, t.ID())
		if st.attempts[t.ID()] >= st.m.cfg.MaxAttempts {
			return false, fmt.Errorf("cluster: task %d (%s) failed %d attempts, last on %s: %s",
				t.ID(), t.Label, st.attempts[t.ID()], n.cfg.Name, ev.resp.Error)
		}
		st.m.logf("cluster: task %d failed on %s (attempt %d): %s", t.ID(), n.cfg.Name, st.attempts[t.ID()], ev.resp.Error)
		st.requeueWithBackoff(t)
		return false, nil
	}

	// Success: apply writes under first-writer-wins (the done-check above),
	// update residency, release dependents.
	n.suspects = 0
	resp := ev.resp
	for _, wr := range resp.Written {
		h := st.handles[wr.HandleID]
		v, err := DecodePayload(wr.Payload)
		if err != nil {
			return false, fmt.Errorf("cluster: task %d result, handle %d: %w", t.ID(), wr.HandleID, err)
		}
		applied, err := ApplyPayload(h.Payload, v)
		if err != nil {
			return false, fmt.Errorf("cluster: task %d result, handle %d: %w", t.ID(), wr.HandleID, err)
		}
		h.Payload = applied
		st.ver[wr.HandleID] = wr.Version
		n.has[wr.HandleID] = wr.Version
	}
	for _, spec := range rec.specs {
		if !taskrt.AccessMode(spec.Mode).Writes() {
			n.has[spec.HandleID] = spec.Version
		}
	}
	st.done[t.ID()] = true
	n.stats.Tasks++
	n.stats.BusySeconds += resp.ExecSeconds
	n.stats.Transfers += rec.inlines
	n.stats.TransferBytes += rec.shipped
	cm.tasks.With(n.cfg.Name).Inc()
	cm.taskSeconds.With(n.cfg.Name).Observe(resp.ExecSeconds)
	if rec.inlines > 0 {
		cm.transfers.With(n.cfg.Name).Add(float64(rec.inlines))
		cm.transferB.With(n.cfg.Name).Add(float64(rec.shipped))
	}
	st.observeResidual(n, t, rec, resp.ExecSeconds)
	// Feed the round-trip into the node's fallback mean and the shared
	// perfmodel (keyed by the arch the worker actually used).
	if resp.ExecSeconds > 0 {
		nanos := resp.ExecSeconds * 1e9
		n.obsMean = (n.obsMean*float64(n.obsCount) + nanos) / float64(n.obsCount+1)
		n.obsCount++
		if t.Flops > 0 && resp.Arch != "" {
			st.m.cfg.Models.Model(t.Codelet.Name, resp.Arch).Record(t.Flops, resp.ExecSeconds)
		}
	}
	for _, dep := range t.Dependents() {
		st.indeg[dep.ID()]--
		if st.indeg[dep.ID()] == 0 {
			st.ready = append(st.ready, dep)
		}
	}
	return true, nil
}

// traceDispatch records the placement decision (and, when data moved, a
// transfer span) against the target node.
func (st *runState) traceDispatch(t *taskrt.Task, n *nodeState, reason string, xferNanos float64) {
	tr := st.m.cfg.Trace
	if tr == nil {
		return
	}
	now := time.Since(st.start).Seconds()
	tr.Record(trace.Event{
		Kind: trace.Place, Unit: st.m.cfg.Name, Node: n.cfg.Name,
		Label: t.Label, TaskID: t.ID(), From: reason,
		Transfer: xferNanos / 1e9, Start: now, End: now,
	})
}

func (st *runState) traceInstant(kind trace.Kind, node, label string, taskID int) {
	tr := st.m.cfg.Trace
	if tr == nil {
		return
	}
	now := time.Since(st.start).Seconds()
	tr.Record(trace.Event{
		Kind: kind, Unit: st.m.cfg.Name, Node: node,
		Label: label, TaskID: taskID, Start: now, End: now,
	})
}
