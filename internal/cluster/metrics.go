package cluster

import "repro/internal/metrics"

// Cluster metrics mirror the in-process taskrt_* families at node
// granularity, registered in the shared metrics.Default registry so a
// master embedded in pdlbench or pdlserved exposes them on the same scrape.
// Label cardinality is bounded by the node count, never by task count.

var clusterTaskBuckets = []float64{
	1e-4, 1e-3, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

var cm = struct {
	tasks       *metrics.CounterVec   // {node}
	taskSeconds *metrics.HistogramVec // {node}
	inflight    *metrics.GaugeVec     // {node}
	transfers   *metrics.CounterVec   // {node}
	transferB   *metrics.CounterVec   // {node}
	retries     *metrics.CounterVec   // {node}
	resubmits   *metrics.CounterVec   // {node}
	needData    *metrics.CounterVec   // {node}
	nodeUp      *metrics.GaugeVec     // {node}
	hbMisses    *metrics.CounterVec   // {node}
	decisions   *metrics.CounterVec   // {reason}
	stragglers  *metrics.CounterVec   // {node}
	slowdown    *metrics.GaugeVec     // {node}
	residual    *metrics.HistogramVec // {node}
}{
	tasks: metrics.Default.CounterVec("taskrt_cluster_tasks_total",
		"Tasks completed and applied, by executing node.", "node"),
	taskSeconds: metrics.Default.HistogramVec("taskrt_cluster_task_seconds",
		"Kernel execution latency reported by workers, by node.", clusterTaskBuckets, "node"),
	inflight: metrics.Default.GaugeVec("taskrt_cluster_inflight",
		"Invocations currently dispatched to the node and not yet applied.", "node"),
	transfers: metrics.Default.CounterVec("taskrt_cluster_transfers_total",
		"Payloads inlined to the node (worker cache misses by version).", "node"),
	transferB: metrics.Default.CounterVec("taskrt_cluster_transfer_bytes_total",
		"Encoded payload bytes shipped to the node.", "node"),
	retries: metrics.Default.CounterVec("taskrt_cluster_retries_total",
		"Failed attempts re-queued with backoff, by node of the failure.", "node"),
	resubmits: metrics.Default.CounterVec("taskrt_cluster_resubmits_total",
		"In-flight tasks resubmitted after their node was declared dead.", "node"),
	needData: metrics.Default.CounterVec("taskrt_cluster_need_data_total",
		"Dispatches bounced for missing cached data and re-inlined (not a fault).", "node"),
	nodeUp: metrics.Default.GaugeVec("taskrt_cluster_node_up",
		"1 while the node is alive (heartbeats within the miss budget), else 0.", "node"),
	hbMisses: metrics.Default.CounterVec("taskrt_cluster_heartbeat_misses_total",
		"Heartbeat probes that failed or timed out, by node.", "node"),
	decisions: metrics.Default.CounterVec("taskrt_cluster_decisions_total",
		"Node placement decisions by prediction source: model = perfmodel history, fallback = observed node mean, cold = no history anywhere.", "reason"),
	stragglers: metrics.Default.CounterVec("taskrt_cluster_stragglers_total",
		"Tasks whose observed latency exceeded the model estimate their placement used by more than the configured multiple, by node.", "node"),
	slowdown: metrics.Default.GaugeVec("taskrt_cluster_node_slowdown",
		"EWMA of observed/estimated kernel latency per node (1 = on model; series deleted when the node dies).", "node"),
	residual: metrics.Default.HistogramVec("taskrt_cluster_residual_ratio",
		"Observed/estimated kernel latency for model-placed tasks, by node.", residualBuckets, "node"),
}

// residualBuckets resolve the observed/estimated ratio: < 1 is faster than
// modelled, the high tail is where stragglers live.
var residualBuckets = []float64{
	0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6, 8, 16, 32, 64,
}
