// Package cluster executes taskrt task graphs across processes: a Master
// consumes a fully-submitted (unrun) Runtime's graph and dispatches codelet
// invocations over HTTP to Workers, which execute them against locally
// registered implementations.
//
// This extends the paper's platform-description-driven scheduling to the
// distributed level: each worker node is described by its own PDL document
// (registered with pdlserved alongside a worker lease), the master's
// placement uses per-(codelet, arch) perfmodels plus declared-interconnect
// transfer modelling — the same earliest-finish-time shape as the in-process
// dmda dispatcher, promoted to node granularity — and the fault-tolerance
// layer (retry, blacklist, rejoin) is likewise lifted from worker
// goroutines to whole nodes.
//
// Ownership model: the master owns data truth. Canonical payloads live in
// the submitted Runtime's handles; workers hold version-tagged caches. A
// task's writes take effect only when its result is applied on the master,
// under a first-writer-wins done-check, which makes resubmission after node
// failure exactly-once: a late result from a presumed-dead node either
// applies first (the resubmitted copy is dropped) or is dropped itself.
package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/blas"
	"repro/internal/trace"
)

// HTTP surface of a worker.
const (
	PathExecute = "/v1/execute"
	PathInfo    = "/v1/info"
	PathHealthz = "/healthz"
	// PathTrace serves the worker's span buffer as JSONL (node + epoch
	// metadata included). `?drain=1` atomically hands over and clears the
	// buffer — the pull-side counterpart of the spans piggybacked on execute
	// responses, for collectors that want history without running tasks.
	PathTrace = "/v1/trace"
	// PathMetrics serves the worker's Prometheus exposition; pdlserved's
	// fleet scraper federates the taskrt_worker_* families it finds here.
	PathMetrics = "/metrics"

	// ContentTypeGob marks the execute request/response encoding. gob is
	// chosen over JSON for the data plane: payloads are dense float64
	// matrices, and gob moves them as raw bytes instead of decimal text.
	ContentTypeGob = "application/x-gob"
)

// ExecRequest is one codelet invocation shipped to a worker.
type ExecRequest struct {
	TaskID  int
	Attempt int
	Codelet string
	Label   string
	Flops   float64
	// Parents are the task's dependency ids, forwarded so worker-side trace
	// spans carry the causal edges pdltrace needs to reconstruct a
	// cluster-wide critical path after merging.
	Parents  []int
	Accesses []AccessSpec
}

// AccessSpec is one data access of the invocation. When Inline is nil the
// worker must already cache (HandleID, Version); responding NeedData makes
// the master re-inline — a cache miss, never a fault.
type AccessSpec struct {
	HandleID int
	Name     string
	Bytes    int64
	Mode     int // taskrt.AccessMode numeric value
	Version  uint64
	Inline   []byte
}

// Written is one produced payload: the new contents of a written handle at
// Version = request Version + 1 (writers are serialised by the task graph,
// so the successor version is deterministic).
type Written struct {
	HandleID int
	Version  uint64
	Payload  []byte
}

// ExecResponse reports one invocation's outcome.
type ExecResponse struct {
	TaskID  int
	Attempt int
	OK      bool
	Error   string
	// NeedData lists handle ids referenced by version but absent from the
	// worker's cache; the master re-inlines and redispatches.
	NeedData    []int
	Written     []Written
	ExecSeconds float64
	Arch        string
	Unit        string // executing lane, for merged traces ("worker0", ...)

	// Spans are the trace events this invocation recorded on the worker
	// (execution span, and any it can cheaply piggyback), with times as
	// offsets from the worker's epoch. Shipping them on the response gives
	// the master a live, complete span stream without a second round-trip.
	Spans []trace.Event
	// EpochMicros is the worker process's start time (µs since the Unix
	// epoch): the time base of the span offsets, which trace.Merge uses to
	// align per-node timelines into one.
	EpochMicros int64
}

// InfoResponse describes a worker to masters (GET /v1/info, JSON).
type InfoResponse struct {
	Name     string   `json:"name"`
	Archs    []string `json:"archs"`
	Workers  int      `json:"workers"`
	Codelets []string `json:"codelets"`
}

// RegisterPayloadType registers a concrete payload type for the gob-based
// payload codec, as encoding/gob requires for interface-typed values.
// *blas.Matrix, []float64, []byte and the scalar types are pre-registered.
func RegisterPayloadType(v any) { gob.Register(v) }

func init() {
	RegisterPayloadType(&blas.Matrix{})
	RegisterPayloadType([]float64(nil))
	RegisterPayloadType([]byte(nil))
	RegisterPayloadType([]int(nil))
	RegisterPayloadType(float64(0))
	RegisterPayloadType(int(0))
	RegisterPayloadType("")
}

// payloadBox wraps the interface value so gob carries the concrete type.
type payloadBox struct{ V any }

// EncodePayload serialises a handle payload for the wire. Matrix views are
// compacted first: a Sub() view aliases the parent's backing array from its
// origin to the end, and encoding that raw would ship the whole parent.
func EncodePayload(v any) ([]byte, error) {
	if m, ok := v.(*blas.Matrix); ok && (m.Stride != m.Cols || len(m.Data) != m.Rows*m.Cols) {
		v = m.Clone()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payloadBox{V: v}); err != nil {
		return nil, fmt.Errorf("cluster: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(data []byte) (any, error) {
	var box payloadBox
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&box); err != nil {
		return nil, fmt.Errorf("cluster: decoding payload: %w", err)
	}
	return box.V, nil
}

// ApplyPayload merges a received payload into an existing one, returning
// the value to store. Matrices and slices copy element-wise into dst so
// aliasing is preserved — the master's canonical payloads are often Sub()
// views into one parent matrix, and replacing the view would detach the
// tile from the matrix it verifies against. Shape mismatches and unknown
// types fall back to replacement (dst nil means the handle had no local
// payload yet).
func ApplyPayload(dst, src any) (any, error) {
	switch d := dst.(type) {
	case nil:
		return src, nil
	case *blas.Matrix:
		s, ok := src.(*blas.Matrix)
		if !ok {
			return nil, fmt.Errorf("cluster: applying %T over *blas.Matrix", src)
		}
		if s.Rows != d.Rows || s.Cols != d.Cols {
			return nil, fmt.Errorf("cluster: applying %dx%d matrix over %dx%d", s.Rows, s.Cols, d.Rows, d.Cols)
		}
		for i := 0; i < d.Rows; i++ {
			copy(d.Data[i*d.Stride:i*d.Stride+d.Cols], s.Data[i*s.Stride:i*s.Stride+s.Cols])
		}
		return d, nil
	case []float64:
		s, ok := src.([]float64)
		if !ok || len(s) != len(d) {
			return src, nil
		}
		copy(d, s)
		return d, nil
	case []byte:
		s, ok := src.([]byte)
		if !ok || len(s) != len(d) {
			return src, nil
		}
		copy(d, s)
		return d, nil
	default:
		return src, nil
	}
}

// encodeGob/decodeGob move the execute request/response bodies.
func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
