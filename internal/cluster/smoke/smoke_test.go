// Package smoke is the multi-process cluster end-to-end test: real
// pdlserved and pdlworkerd binaries, worker discovery through the registry,
// and an in-process master running distributed tiled DGEMM against them —
// including a run where one worker process is SIGKILLed mid-flight and its
// tasks resubmit to the survivor.
//
// The test builds binaries and spawns processes, so it only runs when
// PDL_CLUSTER_SMOKE=1 is set (`make cluster-test`); plain `go test ./...`
// skips it.
package smoke

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

func TestClusterSmoke(t *testing.T) {
	if os.Getenv("PDL_CLUSTER_SMOKE") == "" {
		t.Skip("set PDL_CLUSTER_SMOKE=1 (or run `make cluster-test`) to run the multi-process smoke")
	}
	bin := buildBinaries(t)

	// Registry daemon, federating worker metrics fast enough for the test
	// to observe fleet series shortly after the kernels run.
	servedAddr := freeAddr(t)
	served := startProc(t, bin["pdlserved"], "-addr", servedAddr, "-access-log", "",
		"-fleet-scrape", "500ms")
	defer stopProc(served)
	base := "http://" + servedAddr
	ctl, err := client.New(base, client.WithRetry(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, ctl)

	// Two worker daemons that discover the registry and lease themselves.
	workerA := startProc(t, bin["pdlworkerd"], "-addr", "127.0.0.1:0", "-name", "smoke-a",
		"-server", base, "-slots", "2", "-lease-ttl", "3s")
	defer stopProc(workerA)
	workerB := startProc(t, bin["pdlworkerd"], "-addr", "127.0.0.1:0", "-name", "smoke-b",
		"-server", base, "-slots", "2", "-lease-ttl", "3s")
	defer stopProc(workerB)
	nodes := waitWorkers(t, ctl, 2)
	t.Logf("discovered %d workers via %s/workers: %+v", len(nodes), base, nodes)

	t.Run("HappyPath", func(t *testing.T) {
		tr := trace.New()
		rep, diff := runMaster(t, nodes, 256, 64, tr, nil)
		if diff > 1e-8 {
			t.Fatalf("distributed result wrong (maxdiff %g)", diff)
		}
		if rep.Tasks != 64 {
			t.Fatalf("tasks = %d, want 64", rep.Tasks)
		}
		if len(rep.DeadNodes) != 0 || rep.Resubmissions != 0 {
			t.Fatalf("healthy run saw failures: %+v", rep)
		}
		both := 0
		for _, n := range rep.PerNode {
			if n.Tasks > 0 {
				both++
			}
			if n.Stragglers != 0 {
				// Non-blocking: with ~50µs kernels, scheduler jitter alone
				// can exceed the 4x residual multiple. CI greps the metrics
				// artifact for the same signal without failing the build.
				t.Logf("note: healthy run flagged %d straggler(s) on %s (micro-kernel jitter)", n.Stragglers, n.Name)
			}
		}
		if both != 2 {
			t.Fatalf("work did not spread across both nodes: %+v", rep.PerNode)
		}
		t.Logf("happy path: %s", rep)

		merged := fetchMergedTrace(t, rep)
		checkFleetMetrics(t, base, rep)
		writeArtifacts(t, merged, base)
	})

	t.Run("WorkerKilledMidFlight", func(t *testing.T) {
		// A bigger graph so plenty of work remains when the victim dies;
		// kill smoke-b once the master has dispatched a meaningful prefix.
		tr := trace.New()
		killed := make(chan struct{})
		go func() {
			defer close(killed)
			for tr.Len() < 80 {
				time.Sleep(10 * time.Millisecond)
			}
			workerB.Process.Kill()
		}()
		rep, diff := runMaster(t, nodes, 512, 64, tr, nil)
		<-killed
		if diff > 1e-8 {
			t.Fatalf("result wrong after mid-flight kill (maxdiff %g)", diff)
		}
		if rep.Tasks != 512 {
			t.Fatalf("tasks = %d, want 512", rep.Tasks)
		}
		if len(rep.DeadNodes) != 1 || rep.DeadNodes[0] != "smoke-b" {
			t.Fatalf("dead nodes = %v, want [smoke-b]", rep.DeadNodes)
		}
		if rep.Resubmissions == 0 {
			t.Fatal("no resubmissions despite mid-flight kill")
		}
		t.Logf("failover: %s", rep)
	})
}

// fetchMergedTrace pulls the live merged cluster timeline over the HTTP
// debug surface (the same handler pdlbench -pprof mounts) and verifies it
// stitches worker-side kernel spans from both nodes with their causal
// identity intact.
func fetchMergedTrace(t *testing.T, rep *cluster.Report) *trace.Trace {
	t.Helper()
	debug := httptest.NewServer(cluster.DebugHandler())
	defer debug.Close()
	resp, err := http.Get(debug.URL + "/debug/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.ReadBytes(body)
	if err != nil {
		t.Fatalf("parsing merged trace: %v", err)
	}
	spans := map[string]int{}
	taskIDs := map[int]bool{}
	for _, e := range merged.Events() {
		if e.Kind != trace.Task || e.Node == "" {
			continue
		}
		if e.Label == "" || e.End < e.Start {
			t.Fatalf("kernel span lost causal identity: %+v", e)
		}
		spans[e.Node]++
		taskIDs[e.TaskID] = true
	}
	for _, node := range []string{"smoke-a", "smoke-b"} {
		if spans[node] == 0 {
			t.Fatalf("merged trace has no kernel spans from %s (got %v)", node, spans)
		}
	}
	if len(taskIDs) != rep.Tasks {
		t.Fatalf("kernel spans cover %d distinct task ids, want %d", len(taskIDs), rep.Tasks)
	}
	t.Logf("merged trace: %d events, kernel spans per node %v", merged.Len(), spans)
	return merged
}

// checkFleetMetrics polls pdlserved's /metrics until the federated
// node-labelled kernel latency histograms from both workers appear — the
// scrape loop runs every 500ms, and the workers only grow those families
// once kernels have executed.
func checkFleetMetrics(t *testing.T, base string, rep *cluster.Report) {
	t.Helper()
	want := []string{
		`taskrt_fleet_kernel_seconds_bucket{node="smoke-a"`,
		`taskrt_fleet_kernel_seconds_bucket{node="smoke-b"`,
		`taskrt_fleet_executions_total{node="smoke-a"`,
		`taskrt_fleet_executions_total{node="smoke-b"`,
	}
	deadline := time.Now().Add(15 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		body = fetchText(t, base+"/metrics")
		ok := true
		for _, w := range want {
			if !strings.Contains(body, w) {
				ok = false
				break
			}
		}
		if ok {
			t.Logf("fleet federation: both nodes' kernel histograms on %s/metrics", base)
			return
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("federated fleet metrics never appeared; last scrape:\n%s", grepLines(body, "taskrt_fleet_"))
}

// writeArtifacts persists the merged Chrome trace and the metrics snapshots
// when PDL_SMOKE_ARTIFACTS names a directory — CI uploads these so a failed
// (or healthy) cluster run can be inspected in Perfetto after the fact.
func writeArtifacts(t *testing.T, merged *trace.Trace, base string) {
	t.Helper()
	dir := os.Getenv("PDL_SMOKE_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteChromeFile(filepath.Join(dir, "cluster_trace.json")); err != nil {
		t.Fatal(err)
	}
	fleet := fetchText(t, base+"/metrics")
	if err := os.WriteFile(filepath.Join(dir, "fleet_metrics.txt"), []byte(fleet), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	metrics.Default.WritePrometheus(&b)
	if err := os.WriteFile(filepath.Join(dir, "cluster_metrics.txt"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote smoke artifacts to %s", dir)
}

// fetchText GETs a URL and returns its body as a string.
func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// grepLines filters a text blob to the lines containing sub (for readable
// failure output).
func grepLines(text, sub string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return "(no matching lines)"
	}
	return strings.Join(out, "\n")
}

// runMaster drives an in-process cluster master over a tiled C += A·B graph
// against the given worker nodes and verifies the distributed result
// against the local blocked reference, returning the report and maxdiff.
func runMaster(t *testing.T, nodes []cluster.NodeConfig, n, tile int, tr *trace.Trace, mut func(*cluster.Config)) (*cluster.Report, float64) {
	t.Helper()
	pl, err := core.NewBuilder("smoke-master").Master("host", core.Arch("x86"), core.Qty(1)).Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := taskrt.New(taskrt.Config{Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	mats := experiments.NewGemmMatrices(n, 7)
	if err := experiments.SubmitTiledGEMM(rt, n, tile, mats); err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		Nodes:          nodes,
		Trace:          tr,
		HeartbeatEvery: 100 * time.Millisecond,
		Logf:           t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := cluster.NewMaster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	ref := blas.NewMatrix(n, n)
	if err := blas.GemmBlocked(mats.A, mats.B, ref, blas.DefaultBlock); err != nil {
		t.Fatal(err)
	}
	return rep, blas.MaxDiff(ref, mats.C)
}

// buildBinaries compiles the daemons under test into a temp dir.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bin := map[string]string{}
	for _, name := range []string{"pdlserved", "pdlworkerd"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = repoRoot(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bin[name] = out
	}
	return bin
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// startProc launches a daemon and streams its output through the test log.
func startProc(t *testing.T, path string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(path, args...)
	cmd.Stdout = &testWriter{t, filepath.Base(path)}
	cmd.Stderr = &testWriter{t, filepath.Base(path)}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", path, err)
	}
	return cmd
}

// stopProc terminates a daemon, escalating to SIGKILL if it ignores the
// polite request. Safe on processes that already exited.
func stopProc(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// waitHealthy polls the registry's /healthz until it answers.
func waitHealthy(t *testing.T, ctl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := ctl.GetJSON(ctx, "/healthz", nil)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("pdlserved did not become healthy at %s", ctl.Base())
}

// waitWorkers polls GET /workers until want leases are registered and turns
// them into master node configs — the discovery path a real deployment uses.
func waitWorkers(t *testing.T, ctl *client.Client, want int) []cluster.NodeConfig {
	t.Helper()
	var list struct {
		Workers []server.WorkerInfo `json:"workers"`
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := ctl.GetJSON(ctx, "/workers", &list)
		cancel()
		if err == nil && len(list.Workers) >= want {
			nodes := make([]cluster.NodeConfig, 0, len(list.Workers))
			for _, w := range list.Workers {
				nodes = append(nodes, cluster.NodeConfig{Name: w.ID, Addr: w.Addr})
			}
			return nodes
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("only %d/%d workers registered in time", len(list.Workers), want)
	return nil
}

// freeAddr reserves an ephemeral loopback port and releases it for the
// daemon to bind (a benign race: the smoke runs alone on the host).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// testWriter relays subprocess output into the test log, line-buffered
// enough for readability without extra machinery.
type testWriter struct {
	t      *testing.T
	prefix string
}

func (w *testWriter) Write(p []byte) (int, error) {
	w.t.Logf("[%s] %s", w.prefix, p)
	return len(p), nil
}
