package cluster

import (
	"fmt"
	"time"

	"repro/internal/taskrt"
	"repro/internal/trace"
)

// Straggler & anomaly detection: every successful model-placed execution is
// compared against the perfmodel estimate its placement actually used. The
// per-task residual (observed / estimated) feeds a histogram and a per-node
// EWMA slowdown score; tasks whose residual exceeds the configured multiple
// are flagged (metric, Straggler trace instant, structured log), and the
// slowdown score back-pressures the EFT placer — a slow node's estimates are
// scaled up, so work drains toward healthy nodes ("Revisiting Matrix Product
// on Master-Worker Platforms": stragglers dominate makespan unless the
// master adapts). An optional score threshold escalates to blacklisting.

// StragglerConfig tunes the master's detector.
type StragglerConfig struct {
	// Multiple flags a task when observed latency exceeds the model
	// estimate its placement used by more than this factor. Default 4;
	// negative disables detection entirely.
	Multiple float64
	// MinSamples is how many model-placed observations a node must have
	// before tasks on it can be flagged — cold models mis-estimate, and a
	// detector that cries wolf during warmup gets ignored. Default 3.
	MinSamples int
	// Alpha is the EWMA weight of the newest residual in the node slowdown
	// score (first observation seeds the score directly). Default 0.25.
	Alpha float64
	// BlacklistScore, when > 0, declares a node down once its slowdown
	// score reaches it — the detector's escalation from deprioritise to
	// evict. The node rejoins through the normal heartbeat path if it
	// recovers. Zero leaves eviction to heartbeats alone.
	BlacklistScore float64
}

// withDefaults fills zero fields.
func (c StragglerConfig) withDefaults() StragglerConfig {
	if c.Multiple == 0 {
		c.Multiple = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.25
	}
	return c
}

// enabled reports whether detection is active.
func (c StragglerConfig) enabled() bool { return c.Multiple > 0 }

// penalty is the factor a node's execution estimates are scaled by in EFT
// placement: its slowdown score, floored at 1 so healthy or fast nodes are
// never rewarded for beating the model (that is the model's job to learn).
func (n *nodeState) penalty() float64 {
	if n.slowEWMA > 1 {
		return n.slowEWMA
	}
	return 1
}

// observeResidual runs on the loop goroutine for every successful execution
// that was placed on a perfmodel estimate (rec.modelEst > 0).
func (st *runState) observeResidual(n *nodeState, t *taskrt.Task, rec *inflightRec, obsSeconds float64) {
	cfg := st.m.cfg.Straggler
	if !cfg.enabled() || rec.modelEst <= 0 || obsSeconds <= 0 {
		return
	}
	ratio := obsSeconds * 1e9 / rec.modelEst
	cm.residual.With(n.cfg.Name).Observe(ratio)
	if n.slowSamples == 0 {
		n.slowEWMA = ratio
	} else {
		n.slowEWMA = (1-cfg.Alpha)*n.slowEWMA + cfg.Alpha*ratio
	}
	n.slowSamples++
	n.stats.Slowdown = n.slowEWMA
	cm.slowdown.With(n.cfg.Name).Set(n.slowEWMA)

	if n.slowSamples >= cfg.MinSamples && ratio > cfg.Multiple {
		n.stats.Stragglers++
		cm.stragglers.With(n.cfg.Name).Inc()
		reason := fmt.Sprintf("x%.1f vs model (est %.3fms obs %.3fms score x%.1f)",
			ratio, rec.modelEst/1e6, obsSeconds*1e3, n.slowEWMA)
		st.traceStraggler(n, t, reason)
		st.m.logf("cluster: straggler: node=%s task=%d label=%q attempt=%d ratio=%.2f est_ms=%.3f obs_ms=%.3f score=%.2f",
			n.cfg.Name, t.ID(), t.Label, st.attempts[t.ID()], ratio, rec.modelEst/1e6, obsSeconds*1e3, n.slowEWMA)
	}
	if cfg.BlacklistScore > 0 && n.slowEWMA >= cfg.BlacklistScore && n.alive {
		st.m.logf("cluster: node %s slowdown score %.2f >= %.2f; blacklisting",
			n.cfg.Name, n.slowEWMA, cfg.BlacklistScore)
		st.nodeDown(n)
	}
}

// traceStraggler records the detection instant against the flagged node.
func (st *runState) traceStraggler(n *nodeState, t *taskrt.Task, reason string) {
	tr := st.m.cfg.Trace
	if tr == nil {
		return
	}
	now := time.Since(st.start).Seconds()
	tr.Record(trace.Event{
		Kind: trace.Straggler, Unit: st.m.cfg.Name, Node: n.cfg.Name,
		Label: t.Label, TaskID: t.ID(), From: reason, Start: now, End: now,
	})
}
