package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// WorkerConfig configures an execution node.
type WorkerConfig struct {
	// Name identifies the node in traces, leases and master bookkeeping.
	Name string
	// Codelets is the executable registry: invocation of an unlisted
	// codelet is an error the master counts against the task, not the node.
	Codelets []*taskrt.Codelet
	// Archs are the architecture tags this node executes, in preference
	// order ("x86" on commodity hosts). An impl is runnable here when its
	// arch is listed and its Func is non-nil.
	Archs []string
	// Slots bounds concurrent executions (default 1): the node-local
	// equivalent of the runtime's worker count.
	Slots int
	// Models, when set, records one observation per execution — the live
	// perfmodel the node streams to pdlserved and serves to masters.
	Models *perfmodel.Store
	// OnObservation, when set, is called after each successful execution
	// (pdlworkerd wires it to POST /platforms/{name}/observe).
	OnObservation func(codelet, arch string, size, seconds float64)
	// Trace, when set, is the trace execution spans are recorded into; the
	// worker builds a private one otherwise. Either way the trace is stamped
	// with node + epoch metadata, spans piggyback on execute responses, and
	// GET /v1/trace serves (or drains) the buffer.
	Trace *trace.Trace
	// Faults, when set, is a slowdown-injection plan: Delay events whose
	// Unit matches Name add their Delay seconds to every (gated) kernel —
	// the deterministic gray failure the master's straggler detector is
	// tested against. Failure events in the plan are ignored here.
	Faults *taskrt.FaultPlan
	// MaxBodyBytes bounds execute request bodies (default 256 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the handle cache (default 65536 entries).
	// Eviction is arbitrary: an evicted handle resurfaces as NeedData and
	// the master re-inlines it.
	CacheEntries int
	// TraceCap bounds the span buffer behind GET /v1/trace (default
	// DefaultTraceCap; negative disables the bound). Spans accumulate for
	// the drain pull path, so a worker serving non-tracing masters — or one
	// whose collector died — would otherwise grow without limit. Past the
	// cap the oldest spans are discarded and counted in
	// taskrt_worker_trace_dropped_spans_total.
	TraceCap int
	Logf     func(format string, args ...any)
}

// DefaultTraceCap is the default span-buffer bound: the same 64k events
// (~8 MB) a per-worker shard holds.
const DefaultTraceCap = trace.DefaultShardCapacity

// cacheEntry is the latest locally-held version of a handle.
type cacheEntry struct {
	version uint64
	payload any
	bytes   int64 // encoded size when it arrived inline (0 for local stores)
}

// Worker executes shipped codelet invocations. It is an http.Handler
// provider; pdlworkerd (or an httptest server in tests) owns the listener.
type Worker struct {
	cfg      WorkerConfig
	codelets map[string]*taskrt.Codelet
	slots    chan int // free-list of slot ids, naming trace lanes
	start    time.Time

	// tr is the node trace (cfg.Trace or private); shards are the per-slot
	// lock-free span buffers feeding it. A shard is only touched while its
	// slot is held, preserving the single-producer invariant.
	tr     *trace.Trace
	shards []*trace.Shard
	delays []taskrt.FaultEvent

	met       *workerMetrics
	inflight  atomic.Int64
	execCount atomic.Int64

	mu         sync.Mutex
	cache      map[int]cacheEntry
	cacheBytes int64

	execs sync.WaitGroup
}

// workerMetrics is the node-local instrument set, in a private registry per
// Worker so multi-worker processes (tests, loopback experiments) never
// collide on registration. Families use the taskrt_worker_ prefix, which is
// what pdlserved's fleet scraper federates.
type workerMetrics struct {
	reg        *metrics.Registry
	executions *metrics.CounterVec   // {codelet, arch}
	failures   *metrics.CounterVec   // {codelet}
	kernel     *metrics.HistogramVec // {codelet}
	needData   *metrics.Counter
	delayed    *metrics.Counter
}

func newWorkerMetrics(w *Worker) *workerMetrics {
	reg := metrics.New()
	m := &workerMetrics{
		reg: reg,
		executions: reg.CounterVec("taskrt_worker_executions_total",
			"Kernels executed to completion on this node.", "codelet", "arch"),
		failures: reg.CounterVec("taskrt_worker_failures_total",
			"Kernel executions that returned an error, by codelet.", "codelet"),
		kernel: reg.HistogramVec("taskrt_worker_kernel_seconds",
			"Kernel execution latency on this node, by codelet.", clusterTaskBuckets, "codelet"),
		needData: reg.Counter("taskrt_worker_needdata_total",
			"Invocations bounced for missing cached payload versions."),
		delayed: reg.Counter("taskrt_worker_injected_delay_seconds_total",
			"Seconds of fault-plan slowdown injected into kernels."),
	}
	reg.GaugeFunc("taskrt_worker_inflight_kernels",
		"Invocations currently holding an execution slot.",
		func() float64 { return float64(w.inflight.Load()) })
	reg.GaugeFunc("taskrt_worker_cache_entries",
		"Handles resident in the version-tagged payload cache.",
		func() float64 { entries, _ := w.CacheStats(); return float64(entries) })
	reg.GaugeFunc("taskrt_worker_cached_bytes",
		"Declared bytes of the cached handle payloads.",
		func() float64 { _, bytes := w.CacheStats(); return float64(bytes) })
	reg.GaugeFunc("taskrt_worker_slots",
		"Configured execution parallelism.",
		func() float64 { return float64(w.cfg.Slots) })
	reg.GaugeFunc("taskrt_worker_uptime_seconds",
		"Seconds since the worker process epoch.",
		func() float64 { return time.Since(w.start).Seconds() })
	reg.CounterFunc("taskrt_worker_trace_dropped_spans_total",
		"Spans discarded by the bounded trace buffer before a collector drained them.",
		func() float64 { return float64(w.tr.DroppedTotal()) })
	return m
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if len(cfg.Archs) == 0 {
		return nil, fmt.Errorf("cluster: worker %s needs at least one arch", cfg.Name)
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 65536
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	w := &Worker{
		cfg:      cfg,
		codelets: map[string]*taskrt.Codelet{},
		slots:    make(chan int, cfg.Slots),
		start:    time.Now(),
		cache:    map[int]cacheEntry{},
		delays:   cfg.Faults.DelaysForUnit(cfg.Name),
	}
	for _, c := range cfg.Codelets {
		if _, dup := w.codelets[c.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate codelet %q", c.Name)
		}
		w.codelets[c.Name] = c
	}
	for i := 0; i < cfg.Slots; i++ {
		w.slots <- i
	}
	w.tr = cfg.Trace
	if w.tr == nil {
		w.tr = trace.New()
	}
	switch {
	case cfg.TraceCap > 0:
		w.tr.SetLimit(cfg.TraceCap)
	case cfg.TraceCap == 0:
		w.tr.SetLimit(DefaultTraceCap)
	}
	w.tr.SetMeta(trace.MetaNode, cfg.Name)
	w.tr.SetMeta(trace.MetaEpochMicros, fmt.Sprintf("%d", w.start.UnixMicro()))
	w.shards = make([]*trace.Shard, cfg.Slots)
	for i := range w.shards {
		w.shards[i] = w.tr.NewShard(0)
	}
	w.met = newWorkerMetrics(w)
	return w, nil
}

// Trace returns the worker's node trace (the one /v1/trace serves).
func (w *Worker) Trace() *trace.Trace { return w.tr }

// CacheStats reports the payload cache's entry count and declared bytes.
func (w *Worker) CacheStats() (entries int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.cache), w.cacheBytes
}

// Metrics returns the worker's private metric registry (served on /metrics).
func (w *Worker) Metrics() *metrics.Registry { return w.met.reg }

// Info describes the worker for GET /v1/info and lease registration.
func (w *Worker) Info() InfoResponse {
	names := make([]string, 0, len(w.codelets))
	for name, c := range w.codelets {
		if w.runnableImpl(c) != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return InfoResponse{Name: w.cfg.Name, Archs: w.cfg.Archs, Workers: w.cfg.Slots, Codelets: names}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExecute, w.handleExecute)
	mux.HandleFunc("GET "+PathInfo, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(w.Info())
	})
	mux.HandleFunc("GET "+PathHealthz, func(rw http.ResponseWriter, r *http.Request) {
		entries, bytes := w.CacheStats()
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]any{
			"status":           "ok",
			"name":             w.cfg.Name,
			"cache_entries":    entries,
			"cached_bytes":     bytes,
			"inflight_kernels": w.inflight.Load(),
			"slots":            w.cfg.Slots,
			"uptime_seconds":   time.Since(w.start).Seconds(),
		})
	})
	mux.HandleFunc("GET "+PathTrace, w.handleTrace)
	mux.HandleFunc("GET "+PathMetrics, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.met.reg.WritePrometheus(rw)
		metrics.Default.WritePrometheus(rw)
	})
	return mux
}

// handleTrace serves the node's span buffer as JSONL. ?drain=1 atomically
// hands the buffer over and clears it, so a polling collector sees every
// span exactly once.
func (w *Worker) handleTrace(rw http.ResponseWriter, r *http.Request) {
	tr := w.tr
	if r.URL.Query().Get("drain") == "1" {
		tr = w.tr.Drain()
	}
	rw.Header().Set("Content-Type", "application/jsonl")
	if err := tr.WriteJSONL(rw); err != nil {
		w.logf("cluster: worker %s: writing trace: %v", w.cfg.Name, err)
	}
}

// Wait blocks until in-flight executions finish (graceful shutdown).
func (w *Worker) Wait() { w.execs.Wait() }

// runnableImpl picks the first configured arch the codelet implements with
// a real function.
func (w *Worker) runnableImpl(c *taskrt.Codelet) *taskrt.Impl {
	for _, arch := range w.cfg.Archs {
		if im := c.ImplFor(arch); im != nil && im.Func != nil {
			return im
		}
	}
	return nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(rw, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req ExecRequest
	if err := decodeGob(body, &req); err != nil {
		http.Error(rw, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.execs.Add(1)
	defer w.execs.Done()
	resp := w.execute(&req)
	data, err := encodeGob(resp)
	if err != nil {
		http.Error(rw, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", ContentTypeGob)
	rw.Write(data)
}

// execute resolves payloads, runs the kernel on a free slot and packages
// written payloads. All failures that relate to the invocation itself come
// back OK=false in-band; only transport-level problems surface as HTTP
// errors (and count against the node on the master).
func (w *Worker) execute(req *ExecRequest) *ExecResponse {
	resp := &ExecResponse{TaskID: req.TaskID, Attempt: req.Attempt, Unit: w.cfg.Name}
	cl, ok := w.codelets[req.Codelet]
	if !ok {
		resp.Error = fmt.Sprintf("worker %s has no codelet %q", w.cfg.Name, req.Codelet)
		return resp
	}
	im := w.runnableImpl(cl)
	if im == nil {
		resp.Error = fmt.Sprintf("worker %s (archs %v) cannot run codelet %q", w.cfg.Name, w.cfg.Archs, req.Codelet)
		return resp
	}

	// Resolve payloads: inline data enters the cache at its spec version;
	// references must hit the cache exactly, else the master re-inlines.
	payloads := make([]any, len(req.Accesses))
	w.mu.Lock()
	for i, a := range req.Accesses {
		if a.Inline != nil {
			continue
		}
		e, ok := w.cache[a.HandleID]
		if !ok || e.version != a.Version {
			resp.NeedData = append(resp.NeedData, a.HandleID)
			continue
		}
		payloads[i] = e.payload
	}
	w.mu.Unlock()
	if len(resp.NeedData) > 0 {
		w.met.needData.Inc()
		return resp
	}
	for i, a := range req.Accesses {
		if a.Inline == nil {
			continue
		}
		v, err := DecodePayload(a.Inline)
		if err != nil {
			resp.Error = fmt.Sprintf("handle %d (%s): %v", a.HandleID, a.Name, err)
			return resp
		}
		payloads[i] = v
	}

	slot := <-w.slots
	defer func() { w.slots <- slot }()
	resp.Unit = fmt.Sprintf("worker%d", slot)
	resp.Arch = im.Arch
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	nth := w.execCount.Add(1)

	// The synthetic task carries what kernels may consult (label, flops);
	// identity fields stay zero — handle identity lives in the AccessSpec.
	tc := &taskrt.TaskContext{
		WorkerID: slot,
		Arch:     im.Arch,
		Data:     payloads,
		Task:     &taskrt.Task{Codelet: cl, Flops: req.Flops, Label: req.Label},
	}
	begin := time.Now()
	// Injected slowdown sleeps inside the measured window, so the delay
	// inflates ExecSeconds, the recorded span and every model observation —
	// indistinguishable from a genuinely slow node, which is the point.
	if d := w.injectedDelay(int(nth)); d > 0 {
		w.met.delayed.Add(d.Seconds())
		time.Sleep(d)
	}
	err := im.Func(tc)
	elapsed := time.Since(begin)
	w.recordSpan(resp, req, slot, begin, elapsed, err == nil)
	w.met.kernel.With(req.Codelet).Observe(elapsed.Seconds())
	if err != nil {
		// The kernel may have partially mutated write-mode payloads in
		// place before failing. A cache-resident one would survive still
		// tagged with its pre-write version and feed the retry corrupted
		// data, so drop every written handle; the master re-inlines
		// canonical bytes on the next attempt.
		w.mu.Lock()
		for _, a := range req.Accesses {
			if taskrt.AccessMode(a.Mode).Writes() {
				w.cacheDeleteLocked(a.HandleID)
			}
		}
		w.mu.Unlock()
		w.met.failures.With(req.Codelet).Inc()
		resp.Error = err.Error()
		return resp
	}
	resp.ExecSeconds = elapsed.Seconds()
	w.met.executions.With(req.Codelet, im.Arch).Inc()

	// Cache contents now valid here: reads at their spec version, writes at
	// the successor version (the task graph serialises writers, so
	// reqVersion+1 is the version the master will assign on apply).
	w.mu.Lock()
	for i, a := range req.Accesses {
		mode := taskrt.AccessMode(a.Mode)
		ver := a.Version
		if mode.Writes() {
			ver++
		}
		w.cacheStoreLocked(a.HandleID, ver, payloads[i], a.Bytes)
	}
	w.mu.Unlock()
	for i, a := range req.Accesses {
		if !taskrt.AccessMode(a.Mode).Writes() {
			continue
		}
		data, err := EncodePayload(payloads[i])
		if err != nil {
			resp.Error = fmt.Sprintf("handle %d (%s): %v", a.HandleID, a.Name, err)
			return resp
		}
		resp.Written = append(resp.Written, Written{HandleID: a.HandleID, Version: a.Version + 1, Payload: data})
	}
	resp.OK = true

	if req.Flops > 0 {
		if w.cfg.Models != nil {
			if err := w.cfg.Models.Model(req.Codelet, im.Arch).Record(req.Flops, elapsed.Seconds()); err != nil {
				w.logf("cluster: worker %s: recording observation: %v", w.cfg.Name, err)
			}
		}
		if w.cfg.OnObservation != nil {
			w.cfg.OnObservation(req.Codelet, im.Arch, req.Flops, elapsed.Seconds())
		}
	}
	return resp
}

// cacheStoreLocked inserts under the entry cap, evicting arbitrarily when
// full (misses self-heal via NeedData), and keeps the declared-bytes
// accounting the /healthz and /metrics surfaces report.
func (w *Worker) cacheStoreLocked(id int, ver uint64, payload any, bytes int64) {
	if _, exists := w.cache[id]; !exists && len(w.cache) >= w.cfg.CacheEntries {
		for victim := range w.cache {
			w.cacheDeleteLocked(victim)
			break
		}
	}
	if old, exists := w.cache[id]; exists {
		w.cacheBytes -= old.bytes
	}
	w.cache[id] = cacheEntry{version: ver, payload: payload, bytes: bytes}
	w.cacheBytes += bytes
}

// cacheDeleteLocked removes an entry, keeping the byte accounting honest.
func (w *Worker) cacheDeleteLocked(id int) {
	if e, exists := w.cache[id]; exists {
		w.cacheBytes -= e.bytes
		delete(w.cache, id)
	}
}

// injectedDelay sums the fault plan's active slowdowns for this execution
// (nth is 1-based): ungated delays always apply, AtTime gates open that many
// seconds after process start, AfterTasks gates from the Nth execution on.
func (w *Worker) injectedDelay(nth int) time.Duration {
	total := 0.0
	for _, f := range w.delays {
		switch {
		case f.AfterTasks > 0 && nth < f.AfterTasks:
			continue
		case f.AtTime > 0 && time.Since(w.start).Seconds() < f.AtTime:
			continue
		}
		total += f.Delay
	}
	return time.Duration(total * float64(time.Second))
}

// recordSpan writes the execution span into the slot's shard, flushes it to
// the node trace (so /v1/trace readers see it immediately) and piggybacks it
// on the response — the push half of distributed trace propagation. The
// shard is owned by the held slot, so Record never contends.
func (w *Worker) recordSpan(resp *ExecResponse, req *ExecRequest, slot int, begin time.Time, elapsed time.Duration, ok bool) {
	kind := trace.Task
	if !ok {
		kind = trace.Failure
	}
	start := begin.Sub(w.start).Seconds()
	e := trace.Event{
		Kind:      kind,
		Unit:      resp.Unit,
		Node:      w.cfg.Name,
		Label:     req.Label,
		TaskID:    req.TaskID,
		ParentIDs: req.Parents,
		Attempt:   req.Attempt,
		Worker:    slot,
		Start:     start,
		End:       start + elapsed.Seconds(),
	}
	w.shards[slot].Record(e)
	w.shards[slot].Flush()
	resp.Spans = append(resp.Spans, e)
	resp.EpochMicros = w.start.UnixMicro()
}
