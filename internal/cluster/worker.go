package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// WorkerConfig configures an execution node.
type WorkerConfig struct {
	// Name identifies the node in traces, leases and master bookkeeping.
	Name string
	// Codelets is the executable registry: invocation of an unlisted
	// codelet is an error the master counts against the task, not the node.
	Codelets []*taskrt.Codelet
	// Archs are the architecture tags this node executes, in preference
	// order ("x86" on commodity hosts). An impl is runnable here when its
	// arch is listed and its Func is non-nil.
	Archs []string
	// Slots bounds concurrent executions (default 1): the node-local
	// equivalent of the runtime's worker count.
	Slots int
	// Models, when set, records one observation per execution — the live
	// perfmodel the node streams to pdlserved and serves to masters.
	Models *perfmodel.Store
	// OnObservation, when set, is called after each successful execution
	// (pdlworkerd wires it to POST /platforms/{name}/observe).
	OnObservation func(codelet, arch string, size, seconds float64)
	// Trace, when set, records execution spans stamped with Name so merged
	// cluster traces carry per-node lanes.
	Trace *trace.Trace
	// MaxBodyBytes bounds execute request bodies (default 256 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the handle cache (default 65536 entries).
	// Eviction is arbitrary: an evicted handle resurfaces as NeedData and
	// the master re-inlines it.
	CacheEntries int
	Logf         func(format string, args ...any)
}

// cacheEntry is the latest locally-held version of a handle.
type cacheEntry struct {
	version uint64
	payload any
}

// Worker executes shipped codelet invocations. It is an http.Handler
// provider; pdlworkerd (or an httptest server in tests) owns the listener.
type Worker struct {
	cfg      WorkerConfig
	codelets map[string]*taskrt.Codelet
	slots    chan int // free-list of slot ids, naming trace lanes
	start    time.Time

	mu    sync.Mutex
	cache map[int]cacheEntry

	execs sync.WaitGroup
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if len(cfg.Archs) == 0 {
		return nil, fmt.Errorf("cluster: worker %s needs at least one arch", cfg.Name)
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 65536
	}
	w := &Worker{
		cfg:      cfg,
		codelets: map[string]*taskrt.Codelet{},
		slots:    make(chan int, cfg.Slots),
		start:    time.Now(),
		cache:    map[int]cacheEntry{},
	}
	for _, c := range cfg.Codelets {
		if _, dup := w.codelets[c.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate codelet %q", c.Name)
		}
		w.codelets[c.Name] = c
	}
	for i := 0; i < cfg.Slots; i++ {
		w.slots <- i
	}
	if cfg.Trace != nil {
		cfg.Trace.SetMeta(trace.MetaNode, cfg.Name)
		cfg.Trace.SetMeta(trace.MetaEpochMicros, fmt.Sprintf("%d", w.start.UnixMicro()))
	}
	return w, nil
}

// Info describes the worker for GET /v1/info and lease registration.
func (w *Worker) Info() InfoResponse {
	names := make([]string, 0, len(w.codelets))
	for name, c := range w.codelets {
		if w.runnableImpl(c) != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return InfoResponse{Name: w.cfg.Name, Archs: w.cfg.Archs, Workers: w.cfg.Slots, Codelets: names}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathExecute, w.handleExecute)
	mux.HandleFunc("GET "+PathInfo, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(w.Info())
	})
	mux.HandleFunc("GET "+PathHealthz, func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(map[string]any{"status": "ok", "name": w.cfg.Name})
	})
	return mux
}

// Wait blocks until in-flight executions finish (graceful shutdown).
func (w *Worker) Wait() { w.execs.Wait() }

// runnableImpl picks the first configured arch the codelet implements with
// a real function.
func (w *Worker) runnableImpl(c *taskrt.Codelet) *taskrt.Impl {
	for _, arch := range w.cfg.Archs {
		if im := c.ImplFor(arch); im != nil && im.Func != nil {
			return im
		}
	}
	return nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(rw, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req ExecRequest
	if err := decodeGob(body, &req); err != nil {
		http.Error(rw, "decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	w.execs.Add(1)
	defer w.execs.Done()
	resp := w.execute(&req)
	data, err := encodeGob(resp)
	if err != nil {
		http.Error(rw, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", ContentTypeGob)
	rw.Write(data)
}

// execute resolves payloads, runs the kernel on a free slot and packages
// written payloads. All failures that relate to the invocation itself come
// back OK=false in-band; only transport-level problems surface as HTTP
// errors (and count against the node on the master).
func (w *Worker) execute(req *ExecRequest) *ExecResponse {
	resp := &ExecResponse{TaskID: req.TaskID, Attempt: req.Attempt, Unit: w.cfg.Name}
	cl, ok := w.codelets[req.Codelet]
	if !ok {
		resp.Error = fmt.Sprintf("worker %s has no codelet %q", w.cfg.Name, req.Codelet)
		return resp
	}
	im := w.runnableImpl(cl)
	if im == nil {
		resp.Error = fmt.Sprintf("worker %s (archs %v) cannot run codelet %q", w.cfg.Name, w.cfg.Archs, req.Codelet)
		return resp
	}

	// Resolve payloads: inline data enters the cache at its spec version;
	// references must hit the cache exactly, else the master re-inlines.
	payloads := make([]any, len(req.Accesses))
	w.mu.Lock()
	for i, a := range req.Accesses {
		if a.Inline != nil {
			continue
		}
		e, ok := w.cache[a.HandleID]
		if !ok || e.version != a.Version {
			resp.NeedData = append(resp.NeedData, a.HandleID)
			continue
		}
		payloads[i] = e.payload
	}
	w.mu.Unlock()
	if len(resp.NeedData) > 0 {
		return resp
	}
	for i, a := range req.Accesses {
		if a.Inline == nil {
			continue
		}
		v, err := DecodePayload(a.Inline)
		if err != nil {
			resp.Error = fmt.Sprintf("handle %d (%s): %v", a.HandleID, a.Name, err)
			return resp
		}
		payloads[i] = v
	}

	slot := <-w.slots
	defer func() { w.slots <- slot }()
	resp.Unit = fmt.Sprintf("worker%d", slot)
	resp.Arch = im.Arch

	// The synthetic task carries what kernels may consult (label, flops);
	// identity fields stay zero — handle identity lives in the AccessSpec.
	tc := &taskrt.TaskContext{
		WorkerID: slot,
		Arch:     im.Arch,
		Data:     payloads,
		Task:     &taskrt.Task{Codelet: cl, Flops: req.Flops, Label: req.Label},
	}
	begin := time.Now()
	err := im.Func(tc)
	elapsed := time.Since(begin)
	w.recordSpan(req, resp.Unit, begin, elapsed, err == nil)
	if err != nil {
		// The kernel may have partially mutated write-mode payloads in
		// place before failing. A cache-resident one would survive still
		// tagged with its pre-write version and feed the retry corrupted
		// data, so drop every written handle; the master re-inlines
		// canonical bytes on the next attempt.
		w.mu.Lock()
		for _, a := range req.Accesses {
			if taskrt.AccessMode(a.Mode).Writes() {
				delete(w.cache, a.HandleID)
			}
		}
		w.mu.Unlock()
		resp.Error = err.Error()
		return resp
	}
	resp.ExecSeconds = elapsed.Seconds()

	// Cache contents now valid here: reads at their spec version, writes at
	// the successor version (the task graph serialises writers, so
	// reqVersion+1 is the version the master will assign on apply).
	w.mu.Lock()
	for i, a := range req.Accesses {
		mode := taskrt.AccessMode(a.Mode)
		ver := a.Version
		if mode.Writes() {
			ver++
		}
		w.cacheStoreLocked(a.HandleID, ver, payloads[i])
	}
	w.mu.Unlock()
	for i, a := range req.Accesses {
		if !taskrt.AccessMode(a.Mode).Writes() {
			continue
		}
		data, err := EncodePayload(payloads[i])
		if err != nil {
			resp.Error = fmt.Sprintf("handle %d (%s): %v", a.HandleID, a.Name, err)
			return resp
		}
		resp.Written = append(resp.Written, Written{HandleID: a.HandleID, Version: a.Version + 1, Payload: data})
	}
	resp.OK = true

	if req.Flops > 0 {
		if w.cfg.Models != nil {
			if err := w.cfg.Models.Model(req.Codelet, im.Arch).Record(req.Flops, elapsed.Seconds()); err != nil {
				w.logf("cluster: worker %s: recording observation: %v", w.cfg.Name, err)
			}
		}
		if w.cfg.OnObservation != nil {
			w.cfg.OnObservation(req.Codelet, im.Arch, req.Flops, elapsed.Seconds())
		}
	}
	return resp
}

// cacheStoreLocked inserts under the entry cap, evicting arbitrarily when
// full (misses self-heal via NeedData).
func (w *Worker) cacheStoreLocked(id int, ver uint64, payload any) {
	if _, exists := w.cache[id]; !exists && len(w.cache) >= w.cfg.CacheEntries {
		for victim := range w.cache {
			delete(w.cache, victim)
			break
		}
	}
	w.cache[id] = cacheEntry{version: ver, payload: payload}
}

// recordSpan writes the execution span into the node trace.
func (w *Worker) recordSpan(req *ExecRequest, unit string, begin time.Time, elapsed time.Duration, ok bool) {
	if w.cfg.Trace == nil {
		return
	}
	kind := trace.Task
	if !ok {
		kind = trace.Failure
	}
	start := begin.Sub(w.start).Seconds()
	w.cfg.Trace.Record(trace.Event{
		Kind:      kind,
		Unit:      unit,
		Node:      w.cfg.Name,
		Label:     req.Label,
		TaskID:    req.TaskID,
		ParentIDs: req.Parents,
		Attempt:   req.Attempt,
		Start:     start,
		End:       start + elapsed.Seconds(),
	})
}
