// Package codegen is Cascabel's output-generation stage (paper Section IV-C,
// steps 3 and 4). From a static mapping plan it produces:
//
//   - generated Go source targeting the task runtime (the counterpart of the
//     paper's StarPU output programs) — see GenerateGo;
//   - a compilation-and-linking plan derived from the platform description,
//     naming the platform compilers each variant set would require (nvcc,
//     gcc, spu-gcc, ...) — see CompilePlan; and
//   - a directly executable form of the translated program: Execute builds
//     the task graph the generated code describes and runs it on the task
//     runtime, in real or simulated mode. This is how the examples run the
//     paper's annotated programs end to end without invoking a compiler.
package codegen

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/partition"
	"repro/internal/pragma"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// Piece is one fragment of a distributed argument.
type Piece struct {
	Payload any
	Bytes   int64
	Elems   int
}

// Splittable payloads know how to distribute themselves. Call-site arguments
// must implement it to participate in data-parallel decomposition.
type Splittable interface {
	Split(d partition.Dist, pieces, blockSize int) ([]Piece, error)
}

// Vector is a real float64 vector argument. BLOCK distributions split it
// into zero-copy contiguous subslices, so kernels update the original
// storage in place. CYCLIC distributions would need gather/scatter staging
// and are rejected for in-place vectors — use SimVector to model them.
type Vector []float64

// Split implements Splittable.
func (v Vector) Split(d partition.Dist, pieces, blockSize int) ([]Piece, error) {
	if d != partition.Block {
		return nil, fmt.Errorf("codegen: %v distribution needs gather/scatter staging; only BLOCK is supported for in-place vectors", d)
	}
	ps, err := partition.Partition1D(d, len(v), pieces, blockSize)
	if err != nil {
		return nil, err
	}
	var out []Piece
	for _, p := range ps {
		if p.Elements() == 0 {
			continue
		}
		s := p.Spans[0]
		out = append(out, Piece{
			Payload: []float64(v[s.Start : s.Start+s.Len]),
			Bytes:   int64(s.Len) * 8,
			Elems:   s.Len,
		})
	}
	return out, nil
}

// SimVector is a size-only vector for simulated execution: it distributes
// like a vector of N elements of ElemBytes each but carries no data.
type SimVector struct {
	N         int
	ElemBytes int64
}

// Split implements Splittable.
func (v SimVector) Split(d partition.Dist, pieces, blockSize int) ([]Piece, error) {
	eb := v.ElemBytes
	if eb <= 0 {
		eb = 8
	}
	ps, err := partition.Partition1D(d, v.N, pieces, blockSize)
	if err != nil {
		return nil, err
	}
	var out []Piece
	for _, p := range ps {
		n := p.Elements()
		if n == 0 {
			continue
		}
		out = append(out, Piece{Payload: nil, Bytes: int64(n) * eb, Elems: n})
	}
	return out, nil
}

// ExecOptions configure Execute.
type ExecOptions struct {
	// Mode selects the engine (taskrt.Real or taskrt.Sim).
	Mode taskrt.Mode
	// Scheduler names the taskrt scheduling policy ("" = eager).
	Scheduler string
	// Args binds call-site argument names to payloads. Splittable payloads
	// are distributed per the annotation's DistSpecs; other payloads become
	// one shared handle.
	Args map[string]any
	// Pieces overrides the decomposition width (0 = total units of the
	// resolved execution group, or of the whole platform without a group).
	Pieces int
	// BlockSize is the BLOCK_CYCLIC block size (default 1).
	BlockSize int
	// FlopsPerElement scales task cost estimates (default 1).
	FlopsPerElement float64
	// Trace optionally records per-task (and sim-mode per-transfer) events.
	Trace *trace.Trace
}

// Execute builds and runs the task graph of the translated program. Each
// annotated call site becomes `pieces` tasks whose accesses follow the
// variant's declared access modes and whose data distribution follows the
// execute annotation, mirroring the output-generation step that inserts
// "highly platform specific code for data-partitioning, transfer and task
// invocations".
func Execute(plan *mapping.Plan, opts ExecOptions) (*taskrt.Report, error) {
	rt, err := taskrt.New(taskrt.Config{
		Platform:  plan.Platform,
		Mode:      opts.Mode,
		Scheduler: opts.Scheduler,
		Trace:     opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	fpe := opts.FlopsPerElement
	if fpe <= 0 {
		fpe = 1
	}
	for _, site := range plan.Sites {
		if err := submitSite(rt, site, opts, fpe); err != nil {
			return nil, err
		}
	}
	return rt.Run()
}

func submitSite(rt *taskrt.Runtime, site *mapping.SitePlan, opts ExecOptions, fpe float64) error {
	sel := site.Selection
	// Build the multi-variant codelet from the surviving implementations:
	// one impl per architecture (first variant of each arch wins, matching
	// the repository's preference order).
	var impls []taskrt.Impl
	for _, arch := range sel.Archs() {
		v := sel.ForArch(arch)[0]
		impls = append(impls, taskrt.Impl{Arch: arch, Func: v.Kernel, SpeedFactor: v.SpeedFactor})
	}
	cl, err := taskrt.NewCodelet(sel.Interface, impls...)
	if err != nil {
		return err
	}

	// Parameter modes come from the fallback variant's declaration.
	params := sel.ForArch("x86")[0].Params
	modeOf := map[string]taskrt.AccessMode{}
	for _, p := range params {
		modeOf[p.Name] = p.Mode
	}
	distOf := map[string]pragma.DistSpec{}
	for _, d := range site.Site.Annotation.Dists {
		distOf[d.Param] = d
	}

	pieces := opts.Pieces
	if pieces <= 0 {
		pieces = 0
		if site.GroupPUs != nil {
			for _, pu := range site.GroupPUs {
				pieces += pu.EffectiveQuantity()
			}
		} else {
			pieces = rtPlatformUnits(site)
		}
	}
	if pieces < 1 {
		pieces = 1
	}
	blockSize := opts.BlockSize
	if blockSize < 1 {
		blockSize = 1
	}

	// Split every distributed argument; count pieces consistently.
	type argPieces struct {
		name   string
		mode   taskrt.AccessMode
		pieces []Piece
		shared *taskrt.Handle
	}
	var args []argPieces
	nPieces := -1
	for ai, argName := range site.Site.Call.Args {
		name := argName
		// Positional association: call argument i corresponds to declared
		// parameter i (C calling convention); the annotation's dist specs
		// are keyed by parameter name.
		var pName string
		if ai < len(params) {
			pName = params[ai].Name
		} else {
			pName = name
		}
		mode, ok := modeOf[pName]
		if !ok {
			mode = taskrt.Read
		}
		payload := opts.Args[name]
		if payload == nil {
			payload = opts.Args[pName]
		}
		ap := argPieces{name: pName, mode: mode}
		if sp, ok := payload.(Splittable); ok {
			d, hasDist := distOf[pName]
			dist := partition.Block
			if hasDist {
				dist = d.Dist
			}
			ps, err := sp.Split(dist, pieces, blockSize)
			if err != nil {
				return fmt.Errorf("codegen: argument %q: %w", pName, err)
			}
			if nPieces >= 0 && len(ps) != nPieces {
				return fmt.Errorf("codegen: argument %q splits into %d pieces, earlier arguments into %d", pName, len(ps), nPieces)
			}
			nPieces = len(ps)
			ap.pieces = ps
		} else {
			var bytes int64 = 8
			ap.shared = rt.NewHandle(pName, bytes, payload)
		}
		args = append(args, ap)
	}
	if nPieces < 0 {
		nPieces = 1 // no distributed arguments: one task
	}

	// The execution group pins simulated placement to its PU subset
	// (paper IV-B); real-mode worker pools ignore it.
	var where []string
	for _, pu := range site.GroupPUs {
		where = append(where, pu.ID)
	}

	for k := 0; k < nPieces; k++ {
		var accesses []taskrt.Access
		var elems int
		for _, ap := range args {
			if ap.shared != nil {
				accesses = append(accesses, taskrt.Access{Handle: ap.shared, Mode: ap.mode})
				continue
			}
			p := ap.pieces[k]
			h := rt.NewHandle(fmt.Sprintf("%s.%d", ap.name, k), p.Bytes, p.Payload)
			accesses = append(accesses, taskrt.Access{Handle: h, Mode: ap.mode})
			if p.Elems > elems {
				elems = p.Elems
			}
		}
		if err := rt.Submit(&taskrt.Task{
			Codelet:  cl,
			Accesses: accesses,
			Flops:    fpe * float64(elems),
			Label:    fmt.Sprintf("%s#%d", sel.Interface, k),
			Where:    where,
		}); err != nil {
			return err
		}
	}
	return nil
}

func rtPlatformUnits(site *mapping.SitePlan) int {
	// Without an execution group, decompose over every unit that can run a
	// surviving variant.
	n := 0
	b := site.Selection.Bindings
	seen := map[string]bool{}
	for _, binding := range b {
		for _, pus := range binding.Roles {
			for _, pu := range pus {
				if !seen[pu.ID] {
					seen[pu.ID] = true
					n += pu.EffectiveQuantity()
				}
			}
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}
