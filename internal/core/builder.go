package core

import "fmt"

// Builder constructs platforms programmatically with a fluent interface. It
// is the in-code equivalent of writing a PDL document by hand: every entity
// the XML can express is reachable through the builder, and Build runs the
// machine-model validation before handing the platform out.
//
//	pl, err := core.NewBuilder("gpgpu-node").
//	    Master("0", core.Arch("x86")).
//	    Worker("1", core.Arch("gpu")).
//	    Link("rDMA", "0", "1").
//	    Build()
type Builder struct {
	platform *Platform
	stack    []*PU // open hierarchy scopes; top is the current controller
	err      error
	autoID   int
}

// NewBuilder returns a Builder for a platform with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{platform: &Platform{Name: name, SchemaVersion: SchemaVersion}}
}

// SchemaVersion is the PDL schema version stamped on built platforms.
const SchemaVersion = "1.0"

// PUOption customises a PU added through the builder.
type PUOption func(*PU)

// Arch sets the ARCHITECTURE property (fixed).
func Arch(arch string) PUOption {
	return func(p *PU) { p.Descriptor.SetFixed(PropArchitecture, arch) }
}

// Qty sets the quantity of identical units this node stands for.
func Qty(n int) PUOption {
	return func(p *PU) { p.Quantity = n }
}

// Named sets the human-readable unit name.
func Named(name string) PUOption {
	return func(p *PU) { p.Name = name }
}

// WithProp adds a fixed base-schema property.
func WithProp(name, value string) PUOption {
	return func(p *PU) { p.Descriptor.SetFixed(name, value) }
}

// WithUnitProp adds a fixed property carrying a unit (e.g. GLOBAL_MEM_SIZE
// in kB).
func WithUnitProp(name, value, unit string) PUOption {
	return func(p *PU) {
		p.Descriptor.Set(Property{Name: name, Value: value, Unit: unit, Fixed: true})
	}
}

// WithUnfixedProp adds an unfixed property for later completion by tools.
func WithUnfixedProp(name, value string) PUOption {
	return func(p *PU) { p.Descriptor.SetUnfixed(name, value) }
}

// InGroups attaches LogicGroupAttribute values to the unit.
func InGroups(groups ...string) PUOption {
	return func(p *PU) { p.Groups = append(p.Groups, groups...) }
}

// WithMemory attaches a memory region with a GLOBAL_MEM_SIZE property.
func WithMemory(id string, sizeKB int64) PUOption {
	return func(p *PU) {
		mr := MemoryRegion{ID: id, Name: id}
		mr.Descriptor.Set(Property{Name: PropMemSize, Value: fmt.Sprint(sizeKB), Unit: "kB", Fixed: true})
		p.Memory = append(p.Memory, mr)
	}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("core: builder: "+format, args...)
	}
	return b
}

func (b *Builder) add(pu *PU) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		if pu.Class != Master {
			return b.fail("%s %q added at top level; open a Master first", pu.Class, pu.ID)
		}
		b.platform.Masters = append(b.platform.Masters, pu)
		return b
	}
	top := b.stack[len(b.stack)-1]
	top.Children = append(top.Children, pu)
	return b
}

func (b *Builder) newPU(class Class, id string, opts []PUOption) *PU {
	if id == "" {
		id = fmt.Sprintf("pu%d", b.autoID)
		b.autoID++
	}
	pu := &PU{ID: id, Class: class}
	for _, o := range opts {
		o(pu)
	}
	return pu
}

// Master adds a top-level Master and makes it the current scope so that
// subsequent Worker/Hybrid calls attach to it.
func (b *Builder) Master(id string, opts ...PUOption) *Builder {
	if b.err != nil {
		return b
	}
	pu := b.newPU(Master, id, opts)
	b.stack = nil // Masters always open a fresh top-level scope
	b.platform.Masters = append(b.platform.Masters, pu)
	b.stack = append(b.stack, pu)
	return b
}

// Worker adds a leaf Worker under the current scope.
func (b *Builder) Worker(id string, opts ...PUOption) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		return b.fail("Worker %q added with no open Master/Hybrid scope", id)
	}
	return b.add(b.newPU(Worker, id, opts))
}

// Hybrid adds a Hybrid under the current scope and opens it as the new
// scope. Close the scope with End.
func (b *Builder) Hybrid(id string, opts ...PUOption) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		return b.fail("Hybrid %q added with no open Master/Hybrid scope", id)
	}
	pu := b.newPU(Hybrid, id, opts)
	b.add(pu)
	b.stack = append(b.stack, pu)
	return b
}

// End closes the innermost open Hybrid scope.
func (b *Builder) End() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) <= 1 {
		return b.fail("End with no open Hybrid scope")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Link declares an interconnect between two PU ids. The link is attached to
// the current scope (or the first Master when no scope is open) and is
// duplex by default.
func (b *Builder) Link(icType, from, to string, opts ...LinkOption) *Builder {
	if b.err != nil {
		return b
	}
	ic := Interconnect{
		ID:     fmt.Sprintf("ic%d", b.autoID),
		Type:   icType,
		From:   from,
		To:     to,
		Duplex: true,
	}
	b.autoID++
	for _, o := range opts {
		o(&ic)
	}
	var host *PU
	if len(b.stack) > 0 {
		host = b.stack[len(b.stack)-1]
	} else if len(b.platform.Masters) > 0 {
		host = b.platform.Masters[len(b.platform.Masters)-1]
	}
	if host == nil {
		return b.fail("Link %s->%s declared before any Master", from, to)
	}
	host.Links = append(host.Links, ic)
	return b
}

// LinkOption customises an interconnect added through the builder.
type LinkOption func(*Interconnect)

// Bandwidth sets the BANDWIDTH descriptor property in GB/s.
func Bandwidth(gbps float64) LinkOption {
	return func(ic *Interconnect) {
		ic.Descriptor.Set(Property{Name: "BANDWIDTH", Value: fmt.Sprint(gbps), Unit: "GB/s", Fixed: true})
	}
}

// Latency sets the LATENCY descriptor property in microseconds.
func Latency(us float64) LinkOption {
	return func(ic *Interconnect) {
		ic.Descriptor.Set(Property{Name: "LATENCY", Value: fmt.Sprint(us), Unit: "us", Fixed: true})
	}
}

// Simplex marks the link as usable only from→to.
func Simplex() LinkOption {
	return func(ic *Interconnect) { ic.Duplex = false }
}

// Scheme sets the free-form communication scheme tag.
func Scheme(s string) LinkOption {
	return func(ic *Interconnect) { ic.Scheme = s }
}

// LinkID overrides the auto-assigned interconnect id.
func LinkID(id string) LinkOption {
	return func(ic *Interconnect) { ic.ID = id }
}

// Build validates and returns the constructed platform.
func (b *Builder) Build() (*Platform, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.platform.Validate(); err != nil {
		return nil, err
	}
	return b.platform, nil
}

// MustBuild is Build for tests and package-level fixtures; it panics on
// error.
func (b *Builder) MustBuild() *Platform {
	pl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return pl
}
