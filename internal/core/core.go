// Package core implements the hierarchical machine model underlying the
// Platform Description Language (PDL) of Sandrieser, Benkner and Pllana,
// "Explicit Platform Descriptions for Heterogeneous Many-Core Architectures"
// (IPDPS Workshops 2011).
//
// The model describes a heterogeneous system as a tree of processing units
// (PUs) connected by explicit logical control relationships: a Master PU is a
// feature-rich, general-purpose unit at the top of the hierarchy that may
// start program execution; a Worker is a specialized leaf resource that
// carries out delegated tasks; a Hybrid acts as both, sitting at inner nodes.
// Memory regions and interconnects describe the data side of the machine:
// where data may live and along which links it can move.
//
// All PDL entities carry extensible key/value Properties grouped in
// Descriptors, so both abstract architectural patterns ("an x86 Master with a
// gpu Worker") and fully concrete platforms (clock rates, memory sizes,
// driver versions) are expressed with the same vocabulary.
//
// The package enforces the structural invariants of the machine model (see
// Validate) and provides traversal, lookup and construction helpers used by
// the XML codec (internal/pdlxml), the query API (internal/query), the
// pattern matcher (internal/pattern) and the Cascabel translator.
package core

import "fmt"

// Class identifies the control role of a processing unit in the hierarchy.
type Class int

const (
	// Master marks a general-purpose PU at the top level of the hierarchy.
	// Masters are possible starting points for program execution and may
	// control Workers and Hybrids. Multiple Masters may coexist in one
	// platform.
	Master Class = iota
	// Hybrid marks an inner-node PU that is controlled by a Master or
	// another Hybrid and itself controls further Hybrids or Workers.
	Hybrid
	// Worker marks a specialized leaf PU that only executes delegated
	// tasks and controls no other unit.
	Worker
)

// String returns the PDL element name of the class.
func (c Class) String() string {
	switch c {
	case Master:
		return "Master"
	case Hybrid:
		return "Hybrid"
	case Worker:
		return "Worker"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a PDL element name into a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "Master":
		return Master, nil
	case "Hybrid":
		return Hybrid, nil
	case "Worker":
		return Worker, nil
	}
	return 0, fmt.Errorf("core: unknown PU class %q", s)
}

// Well-known property names shared across the toolchain. The PDL property
// space is open; these constants only name the keys the paper's examples and
// this reproduction rely on.
const (
	PropArchitecture = "ARCHITECTURE"    // e.g. "x86", "gpu", "spe"
	PropDeviceName   = "DEVICE_NAME"     // marketing name, e.g. "GeForce GTX 480"
	PropVendor       = "VENDOR"          // e.g. "Intel", "Nvidia"
	PropCores        = "CORES"           // physical cores of the unit
	PropClockMHz     = "CLOCK_FREQUENCY" // unit MHz
	PropMemSize      = "GLOBAL_MEM_SIZE" // unit kB
	PropLocalMem     = "LOCAL_MEM_SIZE"  // unit kB
	PropComputeUnits = "MAX_COMPUTE_UNITS"
	PropWorkItemDims = "MAX_WORK_ITEM_DIMENSIONS"
	PropGFlopsDP     = "PEAK_GFLOPS_DP" // calibration hook for simhw
	PropRuntime      = "RUNTIME"        // e.g. "OpenCL", "Cuda", "CellSDK"
)

// Well-known interconnect types used in descriptors and the simulator.
const (
	ICTypeRDMA   = "rDMA"
	ICTypePCIe   = "PCIe"
	ICTypeQPI    = "QPI"
	ICTypeShared = "shared" // same-die shared memory path
	ICTypeEIB    = "EIB"    // Cell element interconnect bus
)
