package core

import "testing"

func TestClassString(t *testing.T) {
	if Master.String() != "Master" || Hybrid.String() != "Hybrid" || Worker.String() != "Worker" {
		t.Fatal("Class.String wrong")
	}
	if got := Class(99).String(); got != "Class(99)" {
		t.Fatalf("unknown class String = %q", got)
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"Master": Master, "Hybrid": Hybrid, "Worker": Worker} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseClass("Supervisor"); err == nil {
		t.Fatal("unknown class must fail")
	}
}

func TestPUHelpers(t *testing.T) {
	p := &PU{ID: "m", Class: Master}
	c := &PU{ID: "w", Class: Worker}
	p.AddChild(c)
	if len(p.Children) != 1 {
		t.Fatal("AddChild failed")
	}
	if p.Find("w") != c {
		t.Fatal("Find failed")
	}
	if p.Find("nope") != nil {
		t.Fatal("Find false positive")
	}
	if p.EffectiveQuantity() != 1 {
		t.Fatal("zero quantity should normalise to 1")
	}
	p.Quantity = 4
	if p.EffectiveQuantity() != 4 {
		t.Fatal("EffectiveQuantity wrong")
	}
	// String renders "?" for unknown arch.
	if got := c.String(); got != "Worker(id=w arch=? q=1)" {
		t.Fatalf("String = %q", got)
	}
	// Clone of nil is nil.
	var nilPU *PU
	if nilPU.Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestInterconnectConnectsDirectionality(t *testing.T) {
	ic := Interconnect{From: "a", To: "b"}
	if !ic.Connects("a", "b") || ic.Connects("b", "a") {
		t.Fatal("simplex Connects wrong")
	}
	ic.Duplex = true
	if !ic.Connects("b", "a") {
		t.Fatal("duplex Connects wrong")
	}
	if ic.Connects("a", "c") {
		t.Fatal("Connects false positive")
	}
}

func TestBandwidthLatencyUnits(t *testing.T) {
	mk := func(name, value, unit string) *Interconnect {
		var ic Interconnect
		ic.Descriptor.Set(Property{Name: name, Value: value, Unit: unit, Fixed: true})
		return &ic
	}
	if bw, ok := mk("BANDWIDTH", "2", "MB/s").BandwidthBytesPerSec(); !ok || bw != 2<<20 {
		t.Fatalf("MB/s = %g %v", bw, ok)
	}
	if bw, ok := mk("BANDWIDTH", "1024", "kB/s").BandwidthBytesPerSec(); !ok || bw != 1<<20 {
		t.Fatalf("kB/s = %g %v", bw, ok)
	}
	if bw, ok := mk("BANDWIDTH", "5", "").BandwidthBytesPerSec(); !ok || bw != 5 {
		t.Fatalf("B/s = %g %v", bw, ok)
	}
	if _, ok := mk("BANDWIDTH", "5", "furlongs").BandwidthBytesPerSec(); ok {
		t.Fatal("bad unit accepted")
	}
	if _, ok := mk("BANDWIDTH", "x", "GB/s").BandwidthBytesPerSec(); ok {
		t.Fatal("bad value accepted")
	}
	if _, ok := (&Interconnect{}).LatencySeconds(); ok {
		t.Fatal("missing latency should report !ok")
	}
	if lat, ok := mk("LATENCY", "5", "ms").LatencySeconds(); !ok || lat != 5e-3 {
		t.Fatalf("ms = %g %v", lat, ok)
	}
	if lat, ok := mk("LATENCY", "7", "ns").LatencySeconds(); !ok || lat < 6.99e-9 || lat > 7.01e-9 {
		t.Fatalf("ns = %g %v", lat, ok)
	}
	if lat, ok := mk("LATENCY", "2", "").LatencySeconds(); !ok || lat != 2 {
		t.Fatalf("s = %g %v", lat, ok)
	}
}

func TestMemoryRegionSizeUnits(t *testing.T) {
	mk := func(value, unit string) MemoryRegion {
		var mr MemoryRegion
		mr.Descriptor.Set(Property{Name: PropMemSize, Value: value, Unit: unit, Fixed: true})
		return mr
	}
	cases := []struct {
		value, unit string
		want        uint64
		ok          bool
	}{
		{"10", "", 10, true},
		{"10", "B", 10, true},
		{"10", "MB", 10 << 20, true},
		{"10", "GB", 10 << 30, true},
		{"-1", "kB", 0, false},
		{"10", "bits", 0, false},
	}
	for _, c := range cases {
		mr := mk(c.value, c.unit)
		got, ok := mr.SizeBytes()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("SizeBytes(%q %q) = %d, %v", c.value, c.unit, got, ok)
		}
	}
}
