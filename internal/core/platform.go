package core

import (
	"fmt"
	"sort"
	"strings"
)

// Platform is a complete PDL platform description: one or more Master
// hierarchies plus document metadata. A platform corresponds to one PDL XML
// document.
type Platform struct {
	Name          string
	SchemaVersion string
	Masters       []*PU
}

// Walk visits every PU of the platform in document order (depth-first
// pre-order per Master). Returning false from the visitor stops the walk.
func (pl *Platform) Walk(visit func(pu, controller *PU) bool) {
	stopped := false
	for _, m := range pl.Masters {
		if stopped {
			return
		}
		m.Walk(func(n, parent *PU) bool {
			if !visit(n, parent) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// AllPUs returns every processing unit of the platform in document order.
func (pl *Platform) AllPUs() []*PU {
	var out []*PU
	pl.Walk(func(n, _ *PU) bool {
		out = append(out, n)
		return true
	})
	return out
}

// FindPU returns the unit with the given id, or nil if absent.
func (pl *Platform) FindPU(id string) *PU {
	var found *PU
	pl.Walk(func(n, _ *PU) bool {
		if n.ID == id {
			found = n
			return false
		}
		return true
	})
	return found
}

// Controller returns the PU controlling the unit with the given id, or nil
// for Masters and unknown ids.
func (pl *Platform) Controller(id string) *PU {
	var found *PU
	pl.Walk(func(n, parent *PU) bool {
		if n.ID == id {
			found = parent
			return false
		}
		return true
	})
	return found
}

// PUsByClass returns every unit of the given class in document order.
func (pl *Platform) PUsByClass(c Class) []*PU {
	var out []*PU
	pl.Walk(func(n, _ *PU) bool {
		if n.Class == c {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Workers returns all Worker units.
func (pl *Platform) Workers() []*PU { return pl.PUsByClass(Worker) }

// Group returns the units carrying the given LogicGroupAttribute, in
// document order.
func (pl *Platform) Group(name string) []*PU {
	var out []*PU
	pl.Walk(func(n, _ *PU) bool {
		if n.InGroup(name) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Groups returns the sorted set of group names used anywhere in the
// platform.
func (pl *Platform) Groups() []string {
	seen := map[string]bool{}
	pl.Walk(func(n, _ *PU) bool {
		for _, g := range n.Groups {
			seen[g] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Interconnects returns every interconnect declared anywhere in the
// hierarchy, in document order.
func (pl *Platform) Interconnects() []Interconnect {
	var out []Interconnect
	pl.Walk(func(n, _ *PU) bool {
		out = append(out, n.Links...)
		return true
	})
	return out
}

// LinkBetween returns the first interconnect joining PUs a and b (in either
// direction for duplex links) and reports whether one exists.
func (pl *Platform) LinkBetween(a, b string) (Interconnect, bool) {
	for _, ic := range pl.Interconnects() {
		if ic.Connects(a, b) {
			return ic, true
		}
	}
	return Interconnect{}, false
}

// Route returns a sequence of interconnects forming a shortest path (by hop
// count) from PU `from` to PU `to`, or an error when no path exists. The
// control hierarchy itself does not imply connectivity: only declared
// interconnects are used, which reflects the paper's requirement that
// data-transfer paths be derivable from explicit Interconnect entities.
func (pl *Platform) Route(from, to string) ([]Interconnect, error) {
	if from == to {
		return nil, nil
	}
	if pl.FindPU(from) == nil {
		return nil, fmt.Errorf("core: route: unknown PU %q", from)
	}
	if pl.FindPU(to) == nil {
		return nil, fmt.Errorf("core: route: unknown PU %q", to)
	}
	links := pl.Interconnects()
	type hop struct {
		prev string
		link Interconnect
	}
	visited := map[string]hop{from: {}}
	frontier := []string{from}
	for len(frontier) > 0 {
		var next []string
		for _, cur := range frontier {
			for _, ic := range links {
				var dst string
				switch {
				case ic.From == cur:
					dst = ic.To
				case ic.Duplex && ic.To == cur:
					dst = ic.From
				default:
					continue
				}
				if _, seen := visited[dst]; seen {
					continue
				}
				visited[dst] = hop{prev: cur, link: ic}
				if dst == to {
					var path []Interconnect
					for at := to; at != from; {
						h := visited[at]
						path = append([]Interconnect{h.link}, path...)
						at = h.prev
					}
					return path, nil
				}
				next = append(next, dst)
			}
		}
		frontier = next
	}
	return nil, fmt.Errorf("core: no interconnect route from %q to %q", from, to)
}

// TotalUnits returns the number of physical units the platform stands for,
// i.e. the sum of effective quantities over all PUs.
func (pl *Platform) TotalUnits() int {
	n := 0
	pl.Walk(func(pu, _ *PU) bool {
		n += pu.EffectiveQuantity()
		return true
	})
	return n
}

// Expand returns a copy of the platform in which every PU with Quantity > 1
// is replaced by Quantity identical PUs with ids "<id>.<k>" (k starting at
// 0). Declared interconnects that reference an expanded id are duplicated for
// each instance. Expansion gives runtimes and simulators individual unit
// identities while descriptors stay compact.
func (pl *Platform) Expand() *Platform {
	out := &Platform{Name: pl.Name, SchemaVersion: pl.SchemaVersion}
	rename := map[string][]string{} // original id -> instance ids
	// Children of a multi-instance PU describe shared physical devices (8
	// cores controlling 2 GPUs means 2 GPUs total), so the subtree is
	// expanded once and attached to the first instance, which acts as the
	// canonical controller.
	var expand func(p *PU) []*PU
	expand = func(p *PU) []*PU {
		q := p.EffectiveQuantity()
		units := make([]*PU, 0, q)
		for k := 0; k < q; k++ {
			cp := p.Clone()
			cp.Quantity = 1
			cp.Children = nil
			cp.Links = nil
			if q > 1 {
				cp.ID = fmt.Sprintf("%s.%d", p.ID, k)
			}
			rename[p.ID] = append(rename[p.ID], cp.ID)
			if k == 0 {
				for _, c := range p.Children {
					cp.Children = append(cp.Children, expand(c)...)
				}
			}
			units = append(units, cp)
		}
		return units
	}
	for _, m := range pl.Masters {
		out.Masters = append(out.Masters, expand(m)...)
	}
	// Re-attach interconnects, duplicating per instance pair.
	ids := func(id string) []string {
		if r, ok := rename[id]; ok {
			return r
		}
		return []string{id}
	}
	for _, ic := range pl.Interconnects() {
		seq := 0
		for _, f := range ids(ic.From) {
			for _, t := range ids(ic.To) {
				dup := ic
				dup.Descriptor = ic.Descriptor.Clone()
				dup.From, dup.To = f, t
				if ic.ID != "" && (len(ids(ic.From)) > 1 || len(ids(ic.To)) > 1) {
					dup.ID = fmt.Sprintf("%s.%d", ic.ID, seq)
				}
				seq++
				if host := out.FindPU(f); host != nil {
					host.Links = append(host.Links, dup)
				} else if host := out.FindPU(t); host != nil {
					host.Links = append(host.Links, dup)
				}
			}
		}
	}
	return out
}

// Clone returns a deep copy of the platform.
func (pl *Platform) Clone() *Platform {
	out := &Platform{Name: pl.Name, SchemaVersion: pl.SchemaVersion}
	for _, m := range pl.Masters {
		out.Masters = append(out.Masters, m.Clone())
	}
	return out
}

// Summary renders an indented tree of the platform for logs and CLIs.
func (pl *Platform) Summary() string {
	var b strings.Builder
	if pl.Name != "" {
		fmt.Fprintf(&b, "Platform %s\n", pl.Name)
	}
	var rec func(p *PU, depth int)
	rec = func(p *PU, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), p)
		if len(p.Groups) > 0 {
			fmt.Fprintf(&b, " groups=%v", p.Groups)
		}
		b.WriteString("\n")
		for _, ic := range p.Links {
			fmt.Fprintf(&b, "%s  link %s %s->%s\n", strings.Repeat("  ", depth), ic.Type, ic.From, ic.To)
		}
		for _, c := range p.Children {
			rec(c, depth+1)
		}
	}
	for _, m := range pl.Masters {
		rec(m, 0)
	}
	return b.String()
}
