package core

import (
	"strings"
	"testing"
)

// paperPlatform builds the platform of the paper's Listing 1: one x86 Master
// controlling one gpu Worker over an rDMA interconnect.
func paperPlatform(t testing.TB) *Platform {
	t.Helper()
	pl, err := NewBuilder("gpgpu-node").
		Master("0", Arch("x86")).
		Worker("1", Arch("gpu")).
		Link(ICTypeRDMA, "0", "1").
		Build()
	if err != nil {
		t.Fatalf("build paper platform: %v", err)
	}
	return pl
}

// xeon2gpu builds the evaluation platform of Section IV-D: dual-socket
// quad-core Xeon X5550 with two Nvidia GPUs.
func xeon2gpu(t testing.TB) *Platform {
	t.Helper()
	pl, err := NewBuilder("xeon-2gpu").
		Master("cpu", Arch("x86"), Qty(8), WithProp(PropDeviceName, "Xeon X5550"), InGroups("cpuset")).
		Worker("gpu0", Arch("gpu"), WithProp(PropDeviceName, "GeForce GTX 480"), InGroups("gpuset")).
		Worker("gpu1", Arch("gpu"), WithProp(PropDeviceName, "GeForce GTX 285"), InGroups("gpuset")).
		Link(ICTypePCIe, "cpu", "gpu0", Bandwidth(5.0), Latency(10)).
		Link(ICTypePCIe, "cpu", "gpu1", Bandwidth(5.0), Latency(10)).
		Build()
	if err != nil {
		t.Fatalf("build xeon2gpu: %v", err)
	}
	return pl
}

func TestWalkOrderAndFind(t *testing.T) {
	pl := xeon2gpu(t)
	var order []string
	pl.Walk(func(n, _ *PU) bool {
		order = append(order, n.ID)
		return true
	})
	want := []string{"cpu", "gpu0", "gpu1"}
	if len(order) != len(want) {
		t.Fatalf("walk visited %v; want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk visited %v; want %v", order, want)
		}
	}
	if pl.FindPU("gpu1") == nil {
		t.Fatal("FindPU(gpu1) = nil")
	}
	if pl.FindPU("nope") != nil {
		t.Fatal("FindPU(nope) should be nil")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	pl := xeon2gpu(t)
	n := 0
	pl.Walk(func(_, _ *PU) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("walk visited %d nodes after stop; want 1", n)
	}
}

func TestControllerRelationship(t *testing.T) {
	pl := paperPlatform(t)
	c := pl.Controller("1")
	if c == nil || c.ID != "0" {
		t.Fatalf("Controller(1) = %v; want master 0", c)
	}
	if pl.Controller("0") != nil {
		t.Fatal("Controller of a Master must be nil")
	}
	if pl.Controller("missing") != nil {
		t.Fatal("Controller of unknown id must be nil")
	}
}

func TestClassAndGroupQueries(t *testing.T) {
	pl := xeon2gpu(t)
	if got := len(pl.Workers()); got != 2 {
		t.Fatalf("Workers() = %d; want 2", got)
	}
	if got := len(pl.PUsByClass(Master)); got != 1 {
		t.Fatalf("Masters = %d; want 1", got)
	}
	grp := pl.Group("gpuset")
	if len(grp) != 2 || grp[0].ID != "gpu0" || grp[1].ID != "gpu1" {
		t.Fatalf("Group(gpuset) = %v", grp)
	}
	groups := pl.Groups()
	if len(groups) != 2 || groups[0] != "cpuset" || groups[1] != "gpuset" {
		t.Fatalf("Groups() = %v", groups)
	}
	if len(pl.Group("absent")) != 0 {
		t.Fatal("Group(absent) should be empty")
	}
}

func TestLinkBetweenAndUnits(t *testing.T) {
	pl := xeon2gpu(t)
	ic, ok := pl.LinkBetween("cpu", "gpu0")
	if !ok || ic.Type != ICTypePCIe {
		t.Fatalf("LinkBetween(cpu,gpu0) = %v, %v", ic, ok)
	}
	// Duplex links match in both directions.
	if _, ok := pl.LinkBetween("gpu0", "cpu"); !ok {
		t.Fatal("duplex link should match reversed")
	}
	if _, ok := pl.LinkBetween("gpu0", "gpu1"); ok {
		t.Fatal("no declared link gpu0-gpu1")
	}
	if n := pl.TotalUnits(); n != 10 {
		t.Fatalf("TotalUnits = %d; want 10 (8 cores + 2 gpus)", n)
	}
	bw, ok := ic.BandwidthBytesPerSec()
	if !ok || bw != 5.0*(1<<30) {
		t.Fatalf("bandwidth = %g, %v", bw, ok)
	}
	lat, ok := ic.LatencySeconds()
	if !ok || lat < 9.99e-6 || lat > 10.01e-6 {
		t.Fatalf("latency = %g, %v", lat, ok)
	}
}

func TestRoute(t *testing.T) {
	// cpu -QPI- cpu2, cpu -PCIe- gpu0: route gpu0 -> cpu2 must traverse both.
	pl, err := NewBuilder("routes").
		Master("cpu", Arch("x86")).
		Worker("gpu0", Arch("gpu")).
		Link(ICTypePCIe, "cpu", "gpu0").
		Master("cpu2", Arch("x86")).
		Link(ICTypeQPI, "cpu2", "cpu").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	path, err := pl.Route("gpu0", "cpu2")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(path) != 2 || path[0].Type != ICTypePCIe || path[1].Type != ICTypeQPI {
		t.Fatalf("Route = %v", path)
	}
	if p, err := pl.Route("cpu", "cpu"); err != nil || p != nil {
		t.Fatalf("self route = %v, %v; want nil, nil", p, err)
	}
	if _, err := pl.Route("cpu", "nosuch"); err == nil {
		t.Fatal("route to unknown PU must fail")
	}
}

func TestRouteNoPath(t *testing.T) {
	pl, err := NewBuilder("split").
		Master("a", Arch("x86")).
		Master("b", Arch("x86")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Route("a", "b"); err == nil {
		t.Fatal("route between unconnected PUs must fail")
	}
}

func TestRouteSimplexDirectionality(t *testing.T) {
	pl, err := NewBuilder("oneway").
		Master("a", Arch("x86")).
		Worker("w", Arch("gpu")).
		Link(ICTypeRDMA, "a", "w", Simplex()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Route("a", "w"); err != nil {
		t.Fatalf("forward route should exist: %v", err)
	}
	if _, err := pl.Route("w", "a"); err == nil {
		t.Fatal("reverse route over simplex link must fail")
	}
}

func TestExpandQuantities(t *testing.T) {
	pl := xeon2gpu(t)
	ex := pl.Expand()
	if err := ex.Validate(); err != nil {
		t.Fatalf("expanded platform invalid: %v", err)
	}
	if n := len(ex.Masters); n != 8 {
		t.Fatalf("expanded masters = %d; want 8", n)
	}
	if ex.FindPU("cpu.0") == nil || ex.FindPU("cpu.7") == nil {
		t.Fatal("expanded ids cpu.0..cpu.7 missing")
	}
	// Each expanded master instance carries the gpu workers (control view
	// duplicated per instance): total units unchanged in meaning, ids unique.
	if err := ex.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interconnects must have been re-homed to instance ids.
	found := false
	for _, ic := range ex.Interconnects() {
		if strings.HasPrefix(ic.From, "cpu.") {
			found = true
			if ex.FindPU(ic.From) == nil || ex.FindPU(ic.To) == nil {
				t.Fatalf("dangling expanded interconnect %v", ic)
			}
		}
	}
	if !found {
		t.Fatal("no expanded interconnect references instance ids")
	}
}

func TestExpandQuantityOneIsStable(t *testing.T) {
	pl := paperPlatform(t)
	ex := pl.Expand()
	if ex.FindPU("0") == nil || ex.FindPU("1") == nil {
		t.Fatal("quantity-1 units must keep their ids on Expand")
	}
	if err := ex.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	pl := xeon2gpu(t)
	cp := pl.Clone()
	cp.FindPU("gpu0").Descriptor.SetFixed(PropArchitecture, "changed")
	if pl.FindPU("gpu0").Architecture() != "gpu" {
		t.Fatal("Clone shares descriptor storage with original")
	}
	cp.Masters[0].Children = nil
	if len(pl.Masters[0].Children) != 2 {
		t.Fatal("Clone shares children slice with original")
	}
}

func TestSummaryMentionsEveryPU(t *testing.T) {
	pl := xeon2gpu(t)
	s := pl.Summary()
	for _, id := range []string{"cpu", "gpu0", "gpu1", "PCIe"} {
		if !strings.Contains(s, id) {
			t.Errorf("Summary missing %q:\n%s", id, s)
		}
	}
}

func TestMemoryRegionSize(t *testing.T) {
	pl, err := NewBuilder("mem").
		Master("0", Arch("x86"), WithMemory("ram", 1572864)).
		Worker("1", Arch("gpu")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	mr := pl.FindPU("0").Memory[0]
	sz, ok := mr.SizeBytes()
	if !ok || sz != 1572864*1024 {
		t.Fatalf("SizeBytes = %d, %v", sz, ok)
	}
	var none MemoryRegion
	if _, ok := none.SizeBytes(); ok {
		t.Fatal("SizeBytes without property should report !ok")
	}
}
