package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Property is the extensible key/value unit of all PDL descriptors.
//
// Fixed properties are authoritative statements by the descriptor author;
// unfixed properties are placeholders whose Value may be filled in or
// overridden later by other tools (e.g. a runtime completing a descriptor
// written at program-composition time).
//
// Type carries the namespaced subschema type for polymorphic properties, e.g.
// "ocl:oclDevicePropertyType" for values gathered from an OpenCL runtime. An
// empty Type denotes the base property schema. Unit optionally qualifies
// Value ("kB", "MHz", ...).
type Property struct {
	Name  string
	Value string
	Unit  string
	Fixed bool
	Type  string
}

// String renders the property in a compact human-readable form.
func (p Property) String() string {
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteString("=")
	b.WriteString(p.Value)
	if p.Unit != "" {
		b.WriteString(" ")
		b.WriteString(p.Unit)
	}
	if !p.Fixed {
		b.WriteString(" (unfixed)")
	}
	if p.Type != "" {
		fmt.Fprintf(&b, " [%s]", p.Type)
	}
	return b.String()
}

// Int parses the property value as a decimal integer.
func (p Property) Int() (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(p.Value), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: property %s: %w", p.Name, err)
	}
	return v, nil
}

// Float parses the property value as a float.
func (p Property) Float() (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(p.Value), 64)
	if err != nil {
		return 0, fmt.Errorf("core: property %s: %w", p.Name, err)
	}
	return v, nil
}

// Descriptor is an ordered, extensible collection of properties. It backs
// PUDescriptor, MRDescriptor and ICDescriptor, which differ only in which
// entity they annotate.
type Descriptor struct {
	Properties []Property
}

// Get returns the first property with the given name.
func (d *Descriptor) Get(name string) (Property, bool) {
	for _, p := range d.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

// Value returns the value of the named property, or "" if absent.
func (d *Descriptor) Value(name string) string {
	p, ok := d.Get(name)
	if !ok {
		return ""
	}
	return p.Value
}

// Int returns the named property parsed as int64. ok is false if the
// property is absent or not an integer.
func (d *Descriptor) Int(name string) (v int64, ok bool) {
	p, found := d.Get(name)
	if !found {
		return 0, false
	}
	n, err := p.Int()
	if err != nil {
		return 0, false
	}
	return n, true
}

// Float returns the named property parsed as float64.
func (d *Descriptor) Float(name string) (v float64, ok bool) {
	p, found := d.Get(name)
	if !found {
		return 0, false
	}
	f, err := p.Float()
	if err != nil {
		return 0, false
	}
	return f, true
}

// Set replaces the first property with the same name or appends a new one.
// It returns the descriptor to allow chaining.
func (d *Descriptor) Set(p Property) *Descriptor {
	for i := range d.Properties {
		if d.Properties[i].Name == p.Name {
			d.Properties[i] = p
			return d
		}
	}
	d.Properties = append(d.Properties, p)
	return d
}

// SetFixed sets a fixed base-schema property.
func (d *Descriptor) SetFixed(name, value string) *Descriptor {
	return d.Set(Property{Name: name, Value: value, Fixed: true})
}

// SetUnfixed sets an unfixed base-schema property, i.e. one whose value later
// tools may override.
func (d *Descriptor) SetUnfixed(name, value string) *Descriptor {
	return d.Set(Property{Name: name, Value: value, Fixed: false})
}

// Fill assigns a value to an existing unfixed property. It fails if the
// property is absent or fixed: fixed properties are authoritative and must
// not be silently overwritten by downstream tools.
func (d *Descriptor) Fill(name, value string) error {
	for i := range d.Properties {
		if d.Properties[i].Name != name {
			continue
		}
		if d.Properties[i].Fixed {
			return fmt.Errorf("core: property %s is fixed and cannot be filled", name)
		}
		d.Properties[i].Value = value
		return nil
	}
	return fmt.Errorf("core: no property %s to fill", name)
}

// Delete removes all properties with the given name and reports whether any
// were removed.
func (d *Descriptor) Delete(name string) bool {
	kept := d.Properties[:0]
	removed := false
	for _, p := range d.Properties {
		if p.Name == name {
			removed = true
			continue
		}
		kept = append(kept, p)
	}
	d.Properties = kept
	return removed
}

// Names returns the sorted set of property names present in the descriptor.
func (d *Descriptor) Names() []string {
	seen := make(map[string]bool, len(d.Properties))
	var names []string
	for _, p := range d.Properties {
		if !seen[p.Name] {
			seen[p.Name] = true
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Merge copies every property of src into d, overwriting same-named entries.
// Fixed properties in d are preserved unless the incoming property is also
// fixed (author statements outrank tool completions).
func (d *Descriptor) Merge(src Descriptor) {
	for _, p := range src.Properties {
		if cur, ok := d.Get(p.Name); ok && cur.Fixed && !p.Fixed {
			continue
		}
		d.Set(p)
	}
}

// Clone returns a deep copy of the descriptor.
func (d Descriptor) Clone() Descriptor {
	out := Descriptor{}
	if d.Properties != nil {
		out.Properties = make([]Property, len(d.Properties))
		copy(out.Properties, d.Properties)
	}
	return out
}

// Equal reports whether two descriptors contain the same properties in the
// same order.
func (d Descriptor) Equal(o Descriptor) bool {
	if len(d.Properties) != len(o.Properties) {
		return false
	}
	for i := range d.Properties {
		if d.Properties[i] != o.Properties[i] {
			return false
		}
	}
	return true
}
