package core

import (
	"testing"
	"testing/quick"
)

func TestPropertyIntFloat(t *testing.T) {
	p := Property{Name: "CORES", Value: "8"}
	n, err := p.Int()
	if err != nil || n != 8 {
		t.Fatalf("Int() = %d, %v; want 8, nil", n, err)
	}
	f, err := Property{Name: "F", Value: "2.66"}.Float()
	if err != nil || f != 2.66 {
		t.Fatalf("Float() = %g, %v; want 2.66, nil", f, err)
	}
	if _, err := (Property{Name: "X", Value: "abc"}).Int(); err == nil {
		t.Fatal("Int() on non-numeric value should fail")
	}
	if _, err := (Property{Name: "X", Value: ""}).Float(); err == nil {
		t.Fatal("Float() on empty value should fail")
	}
}

func TestPropertyString(t *testing.T) {
	p := Property{Name: "GLOBAL_MEM_SIZE", Value: "1572864", Unit: "kB", Fixed: false, Type: "ocl:oclDevicePropertyType"}
	s := p.String()
	for _, want := range []string{"GLOBAL_MEM_SIZE=1572864", "kB", "(unfixed)", "[ocl:oclDevicePropertyType]"} {
		if !contains(s, want) {
			t.Errorf("String() = %q; missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDescriptorGetSetDelete(t *testing.T) {
	var d Descriptor
	if _, ok := d.Get("ARCHITECTURE"); ok {
		t.Fatal("Get on empty descriptor should miss")
	}
	d.SetFixed("ARCHITECTURE", "x86")
	d.SetFixed("CORES", "4")
	if v := d.Value("ARCHITECTURE"); v != "x86" {
		t.Fatalf("Value = %q; want x86", v)
	}
	d.SetFixed("ARCHITECTURE", "gpu") // overwrite, no duplicate
	if len(d.Properties) != 2 {
		t.Fatalf("Set should replace; have %d properties", len(d.Properties))
	}
	if n, ok := d.Int("CORES"); !ok || n != 4 {
		t.Fatalf("Int(CORES) = %d, %v", n, ok)
	}
	if _, ok := d.Int("ARCHITECTURE"); ok {
		t.Fatal("Int on non-numeric property should report !ok")
	}
	if !d.Delete("CORES") {
		t.Fatal("Delete existing should report true")
	}
	if d.Delete("CORES") {
		t.Fatal("Delete absent should report false")
	}
}

func TestDescriptorFill(t *testing.T) {
	var d Descriptor
	d.SetUnfixed("DEVICE_NAME", "")
	d.SetFixed("ARCHITECTURE", "gpu")
	if err := d.Fill("DEVICE_NAME", "GeForce GTX 480"); err != nil {
		t.Fatalf("Fill unfixed: %v", err)
	}
	if v := d.Value("DEVICE_NAME"); v != "GeForce GTX 480" {
		t.Fatalf("after Fill, value = %q", v)
	}
	if err := d.Fill("ARCHITECTURE", "x86"); err == nil {
		t.Fatal("Fill on fixed property must fail")
	}
	if err := d.Fill("NO_SUCH", "v"); err == nil {
		t.Fatal("Fill on absent property must fail")
	}
}

func TestDescriptorMergeFixedWins(t *testing.T) {
	var d Descriptor
	d.SetFixed("ARCHITECTURE", "x86")
	d.SetUnfixed("CLOCK_FREQUENCY", "")
	var src Descriptor
	src.SetUnfixed("ARCHITECTURE", "gpu") // must not clobber fixed
	src.SetFixed("CLOCK_FREQUENCY", "2660")
	src.SetFixed("CORES", "8")
	d.Merge(src)
	if v := d.Value("ARCHITECTURE"); v != "x86" {
		t.Errorf("fixed property overwritten by unfixed merge: %q", v)
	}
	if v := d.Value("CLOCK_FREQUENCY"); v != "2660" {
		t.Errorf("unfixed property not completed by merge: %q", v)
	}
	if v := d.Value("CORES"); v != "8" {
		t.Errorf("new property not merged: %q", v)
	}
}

func TestDescriptorNamesSortedUnique(t *testing.T) {
	var d Descriptor
	d.Properties = []Property{{Name: "b"}, {Name: "a"}, {Name: "b"}}
	names := d.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestDescriptorCloneIsDeep(t *testing.T) {
	var d Descriptor
	d.SetFixed("A", "1")
	cp := d.Clone()
	cp.SetFixed("A", "2")
	if d.Value("A") != "1" {
		t.Fatal("Clone shares backing storage with original")
	}
	if !d.Equal(d.Clone()) {
		t.Fatal("Clone should be Equal to original")
	}
}

// Property-based: Set then Get round-trips for arbitrary name/value pairs.
func TestQuickDescriptorSetGet(t *testing.T) {
	f := func(name, value string, fixed bool) bool {
		if name == "" {
			return true // empty names are rejected by schema validation, not here
		}
		var d Descriptor
		d.Set(Property{Name: name, Value: value, Fixed: fixed})
		got, ok := d.Get(name)
		return ok && got.Value == value && got.Fixed == fixed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Merge is idempotent.
func TestQuickDescriptorMergeIdempotent(t *testing.T) {
	f := func(names []string) bool {
		var d, src Descriptor
		for i, n := range names {
			if n == "" {
				continue
			}
			src.Set(Property{Name: n, Value: "v", Fixed: i%2 == 0})
		}
		d.Merge(src)
		once := d.Clone()
		d.Merge(src)
		return d.Equal(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
