package core

import (
	"fmt"
	"strings"
)

// MemoryRegion describes a directly addressable memory space attached to a
// processing unit. Qualitative properties (size, affinity, relative speed)
// live in the MRDescriptor.
type MemoryRegion struct {
	ID         string
	Name       string
	Descriptor Descriptor // the PDL MRDescriptor
}

// SizeBytes returns the region size derived from its GLOBAL_MEM_SIZE
// property, honouring the property unit (bytes when no unit is given).
func (m *MemoryRegion) SizeBytes() (uint64, bool) {
	p, ok := m.Descriptor.Get(PropMemSize)
	if !ok {
		return 0, false
	}
	n, err := p.Int()
	if err != nil || n < 0 {
		return 0, false
	}
	mult := uint64(1)
	switch strings.ToLower(p.Unit) {
	case "", "b":
		mult = 1
	case "kb":
		mult = 1 << 10
	case "mb":
		mult = 1 << 20
	case "gb":
		mult = 1 << 30
	default:
		return 0, false
	}
	return uint64(n) * mult, true
}

// Interconnect describes a communication facility between two processing
// units. From and To reference PU ids; the abstract model only defines
// connectivity while concrete instances carry bandwidth, latency and scheme
// information in the ICDescriptor.
type Interconnect struct {
	ID         string
	Type       string     // e.g. "rDMA", "PCIe", "QPI"
	From       string     // PU id of one endpoint
	To         string     // PU id of the other endpoint
	Scheme     string     // free-form communication scheme tag
	Duplex     bool       // true if usable in both directions
	Descriptor Descriptor // the PDL ICDescriptor
}

// BandwidthBytesPerSec returns the BANDWIDTH property converted to bytes per
// second (property unit GB/s, MB/s or B/s; unitless means B/s).
func (ic *Interconnect) BandwidthBytesPerSec() (float64, bool) {
	p, ok := ic.Descriptor.Get("BANDWIDTH")
	if !ok {
		return 0, false
	}
	v, err := p.Float()
	if err != nil {
		return 0, false
	}
	switch strings.ToLower(p.Unit) {
	case "", "b/s":
		return v, true
	case "kb/s":
		return v * (1 << 10), true
	case "mb/s":
		return v * (1 << 20), true
	case "gb/s":
		return v * (1 << 30), true
	}
	return 0, false
}

// LatencySeconds returns the LATENCY property converted to seconds (property
// unit us, ms or s; unitless means seconds).
func (ic *Interconnect) LatencySeconds() (float64, bool) {
	p, ok := ic.Descriptor.Get("LATENCY")
	if !ok {
		return 0, false
	}
	v, err := p.Float()
	if err != nil {
		return 0, false
	}
	switch strings.ToLower(p.Unit) {
	case "", "s":
		return v, true
	case "ms":
		return v * 1e-3, true
	case "us", "µs":
		return v * 1e-6, true
	case "ns":
		return v * 1e-9, true
	}
	return 0, false
}

// Connects reports whether the interconnect joins PUs a and b (in either
// direction for duplex links, from→to only otherwise).
func (ic *Interconnect) Connects(a, b string) bool {
	if ic.From == a && ic.To == b {
		return true
	}
	return ic.Duplex && ic.From == b && ic.To == a
}

// PU is one processing-unit node in the control hierarchy. Children are the
// units this PU controls, i.e. may delegate tasks to. Quantity expresses
// "this node stands for N identical sibling units" (e.g. 8 CPU cores) without
// repeating the subtree N times; Instances expands it when individual
// identities matter.
type PU struct {
	ID         string
	Class      Class
	Name       string
	Quantity   int        // 0 is treated as 1
	Descriptor Descriptor // the PDL PUDescriptor
	Memory     []MemoryRegion
	Links      []Interconnect // interconnects declared at this node
	Groups     []string       // LogicGroupAttribute values this PU belongs to
	Children   []*PU
}

// EffectiveQuantity returns Quantity with the zero value normalised to 1.
func (p *PU) EffectiveQuantity() int {
	if p.Quantity <= 0 {
		return 1
	}
	return p.Quantity
}

// Architecture returns the unit's ARCHITECTURE property value ("" if unset).
func (p *PU) Architecture() string {
	return p.Descriptor.Value(PropArchitecture)
}

// InGroup reports whether the PU carries the given LogicGroupAttribute.
func (p *PU) InGroup(group string) bool {
	for _, g := range p.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// AddChild appends a controlled unit and returns the parent for chaining.
func (p *PU) AddChild(c *PU) *PU {
	p.Children = append(p.Children, c)
	return p
}

// Walk visits the PU and all transitively controlled units in depth-first
// pre-order. The visitor receives each unit together with its controller
// (nil for the root of the walk); returning false stops the walk.
func (p *PU) Walk(visit func(pu, controller *PU) bool) {
	var rec func(n, parent *PU) bool
	rec = func(n, parent *PU) bool {
		if !visit(n, parent) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c, n) {
				return false
			}
		}
		return true
	}
	rec(p, nil)
}

// Find returns the unit with the given id within this subtree, or nil.
func (p *PU) Find(id string) *PU {
	var found *PU
	p.Walk(func(n, _ *PU) bool {
		if n.ID == id {
			found = n
			return false
		}
		return true
	})
	return found
}

// Clone returns a deep copy of the subtree rooted at p.
func (p *PU) Clone() *PU {
	if p == nil {
		return nil
	}
	cp := &PU{
		ID:         p.ID,
		Class:      p.Class,
		Name:       p.Name,
		Quantity:   p.Quantity,
		Descriptor: p.Descriptor.Clone(),
	}
	if p.Memory != nil {
		cp.Memory = make([]MemoryRegion, len(p.Memory))
		for i, m := range p.Memory {
			cp.Memory[i] = MemoryRegion{ID: m.ID, Name: m.Name, Descriptor: m.Descriptor.Clone()}
		}
	}
	if p.Links != nil {
		cp.Links = make([]Interconnect, len(p.Links))
		for i, ic := range p.Links {
			cp.Links[i] = ic
			cp.Links[i].Descriptor = ic.Descriptor.Clone()
		}
	}
	if p.Groups != nil {
		cp.Groups = append([]string(nil), p.Groups...)
	}
	for _, c := range p.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

// String renders a one-line summary of the unit.
func (p *PU) String() string {
	arch := p.Architecture()
	if arch == "" {
		arch = "?"
	}
	return fmt.Sprintf("%s(id=%s arch=%s q=%d)", p.Class, p.ID, arch, p.EffectiveQuantity())
}
