package core

import (
	"errors"
	"fmt"
	"strings"
)

// ValidationError aggregates every machine-model violation found in a
// platform so callers can report all problems at once.
type ValidationError struct {
	Problems []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return "core: invalid platform: " + e.Problems[0]
	}
	return fmt.Sprintf("core: invalid platform: %d problems: %s",
		len(e.Problems), strings.Join(e.Problems, "; "))
}

// Validate checks the structural invariants of the hierarchical machine
// model:
//
//   - the platform has at least one Master;
//   - Master units appear only at the top level (they may coexist, but may
//     not be controlled by any other unit);
//   - Worker units are leaves (they control nothing);
//   - Hybrid units are inner nodes: they are controlled by a Master or
//     Hybrid and control at least one unit;
//   - PU ids are unique and non-empty; quantities are non-negative;
//   - interconnect endpoints reference existing PU ids and differ;
//   - memory-region ids are unique within the platform.
//
// A nil return means the platform is a valid machine-model instance.
func (pl *Platform) Validate() error {
	var problems []string
	add := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if len(pl.Masters) == 0 {
		add("platform has no Master PU")
	}
	for _, m := range pl.Masters {
		if m == nil {
			add("nil Master entry")
			continue
		}
		if m.Class != Master {
			add("top-level PU %q has class %s, want Master", m.ID, m.Class)
		}
	}

	seenPU := map[string]bool{}
	seenMR := map[string]bool{}
	pl.Walk(func(n, parent *PU) bool {
		if n.ID == "" {
			add("%s has empty id", n.Class)
		} else if seenPU[n.ID] {
			add("duplicate PU id %q", n.ID)
		}
		seenPU[n.ID] = true

		if n.Quantity < 0 {
			add("PU %q has negative quantity %d", n.ID, n.Quantity)
		}

		switch n.Class {
		case Master:
			if parent != nil {
				add("Master %q is controlled by %q; Masters may only appear at the top level", n.ID, parent.ID)
			}
		case Worker:
			if parent == nil {
				add("Worker %q appears at the top level; Workers must be controlled by a Master or Hybrid", n.ID)
			}
			if len(n.Children) > 0 {
				add("Worker %q controls %d unit(s); Workers must be leaves", n.ID, len(n.Children))
			}
		case Hybrid:
			if parent == nil {
				add("Hybrid %q appears at the top level; Hybrids must be controlled by a Master or Hybrid", n.ID)
			} else if parent.Class == Worker {
				add("Hybrid %q is controlled by Worker %q", n.ID, parent.ID)
			}
			if len(n.Children) == 0 {
				add("Hybrid %q controls nothing; model a leaf as a Worker instead", n.ID)
			}
		default:
			add("PU %q has unknown class %d", n.ID, int(n.Class))
		}

		for _, mr := range n.Memory {
			if mr.ID == "" {
				add("memory region on PU %q has empty id", n.ID)
			} else if seenMR[mr.ID] {
				add("duplicate memory region id %q", mr.ID)
			}
			seenMR[mr.ID] = true
		}
		return true
	})

	for _, ic := range pl.Interconnects() {
		if ic.From == "" || ic.To == "" {
			add("interconnect %q has empty endpoint(s)", ic.ID)
			continue
		}
		if ic.From == ic.To {
			add("interconnect %q connects PU %q to itself", ic.ID, ic.From)
		}
		if !seenPU[ic.From] {
			add("interconnect %q references unknown PU %q", ic.ID, ic.From)
		}
		if !seenPU[ic.To] {
			add("interconnect %q references unknown PU %q", ic.ID, ic.To)
		}
	}

	if len(problems) > 0 {
		return &ValidationError{Problems: problems}
	}
	return nil
}

// AsValidationError extracts a *ValidationError from err, if present.
func AsValidationError(err error) (*ValidationError, bool) {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve, true
	}
	return nil, false
}
