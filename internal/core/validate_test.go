package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsPaperPlatform(t *testing.T) {
	if err := paperPlatform(t).Validate(); err != nil {
		t.Fatalf("paper platform should be valid: %v", err)
	}
}

func TestValidateRejectsEmptyPlatform(t *testing.T) {
	pl := &Platform{Name: "empty"}
	err := pl.Validate()
	if err == nil {
		t.Fatal("platform without Master must be invalid")
	}
	ve, ok := AsValidationError(err)
	if !ok {
		t.Fatalf("want *ValidationError, got %T", err)
	}
	if len(ve.Problems) != 1 || !strings.Contains(ve.Problems[0], "no Master") {
		t.Fatalf("problems = %v", ve.Problems)
	}
}

func TestValidateMasterNotAtTop(t *testing.T) {
	inner := &PU{ID: "m2", Class: Master}
	pl := &Platform{Masters: []*PU{{ID: "m", Class: Master, Children: []*PU{inner}}}}
	err := pl.Validate()
	if err == nil || !strings.Contains(err.Error(), "Masters may only appear at the top level") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateWorkerMustBeLeaf(t *testing.T) {
	w := &PU{ID: "w", Class: Worker, Children: []*PU{{ID: "x", Class: Worker}}}
	pl := &Platform{Masters: []*PU{{ID: "m", Class: Master, Children: []*PU{w}}}}
	err := pl.Validate()
	if err == nil || !strings.Contains(err.Error(), "must be leaves") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateWorkerAtTopLevel(t *testing.T) {
	pl := &Platform{Masters: []*PU{{ID: "w", Class: Worker}}}
	err := pl.Validate()
	if err == nil {
		t.Fatal("top-level Worker must be invalid")
	}
	// Both the class-of-top-level check and the worker-control check fire.
	ve, _ := AsValidationError(err)
	if len(ve.Problems) < 2 {
		t.Fatalf("want >=2 problems, got %v", ve.Problems)
	}
}

func TestValidateHybridRules(t *testing.T) {
	// Hybrid as inner node with children: valid.
	pl, err := NewBuilder("cell").
		Master("ppe", Arch("ppc")).
		Hybrid("h0", Arch("ppc")).
		Worker("spe0", Arch("spe")).
		Worker("spe1", Arch("spe")).
		End().
		Build()
	if err != nil {
		t.Fatalf("hybrid platform should build: %v", err)
	}
	if pl.FindPU("h0").Class != Hybrid {
		t.Fatal("h0 should be Hybrid")
	}

	// Hybrid with no children: invalid.
	h := &PU{ID: "h", Class: Hybrid}
	bad := &Platform{Masters: []*PU{{ID: "m", Class: Master, Children: []*PU{h}}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "controls nothing") {
		t.Fatalf("err = %v", err)
	}

	// Hybrid controlled by a Worker: invalid (plus worker-leaf violation).
	w := &PU{ID: "w", Class: Worker, Children: []*PU{{ID: "h2", Class: Hybrid, Children: []*PU{{ID: "w2", Class: Worker}}}}}
	bad2 := &Platform{Masters: []*PU{{ID: "m", Class: Master, Children: []*PU{w}}}}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "controlled by Worker") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDuplicateAndEmptyIDs(t *testing.T) {
	pl := &Platform{Masters: []*PU{
		{ID: "m", Class: Master, Children: []*PU{{ID: "m", Class: Worker}}},
	}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate PU id") {
		t.Fatalf("err = %v", err)
	}
	pl2 := &Platform{Masters: []*PU{{ID: "", Class: Master}}}
	if err := pl2.Validate(); err == nil || !strings.Contains(err.Error(), "empty id") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateInterconnectEndpoints(t *testing.T) {
	m := &PU{ID: "m", Class: Master, Children: []*PU{{ID: "w", Class: Worker}}}
	m.Links = []Interconnect{{ID: "ic", Type: ICTypePCIe, From: "m", To: "ghost"}}
	pl := &Platform{Masters: []*PU{m}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "unknown PU") {
		t.Fatalf("err = %v", err)
	}

	m.Links = []Interconnect{{ID: "ic", Type: ICTypePCIe, From: "m", To: "m"}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "to itself") {
		t.Fatalf("err = %v", err)
	}

	m.Links = []Interconnect{{ID: "ic", Type: ICTypePCIe}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "empty endpoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateNegativeQuantity(t *testing.T) {
	pl := &Platform{Masters: []*PU{{ID: "m", Class: Master, Quantity: -2}}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "negative quantity") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDuplicateMemoryRegion(t *testing.T) {
	pl := &Platform{Masters: []*PU{{
		ID: "m", Class: Master,
		Memory: []MemoryRegion{{ID: "r"}, {ID: "r"}},
	}}}
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate memory region") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Worker("w").Build(); err == nil {
		t.Fatal("Worker with no scope must fail")
	}
	if _, err := NewBuilder("x").Hybrid("h").Build(); err == nil {
		t.Fatal("Hybrid with no scope must fail")
	}
	if _, err := NewBuilder("x").Master("m").End().Build(); err == nil {
		t.Fatal("End with no Hybrid scope must fail")
	}
	if _, err := NewBuilder("x").Link("PCIe", "a", "b").Build(); err == nil {
		t.Fatal("Link before any Master must fail")
	}
	// Errors are sticky: later calls don't panic or mask the first error.
	b := NewBuilder("x").Worker("w")
	b.Master("m").Worker("w2")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no open Master") {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestBuilderAutoIDs(t *testing.T) {
	pl, err := NewBuilder("auto").
		Master("", Arch("x86")).
		Worker("", Arch("gpu")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, pu := range pl.AllPUs() {
		if pu.ID == "" {
			t.Fatal("auto id not assigned")
		}
		ids[pu.ID] = true
	}
	if len(ids) != 2 {
		t.Fatalf("ids not unique: %v", ids)
	}
}

// Property-based: any platform built from a random shape descriptor via the
// Builder validates, and Clone/Expand preserve validity.
func TestQuickGeneratedPlatformsValidate(t *testing.T) {
	f := func(workers uint8, hybrids uint8, qty uint8) bool {
		nw := int(workers%5) + 1
		nh := int(hybrids % 3)
		b := NewBuilder("gen").Master("m", Arch("x86"), Qty(int(qty%4)+1))
		for h := 0; h < nh; h++ {
			b.Hybrid("", Arch("ppc"))
			b.Worker("", Arch("spe"))
			b.End()
		}
		for w := 0; w < nw; w++ {
			b.Worker("", Arch("gpu"))
		}
		pl, err := b.Build()
		if err != nil {
			return false
		}
		if pl.Clone().Validate() != nil {
			return false
		}
		return pl.Expand().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
