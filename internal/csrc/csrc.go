// Package csrc is the Cascabel source frontend: a scanner and lightweight
// parser for the annotated C subset the translator operates on. It plays the
// role the ROSE framework plays in the paper's prototype — finding
// `#pragma cascabel` annotations, attaching them to the function definition
// or call statement that follows, and re-emitting source text.
//
// The parser deliberately does not implement full C: it understands exactly
// what the translation pipeline needs — function definitions (return type,
// name, parameter declarations, balanced body) and call statements — and
// passes every other line through verbatim. Brace, string, char and comment
// handling is exact, so bodies containing braces in literals survive.
package csrc

import (
	"fmt"
	"strings"

	"repro/internal/pragma"
)

// Item is one element of a parsed program.
type Item interface {
	// Raw returns the original source text of the item.
	Raw() string
}

// RawCode is a run of untranslated source lines.
type RawCode struct {
	Text string
}

// Raw implements Item.
func (r *RawCode) Raw() string { return r.Text }

// CParam is one declared parameter of a C function.
type CParam struct {
	Type string // e.g. "double *"
	Name string // e.g. "A"
}

// Function is a parsed C function definition.
type Function struct {
	RetType string
	Name    string
	Params  []CParam
	Body    string // text between the outermost braces, exclusive
	Text    string // full original definition text
}

// Raw implements Item.
func (f *Function) Raw() string { return f.Text }

// Call is a parsed call statement.
type Call struct {
	Name string
	Args []string
	Text string
}

// Raw implements Item.
func (c *Call) Raw() string { return c.Text }

// TaskDef is a task annotation attached to the function definition that
// follows it.
type TaskDef struct {
	Annotation *pragma.TaskAnnotation
	Func       *Function
	Line       int    // 1-based line of the pragma
	Text       string // pragma + function text
}

// Raw implements Item.
func (t *TaskDef) Raw() string { return t.Text }

// ExecuteStmt is an execute annotation attached to the call statement that
// follows it.
type ExecuteStmt struct {
	Annotation *pragma.ExecuteAnnotation
	Call       *Call
	Line       int
	Text       string
}

// Raw implements Item.
func (e *ExecuteStmt) Raw() string { return e.Text }

// Program is a parsed annotated source file.
type Program struct {
	Items []Item
}

// TaskDefs returns the task definitions in source order.
func (p *Program) TaskDefs() []*TaskDef {
	var out []*TaskDef
	for _, it := range p.Items {
		if td, ok := it.(*TaskDef); ok {
			out = append(out, td)
		}
	}
	return out
}

// ExecuteStmts returns the annotated call sites in source order.
func (p *Program) ExecuteStmts() []*ExecuteStmt {
	var out []*ExecuteStmt
	for _, it := range p.Items {
		if es, ok := it.(*ExecuteStmt); ok {
			out = append(out, es)
		}
	}
	return out
}

// Print reconstructs the program source verbatim.
func (p *Program) Print() string {
	var b strings.Builder
	for _, it := range p.Items {
		b.WriteString(it.Raw())
	}
	return b.String()
}

// ParseError reports a frontend failure with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("csrc: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
