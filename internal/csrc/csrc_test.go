package csrc

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/taskrt"
)

// paperProgram is the paper's Listings 3/4 assembled into one compilable
// unit: the vecadd task definition plus its annotated call site.
const paperProgram = `#include <stdio.h>

// Task definition
#pragma cascabel task : x86
    : Ivecadd
    : vecadd01
    : ( A: readwrite,
        B : read )
void vector_add(double *A, double *B) {
    for (int i = 0; i < N; i++) { A[i] += B[i]; }
};

int main() {
    double A[N], B[N];
    // Task execution
    #pragma cascabel execute Ivecadd
        : executionset01
        (A:BLOCK:N,
         B:BLOCK:N)
    vector_add( A, B );
    return 0;
}
`

func TestParsePaperProgram(t *testing.T) {
	prog, err := ParseProgram(paperProgram)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	tasks := prog.TaskDefs()
	if len(tasks) != 1 {
		t.Fatalf("task defs = %d", len(tasks))
	}
	td := tasks[0]
	if td.Annotation.Interface != "Ivecadd" || td.Annotation.Name != "vecadd01" {
		t.Fatalf("annotation = %+v", td.Annotation)
	}
	if td.Func.Name != "vector_add" || td.Func.RetType != "void" {
		t.Fatalf("func = %+v", td.Func)
	}
	if len(td.Func.Params) != 2 {
		t.Fatalf("params = %+v", td.Func.Params)
	}
	if td.Func.Params[0].Name != "A" || td.Func.Params[0].Type != "double *" {
		t.Fatalf("param 0 = %+v", td.Func.Params[0])
	}
	if !strings.Contains(td.Func.Body, "A[i] += B[i]") {
		t.Fatalf("body = %q", td.Func.Body)
	}

	execs := prog.ExecuteStmts()
	if len(execs) != 1 {
		t.Fatalf("execute stmts = %d", len(execs))
	}
	es := execs[0]
	if es.Annotation.Interface != "Ivecadd" || es.Annotation.Group != "executionset01" {
		t.Fatalf("exec annotation = %+v", es.Annotation)
	}
	if es.Annotation.Dists[0].Dist != partition.Block {
		t.Fatalf("dist = %+v", es.Annotation.Dists)
	}
	if es.Call.Name != "vector_add" || len(es.Call.Args) != 2 || es.Call.Args[0] != "A" {
		t.Fatalf("call = %+v", es.Call)
	}
	// Annotation param modes flow through for the runtime.
	if td.Annotation.Params[0].Mode != taskrt.ReadWrite {
		t.Fatal("mode lost")
	}
}

func TestPrintIsLossless(t *testing.T) {
	prog, err := ParseProgram(paperProgram)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.Print()
	// Everything except the trailing `;` after the function brace (which
	// lands in a raw segment) must be reproduced; compare modulo whitespace.
	norm := func(s string) string {
		return strings.Join(strings.Fields(s), "")
	}
	if norm(printed) != norm(paperProgram) {
		t.Fatalf("Print() not lossless.\n--- got ---\n%s\n--- want ---\n%s", printed, paperProgram)
	}
}

func TestBracesInStringsAndComments(t *testing.T) {
	src := `#pragma cascabel task : x86 : I : n : (A:read)
void f(double *A) {
    const char *s = "}{"; // } comment brace
    /* } */
    char c = '}';
}
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	td := prog.TaskDefs()[0]
	if !strings.Contains(td.Func.Body, `"}{"`) || !strings.Contains(td.Func.Body, "'}'") {
		t.Fatalf("body = %q", td.Func.Body)
	}
}

func TestCodeAfterClosingBraceIsPreserved(t *testing.T) {
	src := `#pragma cascabel task : x86 : I : n : (A:read)
void f(double *A) { A[0] = 1; } int tail = 7;
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Print(), "int tail = 7;") {
		t.Fatalf("tail lost:\n%s", prog.Print())
	}
}

func TestMultipleTasksAndCalls(t *testing.T) {
	src := `#pragma cascabel task : x86 : Ia : a1 : (X:readwrite)
void fa(double *X) { }
#pragma cascabel task : opencl, x86 : Ib : b1 : (Y:read, Z:write)
void fb(double *Y, double *Z) { }
int main() {
#pragma cascabel execute Ia : g1 (X:BLOCK)
fa(X);
#pragma cascabel execute Ib (Y:CYCLIC, Z:BLOCK:M)
fb(Y, Z);
}
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.TaskDefs()) != 2 || len(prog.ExecuteStmts()) != 2 {
		t.Fatalf("items = %d tasks, %d execs", len(prog.TaskDefs()), len(prog.ExecuteStmts()))
	}
	es := prog.ExecuteStmts()[1]
	if es.Annotation.Group != "" || len(es.Annotation.Dists) != 2 {
		t.Fatalf("second exec = %+v", es.Annotation)
	}
}

func TestVoidAndEmptyParams(t *testing.T) {
	src := `#pragma cascabel task : x86 : I : n : ()
int f(void) { return 0; }
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.TaskDefs()[0].Func
	if len(fn.Params) != 0 || fn.RetType != "int" {
		t.Fatalf("fn = %+v", fn)
	}
}

func TestPointerStarPlacement(t *testing.T) {
	src := `#pragma cascabel task : x86 : I : n : (A:read)
void g(double* A) { }
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.TaskDefs()[0].Func.Params[0]
	if p.Name != "A" || p.Type != "double*" {
		t.Fatalf("param = %+v", p)
	}
}

func TestCallWithNestedParensArgs(t *testing.T) {
	src := `#pragma cascabel execute I : g
f(a, g(b, c), d);
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	call := prog.ExecuteStmts()[0].Call
	if len(call.Args) != 3 || call.Args[1] != "g(b, c)" {
		t.Fatalf("args = %v", call.Args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"taskNoFunc", "#pragma cascabel task : x86 : I : n : (A:read)\n", "not followed by a function"},
		{"taskDecl", "#pragma cascabel task : x86 : I : n : (A:read)\nvoid f(double *A);\n", "declaration"},
		{"unterminated", "#pragma cascabel task : x86 : I : n : (A:read)\nvoid f(double *A) {\n", "unterminated function"},
		{"execNoCall", "#pragma cascabel execute I : g\n", "not followed by a call"},
		{"execNonCall", "#pragma cascabel execute I : g\nx = 1;\n", "not followed by a call"},
		{"execBadCallee", "#pragma cascabel execute I : g\n2 + f(x);\n", "callee name"},
		{"badPragma", "#pragma cascabel task : x86\nvoid f() {}\n", "needs 4 fields"},
		{"unbalancedPragma", "#pragma cascabel task : x86 : I : n : (A:read\n", "unbalanced parentheses"},
		{"badHeader", "#pragma cascabel task : x86 : I : n : (A:read)\nf(double *A) { }\n", "return type and name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProgram(c.src)
			if err == nil {
				t.Fatalf("want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v; want substring %q", err, c.want)
			}
			var pe *ParseError
			if !asParseError(err, &pe) || pe.Line < 1 {
				t.Fatalf("error should carry a line number: %v", err)
			}
		})
	}
}

func asParseError(err error, out **ParseError) bool {
	if pe, ok := err.(*ParseError); ok {
		*out = pe
		return true
	}
	return false
}

func TestProgramWithoutAnnotations(t *testing.T) {
	src := "int main() { return 0; }\n"
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Items) != 1 {
		t.Fatalf("items = %d", len(prog.Items))
	}
	if prog.Print() != src {
		t.Fatalf("Print() = %q", prog.Print())
	}
}
