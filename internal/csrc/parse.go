package csrc

import (
	"strings"

	"repro/internal/pragma"
)

// scanner walks the source line by line, tracking 1-based line numbers.
type scanner struct {
	lines []string
	pos   int
}

func (s *scanner) eof() bool    { return s.pos >= len(s.lines) }
func (s *scanner) peek() string { return s.lines[s.pos] }
func (s *scanner) next() string { l := s.lines[s.pos]; s.pos++; return l }
func (s *scanner) lineNo() int  { return s.pos + 1 }

// ParseProgram parses annotated source text. Output of Print always ends
// with a newline, even when the input does not.
func ParseProgram(src string) (*Program, error) {
	lines := strings.Split(src, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	sc := &scanner{lines: lines}
	prog := &Program{}
	var raw []string
	flushRaw := func() {
		if len(raw) > 0 {
			prog.Items = append(prog.Items, &RawCode{Text: strings.Join(raw, "\n") + "\n"})
			raw = raw[:0]
		}
	}
	for !sc.eof() {
		if !pragma.IsCascabel(sc.peek()) {
			raw = append(raw, sc.next())
			continue
		}
		flushRaw()
		pragmaLine := sc.lineNo()
		text, err := collectPragma(sc)
		if err != nil {
			return nil, err
		}
		ann, err := pragma.Parse(text)
		if err != nil {
			return nil, errAt(pragmaLine, "%v", err)
		}
		switch ann.Kind {
		case pragma.KindTask:
			fn, fnText, err := parseFunction(sc)
			if err != nil {
				return nil, err
			}
			prog.Items = append(prog.Items, &TaskDef{
				Annotation: ann.Task,
				Func:       fn,
				Line:       pragmaLine,
				Text:       text + "\n" + fnText,
			})
		case pragma.KindExecute:
			call, callText, err := parseCall(sc)
			if err != nil {
				return nil, err
			}
			prog.Items = append(prog.Items, &ExecuteStmt{
				Annotation: ann.Execute,
				Call:       call,
				Line:       pragmaLine,
				Text:       text + "\n" + callText,
			})
		}
	}
	flushRaw()
	return prog, nil
}

// collectPragma gathers a pragma and its continuation lines: lines that keep
// an open parenthesis balance or whose first non-space character is ':' or
// '(' (the layout used throughout the paper's listings).
func collectPragma(sc *scanner) (string, error) {
	first := sc.next()
	parts := []string{first}
	balance := parenBalance(first)
	for !sc.eof() {
		trimmed := strings.TrimSpace(sc.peek())
		if balance > 0 || strings.HasPrefix(trimmed, ":") || strings.HasPrefix(trimmed, "(") {
			l := sc.next()
			parts = append(parts, l)
			balance += parenBalance(l)
			continue
		}
		break
	}
	if balance != 0 {
		return "", errAt(sc.lineNo(), "unbalanced parentheses in cascabel annotation")
	}
	return strings.Join(parts, "\n"), nil
}

func parenBalance(s string) int {
	b := 0
	for _, c := range s {
		switch c {
		case '(':
			b++
		case ')':
			b--
		}
	}
	return b
}

// skipBlank advances over blank lines.
func (s *scanner) skipBlank() {
	for !s.eof() && strings.TrimSpace(s.peek()) == "" {
		s.pos++
	}
}

// gatherUntil consumes lines until stop returns a cut index into the
// accumulated text (or -1 to continue). It returns the text up to the cut;
// any non-blank remainder of the final line is pushed back for subsequent
// parsing so no source text is lost.
func (s *scanner) gatherUntil(stop func(text string) int) (string, bool) {
	var b strings.Builder
	for !s.eof() {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s.next())
		if cut := stop(b.String()); cut >= 0 {
			text := b.String()
			if rest := text[cut:]; strings.TrimSpace(rest) != "" {
				s.lines = append(s.lines[:s.pos], append([]string{rest}, s.lines[s.pos:]...)...)
			}
			return text[:cut], true
		}
	}
	return b.String(), false
}

// codeScan walks text skipping string/char literals and comments, calling
// visit with the index and byte of each code character. visit returns true
// to stop; codeScan then returns that index, else -1.
func codeScan(text string, visit func(i int, c byte) bool) int {
	const (
		code = iota
		lineComment
		blockComment
		strLit
		charLit
	)
	state := code
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch state {
		case lineComment:
			if c == '\n' {
				state = code
			}
		case blockComment:
			if c == '*' && i+1 < len(text) && text[i+1] == '/' {
				state = code
				i++
			}
		case strLit:
			if c == '\\' {
				i++
			} else if c == '"' {
				state = code
			}
		case charLit:
			if c == '\\' {
				i++
			} else if c == '\'' {
				state = code
			}
		case code:
			switch {
			case c == '/' && i+1 < len(text) && text[i+1] == '/':
				state = lineComment
				i++
			case c == '/' && i+1 < len(text) && text[i+1] == '*':
				state = blockComment
				i++
			case c == '"':
				state = strLit
			case c == '\'':
				state = charLit
			default:
				if visit(i, c) {
					return i
				}
			}
		}
	}
	return -1
}

// parseFunction parses `ret name(params) { body }` starting at the current
// line.
func parseFunction(sc *scanner) (*Function, string, error) {
	sc.skipBlank()
	if sc.eof() {
		return nil, "", errAt(sc.lineNo(), "task annotation not followed by a function definition")
	}
	startLine := sc.lineNo()
	// Gather until the body's outermost brace closes (or, for a bodyless
	// declaration, until the terminating semicolon — rejected later).
	text, ok := sc.gatherUntil(func(t string) int {
		depth := 0
		sawBrace := false
		end := codeScan(t, func(_ int, c byte) bool {
			switch c {
			case '{':
				depth++
				sawBrace = true
			case '}':
				depth--
				if sawBrace && depth == 0 {
					return true
				}
			case ';':
				if !sawBrace {
					return true
				}
			}
			return false
		})
		if end < 0 {
			return -1
		}
		return end + 1
	})
	if !ok {
		return nil, "", errAt(startLine, "unterminated function definition")
	}
	fn, err := parseFunctionText(text, startLine)
	if err != nil {
		return nil, "", err
	}
	fn.Text = text + "\n"
	return fn, fn.Text, nil
}

func parseFunctionText(text string, line int) (*Function, error) {
	open := codeScan(text, func(_ int, c byte) bool { return c == '(' })
	if open < 0 {
		if strings.Contains(text, ";") {
			return nil, errAt(line, "task annotation followed by a declaration, need a definition")
		}
		return nil, errAt(line, "cannot find parameter list of task function")
	}
	header := strings.TrimSpace(text[:open])
	fields := strings.Fields(header)
	if len(fields) < 2 {
		return nil, errAt(line, "cannot parse function header %q (need return type and name)", header)
	}
	name := fields[len(fields)-1]
	ret := strings.Join(fields[:len(fields)-1], " ")
	// Pointer stars may stick to the name.
	for strings.HasPrefix(name, "*") {
		name = name[1:]
		ret += " *"
	}
	if name == "" {
		return nil, errAt(line, "empty function name")
	}
	closeIdx := matchParen(text, open)
	if closeIdx < 0 {
		return nil, errAt(line, "unbalanced parameter list")
	}
	params, err := parseCParams(text[open+1:closeIdx], line)
	if err != nil {
		return nil, err
	}
	bodyOpen := codeScan(text[closeIdx:], func(_ int, c byte) bool { return c == '{' })
	if bodyOpen < 0 {
		return nil, errAt(line, "task annotation followed by a declaration, need a definition")
	}
	bodyOpen += closeIdx
	bodyClose := strings.LastIndexByte(text, '}')
	if bodyClose < bodyOpen {
		return nil, errAt(line, "unterminated function body")
	}
	return &Function{
		RetType: ret,
		Name:    name,
		Params:  params,
		Body:    text[bodyOpen+1 : bodyClose],
	}, nil
}

// matchParen returns the index of the ')' matching the '(' at open, or -1.
func matchParen(text string, open int) int {
	depth := 0
	res := codeScan(text[open:], func(_ int, c byte) bool {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return true
			}
		}
		return false
	})
	if res < 0 {
		return -1
	}
	return res + open
}

func parseCParams(s string, line int) ([]CParam, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "void" {
		return nil, nil
	}
	var out []CParam
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, errAt(line, "empty parameter declaration")
		}
		// The parameter name is the last identifier; stars belong to the type.
		i := len(item)
		for i > 0 && (isIdent(item[i-1])) {
			i--
		}
		name := item[i:]
		typ := strings.TrimSpace(item[:i])
		if name == "" || typ == "" {
			return nil, errAt(line, "cannot parse parameter %q", item)
		}
		out = append(out, CParam{Type: typ, Name: name})
	}
	return out, nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// parseCall parses `name(args);` starting at the current line.
func parseCall(sc *scanner) (*Call, string, error) {
	sc.skipBlank()
	if sc.eof() {
		return nil, "", errAt(sc.lineNo(), "execute annotation not followed by a call statement")
	}
	startLine := sc.lineNo()
	text, ok := sc.gatherUntil(func(t string) int {
		end := codeScan(t, func(_ int, c byte) bool { return c == ';' })
		if end < 0 {
			return -1
		}
		return end + 1
	})
	if !ok {
		return nil, "", errAt(startLine, "unterminated call statement")
	}
	open := codeScan(text, func(_ int, c byte) bool { return c == '(' })
	if open < 0 {
		return nil, "", errAt(startLine, "execute annotation not followed by a call")
	}
	name := strings.TrimSpace(text[:open])
	if name == "" || !isIdentWord(name) {
		return nil, "", errAt(startLine, "cannot parse callee name %q", name)
	}
	closeIdx := matchParen(text, open)
	if closeIdx < open {
		return nil, "", errAt(startLine, "unbalanced call argument list")
	}
	var args []string
	inner := strings.TrimSpace(text[open+1 : closeIdx])
	if inner != "" {
		depth := 0
		start := 0
		for i := 0; i <= len(inner); i++ {
			if i == len(inner) {
				args = append(args, strings.TrimSpace(inner[start:]))
				break
			}
			switch inner[i] {
			case '(':
				depth++
			case ')':
				depth--
			case ',':
				if depth == 0 {
					args = append(args, strings.TrimSpace(inner[start:i]))
					start = i + 1
				}
			}
		}
	}
	call := &Call{Name: name, Args: args, Text: text + "\n"}
	return call, call.Text, nil
}

func isIdentWord(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isIdent(s[i]) {
			return false
		}
	}
	return len(s) > 0 && !(s[0] >= '0' && s[0] <= '9')
}
