package discover

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// The platform catalog provides the named, ready-made PDL descriptions used
// throughout the examples, tools and benchmark harnesses. Catalog platforms
// carry simulator calibration (PEAK_GFLOPS_DP is always per single unit
// instance; a Master with quantity 8 stands for 8 such cores).

// xeonCoreGFlops is the double-precision peak of one 2.66 GHz Nehalem core
// (4 flops/cycle SSE2), and gotoBlasEfficiency the sustained fraction
// GotoBLAS2 1.13 reaches on large DGEMM.
const (
	xeonCoreGFlops     = 10.64
	gotoBlasEfficiency = 0.92
)

type catalogEntry struct {
	doc   string
	build func() (*core.Platform, error)
}

var catalog = map[string]catalogEntry{
	"gpgpu-node": {
		doc: "the paper's Listing 1: one x86 Master, one gpu Worker, rDMA link (abstract)",
		build: func() (*core.Platform, error) {
			return core.NewBuilder("gpgpu-node").
				Master("0", core.Arch("x86")).
				Worker("1", core.Arch("gpu")).
				Link(core.ICTypeRDMA, "0", "1", core.Scheme("")).
				Build()
		},
	},
	"xeon-2gpu": {
		doc: "the paper's evaluation testbed: dual-socket quad-core Xeon X5550 + GTX480 + GTX285",
		build: func() (*core.Platform, error) {
			host := HostInfo{Arch: "x86", Cores: 8}
			pl, err := Generate(Options{
				Name:     "xeon-2gpu",
				Host:     &host,
				Devices:  []Device{GTX480(), GTX285()},
				Concrete: true,
			})
			if err != nil {
				return nil, err
			}
			calibrateXeonHost(pl)
			return pl, nil
		},
	},
	"xeon-cpu": {
		doc: "the evaluation host without GPUs (the paper's 'starpu' 8-core series)",
		build: func() (*core.Platform, error) {
			host := HostInfo{Arch: "x86", Cores: 8}
			pl, err := Generate(Options{Name: "xeon-cpu", Host: &host})
			if err != nil {
				return nil, err
			}
			calibrateXeonHost(pl)
			return pl, nil
		},
	},
	"xeon-1core": {
		doc: "one Xeon X5550 core (the paper's single-threaded baseline)",
		build: func() (*core.Platform, error) {
			host := HostInfo{Arch: "x86", Cores: 1}
			pl, err := Generate(Options{Name: "xeon-1core", Host: &host})
			if err != nil {
				return nil, err
			}
			calibrateXeonHost(pl)
			return pl, nil
		},
	},
	"gtx480": {
		doc: "a single GTX480 worker with full OpenCL runtime properties (the paper's Listing 2)",
		build: func() (*core.Platform, error) {
			host := HostInfo{Arch: "x86", Cores: 4}
			return Generate(Options{
				Name:     "gtx480",
				Host:     &host,
				Devices:  []Device{GTX480()},
				Concrete: true,
			})
		},
	},
	"cell-blade": {
		doc: "a Cell B.E.-like blade: ppc Master, Hybrid controller, 8 SPE Workers",
		build: func() (*core.Platform, error) {
			pl, err := core.NewBuilder("cell-blade").
				Master("ppe", core.Arch("ppc"),
					core.WithProp(core.PropCores, "1"),
					core.InGroups("cpuset")).
				Hybrid("ctl", core.Arch("ppc")).
				Worker("spe", core.Arch("spe"), core.Qty(8), core.InGroups("speset")).
				End().
				Link(core.ICTypeEIB, "ctl", "spe", core.Bandwidth(25), core.Latency(1)).
				Link(core.ICTypeShared, "ppe", "ctl", core.Bandwidth(25), core.Latency(1)).
				Build()
			if err != nil {
				return nil, err
			}
			spe := &CellSPE{LocalStoreKB: 256, GFlopsDP: 12.8}
			w := pl.FindPU("spe")
			for _, p := range spe.FixedProperties() {
				w.Descriptor.Set(p)
			}
			for _, p := range spe.RuntimeProperties() {
				w.Descriptor.Set(p)
			}
			ppe := pl.FindPU("ppe")
			ppe.Descriptor.Set(core.Property{Name: "PEAK_GFLOPS_DP", Value: "6.4", Fixed: true, Type: simType})
			ppe.Descriptor.Set(core.Property{Name: "DGEMM_EFFICIENCY", Value: "0.8", Fixed: true, Type: simType})
			return pl, nil
		},
	},
	"this-host": {
		doc: "the machine running this process, probed via the Go runtime",
		build: func() (*core.Platform, error) {
			pl, err := Generate(Options{Name: "this-host"})
			if err != nil {
				return nil, err
			}
			// Conservative generic calibration so sim-mode still works.
			m := pl.FindPU("host")
			m.Descriptor.Set(core.Property{Name: "PEAK_GFLOPS_DP", Value: "8", Fixed: true, Type: simType})
			m.Descriptor.Set(core.Property{Name: "DGEMM_EFFICIENCY", Value: "0.7", Fixed: true, Type: simType})
			return pl, nil
		},
	},
}

func calibrateXeonHost(pl *core.Platform) {
	m := pl.FindPU("host")
	m.Descriptor.Set(core.Property{Name: core.PropDeviceName, Value: "Intel Xeon X5550", Fixed: true})
	m.Descriptor.Set(core.Property{Name: core.PropClockMHz, Value: "2660", Unit: "MHz", Fixed: true})
	m.Descriptor.Set(core.Property{Name: "PEAK_GFLOPS_DP", Value: trimFloat(xeonCoreGFlops), Fixed: true, Type: simType})
	m.Descriptor.Set(core.Property{Name: "DGEMM_EFFICIENCY", Value: trimFloat(gotoBlasEfficiency), Fixed: true, Type: simType})
	m.Descriptor.Set(core.Property{Name: "KERNEL_LAUNCH_US", Value: "1", Fixed: true, Type: simType})
}

// Platform builds the named catalog platform.
func Platform(name string) (*core.Platform, error) {
	e, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("discover: unknown catalog platform %q (known: %v)", name, CatalogNames())
	}
	return e.build()
}

// MustPlatform is Platform for fixtures; it panics on error.
func MustPlatform(name string) *core.Platform {
	pl, err := Platform(name)
	if err != nil {
		panic(err)
	}
	return pl
}

// CatalogNames lists the available platform names sorted alphabetically.
func CatalogNames() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CatalogDoc returns the one-line description of a catalog platform.
func CatalogDoc(name string) string {
	if e, ok := catalog[name]; ok {
		return e.doc
	}
	return ""
}
