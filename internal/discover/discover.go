// Package discover generates PDL platform descriptions automatically, the
// way the paper envisions hwloc- or OpenCL-based generation of descriptors
// ("implementations of the PDL enable manual as well as automatic generation
// of PDL descriptors", Section II).
//
// Two sources feed the generator:
//
//   - a host probe reading the real machine (core count, architecture) via
//     the Go runtime — the portable subset of what hwloc exposes; and
//   - a synthetic device registry standing in for the OpenCL/CUDA runtime
//     enumeration the paper used on its GPU testbed. The registry carries the
//     published characteristics of the paper's devices (GeForce GTX 480 and
//     GTX 285), so the generated descriptors reproduce Listing 2 without the
//     proprietary driver stack.
//
// The calibrated PEAK_GFLOPS_DP / DGEMM_EFFICIENCY properties attached to
// devices parameterise the hardware simulator (internal/simhw): the PDL
// document itself is the single source of machine truth, exactly the role
// the paper assigns it.
package discover

import (
	"fmt"
	"runtime"

	"repro/internal/core"
)

// HostInfo describes the probed host machine.
type HostInfo struct {
	Arch  string // normalised PDL architecture tag ("x86", "arm", ...)
	Cores int
}

// ProbeHost inspects the running machine.
func ProbeHost() HostInfo {
	arch := "x86"
	switch runtime.GOARCH {
	case "amd64", "386":
		arch = "x86"
	case "arm64", "arm":
		arch = "arm"
	default:
		arch = runtime.GOARCH
	}
	return HostInfo{Arch: arch, Cores: runtime.NumCPU()}
}

// Options configure platform generation.
type Options struct {
	Name     string    // platform name; default "discovered"
	Host     *HostInfo // nil probes the real host
	Devices  []Device  // accelerator devices to attach as Workers
	Concrete bool      // attach full runtime-derived (unfixed, typed) properties
	LinkGBs  float64   // host-device link bandwidth; default 5 GB/s (PCIe 2.0 x16 effective)
	LinkUSec float64   // host-device link latency; default 10 µs
}

// Generate builds a validated PDL platform from the options: one Master for
// the host (quantity = core count), one Worker per device, and a PCIe
// interconnect from host to each device.
func Generate(opts Options) (*core.Platform, error) {
	name := opts.Name
	if name == "" {
		name = "discovered"
	}
	host := opts.Host
	if host == nil {
		h := ProbeHost()
		host = &h
	}
	if host.Cores < 1 {
		return nil, fmt.Errorf("discover: host with %d cores", host.Cores)
	}
	linkBW := opts.LinkGBs
	if linkBW == 0 {
		linkBW = 5.0
	}
	linkLat := opts.LinkUSec
	if linkLat == 0 {
		linkLat = 10.0
	}

	b := core.NewBuilder(name).
		Master("host", core.Arch(host.Arch), core.Qty(host.Cores),
			core.WithProp(core.PropCores, fmt.Sprint(host.Cores)),
			core.InGroups("cpuset"))
	for i, dev := range opts.Devices {
		id := fmt.Sprintf("dev%d", i)
		b.Worker(id, core.Arch(dev.Architecture()), core.InGroups("devset"))
		b.Link(core.ICTypePCIe, "host", id,
			core.Bandwidth(linkBW), core.Latency(linkLat), core.Scheme("dma"))
	}
	pl, err := b.Build()
	if err != nil {
		return nil, err
	}
	for i, dev := range opts.Devices {
		w := pl.FindPU(fmt.Sprintf("dev%d", i))
		for _, p := range dev.FixedProperties() {
			w.Descriptor.Set(p)
		}
		if opts.Concrete {
			for _, p := range dev.RuntimeProperties() {
				w.Descriptor.Set(p)
			}
		}
	}
	return pl, nil
}

// Device is an accelerator the generator can attach. Implementations model
// the enumeration APIs of concrete runtimes (OpenCL, CUDA, Cell SDK).
type Device interface {
	// Architecture returns the PDL ARCHITECTURE tag ("gpu", "spe", ...).
	Architecture() string
	// FixedProperties returns author-level, always-attached properties
	// (device name, calibration).
	FixedProperties() []core.Property
	// RuntimeProperties returns the unfixed, subschema-typed properties a
	// runtime enumeration would add (the paper's Listing 2 content).
	RuntimeProperties() []core.Property
}
