package discover

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
	"repro/internal/schema"
)

func TestProbeHost(t *testing.T) {
	h := ProbeHost()
	if h.Cores < 1 {
		t.Fatalf("cores = %d", h.Cores)
	}
	if h.Arch == "" {
		t.Fatal("empty arch")
	}
}

func TestGenerateBasic(t *testing.T) {
	host := HostInfo{Arch: "x86", Cores: 8}
	pl, err := Generate(Options{Name: "g", Host: &host, Devices: []Device{GTX480(), GTX285()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := query.New(pl).Workers().WithArch("gpu").Count(); got != 2 {
		t.Fatalf("gpu workers = %d", got)
	}
	if got := pl.FindPU("host").EffectiveQuantity(); got != 8 {
		t.Fatalf("host quantity = %d", got)
	}
	// Fixed properties present even without Concrete.
	if v := pl.FindPU("dev0").Descriptor.Value(core.PropDeviceName); v != "GeForce GTX 480" {
		t.Fatalf("dev0 name = %q", v)
	}
	// Runtime properties absent without Concrete.
	if _, ok := pl.FindPU("dev0").Descriptor.Get("MAX_COMPUTE_UNITS"); ok {
		t.Fatal("runtime properties attached without Concrete")
	}
	// Links exist with bandwidth.
	ic, ok := pl.LinkBetween("host", "dev1")
	if !ok {
		t.Fatal("missing host-dev1 link")
	}
	if _, ok := ic.BandwidthBytesPerSec(); !ok {
		t.Fatal("link missing bandwidth")
	}
}

func TestGenerateConcreteReproducesListing2(t *testing.T) {
	pl := MustPlatform("gtx480")
	w := pl.FindPU("dev0")
	// The four properties of the paper's Listing 2, with identical values.
	checks := map[string]struct{ value, unit string }{
		"DEVICE_NAME":              {"GeForce GTX 480", ""},
		"MAX_COMPUTE_UNITS":        {"15", ""},
		"MAX_WORK_ITEM_DIMENSIONS": {"3", ""},
		"GLOBAL_MEM_SIZE":          {"1572864", "kB"},
		"LOCAL_MEM_SIZE":           {"48", "kB"},
	}
	for name, want := range checks {
		p, ok := w.Descriptor.Get(name)
		if !ok {
			t.Errorf("missing property %s", name)
			continue
		}
		if p.Value != want.value || p.Unit != want.unit {
			t.Errorf("%s = %q %q; want %q %q", name, p.Value, p.Unit, want.value, want.unit)
		}
		if p.Fixed {
			t.Errorf("%s should be unfixed (runtime-derived)", name)
		}
		if p.Type != "ocl:oclDevicePropertyType" {
			t.Errorf("%s type = %q", name, p.Type)
		}
	}
	// And it serialises with the ocl namespace, like the paper's listing.
	data, err := pdlxml.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<ocl:name>MAX_COMPUTE_UNITS</ocl:name>", "<ocl:value>15</ocl:value>", `xsi:type="ocl:oclDevicePropertyType"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshalled gtx480 missing %q", want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := HostInfo{Arch: "x86", Cores: 0}
	if _, err := Generate(Options{Host: &bad}); err == nil {
		t.Fatal("0-core host must fail")
	}
}

func TestCatalogAllEntriesValidateAndRoundTrip(t *testing.T) {
	for _, name := range CatalogNames() {
		t.Run(name, func(t *testing.T) {
			pl, err := Platform(name)
			if err != nil {
				t.Fatal(err)
			}
			rep := schema.ValidatePlatform(pl, schema.Default())
			if !rep.OK() {
				t.Fatalf("catalog %s fails schema validation: %v", name, rep.Errors)
			}
			data, err := pdlxml.Marshal(pl)
			if err != nil {
				t.Fatal(err)
			}
			back, err := pdlxml.Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := back.Validate(); err != nil {
				t.Fatal(err)
			}
			if CatalogDoc(name) == "" {
				t.Error("catalog entry without doc line")
			}
		})
	}
	if CatalogDoc("nope") != "" {
		t.Error("doc of unknown platform should be empty")
	}
}

func TestCatalogUnknown(t *testing.T) {
	if _, err := Platform("pdp11"); err == nil {
		t.Fatal("unknown platform must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlatform should panic on unknown name")
		}
	}()
	MustPlatform("pdp11")
}

func TestXeon2GPUCalibration(t *testing.T) {
	pl := MustPlatform("xeon-2gpu")
	m := pl.FindPU("host")
	gf, ok := m.Descriptor.Float("PEAK_GFLOPS_DP")
	if !ok || gf != 10.64 {
		t.Fatalf("host PEAK_GFLOPS_DP = %g, %v", gf, ok)
	}
	if got := m.EffectiveQuantity(); got != 8 {
		t.Fatalf("host cores = %d", got)
	}
	g480 := pl.FindPU("dev0")
	if gf, _ := g480.Descriptor.Float("PEAK_GFLOPS_DP"); gf != 168 {
		t.Fatalf("gtx480 peak = %g", gf)
	}
	g285 := pl.FindPU("dev1")
	if v := g285.Descriptor.Value(core.PropDeviceName); v != "GeForce GTX 285" {
		t.Fatalf("dev1 = %q", v)
	}
	// Effective DGEMM rates order correctly: gtx480 > gtx285 > one core.
	rate := func(pu *core.PU) float64 {
		p, _ := pu.Descriptor.Float("PEAK_GFLOPS_DP")
		e, _ := pu.Descriptor.Float("DGEMM_EFFICIENCY")
		return p * e
	}
	if !(rate(g480) > rate(g285) && rate(g285) > rate(m)) {
		t.Fatalf("calibration ordering wrong: %g %g %g", rate(g480), rate(g285), rate(m))
	}
}

func TestCellBladeShape(t *testing.T) {
	pl := MustPlatform("cell-blade")
	if got := query.New(pl).Hybrids().Count(); got != 1 {
		t.Fatalf("hybrids = %d", got)
	}
	spe := pl.FindPU("spe")
	if spe.EffectiveQuantity() != 8 || spe.Architecture() != "spe" {
		t.Fatalf("spe = %v", spe)
	}
	if v := spe.Descriptor.Value("LOCAL_STORE"); v != "256" {
		t.Fatalf("LOCAL_STORE = %q", v)
	}
}
