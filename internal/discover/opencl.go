package discover

import (
	"fmt"

	"repro/internal/core"
)

// OpenCLDevice is a synthetic stand-in for one clGetDeviceInfo enumeration
// result. Field values for the predefined devices are the published
// characteristics of the boards in the paper's testbed.
type OpenCLDevice struct {
	Name          string
	Vendor        string
	ComputeUnits  int
	WorkItemDims  int
	GlobalMemKB   int64
	LocalMemKB    int64
	ClockMHz      int
	DeviceVersion string
	DriverVersion string

	// Calibration for the hardware simulator (internal/simhw): sustained
	// double-precision GEMM throughput = PeakGFlopsDP * DGEMMEfficiency.
	PeakGFlopsDP    float64
	DGEMMEfficiency float64
	KernelLaunchUS  float64 // per-kernel launch overhead
}

// oclType is the xsi:type of OpenCL runtime properties (paper Listing 2).
const oclType = "ocl:oclDevicePropertyType"

// simType is the xsi:type of simulator calibration properties.
const simType = "sim:simDevicePropertyType"

// Architecture implements Device.
func (d *OpenCLDevice) Architecture() string { return "gpu" }

// FixedProperties implements Device: the author-level identity and
// calibration values.
func (d *OpenCLDevice) FixedProperties() []core.Property {
	return []core.Property{
		{Name: core.PropDeviceName, Value: d.Name, Fixed: true},
		{Name: core.PropVendor, Value: d.Vendor, Fixed: true},
		{Name: "PEAK_GFLOPS_DP", Value: trimFloat(d.PeakGFlopsDP), Fixed: true, Type: simType},
		{Name: "DGEMM_EFFICIENCY", Value: trimFloat(d.DGEMMEfficiency), Fixed: true, Type: simType},
		{Name: "KERNEL_LAUNCH_US", Value: trimFloat(d.KernelLaunchUS), Fixed: true, Type: simType},
	}
}

// RuntimeProperties implements Device: exactly the unfixed ocl-typed
// properties of the paper's Listing 2, plus version strings.
func (d *OpenCLDevice) RuntimeProperties() []core.Property {
	return []core.Property{
		{Name: "DEVICE_NAME", Value: d.Name, Fixed: false, Type: oclType},
		{Name: "MAX_COMPUTE_UNITS", Value: fmt.Sprint(d.ComputeUnits), Fixed: false, Type: oclType},
		{Name: "MAX_WORK_ITEM_DIMENSIONS", Value: fmt.Sprint(d.WorkItemDims), Fixed: false, Type: oclType},
		{Name: "GLOBAL_MEM_SIZE", Value: fmt.Sprint(d.GlobalMemKB), Unit: "kB", Fixed: false, Type: oclType},
		{Name: "LOCAL_MEM_SIZE", Value: fmt.Sprint(d.LocalMemKB), Unit: "kB", Fixed: false, Type: oclType},
		{Name: "DEVICE_VERSION", Value: d.DeviceVersion, Fixed: false, Type: oclType},
		{Name: "DRIVER_VERSION", Value: d.DriverVersion, Fixed: false, Type: oclType},
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// GTX480 returns the GeForce GTX 480 of the paper's testbed. The Listing 2
// values (15 compute units, 1.5 GB global, 48 kB local) are taken verbatim
// from the paper; the double-precision calibration reflects the board's
// 168 GFLOP/s DP peak with a CuBLAS 3.2-era DGEMM efficiency of ~0.65.
func GTX480() *OpenCLDevice {
	return &OpenCLDevice{
		Name:            "GeForce GTX 480",
		Vendor:          "Nvidia",
		ComputeUnits:    15,
		WorkItemDims:    3,
		GlobalMemKB:     1572864,
		LocalMemKB:      48,
		ClockMHz:        1401,
		DeviceVersion:   "OpenCL 1.1 CUDA",
		DriverVersion:   "260.19",
		PeakGFlopsDP:    168,
		DGEMMEfficiency: 0.65,
		KernelLaunchUS:  7,
	}
}

// GTX285 returns the GeForce GTX 285, the second board of the paper's
// testbed: 30 compute units, 1 GB global memory, 88.5 GFLOP/s DP peak.
func GTX285() *OpenCLDevice {
	return &OpenCLDevice{
		Name:            "GeForce GTX 285",
		Vendor:          "Nvidia",
		ComputeUnits:    30,
		WorkItemDims:    3,
		GlobalMemKB:     1048576,
		LocalMemKB:      16,
		ClockMHz:        1476,
		DeviceVersion:   "OpenCL 1.0 CUDA",
		DriverVersion:   "260.19",
		PeakGFlopsDP:    88.5,
		DGEMMEfficiency: 0.75,
		KernelLaunchUS:  7,
	}
}

// CellSPE is a synthetic Cell B.E. SPE described through the same Device
// interface, for the hybrid-platform examples.
type CellSPE struct {
	LocalStoreKB int64
	GFlopsDP     float64
}

// Architecture implements Device.
func (d *CellSPE) Architecture() string { return "spe" }

// FixedProperties implements Device.
func (d *CellSPE) FixedProperties() []core.Property {
	return []core.Property{
		{Name: core.PropDeviceName, Value: "Cell SPE", Fixed: true},
		{Name: "PEAK_GFLOPS_DP", Value: trimFloat(d.GFlopsDP), Fixed: true, Type: simType},
		{Name: "DGEMM_EFFICIENCY", Value: "0.8", Fixed: true, Type: simType},
		{Name: "KERNEL_LAUNCH_US", Value: "2", Fixed: true, Type: simType},
	}
}

// RuntimeProperties implements Device.
func (d *CellSPE) RuntimeProperties() []core.Property {
	return []core.Property{
		{Name: "LOCAL_STORE", Value: fmt.Sprint(d.LocalStoreKB), Unit: "kB", Fixed: false, Type: "cell:cellPropertyType"},
	}
}
