// Package dynamic implements the paper's future-work direction: "tracking
// dynamically changing system resources via platform descriptors ...
// supporting highly dynamic run-time schedulers" (Section VI).
//
// A Tracker wraps a PDL platform with mutable runtime state: processing
// units go offline and come back, and unfixed properties (the paper's
// editable descriptor entries) are filled in by runtimes as information
// becomes available. Every mutation bumps a version counter and notifies
// registered observers; Snapshot produces a consistent, validated platform
// reflecting the current state, which schedulers re-plan against (see the
// failover experiment in internal/experiments).
package dynamic

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// EventKind classifies tracker mutations.
type EventKind int

const (
	// Offline marks a unit leaving the machine.
	Offline EventKind = iota
	// Online marks a unit (re)joining.
	Online
	// PropertyFilled marks an unfixed property receiving a value.
	PropertyFilled
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Offline:
		return "offline"
	case Online:
		return "online"
	case PropertyFilled:
		return "property-filled"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one tracked change.
type Event struct {
	Kind     EventKind
	PU       string
	Property string // PropertyFilled only
	Value    string // PropertyFilled only
	Version  uint64 // tracker version after the change
}

// Observer receives tracker events synchronously, in mutation order.
type Observer func(Event)

// Tracker maintains the dynamic state of one platform description. All
// methods are safe for concurrent use; observer delivery is serialised and
// ordered even when mutations race (engine goroutines blacklist units while
// the application queries snapshots).
type Tracker struct {
	mu          sync.Mutex
	base        *core.Platform
	offline     map[string]bool
	version     uint64
	observers   []Observer
	queue       []Event // undelivered events, in version order
	dispatching bool    // a goroutine is currently draining queue
}

// NewTracker wraps a validated platform. The tracker owns a private clone;
// later changes to the argument do not affect it.
func NewTracker(pl *core.Platform) (*Tracker, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		base:    pl.Clone(),
		offline: map[string]bool{},
	}, nil
}

// Version returns the current state version (0 = pristine).
func (t *Tracker) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// OnChange registers an observer for subsequent events.
func (t *Tracker) OnChange(obs Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, obs)
}

// enqueue appends an event for delivery. Caller holds t.mu; the version bump
// and the append are atomic, so queue order is version order.
func (t *Tracker) enqueue(e Event) {
	t.queue = append(t.queue, e)
}

// dispatch drains the event queue, delivering to observers outside the state
// lock (observers may query — or even mutate — the tracker). Exactly one
// goroutine drains at a time, so concurrent SetOffline/SetOnline callers see
// their events delivered in version order; an observer that mutates the
// tracker re-enters here, finds the drain active, and leaves delivery to the
// already-running loop instead of deadlocking.
func (t *Tracker) dispatch() {
	t.mu.Lock()
	if t.dispatching {
		t.mu.Unlock()
		return
	}
	t.dispatching = true
	for len(t.queue) > 0 {
		e := t.queue[0]
		t.queue = t.queue[1:]
		obs := append([]Observer(nil), t.observers...)
		t.mu.Unlock()
		for _, o := range obs {
			o(e)
		}
		t.mu.Lock()
	}
	t.dispatching = false
	t.mu.Unlock()
}

// SetOffline marks a unit as unavailable. Taking a Master offline is allowed
// only while at least one other Master remains online: a platform without an
// execution starting point is no platform. Idempotent calls do not bump the
// version.
func (t *Tracker) SetOffline(puID string) error {
	t.mu.Lock()
	pu := t.base.FindPU(puID)
	if pu == nil {
		t.mu.Unlock()
		return fmt.Errorf("dynamic: unknown PU %q", puID)
	}
	if t.offline[puID] {
		t.mu.Unlock()
		return nil
	}
	if pu.Class == core.Master {
		online := 0
		for _, m := range t.base.Masters {
			if !t.offline[m.ID] {
				online++
			}
		}
		if online <= 1 {
			t.mu.Unlock()
			return fmt.Errorf("dynamic: cannot take last online Master %q offline", puID)
		}
	}
	t.offline[puID] = true
	t.version++
	t.enqueue(Event{Kind: Offline, PU: puID, Version: t.version})
	t.mu.Unlock()
	t.dispatch()
	return nil
}

// SetOnline marks a unit as available again. Idempotent.
func (t *Tracker) SetOnline(puID string) error {
	t.mu.Lock()
	if t.base.FindPU(puID) == nil {
		t.mu.Unlock()
		return fmt.Errorf("dynamic: unknown PU %q", puID)
	}
	if !t.offline[puID] {
		t.mu.Unlock()
		return nil
	}
	delete(t.offline, puID)
	t.version++
	t.enqueue(Event{Kind: Online, PU: puID, Version: t.version})
	t.mu.Unlock()
	t.dispatch()
	return nil
}

// IsOnline reports whether a unit is currently available (unknown units are
// not).
func (t *Tracker) IsOnline(puID string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base.FindPU(puID) != nil && !t.offline[puID]
}

// OfflineUnits returns the ids of offline units, sorted.
func (t *Tracker) OfflineUnits() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.offline))
	for id := range t.offline {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// FillProperty assigns a value to an unfixed property of a unit's
// descriptor — the paper's "definition of required descriptors at program
// composition time with later instantiation by a runtime". Fixed properties
// are refused by the underlying descriptor.
func (t *Tracker) FillProperty(puID, name, value string) error {
	t.mu.Lock()
	pu := t.base.FindPU(puID)
	if pu == nil {
		t.mu.Unlock()
		return fmt.Errorf("dynamic: unknown PU %q", puID)
	}
	if err := pu.Descriptor.Fill(name, value); err != nil {
		t.mu.Unlock()
		return err
	}
	t.version++
	t.enqueue(Event{Kind: PropertyFilled, PU: puID, Property: name, Value: value, Version: t.version})
	t.mu.Unlock()
	t.dispatch()
	return nil
}

// Snapshot returns a validated platform reflecting the current state:
// offline units (and everything they control) are pruned, and filled
// property values are present. Schedulers re-plan against snapshots.
func (t *Tracker) Snapshot() (*core.Platform, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := t.base.Clone()
	if len(t.offline) > 0 {
		var masters []*core.PU
		for _, m := range cp.Masters {
			if t.offline[m.ID] {
				continue
			}
			t.pruneOffline(m)
			masters = append(masters, m)
		}
		cp.Masters = masters
		t.dropDanglingLinks(cp)
	}
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: snapshot invalid: %w", err)
	}
	return cp, nil
}

// pruneOffline removes offline children recursively. Caller holds t.mu.
func (t *Tracker) pruneOffline(pu *core.PU) {
	kept := pu.Children[:0]
	for _, c := range pu.Children {
		if t.offline[c.ID] {
			continue
		}
		t.pruneOffline(c)
		// A Hybrid whose units all went away degrades to a Worker so the
		// snapshot stays a valid machine-model instance.
		if c.Class == core.Hybrid && len(c.Children) == 0 {
			c.Class = core.Worker
		}
		kept = append(kept, c)
	}
	pu.Children = kept
}

// dropDanglingLinks removes interconnects whose endpoints were pruned.
// Caller holds t.mu.
func (t *Tracker) dropDanglingLinks(pl *core.Platform) {
	exists := map[string]bool{}
	pl.Walk(func(pu, _ *core.PU) bool {
		exists[pu.ID] = true
		return true
	})
	pl.Walk(func(pu, _ *core.PU) bool {
		kept := pu.Links[:0]
		for _, ic := range pu.Links {
			if exists[ic.From] && exists[ic.To] {
				kept = append(kept, ic)
			}
		}
		pu.Links = kept
		return true
	})
}
