package dynamic

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/query"
)

func tracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrackerValidatesAndClones(t *testing.T) {
	if _, err := NewTracker(&core.Platform{}); err == nil {
		t.Fatal("invalid platform must fail")
	}
	pl := discover.MustPlatform("xeon-2gpu")
	tr, err := NewTracker(pl)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the original platform does not affect the tracker.
	pl.FindPU("dev0").Descriptor.SetFixed(core.PropArchitecture, "changed")
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.FindPU("dev0").Architecture() != "gpu" {
		t.Fatal("tracker shares state with the input platform")
	}
}

func TestOfflineOnlineLifecycle(t *testing.T) {
	tr := tracker(t)
	if !tr.IsOnline("dev0") {
		t.Fatal("dev0 should start online")
	}
	if err := tr.SetOffline("dev0"); err != nil {
		t.Fatal(err)
	}
	if tr.IsOnline("dev0") {
		t.Fatal("dev0 should be offline")
	}
	if got := tr.OfflineUnits(); len(got) != 1 || got[0] != "dev0" {
		t.Fatalf("offline = %v", got)
	}
	if tr.Version() != 1 {
		t.Fatalf("version = %d", tr.Version())
	}
	// Idempotent offline does not bump the version.
	if err := tr.SetOffline("dev0"); err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 1 {
		t.Fatalf("idempotent offline bumped version to %d", tr.Version())
	}
	if err := tr.SetOnline("dev0"); err != nil {
		t.Fatal(err)
	}
	if !tr.IsOnline("dev0") || tr.Version() != 2 {
		t.Fatalf("online failed: version=%d", tr.Version())
	}
	if err := tr.SetOnline("dev0"); err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 2 {
		t.Fatal("idempotent online bumped version")
	}
}

func TestUnknownUnits(t *testing.T) {
	tr := tracker(t)
	if err := tr.SetOffline("ghost"); err == nil {
		t.Fatal("unknown unit must fail")
	}
	if err := tr.SetOnline("ghost"); err == nil {
		t.Fatal("unknown unit must fail")
	}
	if tr.IsOnline("ghost") {
		t.Fatal("unknown unit is not online")
	}
	if err := tr.FillProperty("ghost", "X", "1"); err == nil {
		t.Fatal("unknown unit must fail")
	}
}

func TestLastMasterProtected(t *testing.T) {
	tr := tracker(t)
	err := tr.SetOffline("host")
	if err == nil || !strings.Contains(err.Error(), "last online Master") {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotPrunesOfflineAndLinks(t *testing.T) {
	tr := tracker(t)
	if err := tr.SetOffline("dev0"); err != nil {
		t.Fatal(err)
	}
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.FindPU("dev0") != nil {
		t.Fatal("offline unit still in snapshot")
	}
	if snap.FindPU("dev1") == nil {
		t.Fatal("online unit missing from snapshot")
	}
	// Dangling PCIe link to dev0 dropped; link to dev1 kept.
	for _, ic := range snap.Interconnects() {
		if ic.From == "dev0" || ic.To == "dev0" {
			t.Fatalf("dangling link %v", ic)
		}
	}
	if _, ok := snap.LinkBetween("host", "dev1"); !ok {
		t.Fatal("link to dev1 lost")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotHybridDegradesToWorker(t *testing.T) {
	tr, err := NewTracker(discover.MustPlatform("cell-blade"))
	if err != nil {
		t.Fatal(err)
	}
	// All SPEs offline: the controlling Hybrid degrades to a Worker so the
	// snapshot remains a valid machine-model instance.
	if err := tr.SetOffline("spe"); err != nil {
		t.Fatal(err)
	}
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ctl := snap.FindPU("ctl")
	if ctl == nil || ctl.Class != core.Worker {
		t.Fatalf("ctl = %v", ctl)
	}
}

func TestFillProperty(t *testing.T) {
	tr := tracker(t)
	// DEVICE_NAME on dev0 is an unfixed runtime property in the catalog.
	if err := tr.FillProperty("dev0", "DEVICE_NAME", "GeForce GTX 480 (rev2)"); err != nil {
		t.Fatal(err)
	}
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.FindPU("dev0").Descriptor.Value("DEVICE_NAME"); v != "GeForce GTX 480 (rev2)" {
		t.Fatalf("filled value = %q", v)
	}
	// Fixed properties are protected.
	if err := tr.FillProperty("dev0", core.PropVendor, "AMD"); err == nil {
		t.Fatal("fixed property fill must fail")
	}
}

func TestObserversReceiveEventsInOrder(t *testing.T) {
	tr := tracker(t)
	var events []Event
	tr.OnChange(func(e Event) { events = append(events, e) })
	_ = tr.SetOffline("dev0")
	_ = tr.FillProperty("dev1", "DEVICE_NAME", "x")
	_ = tr.SetOnline("dev0")
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Kind != Offline || events[0].PU != "dev0" || events[0].Version != 1 {
		t.Fatalf("e0 = %+v", events[0])
	}
	if events[1].Kind != PropertyFilled || events[1].Property != "DEVICE_NAME" {
		t.Fatalf("e1 = %+v", events[1])
	}
	if events[2].Kind != Online || events[2].Version != 3 {
		t.Fatalf("e2 = %+v", events[2])
	}
	// Observers can query the tracker without deadlocking.
	tr.OnChange(func(e Event) { _ = tr.IsOnline("dev1") })
	if err := tr.SetOffline("dev1"); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	if Offline.String() != "offline" || Online.String() != "online" || PropertyFilled.String() != "property-filled" {
		t.Fatal("EventKind.String wrong")
	}
}

func TestSnapshotUsableByQueries(t *testing.T) {
	tr := tracker(t)
	_ = tr.SetOffline("dev1")
	snap, err := tr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gpus := query.MustSelect(snap, "//Worker[ARCHITECTURE=gpu]")
	if len(gpus) != 1 || gpus[0].ID != "dev0" {
		t.Fatalf("gpus = %v", gpus)
	}
}

// TestConcurrentDispatchOrdered hammers the tracker from many goroutines and
// checks the guarantees the task runtime's fault-tolerance layer depends on:
// observers see every state change exactly once, in version order, with no
// data races (run under -race) and no deadlock when an observer re-enters the
// tracker.
func TestConcurrentDispatchOrdered(t *testing.T) {
	tr := tracker(t)
	var mu sync.Mutex
	var versions []uint64
	events := map[string]int{}
	tr.OnChange(func(e Event) {
		mu.Lock()
		versions = append(versions, e.Version)
		events[e.Kind.String()+":"+e.PU]++
		mu.Unlock()
	})
	// A second, re-entrant observer: reading tracker state from inside the
	// callback must not deadlock.
	tr.OnChange(func(e Event) {
		_ = tr.IsOnline(e.PU)
		_ = tr.Version()
	})

	units := []string{"dev0", "dev1", "host"}
	var wg sync.WaitGroup
	const rounds = 50
	for _, u := range units {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					_ = tr.SetOffline(u)
					_ = tr.SetOnline(u)
				}
			}(u)
		}
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(versions); i++ {
		if versions[i] <= versions[i-1] {
			t.Fatalf("event %d delivered out of order: version %d after %d", i, versions[i], versions[i-1])
		}
	}
	if len(versions) == 0 {
		t.Fatal("no events delivered")
	}
	if uint64(len(versions)) != tr.Version() {
		t.Fatalf("delivered %d events, tracker version %d", len(versions), tr.Version())
	}
	// Offline/online must alternate per unit, so the counts can differ by at
	// most... exactly: every successful SetOffline is eventually matched by
	// at most one more SetOffline than SetOnline.
	for _, u := range units {
		off, on := events["offline:"+u], events["online:"+u]
		if off < on || off > on+1 {
			t.Fatalf("unit %s: %d offline vs %d online events", u, off, on)
		}
	}
}

// TestObserverMutatingTrackerDoesNotDeadlock re-enters the tracker with a
// *mutation* from inside an observer: the nested event must still be
// delivered (by the active drainer) without deadlock or recursion.
func TestObserverMutatingTrackerDoesNotDeadlock(t *testing.T) {
	tr := tracker(t)
	var got []string
	tr.OnChange(func(e Event) {
		got = append(got, e.Kind.String()+":"+e.PU)
		if e.Kind == Offline && e.PU == "dev0" {
			_ = tr.SetOffline("dev1") // re-entrant mutation
		}
	})
	if err := tr.SetOffline("dev0"); err != nil {
		t.Fatal(err)
	}
	want := []string{"offline:dev0", "offline:dev1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events = %v, want %v", got, want)
	}
}
