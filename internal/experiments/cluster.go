package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// ClusterCodelets is the executable codelet registry shared by pdlworkerd
// and the cluster experiments: every codelet a worker daemon can be asked
// to run. Only codelets whose payloads survive the cluster wire codec
// belong here (dense matrices and plain slices; see cluster.EncodePayload).
func ClusterCodelets() []*taskrt.Codelet {
	return []*taskrt.Codelet{dgemmCodelet()}
}

// ClusterConfig parameterises the distributed tiled-DGEMM experiment.
type ClusterConfig struct {
	// N and Tile size the C += A·B problem (default 512 / 128).
	N, Tile int
	// Nodes lists worker base URLs (pdlworkerd instances). Empty spawns
	// InProcess loopback workers instead, so the experiment self-contains.
	Nodes []string
	// InProcess is the loopback worker count when Nodes is empty (default 2).
	InProcess int
	// Slots is the per-loopback-worker execution parallelism (default 2).
	Slots int
	// Trace, when set, receives the master's placement/transfer spans.
	Trace *trace.Trace
}

// ClusterDGEMM runs the tiled DGEMM task graph across worker nodes through
// the cluster master and verifies the distributed result against the local
// blocked reference — the end-to-end proof that shipped payloads, version
// caches and exactly-once apply compose correctly.
func ClusterDGEMM(cfg ClusterConfig) (*Result, error) {
	if cfg.N == 0 {
		cfg.N = 512
	}
	if cfg.Tile == 0 {
		cfg.Tile = 128
	}
	if cfg.InProcess <= 0 {
		cfg.InProcess = 2
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}

	nodes := make([]cluster.NodeConfig, 0, len(cfg.Nodes))
	if len(cfg.Nodes) > 0 {
		for i, addr := range cfg.Nodes {
			// Prefer the node's self-reported name so master spans and the
			// worker's own trace land in the same lane after pdltrace merge.
			name := fmt.Sprintf("node%d", i)
			if ctl, err := client.New(addr, client.WithRetry(0, 0)); err == nil {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				var info cluster.InfoResponse
				if err := ctl.GetJSON(ctx, cluster.PathInfo, &info); err == nil && info.Name != "" {
					name = info.Name
				}
				cancel()
			}
			nodes = append(nodes, cluster.NodeConfig{Name: name, Addr: addr})
		}
	} else {
		stop, started, err := startLoopbackWorkers(cfg.InProcess, cfg.Slots)
		if err != nil {
			return nil, err
		}
		defer stop()
		nodes = started
	}

	host := core.NewBuilder("cluster-master").Master("host", core.Arch("x86"), core.Qty(1))
	pl, err := host.Build()
	if err != nil {
		return nil, err
	}
	rt, err := taskrt.New(taskrt.Config{Platform: pl})
	if err != nil {
		return nil, err
	}
	mats := NewGemmMatrices(cfg.N, 42)
	if err := SubmitTiledGEMM(rt, cfg.N, cfg.Tile, mats); err != nil {
		return nil, err
	}

	m, err := cluster.NewMaster(cluster.Config{
		Nodes:          nodes,
		Trace:          cfg.Trace,
		HeartbeatEvery: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	rep, err := m.Run(rt)
	if err != nil {
		return nil, err
	}

	ref := blas.NewMatrix(cfg.N, cfg.N)
	if err := blas.GemmBlocked(mats.A, mats.B, ref, blas.DefaultBlock); err != nil {
		return nil, err
	}
	diff := blas.MaxDiff(ref, mats.C)
	if diff > 1e-8 {
		return nil, fmt.Errorf("experiments: distributed DGEMM wrong (maxdiff %g)", diff)
	}

	res := &Result{
		Name:    fmt.Sprintf("cluster: distributed tiled DGEMM n=%d tile=%d (%d nodes)", cfg.N, cfg.Tile, len(nodes)),
		Headers: []string{"node", "tasks", "busy_s", "util", "shipped_MB", "resubmits", "dead"},
	}
	for _, n := range rep.PerNode {
		util := 0.0
		if rep.MakespanSeconds > 0 {
			util = n.BusySeconds / rep.MakespanSeconds
		}
		res.AddRow(n.Name, fmt.Sprint(n.Tasks), f4(n.BusySeconds), f2(util),
			f2(float64(n.TransferBytes)/(1<<20)), fmt.Sprint(n.Resubmits), fmt.Sprint(n.Dead))
	}
	res.AddRow("total", fmt.Sprint(rep.Tasks), f4(rep.MakespanSeconds), "",
		f2(float64(rep.TransferBytes)/(1<<20)), fmt.Sprint(rep.Resubmissions), strings.Join(rep.DeadNodes, " "))
	res.Notes = append(res.Notes,
		fmt.Sprintf("result verified against local blocked GEMM (maxdiff %.2e)", diff),
		fmt.Sprintf("makespan %.4fs, %d transfers (%0.1f MB shipped)",
			rep.MakespanSeconds, rep.Transfers, float64(rep.TransferBytes)/(1<<20)))
	if rep.FailedAttempts > 0 || rep.Resubmissions > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("fault tolerance: %d failed attempts, %d task(s) retried, %d resubmission(s)",
			rep.FailedAttempts, rep.RetriedTasks, rep.Resubmissions))
	}
	return res, nil
}

// startLoopbackWorkers spins up in-process cluster workers on loopback
// listeners, returning their node configs and a stop function.
func startLoopbackWorkers(count, slots int) (stop func(), nodes []cluster.NodeConfig, err error) {
	var servers []*http.Server
	stop = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("w%d", i)
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name:     name,
			Codelets: ClusterCodelets(),
			Archs:    []string{"x86"},
			Slots:    slots,
		})
		if err != nil {
			stop()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &http.Server{Handler: w.Handler()}
		go srv.Serve(ln)
		servers = append(servers, srv)
		nodes = append(nodes, cluster.NodeConfig{Name: name, Addr: "http://" + ln.Addr().String()})
	}
	return stop, nodes, nil
}
