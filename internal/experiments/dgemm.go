package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/partition"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// dgemmCodelet mirrors the case study's DGEMM task interface: a GotoBLAS-
// like x86 kernel (runnable) and a CuBLAS-like gpu kernel (simulation-only).
func dgemmCodelet() *taskrt.Codelet {
	cl, err := taskrt.NewCodelet("dgemm",
		taskrt.Impl{Arch: "x86", Func: realGemmTile},
		taskrt.Impl{Arch: "gpu"},
	)
	if err != nil {
		panic(err) // static definition
	}
	return cl
}

// realGemmTile multiplies one tile triple in real mode: payloads are the
// A, B and C matrix views in access order.
func realGemmTile(tc *taskrt.TaskContext) error {
	a, okA := tc.Payload(0).(*blas.Matrix)
	b, okB := tc.Payload(1).(*blas.Matrix)
	c, okC := tc.Payload(2).(*blas.Matrix)
	if !okA || !okB || !okC {
		return fmt.Errorf("experiments: dgemm payloads are (%T,%T,%T)", tc.Payload(0), tc.Payload(1), tc.Payload(2))
	}
	return blas.GemmPacked(a, b, c, blas.DefaultBlock)
}

// SubmitTiledGEMM builds the StarPU-style tiled DGEMM task graph for
// C += A·B with n×n matrices and tile×tile tiles: one task per (i, j, k)
// tile triple, with read accesses on A(i,k) and B(k,j) and a readwrite
// access on C(i,j) (the k-chain on each C tile orders accumulation, exactly
// how the StarPU DGEMM of the paper's evaluation decomposes).
//
// When mats is nil the graph carries size-only handles (simulation); with
// mats the handles reference real matrix tile views.
func SubmitTiledGEMM(rt *taskrt.Runtime, n, tile int, mats *GemmMatrices) error {
	if n <= 0 || tile <= 0 || tile > n {
		return fmt.Errorf("experiments: bad gemm extent n=%d tile=%d", n, tile)
	}
	tiles, err := partition.Grid2D(n, n, tile, tile)
	if err != nil {
		return err
	}
	rows, cols := partition.GridDims(n, n, tile, tile)
	cl := dgemmCodelet()

	// One handle per tile of each matrix.
	handleFor := func(name string, t partition.Tile, m *blas.Matrix) *taskrt.Handle {
		var payload any
		if m != nil {
			payload = m.Sub(t.Row, t.Col, t.M, t.N)
		}
		return rt.NewHandle(
			fmt.Sprintf("%s[%d,%d]", name, t.I, t.J),
			int64(t.M)*int64(t.N)*8,
			payload,
		)
	}
	var mA, mB, mC *blas.Matrix
	if mats != nil {
		mA, mB, mC = mats.A, mats.B, mats.C
	}
	hA := make([]*taskrt.Handle, len(tiles))
	hB := make([]*taskrt.Handle, len(tiles))
	hC := make([]*taskrt.Handle, len(tiles))
	for idx, t := range tiles {
		hA[idx] = handleFor("A", t, mA)
		hB[idx] = handleFor("B", t, mB)
		hC[idx] = handleFor("C", t, mC)
	}
	at := func(h []*taskrt.Handle, i, j int) *taskrt.Handle { return h[i*cols+j] }

	// Build the whole graph first and submit it as one batch: dependency
	// derivation is identical to per-task Submit calls, but the runtime pays
	// the submission lifecycle synchronisation once for the rows·cols² tasks.
	graph := make([]*taskrt.Task, 0, rows*cols*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			for k := 0; k < cols; k++ {
				// Tile extents differ at the edges; flops follow the actual
				// tile triple.
				ta := tiles[i*cols+k]
				tb := tiles[k*cols+j]
				graph = append(graph, &taskrt.Task{
					Codelet: cl,
					Accesses: []taskrt.Access{
						taskrt.R(at(hA, i, k)),
						taskrt.R(at(hB, k, j)),
						taskrt.RW(at(hC, i, j)),
					},
					Flops: blas.FlopsGEMM(ta.M, tb.N, ta.N),
					Label: fmt.Sprintf("C[%d,%d]+=A[%d,%d]*B[%d,%d]", i, j, i, k, k, j),
				})
			}
		}
	}
	return rt.SubmitBatch(graph)
}

// GemmMatrices bundles real operands for real-mode tiled DGEMM.
type GemmMatrices struct {
	A, B, C *blas.Matrix
}

// NewGemmMatrices allocates and seeds n×n operands.
func NewGemmMatrices(n int, seed int64) *GemmMatrices {
	m := &GemmMatrices{A: blas.NewMatrix(n, n), B: blas.NewMatrix(n, n), C: blas.NewMatrix(n, n)}
	m.A.FillRandom(seed)
	m.B.FillRandom(seed + 1)
	return m
}

// SimDGEMM runs the tiled DGEMM graph in simulation on the given platform
// and returns the execution report.
func SimDGEMM(pl *core.Platform, n, tile int, scheduler string) (*taskrt.Report, error) {
	rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Sim, Scheduler: scheduler})
	if err != nil {
		return nil, err
	}
	if err := SubmitTiledGEMM(rt, n, tile, nil); err != nil {
		return nil, err
	}
	return rt.Run()
}

// RealDGEMM runs the tiled DGEMM graph on real goroutine workers under the
// default work-stealing dispatcher and verifies the numerical result against
// the serial kernel for small sizes.
func RealDGEMM(pl *core.Platform, n, tile, workers int, verify bool) (*taskrt.Report, error) {
	return realDGEMM(pl, n, tile, workers, verify, "", nil)
}

// RealDGEMMSched is RealDGEMM under an explicit real-engine scheduler
// ("eager", "ws" or "dmda"; empty selects the default).
func RealDGEMMSched(pl *core.Platform, n, tile, workers int, verify bool, sched string) (*taskrt.Report, error) {
	return realDGEMM(pl, n, tile, workers, verify, sched, nil)
}

// RealDGEMMWithTrace is RealDGEMM recording causal spans into tr (nil runs
// untraced) — the A/B pair behind the tracing-overhead benchmark at
// realistic task granularity, where tile kernels run for milliseconds and
// the per-event recording cost disappears into the noise.
func RealDGEMMWithTrace(pl *core.Platform, n, tile, workers int, verify bool, tr *trace.Trace) (*taskrt.Report, error) {
	return realDGEMM(pl, n, tile, workers, verify, "", tr)
}

func realDGEMM(pl *core.Platform, n, tile, workers int, verify bool, sched string, tr *trace.Trace) (*taskrt.Report, error) {
	rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Real, Scheduler: sched, Workers: workers, Trace: tr})
	if err != nil {
		return nil, err
	}
	mats := NewGemmMatrices(n, 42)
	if err := SubmitTiledGEMM(rt, n, tile, mats); err != nil {
		return nil, err
	}
	rep, err := rt.Run()
	if err != nil {
		return nil, err
	}
	if verify {
		ref := blas.NewMatrix(n, n)
		if err := blas.GemmBlocked(mats.A, mats.B, ref, blas.DefaultBlock); err != nil {
			return nil, err
		}
		if d := blas.MaxDiff(ref, mats.C); d > 1e-8 {
			return nil, fmt.Errorf("experiments: tiled result diverges from reference by %g", d)
		}
	}
	return rep, nil
}

// TraceGemmRun executes the real-mode tiled DGEMM on this host under the
// named scheduler (empty selects the default) with causal tracing enabled
// and returns the trace, annotated with the dispatcher, the selected GEMM
// micro-kernel ISA and the problem size — the artefact behind
// `pdlbench -exp gemm -trace out.json` and the README tracing walkthrough.
func TraceGemmRun(n, tile, workers int, verify bool, sched string) (*trace.Trace, *taskrt.Report, error) {
	pl, err := discover.Platform("this-host")
	if err != nil {
		return nil, nil, err
	}
	tr := trace.New()
	rep, err := realDGEMM(pl, n, tile, workers, verify, sched, tr)
	if err != nil {
		return nil, nil, err
	}
	tr.SetMeta("dispatcher", rep.Scheduler)
	tr.SetMeta("microkernel", blas.KernelISA())
	tr.SetMeta("n", strconv.Itoa(n))
	tr.SetMeta("tile", strconv.Itoa(tile))
	return tr, rep, nil
}
