// Package experiments contains the harnesses that regenerate the paper's
// evaluation (Figure 5) and the ablation studies documented in DESIGN.md.
// Each harness returns a Result table whose rows mirror what the paper
// reports; cmd/pdlbench and the benchmark suite print them.
package experiments

import (
	"fmt"
	"strings"
)

// Result is one experiment's output table.
type Result struct {
	Name    string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Table renders an aligned text table.
func (r *Result) Table() string {
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
