package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/discover"
)

func TestResultTable(t *testing.T) {
	r := &Result{Name: "demo", Headers: []string{"a", "bee"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Notes = append(r.Notes, "hello")
	s := r.Table()
	for _, want := range []string{"== demo ==", "a    bee", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestSubmitTiledGEMMValidation(t *testing.T) {
	pl := discover.MustPlatform("xeon-1core")
	if _, err := SimDGEMM(pl, 0, 64, "eager"); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := SimDGEMM(pl, 64, 128, "eager"); err == nil {
		t.Fatal("tile > n must fail")
	}
}

func TestSimDGEMMTaskCount(t *testing.T) {
	pl := discover.MustPlatform("xeon-1core")
	rep, err := SimDGEMM(pl, 1024, 256, "eager")
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 grid, k in 0..3: 64 tasks.
	if rep.Tasks != 64 {
		t.Fatalf("tasks = %d; want 64", rep.Tasks)
	}
}

func TestFigure5Shape(t *testing.T) {
	// Scaled down for test speed; the bench uses the paper's 8192.
	res, err := Figure5(Fig5Config{N: 2048, Tile: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	speedup := func(i int) float64 {
		v, err := strconv.ParseFloat(res.Rows[i][3], 64)
		if err != nil {
			t.Fatalf("parse speedup: %v", err)
		}
		return v
	}
	single, starpu, gpus := speedup(0), speedup(1), speedup(2)
	if single != 1.0 {
		t.Fatalf("single speedup = %g", single)
	}
	// The paper's shape: starpu well above single, starpu+2gpu well above
	// starpu.
	if starpu < 5 || starpu > 8.5 {
		t.Fatalf("starpu speedup = %g; want near-linear on 8 cores", starpu)
	}
	if gpus < starpu*1.5 {
		t.Fatalf("starpu+2gpu speedup = %g; want >> starpu (%g)", gpus, starpu)
	}
	// GPU series actually used the GPUs and moved data.
	if res.Rows[2][4] == "0" {
		t.Fatal("gpu series ran no gpu tasks")
	}
	if res.Rows[0][4] != "0" {
		t.Fatal("single series used gpus")
	}
}

func TestFigure5DefaultsApplied(t *testing.T) {
	cfg := Fig5Config{}
	cfg.defaults()
	if cfg.N != 8192 || cfg.Tile != 1024 || cfg.Scheduler != "dmda" {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestSchedulerSweep(t *testing.T) {
	res, err := SchedulerSweep(2048, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// dmda should beat or match eager on the heterogeneous box (eager
	// ignores transfer costs and device speed).
	get := func(i int) float64 {
		v, _ := strconv.ParseFloat(res.Rows[i][1], 64)
		return v
	}
	eager, dmda := get(0), get(2)
	if dmda > eager*1.10 {
		t.Fatalf("dmda (%g) much worse than eager (%g)", dmda, eager)
	}
}

func TestTileSweep(t *testing.T) {
	res, err := TileSweep(2048, []int{512, 1024, 4096}, "")
	if err != nil {
		t.Fatal(err)
	}
	// 4096 > n is skipped.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	res, err := BandwidthSweep(2048, 512, []float64{0.1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	get := func(i int) float64 {
		v, _ := strconv.ParseFloat(res.Rows[i][2], 64)
		return v
	}
	// More bandwidth never hurts.
	if !(get(0) >= get(1) && get(1) >= get(2)) {
		t.Fatalf("makespans not monotone in bandwidth: %g %g %g", get(0), get(1), get(2))
	}
}

func TestBandwidthSweepNeedsPCIe(t *testing.T) {
	pl := discover.MustPlatform("xeon-cpu")
	if err := scalePCIeBandwidth(pl, 2); err == nil {
		t.Fatal("platform without PCIe links must fail")
	}
}

func TestCrossover(t *testing.T) {
	res, err := Crossover([]int{256, 4096}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Large sizes must favour the GPUs.
	if res.Rows[1][3] != "2gpu" {
		t.Fatalf("winner at 4096 = %q", res.Rows[1][3])
	}
}

func TestRealDGEMMVerifies(t *testing.T) {
	pl := discover.MustPlatform("this-host")
	rep, err := RealDGEMM(pl, 128, 32, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 64 {
		t.Fatalf("tasks = %d", rep.Tasks)
	}
}

func TestRealCPUScalingSmall(t *testing.T) {
	res, err := RealCPUScaling(192, 48, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
