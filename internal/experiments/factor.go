package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// The tiled factorization experiments: right-looking Cholesky and LU
// (no pivoting) over partition.Grid2D tiles. Unlike the fork-join DGEMM
// graph, these DAGs have a deep k-chain — POTRF(k) gates the whole trailing
// update of step k, and POTRF(k+1) cannot start before SYRK(k+1,k) of step
// k finishes — so critical-path extraction and model-driven placement are
// exercised on the workload class the StarPU papers built them for.

// factorSlowRate is the synthetic extra-work rate of the "x86slow"
// architecture in the skewed-pool runs: every kernel additionally sleeps
// flops/factorSlowRate seconds, making the slow workers 1–2 orders of
// magnitude slower at tile granularity while keeping the numerics
// identical (the real kernel still runs, so results stay verifiable). The
// skew is deliberately sharp: it models an accelerator-class gap, where a
// blindly stolen trailing-update lands a critical-path task on a unit that
// needs tens of milliseconds for it, so model-aware (dmda) placement has
// something real to win over work stealing.
const factorSlowRate = 5e7

// factorSeed seeds the experiment matrices deterministically.
const factorSeed int64 = 99

// NewSPDMatrix returns a symmetric diagonally-dominant — hence positive
// definite — n×n matrix: off-diagonals in [-1, 1), diagonal = n.
func NewSPDMatrix(n int, seed int64) *blas.Matrix {
	m := blas.NewMatrix(n, n)
	m.FillRandom(seed)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			m.Set(j, i, m.At(i, j))
		}
		m.Set(i, i, float64(n))
	}
	return m
}

// NewDiagDominantMatrix returns a diagonally-dominant n×n matrix, stable
// for LU elimination without pivoting.
func NewDiagDominantMatrix(n int, seed int64) *blas.Matrix {
	m := blas.NewMatrix(n, n)
	m.FillRandom(seed)
	for i := 0; i < n; i++ {
		m.Set(i, i, float64(n))
	}
	return m
}

// payloadMatrix extracts payload i as a matrix view.
func payloadMatrix(tc *taskrt.TaskContext, i int) (*blas.Matrix, error) {
	m, ok := tc.Payload(i).(*blas.Matrix)
	if !ok {
		return nil, fmt.Errorf("experiments: %s payload %d is %T, want *blas.Matrix", tc.Task.Codelet.Name, i, tc.Payload(i))
	}
	return m, nil
}

// kernel1 adapts an in-place single-tile kernel (payload 0 = the RW tile).
func kernel1(f func(*blas.Matrix) error) func(*taskrt.TaskContext) error {
	return func(tc *taskrt.TaskContext) error {
		a, err := payloadMatrix(tc, 0)
		if err != nil {
			return err
		}
		return f(a)
	}
}

// kernel2 adapts a two-operand kernel (payload 0 read, payload 1 readwrite).
func kernel2(f func(_, _ *blas.Matrix) error) func(*taskrt.TaskContext) error {
	return func(tc *taskrt.TaskContext) error {
		a, err := payloadMatrix(tc, 0)
		if err != nil {
			return err
		}
		b, err := payloadMatrix(tc, 1)
		if err != nil {
			return err
		}
		return f(a, b)
	}
}

// kernel3 adapts a three-operand kernel (payloads 0, 1 read, 2 readwrite).
func kernel3(f func(_, _, _ *blas.Matrix) error) func(*taskrt.TaskContext) error {
	return func(tc *taskrt.TaskContext) error {
		a, err := payloadMatrix(tc, 0)
		if err != nil {
			return err
		}
		b, err := payloadMatrix(tc, 1)
		if err != nil {
			return err
		}
		c, err := payloadMatrix(tc, 2)
		if err != nil {
			return err
		}
		return f(a, b, c)
	}
}

// slowed wraps a kernel for the "x86slow" architecture: the real kernel
// runs (numerics stay verifiable), then the worker sleeps in proportion to
// task flops to emulate a slower processor.
func slowed(f func(*taskrt.TaskContext) error) func(*taskrt.TaskContext) error {
	return func(tc *taskrt.TaskContext) error {
		if err := f(tc); err != nil {
			return err
		}
		time.Sleep(time.Duration(tc.Task.Flops / factorSlowRate * float64(time.Second)))
		return nil
	}
}

// factorCodelet builds one factorization codelet with a fast x86 impl and a
// flops-proportionally slowed x86slow impl.
func factorCodelet(name string, f func(*taskrt.TaskContext) error) *taskrt.Codelet {
	cl, err := taskrt.NewCodelet(name,
		taskrt.Impl{Arch: "x86", Func: f},
		taskrt.Impl{Arch: "x86slow", Func: slowed(f)},
	)
	if err != nil {
		panic(err) // static definition
	}
	return cl
}

// cholCodelets returns the four tile operations of the right-looking tiled
// Cholesky. Payload order follows access order.
func cholCodelets() (potrf, trsm, syrk, gemm *taskrt.Codelet) {
	potrf = factorCodelet("potrf", kernel1(blas.Potrf))
	trsm = factorCodelet("trsm_rlt", kernel2(blas.TrsmRLT))
	syrk = factorCodelet("syrk_nt", kernel2(blas.SyrkNT))
	gemm = factorCodelet("gemm_nt", kernel3(blas.GemmNT))
	return
}

// luCodelets returns the four tile operations of the right-looking tiled LU
// without pivoting.
func luCodelets() (getrf, trsmRow, trsmCol, gemm *taskrt.Codelet) {
	getrf = factorCodelet("getrf", kernel1(blas.Getrf))
	trsmRow = factorCodelet("trsm_llu", kernel2(blas.TrsmLLUnit))
	trsmCol = factorCodelet("trsm_ru", kernel2(blas.TrsmRU))
	gemm = factorCodelet("gemm_sub", kernel3(blas.GemmSub))
	return
}

// factorHandles builds one handle per tile of the factored matrix (views
// into m when non-nil, size-only otherwise) and returns them with the grid
// dimensions.
func factorHandles(rt *taskrt.Runtime, n, tile int, m *blas.Matrix) ([]*taskrt.Handle, int, error) {
	if n <= 0 || tile <= 0 || tile > n {
		return nil, 0, fmt.Errorf("experiments: bad factor extent n=%d tile=%d", n, tile)
	}
	tiles, err := partition.Grid2D(n, n, tile, tile)
	if err != nil {
		return nil, 0, err
	}
	rows, cols := partition.GridDims(n, n, tile, tile)
	if rows != cols {
		return nil, 0, fmt.Errorf("experiments: factor grid %dx%d not square", rows, cols)
	}
	hs := make([]*taskrt.Handle, len(tiles))
	for idx, t := range tiles {
		var payload any
		if m != nil {
			payload = m.Sub(t.Row, t.Col, t.M, t.N)
		}
		hs[idx] = rt.NewHandle(
			fmt.Sprintf("A[%d,%d]", t.I, t.J),
			int64(t.M)*int64(t.N)*8,
			payload,
		)
	}
	return hs, rows, nil
}

// SubmitTiledCholesky builds the classic right-looking tiled Cholesky DAG
// over the lower triangle of the n×n matrix: for each step k, POTRF on the
// diagonal tile, TRSM down the panel, then SYRK/GEMM across the trailing
// submatrix. Dependencies fall out of the R/RW accesses — the k-chain
// POTRF(k) → TRSM(k+1,k) → SYRK(k+1,k) → POTRF(k+1) is the critical path.
// Task priorities decrease with k so schedulers that honour the hint
// advance the panel chain ahead of bulk trailing updates.
//
// When m is nil the graph carries size-only handles (simulation); with m
// the handles reference tile views and the kernels factor it in place.
func SubmitTiledCholesky(rt *taskrt.Runtime, n, tile int, m *blas.Matrix) error {
	hs, T, err := factorHandles(rt, n, tile, m)
	if err != nil {
		return err
	}
	tiles, _ := partition.Grid2D(n, n, tile, tile)
	at := func(i, j int) *taskrt.Handle { return hs[i*T+j] }
	dim := func(i int) int { return tiles[i*T+i].M }

	potrf, trsm, syrk, gemm := cholCodelets()
	var graph []*taskrt.Task
	for k := 0; k < T; k++ {
		age := T - k // steps remaining: earlier panels gate more work
		nk := dim(k)
		graph = append(graph, &taskrt.Task{
			Codelet:  potrf,
			Accesses: []taskrt.Access{taskrt.RW(at(k, k))},
			Flops:    blas.FlopsPOTRF(nk),
			Priority: 3*age + 2,
			Label:    fmt.Sprintf("POTRF[%d]", k),
		})
		for i := k + 1; i < T; i++ {
			graph = append(graph, &taskrt.Task{
				Codelet:  trsm,
				Accesses: []taskrt.Access{taskrt.R(at(k, k)), taskrt.RW(at(i, k))},
				Flops:    blas.FlopsTRSM(nk, dim(i)),
				Priority: 3*age + 1,
				Label:    fmt.Sprintf("TRSM[%d,%d]", i, k),
			})
		}
		for i := k + 1; i < T; i++ {
			mi := dim(i)
			graph = append(graph, &taskrt.Task{
				Codelet:  syrk,
				Accesses: []taskrt.Access{taskrt.R(at(i, k)), taskrt.RW(at(i, i))},
				Flops:    blas.FlopsSYRK(mi, nk),
				Priority: 3 * age,
				Label:    fmt.Sprintf("SYRK[%d,%d]", i, k),
			})
			for j := k + 1; j < i; j++ {
				graph = append(graph, &taskrt.Task{
					Codelet:  gemm,
					Accesses: []taskrt.Access{taskrt.R(at(i, k)), taskrt.R(at(j, k)), taskrt.RW(at(i, j))},
					Flops:    blas.FlopsGEMM(mi, dim(j), nk),
					Priority: 3 * age,
					Label:    fmt.Sprintf("GEMM[%d,%d,%d]", i, j, k),
				})
			}
		}
	}
	return rt.SubmitBatch(graph)
}

// SubmitTiledLU builds the right-looking tiled LU DAG (no pivoting) over
// the full n×n tile grid: GETRF on the diagonal, TRSM along the U row and
// the L column, GEMM across the trailing submatrix.
func SubmitTiledLU(rt *taskrt.Runtime, n, tile int, m *blas.Matrix) error {
	hs, T, err := factorHandles(rt, n, tile, m)
	if err != nil {
		return err
	}
	tiles, _ := partition.Grid2D(n, n, tile, tile)
	at := func(i, j int) *taskrt.Handle { return hs[i*T+j] }
	dim := func(i int) int { return tiles[i*T+i].M }

	getrf, trsmRow, trsmCol, gemm := luCodelets()
	var graph []*taskrt.Task
	for k := 0; k < T; k++ {
		age := T - k
		nk := dim(k)
		graph = append(graph, &taskrt.Task{
			Codelet:  getrf,
			Accesses: []taskrt.Access{taskrt.RW(at(k, k))},
			Flops:    blas.FlopsGETRF(nk),
			Priority: 3*age + 2,
			Label:    fmt.Sprintf("GETRF[%d]", k),
		})
		for j := k + 1; j < T; j++ {
			graph = append(graph, &taskrt.Task{
				Codelet:  trsmRow,
				Accesses: []taskrt.Access{taskrt.R(at(k, k)), taskrt.RW(at(k, j))},
				Flops:    blas.FlopsTRSM(nk, dim(j)),
				Priority: 3*age + 1,
				Label:    fmt.Sprintf("TRSM-U[%d,%d]", k, j),
			})
		}
		for i := k + 1; i < T; i++ {
			graph = append(graph, &taskrt.Task{
				Codelet:  trsmCol,
				Accesses: []taskrt.Access{taskrt.R(at(k, k)), taskrt.RW(at(i, k))},
				Flops:    blas.FlopsTRSM(nk, dim(i)),
				Priority: 3*age + 1,
				Label:    fmt.Sprintf("TRSM-L[%d,%d]", i, k),
			})
		}
		for i := k + 1; i < T; i++ {
			mi := dim(i)
			for j := k + 1; j < T; j++ {
				graph = append(graph, &taskrt.Task{
					Codelet:  gemm,
					Accesses: []taskrt.Access{taskrt.R(at(i, k)), taskrt.R(at(k, j)), taskrt.RW(at(i, j))},
					Flops:    blas.FlopsGEMM(mi, dim(j), nk),
					Priority: 3 * age,
					Label:    fmt.Sprintf("GEMM[%d,%d,%d]", i, j, k),
				})
			}
		}
	}
	return rt.SubmitBatch(graph)
}

// FactorRow is one measured factorization run.
type FactorRow struct {
	Kind            string  `json:"kind"`
	Pool            string  `json:"pool"`
	Scheduler       string  `json:"scheduler"`
	N               int     `json:"n"`
	Tile            int     `json:"tile"`
	Workers         int     `json:"workers"`
	Tasks           int     `json:"tasks"`
	Seconds         float64 `json:"seconds"`
	CritPathSeconds float64 `json:"critpath_seconds"`
	CritPathTasks   int     `json:"critpath_tasks"`
	MaxAbsErr       float64 `json:"max_abs_err"`
	FastShare       float64 `json:"fast_share,omitempty"`
	Steals          int     `json:"steals"`
}

// runFactor executes one tiled factorization in real mode, verifies the
// result against the serial reference factorization of the same matrix when
// verify is set, and reports the traced critical path.
func runFactor(kind string, pl *core.Platform, workers int, sched string, n, tile int, models *perfmodel.Store, verify bool) (*taskrt.Report, trace.CriticalPath, float64, error) {
	tr := trace.New()
	rt, err := taskrt.New(taskrt.Config{
		Platform: pl, Mode: taskrt.Real, Scheduler: sched,
		Workers: workers, Models: models, Trace: tr,
	})
	if err != nil {
		return nil, trace.CriticalPath{}, 0, err
	}
	var m *blas.Matrix
	switch kind {
	case "cholesky":
		m = NewSPDMatrix(n, factorSeed)
		err = SubmitTiledCholesky(rt, n, tile, m)
	case "lu":
		m = NewDiagDominantMatrix(n, factorSeed)
		err = SubmitTiledLU(rt, n, tile, m)
	default:
		return nil, trace.CriticalPath{}, 0, fmt.Errorf("experiments: unknown factorization %q", kind)
	}
	if err != nil {
		return nil, trace.CriticalPath{}, 0, err
	}
	rep, err := rt.Run()
	if err != nil {
		return nil, trace.CriticalPath{}, 0, err
	}
	maxErr := 0.0
	if verify {
		// The serial reference factors a clone of the same seeded matrix;
		// regions neither path touches compare exactly, factored regions to
		// rounding. The issue's acceptance bar is 1e-9 at n=512.
		ref := func() *blas.Matrix {
			if kind == "cholesky" {
				return NewSPDMatrix(n, factorSeed)
			}
			return NewDiagDominantMatrix(n, factorSeed)
		}()
		if kind == "cholesky" {
			err = blas.Potrf(ref)
		} else {
			err = blas.Getrf(ref)
		}
		if err != nil {
			return nil, trace.CriticalPath{}, 0, fmt.Errorf("experiments: reference %s: %w", kind, err)
		}
		maxErr = blas.MaxDiff(m, ref)
		if maxErr > 1e-9 {
			return nil, trace.CriticalPath{}, 0, fmt.Errorf("experiments: tiled %s diverges from reference by %g", kind, maxErr)
		}
	}
	return rep, tr.CriticalPath(), maxErr, nil
}

// RealFactor runs one tiled factorization (kind "cholesky" or "lu") on the
// discovered this-host platform under the named scheduler and returns the
// report with the result verified against the serial reference.
func RealFactor(kind string, n, tile, workers int, sched string) (*taskrt.Report, trace.CriticalPath, error) {
	pl, err := discover.Platform("this-host")
	if err != nil {
		return nil, trace.CriticalPath{}, err
	}
	rep, cp, _, err := runFactor(kind, pl, workers, sched, n, tile, nil, true)
	return rep, cp, err
}

// heteroFactorPlatform builds the skewed pool: one fast x86 worker plus
// slowWorkers x86slow workers.
func heteroFactorPlatform(slowWorkers int) (*core.Platform, error) {
	return core.NewBuilder("factor-hetero").
		Master("fast", core.Arch("x86"), core.Qty(1)).
		Master("slow", core.Arch("x86slow"), core.Qty(slowWorkers)).
		Build()
}

// warmFactorModels calibrates per-codelet performance models by timing each
// fast kernel once at tile granularity, then records fast and slow rates at
// sizes bracketing the real task flops — so dmda places from history on its
// first placement instead of discovering the 1-fast+N-slow skew online.
func warmFactorModels(kind string, tile int) (*perfmodel.Store, error) {
	models := perfmodel.NewStore()
	type cal struct {
		codelet string
		flops   float64
		run     func() error
	}
	var cals []cal
	if kind == "cholesky" {
		spd := NewSPDMatrix(tile, factorSeed)
		panel := blas.NewMatrix(tile, tile)
		panel.FillRandom(factorSeed + 1)
		fac := NewSPDMatrix(tile, factorSeed+2)
		if err := blas.Potrf(fac); err != nil {
			return nil, err
		}
		other := blas.NewMatrix(tile, tile)
		other.FillRandom(factorSeed + 3)
		acc := NewSPDMatrix(tile, factorSeed+4)
		cals = []cal{
			{"potrf", blas.FlopsPOTRF(tile), func() error { return blas.Potrf(NewSPDMatrix(tile, factorSeed)) }},
			{"trsm_rlt", blas.FlopsTRSM(tile, tile), func() error { return blas.TrsmRLT(fac, panel.Clone()) }},
			{"syrk_nt", blas.FlopsSYRK(tile, tile), func() error { return blas.SyrkNT(panel, spd.Clone()) }},
			{"gemm_nt", blas.FlopsGEMM(tile, tile, tile), func() error { return blas.GemmNT(panel, other, acc.Clone()) }},
		}
	} else {
		dd := NewDiagDominantMatrix(tile, factorSeed)
		fac := NewDiagDominantMatrix(tile, factorSeed+1)
		if err := blas.Getrf(fac); err != nil {
			return nil, err
		}
		panel := blas.NewMatrix(tile, tile)
		panel.FillRandom(factorSeed + 2)
		other := blas.NewMatrix(tile, tile)
		other.FillRandom(factorSeed + 3)
		cals = []cal{
			{"getrf", blas.FlopsGETRF(tile), func() error { return blas.Getrf(NewDiagDominantMatrix(tile, factorSeed)) }},
			{"trsm_llu", blas.FlopsTRSM(tile, tile), func() error { return blas.TrsmLLUnit(fac, panel.Clone()) }},
			{"trsm_ru", blas.FlopsTRSM(tile, tile), func() error { return blas.TrsmRU(fac, panel.Clone()) }},
			{"gemm_sub", blas.FlopsGEMM(tile, tile, tile), func() error { return blas.GemmSub(panel, other, dd.Clone()) }},
		}
	}
	for _, c := range cals {
		start := time.Now()
		if err := c.run(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-6
		}
		rate := c.flops / elapsed // fast-arch flops/s for this kernel
		for _, scale := range []float64{0.5, 1, 2} {
			sz := c.flops * scale
			if err := models.Model(c.codelet, "x86").Record(sz, sz/rate); err != nil {
				return nil, err
			}
			if err := models.Model(c.codelet, "x86slow").Record(sz, sz/rate+sz/factorSlowRate); err != nil {
				return nil, err
			}
		}
	}
	return models, nil
}

// FactorExperiment sweeps ws vs dmda for one factorization kind on the
// homogeneous this-host pool and on the skewed 1-fast+slowWorkers pool,
// verifying numerics on every run and reporting the traced critical path.
// Timed rows keep the best of reps repetitions.
func FactorExperiment(kind string, n, tile, workers, slowWorkers, reps int) (*Result, []FactorRow, error) {
	if reps < 1 {
		reps = 1
	}
	host, err := discover.Platform("this-host")
	if err != nil {
		return nil, nil, err
	}
	hetero, err := heteroFactorPlatform(slowWorkers)
	if err != nil {
		return nil, nil, err
	}
	type pool struct {
		name    string
		pl      *core.Platform
		workers int
		warm    bool
	}
	pools := []pool{
		{fmt.Sprintf("smp%d", workers), host, workers, false},
		{fmt.Sprintf("1fast+%dslow", slowWorkers), hetero, 1 + slowWorkers, true},
	}
	res := &Result{
		Name:    fmt.Sprintf("Ext-K: tiled %s (n=%d, tile=%d)", kind, n, tile),
		Headers: []string{"pool", "sched", "tasks", "makespan_s", "critpath_s", "crit_tasks", "fast_share", "steals", "max_abs_err"},
		Notes: []string{
			"critpath_s is the traced longest dependency chain: the makespan lower bound",
			"every run factors the real matrix; max_abs_err compares against the serial reference",
		},
	}
	var rows []FactorRow
	for _, p := range pools {
		var models *perfmodel.Store
		if p.warm {
			if models, err = warmFactorModels(kind, tile); err != nil {
				return nil, nil, err
			}
		}
		for _, sched := range []string{"ws", "dmda"} {
			var best *FactorRow
			for r := 0; r < reps; r++ {
				rep, cp, maxErr, err := runFactor(kind, p.pl, p.workers, sched, n, tile, models, true)
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %s %s/%s: %w", kind, p.name, sched, err)
				}
				row := FactorRow{
					Kind: kind, Pool: p.name, Scheduler: sched,
					N: n, Tile: tile, Workers: p.workers, Tasks: rep.Tasks,
					Seconds:         rep.MakespanSeconds,
					CritPathSeconds: cp.Length,
					CritPathTasks:   len(cp.TaskIDs),
					MaxAbsErr:       maxErr,
					Steals:          rep.Steals,
				}
				if p.warm {
					if u, ok := rep.UnitByID("worker0"); ok && rep.Tasks > 0 {
						row.FastShare = float64(u.Tasks) / float64(rep.Tasks)
					}
				}
				if best == nil || row.Seconds < best.Seconds {
					best = &row
				}
			}
			rows = append(rows, *best)
			fastShare := "-"
			if p.warm {
				fastShare = f2(best.FastShare)
			}
			res.AddRow(p.name, sched, fmt.Sprint(best.Tasks), f4(best.Seconds),
				f4(best.CritPathSeconds), fmt.Sprint(best.CritPathTasks),
				fastShare, fmt.Sprint(best.Steals), fmt.Sprintf("%.2e", best.MaxAbsErr))
		}
	}
	return res, rows, nil
}

// FactorBenchData is the JSON artefact of `pdlbench -exp cholesky|lu|factor
// -out BENCH_factor.json`.
type FactorBenchData struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	Rows       []FactorRow `json:"rows"`
}

// WriteJSON writes the bench rows to path.
func (d *FactorBenchData) WriteJSON(path string) error {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
