package experiments

import (
	"testing"

	"repro/internal/discover"
	"repro/internal/taskrt"
)

// cholTasks is the tiled Cholesky task-count formula for a T×T tile grid:
// T POTRF + T(T-1)/2 TRSM + T(T-1)/2 SYRK + T(T-1)(T-2)/6 GEMM.
func cholTasks(t int) int {
	return t + t*(t-1)/2 + t*(t-1)/2 + t*(t-1)*(t-2)/6
}

// luTasks is the tiled LU task-count formula: T GETRF + T(T-1) TRSM +
// (T-1)T(2T-1)/6 GEMM.
func luTasks(t int) int {
	return t + t*(t-1) + (t-1)*t*(2*t-1)/6
}

func TestSubmitTiledCholeskySimGraphShape(t *testing.T) {
	pl, err := discover.Platform("xeon-cpu")
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int{2, 4, 6} {
		rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Sim, Scheduler: "dmda"})
		if err != nil {
			t.Fatal(err)
		}
		if err := SubmitTiledCholesky(rt, T*32, 32, nil); err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks != cholTasks(T) {
			t.Fatalf("T=%d: %d tasks, want %d", T, rep.Tasks, cholTasks(T))
		}
	}
}

func TestSubmitTiledLUSimGraphShape(t *testing.T) {
	pl, err := discover.Platform("xeon-cpu")
	if err != nil {
		t.Fatal(err)
	}
	for _, T := range []int{2, 4, 6} {
		rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Sim, Scheduler: "dmda"})
		if err != nil {
			t.Fatal(err)
		}
		if err := SubmitTiledLU(rt, T*32, 32, nil); err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tasks != luTasks(T) {
			t.Fatalf("T=%d: %d tasks, want %d", T, rep.Tasks, luTasks(T))
		}
	}
}

func TestRealTiledCholeskyVerifies(t *testing.T) {
	for _, sched := range []string{"ws", "dmda"} {
		rep, cp, err := RealFactor("cholesky", 256, 64, 4, sched)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if want := cholTasks(4); rep.Tasks != want {
			t.Fatalf("%s: %d tasks, want %d", sched, rep.Tasks, want)
		}
		// The k-chain POTRF→TRSM→SYRK→POTRF gives a path of at least T
		// tasks; the traced critical path must see it.
		if cp.Length <= 0 || len(cp.TaskIDs) < 4 {
			t.Fatalf("%s: degenerate critical path %+v", sched, cp)
		}
		if cp.Length > rep.MakespanSeconds*1.001 {
			t.Fatalf("%s: critical path %.6fs exceeds makespan %.6fs", sched, cp.Length, rep.MakespanSeconds)
		}
	}
}

func TestRealTiledLUVerifies(t *testing.T) {
	rep, cp, err := RealFactor("lu", 256, 64, 4, "dmda")
	if err != nil {
		t.Fatal(err)
	}
	if want := luTasks(4); rep.Tasks != want {
		t.Fatalf("%d tasks, want %d", rep.Tasks, want)
	}
	if cp.Length <= 0 || len(cp.TaskIDs) < 4 {
		t.Fatalf("degenerate critical path %+v", cp)
	}
}

// TestTiledCholeskyAcceptanceBar is the issue's acceptance criterion:
// max-abs error < 1e-9 at n=512 (runFactor fails the run when the bar is
// missed, so success here is the assertion).
func TestTiledCholeskyAcceptanceBar(t *testing.T) {
	if testing.Short() {
		t.Skip("n=512 factorization in -short mode")
	}
	if _, _, err := RealFactor("cholesky", 512, 128, 0, "dmda"); err != nil {
		t.Fatal(err)
	}
}

func TestFactorExperimentSkewedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("hetero sweep in -short mode")
	}
	res, rows, err := FactorExperiment("cholesky", 192, 64, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // {smp, hetero} × {ws, dmda}
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MaxAbsErr > 1e-9 {
			t.Fatalf("%s/%s error %g above bar", r.Pool, r.Scheduler, r.MaxAbsErr)
		}
		if r.CritPathSeconds <= 0 {
			t.Fatalf("%s/%s missing critical path", r.Pool, r.Scheduler)
		}
	}
	if len(res.Rows) != 4 {
		t.Fatalf("result table has %d rows", len(res.Rows))
	}
}
