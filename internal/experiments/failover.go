package experiments

import (
	"fmt"
	"strings"

	"repro/internal/discover"
	"repro/internal/dynamic"
	"repro/internal/query"
)

// DynamicFailover is experiment Ext-F, exercising the paper's future-work
// direction (Section VI): platform descriptors that track dynamically
// changing resources. The DGEMM workload is re-planned against tracker
// snapshots as GPUs drop out of the machine: first the GTX480 fails, then
// the GTX285, leaving the CPU-only configuration. Each re-plan is a full
// pre-selection + scheduling pass over the *current* descriptor — no
// application change.
func DynamicFailover(n, tile int) (*Result, error) {
	pl, err := discover.Platform("xeon-2gpu")
	if err != nil {
		return nil, err
	}
	tracker, err := dynamic.NewTracker(pl)
	if err != nil {
		return nil, err
	}
	var events []string
	tracker.OnChange(func(e dynamic.Event) {
		events = append(events, fmt.Sprintf("v%d:%s:%s", e.Version, e.Kind, e.PU))
	})

	res := &Result{
		Name:    fmt.Sprintf("Ext-F: dynamic failover, DGEMM %d tile %d (dmda) on tracked xeon-2gpu", n, tile),
		Headers: []string{"stage", "online-gpus", "makespan[s]", "gpu-tasks"},
	}
	stages := []struct {
		label string
		fail  string // unit to take offline before this stage ("" = none)
	}{
		{"all-online", ""},
		{"gtx480-failed", "dev0"},
		{"both-gpus-failed", "dev1"},
	}
	for _, stage := range stages {
		if stage.fail != "" {
			if err := tracker.SetOffline(stage.fail); err != nil {
				return nil, err
			}
		}
		snap, err := tracker.Snapshot()
		if err != nil {
			return nil, err
		}
		rep, err := SimDGEMM(snap, n, tile, "dmda")
		if err != nil {
			return nil, err
		}
		gpus := len(query.MustSelect(snap, "//Worker[ARCHITECTURE=gpu]"))
		res.AddRow(stage.label, fmt.Sprint(gpus), f4(rep.MakespanSeconds), fmt.Sprint(rep.TasksOnArch("gpu")))
	}
	res.Notes = append(res.Notes, "tracker events: "+strings.Join(events, " "))
	return res, nil
}
