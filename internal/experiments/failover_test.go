package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestDynamicFailover(t *testing.T) {
	res, err := DynamicFailover(2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	makespan := func(i int) float64 {
		v, err := strconv.ParseFloat(res.Rows[i][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Losing GPUs monotonically degrades the makespan.
	if !(makespan(0) < makespan(1) && makespan(1) < makespan(2)) {
		t.Fatalf("makespans not monotone under failures: %g %g %g",
			makespan(0), makespan(1), makespan(2))
	}
	// Stage gpu counts: 2, 1, 0.
	if res.Rows[0][1] != "2" || res.Rows[1][1] != "1" || res.Rows[2][1] != "0" {
		t.Fatalf("gpu counts = %v %v %v", res.Rows[0][1], res.Rows[1][1], res.Rows[2][1])
	}
	// Final stage runs no gpu tasks.
	if res.Rows[2][3] != "0" {
		t.Fatalf("cpu-only stage ran gpu tasks: %v", res.Rows[2])
	}
	// Tracker events surfaced.
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "v1:offline:dev0") {
		t.Fatalf("notes = %v", res.Notes)
	}
}
