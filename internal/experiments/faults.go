package experiments

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/discover"
	"repro/internal/dynamic"
	"repro/internal/taskrt"
)

// FaultTolerance is Ext-H: the Figure-5 DGEMM under in-flight GPU loss. Both
// GPUs of the xeon-2gpu platform are killed at 25% of the clean run's
// makespan; the runtime must retry the interrupted tiles on the CPU variant,
// blacklist the dead devices (mirrored into a dynamic.Tracker) and finish the
// computation — graceful degradation toward the CPU-only line instead of
// failure.
//
// The simulated rows are bit-for-bit deterministic for a fixed seed; the
// real-mode verification row runs a small DGEMM on this host with injected
// worker faults and checks the numerical result against the serial kernel,
// printing only deterministic cells (wall-clock times vary run to run).
func FaultTolerance(n, tile int, seed int64) (*Result, error) {
	if n <= 0 {
		n = 4096
	}
	if tile <= 0 {
		tile = 1024
	}
	if seed == 0 {
		seed = 1
	}

	// Clean heterogeneous run: the baseline the faulty run degrades from.
	gpuPl, err := discover.Platform("xeon-2gpu")
	if err != nil {
		return nil, err
	}
	clean, err := SimDGEMM(gpuPl, n, tile, "dmda")
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}

	// CPU-only run: the paper's "starpu" line, the floor graceful
	// degradation should approach when every GPU is gone.
	cpuPl, err := discover.Platform("xeon-cpu")
	if err != nil {
		return nil, err
	}
	cpuOnly, err := SimDGEMM(cpuPl, n, tile, "dmda")
	if err != nil {
		return nil, fmt.Errorf("cpu-only run: %w", err)
	}

	// Faulty run: both GPUs die at 25% of the clean makespan, with the
	// blacklist mirrored into a dynamic platform tracker.
	crashAt := 0.25 * clean.MakespanSeconds
	faultPl, err := discover.Platform("xeon-2gpu")
	if err != nil {
		return nil, err
	}
	tracker, err := dynamic.NewTracker(faultPl)
	if err != nil {
		return nil, err
	}
	var trackerLog []string
	tracker.OnChange(func(e dynamic.Event) {
		trackerLog = append(trackerLog, fmt.Sprintf("v%d %s %s", e.Version, e.Kind, e.PU))
	})
	rt, err := taskrt.New(taskrt.Config{
		Platform:  faultPl,
		Mode:      taskrt.Sim,
		Scheduler: "dmda",
		Seed:      seed,
		Faults: &taskrt.FaultPlan{Seed: seed, Events: []taskrt.FaultEvent{
			{Unit: "dev0", AtTime: crashAt},
			{Unit: "dev1", AtTime: crashAt},
		}},
		Tracker: tracker,
	})
	if err != nil {
		return nil, err
	}
	if err := SubmitTiledGEMM(rt, n, tile, nil); err != nil {
		return nil, err
	}
	faulty, err := rt.Run()
	if err != nil {
		return nil, fmt.Errorf("faulty run: %w", err)
	}

	// Real-mode verification: a small DGEMM on this host with injected
	// worker faults must still produce the correct product.
	realOK, realErr := realFaultVerify()

	res := &Result{
		Name: fmt.Sprintf("Ext-H: fault tolerance, DGEMM %d tile %d (dmda, seed %d); both GPUs lost at 25%% progress (t=%.4fs)",
			n, tile, seed, crashAt),
		Headers: []string{"series", "platform", "makespan[s]", "vs-clean", "retried", "blacklisted", "gpu-tasks", "cpu-tasks"},
	}
	row := func(label, platform string, rep *taskrt.Report) {
		res.AddRow(label, platform, f4(rep.MakespanSeconds),
			f2(rep.MakespanSeconds/clean.MakespanSeconds),
			fmt.Sprint(rep.RetriedTasks), fmt.Sprint(rep.BlacklistedUnits()),
			fmt.Sprint(rep.TasksOnArch("gpu")), fmt.Sprint(rep.TasksOnArch("x86")))
	}
	row("clean", "xeon-2gpu", clean)
	row("gpu-loss", "xeon-2gpu", faulty)
	row("cpu-only", "xeon-cpu", cpuOnly)
	verified := "ok"
	if realErr != nil {
		verified = "FAILED: " + realErr.Error()
	}
	res.AddRow("real-verify", "this-host", "-", "-", "-", "-", "-", "-")

	res.Notes = append(res.Notes,
		fmt.Sprintf("degradation factor %.2fx vs clean; cpu-only floor is %.2fx — the run degrades gracefully instead of failing",
			faulty.MakespanSeconds/clean.MakespanSeconds, cpuOnly.MakespanSeconds/clean.MakespanSeconds),
		fmt.Sprintf("faulty run: %d failed attempts, %d tasks retried, blacklisted %v",
			faulty.FailedAttempts, faulty.RetriedTasks, faulty.Blacklisted),
		fmt.Sprintf("dynamic tracker observed: %v", trackerLog),
		fmt.Sprintf("real-verify: DGEMM %d tile %d with injected worker faults, result vs serial reference: %s", realVerifyN, realVerifyTile, verified),
	)
	if !realOK {
		return res, fmt.Errorf("experiments: real-mode fault verification failed: %w", realErr)
	}
	return res, nil
}

// Real-mode verification extents: big enough that the worker pool genuinely
// interleaves (each tile kernel runs for milliseconds), small enough to keep
// the serial reference check cheap.
const (
	realVerifyN    = 512
	realVerifyTile = 128
)

// realFaultVerify runs the real-mode leg of Ext-H: a tiled DGEMM on goroutine
// workers with one worker killed permanently and one transiently, verified
// against the serial kernel. Wall-clock behaviour is nondeterministic (the
// injected faults may not even fire if the surviving workers drain the queue
// first), so callers must not print measured numbers from this run.
func realFaultVerify() (bool, error) {
	pl, err := discover.Platform("this-host")
	if err != nil {
		return false, err
	}
	rt, err := taskrt.New(taskrt.Config{
		Platform: pl,
		Mode:     taskrt.Real,
		Workers:  4,
		Faults: &taskrt.FaultPlan{Events: []taskrt.FaultEvent{
			{Unit: "worker1", AfterTasks: 1},
			{Unit: "worker2", AfterTasks: 2, RecoverAfter: 0.01},
		}},
	})
	if err != nil {
		return false, err
	}
	mats := NewGemmMatrices(realVerifyN, 42)
	if err := SubmitTiledGEMM(rt, realVerifyN, realVerifyTile, mats); err != nil {
		return false, err
	}
	if _, err := rt.Run(); err != nil {
		return false, err
	}
	ref := blas.NewMatrix(realVerifyN, realVerifyN)
	if err := blas.GemmBlocked(mats.A, mats.B, ref, blas.DefaultBlock); err != nil {
		return false, err
	}
	if d := blas.MaxDiff(ref, mats.C); d > 1e-8 {
		return false, fmt.Errorf("result diverges from serial reference by %g", d)
	}
	return true, nil
}
