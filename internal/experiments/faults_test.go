package experiments

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/discover"
	"repro/internal/taskrt"
)

func TestFaultToleranceDeterministicAndGraceful(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		res, err := FaultTolerance(1024, 256, 1)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Table()
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("run %d output differs:\n%s\n---\n%s", i, out, first)
		}
	}
	// The gpu-loss row must show retried tasks and both GPUs blacklisted.
	res, err := FaultTolerance(1024, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	var gpuLoss, clean, cpuOnly []string
	for _, row := range res.Rows {
		switch row[0] {
		case "gpu-loss":
			gpuLoss = row
		case "clean":
			clean = row
		case "cpu-only":
			cpuOnly = row
		}
	}
	if gpuLoss == nil || clean == nil || cpuOnly == nil {
		t.Fatalf("missing rows: %v", res.Rows)
	}
	if gpuLoss[4] == "0" {
		t.Fatalf("gpu-loss retried = %s, want > 0", gpuLoss[4])
	}
	if gpuLoss[5] != "2" {
		t.Fatalf("gpu-loss blacklisted = %s, want 2", gpuLoss[5])
	}
	// Graceful degradation: slower than clean, no slower than the CPU floor.
	var mClean, mLoss, mCPU float64
	if _, err := fmt.Sscanf(clean[2]+" "+gpuLoss[2]+" "+cpuOnly[2], "%f %f %f", &mClean, &mLoss, &mCPU); err != nil {
		t.Fatal(err)
	}
	if mLoss < mClean || mLoss > mCPU*1.05 {
		t.Fatalf("makespans clean=%.4f loss=%.4f cpu=%.4f: loss must sit between clean and the cpu-only floor", mClean, mLoss, mCPU)
	}
	if !strings.Contains(strings.Join(res.Notes, "\n"), "offline dev0") {
		t.Fatalf("tracker log missing from notes: %v", res.Notes)
	}
}

// Property (satellite 6): any seeded random fault plan that leaves worker0
// alone — i.e. at least one surviving CPU worker — still completes the
// real-mode tiled DGEMM and the result matches the serial reference.
func TestQuickRealDGEMMSurvivesRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("real-mode property test")
	}
	const (
		n    = 256
		tile = 64
	)
	f := func(seed int64) bool {
		plan := taskrt.RandomFaultPlan(seed, []string{"worker1", "worker2"}, 0.05)
		pl := discover.MustPlatform("this-host")
		rt, err := taskrt.New(taskrt.Config{
			Platform: pl,
			Mode:     taskrt.Real,
			Workers:  3,
			Faults:   plan,
			Retry:    taskrt.RetryPolicy{MaxAttempts: 10, TaskTimeout: 0.05},
		})
		if err != nil {
			t.Log(err)
			return false
		}
		mats := NewGemmMatrices(n, seed)
		if err := SubmitTiledGEMM(rt, n, tile, mats); err != nil {
			t.Log(err)
			return false
		}
		if _, err := rt.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := blas.NewMatrix(n, n)
		if err := blas.GemmBlocked(mats.A, mats.B, ref, blas.DefaultBlock); err != nil {
			t.Log(err)
			return false
		}
		if d := blas.MaxDiff(ref, mats.C); d > 1e-8 {
			t.Logf("seed %d: diverges by %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
