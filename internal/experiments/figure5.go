package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/taskrt"
)

// Fig5Config parameterises the Figure 5 reproduction. The paper's setting is
// N=8192 double precision, a dual-socket quad-core Xeon X5550 and two Nvidia
// GPUs (GTX480 + GTX285), with StarPU as the runtime.
type Fig5Config struct {
	N         int    // matrix extent (default 8192)
	Tile      int    // tile extent (default 1024)
	Scheduler string // taskrt scheduler (default "dmda", StarPU's cost-model policy)
}

func (c *Fig5Config) defaults() {
	if c.N == 0 {
		c.N = 8192
	}
	if c.Tile == 0 {
		c.Tile = 1024
	}
	if c.Scheduler == "" {
		c.Scheduler = "dmda"
	}
}

// Fig5Series are the three bars of the paper's Figure 5.
var Fig5Series = []struct {
	Label    string // the paper's series name
	Platform string // catalog platform it runs on
}{
	{"single", "xeon-1core"},
	{"starpu", "xeon-cpu"},
	{"starpu+2gpu", "xeon-2gpu"},
}

// Figure5 regenerates the paper's Figure 5: speedup of the translated DGEMM
// programs over the single-threaded input program. All three series run the
// same task graph; only the PDL platform description changes — which is the
// paper's headline claim ("both output programs were created using
// different PDL descriptions without modification of the serial input
// program").
func Figure5(cfg Fig5Config) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Name:    fmt.Sprintf("Figure 5: DGEMM %dx%d speedup vs single-threaded input (tile %d, sched %s)", cfg.N, cfg.N, cfg.Tile, cfg.Scheduler),
		Headers: []string{"series", "platform", "makespan[s]", "speedup", "gpu-tasks", "transfers[MB]"},
	}
	var base *taskrt.Report
	for _, s := range Fig5Series {
		pl, err := discover.Platform(s.Platform)
		if err != nil {
			return nil, err
		}
		rep, err := SimDGEMM(pl, cfg.N, cfg.Tile, cfg.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("series %s: %w", s.Label, err)
		}
		if base == nil {
			base = rep
		}
		res.AddRow(
			s.Label,
			s.Platform,
			f4(rep.MakespanSeconds),
			f2(rep.Speedup(base)),
			fmt.Sprint(rep.TasksOnArch("gpu")),
			f2(float64(rep.TransferBytes)/(1<<20)),
		)
	}
	res.Notes = append(res.Notes,
		"paper shape: starpu+2gpu > starpu > single = 1.0; absolute factors depend on calibration (see EXPERIMENTS.md)")
	return res, nil
}

// SchedulerSweep is ablation Ext-A: the same heterogeneous DGEMM under each
// scheduling policy.
func SchedulerSweep(n, tile int, scheds []string) (*Result, error) {
	if len(scheds) == 0 {
		scheds = []string{"eager", "ws", "dmda", "heft", "random"}
	}
	res := &Result{
		Name:    fmt.Sprintf("Ext-A: scheduler comparison, DGEMM %d tile %d on xeon-2gpu", n, tile),
		Headers: []string{"scheduler", "makespan[s]", "gpu-tasks", "cpu-tasks", "transfers[MB]"},
	}
	for _, s := range scheds {
		pl, err := discover.Platform("xeon-2gpu")
		if err != nil {
			return nil, err
		}
		rep, err := SimDGEMM(pl, n, tile, s)
		if err != nil {
			return nil, err
		}
		res.AddRow(s, f4(rep.MakespanSeconds),
			fmt.Sprint(rep.TasksOnArch("gpu")),
			fmt.Sprint(rep.TasksOnArch("x86")),
			f2(float64(rep.TransferBytes)/(1<<20)))
	}
	return res, nil
}

// TileSweep is ablation Ext-B: granularity versus makespan.
func TileSweep(n int, tiles []int, sched string) (*Result, error) {
	if len(tiles) == 0 {
		tiles = []int{256, 512, 1024, 2048, 4096}
	}
	if sched == "" {
		sched = "dmda"
	}
	res := &Result{
		Name:    fmt.Sprintf("Ext-B: tile-size sweep, DGEMM %d on xeon-2gpu (%s)", n, sched),
		Headers: []string{"tile", "tasks", "makespan[s]", "transfers[MB]"},
	}
	for _, tile := range tiles {
		if tile > n {
			continue
		}
		pl, err := discover.Platform("xeon-2gpu")
		if err != nil {
			return nil, err
		}
		rep, err := SimDGEMM(pl, n, tile, sched)
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprint(tile), fmt.Sprint(rep.Tasks),
			f4(rep.MakespanSeconds), f2(float64(rep.TransferBytes)/(1<<20)))
	}
	return res, nil
}

// BandwidthSweep is ablation Ext-C: how host↔device bandwidth moves the
// GPU advantage. Factors scale the PCIe BANDWIDTH property in the PDL
// document itself — the descriptor, not the code, defines the machine.
func BandwidthSweep(n, tile int, factors []float64) (*Result, error) {
	if len(factors) == 0 {
		factors = []float64{0.1, 0.25, 0.5, 1, 2, 4}
	}
	cpuPl, err := discover.Platform("xeon-cpu")
	if err != nil {
		return nil, err
	}
	cpuRep, err := SimDGEMM(cpuPl, n, tile, "dmda")
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:    fmt.Sprintf("Ext-C: PCIe bandwidth sweep, DGEMM %d tile %d (dmda); cpu-only baseline %.4fs", n, tile, cpuRep.MakespanSeconds),
		Headers: []string{"bw-factor", "bw[GB/s]", "makespan[s]", "speedup-vs-cpu", "gpu-tasks"},
	}
	for _, f := range factors {
		pl, err := discover.Platform("xeon-2gpu")
		if err != nil {
			return nil, err
		}
		if err := scalePCIeBandwidth(pl, f); err != nil {
			return nil, err
		}
		rep, err := SimDGEMM(pl, n, tile, "dmda")
		if err != nil {
			return nil, err
		}
		res.AddRow(f2(f), f2(5*f), f4(rep.MakespanSeconds),
			f2(rep.Speedup(cpuRep)), fmt.Sprint(rep.TasksOnArch("gpu")))
	}
	res.Notes = append(res.Notes, "speedup-vs-cpu < 1 means the GPUs stopped paying off at that bandwidth")
	return res, nil
}

// scalePCIeBandwidth rewrites the BANDWIDTH properties of every PCIe link in
// the platform description.
func scalePCIeBandwidth(pl *core.Platform, factor float64) error {
	found := false
	var rewrite func(pu *core.PU)
	rewrite = func(pu *core.PU) {
		for i := range pu.Links {
			ic := &pu.Links[i]
			if ic.Type != core.ICTypePCIe {
				continue
			}
			bw, ok := ic.Descriptor.Float("BANDWIDTH")
			if !ok {
				continue
			}
			ic.Descriptor.Set(core.Property{
				Name: "BANDWIDTH", Value: fmt.Sprintf("%g", bw*factor), Unit: "GB/s", Fixed: true,
			})
			found = true
		}
		for _, c := range pu.Children {
			rewrite(c)
		}
	}
	for _, m := range pl.Masters {
		rewrite(m)
	}
	if !found {
		return fmt.Errorf("experiments: platform %q has no PCIe links to scale", pl.Name)
	}
	return nil
}

// Crossover is ablation Ext-D: the problem size at which the GPU platform
// overtakes the CPU platform.
func Crossover(sizes []int, tile int) (*Result, error) {
	if len(sizes) == 0 {
		sizes = []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	}
	res := &Result{
		Name:    "Ext-D: crossover, DGEMM cpu-only vs +2gpu (dmda)",
		Headers: []string{"N", "cpu[s]", "2gpu[s]", "winner"},
	}
	for _, n := range sizes {
		t := tile
		if t <= 0 || t > n {
			t = n
			if t > 1024 {
				t = 1024
			}
		}
		cpuPl, err := discover.Platform("xeon-cpu")
		if err != nil {
			return nil, err
		}
		cpuRep, err := SimDGEMM(cpuPl, n, t, "dmda")
		if err != nil {
			return nil, err
		}
		gpuPl, err := discover.Platform("xeon-2gpu")
		if err != nil {
			return nil, err
		}
		gpuRep, err := SimDGEMM(gpuPl, n, t, "dmda")
		if err != nil {
			return nil, err
		}
		winner := "cpu"
		if gpuRep.MakespanSeconds < cpuRep.MakespanSeconds {
			winner = "2gpu"
		}
		res.AddRow(fmt.Sprint(n), f4(cpuRep.MakespanSeconds), f4(gpuRep.MakespanSeconds), winner)
	}
	return res, nil
}

// RealCPUScaling is Ext-E: the CPU series of Figure 5 reproduced with real
// goroutine workers on this machine (no simulation).
func RealCPUScaling(n, tile int, workers []int) (*Result, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	res := &Result{
		Name:    fmt.Sprintf("Ext-E: real-mode CPU scaling, DGEMM %d tile %d on this host", n, tile),
		Headers: []string{"workers", "wall[s]", "speedup"},
	}
	var base float64
	for _, w := range workers {
		pl, err := discover.Platform("this-host")
		if err != nil {
			return nil, err
		}
		rep, err := RealDGEMM(pl, n, tile, w, false)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = rep.MakespanSeconds
		}
		res.AddRow(fmt.Sprint(w), f4(rep.MakespanSeconds), f2(base/rep.MakespanSeconds))
	}
	return res, nil
}
