package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// Ext-I: the measurable bench pipeline for the hot-path overhaul. Two
// instruments in one harness:
//
//   - kernel throughput: GFLOP/s of the GEMM kernel ladder (naive, blocked,
//     packed, packed-parallel) at one problem size, so the packed
//     micro-kernel's win over the scalar blocked baseline is a number, not a
//     claim; and
//   - dispatch overhead: wall time per task for a graph of trivial tasks
//     under the "eager" single-queue dispatcher versus the "ws" work-stealing
//     dispatcher, with steal counts — isolating scheduler cost from kernel
//     cost (the tasks do no work).
//
// Results serialise to BENCH_gemm.json via WriteJSON so before/after runs
// diff mechanically.

// KernelPoint is one kernel measurement.
type KernelPoint struct {
	Kernel     string  `json:"kernel"`
	N          int     `json:"n"`
	Block      int     `json:"block"`
	Workers    int     `json:"workers,omitempty"`    // parallel kernels only
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"` // scaling-matrix points only
	Seconds    float64 `json:"seconds"`              // best of reps
	GFlops     float64 `json:"gflops"`
}

// DispatchPoint is one scheduler-overhead measurement: a graph of `Tasks`
// independent no-op tasks executed on `Workers` real workers. Seconds and
// MicrosPerTask time Run only — the dispatch cost proper; submission cost is
// its own column so the batched submission path has an A/B number too.
type DispatchPoint struct {
	Scheduler           string  `json:"scheduler"`
	Workers             int     `json:"workers"`
	Tasks               int     `json:"tasks"`
	Seconds             float64 `json:"seconds"` // best-of-reps Run makespan
	MicrosPerTask       float64 `json:"us_per_task"`
	SubmitMicrosPerTask float64 `json:"submit_us_per_task,omitempty"`
	Steals              int     `json:"steals"`
}

// HeteroPoint is one heterogeneous-dispatch measurement: `Tasks` independent
// simulated kernels on one fast worker plus `SlowWorkers` workers of an
// architecture heteroSlowdown× slower — the setting where model-driven
// placement (dmda) should beat blind work-stealing (ws).
type HeteroPoint struct {
	Scheduler   string  `json:"scheduler"`
	FastWorkers int     `json:"fast_workers"`
	SlowWorkers int     `json:"slow_workers"`
	Tasks       int     `json:"tasks"`
	Seconds     float64 `json:"seconds"`    // best-of-reps makespan
	FastShare   float64 `json:"fast_share"` // fraction of tasks the fast worker executed
	Steals      int     `json:"steals"`
}

// HeteroTransferPoint is one transfer-heavy heterogeneous measurement:
// chains of dependent tasks, each chain updating its own multi-megabyte
// handle, on a two-node platform (fast master + slow master joined by a
// bandwidth/latency-annotated interconnect). The harness charges real sleep
// time whenever a chain's data crosses the interconnect, so a scheduler that
// ignores locality pays its migrations in wall clock.
type HeteroTransferPoint struct {
	Scheduler      string  `json:"scheduler"`
	Chains         int     `json:"chains"`
	Length         int     `json:"length"` // tasks per chain
	BytesPerHandle int64   `json:"bytes_per_handle"`
	Seconds        float64 `json:"seconds"`    // best-of-reps makespan
	FastShare      float64 `json:"fast_share"` // fraction executed on the fast node
	CrossNode      int     `json:"cross_node"` // executions that moved their chain's data
	Steals         int     `json:"steals"`
}

// GemmBenchData is the serialised form of one Ext-I run.
type GemmBenchData struct {
	Experiment     string                `json:"experiment"`  // "gemm-bench"
	MicroKernel    string                `json:"microkernel"` // "avx2" or "go"
	GOMAXPROCS     int                   `json:"gomaxprocs"`
	Kernels        []KernelPoint         `json:"kernels"`
	KernelMatrix   []KernelPoint         `json:"kernel_matrix,omitempty"` // workers×n scaling sweep
	Dispatch       []DispatchPoint       `json:"dispatch"`
	Hetero         []HeteroPoint         `json:"hetero,omitempty"`
	HeteroTransfer []HeteroTransferPoint `json:"hetero_transfer,omitempty"`
}

// bestOf runs f reps times and returns the fastest wall time. Minimum (not
// mean) because scheduling noise only ever adds time.
func bestOf(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// GemmKernelBench measures the kernel ladder at one size. The naive kernel
// is skipped above n=512: at ~1 GFLOP/s it would dominate the harness
// runtime without adding information.
func GemmKernelBench(n, block, workers, reps int) ([]KernelPoint, error) {
	if reps < 1 {
		reps = 3
	}
	a, b := blas.NewMatrix(n, n), blas.NewMatrix(n, n)
	a.FillRandom(1)
	b.FillRandom(2)
	c := blas.NewMatrix(n, n)
	flops := blas.FlopsGEMM(n, n, n)
	type entry struct {
		name    string
		workers int
		run     func() error
	}
	entries := []entry{
		{"blocked", 0, func() error { return blas.GemmBlocked(a, b, c, block) }},
		{"packed", 0, func() error { return blas.GemmPacked(a, b, c, block) }},
		{"packed-parallel", workers, func() error { return blas.GemmPackedParallel(a, b, c, block, workers) }},
	}
	if n <= 512 {
		entries = append([]entry{{"naive", 0, func() error { return blas.GemmNaive(a, b, c) }}}, entries...)
	}
	var out []KernelPoint
	for _, e := range entries {
		d, err := bestOf(reps, func() error {
			c.Zero()
			return e.run()
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: gemm bench %s: %w", e.name, err)
		}
		out = append(out, KernelPoint{
			Kernel: e.name, N: n, Block: block, Workers: e.workers,
			Seconds: d.Seconds(), GFlops: flops / d.Seconds() / 1e9,
		})
	}
	return out, nil
}

// DispatchBench measures real-engine dispatch overhead: a fork graph of one
// no-op root with tasks-1 no-op dependents on `workers` workers under each
// scheduler. Task bodies are empty, so the timed Run makespan is almost
// entirely queue traffic — push, wake, take, steal. Platform discovery, task
// construction and submission happen outside the timed region (submission is
// timed separately into SubmitMicrosPerTask). The fork shape makes the
// work-stealing path observable: completing the root releases every
// dependent onto one worker's deque in a single batch, and the other workers
// must steal to participate.
//
// Scheduler-name suffixes select harness variants, so variants appear as A/B
// rows in one table: "+trace" (e.g. "ws+trace") runs the point with causal
// tracing enabled; "+batch" (e.g. "ws+batch") submits through SubmitBatch
// instead of a Submit loop.
func DispatchBench(tasks, workers, reps int, scheds ...string) ([]DispatchPoint, error) {
	if reps < 1 {
		reps = 3
	}
	if len(scheds) == 0 {
		scheds = []string{"eager", "ws"}
	}
	noop, err := taskrt.NewCodelet("noop", taskrt.Impl{
		Arch: "x86",
		Func: func(*taskrt.TaskContext) error { return nil },
	})
	if err != nil {
		return nil, err
	}
	var out []DispatchPoint
	for _, name := range scheds {
		sched := name
		var traced, batched bool
		for {
			if s, ok := strings.CutSuffix(sched, "+trace"); ok {
				traced, sched = true, s
				continue
			}
			if s, ok := strings.CutSuffix(sched, "+batch"); ok {
				batched, sched = true, s
				continue
			}
			break
		}
		var steals int
		var bestRun, bestSubmit time.Duration
		for r := 0; r < reps; r++ {
			pl, err := discover.Platform("this-host")
			if err != nil {
				return nil, err
			}
			cfg := taskrt.Config{
				Platform: pl, Mode: taskrt.Real, Scheduler: sched, Workers: workers,
			}
			if traced {
				cfg.Trace = trace.New()
			}
			rt, err := taskrt.New(cfg)
			if err != nil {
				return nil, err
			}
			graph := make([]*taskrt.Task, 0, tasks)
			root := &taskrt.Task{Codelet: noop, Label: "root"}
			graph = append(graph, root)
			for i := 1; i < tasks; i++ {
				graph = append(graph, &taskrt.Task{
					Codelet: noop,
					Label:   fmt.Sprintf("noop%d", i),
					After:   []*taskrt.Task{root},
				})
			}
			t0 := time.Now()
			if batched {
				err = rt.SubmitBatch(graph)
			} else {
				for _, t := range graph {
					if err = rt.Submit(t); err != nil {
						break
					}
				}
			}
			submit := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("experiments: dispatch bench %s: %w", name, err)
			}
			t1 := time.Now()
			rep, err := rt.Run()
			runD := time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("experiments: dispatch bench %s: %w", name, err)
			}
			if bestRun == 0 || runD < bestRun {
				bestRun, steals = runD, rep.Steals
			}
			if bestSubmit == 0 || submit < bestSubmit {
				bestSubmit = submit
			}
		}
		out = append(out, DispatchPoint{
			Scheduler: name, Workers: workers, Tasks: tasks,
			Seconds:             bestRun.Seconds(),
			MicrosPerTask:       bestRun.Seconds() / float64(tasks) * 1e6,
			SubmitMicrosPerTask: bestSubmit.Seconds() / float64(tasks) * 1e6,
			Steals:              steals,
		})
	}
	return out, nil
}

// heteroSlowdown is the speed ratio between the fast and slow simulated
// architectures in HeteroDispatchBench.
const heteroSlowdown = 20.0

// HeteroDispatchBench measures scheduler makespan on a skewed heterogeneous
// pool: one fast "x86" worker plus slowWorkers workers of an "x86slow"
// architecture that runs every kernel heteroSlowdown× slower (simulated by
// sleeping in proportion to task flops, so the measurement is pure placement
// quality, not kernel throughput). Performance models for both architectures
// are pre-warmed, so dmda places from history immediately; ws routes blindly
// and pays for every task a slow worker grabs near the end of the run.
func HeteroDispatchBench(tasks, slowWorkers, reps int, scheds ...string) ([]HeteroPoint, error) {
	if reps < 1 {
		reps = 3
	}
	if len(scheds) == 0 {
		scheds = []string{"ws", "dmda"}
	}
	// 2 ms on the fast arch, 40 ms on the slow one: big enough that Go's
	// sleep granularity (~1 ms under load) does not flatten the 20× ratio.
	const flops = 2e9
	kernel := func(scale float64) func(*taskrt.TaskContext) error {
		return func(tc *taskrt.TaskContext) error {
			time.Sleep(time.Duration(tc.Task.Flops / 1e12 * scale * float64(time.Second)))
			return nil
		}
	}
	cl, err := taskrt.NewCodelet("hetero",
		taskrt.Impl{Arch: "x86", Func: kernel(1)},
		taskrt.Impl{Arch: "x86slow", Func: kernel(heteroSlowdown)})
	if err != nil {
		return nil, err
	}
	pl, err := core.NewBuilder("hetero").
		Master("fast", core.Arch("x86"), core.Qty(1)).
		Master("slow", core.Arch("x86slow"), core.Qty(slowWorkers)).
		Build()
	if err != nil {
		return nil, err
	}
	var out []HeteroPoint
	for _, sched := range scheds {
		var fastShare float64
		var steals int
		run := func() error {
			models := perfmodel.NewStore()
			for _, sz := range []float64{1e8, 2e8, 4e8} {
				if err := models.Model("hetero", "x86").Record(sz, sz/1e12); err != nil {
					return err
				}
				if err := models.Model("hetero", "x86slow").Record(sz, sz/1e12*heteroSlowdown); err != nil {
					return err
				}
			}
			rt, err := taskrt.New(taskrt.Config{
				Platform: pl, Mode: taskrt.Real, Scheduler: sched,
				Workers: 1 + slowWorkers, Models: models,
			})
			if err != nil {
				return err
			}
			for i := 0; i < tasks; i++ {
				if err := rt.Submit(&taskrt.Task{Codelet: cl, Flops: flops}); err != nil {
					return err
				}
			}
			rep, err := rt.Run()
			if err != nil {
				return err
			}
			steals = rep.Steals
			if u, ok := rep.UnitByID("worker0"); ok && tasks > 0 {
				fastShare = float64(u.Tasks) / float64(tasks)
			}
			return nil
		}
		d, err := bestOf(reps, run)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero dispatch bench %s: %w", sched, err)
		}
		out = append(out, HeteroPoint{
			Scheduler: sched, FastWorkers: 1, SlowWorkers: slowWorkers,
			Tasks: tasks, Seconds: d.Seconds(), FastShare: fastShare, Steals: steals,
		})
	}
	return out, nil
}

// KernelScalingMatrix sweeps the packed-parallel kernel over a workers×n
// grid, setting GOMAXPROCS to the worker count for each point — the
// multi-core scaling record the single-setting kernel ladder cannot show
// (the historical harness ran everything at whatever GOMAXPROCS it
// inherited, which on constrained hosts silently measured 1-core numbers).
// GOMAXPROCS is restored before returning.
func KernelScalingMatrix(ns, workerSets []int, reps int) ([]KernelPoint, error) {
	if reps < 1 {
		reps = 1
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var out []KernelPoint
	for _, n := range ns {
		a, b := blas.NewMatrix(n, n), blas.NewMatrix(n, n)
		a.FillRandom(1)
		b.FillRandom(2)
		c := blas.NewMatrix(n, n)
		flops := blas.FlopsGEMM(n, n, n)
		for _, w := range workerSets {
			runtime.GOMAXPROCS(w)
			d, err := bestOf(reps, func() error {
				c.Zero()
				return blas.GemmPackedParallel(a, b, c, blas.DefaultBlock, w)
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: kernel matrix n=%d w=%d: %w", n, w, err)
			}
			out = append(out, KernelPoint{
				Kernel: "packed-parallel", N: n, Block: blas.DefaultBlock,
				Workers: w, GOMAXPROCS: w,
				Seconds: d.Seconds(), GFlops: flops / d.Seconds() / 1e9,
			})
		}
	}
	return out, nil
}

// TransferHeteroBench measures placement quality when data movement costs
// real time: `chains` independent chains of `length` dependent tasks, each
// chain read-modify-writing its own bytesPerHandle-sized handle, on a
// two-node platform — one fast x86 master and slowWorkers x86slow workers
// (transferSlowdown× slower), joined by a PCIe link with declared bandwidth
// and latency. The kernel sleeps its compute time plus, whenever the
// executing node differs from the node that last wrote the chain's handle, a
// transfer time derived from the same declared link the engine's
// interconnect model reads — so a scheduler that migrates chains pays in
// wall clock exactly what the model predicted. Data-aware dmda anchors
// chains to data-resident nodes and splits load by modelled speed; ws
// steals blindly and re-pays the interconnect on every migration.
func TransferHeteroBench(chains, length, slowWorkers, reps int, scheds ...string) ([]HeteroTransferPoint, error) {
	if reps < 1 {
		reps = 2
	}
	if len(scheds) == 0 {
		scheds = []string{"ws", "dmda"}
	}
	const (
		bytesPerHandle   = int64(4 << 20)
		flops            = 2e9 // 2 ms on the fast arch at the 1e12 scale
		transferSlowdown = 3.0
		linkGBps         = 0.5 // 4 MiB / 0.5 GB/s ≈ 8 ms per migration
		linkLatMicros    = 200.0
	)
	pl, err := core.NewBuilder("hetero-xfer").
		Master("fast", core.Arch("x86"), core.Qty(1)).
		Master("slow", core.Arch("x86slow"), core.Qty(slowWorkers)).
		Link(core.ICTypePCIe, "fast", "slow", core.Bandwidth(linkGBps), core.Latency(linkLatMicros)).
		Build()
	if err != nil {
		return nil, err
	}
	// Wall-clock transfer cost mirrors the engine's interconnect model over
	// the same declared route, so the modelled charge and the paid price
	// agree by construction.
	route, err := pl.Route("fast", "slow")
	if err != nil {
		return nil, fmt.Errorf("experiments: transfer hetero: %w", err)
	}
	var xferSec float64
	for i := range route {
		lat, _ := route[i].LatencySeconds()
		bw, ok := route[i].BandwidthBytesPerSec()
		if !ok || bw <= 0 {
			return nil, fmt.Errorf("experiments: transfer hetero: link without bandwidth")
		}
		xferSec += lat + float64(bytesPerHandle)/bw
	}
	xfer := time.Duration(xferSec * float64(time.Second))

	var out []HeteroTransferPoint
	for _, sched := range scheds {
		var fastShare float64
		var steals, crossNode int
		run := func() error {
			var cross, fastTasks atomic.Int64
			// lastNode[c] is the node that last wrote chain c's handle; data
			// starts on node 0 (the fast master — host RAM), matching the
			// engine's handle-home default.
			lastNode := make([]atomic.Int32, chains)
			kernel := func(node int32, scale float64) func(*taskrt.TaskContext) error {
				return func(tc *taskrt.TaskContext) error {
					ci := tc.Payload(0).(int)
					d := time.Duration(tc.Task.Flops / 1e12 * scale * float64(time.Second))
					if lastNode[ci].Swap(node) != node {
						d += xfer
						cross.Add(1)
					}
					if node == 0 {
						fastTasks.Add(1)
					}
					time.Sleep(d)
					return nil
				}
			}
			cl, err := taskrt.NewCodelet("chain",
				taskrt.Impl{Arch: "x86", Func: kernel(0, 1)},
				taskrt.Impl{Arch: "x86slow", Func: kernel(1, transferSlowdown)})
			if err != nil {
				return err
			}
			models := perfmodel.NewStore()
			for _, sz := range []float64{1e9, 2e9, 4e9} {
				if err := models.Model("chain", "x86").Record(sz, sz/1e12); err != nil {
					return err
				}
				if err := models.Model("chain", "x86slow").Record(sz, sz/1e12*transferSlowdown); err != nil {
					return err
				}
			}
			rt, err := taskrt.New(taskrt.Config{
				Platform: pl, Mode: taskrt.Real, Scheduler: sched,
				Workers: 1 + slowWorkers, Models: models,
			})
			if err != nil {
				return err
			}
			graph := make([]*taskrt.Task, 0, chains*length)
			for c := 0; c < chains; c++ {
				h := rt.NewHandle(fmt.Sprintf("chain%d", c), bytesPerHandle, c)
				for i := 0; i < length; i++ {
					graph = append(graph, &taskrt.Task{
						Codelet: cl, Flops: flops,
						Accesses: []taskrt.Access{taskrt.RW(h)},
					})
				}
			}
			if err := rt.SubmitBatch(graph); err != nil {
				return err
			}
			rep, err := rt.Run()
			if err != nil {
				return err
			}
			steals = rep.Steals
			crossNode = int(cross.Load())
			fastShare = float64(fastTasks.Load()) / float64(chains*length)
			return nil
		}
		d, err := bestOf(reps, run)
		if err != nil {
			return nil, fmt.Errorf("experiments: transfer hetero bench %s: %w", sched, err)
		}
		out = append(out, HeteroTransferPoint{
			Scheduler: sched, Chains: chains, Length: length,
			BytesPerHandle: bytesPerHandle,
			Seconds:        d.Seconds(), FastShare: fastShare,
			CrossNode: crossNode, Steals: steals,
		})
	}
	return out, nil
}

// GemmBench runs Ext-I: the kernel ladder at extent n plus the dispatch
// overhead A/B. workers <= 0 takes GOMAXPROCS; dispatch always uses at least
// 4 workers so stealing has victims even on small hosts. matrix additionally
// runs the workers×n kernel scaling sweep (minutes of extra kernel time, so
// it is opt-in).
func GemmBench(n, workers int, matrix bool) (*GemmBenchData, error) {
	if n <= 0 {
		n = 1024
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	kernels, err := GemmKernelBench(n, blas.DefaultBlock, workers, 3)
	if err != nil {
		return nil, err
	}
	dw := workers
	if dw < 4 {
		dw = 4
	}
	// "ws+trace" repeats the work-stealing point with causal tracing on, so
	// every BENCH_gemm.json carries the tracing-overhead A/B; "+batch" rows
	// repeat a scheduler with batched submission; "dmda" rows keep the
	// model-driven dispatcher as standing overhead rows.
	dispatch, err := DispatchBench(2000, dw, 3,
		"eager", "ws", "ws+batch", "ws+trace", "dmda", "dmda+batch")
	if err != nil {
		return nil, err
	}
	// Skewed-pool placement quality: ws versus dmda at realistic (ms-scale)
	// task granularity on one fast plus three slow workers.
	hetero, err := HeteroDispatchBench(120, 3, 3, "ws", "dmda")
	if err != nil {
		return nil, err
	}
	// Transfer-heavy placement quality: chains with multi-megabyte working
	// sets on a two-node platform, where migrations cost wall-clock time.
	heteroXfer, err := TransferHeteroBench(16, 8, 3, 2, "ws", "dmda")
	if err != nil {
		return nil, err
	}
	data := &GemmBenchData{
		Experiment:     "gemm-bench",
		MicroKernel:    blas.KernelISA(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Kernels:        kernels,
		Dispatch:       dispatch,
		Hetero:         hetero,
		HeteroTransfer: heteroXfer,
	}
	if matrix {
		km, err := KernelScalingMatrix([]int{1024, 2048, 4096}, []int{2, 4, 8}, 1)
		if err != nil {
			return nil, err
		}
		data.KernelMatrix = km
	}
	return data, nil
}

// BenchCheckRow compares one fresh dispatch measurement against the
// committed baseline row it re-ran.
type BenchCheckRow struct {
	Scheduler  string  `json:"scheduler"`
	Tasks      int     `json:"tasks"`
	Workers    int     `json:"workers"`
	BaselineUS float64 `json:"baseline_us_per_task"`
	FreshUS    float64 `json:"fresh_us_per_task"`
	Ratio      float64 `json:"ratio"`
	Regressed  bool    `json:"regressed"`
}

// BenchCheck re-runs the dispatch benchmark for every scheduler row in a
// committed BENCH baseline file and flags rows whose fresh µs/task exceeds
// the baseline by more than tolerance (e.g. 0.15 = +15%). It is the
// regression tripwire behind `make bench-check`: deliberately noisy-tolerant
// (best-of-reps on both sides, generous threshold) so it reports real
// slowdowns, not scheduler jitter.
func BenchCheck(baselinePath string, reps int, tolerance float64) ([]BenchCheckRow, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base GemmBenchData
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("experiments: bench-check: %s: %w", baselinePath, err)
	}
	if len(base.Dispatch) == 0 {
		return nil, fmt.Errorf("experiments: bench-check: %s has no dispatch rows", baselinePath)
	}
	var rows []BenchCheckRow
	for _, bp := range base.Dispatch {
		fresh, err := DispatchBench(bp.Tasks, bp.Workers, reps, bp.Scheduler)
		if err != nil {
			return nil, err
		}
		f := fresh[0]
		ratio := 0.0
		if bp.MicrosPerTask > 0 {
			ratio = f.MicrosPerTask / bp.MicrosPerTask
		}
		rows = append(rows, BenchCheckRow{
			Scheduler: bp.Scheduler, Tasks: bp.Tasks, Workers: bp.Workers,
			BaselineUS: bp.MicrosPerTask, FreshUS: f.MicrosPerTask,
			Ratio: ratio, Regressed: ratio > 1+tolerance,
		})
	}
	return rows, nil
}

// BenchCheckResult renders check rows as the usual experiment table and
// returns the list of regressed scheduler names.
func BenchCheckResult(rows []BenchCheckRow, tolerance float64) (*Result, []string) {
	res := &Result{
		Name:    fmt.Sprintf("bench-check: dispatch µs/task vs baseline (threshold +%.0f%%)", tolerance*100),
		Headers: []string{"scheduler", "config", "base us", "fresh us", "ratio", "verdict"},
	}
	var regressed []string
	for _, r := range rows {
		verdict := "ok"
		if r.Regressed {
			verdict = "REGRESSED"
			regressed = append(regressed, r.Scheduler)
		}
		res.AddRow(r.Scheduler,
			fmt.Sprintf("tasks=%d w=%d", r.Tasks, r.Workers),
			f2(r.BaselineUS), f2(r.FreshUS), f2(r.Ratio), verdict)
	}
	return res, regressed
}

// WriteJSON writes the run to path (the BENCH_gemm.json artefact).
func (g *GemmBenchData) WriteJSON(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Result renders the run as the usual experiment table.
func (g *GemmBenchData) Result() *Result {
	res := &Result{
		Name:    fmt.Sprintf("Ext-I: GEMM kernel + dispatch overhead (microkernel=%s, GOMAXPROCS=%d)", g.MicroKernel, g.GOMAXPROCS),
		Headers: []string{"bench", "config", "wall[s]", "GFLOP/s", "us/task", "steals"},
	}
	var blocked, packed float64
	for _, k := range g.Kernels {
		cfg := fmt.Sprintf("n=%d b=%d", k.N, k.Block)
		if k.Workers > 0 {
			cfg += fmt.Sprintf(" w=%d", k.Workers)
		}
		res.AddRow("kernel/"+k.Kernel, cfg, f4(k.Seconds), f2(k.GFlops), "-", "-")
		switch k.Kernel {
		case "blocked":
			blocked = k.GFlops
		case "packed":
			packed = k.GFlops
		}
	}
	for _, k := range g.KernelMatrix {
		res.AddRow("matrix/"+k.Kernel,
			fmt.Sprintf("n=%d w=%d maxprocs=%d", k.N, k.Workers, k.GOMAXPROCS),
			f4(k.Seconds), f2(k.GFlops), "-", "-")
	}
	for _, d := range g.Dispatch {
		cfg := fmt.Sprintf("tasks=%d w=%d", d.Tasks, d.Workers)
		if d.SubmitMicrosPerTask > 0 {
			cfg += fmt.Sprintf(" submit=%.2fus", d.SubmitMicrosPerTask)
		}
		res.AddRow("dispatch/"+d.Scheduler, cfg,
			f4(d.Seconds), "-", f2(d.MicrosPerTask), fmt.Sprint(d.Steals))
	}
	for _, h := range g.Hetero {
		res.AddRow("hetero/"+h.Scheduler,
			fmt.Sprintf("tasks=%d w=%d+%dslow fastshare=%.2f", h.Tasks, h.FastWorkers, h.SlowWorkers, h.FastShare),
			f4(h.Seconds), "-", "-", fmt.Sprint(h.Steals))
	}
	for _, h := range g.HeteroTransfer {
		res.AddRow("hetero-xfer/"+h.Scheduler,
			fmt.Sprintf("chains=%dx%d %dMiB fastshare=%.2f cross=%d",
				h.Chains, h.Length, h.BytesPerHandle>>20, h.FastShare, h.CrossNode),
			f4(h.Seconds), "-", "-", fmt.Sprint(h.Steals))
	}
	if blocked > 0 && packed > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("packed/blocked kernel speedup: %.2fx", packed/blocked))
	}
	return res
}
