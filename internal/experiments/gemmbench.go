package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/perfmodel"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// Ext-I: the measurable bench pipeline for the hot-path overhaul. Two
// instruments in one harness:
//
//   - kernel throughput: GFLOP/s of the GEMM kernel ladder (naive, blocked,
//     packed, packed-parallel) at one problem size, so the packed
//     micro-kernel's win over the scalar blocked baseline is a number, not a
//     claim; and
//   - dispatch overhead: wall time per task for a graph of trivial tasks
//     under the "eager" single-queue dispatcher versus the "ws" work-stealing
//     dispatcher, with steal counts — isolating scheduler cost from kernel
//     cost (the tasks do no work).
//
// Results serialise to BENCH_gemm.json via WriteJSON so before/after runs
// diff mechanically.

// KernelPoint is one kernel measurement.
type KernelPoint struct {
	Kernel  string  `json:"kernel"`
	N       int     `json:"n"`
	Block   int     `json:"block"`
	Workers int     `json:"workers,omitempty"` // parallel kernels only
	Seconds float64 `json:"seconds"`           // best of reps
	GFlops  float64 `json:"gflops"`
}

// DispatchPoint is one scheduler-overhead measurement: a graph of `Tasks`
// independent no-op tasks executed on `Workers` real workers.
type DispatchPoint struct {
	Scheduler     string  `json:"scheduler"`
	Workers       int     `json:"workers"`
	Tasks         int     `json:"tasks"`
	Seconds       float64 `json:"seconds"` // best-of-reps makespan
	MicrosPerTask float64 `json:"us_per_task"`
	Steals        int     `json:"steals"`
}

// HeteroPoint is one heterogeneous-dispatch measurement: `Tasks` independent
// simulated kernels on one fast worker plus `SlowWorkers` workers of an
// architecture heteroSlowdown× slower — the setting where model-driven
// placement (dmda) should beat blind work-stealing (ws).
type HeteroPoint struct {
	Scheduler   string  `json:"scheduler"`
	FastWorkers int     `json:"fast_workers"`
	SlowWorkers int     `json:"slow_workers"`
	Tasks       int     `json:"tasks"`
	Seconds     float64 `json:"seconds"`    // best-of-reps makespan
	FastShare   float64 `json:"fast_share"` // fraction of tasks the fast worker executed
	Steals      int     `json:"steals"`
}

// GemmBenchData is the serialised form of one Ext-I run.
type GemmBenchData struct {
	Experiment  string          `json:"experiment"`  // "gemm-bench"
	MicroKernel string          `json:"microkernel"` // "avx2" or "go"
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Kernels     []KernelPoint   `json:"kernels"`
	Dispatch    []DispatchPoint `json:"dispatch"`
	Hetero      []HeteroPoint   `json:"hetero,omitempty"`
}

// bestOf runs f reps times and returns the fastest wall time. Minimum (not
// mean) because scheduling noise only ever adds time.
func bestOf(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// GemmKernelBench measures the kernel ladder at one size. The naive kernel
// is skipped above n=512: at ~1 GFLOP/s it would dominate the harness
// runtime without adding information.
func GemmKernelBench(n, block, workers, reps int) ([]KernelPoint, error) {
	if reps < 1 {
		reps = 3
	}
	a, b := blas.NewMatrix(n, n), blas.NewMatrix(n, n)
	a.FillRandom(1)
	b.FillRandom(2)
	c := blas.NewMatrix(n, n)
	flops := blas.FlopsGEMM(n, n, n)
	type entry struct {
		name    string
		workers int
		run     func() error
	}
	entries := []entry{
		{"blocked", 0, func() error { return blas.GemmBlocked(a, b, c, block) }},
		{"packed", 0, func() error { return blas.GemmPacked(a, b, c, block) }},
		{"packed-parallel", workers, func() error { return blas.GemmPackedParallel(a, b, c, block, workers) }},
	}
	if n <= 512 {
		entries = append([]entry{{"naive", 0, func() error { return blas.GemmNaive(a, b, c) }}}, entries...)
	}
	var out []KernelPoint
	for _, e := range entries {
		d, err := bestOf(reps, func() error {
			c.Zero()
			return e.run()
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: gemm bench %s: %w", e.name, err)
		}
		out = append(out, KernelPoint{
			Kernel: e.name, N: n, Block: block, Workers: e.workers,
			Seconds: d.Seconds(), GFlops: flops / d.Seconds() / 1e9,
		})
	}
	return out, nil
}

// DispatchBench measures real-engine dispatch overhead: a fork graph of one
// no-op root with tasks-1 no-op dependents on `workers` workers under each
// scheduler. Task bodies are empty, so the makespan is almost entirely queue
// traffic — push, wake, take, steal. The fork shape makes the work-stealing
// path observable: completing the root parks every dependent on one worker's
// deque, and the other workers must steal to participate.
//
// A "+trace" suffix on a scheduler name (e.g. "ws+trace") runs that point
// with causal tracing enabled, so the tracing overhead is an A/B row in the
// same table instead of a separate experiment.
func DispatchBench(tasks, workers, reps int, scheds ...string) ([]DispatchPoint, error) {
	if reps < 1 {
		reps = 3
	}
	if len(scheds) == 0 {
		scheds = []string{"eager", "ws"}
	}
	noop, err := taskrt.NewCodelet("noop", taskrt.Impl{
		Arch: "x86",
		Func: func(*taskrt.TaskContext) error { return nil },
	})
	if err != nil {
		return nil, err
	}
	var out []DispatchPoint
	for _, name := range scheds {
		sched, traced := strings.CutSuffix(name, "+trace")
		var steals int
		run := func() error {
			pl, err := discover.Platform("this-host")
			if err != nil {
				return err
			}
			cfg := taskrt.Config{
				Platform: pl, Mode: taskrt.Real, Scheduler: sched, Workers: workers,
			}
			if traced {
				cfg.Trace = trace.New()
			}
			rt, err := taskrt.New(cfg)
			if err != nil {
				return err
			}
			root := &taskrt.Task{Codelet: noop, Label: "root"}
			if err := rt.Submit(root); err != nil {
				return err
			}
			for i := 1; i < tasks; i++ {
				if err := rt.Submit(&taskrt.Task{
					Codelet: noop,
					Label:   fmt.Sprintf("noop%d", i),
					After:   []*taskrt.Task{root},
				}); err != nil {
					return err
				}
			}
			rep, err := rt.Run()
			if err != nil {
				return err
			}
			steals = rep.Steals
			return nil
		}
		d, err := bestOf(reps, run)
		if err != nil {
			return nil, fmt.Errorf("experiments: dispatch bench %s: %w", name, err)
		}
		out = append(out, DispatchPoint{
			Scheduler: name, Workers: workers, Tasks: tasks,
			Seconds:       d.Seconds(),
			MicrosPerTask: d.Seconds() / float64(tasks) * 1e6,
			Steals:        steals,
		})
	}
	return out, nil
}

// heteroSlowdown is the speed ratio between the fast and slow simulated
// architectures in HeteroDispatchBench.
const heteroSlowdown = 20.0

// HeteroDispatchBench measures scheduler makespan on a skewed heterogeneous
// pool: one fast "x86" worker plus slowWorkers workers of an "x86slow"
// architecture that runs every kernel heteroSlowdown× slower (simulated by
// sleeping in proportion to task flops, so the measurement is pure placement
// quality, not kernel throughput). Performance models for both architectures
// are pre-warmed, so dmda places from history immediately; ws routes blindly
// and pays for every task a slow worker grabs near the end of the run.
func HeteroDispatchBench(tasks, slowWorkers, reps int, scheds ...string) ([]HeteroPoint, error) {
	if reps < 1 {
		reps = 3
	}
	if len(scheds) == 0 {
		scheds = []string{"ws", "dmda"}
	}
	// 2 ms on the fast arch, 40 ms on the slow one: big enough that Go's
	// sleep granularity (~1 ms under load) does not flatten the 20× ratio.
	const flops = 2e9
	kernel := func(scale float64) func(*taskrt.TaskContext) error {
		return func(tc *taskrt.TaskContext) error {
			time.Sleep(time.Duration(tc.Task.Flops / 1e12 * scale * float64(time.Second)))
			return nil
		}
	}
	cl, err := taskrt.NewCodelet("hetero",
		taskrt.Impl{Arch: "x86", Func: kernel(1)},
		taskrt.Impl{Arch: "x86slow", Func: kernel(heteroSlowdown)})
	if err != nil {
		return nil, err
	}
	pl, err := core.NewBuilder("hetero").
		Master("fast", core.Arch("x86"), core.Qty(1)).
		Master("slow", core.Arch("x86slow"), core.Qty(slowWorkers)).
		Build()
	if err != nil {
		return nil, err
	}
	var out []HeteroPoint
	for _, sched := range scheds {
		var fastShare float64
		var steals int
		run := func() error {
			models := perfmodel.NewStore()
			for _, sz := range []float64{1e8, 2e8, 4e8} {
				if err := models.Model("hetero", "x86").Record(sz, sz/1e12); err != nil {
					return err
				}
				if err := models.Model("hetero", "x86slow").Record(sz, sz/1e12*heteroSlowdown); err != nil {
					return err
				}
			}
			rt, err := taskrt.New(taskrt.Config{
				Platform: pl, Mode: taskrt.Real, Scheduler: sched,
				Workers: 1 + slowWorkers, Models: models,
			})
			if err != nil {
				return err
			}
			for i := 0; i < tasks; i++ {
				if err := rt.Submit(&taskrt.Task{Codelet: cl, Flops: flops}); err != nil {
					return err
				}
			}
			rep, err := rt.Run()
			if err != nil {
				return err
			}
			steals = rep.Steals
			if u, ok := rep.UnitByID("worker0"); ok && tasks > 0 {
				fastShare = float64(u.Tasks) / float64(tasks)
			}
			return nil
		}
		d, err := bestOf(reps, run)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero dispatch bench %s: %w", sched, err)
		}
		out = append(out, HeteroPoint{
			Scheduler: sched, FastWorkers: 1, SlowWorkers: slowWorkers,
			Tasks: tasks, Seconds: d.Seconds(), FastShare: fastShare, Steals: steals,
		})
	}
	return out, nil
}

// GemmBench runs Ext-I: the kernel ladder at extent n plus the dispatch
// overhead A/B. workers <= 0 takes GOMAXPROCS; dispatch always uses at least
// 4 workers so stealing has victims even on small hosts.
func GemmBench(n, workers int) (*GemmBenchData, error) {
	if n <= 0 {
		n = 1024
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	kernels, err := GemmKernelBench(n, blas.DefaultBlock, workers, 3)
	if err != nil {
		return nil, err
	}
	dw := workers
	if dw < 4 {
		dw = 4
	}
	// "ws+trace" repeats the work-stealing point with causal tracing on, so
	// every BENCH_gemm.json carries the tracing-overhead A/B; "dmda" adds the
	// model-driven dispatcher as a standing overhead row.
	dispatch, err := DispatchBench(2000, dw, 3, "eager", "ws", "ws+trace", "dmda")
	if err != nil {
		return nil, err
	}
	// Skewed-pool placement quality: ws versus dmda at realistic (ms-scale)
	// task granularity on one fast plus three slow workers.
	hetero, err := HeteroDispatchBench(120, 3, 3, "ws", "dmda")
	if err != nil {
		return nil, err
	}
	return &GemmBenchData{
		Experiment:  "gemm-bench",
		MicroKernel: blas.KernelISA(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Kernels:     kernels,
		Dispatch:    dispatch,
		Hetero:      hetero,
	}, nil
}

// WriteJSON writes the run to path (the BENCH_gemm.json artefact).
func (g *GemmBenchData) WriteJSON(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Result renders the run as the usual experiment table.
func (g *GemmBenchData) Result() *Result {
	res := &Result{
		Name:    fmt.Sprintf("Ext-I: GEMM kernel + dispatch overhead (microkernel=%s, GOMAXPROCS=%d)", g.MicroKernel, g.GOMAXPROCS),
		Headers: []string{"bench", "config", "wall[s]", "GFLOP/s", "us/task", "steals"},
	}
	var blocked, packed float64
	for _, k := range g.Kernels {
		cfg := fmt.Sprintf("n=%d b=%d", k.N, k.Block)
		if k.Workers > 0 {
			cfg += fmt.Sprintf(" w=%d", k.Workers)
		}
		res.AddRow("kernel/"+k.Kernel, cfg, f4(k.Seconds), f2(k.GFlops), "-", "-")
		switch k.Kernel {
		case "blocked":
			blocked = k.GFlops
		case "packed":
			packed = k.GFlops
		}
	}
	for _, d := range g.Dispatch {
		res.AddRow("dispatch/"+d.Scheduler,
			fmt.Sprintf("tasks=%d w=%d", d.Tasks, d.Workers),
			f4(d.Seconds), "-", f2(d.MicrosPerTask), fmt.Sprint(d.Steals))
	}
	for _, h := range g.Hetero {
		res.AddRow("hetero/"+h.Scheduler,
			fmt.Sprintf("tasks=%d w=%d+%dslow fastshare=%.2f", h.Tasks, h.FastWorkers, h.SlowWorkers, h.FastShare),
			f4(h.Seconds), "-", "-", fmt.Sprint(h.Steals))
	}
	if blocked > 0 && packed > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("packed/blocked kernel speedup: %.2fx", packed/blocked))
	}
	return res
}
