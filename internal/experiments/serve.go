package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/discover"
	"repro/internal/metrics"
	"repro/internal/pdlxml"
)

// ServeConfig parameterises the serve-replay load harness: a request mix
// replayed against a live pdlserved instance at increasing concurrency,
// with latency quantiles read back from the server's own
// pdlserved_request_seconds histogram.
type ServeConfig struct {
	// Server is the base URL of the live pdlserved instance.
	Server string
	// Platform is the catalog platform the mix targets; it is uploaded
	// first if the server does not hold it. Default "xeon-2gpu".
	Platform string
	// Requests per concurrency level. Default 400.
	Requests int
	// Concurrency levels to sweep. Default [4, 16].
	Concurrency []int
}

// ServeLevel is the measurement at one concurrency level.
type ServeLevel struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"req_per_sec"`
	// P50/P99 are interpolated from the server-side request-latency
	// histogram deltas across this level (all routes, server view).
	P50 float64 `json:"p50_seconds"`
	P99 float64 `json:"p99_seconds"`
}

// ServeBenchData is the machine-readable serve-replay result, written next
// to the other bench JSON artifacts.
type ServeBenchData struct {
	Server   string       `json:"server"`
	Platform string       `json:"platform"`
	Mix      string       `json:"mix"`
	Levels   []ServeLevel `json:"levels"`
}

// WriteJSON writes the bench data for CI artifact upload.
func (d *ServeBenchData) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// serveMix is the replayed request mix: 60% PU queries, 30% predictions,
// 10% observations — the read-heavy shape of a runtime consulting the
// registry with a trickle of perfmodel feedback.
const serveMix = "60% query / 30% predict / 10% observe"

// serveOp returns the operation for the i-th request of a level. The mix is
// deterministic (no RNG) so replays are reproducible: positions 0-5 query,
// 6-8 predict, 9 observes.
func serveOp(i int) string {
	switch i % 10 {
	case 6, 7, 8:
		return "predict"
	case 9:
		return "observe"
	default:
		return "query"
	}
}

// serveQueries are the PU-query filter sets cycled through by the query
// portion of the mix — a couple of repeating shapes (cache hits) plus the
// unfiltered listing.
var serveQueries = []string{"kind=worker", "kind=master", "", "kind=worker&arch=gpu"}

// ServeReplay replays the request mix against a live pdlserved at each
// configured concurrency level and reports client throughput plus
// server-side p50/p99 request latency per level.
//
// Latency is measured where it is authoritative: before and after each
// level the harness scrapes GET /metrics, parses the
// pdlserved_request_seconds histogram (ParsePromText/ParseLabels), and
// interpolates the quantiles from the per-level bucket count deltas. The
// replay itself uses a plain http.Client with no retries, so the offered
// load is exactly Requests per level.
func ServeReplay(cfg ServeConfig) (*Result, *ServeBenchData, error) {
	if cfg.Server == "" {
		return nil, nil, fmt.Errorf("serve replay: -server URL is required")
	}
	if cfg.Platform == "" {
		cfg.Platform = "xeon-2gpu"
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 400
	}
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{4, 16}
	}

	if err := serveEnsurePlatform(cfg.Server, cfg.Platform); err != nil {
		return nil, nil, err
	}

	base := cfg.Server
	hc := &http.Client{Timeout: 30 * time.Second}
	data := &ServeBenchData{Server: base, Platform: cfg.Platform, Mix: serveMix}

	for _, conc := range cfg.Concurrency {
		if conc <= 0 {
			return nil, nil, fmt.Errorf("serve replay: concurrency must be positive, got %d", conc)
		}
		before, err := serveScrapeBuckets(hc, base)
		if err != nil {
			return nil, nil, err
		}

		var errs atomic.Int64
		next := atomic.Int64{}
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < conc; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.Requests {
						return
					}
					if err := serveRequest(hc, base, cfg.Platform, i); err != nil {
						errs.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()

		after, err := serveScrapeBuckets(hc, base)
		if err != nil {
			return nil, nil, err
		}
		p50, p99 := serveQuantiles(before, after)
		data.Levels = append(data.Levels, ServeLevel{
			Concurrency: conc,
			Requests:    cfg.Requests,
			Errors:      int(errs.Load()),
			Seconds:     elapsed,
			Throughput:  float64(cfg.Requests) / elapsed,
			P50:         p50,
			P99:         p99,
		})
	}

	res := &Result{
		Name:    fmt.Sprintf("Ext-L: serve replay against %s (platform %s)", base, cfg.Platform),
		Headers: []string{"conc", "requests", "errors", "seconds", "req/s", "p50_ms", "p99_ms"},
		Notes: []string{
			"mix " + serveMix + "; p50/p99 from the server's pdlserved_request_seconds",
			"histogram deltas per level (server-side view, all routes).",
		},
	}
	for _, l := range data.Levels {
		res.AddRow(
			strconv.Itoa(l.Concurrency),
			strconv.Itoa(l.Requests),
			strconv.Itoa(l.Errors),
			fmt.Sprintf("%.3f", l.Seconds),
			fmt.Sprintf("%.0f", l.Throughput),
			fmt.Sprintf("%.3f", l.P50*1e3),
			fmt.Sprintf("%.3f", l.P99*1e3),
		)
	}
	return res, data, nil
}

// serveEnsurePlatform uploads the catalog platform if the server does not
// already hold it, then seeds the gemm perfmodel with a handful of
// observations so the predict portion of the mix resolves (Predict refuses
// platforms without covering observations). Setup uses the retrying client;
// only the measured replay avoids retries.
func serveEnsurePlatform(server, name string) error {
	ctl, err := client.New(server)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ctl.GetBytes(ctx, "/platforms/"+name); err != nil {
		if !client.IsStatus(err, http.StatusNotFound) {
			return fmt.Errorf("serve replay: probing platform %s: %w", name, err)
		}
		pl, err := discover.Platform(name)
		if err != nil {
			return fmt.Errorf("serve replay: %w", err)
		}
		xml, err := pdlxml.Marshal(pl)
		if err != nil {
			return err
		}
		if err := ctl.PutBytes(ctx, "/platforms/"+name, "application/xml", xml); err != nil {
			return fmt.Errorf("serve replay: uploading platform %s: %w", name, err)
		}
	}
	for _, size := range []float64{1e5, 1e6, 1e7} {
		err := ctl.PostJSON(ctx, "/platforms/"+name+"/observe", map[string]any{
			"codelet": "gemm", "size": size, "seconds": size / 1e10,
		}, nil)
		if err != nil {
			return fmt.Errorf("serve replay: seeding perfmodel: %w", err)
		}
	}
	return nil
}

// serveRequest issues the i-th request of a level: query, predict or
// observe per the deterministic mix. Any transport error or non-2xx status
// counts as a request error.
func serveRequest(hc *http.Client, base, platform string, i int) error {
	var resp *http.Response
	var err error
	switch serveOp(i) {
	case "predict":
		// Sizes cycle within the seeded observation range so every predict
		// resolves to a model estimate.
		size := []float64{2e5, 1e6, 5e6}[i%3]
		// 'f' formatting: 'g' would render 1e+06, whose '+' decodes to a
		// space in a query string.
		resp, err = hc.Get(base + "/platforms/" + url.PathEscape(platform) +
			"/predict?codelet=gemm&size=" + strconv.FormatFloat(size, 'f', -1, 64))
	case "observe":
		body, merr := json.Marshal(map[string]any{
			"codelet": "gemm", "size": 1e6, "seconds": 1e-4,
		})
		if merr != nil {
			return merr
		}
		resp, err = hc.Post(base+"/platforms/"+url.PathEscape(platform)+"/observe",
			"application/json", bytes.NewReader(body))
	default:
		q := serveQueries[i%len(serveQueries)]
		u := base + "/platforms/" + url.PathEscape(platform) + "/pus"
		if q != "" {
			u += "?" + q
		}
		resp, err = hc.Get(u)
	}
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// serveScrapeBuckets scrapes GET /metrics and returns the cumulative
// pdlserved_request_seconds bucket counts keyed by upper bound ("le" label,
// "+Inf" included).
func serveScrapeBuckets(hc *http.Client, base string) (map[string]float64, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("serve replay: scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve replay: scraping metrics: status %d", resp.StatusCode)
	}
	fams, err := metrics.ParsePromText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve replay: parsing metrics: %w", err)
	}
	buckets := map[string]float64{}
	for _, f := range fams {
		if f.Name != "pdlserved_request_seconds" {
			continue
		}
		for _, s := range f.Samples {
			if s.Name != "pdlserved_request_seconds_bucket" {
				continue
			}
			labels, err := metrics.ParseLabels(s.Labels)
			if err != nil {
				return nil, fmt.Errorf("serve replay: bucket labels %q: %w", s.Labels, err)
			}
			if le, ok := labels["le"]; ok {
				buckets[le] = s.Value
			}
		}
	}
	if len(buckets) == 0 {
		return nil, fmt.Errorf("serve replay: no pdlserved_request_seconds buckets in /metrics (is this pdlserved?)")
	}
	return buckets, nil
}

// serveQuantiles interpolates p50/p99 from the bucket-count deltas between
// two scrapes, the standard cumulative-histogram estimate: find the bucket
// the rank falls in and interpolate linearly inside it. Ranks landing in
// the +Inf bucket report the largest finite bound (a floor, not an
// estimate).
func serveQuantiles(before, after map[string]float64) (p50, p99 float64) {
	type bucket struct {
		le    float64
		delta float64
	}
	var finite []bucket
	var total float64
	for le, cum := range after {
		d := cum - before[le]
		if le == "+Inf" {
			total = d
			continue
		}
		ub, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		finite = append(finite, bucket{le: ub, delta: d})
	}
	sort.Slice(finite, func(i, j int) bool { return finite[i].le < finite[j].le })
	if total <= 0 {
		return 0, 0
	}

	quantile := func(q float64) float64 {
		rank := q * total
		cum, lo := 0.0, 0.0
		for _, b := range finite {
			bcount := b.delta - cum
			if cum+bcount >= rank && bcount > 0 {
				frac := (rank - cum) / bcount
				return lo + frac*(b.le-lo)
			}
			cum += bcount
			lo = b.le
		}
		if n := len(finite); n > 0 {
			return finite[n-1].le
		}
		return 0
	}
	return quantile(0.5), quantile(0.99)
}
