package experiments

import (
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// The serve-replay harness must run the full setup + replay against a live
// pdlserved handler: upload the platform when absent, seed the perfmodel so
// predicts resolve, drive every configured concurrency level with zero
// request errors, and read plausible p50/p99 out of the server's request
// histogram.
func TestServeReplayAgainstLiveServer(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, data, err := ServeReplay(ServeConfig{
		Server:      ts.URL,
		Requests:    120,
		Concurrency: []int{2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Levels) != 2 {
		t.Fatalf("measured %d levels, want 2", len(data.Levels))
	}
	for _, l := range data.Levels {
		if l.Errors != 0 {
			t.Fatalf("concurrency %d: %d request errors against a healthy server", l.Concurrency, l.Errors)
		}
		if l.Requests != 120 {
			t.Fatalf("concurrency %d: replayed %d requests, want 120", l.Concurrency, l.Requests)
		}
		if l.Throughput <= 0 || l.Seconds <= 0 {
			t.Fatalf("concurrency %d: empty throughput measurement %+v", l.Concurrency, l)
		}
		// The histogram saw this level's requests: quantiles are positive
		// and ordered. (The server-side view includes the /metrics scrape
		// itself — fine, the replay dominates the deltas.)
		if l.P50 <= 0 || l.P99 < l.P50 {
			t.Fatalf("concurrency %d: implausible quantiles p50=%v p99=%v", l.Concurrency, l.P50, l.P99)
		}
	}
	if data.Platform != "xeon-2gpu" || data.Mix == "" {
		t.Fatalf("bench data incomplete: %+v", data)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("result table has %d rows, want 2", len(res.Rows))
	}

	// Replaying again against the same server exercises the
	// platform-already-present path.
	if _, _, err := ServeReplay(ServeConfig{
		Server:      ts.URL,
		Requests:    30,
		Concurrency: []int{2, 4},
	}); err != nil {
		t.Fatal(err)
	}
}

// The deterministic mix is exactly 60/30/10 over any window of 10 requests.
func TestServeMixShape(t *testing.T) {
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		counts[serveOp(i)]++
	}
	if counts["query"] != 60 || counts["predict"] != 30 || counts["observe"] != 10 {
		t.Fatalf("mix = %v, want 60/30/10", counts)
	}
}

// Quantile interpolation over synthetic bucket deltas: 90 requests in the
// first bucket, 10 spread high — p50 lands inside the first bucket, p99 in
// the tail.
func TestServeQuantiles(t *testing.T) {
	before := map[string]float64{"0.001": 0, "0.01": 0, "0.1": 0, "+Inf": 0}
	after := map[string]float64{"0.001": 90, "0.01": 95, "0.1": 100, "+Inf": 100}
	p50, p99 := serveQuantiles(before, after)
	// rank 50 of 90 in [0, 0.001): 0.001 * 50/90.
	if want := 0.001 * 50 / 90; p50 < want*0.999 || p50 > want*1.001 {
		t.Fatalf("p50 = %v, want ~%v", p50, want)
	}
	// rank 99: 95 covered by le=0.01, 4 more of the 5 in (0.01, 0.1].
	if want := 0.01 + (99-95)/5.0*(0.1-0.01); p99 < want*0.999 || p99 > want*1.001 {
		t.Fatalf("p99 = %v, want ~%v", p99, want)
	}
	// Requests past the largest finite bound floor at that bound.
	onlyInf := map[string]float64{"0.001": 0, "+Inf": 10}
	if _, p := serveQuantiles(map[string]float64{"0.001": 0, "+Inf": 0}, onlyInf); p != 0.001 {
		t.Fatalf("overflow quantile = %v, want the largest finite bound", p)
	}
	// No traffic at all: zeros, not NaNs.
	if p50, p99 := serveQuantiles(before, before); p50 != 0 || p99 != 0 {
		t.Fatalf("zero-delta quantiles = %v/%v", p50, p99)
	}
}
