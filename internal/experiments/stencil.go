package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/discover"
	"repro/internal/taskrt"
)

// The stencil workload complements DGEMM with the opposite graph shape: a
// 1-D Jacobi heat-diffusion sweep decomposed into chunks, where each
// iteration's chunk task reads its own and both neighbour chunks of the
// previous iteration (halo exchange) and writes its chunk. Dependency chains
// dominate, data moves every step, and compute per byte is low — the regime
// where offloading pays least, which is why the paper's execution groups let
// programmers pin such tasks to the host.

// stencilChunk is the real-mode payload: full double buffers plus the chunk
// bounds. Handles order the tasks; the buffers carry the numbers.
type stencilChunk struct {
	src, dst []float64
	lo, hi   int
}

func realStencilChunk(tc *taskrt.TaskContext) error {
	p, ok := tc.Payload(0).(*stencilChunk)
	if !ok {
		return fmt.Errorf("experiments: stencil payload is %T", tc.Payload(0))
	}
	n := len(p.src)
	for i := p.lo; i < p.hi; i++ {
		left := p.src[i]
		if i > 0 {
			left = p.src[i-1]
		}
		right := p.src[i]
		if i < n-1 {
			right = p.src[i+1]
		}
		p.dst[i] = 0.5*p.src[i] + 0.25*(left+right)
	}
	return nil
}

// stencilCodelet returns the Jacobi chunk codelet: a real x86 kernel plus a
// simulation-only gpu variant with a lower speed factor (stencils reach a
// smaller fraction of peak than GEMM).
func stencilCodelet() *taskrt.Codelet {
	cl, err := taskrt.NewCodelet("jacobi1d",
		taskrt.Impl{Arch: "x86", Func: realStencilChunk},
		taskrt.Impl{Arch: "gpu", SpeedFactor: 0.4},
	)
	if err != nil {
		panic(err) // static definition
	}
	return cl
}

// SubmitStencil builds the iterative Jacobi task graph: chunks × iters
// tasks. The chunk handle of iteration k is read by three tasks of iteration
// k+1 (self + neighbours) and written by exactly one, giving the classic
// halo-exchange dependency pattern. bufs supplies real double buffers (nil
// for simulation-only graphs).
func SubmitStencil(rt *taskrt.Runtime, n, chunks, iters int, bufs *StencilBuffers) error {
	if n <= 0 || chunks <= 0 || iters <= 0 || chunks > n {
		return fmt.Errorf("experiments: bad stencil extent n=%d chunks=%d iters=%d", n, chunks, iters)
	}
	per := n / chunks
	bytes := int64(per) * 8
	cl := stencilCodelet()
	gen := make([]*taskrt.Handle, chunks)
	for c := range gen {
		gen[c] = rt.NewHandle(fmt.Sprintf("u0[%d]", c), bytes, nil)
	}
	for it := 0; it < iters; it++ {
		next := make([]*taskrt.Handle, chunks)
		for c := 0; c < chunks; c++ {
			next[c] = rt.NewHandle(fmt.Sprintf("u%d[%d]", it+1, c), bytes, nil)
		}
		for c := 0; c < chunks; c++ {
			lo := c * per
			hi := lo + per
			if c == chunks-1 {
				hi = n
			}
			// The written handle carries the payload (first access).
			if bufs != nil {
				src, dst := bufs.forIteration(it)
				next[c].Payload = &stencilChunk{src: src, dst: dst, lo: lo, hi: hi}
			}
			accesses := []taskrt.Access{taskrt.W(next[c]), taskrt.R(gen[c])}
			if c > 0 {
				accesses = append(accesses, taskrt.R(gen[c-1]))
			}
			if c < chunks-1 {
				accesses = append(accesses, taskrt.R(gen[c+1]))
			}
			if err := rt.Submit(&taskrt.Task{
				Codelet:  cl,
				Accesses: accesses,
				Flops:    4 * float64(hi-lo),
				Label:    fmt.Sprintf("jacobi[%d,%d]", it, c),
			}); err != nil {
				return err
			}
		}
		gen = next
	}
	return nil
}

// StencilBuffers holds the double-buffered state of a real sweep.
type StencilBuffers struct {
	A, B []float64
}

// NewStencilBuffers seeds n points with a deterministic profile.
func NewStencilBuffers(n int) *StencilBuffers {
	b := &StencilBuffers{A: make([]float64, n), B: make([]float64, n)}
	for i := range b.A {
		b.A[i] = float64(i % 13)
	}
	return b
}

// forIteration returns (src, dst) for iteration it under double buffering.
func (b *StencilBuffers) forIteration(it int) (src, dst []float64) {
	if it%2 == 0 {
		return b.A, b.B
	}
	return b.B, b.A
}

// Final returns the buffer holding the result after iters iterations.
func (b *StencilBuffers) Final(iters int) []float64 {
	_, dst := b.forIteration(iters - 1)
	return dst
}

// serialJacobi runs the reference sweep in place over a copy of u0.
func serialJacobi(u0 []float64, iters int) []float64 {
	n := len(u0)
	cur := append([]float64(nil), u0...)
	nxt := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			left := cur[i]
			if i > 0 {
				left = cur[i-1]
			}
			right := cur[i]
			if i < n-1 {
				right = cur[i+1]
			}
			nxt[i] = 0.5*cur[i] + 0.25*(left+right)
		}
		cur, nxt = nxt, cur
	}
	return cur
}

// SimStencil runs the Jacobi graph in simulation.
func SimStencil(pl *core.Platform, n, chunks, iters int, scheduler string) (*taskrt.Report, error) {
	rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Sim, Scheduler: scheduler})
	if err != nil {
		return nil, err
	}
	if err := SubmitStencil(rt, n, chunks, iters, nil); err != nil {
		return nil, err
	}
	return rt.Run()
}

// RealStencil runs a real Jacobi sweep on goroutine workers and verifies the
// result against the serial reference.
func RealStencil(pl *core.Platform, n, chunks, iters, workers int) (*taskrt.Report, error) {
	rt, err := taskrt.New(taskrt.Config{Platform: pl, Mode: taskrt.Real, Workers: workers})
	if err != nil {
		return nil, err
	}
	bufs := NewStencilBuffers(n)
	ref := serialJacobi(bufs.A, iters)
	if err := SubmitStencil(rt, n, chunks, iters, bufs); err != nil {
		return nil, err
	}
	rep, err := rt.Run()
	if err != nil {
		return nil, err
	}
	got := bufs.Final(iters)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-12 {
			return nil, fmt.Errorf("experiments: stencil diverges at %d: %g vs %g", i, got[i], ref[i])
		}
	}
	return rep, nil
}

// StencilSweep is experiment Ext-G: the halo-exchange workload across
// platforms and schedulers — the counterpoint to Figure 5, showing where the
// GPU platform does NOT pay off.
func StencilSweep(n, chunks, iters int) (*Result, error) {
	res := &Result{
		Name:    fmt.Sprintf("Ext-G: 1-D Jacobi stencil, n=%d chunks=%d iters=%d (dmda)", n, chunks, iters),
		Headers: []string{"platform", "makespan[s]", "gpu-tasks", "transfers[MB]"},
	}
	for _, name := range []string{"xeon-1core", "xeon-cpu", "xeon-2gpu"} {
		pl, err := discover.Platform(name)
		if err != nil {
			return nil, err
		}
		rep, err := SimStencil(pl, n, chunks, iters, "dmda")
		if err != nil {
			return nil, err
		}
		res.AddRow(name, f4(rep.MakespanSeconds),
			fmt.Sprint(rep.TasksOnArch("gpu")),
			f2(float64(rep.TransferBytes)/(1<<20)))
	}
	res.Notes = append(res.Notes,
		"low arithmetic intensity: the GPU platform should show little or no advantage over 8 cores")
	return res, nil
}
