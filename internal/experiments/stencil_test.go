package experiments

import (
	"strconv"
	"testing"

	"repro/internal/discover"
)

func TestSubmitStencilValidation(t *testing.T) {
	pl := discover.MustPlatform("xeon-1core")
	if _, err := SimStencil(pl, 0, 4, 2, "eager"); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := SimStencil(pl, 16, 32, 2, "eager"); err == nil {
		t.Fatal("chunks > n must fail")
	}
	if _, err := SimStencil(pl, 16, 4, 0, "eager"); err == nil {
		t.Fatal("iters=0 must fail")
	}
}

func TestSimStencilTaskCountAndChains(t *testing.T) {
	pl := discover.MustPlatform("xeon-cpu")
	rep, err := SimStencil(pl, 1<<20, 8, 10, "eager")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 80 {
		t.Fatalf("tasks = %d; want 80", rep.Tasks)
	}
	// Iterations are serialised: with 8 chunks on 8 cores, makespan is at
	// least iters × one chunk time.
	oneIterSerial := 4 * float64(1<<20) / 8 / (10.64 * 0.92 * 1e9)
	if rep.MakespanSeconds < 10*oneIterSerial*0.9 {
		t.Fatalf("makespan %g ignores iteration dependencies (min %g)",
			rep.MakespanSeconds, 10*oneIterSerial)
	}
}

func TestRealStencilVerifies(t *testing.T) {
	pl := discover.MustPlatform("this-host")
	rep, err := RealStencil(pl, 4096, 8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 48 {
		t.Fatalf("tasks = %d", rep.Tasks)
	}
}

func TestSerialJacobiConservesNothingButIsStable(t *testing.T) {
	u0 := []float64{0, 0, 8, 0, 0}
	u := serialJacobi(u0, 1)
	// Centre loses half to its neighbours.
	if u[2] != 4 || u[1] != 2 || u[3] != 2 {
		t.Fatalf("u = %v", u)
	}
	// Input untouched.
	if u0[2] != 8 {
		t.Fatal("serialJacobi mutated its input")
	}
}

func TestStencilSweepShape(t *testing.T) {
	res, err := StencilSweep(1<<20, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(i int) float64 {
		v, _ := strconv.ParseFloat(res.Rows[i][1], 64)
		return v
	}
	single, eight, gpus := get(0), get(1), get(2)
	// 8 cores beat 1 core; the GPU platform must NOT show the DGEMM-style
	// blowout on this low-intensity workload (allow modest gain).
	if eight >= single {
		t.Fatalf("8 cores (%g) not faster than 1 (%g)", eight, single)
	}
	if gpus < eight/3 {
		t.Fatalf("gpu platform suspiciously fast on a bandwidth-bound stencil: %g vs %g", gpus, eight)
	}
}
