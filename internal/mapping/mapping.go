// Package mapping implements Cascabel's static task pre-selection (paper
// Section IV-C, step 2): the platform patterns declared by task
// implementation variants are matched against the PDL description of the
// target environment; variants whose patterns the target cannot satisfy are
// pruned, and execution groups from execute annotations are resolved to
// concrete processing-unit subsets via LogicGroupAttribute values.
package mapping

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csrc"
	"repro/internal/pattern"
	"repro/internal/repo"
)

// Selection is the pruned variant set of one task interface for one target
// platform.
type Selection struct {
	Interface string
	// Variants are the surviving implementations in repository order.
	Variants []*repo.Variant
	// Bindings maps variant names to the pattern binding that satisfied the
	// variant's first matching target.
	Bindings map[string]*pattern.Binding
}

// ForArch returns the surviving variants with the given execution
// architecture.
func (s *Selection) ForArch(arch string) []*repo.Variant {
	var out []*repo.Variant
	for _, v := range s.Variants {
		if v.Arch == arch {
			out = append(out, v)
		}
	}
	return out
}

// Archs returns the distinct execution architectures of surviving variants,
// in first-seen order.
func (s *Selection) Archs() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range s.Variants {
		if !seen[v.Arch] {
			seen[v.Arch] = true
			out = append(out, v.Arch)
		}
	}
	return out
}

// HasFallback reports whether a Master-executable (x86) variant survived:
// the paper requires a sequential fall-back so the program always compiles
// for a Master PU.
func (s *Selection) HasFallback() bool {
	return len(s.ForArch("x86")) > 0
}

// Preselect prunes the variants of iface against the platform. It fails
// when the interface is unknown, when no variant matches the platform, or
// when no surviving variant can serve as the Master fall-back.
func Preselect(r *repo.Repository, iface string, pl *core.Platform) (*Selection, error) {
	all := r.VariantsFor(iface)
	if len(all) == 0 {
		return nil, fmt.Errorf("mapping: no implementation variants registered for interface %q", iface)
	}
	sel := &Selection{Interface: iface, Bindings: map[string]*pattern.Binding{}}
	for _, v := range all {
		for _, target := range v.Targets {
			p, err := pattern.FromTarget(target)
			if err != nil {
				return nil, fmt.Errorf("mapping: variant %s/%s: %w", v.Interface, v.Name, err)
			}
			b, err := pattern.Match(p, pl)
			if err != nil {
				continue // this target pattern unsatisfied; try the next
			}
			sel.Variants = append(sel.Variants, v)
			sel.Bindings[v.Name] = b
			break
		}
	}
	if len(sel.Variants) == 0 {
		return nil, fmt.Errorf("mapping: no variant of %q matches platform %q", iface, pl.Name)
	}
	if !sel.HasFallback() {
		return nil, fmt.Errorf("mapping: interface %q has no sequential fall-back variant for platform %q (paper IV-C requires one)", iface, pl.Name)
	}
	return sel, nil
}

// ResolveGroup resolves an executiongroup name to the PU subset carrying
// that LogicGroupAttribute. An empty group means "anywhere" and returns nil.
// Naming a group no PU carries is an error — a silent empty mapping would
// strand the task.
func ResolveGroup(pl *core.Platform, group string) ([]*core.PU, error) {
	if group == "" {
		return nil, nil
	}
	pus := pl.Group(group)
	if len(pus) == 0 {
		return nil, fmt.Errorf("mapping: execution group %q names no PU in platform %q", group, pl.Name)
	}
	return pus, nil
}

// SitePlan is the mapping decision for one annotated call site.
type SitePlan struct {
	Site      *csrc.ExecuteStmt
	Selection *Selection
	// GroupPUs is the resolved execution group (nil = any unit).
	GroupPUs []*core.PU
}

// Plan is the full static mapping of a program onto a platform.
type Plan struct {
	Platform *core.Platform
	Repo     *repo.Repository
	Sites    []*SitePlan
}

// PlanProgram pre-selects variants for every annotated call site of the
// program. Task definitions in the program must already be registered in
// the repository (repo.RegisterProgram).
func PlanProgram(prog *csrc.Program, r *repo.Repository, pl *core.Platform) (*Plan, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Platform: pl, Repo: r}
	for _, es := range prog.ExecuteStmts() {
		sel, err := Preselect(r, es.Annotation.Interface, pl)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", es.Line, err)
		}
		group, err := ResolveGroup(pl, es.Annotation.Group)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", es.Line, err)
		}
		plan.Sites = append(plan.Sites, &SitePlan{Site: es, Selection: sel, GroupPUs: group})
	}
	if len(plan.Sites) == 0 {
		return nil, fmt.Errorf("mapping: program has no execute annotations")
	}
	return plan, nil
}

// Summary renders the plan for CLI output: one line per site listing the
// surviving variants and their target units.
func (p *Plan) Summary() string {
	out := fmt.Sprintf("platform %s\n", p.Platform.Name)
	for _, sp := range p.Sites {
		out += fmt.Sprintf("line %d: %s ->", sp.Site.Line, sp.Selection.Interface)
		for _, v := range sp.Selection.Variants {
			out += " " + v.Name + "(" + v.Arch + ")"
		}
		if sp.GroupPUs != nil {
			out += " group=["
			for i, pu := range sp.GroupPUs {
				if i > 0 {
					out += ","
				}
				out += pu.ID
			}
			out += "]"
		}
		out += "\n"
	}
	return out
}
