package mapping

import (
	"strings"
	"testing"

	"repro/internal/csrc"
	"repro/internal/discover"
	"repro/internal/repo"
)

func TestPreselectXeon2GPU(t *testing.T) {
	r := repo.NewWithLibrary()
	pl := discover.MustPlatform("xeon-2gpu")
	sel, err := Preselect(r, repo.IfaceDGEMM, pl)
	if err != nil {
		t.Fatal(err)
	}
	// All three DGEMM variants survive: x86 patterns and gpu patterns both
	// match the 8-core + 2-gpu box.
	if len(sel.Variants) != 3 {
		t.Fatalf("variants = %v", sel.Variants)
	}
	if !sel.HasFallback() {
		t.Fatal("fallback lost")
	}
	archs := sel.Archs()
	if len(archs) != 2 {
		t.Fatalf("archs = %v", archs)
	}
	if len(sel.ForArch("gpu")) != 1 {
		t.Fatalf("gpu variants = %v", sel.ForArch("gpu"))
	}
	// The cublas variant's binding names the host/device roles.
	b := sel.Bindings["dgemm_cublas"]
	if b == nil || b.UnitCount("device") != 2 {
		t.Fatalf("cublas binding = %v", b)
	}
}

func TestPreselectCPUOnlyPrunesGPU(t *testing.T) {
	r := repo.NewWithLibrary()
	pl := discover.MustPlatform("xeon-cpu")
	sel, err := Preselect(r, repo.IfaceDGEMM, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sel.Variants {
		if v.Arch == "gpu" {
			t.Fatalf("gpu variant %s survived on a CPU-only box", v.Name)
		}
	}
	if len(sel.Variants) != 2 {
		t.Fatalf("variants = %v", sel.Variants)
	}
}

func TestPreselectErrors(t *testing.T) {
	r := repo.NewWithLibrary()
	pl := discover.MustPlatform("xeon-cpu")
	if _, err := Preselect(r, "Inosuch", pl); err == nil {
		t.Fatal("unknown interface must fail")
	}
	// An interface with only gpu variants on a CPU box: no match at all.
	r2 := repo.New()
	_ = r2.Add(&repo.Variant{Interface: "Igpu", Name: "g1", Targets: []string{"cuda"}, Arch: "gpu"})
	if _, err := Preselect(r2, "Igpu", pl); err == nil || !strings.Contains(err.Error(), "no variant") {
		t.Fatalf("err = %v", err)
	}
	// gpu-only variants matching a gpu platform still lack the fallback.
	gpl := discover.MustPlatform("xeon-2gpu")
	if _, err := Preselect(r2, "Igpu", gpl); err == nil || !strings.Contains(err.Error(), "fall-back") {
		t.Fatalf("err = %v", err)
	}
	// Unknown target pattern names are reported.
	r3 := repo.New()
	_ = r3.Add(&repo.Variant{Interface: "Ix", Name: "x1", Targets: []string{"quantum"}, Arch: "x86"})
	if _, err := Preselect(r3, "Ix", pl); err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveGroup(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	pus, err := ResolveGroup(pl, "devset")
	if err != nil {
		t.Fatal(err)
	}
	if len(pus) != 2 || pus[0].ID != "dev0" {
		t.Fatalf("devset = %v", pus)
	}
	if pus, err := ResolveGroup(pl, ""); err != nil || pus != nil {
		t.Fatalf("empty group = %v, %v", pus, err)
	}
	if _, err := ResolveGroup(pl, "ghostset"); err == nil {
		t.Fatal("unknown group must fail")
	}
}

const program = `#pragma cascabel task : x86
 : Idgemm
 : dgemm_seq
 : (A:read, B:read, C:readwrite)
void dgemm(double *A, double *B, double *C) { }
int main() {
#pragma cascabel execute Idgemm : cpuset (A:BLOCK, B:BLOCK, C:BLOCK)
dgemm(A, B, C);
}
`

func TestPlanProgram(t *testing.T) {
	prog, err := csrc.ParseProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	r := repo.NewWithLibrary()
	if err := r.RegisterProgram(prog, repo.DefaultKernels()); err != nil {
		t.Fatal(err)
	}
	pl := discover.MustPlatform("xeon-2gpu")
	plan, err := PlanProgram(prog, r, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sites) != 1 {
		t.Fatalf("sites = %d", len(plan.Sites))
	}
	sp := plan.Sites[0]
	// The user dgemm_seq variant plus the three library variants survive.
	if len(sp.Selection.Variants) != 4 {
		t.Fatalf("variants = %v", sp.Selection.Variants)
	}
	if len(sp.GroupPUs) != 1 || sp.GroupPUs[0].ID != "host" {
		t.Fatalf("group = %v", sp.GroupPUs)
	}
	s := plan.Summary()
	for _, want := range []string{"xeon-2gpu", "Idgemm", "dgemm_cublas(gpu)", "group=[host]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestPlanProgramErrors(t *testing.T) {
	prog, err := csrc.ParseProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	r := repo.NewWithLibrary()
	_ = r.RegisterProgram(prog, nil)
	// Program with no execute annotations.
	empty, err := csrc.ParseProgram("int main() { return 0; }\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanProgram(empty, r, discover.MustPlatform("xeon-cpu")); err == nil {
		t.Fatal("program without execute annotations must fail")
	}
	// Unknown group in the annotation.
	bad := strings.Replace(program, "cpuset", "nosuchset", 1)
	prog2, err := csrc.ParseProgram(bad)
	if err != nil {
		t.Fatal(err)
	}
	r2 := repo.NewWithLibrary()
	_ = r2.RegisterProgram(prog2, nil)
	if _, err := PlanProgram(prog2, r2, discover.MustPlatform("xeon-2gpu")); err == nil || !strings.Contains(err.Error(), "nosuchset") {
		t.Fatalf("err = %v", err)
	}
}
