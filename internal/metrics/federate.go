package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics federation: pdlserved scrapes each registered pdlworkerd's
// /metrics endpoint, keeps the latest parsed snapshot per node, and
// re-exports the workers' taskrt_worker_* families as node-labelled
// taskrt_fleet_* aggregates on its own scrape endpoint — one scrape shows
// the whole fleet. Each Update replaces the node's previous snapshot
// wholesale, so scraping a worker twice can never double-count its
// counters, and Drop removes a dead node's series entirely rather than
// freezing them at their last value.

// FederatedPrefix selects which worker families are federated: everything a
// worker exports under this prefix is re-exported by the master scrape
// endpoint with the prefix rewritten to FleetPrefix and a node label added.
const (
	FederatedPrefix = "taskrt_worker_"
	FleetPrefix     = "taskrt_fleet_"
)

// PromSample is one sample line of a parsed exposition: a metric name (which
// may carry a _bucket/_sum/_count suffix relative to its family), its raw
// label block (the text between the braces, without them; "" when unlabelled)
// and the value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
}

// PromFamily is one `# TYPE`-delimited family of a parsed exposition.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePromText parses the Prometheus text exposition format as produced by
// Registry.WritePrometheus (the subset this repo emits: HELP/TYPE comments,
// then sample lines). Samples appearing before any TYPE comment, and
// histogram series (_bucket/_sum/_count), attach to their base family.
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	var families []PromFamily
	index := map[string]int{} // family name -> families slot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				continue // free-form comment
			}
			switch parts[1] {
			case "HELP":
				fam := familySlot(&families, index, parts[2])
				if len(parts) == 4 {
					fam.Help = parts[3]
				}
			case "TYPE":
				fam := familySlot(&families, index, parts[2])
				if len(parts) == 4 {
					fam.Type = parts[3]
				}
			}
			continue
		}
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d: %w", lineNo, err)
		}
		val, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d value: %w", lineNo, err)
		}
		fam := familySlot(&families, index, baseFamily(name, index))
		fam.Samples = append(fam.Samples, PromSample{Name: name, Labels: labels, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familySlot returns the family with the given name, appending it on first
// sight.
func familySlot(families *[]PromFamily, index map[string]int, name string) *PromFamily {
	if i, ok := index[name]; ok {
		return &(*families)[i]
	}
	index[name] = len(*families)
	*families = append(*families, PromFamily{Name: name})
	return &(*families)[len(*families)-1]
}

// baseFamily maps a sample name to its family: histogram series names carry
// _bucket/_sum/_count suffixes relative to the declared family name.
func baseFamily(name string, index map[string]int) string {
	if _, ok := index[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if _, declared := index[base]; declared {
			return base
		}
	}
	return name
}

// splitSample parses `name{labels} value` or `name value`, leaving the label
// block raw. The closing brace is found with a quote-aware scan: label
// values are quoted strings that may contain '}', spaces and backslash
// escapes (`\"`, `\\`, `\n`), so the first '}' byte is not necessarily the
// end of the block.
func splitSample(line string) (name, labels, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		end := -1
		inQuote := false
	scan:
		for i := brace + 1; i < len(line); i++ {
			switch c := line[i]; {
			case inQuote && c == '\\':
				i++ // skip the escaped byte
			case inQuote && c == '"':
				inQuote = false
			case !inQuote && c == '"':
				inQuote = true
			case !inQuote && c == '}':
				end = i
				break scan
			}
		}
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated label block in %q", line)
		}
		name, labels = line[:brace], line[brace+1:end]
		rest = strings.TrimSpace(line[end+1:])
	} else {
		if space < 0 {
			return "", "", "", fmt.Errorf("no value in %q", line)
		}
		name, rest = line[:space], strings.TrimSpace(line[space:])
	}
	if name == "" || rest == "" {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	return name, labels, rest, nil
}

// ParseLabels decodes a raw label block (the PromSample.Labels text between
// the braces, e.g. `node="a",le="+Inf"`) into a name→value map, reversing
// the quoting WritePrometheus applies: values are double-quoted with `\\`,
// `\"`, `\n` and `\t` escapes. Unknown escape pairs are kept verbatim so a
// foreign exposition degrades to its raw text instead of an error.
func ParseLabels(raw string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(raw) {
		if raw[i] == ',' || raw[i] == ' ' {
			i++
			continue
		}
		eq := strings.IndexByte(raw[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("metrics: label block %q: no '=' after %q", raw, raw[i:])
		}
		name := raw[i : i+eq]
		i += eq + 1
		if i >= len(raw) || raw[i] != '"' {
			return nil, fmt.Errorf("metrics: label %q in %q: value not quoted", name, raw)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(raw) {
			c := raw[i]
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\\' && i+1 < len(raw) {
				switch raw[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				case 't':
					val.WriteByte('\t')
				default:
					val.WriteByte('\\')
					val.WriteByte(raw[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("metrics: label %q in %q: unterminated value", name, raw)
		}
		out[name] = val.String()
	}
	return out, nil
}

// Federator accumulates per-node metric snapshots and renders the fleet
// view. Safe for concurrent use: the scrape loop updates while the metrics
// handler renders.
type Federator struct {
	mu    sync.Mutex
	nodes map[string][]PromFamily
}

// NewFederator returns an empty federator.
func NewFederator() *Federator {
	return &Federator{nodes: map[string][]PromFamily{}}
}

// Update replaces the node's snapshot with the families parsed from one
// scrape, keeping only the federated (FederatedPrefix) families. Replacement
// is wholesale: re-scraping the same worker never accumulates, so counters
// are never double-counted.
func (f *Federator) Update(node string, families []PromFamily) {
	var kept []PromFamily
	for _, fam := range families {
		if strings.HasPrefix(fam.Name, FederatedPrefix) {
			kept = append(kept, fam)
		}
	}
	f.mu.Lock()
	f.nodes[node] = kept
	f.mu.Unlock()
}

// Drop removes a node's series entirely (death, lease expiry): ghost nodes
// must vanish from the fleet scrape, not linger at stale values.
func (f *Federator) Drop(node string) {
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
}

// Nodes returns the federated node names, sorted.
func (f *Federator) Nodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders the fleet view: every federated family across all
// nodes, renamed FederatedPrefix -> FleetPrefix, with a node label injected
// first in each sample's label block. Families are sorted by name, nodes
// within a family, so output is deterministic.
func (f *Federator) WritePrometheus(w io.Writer) {
	f.mu.Lock()
	nodes := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	type slot struct {
		help, typ string
		perNode   map[string][]PromSample
	}
	fams := map[string]*slot{}
	var order []string
	for _, node := range nodes {
		for _, fam := range f.nodes[node] {
			s := fams[fam.Name]
			if s == nil {
				s = &slot{help: fam.Help, typ: fam.Type, perNode: map[string][]PromSample{}}
				fams[fam.Name] = s
				order = append(order, fam.Name)
			}
			s.perNode[node] = fam.Samples
		}
	}
	f.mu.Unlock()
	sort.Strings(order)
	for _, name := range order {
		s := fams[name]
		fleet := FleetPrefix + strings.TrimPrefix(name, FederatedPrefix)
		if s.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fleet, s.help)
		}
		if s.typ != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", fleet, s.typ)
		}
		for _, node := range nodes {
			for _, sample := range s.perNode[node] {
				sampleName := FleetPrefix + strings.TrimPrefix(sample.Name, FederatedPrefix)
				labels := fmt.Sprintf("node=%q", node)
				if sample.Labels != "" {
					labels += "," + sample.Labels
				}
				fmt.Fprintf(w, "%s{%s} %g\n", sampleName, labels, sample.Value)
			}
		}
	}
}
