package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// workerExposition renders a registry the way a pdlworkerd /metrics scrape
// looks: taskrt_worker_* families plus an unrelated family that federation
// must filter out.
func workerExposition(t *testing.T, execs float64) string {
	t.Helper()
	r := New()
	r.CounterVec("taskrt_worker_executions_total", "Kernels executed.", "codelet", "arch").
		With("gemm", "x86").Add(execs)
	h := r.HistogramVec("taskrt_worker_kernel_seconds", "Kernel latency.", []float64{0.01, 0.1}, "codelet")
	h.With("gemm").Observe(0.05)
	r.Gauge("taskrt_worker_inflight_kernels", "Kernels executing now.").Set(2)
	r.Gauge("go_goroutines_like", "Not federated.").Set(99)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestParsePromTextRoundTrip(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader(workerExposition(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	ex, ok := byName["taskrt_worker_executions_total"]
	if !ok || ex.Type != "counter" || len(ex.Samples) != 1 {
		t.Fatalf("executions family wrong: %+v", ex)
	}
	if ex.Samples[0].Value != 3 || !strings.Contains(ex.Samples[0].Labels, `codelet="gemm"`) {
		t.Fatalf("executions sample wrong: %+v", ex.Samples[0])
	}
	// Histogram series (_bucket/_sum/_count) must attach to the base family.
	hist := byName["taskrt_worker_kernel_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type = %q", hist.Type)
	}
	names := map[string]bool{}
	for _, s := range hist.Samples {
		names[s.Name] = true
	}
	for _, want := range []string{"taskrt_worker_kernel_seconds_bucket", "taskrt_worker_kernel_seconds_sum", "taskrt_worker_kernel_seconds_count"} {
		if !names[want] {
			t.Fatalf("histogram family lacks %s: %v", want, names)
		}
	}
}

// Two scrapes of the same worker must not double-count counters: Update
// replaces the node's snapshot wholesale.
func TestFederatorDedup(t *testing.T) {
	f := NewFederator()
	for i := 0; i < 2; i++ { // scrape the same node twice
		fams, err := ParsePromText(strings.NewReader(workerExposition(t, 5)))
		if err != nil {
			t.Fatal(err)
		}
		f.Update("w1", fams)
	}
	var b bytes.Buffer
	f.WritePrometheus(&b)
	out := b.String()
	want := `taskrt_fleet_executions_total{node="w1",codelet="gemm",arch="x86"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("fleet output lacks %q:\n%s", want, out)
	}
	if strings.Count(out, "taskrt_fleet_executions_total{") != 1 {
		t.Fatalf("double-counted executions after re-scrape:\n%s", out)
	}
	if strings.Contains(out, "go_goroutines_like") {
		t.Fatalf("non-federated family leaked into fleet output:\n%s", out)
	}
}

func TestFederatorMultiNodeAndDrop(t *testing.T) {
	f := NewFederator()
	for _, node := range []string{"w1", "w2"} {
		fams, err := ParsePromText(strings.NewReader(workerExposition(t, 1)))
		if err != nil {
			t.Fatal(err)
		}
		f.Update(node, fams)
	}
	var b bytes.Buffer
	f.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`taskrt_fleet_kernel_seconds_bucket{node="w1",codelet="gemm",le="0.1"} 1`,
		`taskrt_fleet_kernel_seconds_bucket{node="w2",codelet="gemm",le="0.1"} 1`,
		`taskrt_fleet_inflight_kernels{node="w1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output lacks %q:\n%s", want, out)
		}
	}
	if got := f.Nodes(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("Nodes() = %v", got)
	}

	// A dropped node's series vanish entirely — no ghost values.
	f.Drop("w2")
	b.Reset()
	f.WritePrometheus(&b)
	if strings.Contains(b.String(), `node="w2"`) {
		t.Fatalf("dropped node still present:\n%s", b.String())
	}
}

func TestGaugeVecDelete(t *testing.T) {
	r := New()
	g := r.GaugeVec("test_node_up", "Node liveness.", "node")
	g.With("a").Set(1)
	g.With("b").Set(1)
	g.Delete("b")
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_node_up{node="a"} 1`) {
		t.Fatalf("surviving series missing:\n%s", out)
	}
	if strings.Contains(out, `node="b"`) {
		t.Fatalf("deleted series still rendered:\n%s", out)
	}
}
