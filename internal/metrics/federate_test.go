package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// workerExposition renders a registry the way a pdlworkerd /metrics scrape
// looks: taskrt_worker_* families plus an unrelated family that federation
// must filter out.
func workerExposition(t *testing.T, execs float64) string {
	t.Helper()
	r := New()
	r.CounterVec("taskrt_worker_executions_total", "Kernels executed.", "codelet", "arch").
		With("gemm", "x86").Add(execs)
	h := r.HistogramVec("taskrt_worker_kernel_seconds", "Kernel latency.", []float64{0.01, 0.1}, "codelet")
	h.With("gemm").Observe(0.05)
	r.Gauge("taskrt_worker_inflight_kernels", "Kernels executing now.").Set(2)
	r.Gauge("go_goroutines_like", "Not federated.").Set(99)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestParsePromTextRoundTrip(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader(workerExposition(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	ex, ok := byName["taskrt_worker_executions_total"]
	if !ok || ex.Type != "counter" || len(ex.Samples) != 1 {
		t.Fatalf("executions family wrong: %+v", ex)
	}
	if ex.Samples[0].Value != 3 || !strings.Contains(ex.Samples[0].Labels, `codelet="gemm"`) {
		t.Fatalf("executions sample wrong: %+v", ex.Samples[0])
	}
	// Histogram series (_bucket/_sum/_count) must attach to the base family.
	hist := byName["taskrt_worker_kernel_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type = %q", hist.Type)
	}
	names := map[string]bool{}
	for _, s := range hist.Samples {
		names[s.Name] = true
	}
	for _, want := range []string{"taskrt_worker_kernel_seconds_bucket", "taskrt_worker_kernel_seconds_sum", "taskrt_worker_kernel_seconds_count"} {
		if !names[want] {
			t.Fatalf("histogram family lacks %s: %v", want, names)
		}
	}
}

// Two scrapes of the same worker must not double-count counters: Update
// replaces the node's snapshot wholesale.
func TestFederatorDedup(t *testing.T) {
	f := NewFederator()
	for i := 0; i < 2; i++ { // scrape the same node twice
		fams, err := ParsePromText(strings.NewReader(workerExposition(t, 5)))
		if err != nil {
			t.Fatal(err)
		}
		f.Update("w1", fams)
	}
	var b bytes.Buffer
	f.WritePrometheus(&b)
	out := b.String()
	want := `taskrt_fleet_executions_total{node="w1",codelet="gemm",arch="x86"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("fleet output lacks %q:\n%s", want, out)
	}
	if strings.Count(out, "taskrt_fleet_executions_total{") != 1 {
		t.Fatalf("double-counted executions after re-scrape:\n%s", out)
	}
	if strings.Contains(out, "go_goroutines_like") {
		t.Fatalf("non-federated family leaked into fleet output:\n%s", out)
	}
}

func TestFederatorMultiNodeAndDrop(t *testing.T) {
	f := NewFederator()
	for _, node := range []string{"w1", "w2"} {
		fams, err := ParsePromText(strings.NewReader(workerExposition(t, 1)))
		if err != nil {
			t.Fatal(err)
		}
		f.Update(node, fams)
	}
	var b bytes.Buffer
	f.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`taskrt_fleet_kernel_seconds_bucket{node="w1",codelet="gemm",le="0.1"} 1`,
		`taskrt_fleet_kernel_seconds_bucket{node="w2",codelet="gemm",le="0.1"} 1`,
		`taskrt_fleet_inflight_kernels{node="w1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output lacks %q:\n%s", want, out)
		}
	}
	if got := f.Nodes(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("Nodes() = %v", got)
	}

	// A dropped node's series vanish entirely — no ghost values.
	f.Drop("w2")
	b.Reset()
	f.WritePrometheus(&b)
	if strings.Contains(b.String(), `node="w2"`) {
		t.Fatalf("dropped node still present:\n%s", b.String())
	}
}

// The exposition edge cases the fleet path must survive: ±Inf and NaN
// sample values (every histogram has a le="+Inf" bucket; a gauge fed from a
// 0/0 ratio is NaN) and label values carrying the escapes `%q` emits —
// `\"`, `\n`, `\\` — plus unescaped '}' and spaces, which break a naive
// scan for the end of the label block.
func TestParsePromTextEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		line   string
		sample string // expected sample name
		labels map[string]string
		value  func(float64) bool
	}{
		{
			name:   "plus inf value",
			line:   `taskrt_worker_kernel_seconds_bucket{le="+Inf"} 7`,
			sample: "taskrt_worker_kernel_seconds_bucket",
			labels: map[string]string{"le": "+Inf"},
			value:  func(v float64) bool { return v == 7 },
		},
		{
			name:   "inf sample value",
			line:   `taskrt_worker_ratio +Inf`,
			sample: "taskrt_worker_ratio",
			labels: map[string]string{},
			value:  func(v float64) bool { return math.IsInf(v, 1) },
		},
		{
			name:   "nan sample value",
			line:   `taskrt_worker_ratio NaN`,
			sample: "taskrt_worker_ratio",
			labels: map[string]string{},
			value:  math.IsNaN,
		},
		{
			name:   "brace in label value",
			line:   `taskrt_worker_executions_total{codelet="C[0,1]+={A}*{B}"} 2`,
			sample: "taskrt_worker_executions_total",
			labels: map[string]string{"codelet": "C[0,1]+={A}*{B}"},
			value:  func(v float64) bool { return v == 2 },
		},
		{
			name:   "escaped quote backslash newline",
			line:   `taskrt_worker_executions_total{codelet="say \"hi\\\" now",node="a\nb"} 4`,
			sample: "taskrt_worker_executions_total",
			labels: map[string]string{"codelet": `say "hi\" now`, "node": "a\nb"},
			value:  func(v float64) bool { return v == 4 },
		},
		{
			name:   "space inside label value",
			line:   `taskrt_worker_executions_total{codelet="a b"} 1`,
			sample: "taskrt_worker_executions_total",
			labels: map[string]string{"codelet": "a b"},
			value:  func(v float64) bool { return v == 1 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fams, err := ParsePromText(strings.NewReader(tc.line + "\n"))
			if err != nil {
				t.Fatal(err)
			}
			if len(fams) != 1 || len(fams[0].Samples) != 1 {
				t.Fatalf("parsed %+v", fams)
			}
			s := fams[0].Samples[0]
			if s.Name != tc.sample {
				t.Fatalf("sample name %q, want %q", s.Name, tc.sample)
			}
			if !tc.value(s.Value) {
				t.Fatalf("sample value %v rejected", s.Value)
			}
			got, err := ParseLabels(s.Labels)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.labels) {
				t.Fatalf("labels %#v, want %#v", got, tc.labels)
			}
			for k, v := range tc.labels {
				if got[k] != v {
					t.Fatalf("label %s = %q, want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestParsePromTextMalformed(t *testing.T) {
	for _, line := range []string{
		`taskrt_worker_x{le="unterminated value} 1`,
		`taskrt_worker_x{le="a" 1`, // unterminated block
		`taskrt_worker_x`,          // no value
		`taskrt_worker_x{} notanumber`,
	} {
		if _, err := ParsePromText(strings.NewReader(line + "\n")); err == nil {
			t.Fatalf("line %q accepted", line)
		}
	}
}

func TestParseLabelsMalformed(t *testing.T) {
	for _, raw := range []string{`le`, `le=3`, `le="a`} {
		if _, err := ParseLabels(raw); err == nil {
			t.Fatalf("label block %q accepted", raw)
		}
	}
}

// A worker exposition with hostile label values and non-finite samples must
// round-trip through the federator: scrape → parse → fleet render → parse,
// with values and labels intact at the end.
func TestFederatorRoundTripsEdgeCases(t *testing.T) {
	evil := "C{0,1} \"q\"\\\nend" // '}', quotes, backslash, newline
	r := New()
	r.CounterVec("taskrt_worker_executions_total", "Kernels executed.", "codelet").
		With(evil).Add(3)
	h := r.HistogramVec("taskrt_worker_kernel_seconds", "Kernel latency.", []float64{0.01}, "codelet")
	h.With(evil).Observe(5) // lands in the +Inf bucket only
	var b bytes.Buffer
	r.WritePrometheus(&b)

	fams, err := ParsePromText(&b)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFederator()
	f.Update("w1", fams)
	var fleet bytes.Buffer
	f.WritePrometheus(&fleet)

	out, err := ParsePromText(bytes.NewReader(fleet.Bytes()))
	if err != nil {
		t.Fatalf("fleet render does not re-parse: %v\n%s", err, fleet.String())
	}
	found := false
	for _, fam := range out {
		for _, s := range fam.Samples {
			labels, err := ParseLabels(s.Labels)
			if err != nil {
				t.Fatalf("sample %s{%s}: %v", s.Name, s.Labels, err)
			}
			if s.Name == "taskrt_fleet_executions_total" {
				found = true
				if labels["codelet"] != evil || labels["node"] != "w1" || s.Value != 3 {
					t.Fatalf("mangled round-trip: %+v labels %#v", s, labels)
				}
			}
			if s.Name == "taskrt_fleet_kernel_seconds_bucket" && labels["le"] == "+Inf" && s.Value != 1 {
				t.Fatalf("+Inf bucket lost its count: %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("federated counter missing:\n%s", fleet.String())
	}
}

func TestGaugeVecDelete(t *testing.T) {
	r := New()
	g := r.GaugeVec("test_node_up", "Node liveness.", "node")
	g.With("a").Set(1)
	g.With("b").Set(1)
	g.Delete("b")
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_node_up{node="a"} 1`) {
		t.Fatalf("surviving series missing:\n%s", out)
	}
	if strings.Contains(out, `node="b"`) {
		t.Fatalf("deleted series still rendered:\n%s", out)
	}
}
