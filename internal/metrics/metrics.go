// Package metrics is a dependency-free Prometheus-style instrumentation
// layer: counters, gauges and histograms, with optional label vectors,
// registered in a Registry that renders the text exposition format.
//
// It was extracted from internal/server so one metrics substrate serves the
// whole system: the HTTP registry service keeps its pdlserved_* families,
// and the task runtime instruments its workers (queue depth, steals,
// retries, blacklist state, task latency per PDL unit id) into the shared
// Default registry — a single /metrics scrape shows the service and the
// runtime side by side, the "performance relevant observations" Section II
// of the paper wants tied back to platform descriptions.
//
// Instruments are lock-free on the update path (atomic adds; label lookup
// takes a short read lock), so they are safe to use inside the runtime's
// work-stealing hot loop.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v (must be >= 0; negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.value() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	n      atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1), // last slot = +Inf overflow
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// vec is the shared label-vector machinery: children keyed by joined label
// values, created on first use.
type vec[T any] struct {
	labels []string
	mu     sync.RWMutex
	kids   map[string]*T
	make   func() *T
}

func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for labels %v", len(values), v.labels))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	kid, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return kid
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if kid, ok = v.kids[key]; ok {
		return kid
	}
	kid = v.make()
	v.kids[key] = kid
	return kid
}

// del removes the child for the given label values, if any.
func (v *vec[T]) del(values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for labels %v", len(values), v.labels))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	delete(v.kids, key)
	v.mu.Unlock()
}

// each visits children sorted by label values (deterministic render order).
func (v *vec[T]) each(f func(values []string, kid *T)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	kids := make(map[string]*T, len(v.kids))
	for k, kid := range v.kids {
		kids[k] = kid
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		var values []string
		if k != "" || len(v.labels) > 0 {
			values = strings.Split(k, "\x00")
		}
		f(values, kids[k])
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ vec[Counter] }

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// Each visits every child with its label values, sorted.
func (v *CounterVec) Each(f func(values []string, c *Counter)) { v.each(f) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ vec[Gauge] }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// Each visits every child with its label values, sorted.
func (v *GaugeVec) Each(f func(values []string, g *Gauge)) { v.each(f) }

// Delete drops the child series for the given label values, so scrapes stop
// reporting it entirely (a dead cluster node's gauges must disappear, not
// linger at their last value). Gauge-only: deleting a counter child would
// break monotonicity if it were ever recreated.
func (v *GaugeVec) Delete(values ...string) { v.del(values...) }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ vec[Histogram] }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }

// Each visits every child with its label values, sorted.
func (v *HistogramVec) Each(f func(values []string, h *Histogram)) { v.each(f) }

// family is one registered metric family.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	render func(w io.Writer)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format, in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
}

// New returns an empty registry.
func New() *Registry { return &Registry{byName: map[string]bool{}} }

// Default is the process-wide registry. The task runtime registers its
// families here; pdlserved renders it alongside its own registry so one
// scrape covers both layers.
var Default = New()

func (r *Registry) register(name, help, typ string, render func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byName[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, render: render})
}

// labelPairs renders {k1="v1",...} from parallel name/value slices.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %g\n", name, c.Value())
	})
	return c
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{vec[Counter]{labels: labels, kids: map[string]*Counter{}, make: func() *Counter { return &Counter{} }}}
	r.register(name, help, "counter", func(w io.Writer) {
		v.Each(func(values []string, c *Counter) {
			fmt.Fprintf(w, "%s%s %g\n", name, labelPairs(labels, values), c.Value())
		})
	})
	return v
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %g\n", name, g.Value())
	})
	return g
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{vec[Gauge]{labels: labels, kids: map[string]*Gauge{}, make: func() *Gauge { return &Gauge{} }}}
	r.register(name, help, "gauge", func(w io.Writer) {
		v.Each(func(values []string, g *Gauge) {
			fmt.Fprintf(w, "%s%s %g\n", name, labelPairs(labels, values), g.Value())
		})
	})
	return v
}

// GaugeFunc registers a gauge whose value is computed at render time — for
// state owned elsewhere (store versions, cache sizes) that would otherwise
// need write-through plumbing.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %g\n", name, fn())
	})
}

// CounterFunc registers a counter whose value is computed at render time
// (the underlying source must be monotonic, e.g. cache hit totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %g\n", name, fn())
	})
}

// renderHistogram writes one histogram's cumulative buckets, sum and count,
// with optional extra label pairs spliced before the le label.
func renderHistogram(w io.Writer, name string, labels, values []string, bounds []float64, h *Histogram) {
	cum := uint64(0)
	prefix := ""
	if len(labels) > 0 {
		p := labelPairs(labels, values)
		prefix = p[1:len(p)-1] + ","
	}
	for i, bound := range bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, prefix, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, h.Count())
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labelPairs(labels, values), h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelPairs(labels, values), h.Count())
}

// Histogram registers and returns a new histogram with the given ascending
// upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func(w io.Writer) {
		renderHistogram(w, name, nil, nil, bounds, h)
	})
	return h
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{vec[Histogram]{labels: labels, kids: map[string]*Histogram{}, make: func() *Histogram { return newHistogram(bounds) }}}
	r.register(name, help, "histogram", func(w io.Writer) {
		v.Each(func(values []string, h *Histogram) {
			renderHistogram(w, name, labels, values, bounds, h)
		})
	})
	return v
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.render(w)
	}
}
