package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // counters are monotonic: negative deltas are ignored
	if c.Value() != 3.5 {
		t.Fatalf("value = %g", c.Value())
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if g.Value() != 7.5 {
		t.Fatalf("value = %g", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} { // 1 lands in le="1" (first bound >= v)
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="10"} 3`, // cumulative
		`h_bucket{le="+Inf"} 4`,
		"h_sum 106.5",
		"h_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndRender(t *testing.T) {
	r := New()
	cv := r.CounterVec("tasks_total", "help", "unit")
	gv := r.GaugeVec("depth", "help", "unit")
	hv := r.HistogramVec("lat", "help", []float64{1}, "unit")
	cv.With("worker1").Add(2)
	cv.With("worker0").Inc()
	if cv.With("worker1") != cv.With("worker1") {
		t.Fatal("With must return the same child")
	}
	gv.With("worker0").Set(3)
	hv.With("worker0").Observe(0.5)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE tasks_total counter",
		`tasks_total{unit="worker0"} 1`,
		`tasks_total{unit="worker1"} 2`,
		`depth{unit="worker0"} 3`,
		`lat_bucket{unit="worker0",le="1"} 1`,
		`lat_sum{unit="worker0"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Children render sorted by label value regardless of creation order.
	if strings.Index(out, `unit="worker0"`) > strings.Index(out, `unit="worker1"`) {
		t.Fatalf("children unsorted:\n%s", out)
	}
}

func TestVecWrongArity(t *testing.T) {
	r := New()
	cv := r.CounterVec("c", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	cv.With("only-one")
}

func TestFuncMetrics(t *testing.T) {
	r := New()
	v := 41.0
	r.GaugeFunc("gf", "help", func() float64 { return v })
	r.CounterFunc("cf_total", "help", func() float64 { return v + 1 })
	v = 42
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "gf 42") || !strings.Contains(out, "cf_total 43") {
		t.Fatalf("func metrics read stale values:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE cf_total counter") {
		t.Fatalf("CounterFunc must render as counter:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("dup", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("dup", "help")
}

func TestRenderOrderIsRegistrationOrder(t *testing.T) {
	r := New()
	r.Counter("z_first", "help")
	r.Counter("a_second", "help")
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Index(out, "z_first") > strings.Index(out, "a_second") {
		t.Fatalf("families reordered:\n%s", out)
	}
}

// The update path is what runs inside the work-stealing loop; exercise it
// from many goroutines so -race vouches for the lock-free claim.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	cv := r.CounterVec("cv_total", "help", "unit")
	h := r.Histogram("h", "help", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			unit := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.Inc()
				cv.With(unit).Inc()
				h.Observe(float64(i % 20))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %g", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	total := 0.0
	cv.Each(func(_ []string, child *Counter) { total += child.Value() })
	if total != 8000 {
		t.Fatalf("vec total = %g", total)
	}
}
