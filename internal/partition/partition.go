// Package partition implements the data distributions referenced by
// Cascabel execute annotations (paper Section IV-A): BLOCK, CYCLIC and
// BLOCK_CYCLIC one-dimensional distributions plus two-dimensional matrix
// tiling. The translator and runtime use these to decompose data-parallel
// tasks across processing units.
package partition

import (
	"fmt"
	"strings"
)

// Dist names a distribution scheme.
type Dist int

const (
	// Block assigns each owner one contiguous chunk of ~n/p elements.
	Block Dist = iota
	// Cyclic deals single elements round-robin.
	Cyclic
	// BlockCyclic deals fixed-size blocks round-robin.
	BlockCyclic
)

// String returns the annotation spelling of the distribution.
func (d Dist) String() string {
	switch d {
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "BLOCK_CYCLIC"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// ParseDist parses an annotation distribution name (case-insensitive;
// "BLOCKCYCLIC" and "BLOCK-CYCLIC" are accepted aliases).
func ParseDist(s string) (Dist, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BLOCK":
		return Block, nil
	case "CYCLIC":
		return Cyclic, nil
	case "BLOCK_CYCLIC", "BLOCKCYCLIC", "BLOCK-CYCLIC":
		return BlockCyclic, nil
	}
	return 0, fmt.Errorf("partition: unknown distribution %q", s)
}

// Span is a contiguous index range [Start, Start+Len).
type Span struct {
	Start int
	Len   int
}

// Piece is the set of spans owned by one participant.
type Piece struct {
	Owner int
	Spans []Span
}

// Elements returns the total number of elements in the piece.
func (p Piece) Elements() int {
	n := 0
	for _, s := range p.Spans {
		n += s.Len
	}
	return n
}

// Partition1D splits the index space [0,n) across p owners using the given
// distribution. blockSize is only used by BlockCyclic (and must be >= 1
// there). Owners may receive empty pieces when p > n. The returned pieces
// are indexed by owner.
func Partition1D(d Dist, n, p, blockSize int) ([]Piece, error) {
	if n < 0 {
		return nil, fmt.Errorf("partition: negative length %d", n)
	}
	if p < 1 {
		return nil, fmt.Errorf("partition: need at least 1 owner, got %d", p)
	}
	pieces := make([]Piece, p)
	for i := range pieces {
		pieces[i].Owner = i
	}
	switch d {
	case Block:
		// Balanced block: the first n%p owners get one extra element.
		base, extra := n/p, n%p
		off := 0
		for i := 0; i < p; i++ {
			l := base
			if i < extra {
				l++
			}
			if l > 0 {
				pieces[i].Spans = append(pieces[i].Spans, Span{Start: off, Len: l})
			}
			off += l
		}
	case Cyclic:
		for i := 0; i < n; i++ {
			o := i % p
			spans := pieces[o].Spans
			if len(spans) > 0 && spans[len(spans)-1].Start+spans[len(spans)-1].Len == i {
				spans[len(spans)-1].Len++
			} else {
				spans = append(spans, Span{Start: i, Len: 1})
			}
			pieces[o].Spans = spans
		}
	case BlockCyclic:
		if blockSize < 1 {
			return nil, fmt.Errorf("partition: block-cyclic needs blockSize >= 1, got %d", blockSize)
		}
		for start := 0; start < n; start += blockSize {
			l := blockSize
			if start+l > n {
				l = n - start
			}
			o := (start / blockSize) % p
			pieces[o].Spans = append(pieces[o].Spans, Span{Start: start, Len: l})
		}
	default:
		return nil, fmt.Errorf("partition: unknown distribution %v", d)
	}
	return pieces, nil
}

// Owner returns the owner of element i under the distribution, in O(1).
func Owner(d Dist, n, p, blockSize, i int) (int, error) {
	if i < 0 || i >= n {
		return 0, fmt.Errorf("partition: index %d out of range [0,%d)", i, n)
	}
	if p < 1 {
		return 0, fmt.Errorf("partition: need at least 1 owner")
	}
	switch d {
	case Block:
		base, extra := n/p, n%p
		// First `extra` owners hold base+1 elements.
		cut := extra * (base + 1)
		if i < cut {
			return i / (base + 1), nil
		}
		if base == 0 {
			return 0, fmt.Errorf("partition: internal: empty tail blocks")
		}
		return extra + (i-cut)/base, nil
	case Cyclic:
		return i % p, nil
	case BlockCyclic:
		if blockSize < 1 {
			return 0, fmt.Errorf("partition: block-cyclic needs blockSize >= 1")
		}
		return (i / blockSize) % p, nil
	}
	return 0, fmt.Errorf("partition: unknown distribution %v", d)
}

// Tile is one rectangle of a 2-D decomposition.
type Tile struct {
	I, J int // tile grid coordinates
	Row  int // starting row
	Col  int // starting column
	M, N int // tile extent (edge tiles may be smaller)
}

// Grid2D tiles an m×n index space with tileM×tileN rectangles, returning
// tiles in row-major grid order. Edge tiles are clipped.
func Grid2D(m, n, tileM, tileN int) ([]Tile, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("partition: negative extent %dx%d", m, n)
	}
	if tileM < 1 || tileN < 1 {
		return nil, fmt.Errorf("partition: tile extent must be >= 1, got %dx%d", tileM, tileN)
	}
	var tiles []Tile
	for i, r := 0, 0; r < m; i, r = i+1, r+tileM {
		h := tileM
		if r+h > m {
			h = m - r
		}
		for j, c := 0, 0; c < n; j, c = j+1, c+tileN {
			w := tileN
			if c+w > n {
				w = n - c
			}
			tiles = append(tiles, Tile{I: i, J: j, Row: r, Col: c, M: h, N: w})
		}
	}
	return tiles, nil
}

// GridDims returns the tile-grid dimensions Grid2D would produce.
func GridDims(m, n, tileM, tileN int) (rows, cols int) {
	rows = (m + tileM - 1) / tileM
	cols = (n + tileN - 1) / tileN
	return rows, cols
}
