package partition

import (
	"testing"
	"testing/quick"
)

func coverage(t *testing.T, pieces []Piece, n int) {
	t.Helper()
	seen := make([]int, n)
	for _, pc := range pieces {
		for _, s := range pc.Spans {
			if s.Len <= 0 {
				t.Fatalf("non-positive span %v", s)
			}
			for i := s.Start; i < s.Start+s.Len; i++ {
				if i < 0 || i >= n {
					t.Fatalf("span %v out of range [0,%d)", s, n)
				}
				seen[i]++
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("element %d covered %d times", i, c)
		}
	}
}

func TestBlockBalanced(t *testing.T) {
	pieces, err := Partition1D(Block, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, pieces, 10)
	// 10/3: owners get 4,3,3.
	want := []int{4, 3, 3}
	for i, w := range want {
		if got := pieces[i].Elements(); got != w {
			t.Errorf("owner %d elements = %d; want %d", i, got, w)
		}
	}
	// Block pieces are single contiguous spans.
	for _, pc := range pieces {
		if len(pc.Spans) != 1 {
			t.Errorf("block piece has %d spans", len(pc.Spans))
		}
	}
}

func TestBlockMoreOwnersThanElements(t *testing.T) {
	pieces, err := Partition1D(Block, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, pieces, 2)
	if pieces[0].Elements() != 1 || pieces[1].Elements() != 1 || pieces[2].Elements() != 0 {
		t.Fatalf("pieces = %+v", pieces)
	}
}

func TestCyclic(t *testing.T) {
	pieces, err := Partition1D(Cyclic, 7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, pieces, 7)
	// owner 0: 0,3,6; owner 1: 1,4; owner 2: 2,5.
	if pieces[0].Elements() != 3 || pieces[1].Elements() != 2 || pieces[2].Elements() != 2 {
		t.Fatalf("pieces = %+v", pieces)
	}
}

func TestCyclicSingleOwnerCoalesces(t *testing.T) {
	pieces, err := Partition1D(Cyclic, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces[0].Spans) != 1 || pieces[0].Spans[0] != (Span{0, 5}) {
		t.Fatalf("cyclic p=1 should coalesce to one span: %+v", pieces[0].Spans)
	}
}

func TestBlockCyclic(t *testing.T) {
	pieces, err := Partition1D(BlockCyclic, 10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, pieces, 10)
	// blocks [0-2][3-5][6-8][9]: owners 0,1,0,1.
	if pieces[0].Elements() != 6 || pieces[1].Elements() != 4 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if _, err := Partition1D(BlockCyclic, 10, 2, 0); err == nil {
		t.Fatal("blockSize 0 must fail")
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition1D(Block, -1, 2, 0); err == nil {
		t.Fatal("negative n must fail")
	}
	if _, err := Partition1D(Block, 4, 0, 0); err == nil {
		t.Fatal("0 owners must fail")
	}
	if _, err := Partition1D(Dist(99), 4, 2, 0); err == nil {
		t.Fatal("unknown dist must fail")
	}
	if _, err := Owner(Block, 4, 2, 0, 4); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if _, err := Owner(Block, 4, 0, 0, 1); err == nil {
		t.Fatal("0 owners must fail in Owner")
	}
	if _, err := Owner(BlockCyclic, 4, 2, 0, 1); err == nil {
		t.Fatal("blockSize 0 must fail in Owner")
	}
	if _, err := Owner(Dist(99), 4, 2, 0, 1); err == nil {
		t.Fatal("unknown dist must fail in Owner")
	}
}

func TestParseDist(t *testing.T) {
	cases := map[string]Dist{
		"BLOCK": Block, "block": Block,
		"CYCLIC": Cyclic, "Cyclic": Cyclic,
		"BLOCK_CYCLIC": BlockCyclic, "BLOCKCYCLIC": BlockCyclic, "block-cyclic": BlockCyclic,
	}
	for s, want := range cases {
		got, err := ParseDist(s)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseDist("SCATTER"); err == nil {
		t.Fatal("unknown dist must fail")
	}
	if Block.String() != "BLOCK" || BlockCyclic.String() != "BLOCK_CYCLIC" {
		t.Fatal("Dist.String broken")
	}
}

func TestGrid2D(t *testing.T) {
	tiles, err := Grid2D(10, 7, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := GridDims(10, 7, 4, 3)
	if rows != 3 || cols != 3 {
		t.Fatalf("grid dims = %dx%d", rows, cols)
	}
	if len(tiles) != rows*cols {
		t.Fatalf("tiles = %d", len(tiles))
	}
	// Exact coverage of the 10x7 space.
	area := 0
	for _, tl := range tiles {
		if tl.M < 1 || tl.N < 1 {
			t.Fatalf("degenerate tile %+v", tl)
		}
		area += tl.M * tl.N
	}
	if area != 70 {
		t.Fatalf("covered area = %d", area)
	}
	// Edge tile clipped: last row tiles have M=2, last col tiles N=1.
	last := tiles[len(tiles)-1]
	if last.M != 2 || last.N != 1 {
		t.Fatalf("edge tile = %+v", last)
	}
	if _, err := Grid2D(4, 4, 0, 1); err == nil {
		t.Fatal("tileM 0 must fail")
	}
	if _, err := Grid2D(-1, 4, 1, 1); err == nil {
		t.Fatal("negative extent must fail")
	}
}

func TestGrid2DEmpty(t *testing.T) {
	tiles, err := Grid2D(0, 5, 2, 2)
	if err != nil || len(tiles) != 0 {
		t.Fatalf("empty grid: %v %v", tiles, err)
	}
}

// Property-based: every distribution covers [0,n) exactly once and Owner
// agrees with the pieces, for all three schemes.
func TestQuickPartitionCoverageAndOwner(t *testing.T) {
	f := func(nn, pp, bb uint8, which uint8) bool {
		n := int(nn % 120)
		p := int(pp%7) + 1
		b := int(bb%5) + 1
		d := []Dist{Block, Cyclic, BlockCyclic}[which%3]
		pieces, err := Partition1D(d, n, p, b)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, pc := range pieces {
			for _, s := range pc.Spans {
				for i := s.Start; i < s.Start+s.Len; i++ {
					if i < 0 || i >= n {
						return false
					}
					seen[i]++
					o, err := Owner(d, n, p, b, i)
					if err != nil || o != pc.Owner {
						return false
					}
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Grid2D covers the m×n space exactly once.
func TestQuickGridCoverage(t *testing.T) {
	f := func(mm, nn, tm, tn uint8) bool {
		m, n := int(mm%40), int(nn%40)
		tM, tN := int(tm%8)+1, int(tn%8)+1
		tiles, err := Grid2D(m, n, tM, tN)
		if err != nil {
			return false
		}
		cover := make([]int, m*n)
		for _, tl := range tiles {
			for r := tl.Row; r < tl.Row+tl.M; r++ {
				for c := tl.Col; c < tl.Col+tl.N; c++ {
					cover[r*n+c]++
				}
			}
		}
		for _, c := range cover {
			if c != 1 {
				return false
			}
		}
		rows, cols := GridDims(m, n, tM, tN)
		return len(tiles) == rows*cols || (m == 0 || n == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
