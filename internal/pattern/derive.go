package pattern

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Derive abstracts a concrete platform into the generic pattern it
// instantiates: the reverse arrow of the paper's Figure 2. PU subtrees
// collapse by (class, architecture): eight x86 master cores with two gpu
// workers derive the host-device pattern with MinCount 8 and 2. Derived
// patterns are what makes "multiple logic platform patterns ... co-exist for
// a single target system" concrete — see View and Views.
func Derive(pl *core.Platform) (*Pattern, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if len(pl.Masters) == 0 {
		return nil, fmt.Errorf("pattern: cannot derive from empty platform")
	}
	used := map[string]int{}
	root := deriveNode(pl.Masters[0], used)
	// Additional masters merge into the root count when they share class
	// and architecture; heterogeneous multi-master platforms derive from
	// their first master (patterns describe one control tree).
	for _, m := range pl.Masters[1:] {
		if m.Architecture() == pl.Masters[0].Architecture() {
			root.MinCount += m.EffectiveQuantity()
		}
	}
	p := &Pattern{Name: "derived:" + pl.Name, Root: root}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func deriveNode(pu *core.PU, used map[string]int) *Node {
	arch := pu.Architecture()
	role := fmt.Sprintf("%s-%s", classRole(pu.Class), arch)
	if arch == "" {
		role = classRole(pu.Class)
	}
	used[role]++
	if used[role] > 1 {
		role = fmt.Sprintf("%s-%d", role, used[role])
	}
	n := &Node{
		Role:     role,
		Class:    pu.Class,
		MinCount: pu.EffectiveQuantity(),
	}
	if arch != "" {
		n.Constraints = []Constraint{{Name: core.PropArchitecture, Value: arch}}
	}
	// Children collapse by (class, arch): identical siblings accumulate
	// counts instead of repeating roles.
	type key struct {
		class core.Class
		arch  string
	}
	groups := map[key][]*core.PU{}
	var order []key
	for _, c := range pu.Children {
		k := key{c.Class, c.Architecture()}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].class != order[j].class {
			return order[i].class < order[j].class
		}
		return order[i].arch < order[j].arch
	})
	for _, k := range order {
		members := groups[k]
		child := deriveNode(members[0], used)
		total := 0
		for _, m := range members {
			total += m.EffectiveQuantity()
		}
		child.MinCount = total
		n.Children = append(n.Children, child)
	}
	return n
}

func classRole(c core.Class) string {
	switch c {
	case core.Master:
		return "master"
	case core.Hybrid:
		return "hybrid"
	default:
		return "worker"
	}
}

// View is one named logical control-view over a physical platform: the
// paper's observation that "multiple logic platform patterns can co-exist
// for a single target system". A view pairs a pattern with the binding that
// anchors it on the machine.
type View struct {
	Name    string
	Pattern *Pattern
	Binding *Binding
}

// Views computes every predefined logical view the platform supports, plus
// its own derived pattern. The same xeon-2gpu box is simultaneously a seq
// machine, an smp machine, an OpenCL host-device machine and a multi-gpu
// machine — each view exposing the control relationships one programming
// model cares about.
func Views(pl *core.Platform) ([]View, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	var out []View
	for _, name := range KnownTargets() {
		p, err := FromTarget(name)
		if err != nil {
			return nil, err
		}
		b, err := Match(p, pl)
		if err != nil {
			continue
		}
		out = append(out, View{Name: name, Pattern: p, Binding: b})
	}
	if d, err := Derive(pl); err == nil {
		if b, err := Match(d, pl); err == nil {
			out = append(out, View{Name: d.Name, Pattern: d, Binding: b})
		}
	}
	return out, nil
}
