package pattern

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/discover"
)

func TestDeriveXeon2GPU(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	p, err := Derive(pl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Class != core.Master || p.Root.MinCount != 8 {
		t.Fatalf("root = %+v", p.Root)
	}
	if len(p.Root.Children) != 1 {
		t.Fatalf("children = %v", p.Root.Children)
	}
	dev := p.Root.Children[0]
	// The two gpu workers collapse into one role with MinCount 2.
	if dev.Class != core.Worker || dev.MinCount != 2 {
		t.Fatalf("device role = %+v", dev)
	}
	if len(dev.Constraints) != 1 || dev.Constraints[0].Value != "gpu" {
		t.Fatalf("constraints = %v", dev.Constraints)
	}
	// A derived pattern matches the platform it came from.
	b, err := Match(p, pl)
	if err != nil {
		t.Fatalf("derived pattern does not match its own platform: %v", err)
	}
	if b.UnitCount(dev.Role) != 2 {
		t.Fatalf("binding = %v", b)
	}
}

func TestDeriveCellBlade(t *testing.T) {
	pl := discover.MustPlatform("cell-blade")
	p, err := Derive(pl)
	if err != nil {
		t.Fatal(err)
	}
	// master(ppc) -> hybrid(ppc) -> worker(spe){>=8}
	if p.Root.Children[0].Class != core.Hybrid {
		t.Fatalf("pattern = %s", p)
	}
	spe := p.Root.Children[0].Children[0]
	if spe.MinCount != 8 || spe.Constraints[0].Value != "spe" {
		t.Fatalf("spe role = %+v", spe)
	}
	if !Satisfies(p, pl) {
		t.Fatal("derived cell pattern must match the blade")
	}
	// And it must NOT match the GPU box.
	if Satisfies(p, discover.MustPlatform("xeon-2gpu")) {
		t.Fatal("cell pattern matched a gpu box")
	}
}

func TestDeriveCollapsesMixedSiblings(t *testing.T) {
	pl, err := core.NewBuilder("mixed").
		Master("m", core.Arch("x86")).
		Worker("g0", core.Arch("gpu")).
		Worker("g1", core.Arch("gpu")).
		Worker("f0", core.Arch("fpga")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Derive(pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Children) != 2 {
		t.Fatalf("roles = %v", p.Root.Children)
	}
	var gpuCount, fpgaCount int
	for _, c := range p.Root.Children {
		switch c.Constraints[0].Value {
		case "gpu":
			gpuCount = c.MinCount
		case "fpga":
			fpgaCount = c.MinCount
		}
	}
	if gpuCount != 2 || fpgaCount != 1 {
		t.Fatalf("gpu=%d fpga=%d", gpuCount, fpgaCount)
	}
}

func TestDeriveErrors(t *testing.T) {
	if _, err := Derive(&core.Platform{}); err == nil {
		t.Fatal("invalid platform must fail")
	}
}

func TestViewsCoexist(t *testing.T) {
	pl := discover.MustPlatform("xeon-2gpu")
	views, err := Views(pl)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range views {
		names[v.Name] = true
		if v.Binding == nil {
			t.Fatalf("view %s without binding", v.Name)
		}
	}
	// The same physical box supports all of these logical views at once.
	for _, want := range []string{"seq", "x86", "opencl", "cuda", "multi-gpu", "smp", "derived:xeon-2gpu"} {
		if !names[want] {
			t.Errorf("missing view %q (have %v)", want, names)
		}
	}
	// But not the cell view.
	if names["cell"] {
		t.Error("cell view should not match a gpu box")
	}

	// CPU-only box: no gpu views.
	cpuViews, err := Views(discover.MustPlatform("xeon-cpu"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cpuViews {
		if strings.Contains(v.Name, "gpu") || v.Name == "opencl" || v.Name == "cuda" {
			t.Errorf("cpu-only box offers view %q", v.Name)
		}
	}
}
