// Package pattern implements abstract architectural patterns over the PDL
// machine model and their mapping onto concrete platforms.
//
// A pattern is a small tree of constrained PU roles ("an x86 Master
// controlling at least one gpu Worker"). Patterns are what task
// implementation variants declare as their platform requirement; the matcher
// decides whether a concrete platform satisfies a pattern and, if so, which
// concrete units play which role. This is the mechanism behind the paper's
// Figure 2 ("concrete platforms are mapped to generic processing-unit
// hierarchies to support portability") and the static task pre-selection of
// Section IV-B.
//
// Role compatibility is deliberately wider than class equality: a pattern
// Master is satisfied by any unit that can control (Master or Hybrid), a
// pattern Worker by any unit that can execute delegated work (Worker or
// Hybrid), while a pattern Hybrid requires a real Hybrid. Pattern children
// match against *descendants* of the concrete node, so a Master→Worker
// pattern maps onto a Master→Hybrid→Worker platform — exactly the CUDA
// host/device example of the paper, where "the host is expressed either as
// master or hybrid PU".
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Constraint restricts a role to concrete PUs carrying a property. An empty
// Value only requires the property to exist.
type Constraint struct {
	Name  string
	Value string
}

func (c Constraint) String() string {
	if c.Value == "" {
		return c.Name
	}
	return c.Name + "=" + c.Value
}

func (c Constraint) holds(pu *core.PU) bool {
	p, ok := pu.Descriptor.Get(c.Name)
	if !ok {
		return false
	}
	return c.Value == "" || p.Value == c.Value
}

// Node is one role in a pattern tree.
type Node struct {
	Role        string // unique label within the pattern, e.g. "host", "device"
	Class       core.Class
	Constraints []Constraint
	MinCount    int // minimum effective units the role must bind (default 1)
	Children    []*Node
}

// minCount returns MinCount with the zero value normalised to 1.
func (n *Node) minCount() int {
	if n.MinCount <= 0 {
		return 1
	}
	return n.MinCount
}

func (n *Node) String() string {
	var cs []string
	for _, c := range n.Constraints {
		cs = append(cs, c.String())
	}
	s := fmt.Sprintf("%s:%s", n.Role, n.Class)
	if len(cs) > 0 {
		s += "[" + strings.Join(cs, ",") + "]"
	}
	if n.minCount() > 1 {
		s += fmt.Sprintf("{>=%d}", n.minCount())
	}
	return s
}

// Pattern is a named abstract platform shape. Root must describe a Master
// role.
type Pattern struct {
	Name string
	Root *Node
}

// String renders the pattern tree on one line.
func (p *Pattern) String() string {
	var rec func(n *Node) string
	rec = func(n *Node) string {
		s := n.String()
		if len(n.Children) > 0 {
			var parts []string
			for _, c := range n.Children {
				parts = append(parts, rec(c))
			}
			s += "(" + strings.Join(parts, " ") + ")"
		}
		return s
	}
	return p.Name + ": " + rec(p.Root)
}

// Roles returns every role label in the pattern, depth-first.
func (p *Pattern) Roles() []string {
	var out []string
	var rec func(n *Node)
	rec = func(n *Node) {
		out = append(out, n.Role)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	return out
}

// Validate checks the pattern is well formed: non-nil root with Master or
// Hybrid class at the top, unique non-empty role labels, Workers as leaves.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("pattern %s: nil root", p.Name)
	}
	if p.Root.Class == core.Worker {
		return fmt.Errorf("pattern %s: root role %q is a Worker; patterns start at a controlling unit", p.Name, p.Root.Role)
	}
	seen := map[string]bool{}
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.Role == "" {
			return fmt.Errorf("pattern %s: node with empty role label", p.Name)
		}
		if seen[n.Role] {
			return fmt.Errorf("pattern %s: duplicate role %q", p.Name, n.Role)
		}
		seen[n.Role] = true
		if n.Class == core.Worker && len(n.Children) > 0 {
			return fmt.Errorf("pattern %s: Worker role %q has children", p.Name, n.Role)
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(p.Root)
}

// Binding maps each pattern role to the concrete PUs that play it.
type Binding struct {
	Pattern  *Pattern
	Platform *core.Platform
	Roles    map[string][]*core.PU
}

// Units returns the PUs bound to a role.
func (b *Binding) Units(role string) []*core.PU { return b.Roles[role] }

// UnitCount returns the total effective quantity bound to a role.
func (b *Binding) UnitCount(role string) int {
	n := 0
	for _, pu := range b.Roles[role] {
		n += pu.EffectiveQuantity()
	}
	return n
}

// String renders the binding role by role.
func (b *Binding) String() string {
	roles := make([]string, 0, len(b.Roles))
	for r := range b.Roles {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	var parts []string
	for _, r := range roles {
		var ids []string
		for _, pu := range b.Roles[r] {
			ids = append(ids, pu.ID)
		}
		parts = append(parts, fmt.Sprintf("%s->[%s]", r, strings.Join(ids, ",")))
	}
	return strings.Join(parts, " ")
}

// roleCompatible reports whether a concrete class can play a pattern class.
func roleCompatible(pattern, concrete core.Class) bool {
	switch pattern {
	case core.Master:
		return concrete == core.Master || concrete == core.Hybrid
	case core.Worker:
		return concrete == core.Worker || concrete == core.Hybrid
	case core.Hybrid:
		return concrete == core.Hybrid
	}
	return false
}

func nodeMatches(n *Node, pu *core.PU) bool {
	if !roleCompatible(n.Class, pu.Class) {
		return false
	}
	for _, c := range n.Constraints {
		if !c.holds(pu) {
			return false
		}
	}
	return true
}

// Match attempts to bind the pattern onto the platform. On success the
// returned binding assigns every role at least its MinCount units; roles
// greedily absorb every compatible descendant so callers see the full set of
// candidate units (schedulers narrow later). Match returns an error when the
// pattern cannot be satisfied, naming the first failing role.
func Match(p *Pattern, pl *core.Platform) (*Binding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, m := range pl.Masters {
		if b := tryRoot(p, pl, m); b != nil {
			return b, nil
		}
	}
	return nil, &NoMatchError{Pattern: p.Name, Platform: pl.Name, Role: p.Root.Role}
}

// NoMatchError reports a pattern that a platform cannot satisfy.
type NoMatchError struct {
	Pattern  string
	Platform string
	Role     string
}

func (e *NoMatchError) Error() string {
	return fmt.Sprintf("pattern: platform %q cannot satisfy pattern %q (failing role %q)", e.Platform, e.Pattern, e.Role)
}

func tryRoot(p *Pattern, pl *core.Platform, root *core.PU) *Binding {
	if !nodeMatches(p.Root, root) {
		return nil
	}
	if root.EffectiveQuantity() < p.Root.minCount() {
		return nil
	}
	b := &Binding{Pattern: p, Platform: pl, Roles: map[string][]*core.PU{}}
	b.Roles[p.Root.Role] = []*core.PU{root}
	for _, childPat := range p.Root.Children {
		if !bindRole(childPat, root, b) {
			return nil
		}
	}
	return b
}

// bindRole binds childPat against descendants of the concrete node `under`.
func bindRole(childPat *Node, under *core.PU, b *Binding) bool {
	var matched []*core.PU
	under.Walk(func(n, _ *core.PU) bool {
		if n != under && nodeMatches(childPat, n) {
			matched = append(matched, n)
		}
		return true
	})
	total := 0
	for _, m := range matched {
		total += m.EffectiveQuantity()
	}
	if total < childPat.minCount() {
		return false
	}
	b.Roles[childPat.Role] = matched
	// Grandchildren roles bind beneath each matched unit; every matched unit
	// subtree together must cover them.
	for _, gc := range childPat.Children {
		ok := false
		for _, m := range matched {
			if bindRole(gc, m, b) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfies reports whether the platform can bind the pattern.
func Satisfies(p *Pattern, pl *core.Platform) bool {
	_, err := Match(p, pl)
	return err == nil
}
