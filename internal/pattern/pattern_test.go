package pattern

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func gpgpuNode(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("gpgpu-node").
		Master("0", core.Arch("x86"), core.Qty(8)).
		Worker("1", core.Arch("gpu")).
		Worker("2", core.Arch("gpu")).
		Link(core.ICTypePCIe, "0", "1").
		Link(core.ICTypePCIe, "0", "2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func cellBlade(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("cell-blade").
		Master("ppe", core.Arch("ppc")).
		Hybrid("ctl", core.Arch("ppc")).
		Worker("spe", core.Arch("spe"), core.Qty(8)).
		End().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func cpuOnly(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("cpu-only").
		Master("cpu", core.Arch("x86"), core.Qty(4)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestHostDeviceMatch(t *testing.T) {
	pl := gpgpuNode(t)
	b, err := Match(HostDevicePattern(1), pl)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if got := b.Units("host"); len(got) != 1 || got[0].ID != "0" {
		t.Fatalf("host binding = %v", b)
	}
	if got := b.UnitCount("device"); got != 2 {
		t.Fatalf("device units = %d; want 2", got)
	}
	if !strings.Contains(b.String(), "device->[1,2]") {
		t.Fatalf("String() = %q", b.String())
	}
}

func TestMultiGPURequiresTwoDevices(t *testing.T) {
	if !Satisfies(MultiGPUPattern(), gpgpuNode(t)) {
		t.Fatal("2-gpu platform should satisfy multi-gpu")
	}
	one, err := core.NewBuilder("one").
		Master("0", core.Arch("x86")).
		Worker("1", core.Arch("gpu")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if Satisfies(MultiGPUPattern(), one) {
		t.Fatal("1-gpu platform must not satisfy multi-gpu")
	}
	_, err = Match(MultiGPUPattern(), one)
	var nme *NoMatchError
	if !asNoMatch(err, &nme) || nme.Role != "host" {
		t.Fatalf("err = %v", err)
	}
}

func asNoMatch(err error, out **NoMatchError) bool {
	if e, ok := err.(*NoMatchError); ok {
		*out = e
		return true
	}
	return false
}

func TestCellMatchesThroughHybrid(t *testing.T) {
	pl := cellBlade(t)
	b, err := Match(CellPattern(8), pl)
	if err != nil {
		t.Fatalf("cell blade should match cell pattern: %v", err)
	}
	if got := b.UnitCount("spe"); got != 8 {
		t.Fatalf("spe units = %d", got)
	}
	if Satisfies(CellPattern(9), pl) {
		t.Fatal("requiring 9 SPEs must fail on an 8-SPE blade")
	}
	if Satisfies(CellPattern(1), cpuOnly(t)) {
		t.Fatal("x86 box must not satisfy cell")
	}
}

func TestSeqMatchesEverything(t *testing.T) {
	for _, pl := range []*core.Platform{gpgpuNode(t), cellBlade(t), cpuOnly(t)} {
		if !Satisfies(SeqPattern(), pl) {
			t.Errorf("seq should match %s", pl.Name)
		}
	}
}

func TestSMPQuantity(t *testing.T) {
	if !Satisfies(SMPPattern(4), cpuOnly(t)) {
		t.Fatal("4-core box should satisfy smp(4)")
	}
	if Satisfies(SMPPattern(8), cpuOnly(t)) {
		t.Fatal("4-core box must not satisfy smp(8)")
	}
	if Satisfies(SMPPattern(2), cellBlade(t)) {
		t.Fatal("ppc blade must not satisfy x86 smp")
	}
}

func TestWorkerRoleAcceptsHybrid(t *testing.T) {
	// A pattern Worker role binds to a concrete Hybrid: the paper's "the
	// host is expressed either as master or hybrid PU" in reverse.
	p := &Pattern{Name: "offload", Root: &Node{
		Role: "host", Class: core.Master,
		Children: []*Node{{Role: "sink", Class: core.Worker,
			Constraints: []Constraint{{Name: core.PropArchitecture, Value: "ppc"}}}},
	}}
	b, err := Match(p, cellBlade(t))
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if got := b.Units("sink"); len(got) != 1 || got[0].ID != "ctl" {
		t.Fatalf("sink = %v", b)
	}
}

func TestConstraintExistenceOnly(t *testing.T) {
	pl := gpgpuNode(t)
	pl.FindPU("1").Descriptor.SetFixed(core.PropDeviceName, "GTX 480")
	p := &Pattern{Name: "named", Root: &Node{
		Role: "host", Class: core.Master,
		Children: []*Node{{Role: "dev", Class: core.Worker,
			Constraints: []Constraint{{Name: core.PropDeviceName}}}},
	}}
	b, err := Match(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Units("dev"); len(got) != 1 || got[0].ID != "1" {
		t.Fatalf("dev = %v", b)
	}
}

func TestPatternValidate(t *testing.T) {
	bad := []*Pattern{
		{Name: "nilroot"},
		{Name: "workerroot", Root: &Node{Role: "r", Class: core.Worker}},
		{Name: "emptyrole", Root: &Node{Role: "", Class: core.Master}},
		{Name: "dup", Root: &Node{Role: "a", Class: core.Master,
			Children: []*Node{{Role: "a", Class: core.Worker}}}},
		{Name: "workerkids", Root: &Node{Role: "a", Class: core.Master,
			Children: []*Node{{Role: "w", Class: core.Worker,
				Children: []*Node{{Role: "x", Class: core.Worker}}}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("pattern %s should be invalid", p.Name)
		}
		if _, err := Match(p, cpuOnly(t)); err == nil {
			t.Errorf("Match with invalid pattern %s should fail", p.Name)
		}
	}
}

func TestFromTarget(t *testing.T) {
	for _, name := range KnownTargets() {
		p, err := FromTarget(name)
		if err != nil {
			t.Errorf("FromTarget(%q): %v", name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("predefined pattern %q invalid: %v", name, err)
		}
	}
	if _, err := FromTarget("vax"); err == nil {
		t.Fatal("unknown target must fail")
	}
}

func TestPatternStringAndRoles(t *testing.T) {
	p := CellPattern(8)
	s := p.String()
	if !strings.Contains(s, "ppe:Master") || !strings.Contains(s, "{>=8}") {
		t.Fatalf("String() = %q", s)
	}
	roles := p.Roles()
	if len(roles) != 2 || roles[0] != "ppe" || roles[1] != "spe" {
		t.Fatalf("Roles() = %v", roles)
	}
}

func TestNestedPatternGrandchildren(t *testing.T) {
	// Master -> Hybrid(ppc) -> Worker(spe): full three-level pattern.
	p := &Pattern{Name: "deep", Root: &Node{
		Role: "m", Class: core.Master,
		Children: []*Node{{
			Role: "h", Class: core.Hybrid,
			Children: []*Node{{Role: "w", Class: core.Worker, MinCount: 4,
				Constraints: []Constraint{{Name: core.PropArchitecture, Value: "spe"}}}},
		}},
	}}
	b, err := Match(p, cellBlade(t))
	if err != nil {
		t.Fatalf("deep match: %v", err)
	}
	if got := b.UnitCount("w"); got != 8 {
		t.Fatalf("w units = %d", got)
	}
	// Same pattern fails on the GPU node (no hybrid at all).
	if Satisfies(p, gpgpuNode(t)) {
		t.Fatal("gpu node must not satisfy hybrid pattern")
	}
}
