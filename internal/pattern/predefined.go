package pattern

import (
	"fmt"

	"repro/internal/core"
)

// Predefined patterns capturing the platform models the paper discusses.
// Task implementation variants reference these by name in their
// targetplatformlist; FromTarget resolves the names.

// SeqPattern matches any platform with a general-purpose Master: the
// sequential fall-back target every Cascabel program must support.
func SeqPattern() *Pattern {
	return &Pattern{
		Name: "seq",
		Root: &Node{Role: "host", Class: core.Master},
	}
}

// X86Pattern matches a platform whose Master is an x86 unit.
func X86Pattern() *Pattern {
	return &Pattern{
		Name: "x86",
		Root: &Node{Role: "host", Class: core.Master,
			Constraints: []Constraint{{Name: core.PropArchitecture, Value: "x86"}}},
	}
}

// HostDevicePattern is the OpenCL/CUDA platform model: a host Master
// controlling at least minDevices gpu Workers.
func HostDevicePattern(minDevices int) *Pattern {
	return &Pattern{
		Name: "host-device",
		Root: &Node{
			Role: "host", Class: core.Master,
			Children: []*Node{{
				Role: "device", Class: core.Worker, MinCount: minDevices,
				Constraints: []Constraint{{Name: core.PropArchitecture, Value: "gpu"}},
			}},
		},
	}
}

// CudaPattern matches platforms with at least one CUDA-capable gpu Worker.
func CudaPattern() *Pattern {
	p := HostDevicePattern(1)
	p.Name = "cuda"
	return p
}

// OpenCLPattern matches platforms with at least one gpu Worker (the paper
// treats OpenCL and CUDA devices identically at the pattern level; concrete
// runtime availability is a property).
func OpenCLPattern() *Pattern {
	p := HostDevicePattern(1)
	p.Name = "opencl"
	return p
}

// MultiGPUPattern requires at least two gpu devices.
func MultiGPUPattern() *Pattern {
	p := HostDevicePattern(2)
	p.Name = "multi-gpu"
	return p
}

// CellPattern is the IBM Cell B.E. model: a PowerPC Master (PPE) with a
// hybrid controller over at least minSPE SPE Workers — or directly controlled
// SPE workers.
func CellPattern(minSPE int) *Pattern {
	return &Pattern{
		Name: "cell",
		Root: &Node{
			Role: "ppe", Class: core.Master,
			Constraints: []Constraint{{Name: core.PropArchitecture, Value: "ppc"}},
			Children: []*Node{{
				Role: "spe", Class: core.Worker, MinCount: minSPE,
				Constraints: []Constraint{{Name: core.PropArchitecture, Value: "spe"}},
			}},
		},
	}
}

// SMPPattern matches a Master standing for at least minCores units: the
// multi-core CPU target of the paper's "starpu" series.
func SMPPattern(minCores int) *Pattern {
	return &Pattern{
		Name: "smp",
		Root: &Node{Role: "host", Class: core.Master, MinCount: minCores,
			Constraints: []Constraint{{Name: core.PropArchitecture, Value: "x86"}}},
	}
}

// FromTarget resolves a targetplatformlist entry from a Cascabel task
// annotation into a pattern. Recognised names: seq, x86, opencl, cuda,
// host-device, multi-gpu, cell, smp, starpu (an alias for smp with one
// core, since StarPU runs on plain CPUs too).
func FromTarget(name string) (*Pattern, error) {
	switch name {
	case "seq":
		return SeqPattern(), nil
	case "x86":
		return X86Pattern(), nil
	case "opencl":
		return OpenCLPattern(), nil
	case "cuda":
		return CudaPattern(), nil
	case "host-device":
		return HostDevicePattern(1), nil
	case "multi-gpu":
		return MultiGPUPattern(), nil
	case "cell":
		return CellPattern(1), nil
	case "smp", "starpu":
		return SMPPattern(1), nil
	}
	return nil, fmt.Errorf("pattern: unknown target platform %q", name)
}

// KnownTargets lists the target names FromTarget accepts.
func KnownTargets() []string {
	return []string{"seq", "x86", "opencl", "cuda", "host-device", "multi-gpu", "cell", "smp", "starpu"}
}
