package pdlxml

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/discover"
	"repro/internal/schema"
)

// goldenNames are the catalog platforms with committed golden documents in
// testdata/. The goldens pin the on-disk PDL dialect: if Marshal output
// drifts (element order, attribute set, namespace declarations), these
// tests fail and the change must be deliberate.
var goldenNames = []string{"gpgpu-node", "xeon-2gpu", "gtx480", "cell-blade"}

func TestGoldenDocumentsStable(t *testing.T) {
	for _, name := range goldenNames {
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", name+".pdl.xml"))
			if err != nil {
				t.Fatal(err)
			}
			pl, err := discover.Platform(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Marshal(pl)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("marshal output drifted from golden testdata/%s.pdl.xml;\nregenerate deliberately if the dialect changed.\n--- got ---\n%s", name, got)
			}
		})
	}
}

func TestGoldenDocumentsParseAndValidate(t *testing.T) {
	for _, name := range goldenNames {
		t.Run(name, func(t *testing.T) {
			pl, err := ReadFile(filepath.Join("testdata", name+".pdl.xml"))
			if err != nil {
				t.Fatal(err)
			}
			rep := schema.ValidatePlatform(pl, schema.Default())
			if !rep.OK() {
				t.Fatalf("golden %s fails validation: %v", name, rep.Errors)
			}
			if pl.Name != name {
				t.Fatalf("platform name = %q", pl.Name)
			}
		})
	}
}

func TestGoldenRoundTripThroughDisk(t *testing.T) {
	// Parse golden -> marshal -> parse again: byte-identical second
	// generation (idempotent fixed point of the codec).
	for _, name := range goldenNames {
		t.Run(name, func(t *testing.T) {
			pl, err := ReadFile(filepath.Join("testdata", name+".pdl.xml"))
			if err != nil {
				t.Fatal(err)
			}
			first, err := Marshal(pl)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Unmarshal(first)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(first) != string(second) {
				t.Fatal("marshal is not idempotent over its own output")
			}
		})
	}
}
