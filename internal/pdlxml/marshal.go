package pdlxml

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// encoder writes PDL XML by hand so the document shape matches the paper's
// listings exactly (attribute order, prefixed subschema elements) without
// fighting encoding/xml's namespace handling.
type encoder struct {
	w      *bytes.Buffer
	indent string
	depth  int
	err    error
}

func (e *encoder) nl() {
	if e.err != nil || e.indent == "" {
		return
	}
	e.w.WriteByte('\n')
	for i := 0; i < e.depth; i++ {
		e.w.WriteString(e.indent)
	}
}

func (e *encoder) raw(s string) {
	if e.err != nil {
		return
	}
	e.w.WriteString(s)
}

func (e *encoder) text(s string) {
	if e.err != nil {
		return
	}
	if err := xml.EscapeText(e.w, []byte(s)); err != nil {
		e.err = err
	}
}

func (e *encoder) attr(name, value string) {
	if e.err != nil {
		return
	}
	e.raw(" ")
	e.raw(name)
	e.raw(`="`)
	e.text(value)
	e.raw(`"`)
}

// usedPrefixes collects subschema prefixes referenced by any property Type in
// the platform so only needed xmlns declarations are emitted.
func usedPrefixes(pl *core.Platform) []string {
	seen := map[string]bool{}
	collect := func(d core.Descriptor) {
		for _, p := range d.Properties {
			if i := strings.IndexByte(p.Type, ':'); i > 0 {
				seen[p.Type[:i]] = true
			}
		}
	}
	pl.Walk(func(pu, _ *core.PU) bool {
		collect(pu.Descriptor)
		for _, m := range pu.Memory {
			collect(m.Descriptor)
		}
		for _, ic := range pu.Links {
			collect(ic.Descriptor)
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (e *encoder) platform(pl *core.Platform) error {
	e.raw(xml.Header)
	e.raw("<Platform")
	if pl.Name != "" {
		e.attr("name", pl.Name)
	}
	if pl.SchemaVersion != "" {
		e.attr("schemaVersion", pl.SchemaVersion)
	}
	e.attr("xmlns:xsi", XSINamespace)
	for _, pfx := range usedPrefixes(pl) {
		uri, ok := subschemaNS[pfx]
		if !ok {
			return fmt.Errorf("pdlxml: property type uses unregistered subschema prefix %q", pfx)
		}
		e.attr("xmlns:"+pfx, uri)
	}
	e.raw(">")
	e.depth++
	for _, m := range pl.Masters {
		e.pu(m)
	}
	e.depth--
	e.nl()
	e.raw("</Platform>\n")
	return e.err
}

func (e *encoder) pu(p *core.PU) {
	e.nl()
	e.raw("<")
	e.raw(p.Class.String())
	e.attr("id", p.ID)
	e.attr("quantity", fmt.Sprint(p.EffectiveQuantity()))
	if p.Name != "" {
		e.attr("name", p.Name)
	}
	empty := len(p.Descriptor.Properties) == 0 && len(p.Memory) == 0 &&
		len(p.Groups) == 0 && len(p.Children) == 0 && len(p.Links) == 0
	if empty {
		e.raw("/>")
		return
	}
	e.raw(">")
	e.depth++
	if len(p.Descriptor.Properties) > 0 {
		e.descriptor("PUDescriptor", p.Descriptor)
	}
	for _, g := range p.Groups {
		e.nl()
		e.raw("<LogicGroupAttribute>")
		e.text(g)
		e.raw("</LogicGroupAttribute>")
	}
	for _, m := range p.Memory {
		e.memoryRegion(m)
	}
	for _, c := range p.Children {
		e.pu(c)
	}
	for _, ic := range p.Links {
		e.interconnect(ic)
	}
	e.depth--
	e.nl()
	e.raw("</")
	e.raw(p.Class.String())
	e.raw(">")
}

func (e *encoder) memoryRegion(m core.MemoryRegion) {
	e.nl()
	e.raw("<MemoryRegion")
	e.attr("id", m.ID)
	if m.Name != "" {
		e.attr("name", m.Name)
	}
	if len(m.Descriptor.Properties) == 0 {
		e.raw("/>")
		return
	}
	e.raw(">")
	e.depth++
	e.descriptor("MRDescriptor", m.Descriptor)
	e.depth--
	e.nl()
	e.raw("</MemoryRegion>")
}

func (e *encoder) interconnect(ic core.Interconnect) {
	e.nl()
	e.raw("<Interconnect")
	if ic.ID != "" {
		e.attr("id", ic.ID)
	}
	e.attr("type", ic.Type)
	e.attr("from", ic.From)
	e.attr("to", ic.To)
	e.attr("scheme", ic.Scheme)
	if ic.Duplex {
		e.attr("duplex", "true")
	}
	if len(ic.Descriptor.Properties) == 0 {
		e.raw("/>")
		return
	}
	e.raw(">")
	e.depth++
	e.descriptor("ICDescriptor", ic.Descriptor)
	e.depth--
	e.nl()
	e.raw("</Interconnect>")
}

func (e *encoder) descriptor(elem string, d core.Descriptor) {
	e.nl()
	e.raw("<")
	e.raw(elem)
	e.raw(">")
	e.depth++
	for _, p := range d.Properties {
		e.property(p)
	}
	e.depth--
	e.nl()
	e.raw("</")
	e.raw(elem)
	e.raw(">")
}

func (e *encoder) property(p core.Property) {
	prefix := ""
	if i := strings.IndexByte(p.Type, ':'); i > 0 {
		prefix = p.Type[:i] + ":"
	}
	e.nl()
	e.raw("<Property")
	e.attr("fixed", fmt.Sprint(p.Fixed))
	if p.Type != "" {
		e.attr("xsi:type", p.Type)
	}
	e.raw(">")
	e.depth++
	e.nl()
	e.raw("<" + prefix + "name>")
	e.text(p.Name)
	e.raw("</" + prefix + "name>")
	e.nl()
	e.raw("<" + prefix + "value")
	if p.Unit != "" {
		e.attr("unit", p.Unit)
	}
	e.raw(">")
	e.text(p.Value)
	e.raw("</" + prefix + "value>")
	e.depth--
	e.nl()
	e.raw("</Property>")
}
