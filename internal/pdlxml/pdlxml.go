// Package pdlxml encodes and decodes Platform Description Language (PDL)
// documents to and from the XML dialect used in the paper.
//
// The document structure mirrors the paper's Listings 1 and 2:
//
//	<Platform name="gpgpu-node" schemaVersion="1.0">
//	  <Master id="0" quantity="1">
//	    <PUDescriptor>
//	      <Property fixed="true">
//	        <name>ARCHITECTURE</name>
//	        <value>x86</value>
//	      </Property>
//	    </PUDescriptor>
//	    <Worker id="1" quantity="1">
//	      <PUDescriptor>
//	        <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
//	          <ocl:name>GLOBAL_MEM_SIZE</ocl:name>
//	          <ocl:value unit="kB">1572864</ocl:value>
//	        </Property>
//	      </PUDescriptor>
//	    </Worker>
//	    <Interconnect type="rDMA" from="0" to="1" scheme=""/>
//	  </Master>
//	</Platform>
//
// A document whose root element is a bare <Master> (exactly as printed in the
// paper) is also accepted and wrapped into a single-Master platform.
//
// Subschema polymorphism follows the paper's use of xsi:type: a Property with
// Type "ocl:oclDevicePropertyType" is emitted with prefixed child elements
// (<ocl:name>, <ocl:value>) and the corresponding xmlns declaration on the
// root. Decoding accepts both prefixed and plain child names and preserves
// the xsi:type string, so Marshal∘Unmarshal is the identity on valid
// platforms (see the round-trip tests).
package pdlxml

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// XSINamespace is the standard XML Schema instance namespace used for
// xsi:type property polymorphism.
const XSINamespace = "http://www.w3.org/2001/XMLSchema-instance"

// Subschema namespace URIs for the predefined platform-property subschemas.
// New prefixes can be registered with RegisterSubschema.
var subschemaNS = map[string]string{
	"ocl":  "urn:pdl:subschema:opencl:1.0",
	"cuda": "urn:pdl:subschema:cuda:1.0",
	"cell": "urn:pdl:subschema:cellsdk:1.0",
	"sim":  "urn:pdl:subschema:simhw:1.0",
}

// RegisterSubschema binds a property-type prefix (the part of xsi:type before
// the colon) to a namespace URI so documents using it carry a well-formed
// xmlns declaration. Registering an existing prefix with a different URI is
// an error; re-registering identically is a no-op.
func RegisterSubschema(prefix, uri string) error {
	if prefix == "" || uri == "" {
		return fmt.Errorf("pdlxml: empty subschema prefix or uri")
	}
	if cur, ok := subschemaNS[prefix]; ok && cur != uri {
		return fmt.Errorf("pdlxml: subschema prefix %q already bound to %q", prefix, cur)
	}
	subschemaNS[prefix] = uri
	return nil
}

// SubschemaURI returns the namespace URI bound to a prefix, if registered.
func SubschemaURI(prefix string) (string, bool) {
	uri, ok := subschemaNS[prefix]
	return uri, ok
}

// Marshal renders the platform as an indented PDL XML document.
func Marshal(pl *core.Platform) ([]byte, error) {
	return MarshalIndent(pl, "  ")
}

// MarshalIndent renders the platform with the given indent unit ("" for a
// compact single-line-per-element document).
func MarshalIndent(pl *core.Platform, indent string) ([]byte, error) {
	if pl == nil {
		return nil, fmt.Errorf("pdlxml: nil platform")
	}
	var buf bytes.Buffer
	e := &encoder{w: &buf, indent: indent}
	if err := e.platform(pl); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Write marshals the platform onto w.
func Write(w io.Writer, pl *core.Platform) error {
	data, err := Marshal(pl)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteFile marshals the platform into the named file.
func WriteFile(path string, pl *core.Platform) error {
	data, err := Marshal(pl)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Unmarshal parses a PDL XML document. The result is structurally complete
// but not machine-model validated; callers decide whether to enforce
// core.Platform.Validate (cmd/pdlvalidate does, the query CLI does not, so
// that partially written descriptors remain inspectable).
func Unmarshal(data []byte) (*core.Platform, error) {
	return Read(bytes.NewReader(data))
}

// ReadFile parses the named PDL XML file.
func ReadFile(path string) (*core.Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
