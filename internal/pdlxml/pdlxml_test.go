package pdlxml

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// listing1 is the paper's Listing 1 verbatim (modulo whitespace): an x86
// Master controlling a gpu Worker over an rDMA interconnect.
const listing1 = `<?xml version="1.0" encoding="UTF-8"?>
<Master id="0" quantity="1">
  <PUDescriptor>
    <Property fixed="true">
      <name>ARCHITECTURE</name>
      <value>x86</value>
    </Property>
  </PUDescriptor>
  <Worker quantity="1" id="1">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>gpu</value>
      </Property>
    </PUDescriptor>
  </Worker>
  <Interconnect type="rDMA" from="0" to="1" scheme=""/>
</Master>`

// listing2 reproduces the paper's Listing 2: concrete OpenCL-derived
// properties using the ocl subschema via xsi:type.
const listing2 = `<?xml version="1.0"?>
<Platform name="gtx480" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:ocl="urn:pdl:subschema:opencl:1.0">
  <Master id="0">
    <Worker id="1">
      <PUDescriptor>
        <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
          <ocl:name>DEVICE_NAME</ocl:name>
          <ocl:value>GeForce GTX 480</ocl:value>
        </Property>
        <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
          <ocl:name>MAX_COMPUTE_UNITS</ocl:name>
          <ocl:value>15</ocl:value>
        </Property>
        <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
          <ocl:name>GLOBAL_MEM_SIZE</ocl:name>
          <ocl:value unit="kB">1572864</ocl:value>
        </Property>
        <Property fixed="false" xsi:type="ocl:oclDevicePropertyType">
          <ocl:name>LOCAL_MEM_SIZE</ocl:name>
          <ocl:value unit="kB">48</ocl:value>
        </Property>
      </PUDescriptor>
    </Worker>
  </Master>
</Platform>`

func TestUnmarshalListing1(t *testing.T) {
	pl, err := Unmarshal([]byte(listing1))
	if err != nil {
		t.Fatalf("Unmarshal listing1: %v", err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("listing1 should validate: %v", err)
	}
	m := pl.FindPU("0")
	if m == nil || m.Class != core.Master || m.Architecture() != "x86" {
		t.Fatalf("master = %v", m)
	}
	w := pl.FindPU("1")
	if w == nil || w.Class != core.Worker || w.Architecture() != "gpu" {
		t.Fatalf("worker = %v", w)
	}
	ic, ok := pl.LinkBetween("0", "1")
	if !ok || ic.Type != core.ICTypeRDMA {
		t.Fatalf("interconnect = %v, %v", ic, ok)
	}
	p, _ := m.Descriptor.Get(core.PropArchitecture)
	if !p.Fixed {
		t.Fatal("ARCHITECTURE should be fixed")
	}
}

func TestUnmarshalListing2Subschema(t *testing.T) {
	pl, err := Unmarshal([]byte(listing2))
	if err != nil {
		t.Fatalf("Unmarshal listing2: %v", err)
	}
	w := pl.FindPU("1")
	if w == nil {
		t.Fatal("worker missing")
	}
	name, ok := w.Descriptor.Get("DEVICE_NAME")
	if !ok || name.Value != "GeForce GTX 480" {
		t.Fatalf("DEVICE_NAME = %v, %v", name, ok)
	}
	if name.Type != "ocl:oclDevicePropertyType" {
		t.Fatalf("xsi:type not preserved: %q", name.Type)
	}
	if name.Fixed {
		t.Fatal("OpenCL runtime properties are unfixed in the paper")
	}
	mem, _ := w.Descriptor.Get("GLOBAL_MEM_SIZE")
	if mem.Unit != "kB" || mem.Value != "1572864" {
		t.Fatalf("GLOBAL_MEM_SIZE = %v", mem)
	}
	if cu, ok := w.Descriptor.Int("MAX_COMPUTE_UNITS"); !ok || cu != 15 {
		t.Fatalf("MAX_COMPUTE_UNITS = %d, %v", cu, ok)
	}
}

func buildFixture(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("fixture").
		Master("cpu", core.Arch("x86"), core.Qty(8),
			core.WithProp(core.PropDeviceName, "Xeon X5550"),
			core.WithUnitProp(core.PropClockMHz, "2660", "MHz"),
			core.WithMemory("ram", 25165824),
			core.InGroups("cpuset", "all")).
		Hybrid("ppe", core.Arch("ppc")).
		Worker("spe0", core.Arch("spe"), core.InGroups("speset")).
		End().
		Worker("gpu0", core.Arch("gpu"),
			core.WithUnfixedProp(core.PropDeviceName, "GeForce GTX 480")).
		Link(core.ICTypePCIe, "cpu", "gpu0", core.Bandwidth(5), core.Latency(10), core.Scheme("dma"), core.LinkID("pcie0")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// A typed subschema property on the worker.
	pl.FindPU("gpu0").Descriptor.Set(core.Property{
		Name: "GLOBAL_MEM_SIZE", Value: "1572864", Unit: "kB",
		Fixed: false, Type: "ocl:oclDevicePropertyType",
	})
	return pl
}

func TestRoundTrip(t *testing.T) {
	pl := buildFixture(t)
	data, err := Marshal(pl)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(Marshal(...)): %v\n%s", err, data)
	}
	normalize(pl)
	normalize(back)
	if !reflect.DeepEqual(pl, back) {
		t.Fatalf("round trip not identity.\noriginal: %#v\nback: %#v\nxml:\n%s", pl, back, data)
	}
}

// normalize forces Quantity to its effective value so DeepEqual compares the
// model, not the 0-vs-1 encoding detail.
func normalize(pl *core.Platform) {
	pl.SchemaVersion = ""
	pl.Walk(func(pu, _ *core.PU) bool {
		pu.Quantity = pu.EffectiveQuantity()
		return true
	})
}

func TestMarshalDeclaresOnlyUsedNamespaces(t *testing.T) {
	pl := buildFixture(t)
	data, err := Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `xmlns:ocl="urn:pdl:subschema:opencl:1.0"`) {
		t.Error("ocl namespace not declared though used")
	}
	if strings.Contains(s, "xmlns:cuda") {
		t.Error("cuda namespace declared though unused")
	}
	if !strings.Contains(s, `<ocl:name>GLOBAL_MEM_SIZE</ocl:name>`) {
		t.Errorf("typed property children not prefixed:\n%s", s)
	}
	if !strings.Contains(s, `<ocl:value unit="kB">1572864</ocl:value>`) {
		t.Errorf("typed value element wrong:\n%s", s)
	}
}

func TestMarshalUnregisteredPrefixFails(t *testing.T) {
	pl := buildFixture(t)
	pl.FindPU("gpu0").Descriptor.Set(core.Property{Name: "X", Value: "1", Type: "mystery:thing"})
	if _, err := Marshal(pl); err == nil {
		t.Fatal("marshal with unregistered subschema prefix must fail")
	}
}

func TestRegisterSubschema(t *testing.T) {
	if err := RegisterSubschema("vhdl", "urn:pdl:subschema:vhdl:1.0"); err != nil {
		t.Fatal(err)
	}
	if err := RegisterSubschema("vhdl", "urn:pdl:subschema:vhdl:1.0"); err != nil {
		t.Fatalf("identical re-registration should be a no-op: %v", err)
	}
	if err := RegisterSubschema("vhdl", "urn:other"); err == nil {
		t.Fatal("conflicting re-registration must fail")
	}
	if err := RegisterSubschema("", "u"); err == nil {
		t.Fatal("empty prefix must fail")
	}
	if uri, ok := SubschemaURI("ocl"); !ok || uri == "" {
		t.Fatal("predefined ocl subschema missing")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"empty", ``, "no Platform or Master"},
		{"wrongRoot", `<Thing/>`, "unexpected document root"},
		{"nestedMaster", `<Master id="a"><Master id="b"/></Master>`, "may not be nested"},
		{"badQuantity", `<Master id="a" quantity="lots"/>`, "bad quantity"},
		{"unknownChild", `<Master id="a"><Frobnicator/></Master>`, "unknown element"},
		{"propNoName", `<Master id="a"><PUDescriptor><Property fixed="true"><value>x</value></Property></PUDescriptor></Master>`, "missing <name>"},
		{"propNoValue", `<Master id="a"><PUDescriptor><Property fixed="true"><name>x</name></Property></PUDescriptor></Master>`, "missing <value>"},
		{"platformNonMaster", `<Platform><Worker id="w"/></Platform>`, "only Master elements"},
		{"junkInProperty", `<Master id="a"><PUDescriptor><Property><name>x</name><value>1</value><weird/></Property></PUDescriptor></Master>`, "unknown element inside Property"},
		{"malformed", `<Master id="a">`, "XML syntax error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(tc.doc))
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v; want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestUnmarshalUnresolvedPrefixStillParses(t *testing.T) {
	// Same document as listing2 but WITHOUT the xmlns:ocl declaration; the
	// decoder sees literal "ocl:name" locals and must still strip prefixes.
	doc := strings.Replace(listing2, ` xmlns:ocl="urn:pdl:subschema:opencl:1.0"`, "", 1)
	pl, err := Unmarshal([]byte(doc))
	if err != nil {
		t.Fatalf("Unmarshal without xmlns: %v", err)
	}
	if v := pl.FindPU("1").Descriptor.Value("DEVICE_NAME"); v != "GeForce GTX 480" {
		t.Fatalf("DEVICE_NAME = %q", v)
	}
}

func TestMarshalEscaping(t *testing.T) {
	pl, err := core.NewBuilder(`evil "name" <&>`).
		Master("m", core.WithProp("NOTE", `a<b&c>"d"`)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("escaped doc did not reparse: %v\n%s", err, data)
	}
	if back.Name != pl.Name {
		t.Fatalf("name round trip: %q != %q", back.Name, pl.Name)
	}
	if v := back.FindPU("m").Descriptor.Value("NOTE"); v != `a<b&c>"d"` {
		t.Fatalf("NOTE = %q", v)
	}
}

func TestWriteReadFile(t *testing.T) {
	pl := buildFixture(t)
	path := t.TempDir() + "/p.pdl.xml"
	if err := WriteFile(path, pl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "fixture" {
		t.Fatalf("name = %q", back.Name)
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Fatal("ReadFile on missing path must fail")
	}
}

func TestMarshalNil(t *testing.T) {
	if _, err := Marshal(nil); err == nil {
		t.Fatal("Marshal(nil) must fail")
	}
}

// Property-based: platforms with random property contents round-trip.
func TestQuickRoundTripProperties(t *testing.T) {
	f := func(name, value, unit string, fixed bool) bool {
		// XML cannot carry control characters or invalid UTF-8; the schema
		// layer rejects those. Restrict to printable ASCII here.
		clean := func(s string) string {
			var b strings.Builder
			for _, r := range s {
				if r >= 0x20 && r < 0x7f {
					b.WriteRune(r)
				}
			}
			return b.String()
		}
		name = clean(name)
		value = clean(value)
		unit = strings.ReplaceAll(clean(unit), " ", "")
		if strings.TrimSpace(name) == "" || name != strings.TrimSpace(name) || value != strings.TrimSpace(value) {
			return true
		}
		pl, err := core.NewBuilder("q").Master("m").Build()
		if err != nil {
			return false
		}
		pl.Masters[0].Descriptor.Set(core.Property{Name: name, Value: value, Unit: unit, Fixed: fixed})
		data, err := Marshal(pl)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		got, ok := back.Masters[0].Descriptor.Get(name)
		return ok && got.Value == value && got.Unit == unit && got.Fixed == fixed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: random builder-generated hierarchies round-trip to equal
// structures.
func TestQuickRoundTripHierarchy(t *testing.T) {
	f := func(workers, hybrids, groups uint8) bool {
		b := core.NewBuilder("q").Master("m", core.Arch("x86"), core.Qty(int(workers%3)+1))
		for h := 0; h < int(hybrids%3); h++ {
			b.Hybrid("", core.Arch("ppc"))
			b.Worker("", core.Arch("spe"))
			b.End()
		}
		for w := 0; w < int(workers%4)+1; w++ {
			opts := []core.PUOption{core.Arch("gpu")}
			if groups%2 == 0 {
				opts = append(opts, core.InGroups("g"))
			}
			b.Worker("", opts...)
		}
		pl, err := b.Build()
		if err != nil {
			return false
		}
		data, err := Marshal(pl)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		normalize(pl)
		normalize(back)
		return reflect.DeepEqual(pl, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
