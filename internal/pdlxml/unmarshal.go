package pdlxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseError reports a structural problem in a PDL XML document.
type ParseError struct {
	Element string
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pdlxml: element <%s>: %s", e.Element, e.Msg)
}

// Read parses a PDL XML document from r. The root element may be <Platform>
// or a bare <Master> (the paper's Listing 1 form).
func Read(r io.Reader) (*core.Platform, error) {
	d := xml.NewDecoder(r)
	for {
		tok, err := d.Token()
		if err == io.EOF {
			return nil, &ParseError{Element: "", Msg: "document contains no Platform or Master element"}
		}
		if err != nil {
			return nil, fmt.Errorf("pdlxml: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "Platform":
			return parsePlatform(d, start)
		case "Master":
			pu, err := parsePU(d, start, core.Master)
			if err != nil {
				return nil, err
			}
			return &core.Platform{Masters: []*core.PU{pu}}, nil
		default:
			return nil, &ParseError{Element: start.Name.Local, Msg: "unexpected document root; want Platform or Master"}
		}
	}
}

func attrValue(start xml.StartElement, local string) (string, bool) {
	for _, a := range start.Attr {
		if a.Name.Local == local && a.Name.Space != "xmlns" {
			return a.Value, true
		}
	}
	return "", false
}

func parsePlatform(d *xml.Decoder, start xml.StartElement) (*core.Platform, error) {
	pl := &core.Platform{}
	if v, ok := attrValue(start, "name"); ok {
		pl.Name = v
	}
	if v, ok := attrValue(start, "schemaVersion"); ok {
		pl.SchemaVersion = v
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "Master" {
				return nil, &ParseError{Element: t.Name.Local, Msg: "only Master elements may appear directly under Platform"}
			}
			pu, err := parsePU(d, t, core.Master)
			if err != nil {
				return nil, err
			}
			pl.Masters = append(pl.Masters, pu)
		case xml.EndElement:
			return pl, nil
		}
	}
}

func parsePU(d *xml.Decoder, start xml.StartElement, class core.Class) (*core.PU, error) {
	pu := &core.PU{Class: class, Quantity: 1}
	if v, ok := attrValue(start, "id"); ok {
		pu.ID = v
	}
	if v, ok := attrValue(start, "name"); ok {
		pu.Name = v
	}
	if v, ok := attrValue(start, "quantity"); ok {
		q, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, &ParseError{Element: start.Name.Local, Msg: fmt.Sprintf("bad quantity %q", v)}
		}
		pu.Quantity = q
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "PUDescriptor":
				desc, err := parseDescriptor(d, t)
				if err != nil {
					return nil, err
				}
				pu.Descriptor.Merge(desc)
			case "LogicGroupAttribute":
				txt, err := elementText(d, t)
				if err != nil {
					return nil, err
				}
				pu.Groups = append(pu.Groups, strings.TrimSpace(txt))
			case "MemoryRegion":
				mr, err := parseMemoryRegion(d, t)
				if err != nil {
					return nil, err
				}
				pu.Memory = append(pu.Memory, mr)
			case "Interconnect":
				ic, err := parseInterconnect(d, t)
				if err != nil {
					return nil, err
				}
				pu.Links = append(pu.Links, ic)
			case "Worker":
				c, err := parsePU(d, t, core.Worker)
				if err != nil {
					return nil, err
				}
				pu.Children = append(pu.Children, c)
			case "Hybrid":
				c, err := parsePU(d, t, core.Hybrid)
				if err != nil {
					return nil, err
				}
				pu.Children = append(pu.Children, c)
			case "Master":
				// Explicitly rejected so documents violating the model's
				// strongest rule fail at parse time, not validation time.
				return nil, &ParseError{Element: "Master", Msg: "Master elements may not be nested inside other PUs"}
			default:
				return nil, &ParseError{Element: t.Name.Local, Msg: "unknown element inside " + start.Name.Local}
			}
		case xml.EndElement:
			return pu, nil
		}
	}
}

func parseMemoryRegion(d *xml.Decoder, start xml.StartElement) (core.MemoryRegion, error) {
	mr := core.MemoryRegion{}
	if v, ok := attrValue(start, "id"); ok {
		mr.ID = v
	}
	if v, ok := attrValue(start, "name"); ok {
		mr.Name = v
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return mr, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "MRDescriptor" {
				return mr, &ParseError{Element: t.Name.Local, Msg: "unknown element inside MemoryRegion"}
			}
			desc, err := parseDescriptor(d, t)
			if err != nil {
				return mr, err
			}
			mr.Descriptor.Merge(desc)
		case xml.EndElement:
			return mr, nil
		}
	}
}

func parseInterconnect(d *xml.Decoder, start xml.StartElement) (core.Interconnect, error) {
	ic := core.Interconnect{}
	if v, ok := attrValue(start, "id"); ok {
		ic.ID = v
	}
	if v, ok := attrValue(start, "type"); ok {
		ic.Type = v
	}
	if v, ok := attrValue(start, "from"); ok {
		ic.From = v
	}
	if v, ok := attrValue(start, "to"); ok {
		ic.To = v
	}
	if v, ok := attrValue(start, "scheme"); ok {
		ic.Scheme = v
	}
	if v, ok := attrValue(start, "duplex"); ok {
		ic.Duplex = v == "true" || v == "1"
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return ic, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "ICDescriptor" {
				return ic, &ParseError{Element: t.Name.Local, Msg: "unknown element inside Interconnect"}
			}
			desc, err := parseDescriptor(d, t)
			if err != nil {
				return ic, err
			}
			ic.Descriptor.Merge(desc)
		case xml.EndElement:
			return ic, nil
		}
	}
}

func parseDescriptor(d *xml.Decoder, start xml.StartElement) (core.Descriptor, error) {
	var desc core.Descriptor
	for {
		tok, err := d.Token()
		if err != nil {
			return desc, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "Property" {
				return desc, &ParseError{Element: t.Name.Local, Msg: "unknown element inside " + start.Name.Local}
			}
			p, err := parseProperty(d, t)
			if err != nil {
				return desc, err
			}
			desc.Properties = append(desc.Properties, p)
		case xml.EndElement:
			return desc, nil
		}
	}
}

func parseProperty(d *xml.Decoder, start xml.StartElement) (core.Property, error) {
	var p core.Property
	for _, a := range start.Attr {
		switch {
		case a.Name.Local == "fixed":
			p.Fixed = a.Value == "true" || a.Value == "1"
		case a.Name.Local == "type" && (a.Name.Space == XSINamespace || a.Name.Space == "xsi"):
			p.Type = a.Value
		}
	}
	sawName, sawValue := false, false
	for {
		tok, err := d.Token()
		if err != nil {
			return p, fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			// Subschema polymorphism: <ocl:name> resolves to Local "name"
			// when the prefix is declared; unresolved prefixes arrive as
			// "ocl:name" in Local, so strip them too.
			local := t.Name.Local
			if i := strings.IndexByte(local, ':'); i >= 0 {
				local = local[i+1:]
			}
			switch local {
			case "name":
				txt, err := elementText(d, t)
				if err != nil {
					return p, err
				}
				p.Name = strings.TrimSpace(txt)
				sawName = true
			case "value":
				if u, ok := attrValue(t, "unit"); ok {
					p.Unit = u
				}
				txt, err := elementText(d, t)
				if err != nil {
					return p, err
				}
				p.Value = strings.TrimSpace(txt)
				sawValue = true
			default:
				return p, &ParseError{Element: t.Name.Local, Msg: "unknown element inside Property"}
			}
		case xml.EndElement:
			if !sawName {
				return p, &ParseError{Element: "Property", Msg: "missing <name> child"}
			}
			if !sawValue {
				return p, &ParseError{Element: "Property", Msg: "missing <value> child"}
			}
			return p, nil
		}
	}
}

// elementText consumes the element opened by start and returns its character
// data. Nested elements are rejected.
func elementText(d *xml.Decoder, start xml.StartElement) (string, error) {
	var b strings.Builder
	for {
		tok, err := d.Token()
		if err != nil {
			return "", fmt.Errorf("pdlxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			return b.String(), nil
		case xml.StartElement:
			return "", &ParseError{Element: start.Name.Local, Msg: "unexpected child element <" + t.Name.Local + ">"}
		}
	}
}
