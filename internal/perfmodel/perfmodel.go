// Package perfmodel implements history-based performance models in the style
// of StarPU's per-codelet, per-architecture models: execution times are
// recorded per input size, and estimates for unseen sizes come from a
// power-law fit t = a·size^b obtained by linear regression in log-log space.
// Models persist as JSON so calibration survives across runs.
package perfmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Sample is one observed execution: input size (an application-defined
// measure such as total flops or bytes) and seconds taken.
type Sample struct {
	Size    float64 `json:"size"`
	Seconds float64 `json:"seconds"`
}

// Model accumulates samples for one (codelet, architecture) pair.
type Model struct {
	Codelet string   `json:"codelet"`
	Arch    string   `json:"arch"`
	Samples []Sample `json:"samples"`

	mu     sync.Mutex
	dirty  bool
	coeffA float64 // t = coeffA * size^coeffB
	coeffB float64

	// version counts recorded samples, readable without the lock. Estimate
	// caches key on it: a cached prediction is valid until the version
	// moves, so hot schedulers revalidate with one atomic load instead of
	// re-fitting under the model lock.
	version atomic.Int64

	// Running log-space regression sums, updated on every added sample so
	// refitting after each observation is O(1) instead of an O(n) rescan —
	// the real engine records a sample per completed task, which made fit
	// cost quadratic in task count over a run. Accumulated in insertion
	// order, so the coefficients are bit-identical to a full rescan.
	sx, sy, sxx, sxy float64
}

// addSample appends one sample and folds it into the running sums. Caller
// holds mu.
func (m *Model) addSample(s Sample) {
	m.Samples = append(m.Samples, s)
	x, y := math.Log(s.Size), math.Log(s.Seconds)
	m.sx += x
	m.sy += y
	m.sxx += x * x
	m.sxy += x * y
	m.dirty = true
	m.version.Add(1)
}

// Version returns a counter that changes whenever a sample is recorded.
// Callers may cache Estimate results keyed on (Version, size).
func (m *Model) Version() int64 { return m.version.Load() }

// Record adds an observation. Non-positive sizes or times are rejected
// because they cannot participate in the log-space fit.
func (m *Model) Record(size, seconds float64) error {
	if size <= 0 || seconds <= 0 {
		return fmt.Errorf("perfmodel: non-positive sample (size=%g, t=%g)", size, seconds)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addSample(Sample{Size: size, Seconds: seconds})
	return nil
}

// Len returns the number of recorded samples.
func (m *Model) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.Samples)
}

// fit recomputes the power-law coefficients from the running sums in O(1).
// Caller holds mu.
func (m *Model) fit() {
	n := float64(len(m.Samples))
	m.dirty = false
	if n == 0 {
		m.coeffA, m.coeffB = 0, 0
		return
	}
	if n == 1 {
		// One sample: constant rate (linear through the point).
		m.coeffB = 1
		m.coeffA = m.Samples[0].Seconds / m.Samples[0].Size
		return
	}
	den := n*m.sxx - m.sx*m.sx
	if math.Abs(den) < 1e-12 {
		// All sizes equal: average the times, constant model.
		m.coeffB = 0
		m.coeffA = math.Exp(m.sy / n)
		return
	}
	m.coeffB = (n*m.sxy - m.sx*m.sy) / den
	m.coeffA = math.Exp((m.sy - m.coeffB*m.sx) / n)
}

// Estimate predicts the execution time for the given size. ok is false when
// the model has no samples.
func (m *Model) Estimate(size float64) (seconds float64, ok bool) {
	if size <= 0 {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.Samples) == 0 {
		return 0, false
	}
	if m.dirty {
		m.fit()
	}
	return m.coeffA * math.Pow(size, m.coeffB), true
}

// Coefficients returns the fitted (a, b) of t = a·size^b.
func (m *Model) Coefficients() (a, b float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty {
		m.fit()
	}
	return m.coeffA, m.coeffB
}

// Store holds models keyed by codelet and architecture.
type Store struct {
	mu     sync.Mutex
	models map[string]*Model // key codelet + "\x00" + arch
}

// NewStore returns an empty model store.
func NewStore() *Store {
	return &Store{models: map[string]*Model{}}
}

func key(codelet, arch string) string { return codelet + "\x00" + arch }

// Model returns (creating if needed) the model for a codelet/arch pair.
func (s *Store) Model(codelet, arch string) *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key(codelet, arch)
	m, ok := s.models[k]
	if !ok {
		m = &Model{Codelet: codelet, Arch: arch}
		s.models[k] = m
	}
	return m
}

// Models returns all models sorted by codelet then arch.
func (s *Store) Models() []*Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Model, 0, len(s.models))
	for _, m := range s.models {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Codelet != out[j].Codelet {
			return out[i].Codelet < out[j].Codelet
		}
		return out[i].Arch < out[j].Arch
	})
	return out
}

// storeJSON is the serialised form.
type storeJSON struct {
	Models []*Model `json:"models"`
}

// snapshot returns a deep copy of the model's serialisable state, taken
// under the model's lock so it never observes a concurrent Record mid-append.
func (m *Model) snapshot() *Model {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &Model{
		Codelet: m.Codelet,
		Arch:    m.Arch,
		Samples: append([]Sample(nil), m.Samples...),
	}
}

// SnapshotJSON serialises the store as JSON bytes from locked deep
// snapshots of every model — the durable image pdlserved's write-ahead
// layer embeds in registry snapshots. Models are sorted (codelet, arch) and
// samples kept in insertion order, so the same history always produces the
// same bytes: the crash-recovery harness compares states by comparing
// these.
func (s *Store) SnapshotJSON() ([]byte, error) {
	live := s.Models()
	models := make([]*Model, len(live))
	for i, m := range live {
		models[i] = m.snapshot()
	}
	data, err := json.MarshalIndent(storeJSON{Models: models}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perfmodel: %w", err)
	}
	return data, nil
}

// RestoreJSON merges a SnapshotJSON image into the store (same semantics as
// Load: samples append to any existing models).
func (s *Store) RestoreJSON(data []byte) error {
	var sj storeJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return fmt.Errorf("perfmodel: restore: %w", err)
	}
	for _, lm := range sj.Models {
		m := s.Model(lm.Codelet, lm.Arch)
		m.mu.Lock()
		for _, smp := range lm.Samples {
			m.addSample(smp)
		}
		m.mu.Unlock()
	}
	return nil
}

// Save writes the store as JSON to path. It marshals locked deep snapshots
// of every model: the real engine records one sample per completed task (and
// pdlserved's /observe endpoint records more), so serialising the live
// Samples slices would race with concurrent appends.
func (s *Store) Save(path string) error {
	data, err := s.SnapshotJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a store saved by Save. Loaded samples merge into any existing
// models.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := s.RestoreJSON(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
