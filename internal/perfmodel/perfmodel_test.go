package perfmodel

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordValidation(t *testing.T) {
	var m Model
	if err := m.Record(0, 1); err == nil {
		t.Fatal("zero size must fail")
	}
	if err := m.Record(1, -1); err == nil {
		t.Fatal("negative time must fail")
	}
	if err := m.Record(100, 0.5); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestEstimateEmpty(t *testing.T) {
	var m Model
	if _, ok := m.Estimate(10); ok {
		t.Fatal("empty model should not estimate")
	}
	if _, ok := m.Estimate(0); ok {
		t.Fatal("non-positive size should not estimate")
	}
	a, b := m.Coefficients()
	if a != 0 || b != 0 {
		t.Fatalf("empty coefficients = %g, %g", a, b)
	}
}

func TestSingleSampleLinearExtrapolation(t *testing.T) {
	var m Model
	if err := m.Record(100, 2); err != nil {
		t.Fatal(err)
	}
	// Rate = 50 units/s: size 200 -> 4 s.
	got, ok := m.Estimate(200)
	if !ok || math.Abs(got-4) > 1e-9 {
		t.Fatalf("estimate = %g, %v", got, ok)
	}
}

func TestPowerLawFitRecovery(t *testing.T) {
	// Generate samples from t = 3e-9 * n^1.5 and verify recovery.
	var m Model
	for _, n := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		if err := m.Record(n, 3e-9*math.Pow(n, 1.5)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := m.Coefficients()
	if math.Abs(b-1.5) > 1e-6 {
		t.Fatalf("exponent = %g; want 1.5", b)
	}
	if math.Abs(a-3e-9)/3e-9 > 1e-6 {
		t.Fatalf("coefficient = %g; want 3e-9", a)
	}
	est, ok := m.Estimate(5e5)
	want := 3e-9 * math.Pow(5e5, 1.5)
	if !ok || math.Abs(est-want)/want > 1e-6 {
		t.Fatalf("estimate(5e5) = %g; want %g", est, want)
	}
}

func TestAllEqualSizesConstantModel(t *testing.T) {
	var m Model
	for _, s := range []float64{1.0, 2.0, 4.0} {
		if err := m.Record(1000, s); err != nil {
			t.Fatal(err)
		}
	}
	est, ok := m.Estimate(1000)
	if !ok {
		t.Fatal("estimate should succeed")
	}
	// Geometric mean of 1,2,4 = 2.
	if math.Abs(est-2) > 1e-9 {
		t.Fatalf("constant estimate = %g; want 2", est)
	}
	if _, b := m.Coefficients(); b != 0 {
		t.Fatalf("exponent should be 0 for equal sizes, got %g", b)
	}
}

func TestEstimateRefitsAfterRecord(t *testing.T) {
	var m Model
	_ = m.Record(10, 1)
	if est, _ := m.Estimate(10); math.Abs(est-1) > 1e-9 {
		t.Fatalf("est = %g", est)
	}
	_ = m.Record(20, 4)
	// Now the model is a two-point power law passing through both points.
	est10, _ := m.Estimate(10)
	est20, _ := m.Estimate(20)
	if math.Abs(est10-1) > 1e-6 || math.Abs(est20-4) > 1e-6 {
		t.Fatalf("refit wrong: est(10)=%g est(20)=%g", est10, est20)
	}
}

func TestStoreModelIdentityAndSorting(t *testing.T) {
	s := NewStore()
	m1 := s.Model("dgemm", "gpu")
	m2 := s.Model("dgemm", "gpu")
	if m1 != m2 {
		t.Fatal("Model should return the same instance per key")
	}
	s.Model("dgemm", "x86")
	s.Model("axpy", "x86")
	models := s.Models()
	if len(models) != 3 {
		t.Fatalf("models = %d", len(models))
	}
	if models[0].Codelet != "axpy" || models[1].Arch != "gpu" {
		t.Fatalf("sorting wrong: %v %v", models[0], models[1])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	s := NewStore()
	m := s.Model("dgemm", "gpu")
	for _, n := range []float64{1e6, 2e6, 4e6} {
		if err := m.Record(n, n/1e9); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	m2 := s2.Model("dgemm", "gpu")
	if m2.Len() != 3 {
		t.Fatalf("loaded samples = %d", m2.Len())
	}
	e1, _ := m.Estimate(3e6)
	e2, _ := m2.Estimate(3e6)
	if math.Abs(e1-e2) > 1e-12 {
		t.Fatalf("estimates diverge after reload: %g vs %g", e1, e2)
	}
	// Loading merges rather than replaces.
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 6 {
		t.Fatalf("merged samples = %d", m2.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	s := NewStore()
	if err := s.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(bad); err == nil {
		t.Fatal("malformed json must fail")
	}
}

// Property-based: for power-law data the fit is monotone when b > 0.
func TestQuickEstimateMonotone(t *testing.T) {
	f := func(seed uint8) bool {
		var m Model
		b := 0.5 + float64(seed%20)/10 // 0.5..2.4
		for _, n := range []float64{1e3, 1e4, 1e5} {
			if err := m.Record(n, 1e-9*math.Pow(n, b)); err != nil {
				return false
			}
		}
		prev := 0.0
		for _, n := range []float64{2e3, 2e4, 2e5, 2e6} {
			est, ok := m.Estimate(n)
			if !ok || est <= prev {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Regression: Save used to marshal the live Samples slices without taking
// Model.mu, racing with the per-task Record calls the real engine (and
// pdlserved's /observe endpoint) performs. Run under -race, this test fails
// on the pre-snapshot code. Every saved file must also be a loadable,
// internally consistent snapshot.
func TestSaveRecordConcurrent(t *testing.T) {
	s := NewStore()
	m := s.Model("dgemm", "x86")
	path := filepath.Join(t.TempDir(), "models.json")

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 3000; i++ {
				if err := m.Record(float64(i), float64(i)*1e-3); err != nil {
					t.Error(err)
					return
				}
				// A second codelet/arch keeps Store.Model churning too.
				_ = s.Model("dgemm", "gpu").Record(float64(i), float64(g+i)*1e-3)
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()
	saves := 0
	for running := true; running || saves < 5; {
		select {
		case <-done:
			running = false
		default:
		}
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
		saves++
	}

	loaded := NewStore()
	if err := loaded.Load(path); err != nil {
		t.Fatalf("last saved snapshot does not load: %v", err)
	}
	for _, lm := range loaded.Models() {
		if lm.Len() == 0 && m.Len() > 0 && lm.Arch == "x86" {
			t.Fatalf("snapshot lost every sample of %s/%s", lm.Codelet, lm.Arch)
		}
	}
}

// Version must advance on every successful Record — the dmda dispatcher's
// cached estimates revalidate against it — and stay put on rejected samples
// and on Estimate.
func TestVersionAdvancesOnRecord(t *testing.T) {
	var m Model
	v0 := m.Version()
	if err := m.Record(0, 1); err == nil {
		t.Fatal("zero size must fail")
	}
	if m.Version() != v0 {
		t.Fatalf("rejected sample bumped version to %d", m.Version())
	}
	if err := m.Record(100, 0.5); err != nil {
		t.Fatal(err)
	}
	if m.Version() != v0+1 {
		t.Fatalf("version = %d after one sample, want %d", m.Version(), v0+1)
	}
	m.Estimate(100)
	if m.Version() != v0+1 {
		t.Fatalf("Estimate changed the version to %d", m.Version())
	}
	if err := m.Record(200, 1); err != nil {
		t.Fatal(err)
	}
	if m.Version() != v0+2 {
		t.Fatalf("version = %d after two samples, want %d", m.Version(), v0+2)
	}
}
