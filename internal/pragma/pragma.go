// Package pragma parses Cascabel source-code annotations (paper Section
// IV-A):
//
//	#pragma cascabel task : targetplatformlist
//	    : taskidentifier
//	    : taskname
//	    : ( param : accessmode, ... )
//
//	#pragma cascabel execute taskidentifier
//	    : executiongroup
//	    ( param : distribution [: size], ... )
//
// The parser receives the full annotation text (the csrc scanner joins
// continuation lines) and produces structured annotations. Access modes are
// read / write / readwrite; distributions are BLOCK / CYCLIC / BLOCK_CYCLIC
// with an optional size expression.
package pragma

import (
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/taskrt"
)

// Param is one parameter declaration of a task annotation.
type Param struct {
	Name string
	Mode taskrt.AccessMode
}

// TaskAnnotation is a parsed "#pragma cascabel task".
type TaskAnnotation struct {
	// Targets is the targetplatformlist: pattern names the following
	// implementation is written for (e.g. "x86", "opencl").
	Targets []string
	// Interface is the task interface name shared by all implementations.
	Interface string
	// Name is the unique name of this implementation variant.
	Name string
	// Params declares parameter access modes.
	Params []Param
}

// DistSpec is one parameter distribution of an execute annotation.
type DistSpec struct {
	Param string
	Dist  partition.Dist
	// Size is the optional size expression (e.g. "N"); empty when omitted.
	Size string
}

// ExecuteAnnotation is a parsed "#pragma cascabel execute".
type ExecuteAnnotation struct {
	// Interface references the task interface to invoke.
	Interface string
	// Group is the executiongroup: a LogicGroupAttribute naming the PU
	// subset the task should run on ("" = anywhere).
	Group string
	// Dists hold per-parameter data distributions.
	Dists []DistSpec
}

// Kind discriminates parsed annotations.
type Kind int

const (
	// KindTask marks a task-definition annotation.
	KindTask Kind = iota
	// KindExecute marks a call-site annotation.
	KindExecute
)

// Annotation is the sum of the two annotation forms.
type Annotation struct {
	Kind    Kind
	Task    *TaskAnnotation
	Execute *ExecuteAnnotation
}

// Prefix is the pragma introducer all Cascabel annotations share.
const Prefix = "#pragma cascabel"

// IsCascabel reports whether a source line begins a Cascabel annotation.
func IsCascabel(line string) bool {
	return strings.HasPrefix(strings.TrimSpace(line), Prefix)
}

// Parse parses a complete annotation text (possibly spanning multiple
// joined lines).
func Parse(text string) (*Annotation, error) {
	s := strings.TrimSpace(text)
	if !strings.HasPrefix(s, Prefix) {
		return nil, fmt.Errorf("pragma: not a cascabel annotation: %.40q", text)
	}
	s = strings.TrimSpace(s[len(Prefix):])
	switch {
	case strings.HasPrefix(s, "task"):
		ta, err := parseTask(strings.TrimSpace(s[len("task"):]))
		if err != nil {
			return nil, err
		}
		return &Annotation{Kind: KindTask, Task: ta}, nil
	case strings.HasPrefix(s, "execute"):
		ea, err := parseExecute(strings.TrimSpace(s[len("execute"):]))
		if err != nil {
			return nil, err
		}
		return &Annotation{Kind: KindExecute, Execute: ea}, nil
	}
	return nil, fmt.Errorf("pragma: unknown cascabel annotation form: %.40q", s)
}

// splitTop splits s on the separator at paren nesting depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func parseTask(s string) (*TaskAnnotation, error) {
	// Leading ':' before the first field is optional.
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, ":")
	fields := splitTop(s, ':')
	if len(fields) != 4 {
		return nil, fmt.Errorf("pragma: task annotation needs 4 fields (targets : interface : name : params), got %d", len(fields))
	}
	ta := &TaskAnnotation{}
	for _, t := range strings.Split(fields[0], ",") {
		t = strings.TrimSpace(t)
		if t != "" {
			ta.Targets = append(ta.Targets, t)
		}
	}
	if len(ta.Targets) == 0 {
		return nil, fmt.Errorf("pragma: task annotation with empty targetplatformlist")
	}
	ta.Interface = strings.TrimSpace(fields[1])
	ta.Name = strings.TrimSpace(fields[2])
	if ta.Interface == "" || ta.Name == "" {
		return nil, fmt.Errorf("pragma: task annotation needs non-empty interface and name")
	}
	params, err := parseParamList(strings.TrimSpace(fields[3]))
	if err != nil {
		return nil, err
	}
	ta.Params = params
	return ta, nil
}

func parseParamList(s string) ([]Param, error) {
	inner, err := stripParens(s)
	if err != nil {
		return nil, fmt.Errorf("pragma: parameter list: %w", err)
	}
	if strings.TrimSpace(inner) == "" {
		return nil, nil
	}
	var out []Param
	for _, item := range splitTop(inner, ',') {
		parts := strings.SplitN(item, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("pragma: parameter %q needs name:accessmode", strings.TrimSpace(item))
		}
		name := strings.TrimSpace(parts[0])
		mode, err := taskrt.ParseAccessMode(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("pragma: parameter %q: %w", name, err)
		}
		if name == "" {
			return nil, fmt.Errorf("pragma: parameter with empty name")
		}
		out = append(out, Param{Name: name, Mode: mode})
	}
	return out, nil
}

func stripParens(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("expected parenthesised list, got %.40q", s)
	}
	return s[1 : len(s)-1], nil
}

func parseExecute(s string) (*ExecuteAnnotation, error) {
	// Form: taskidentifier [: executiongroup] [(dists)]
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("pragma: execute annotation needs a task identifier")
	}
	// Separate the optional trailing parenthesised distribution list.
	distText := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		distText = strings.TrimSpace(s[i:])
		s = strings.TrimSpace(s[:i])
	}
	fields := splitTop(s, ':')
	ea := &ExecuteAnnotation{Interface: strings.TrimSpace(fields[0])}
	if ea.Interface == "" {
		return nil, fmt.Errorf("pragma: execute annotation needs a task identifier")
	}
	if len(fields) > 2 {
		return nil, fmt.Errorf("pragma: execute annotation has too many fields")
	}
	if len(fields) == 2 {
		ea.Group = strings.TrimSpace(fields[1])
	}
	if distText != "" {
		inner, err := stripParens(distText)
		if err != nil {
			return nil, fmt.Errorf("pragma: distribution list: %w", err)
		}
		for _, item := range splitTop(inner, ',') {
			if strings.TrimSpace(item) == "" {
				continue
			}
			parts := strings.Split(item, ":")
			if len(parts) < 2 || len(parts) > 3 {
				return nil, fmt.Errorf("pragma: distribution %q needs param:DIST[:size]", strings.TrimSpace(item))
			}
			d, err := partition.ParseDist(parts[1])
			if err != nil {
				return nil, err
			}
			ds := DistSpec{Param: strings.TrimSpace(parts[0]), Dist: d}
			if ds.Param == "" {
				return nil, fmt.Errorf("pragma: distribution with empty parameter name")
			}
			if len(parts) == 3 {
				ds.Size = strings.TrimSpace(parts[2])
			}
			ea.Dists = append(ea.Dists, ds)
		}
	}
	return ea, nil
}
