package pragma

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/taskrt"
)

// The paper's Listing 3 task annotation, joined onto one line the way the
// csrc scanner does.
const paperTask = `#pragma cascabel task : x86
    : Ivecadd
    : vecadd01
    : ( A: readwrite,
        B : read )`

const paperExecute = `#pragma cascabel execute Ivecadd
    : executionset01
    (A:BLOCK:N,
     B:BLOCK:N)`

func TestParsePaperTaskAnnotation(t *testing.T) {
	a, err := Parse(paperTask)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a.Kind != KindTask || a.Task == nil {
		t.Fatalf("a = %+v", a)
	}
	ta := a.Task
	if len(ta.Targets) != 1 || ta.Targets[0] != "x86" {
		t.Fatalf("targets = %v", ta.Targets)
	}
	if ta.Interface != "Ivecadd" || ta.Name != "vecadd01" {
		t.Fatalf("iface/name = %q/%q", ta.Interface, ta.Name)
	}
	if len(ta.Params) != 2 {
		t.Fatalf("params = %+v", ta.Params)
	}
	if ta.Params[0].Name != "A" || ta.Params[0].Mode != taskrt.ReadWrite {
		t.Fatalf("param A = %+v", ta.Params[0])
	}
	if ta.Params[1].Name != "B" || ta.Params[1].Mode != taskrt.Read {
		t.Fatalf("param B = %+v", ta.Params[1])
	}
}

func TestParsePaperExecuteAnnotation(t *testing.T) {
	a, err := Parse(paperExecute)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a.Kind != KindExecute || a.Execute == nil {
		t.Fatalf("a = %+v", a)
	}
	ea := a.Execute
	if ea.Interface != "Ivecadd" || ea.Group != "executionset01" {
		t.Fatalf("iface/group = %q/%q", ea.Interface, ea.Group)
	}
	if len(ea.Dists) != 2 {
		t.Fatalf("dists = %+v", ea.Dists)
	}
	if ea.Dists[0] != (DistSpec{Param: "A", Dist: partition.Block, Size: "N"}) {
		t.Fatalf("dist A = %+v", ea.Dists[0])
	}
}

func TestParseMultiTargetTask(t *testing.T) {
	a, err := Parse(`#pragma cascabel task : opencl, cuda , x86 : Idgemm : dgemm_gpu : (A:read, B:read, C:readwrite)`)
	if err != nil {
		t.Fatal(err)
	}
	ta := a.Task
	if len(ta.Targets) != 3 || ta.Targets[1] != "cuda" {
		t.Fatalf("targets = %v", ta.Targets)
	}
	if len(ta.Params) != 3 || ta.Params[2].Mode != taskrt.ReadWrite {
		t.Fatalf("params = %+v", ta.Params)
	}
}

func TestParseExecuteVariants(t *testing.T) {
	// No group, no dists.
	a, err := Parse(`#pragma cascabel execute Idgemm`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Execute.Interface != "Idgemm" || a.Execute.Group != "" || a.Execute.Dists != nil {
		t.Fatalf("a = %+v", a.Execute)
	}
	// Group but no dists.
	a, err = Parse(`#pragma cascabel execute Idgemm : gpuset`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Execute.Group != "gpuset" {
		t.Fatalf("group = %q", a.Execute.Group)
	}
	// Dists without sizes; CYCLIC and BLOCK_CYCLIC spellings.
	a, err = Parse(`#pragma cascabel execute I : g (X:CYCLIC, Y:BLOCK_CYCLIC:64)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Execute.Dists[0].Dist != partition.Cyclic || a.Execute.Dists[0].Size != "" {
		t.Fatalf("dist X = %+v", a.Execute.Dists[0])
	}
	if a.Execute.Dists[1].Dist != partition.BlockCyclic || a.Execute.Dists[1].Size != "64" {
		t.Fatalf("dist Y = %+v", a.Execute.Dists[1])
	}
	// Empty dist list is allowed.
	a, err = Parse(`#pragma cascabel execute I : g ()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Execute.Dists) != 0 {
		t.Fatalf("dists = %+v", a.Execute.Dists)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ text, want string }{
		{`#pragma omp parallel`, "not a cascabel"},
		{`#pragma cascabel frobnicate`, "unknown cascabel annotation"},
		{`#pragma cascabel task : x86 : I : n`, "needs 4 fields"},
		{`#pragma cascabel task :  : I : n : (A:read)`, "empty targetplatformlist"},
		{`#pragma cascabel task : x86 :  : n : (A:read)`, "non-empty interface"},
		{`#pragma cascabel task : x86 : I : n : A`, "parenthesised"},
		{`#pragma cascabel task : x86 : I : n : A:read`, "needs 4 fields"},
		{`#pragma cascabel task : x86 : I : n : (A)`, "needs name:accessmode"},
		{`#pragma cascabel task : x86 : I : n : (A:peek)`, "unknown access mode"},
		{`#pragma cascabel task : x86 : I : n : (:read)`, "empty name"},
		{`#pragma cascabel execute`, "needs a task identifier"},
		{`#pragma cascabel execute I : g : h`, "too many fields"},
		{`#pragma cascabel execute I : g (A)`, "needs param:DIST"},
		{`#pragma cascabel execute I : g (A:SCATTER)`, "unknown distribution"},
		{`#pragma cascabel execute I : g (A:BLOCK:N:extra)`, "needs param:DIST"},
		{`#pragma cascabel execute I : g (:BLOCK)`, "empty parameter name"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v; want substring %q", c.text, err, c.want)
		}
	}
}

func TestIsCascabel(t *testing.T) {
	if !IsCascabel("  #pragma cascabel task : x") {
		t.Fatal("indented pragma not recognised")
	}
	if IsCascabel("#pragma omp for") {
		t.Fatal("omp pragma misrecognised")
	}
}

func TestSplitTopRespectsParens(t *testing.T) {
	got := splitTop("a : (x:y) : b", ':')
	if len(got) != 3 || strings.TrimSpace(got[1]) != "(x:y)" {
		t.Fatalf("splitTop = %q", got)
	}
}
