// Package predict implements the paper's auto-tuning usage scenario
// (Section II): "performance relevant observations can now be related not
// only to concrete hardware parameters but also to abstract architectural
// patterns expressed in the PDL. Moreover, expert-programmers can denote
// specific optimizations for abstract classes of heterogeneous systems."
//
// A Tuner records execution-time observations keyed by (codelet,
// architectural pattern) instead of by concrete machine. To predict a
// codelet's performance on a platform never measured before, the tuner
// computes which patterns the platform satisfies (pattern.Views) and uses
// the model of the most specific satisfied pattern. The same machinery ranks
// implementation variants for a target platform — the paper's "selection of
// implementation variants, performance prediction" arrow in Figure 1.
package predict

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/repo"
)

// Tuner accumulates pattern-keyed performance models.
type Tuner struct {
	store *perfmodel.Store
}

// NewTuner returns an empty tuner. The underlying model store is exposed so
// callers can persist it (perfmodel JSON files).
func NewTuner() *Tuner {
	return &Tuner{store: perfmodel.NewStore()}
}

// Store returns the backing model store for persistence.
func (t *Tuner) Store() *perfmodel.Store { return t.store }

// SnapshotPerf serialises the tuner's models as deterministic JSON — the
// perfmodel half of registry.PerfState, embedded in pdlserved's durable
// snapshots.
func (t *Tuner) SnapshotPerf() ([]byte, error) { return t.store.SnapshotJSON() }

// RestorePerf merges a SnapshotPerf image back into the tuner.
func (t *Tuner) RestorePerf(data []byte) error { return t.store.RestoreJSON(data) }

// CheckObservable reports whether Observe can attribute samples for the
// platform — i.e. it satisfies at least one known pattern. The server
// validates with this *before* journaling an observation, so nothing
// unreplayable is ever written ahead.
func (t *Tuner) CheckObservable(pl *core.Platform) error {
	views, err := pattern.Views(pl)
	if err != nil {
		return err
	}
	if len(views) == 0 {
		return fmt.Errorf("predict: platform %q satisfies no known pattern", pl.Name)
	}
	return nil
}

// Observe records one execution of a codelet on a platform: the sample is
// attributed to every architectural pattern the platform satisfies, so
// later predictions can start from the most specific pattern a new target
// shares with past measurements.
func (t *Tuner) Observe(pl *core.Platform, codelet string, size, seconds float64) error {
	views, err := pattern.Views(pl)
	if err != nil {
		return err
	}
	if len(views) == 0 {
		return fmt.Errorf("predict: platform %q satisfies no known pattern", pl.Name)
	}
	for _, v := range views {
		if err := t.store.Model(codelet, v.Name).Record(size, seconds); err != nil {
			return err
		}
	}
	return nil
}

// specificity orders patterns: more roles and more constraints mean a more
// specific (and therefore more predictive) pattern. Derived patterns are
// the most specific of all.
func specificity(p *pattern.Pattern) int {
	score := 0
	var rec func(n *pattern.Node)
	rec = func(n *pattern.Node) {
		score += 10
		score += len(n.Constraints) * 5
		if n.MinCount > 1 {
			score += 2
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	return score
}

// Prediction is one performance estimate.
type Prediction struct {
	Codelet string
	Pattern string // the pattern whose model produced the estimate
	Seconds float64
	Samples int // observations backing the model
}

// Predict estimates the execution time of a codelet at the given size on a
// platform, using the most specific satisfied pattern that has observations.
func (t *Tuner) Predict(pl *core.Platform, codelet string, size float64) (Prediction, error) {
	views, err := pattern.Views(pl)
	if err != nil {
		return Prediction{}, err
	}
	sort.SliceStable(views, func(i, j int) bool {
		return specificity(views[i].Pattern) > specificity(views[j].Pattern)
	})
	for _, v := range views {
		m := t.store.Model(codelet, v.Name)
		if m.Len() == 0 {
			continue
		}
		est, ok := m.Estimate(size)
		if !ok {
			continue
		}
		return Prediction{Codelet: codelet, Pattern: v.Name, Seconds: est, Samples: m.Len()}, nil
	}
	return Prediction{}, fmt.Errorf("predict: no observations cover platform %q for codelet %q", pl.Name, codelet)
}

// Ranked is one variant with its predicted execution time.
type Ranked struct {
	Variant    *repo.Variant
	Prediction Prediction
	// Err is set when no model covers the variant (unranked entries sort
	// last).
	Err error
}

// RankVariants orders the implementation variants of a task interface by
// predicted execution time on the target platform (fastest first). Variants
// whose target patterns the platform cannot satisfy are excluded entirely;
// variants without observations sort after ranked ones.
func (t *Tuner) RankVariants(r *repo.Repository, iface string, pl *core.Platform, size float64) ([]Ranked, error) {
	variants := r.VariantsFor(iface)
	if len(variants) == 0 {
		return nil, fmt.Errorf("predict: no variants for interface %q", iface)
	}
	var out []Ranked
	for _, v := range variants {
		matched := false
		for _, target := range v.Targets {
			p, err := pattern.FromTarget(target)
			if err != nil {
				return nil, err
			}
			if pattern.Satisfies(p, pl) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		pred, err := t.Predict(pl, v.Name, size)
		out = append(out, Ranked{Variant: v, Prediction: pred, Err: err})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("predict: no variant of %q matches platform %q", iface, pl.Name)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err == nil) != (out[j].Err == nil) {
			return out[i].Err == nil
		}
		if out[i].Err != nil {
			return false
		}
		return out[i].Prediction.Seconds < out[j].Prediction.Seconds
	})
	return out, nil
}
