package predict

import (
	"math"
	"strings"
	"testing"

	"repro/internal/discover"
	"repro/internal/pattern"
	"repro/internal/repo"
)

func TestObserveAndPredictSamePlatform(t *testing.T) {
	tn := NewTuner()
	pl := discover.MustPlatform("xeon-2gpu")
	// t = 1e-10 * size (a 10 GFLOP/s machine).
	for _, size := range []float64{1e9, 2e9, 4e9} {
		if err := tn.Observe(pl, "dgemm", size, 1e-10*size); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := tn.Predict(pl, "dgemm", 3e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Seconds-0.3)/0.3 > 1e-6 {
		t.Fatalf("prediction = %g; want 0.3", pred.Seconds)
	}
	// The most specific pattern for the platform's own observations is its
	// derived pattern.
	if !strings.HasPrefix(pred.Pattern, "derived:") {
		t.Fatalf("pattern = %q; want the derived (most specific) pattern", pred.Pattern)
	}
	if pred.Samples != 3 {
		t.Fatalf("samples = %d", pred.Samples)
	}
}

func TestPredictTransfersAcrossPlatformsViaSharedPattern(t *testing.T) {
	tn := NewTuner()
	source := discover.MustPlatform("xeon-2gpu")
	for _, size := range []float64{1e9, 2e9} {
		if err := tn.Observe(source, "dgemm", size, 1e-10*size); err != nil {
			t.Fatal(err)
		}
	}
	// gtx480 is a different platform (4 cores, 1 gpu) that shares the
	// host-device/opencl/cuda patterns but not multi-gpu or the derived
	// pattern of the source.
	target := discover.MustPlatform("gtx480")
	pred, err := tn.Predict(target, "dgemm", 1.5e9)
	if err != nil {
		t.Fatalf("prediction should transfer via shared patterns: %v", err)
	}
	if pred.Pattern == "derived:xeon-2gpu" {
		t.Fatal("derived pattern of another machine must not match")
	}
	if pred.Seconds <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	// A cell blade shares only the seq pattern — prediction still works but
	// falls back to the least specific shared pattern.
	cell := discover.MustPlatform("cell-blade")
	cellPred, err := tn.Predict(cell, "dgemm", 1.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if cellPred.Pattern != "seq" {
		t.Fatalf("cell prediction via %q; want seq fallback", cellPred.Pattern)
	}
}

func TestPredictNoObservations(t *testing.T) {
	tn := NewTuner()
	if _, err := tn.Predict(discover.MustPlatform("xeon-cpu"), "dgemm", 1e9); err == nil {
		t.Fatal("prediction without observations must fail")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	seq, _ := pattern.FromTarget("seq")
	hd, _ := pattern.FromTarget("host-device")
	multi, _ := pattern.FromTarget("multi-gpu")
	if !(specificity(hd) > specificity(seq)) {
		t.Fatal("host-device should be more specific than seq")
	}
	if !(specificity(multi) > specificity(seq)) {
		t.Fatal("multi-gpu should be more specific than seq")
	}
	derived, err := pattern.Derive(discover.MustPlatform("xeon-2gpu"))
	if err != nil {
		t.Fatal(err)
	}
	if !(specificity(derived) >= specificity(hd)) {
		t.Fatal("derived pattern should be at least as specific as host-device")
	}
}

func TestRankVariants(t *testing.T) {
	tn := NewTuner()
	r := repo.NewWithLibrary()
	pl := discover.MustPlatform("xeon-2gpu")
	// Observations: cublas is 10x faster than goto, naive is slowest.
	for _, size := range []float64{1e9, 2e9} {
		if err := tn.Observe(pl, "dgemm_cublas", size, 1e-11*size); err != nil {
			t.Fatal(err)
		}
		if err := tn.Observe(pl, "dgemm_goto", size, 1e-10*size); err != nil {
			t.Fatal(err)
		}
		if err := tn.Observe(pl, "dgemm_naive", size, 4e-10*size); err != nil {
			t.Fatal(err)
		}
	}
	ranked, err := tn.RankVariants(r, repo.IfaceDGEMM, pl, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d variants", len(ranked))
	}
	want := []string{"dgemm_cublas", "dgemm_goto", "dgemm_naive"}
	for i, w := range want {
		if ranked[i].Variant.Name != w {
			t.Fatalf("rank %d = %s; want %s", i, ranked[i].Variant.Name, w)
		}
	}
	// On the CPU-only box the gpu variant is excluded entirely.
	cpuRanked, err := tn.RankVariants(r, repo.IfaceDGEMM, discover.MustPlatform("xeon-cpu"), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range cpuRanked {
		if rk.Variant.Arch == "gpu" {
			t.Fatal("gpu variant ranked on cpu-only platform")
		}
	}
}

func TestRankVariantsUnobservedSortLast(t *testing.T) {
	tn := NewTuner()
	r := repo.NewWithLibrary()
	pl := discover.MustPlatform("xeon-cpu")
	if err := tn.Observe(pl, "dgemm_goto", 1e9, 0.1); err != nil {
		t.Fatal(err)
	}
	ranked, err := tn.RankVariants(r, repo.IfaceDGEMM, pl, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Variant.Name != "dgemm_goto" || ranked[0].Err != nil {
		t.Fatalf("first = %+v", ranked[0])
	}
	last := ranked[len(ranked)-1]
	if last.Err == nil {
		t.Fatal("unobserved variant should carry an error and sort last")
	}
}

func TestRankVariantsErrors(t *testing.T) {
	tn := NewTuner()
	r := repo.New()
	pl := discover.MustPlatform("xeon-cpu")
	if _, err := tn.RankVariants(r, "Inone", pl, 1); err == nil {
		t.Fatal("unknown interface must fail")
	}
	_ = r.Add(&repo.Variant{Interface: "Ig", Name: "g", Targets: []string{"cuda"}, Arch: "gpu"})
	if _, err := tn.RankVariants(r, "Ig", pl, 1); err == nil {
		t.Fatal("no matching variant must fail")
	}
}

func TestStoreExposedForPersistence(t *testing.T) {
	tn := NewTuner()
	pl := discover.MustPlatform("xeon-cpu")
	if err := tn.Observe(pl, "k", 10, 1); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/models.json"
	if err := tn.Store().Save(path); err != nil {
		t.Fatal(err)
	}
	tn2 := NewTuner()
	if err := tn2.Store().Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.Predict(pl, "k", 20); err != nil {
		t.Fatalf("reloaded tuner cannot predict: %v", err)
	}
}
