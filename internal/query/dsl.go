// Query-string DSL shared by cmd/pdlquery and the pdlserved HTTP API: a flat
// key=value filter vocabulary that compiles onto the fluent Q API. Both the
// CLI (positional key=value args) and the server (URL query parameters) feed
// the same parser, so a filter expression means the same thing everywhere.
//
// Vocabulary:
//
//	kind=worker|master|hybrid|*     PU class (case-insensitive)
//	arch=gpu                        ARCHITECTURE property equality
//	group=devset                    logic-group membership
//	id=dev0                         exact PU id
//	prop=NAME                       property existence
//	prop=NAME:VALUE                 property equality (repeatable)
//	select=//Worker[...]            full selector expression, intersected
//	limit=N                         keep at most N results (document order)
//
// Unknown keys, bad values and selector parse errors are all collected into
// one *FilterError so a caller sees every problem in a single pass.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// PropFilter is one prop=NAME[:VALUE] filter.
type PropFilter struct {
	Name     string
	Value    string
	HasValue bool
}

// Filters is a parsed DSL expression. The zero value matches every PU.
type Filters struct {
	Kind   string // canonical class name ("Master", "Hybrid", "Worker") or ""
	Arch   string
	Group  string
	ID     string
	Props  []PropFilter
	Select string // selector expression, intersected with the flat filters
	Limit  int    // 0 means unlimited
}

// FilterError aggregates every problem found while parsing a DSL expression,
// so tools report all invalid filter arguments in one pass instead of
// bailing on the first.
type FilterError struct {
	Problems []string
}

func (e *FilterError) Error() string {
	return fmt.Sprintf("query: %d invalid filter(s): %s", len(e.Problems), strings.Join(e.Problems, "; "))
}

// AsFilterError unwraps a *FilterError, if err is one.
func AsFilterError(err error) (*FilterError, bool) {
	fe, ok := err.(*FilterError)
	return fe, ok
}

// filterKeys is the closed DSL vocabulary, for error messages.
var filterKeys = []string{"arch", "group", "id", "kind", "limit", "prop", "select"}

// ParseFilters parses a DSL expression given as key → values (the shape of
// url.Values, so HTTP handlers pass r.URL.Query() directly). All problems
// are collected; on any problem the returned *Filters is nil and err is a
// *FilterError listing every one.
func ParseFilters(pairs map[string][]string) (*Filters, error) {
	f := &Filters{}
	var problems []string
	bad := func(format string, args ...any) { problems = append(problems, fmt.Sprintf(format, args...)) }

	// Deterministic error order regardless of map iteration.
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	single := func(key string, vals []string) (string, bool) {
		if len(vals) > 1 {
			bad("%s: given %d times, want once", key, len(vals))
			return "", false
		}
		v := strings.TrimSpace(vals[0])
		if v == "" {
			bad("%s: empty value", key)
			return "", false
		}
		return v, true
	}

	for _, key := range keys {
		vals := pairs[key]
		switch key {
		case "kind":
			v, ok := single(key, vals)
			if !ok {
				continue
			}
			if v == "*" {
				continue // explicit wildcard: no class filter
			}
			canon := strings.ToUpper(v[:1]) + strings.ToLower(v[1:])
			switch canon {
			case "Master", "Hybrid", "Worker":
				f.Kind = canon
			default:
				bad("%s: unknown class %q (want master, hybrid, worker or *)", key, v)
			}
		case "arch":
			if v, ok := single(key, vals); ok {
				f.Arch = v
			}
		case "group":
			if v, ok := single(key, vals); ok {
				f.Group = v
			}
		case "id":
			if v, ok := single(key, vals); ok {
				f.ID = v
			}
		case "prop":
			for _, v := range vals {
				v = strings.TrimSpace(v)
				if v == "" {
					bad("prop: empty value")
					continue
				}
				name, value, hasValue := strings.Cut(v, ":")
				if name == "" {
					bad("prop: %q has empty property name", v)
					continue
				}
				f.Props = append(f.Props, PropFilter{Name: name, Value: value, HasValue: hasValue})
			}
		case "select":
			v, ok := single(key, vals)
			if !ok {
				continue
			}
			if _, err := ParseSelector(v); err != nil {
				bad("select: %v", err)
				continue
			}
			f.Select = v
		case "limit":
			v, ok := single(key, vals)
			if !ok {
				continue
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				bad("limit: %q is not a non-negative integer", v)
				continue
			}
			f.Limit = n
		default:
			bad("unknown filter key %q (known: %s)", key, strings.Join(filterKeys, ", "))
		}
	}
	if len(problems) > 0 {
		return nil, &FilterError{Problems: problems}
	}
	return f, nil
}

// ParseFilterArgs parses positional "key=value" arguments (the CLI shape of
// the DSL). Arguments without '=' are reported alongside every other
// problem, again in one pass.
func ParseFilterArgs(args []string) (*Filters, error) {
	pairs := map[string][]string{}
	var problems []string
	for _, a := range args {
		key, value, ok := strings.Cut(a, "=")
		if !ok || strings.TrimSpace(key) == "" {
			problems = append(problems, fmt.Sprintf("argument %q is not key=value", a))
			continue
		}
		key = strings.TrimSpace(key)
		pairs[key] = append(pairs[key], value)
	}
	f, err := ParseFilters(pairs)
	if err != nil {
		fe := err.(*FilterError)
		fe.Problems = append(problems, fe.Problems...)
		return nil, fe
	}
	if len(problems) > 0 {
		return nil, &FilterError{Problems: problems}
	}
	return f, nil
}

// Empty reports whether the filters match every PU unmodified.
func (f *Filters) Empty() bool {
	return f.Kind == "" && f.Arch == "" && f.Group == "" && f.ID == "" &&
		len(f.Props) == 0 && f.Select == "" && f.Limit == 0
}

// Apply narrows q by every filter, in a fixed order so results are
// deterministic. The receiver q is not mutated (Q chaining derives).
func (f *Filters) Apply(q *Q) (*Q, error) {
	if f.Kind != "" {
		c, err := core.ParseClass(f.Kind)
		if err != nil {
			return nil, err
		}
		q = q.Class(c)
	}
	if f.Arch != "" {
		q = q.WithArch(f.Arch)
	}
	if f.Group != "" {
		q = q.InGroup(f.Group)
	}
	if f.ID != "" {
		id := f.ID
		q = q.Filter(func(p *core.PU) bool { return p.ID == id })
	}
	for _, pf := range f.Props {
		pf := pf
		if pf.HasValue {
			q = q.WithPropValue(pf.Name, pf.Value)
		} else {
			q = q.WithProp(pf.Name)
		}
	}
	if f.Select != "" {
		var err error
		q, err = q.Select(f.Select)
		if err != nil {
			return nil, err
		}
	}
	if f.Limit > 0 {
		q = q.Head(f.Limit)
	}
	return q, nil
}

// CacheKey returns a canonical rendering of the filters: equal filter sets
// produce equal keys regardless of input ordering, so it is safe to key a
// query-result cache on it.
func (f *Filters) CacheKey() string {
	var b strings.Builder
	add := func(k, v string) {
		if v != "" {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
			b.WriteByte('&')
		}
	}
	add("kind", f.Kind)
	add("arch", f.Arch)
	add("group", f.Group)
	add("id", f.ID)
	props := make([]string, 0, len(f.Props))
	for _, p := range f.Props {
		s := p.Name
		if p.HasValue {
			s += ":" + p.Value
		}
		props = append(props, s)
	}
	sort.Strings(props)
	for _, p := range props {
		add("prop", p)
	}
	add("select", f.Select)
	if f.Limit > 0 {
		add("limit", strconv.Itoa(f.Limit))
	}
	return strings.TrimSuffix(b.String(), "&")
}

// String renders the filters in CLI argument form.
func (f *Filters) String() string {
	return strings.ReplaceAll(f.CacheKey(), "&", " ")
}
