package query

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFiltersBasics(t *testing.T) {
	f, err := ParseFilters(map[string][]string{
		"kind":  {"worker"},
		"arch":  {"gpu"},
		"group": {"devset"},
		"prop":  {"VENDOR:Nvidia", "GLOBAL_MEM_SIZE"},
		"limit": {"2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != "Worker" || f.Arch != "gpu" || f.Group != "devset" || f.Limit != 2 {
		t.Fatalf("filters = %+v", f)
	}
	if len(f.Props) != 2 || !f.Props[0].HasValue || f.Props[1].HasValue {
		t.Fatalf("props = %+v", f.Props)
	}
	if f.Empty() {
		t.Fatal("non-trivial filters report Empty")
	}
}

func TestParseFiltersKindCanonicalisation(t *testing.T) {
	for _, v := range []string{"worker", "Worker", "WORKER", "wORKER"} {
		f, err := ParseFilters(map[string][]string{"kind": {v}})
		if err != nil {
			t.Fatalf("kind=%q: %v", v, err)
		}
		if f.Kind != "Worker" {
			t.Fatalf("kind=%q parsed to %q", v, f.Kind)
		}
	}
	// Explicit wildcard means no class filter.
	f, err := ParseFilters(map[string][]string{"kind": {"*"}})
	if err != nil || f.Kind != "" {
		t.Fatalf("kind=*: %+v, %v", f, err)
	}
}

// All problems must surface in one pass, deterministically ordered.
func TestParseFiltersReportsAllProblems(t *testing.T) {
	_, err := ParseFilters(map[string][]string{
		"kind":   {"banana"},
		"limit":  {"x"},
		"select": {"//Nope"},
		"bogus":  {"1"},
		"group":  {""},
	})
	if err == nil {
		t.Fatal("want error")
	}
	fe, ok := AsFilterError(err)
	if !ok {
		t.Fatalf("error %T is not *FilterError", err)
	}
	if len(fe.Problems) != 5 {
		t.Fatalf("problems = %v; want all 5", fe.Problems)
	}
	// Sorted by key: bogus, group, kind, limit, select.
	wantPrefixes := []string{"unknown filter key", "group:", "kind:", "limit:", "select:"}
	for i, p := range fe.Problems {
		if !strings.HasPrefix(p, wantPrefixes[i]) {
			t.Fatalf("problem[%d] = %q; want prefix %q (all: %v)", i, p, wantPrefixes[i], fe.Problems)
		}
	}
	if !strings.Contains(fe.Error(), "5 invalid filter(s)") {
		t.Fatalf("Error() = %q", fe.Error())
	}
}

func TestParseFilterArgs(t *testing.T) {
	f, err := ParseFilterArgs([]string{"kind=worker", "prop=VENDOR:Nvidia", "prop=CORES"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != "Worker" || len(f.Props) != 2 {
		t.Fatalf("filters = %+v", f)
	}

	// Malformed args and bad values are all reported together.
	_, err = ParseFilterArgs([]string{"noequals", "kind=banana", "=value", "limit=-1"})
	fe, ok := AsFilterError(err)
	if !ok {
		t.Fatalf("error %T", err)
	}
	if len(fe.Problems) != 4 {
		t.Fatalf("problems = %v; want 4", fe.Problems)
	}
}

func TestFiltersApply(t *testing.T) {
	pl := fixture(t)
	q := New(pl)
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"kind=worker"}, []string{"gpu0", "gpu1", "spe0", "spe1"}},
		{[]string{"kind=worker", "arch=gpu"}, []string{"gpu0", "gpu1"}},
		{[]string{"group=gpuset"}, []string{"gpu0", "gpu1"}},
		{[]string{"id=spe0"}, []string{"spe0"}},
		{[]string{"prop=MAX_COMPUTE_UNITS"}, []string{"gpu0", "gpu1"}},
		{[]string{"prop=MAX_COMPUTE_UNITS:30"}, []string{"gpu1"}},
		{[]string{"kind=worker", "limit=2"}, []string{"gpu0", "gpu1"}},
		{[]string{"select=//Worker[ARCHITECTURE=spe]"}, []string{"spe0", "spe1"}},
		{[]string{"kind=worker", "select=//*[group=gpuset]"}, []string{"gpu0", "gpu1"}},
		{[]string{}, []string{"cpu", "gpu0", "gpu1", "ppe", "spe0", "spe1"}},
	}
	for _, c := range cases {
		f, err := ParseFilterArgs(c.args)
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		got, err := f.Apply(q)
		if err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if !reflect.DeepEqual(got.IDs(), c.want) {
			t.Fatalf("%v => %v; want %v", c.args, got.IDs(), c.want)
		}
	}
}

// CacheKey must be canonical: the same filter set renders identically no
// matter the construction order, and different sets differ.
func TestFiltersCacheKeyCanonical(t *testing.T) {
	a, _ := ParseFilterArgs([]string{"prop=B", "prop=A", "kind=worker"})
	b, _ := ParseFilterArgs([]string{"kind=Worker", "prop=A", "prop=B"})
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("keys differ: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	c, _ := ParseFilterArgs([]string{"kind=worker", "prop=A"})
	if a.CacheKey() == c.CacheKey() {
		t.Fatalf("distinct filters share key %q", a.CacheKey())
	}
	empty, _ := ParseFilterArgs(nil)
	if empty.CacheKey() != "" || !empty.Empty() {
		t.Fatalf("empty filters: key=%q", empty.CacheKey())
	}
}

func TestFiltersString(t *testing.T) {
	f, _ := ParseFilterArgs([]string{"kind=worker", "arch=gpu"})
	if got := f.String(); got != "kind=Worker arch=gpu" {
		t.Fatalf("String() = %q", got)
	}
}
