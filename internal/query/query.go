package query

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Q is a lazily evaluated node set over one platform. Methods narrow the set
// and can be chained; terminal methods (All, First, IDs, Count) materialise
// results in document order.
type Q struct {
	pl    *core.Platform
	nodes []*core.PU
	order map[*core.PU]int
}

// New returns a query rooted at every PU of the platform.
func New(pl *core.Platform) *Q {
	q := &Q{pl: pl, order: map[*core.PU]int{}}
	i := 0
	pl.Walk(func(pu, _ *core.PU) bool {
		q.order[pu] = i
		i++
		q.nodes = append(q.nodes, pu)
		return true
	})
	return q
}

func (q *Q) derive(nodes []*core.PU) *Q {
	return &Q{pl: q.pl, nodes: nodes, order: q.order}
}

// Filter keeps the PUs for which keep returns true.
func (q *Q) Filter(keep func(*core.PU) bool) *Q {
	var out []*core.PU
	for _, n := range q.nodes {
		if keep(n) {
			out = append(out, n)
		}
	}
	return q.derive(out)
}

// Class keeps PUs of the given class.
func (q *Q) Class(c core.Class) *Q {
	return q.Filter(func(p *core.PU) bool { return p.Class == c })
}

// Masters keeps Master PUs.
func (q *Q) Masters() *Q { return q.Class(core.Master) }

// Hybrids keeps Hybrid PUs.
func (q *Q) Hybrids() *Q { return q.Class(core.Hybrid) }

// Workers keeps Worker PUs.
func (q *Q) Workers() *Q { return q.Class(core.Worker) }

// WithArch keeps PUs whose ARCHITECTURE property equals arch.
func (q *Q) WithArch(arch string) *Q {
	return q.Filter(func(p *core.PU) bool { return p.Architecture() == arch })
}

// WithProp keeps PUs that carry the named property (any value).
func (q *Q) WithProp(name string) *Q {
	return q.Filter(func(p *core.PU) bool {
		_, ok := p.Descriptor.Get(name)
		return ok
	})
}

// WithPropValue keeps PUs whose named property equals value.
func (q *Q) WithPropValue(name, value string) *Q {
	return q.Filter(func(p *core.PU) bool { return p.Descriptor.Value(name) == value })
}

// InGroup keeps PUs carrying the LogicGroupAttribute group.
func (q *Q) InGroup(group string) *Q {
	return q.Filter(func(p *core.PU) bool { return p.InGroup(group) })
}

// ControlledBy keeps PUs whose controller chain includes the PU with the
// given id (direct or transitive control).
func (q *Q) ControlledBy(id string) *Q {
	root := q.pl.FindPU(id)
	if root == nil {
		return q.derive(nil)
	}
	in := map[*core.PU]bool{}
	root.Walk(func(n, _ *core.PU) bool {
		if n != root {
			in[n] = true
		}
		return true
	})
	return q.Filter(func(p *core.PU) bool { return in[p] })
}

// Select narrows the set with a parsed selector expression.
func (q *Q) Select(src string) (*Q, error) {
	sel, err := ParseSelector(src)
	if err != nil {
		return nil, err
	}
	matched := evalSelector(q.pl, sel)
	in := map[*core.PU]bool{}
	for _, m := range matched {
		in[m] = true
	}
	return q.Filter(func(p *core.PU) bool { return in[p] }), nil
}

// Head keeps the first n matched PUs in document order.
func (q *Q) Head(n int) *Q {
	all := q.All()
	if n < len(all) {
		all = all[:n]
	}
	return q.derive(all)
}

// All returns the matched PUs in document order.
func (q *Q) All() []*core.PU {
	out := append([]*core.PU(nil), q.nodes...)
	sort.Slice(out, func(i, j int) bool { return q.order[out[i]] < q.order[out[j]] })
	return out
}

// First returns the first matched PU in document order, or nil.
func (q *Q) First() *core.PU {
	all := q.All()
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// Count returns the number of matched PUs.
func (q *Q) Count() int { return len(q.nodes) }

// TotalUnits sums the effective quantities of the matched PUs.
func (q *Q) TotalUnits() int {
	n := 0
	for _, p := range q.nodes {
		n += p.EffectiveQuantity()
	}
	return n
}

// IDs returns the ids of the matched PUs in document order.
func (q *Q) IDs() []string {
	all := q.All()
	ids := make([]string, len(all))
	for i, p := range all {
		ids[i] = p.ID
	}
	return ids
}

// Select evaluates a selector expression against a platform and returns the
// matched PUs in document order.
func Select(pl *core.Platform, src string) ([]*core.PU, error) {
	sel, err := ParseSelector(src)
	if err != nil {
		return nil, err
	}
	return evalSelector(pl, sel), nil
}

// MustSelect is Select for fixtures and tests; it panics on parse errors.
func MustSelect(pl *core.Platform, src string) []*core.PU {
	out, err := Select(pl, src)
	if err != nil {
		panic(err)
	}
	return out
}

// evalSelector runs the parsed steps against the platform.
func evalSelector(pl *core.Platform, sel *Selector) []*core.PU {
	order := map[*core.PU]int{}
	i := 0
	pl.Walk(func(pu, _ *core.PU) bool {
		order[pu] = i
		i++
		return true
	})

	union := map[*core.PU]bool{}
	for _, path := range sel.Paths {
		// The virtual root is represented by nil; its children are the
		// Masters and its descendants are all PUs.
		cur := []*core.PU{nil}
		for _, step := range path {
			next := map[*core.PU]bool{}
			for _, node := range cur {
				var candidates []*core.PU
				if step.Descend {
					if node == nil {
						candidates = pl.AllPUs()
					} else {
						node.Walk(func(n, _ *core.PU) bool {
							if n != node {
								candidates = append(candidates, n)
							}
							return true
						})
					}
				} else {
					if node == nil {
						candidates = pl.Masters
					} else {
						candidates = node.Children
					}
				}
				for _, c := range candidates {
					if stepMatches(step, c) {
						next[c] = true
					}
				}
			}
			cur = cur[:0]
			for n := range next {
				cur = append(cur, n)
			}
		}
		for _, n := range cur {
			union[n] = true
		}
	}
	out := make([]*core.PU, 0, len(union))
	for n := range union {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

func stepMatches(step Step, pu *core.PU) bool {
	if step.Class != "*" && step.Class != pu.Class.String() {
		return false
	}
	for _, pr := range step.Preds {
		if !pr.matches(pu) {
			return false
		}
	}
	return true
}

// Describe prints one line per matched PU; used by cmd/pdlquery.
func Describe(pus []*core.PU) string {
	out := ""
	for _, p := range pus {
		out += fmt.Sprintf("%s\n", p)
	}
	return out
}
