package query

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// fixture: cpu Master (8x) controlling gpu0/gpu1 workers and a Cell-like
// hybrid with two SPEs.
func fixture(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("mixed").
		Master("cpu", core.Arch("x86"), core.Qty(8),
			core.WithProp(core.PropCores, "8"), core.InGroups("cpuset")).
		Worker("gpu0", core.Arch("gpu"), core.WithProp(core.PropComputeUnits, "15"), core.InGroups("gpuset")).
		Worker("gpu1", core.Arch("gpu"), core.WithProp(core.PropComputeUnits, "30"), core.InGroups("gpuset")).
		Hybrid("ppe", core.Arch("ppc")).
		Worker("spe0", core.Arch("spe")).
		Worker("spe1", core.Arch("spe")).
		End().
		Link(core.ICTypePCIe, "cpu", "gpu0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func ids(pus []*core.PU) []string {
	out := make([]string, len(pus))
	for i, p := range pus {
		out[i] = p.ID
	}
	return out
}

func TestSelectorBasics(t *testing.T) {
	pl := fixture(t)
	cases := []struct {
		sel  string
		want []string
	}{
		{"//Worker", []string{"gpu0", "gpu1", "spe0", "spe1"}},
		{"//Worker[ARCHITECTURE=gpu]", []string{"gpu0", "gpu1"}},
		{"//Worker[ARCHITECTURE=spe]", []string{"spe0", "spe1"}},
		{"/Master", []string{"cpu"}},
		{"/Master/Worker", []string{"gpu0", "gpu1"}},
		{"/Master/Hybrid/Worker", []string{"spe0", "spe1"}},
		{"//Hybrid/Worker", []string{"spe0", "spe1"}},
		{"//*[group=gpuset]", []string{"gpu0", "gpu1"}},
		{"//*[group!=gpuset]", []string{"cpu", "ppe", "spe0", "spe1"}},
		{"//Worker[MAX_COMPUTE_UNITS>=15]", []string{"gpu0", "gpu1"}},
		{"//Worker[MAX_COMPUTE_UNITS>15]", []string{"gpu1"}},
		{"//Worker[MAX_COMPUTE_UNITS<30]", []string{"gpu0"}},
		{"//Worker[MAX_COMPUTE_UNITS!=15]", []string{"gpu1"}},
		{"//*[@id=gpu0]", []string{"gpu0"}},
		{"//*[@class=Hybrid]", []string{"ppe"}},
		{"//*[@quantity=8]", []string{"cpu"}},
		{"//Worker[MAX_COMPUTE_UNITS]", []string{"gpu0", "gpu1"}},
		{"//Worker[NO_SUCH_PROP]", nil},
		{"//Master", []string{"cpu"}},
		{"//Worker[ARCHITECTURE='gpu']", []string{"gpu0", "gpu1"}},
		{`//Worker[ARCHITECTURE="gpu"]`, []string{"gpu0", "gpu1"}},
		{"//Worker[ARCHITECTURE=gpu][MAX_COMPUTE_UNITS=30]", []string{"gpu1"}},
		{"/Worker", nil}, // no top-level workers
		// Union selectors.
		{"//Master, //Worker[ARCHITECTURE=gpu]", []string{"cpu", "gpu0", "gpu1"}},
		{"//Hybrid, //Hybrid", []string{"ppe"}}, // dedup
		{"//Worker[MAX_COMPUTE_UNITS=15], //Worker[MAX_COMPUTE_UNITS=30]", []string{"gpu0", "gpu1"}},
	}
	for _, c := range cases {
		t.Run(c.sel, func(t *testing.T) {
			got, err := Select(pl, c.sel)
			if err != nil {
				t.Fatalf("Select(%q): %v", c.sel, err)
			}
			if !reflect.DeepEqual(ids(got), c.want) && !(len(got) == 0 && len(c.want) == 0) {
				t.Fatalf("Select(%q) = %v; want %v", c.sel, ids(got), c.want)
			}
		})
	}
}

func TestSelectorParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Worker",
		"//",
		"//Gizmo",
		"//Worker[",
		"//Worker[]",
		"//Worker[X='unterminated]",
		"//Worker[X~1]",
		"//Worker[X=1",
		"//Worker[@]",
		"//Worker,",       // empty union branch
		",//Worker",       // empty union branch
		"//Worker, Gizmo", // bad second branch
	}
	for _, s := range bad {
		if _, err := ParseSelector(s); err == nil {
			t.Errorf("ParseSelector(%q) should fail", s)
		}
	}
}

func TestSelectorStringRoundInfo(t *testing.T) {
	sel, err := ParseSelector("//Worker[ARCHITECTURE=gpu]")
	if err != nil {
		t.Fatal(err)
	}
	if sel.String() != "//Worker[ARCHITECTURE=gpu]" {
		t.Fatalf("String() = %q", sel.String())
	}
	steps := sel.Steps()
	if len(steps) != 1 || !steps[0].Descend || steps[0].Class != "Worker" {
		t.Fatalf("Steps = %+v", steps)
	}
	if got := steps[0].Preds[0].Op.String(); got != "=" {
		t.Fatalf("Op.String() = %q", got)
	}
	if (&Selector{}).Steps() != nil {
		t.Fatal("empty selector Steps should be nil")
	}
}

func TestFluentAPI(t *testing.T) {
	pl := fixture(t)
	q := New(pl)
	if got := q.Workers().WithArch("gpu").Count(); got != 2 {
		t.Fatalf("gpu workers = %d", got)
	}
	if got := q.Masters().TotalUnits(); got != 8 {
		t.Fatalf("master units = %d", got)
	}
	if got := q.Hybrids().IDs(); !reflect.DeepEqual(got, []string{"ppe"}) {
		t.Fatalf("hybrids = %v", got)
	}
	if got := q.InGroup("gpuset").IDs(); !reflect.DeepEqual(got, []string{"gpu0", "gpu1"}) {
		t.Fatalf("gpuset = %v", got)
	}
	if got := q.WithProp(core.PropComputeUnits).Count(); got != 2 {
		t.Fatalf("WithProp = %d", got)
	}
	if got := q.WithPropValue(core.PropComputeUnits, "30").First(); got == nil || got.ID != "gpu1" {
		t.Fatalf("WithPropValue First = %v", got)
	}
	if got := New(pl).Workers().WithArch("none").First(); got != nil {
		t.Fatalf("First on empty set = %v", got)
	}
}

func TestControlledBy(t *testing.T) {
	pl := fixture(t)
	got := New(pl).ControlledBy("ppe").IDs()
	if !reflect.DeepEqual(got, []string{"spe0", "spe1"}) {
		t.Fatalf("ControlledBy(ppe) = %v", got)
	}
	all := New(pl).ControlledBy("cpu").IDs()
	if !reflect.DeepEqual(all, []string{"gpu0", "gpu1", "ppe", "spe0", "spe1"}) {
		t.Fatalf("ControlledBy(cpu) = %v", all)
	}
	if n := New(pl).ControlledBy("ghost").Count(); n != 0 {
		t.Fatalf("ControlledBy(ghost) = %d", n)
	}
}

func TestQSelectComposition(t *testing.T) {
	pl := fixture(t)
	q, err := New(pl).InGroup("gpuset").Select("//Worker[MAX_COMPUTE_UNITS>=20]")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.IDs(); !reflect.DeepEqual(got, []string{"gpu1"}) {
		t.Fatalf("composed = %v", got)
	}
	if _, err := New(pl).Select("///"); err == nil {
		t.Fatal("bad selector must propagate error")
	}
}

func TestMustSelectPanics(t *testing.T) {
	pl := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustSelect with bad selector should panic")
		}
	}()
	MustSelect(pl, "///bad")
}

func TestDescribe(t *testing.T) {
	pl := fixture(t)
	s := Describe(MustSelect(pl, "//Worker[ARCHITECTURE=gpu]"))
	if !strings.Contains(s, "gpu0") || !strings.Contains(s, "gpu1") {
		t.Fatalf("Describe = %q", s)
	}
}

func TestCompareStringFallback(t *testing.T) {
	pl, err := core.NewBuilder("s").
		Master("m", core.WithProp("LABEL", "alpha")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := MustSelect(pl, "//*[LABEL>aaa]")
	if len(got) != 1 {
		t.Fatalf("string compare: %v", ids(got))
	}
	if got := MustSelect(pl, "//*[LABEL<aaa]"); len(got) != 0 {
		t.Fatalf("string compare lt: %v", ids(got))
	}
}

// Property-based: //* matches exactly the full PU set for arbitrary
// generated hierarchies, and //Worker ∪ //Hybrid ∪ //Master is a partition.
func TestQuickSelectorPartition(t *testing.T) {
	f := func(w, h uint8) bool {
		b := core.NewBuilder("q").Master("m", core.Arch("x86"))
		for i := 0; i < int(h%3); i++ {
			b.Hybrid("", core.Arch("ppc"))
			b.Worker("", core.Arch("spe"))
			b.End()
		}
		for i := 0; i < int(w%4); i++ {
			b.Worker("", core.Arch("gpu"))
		}
		pl, err := b.Build()
		if err != nil {
			return false
		}
		all := MustSelect(pl, "//*")
		if len(all) != len(pl.AllPUs()) {
			return false
		}
		n := len(MustSelect(pl, "//Master")) + len(MustSelect(pl, "//Hybrid")) + len(MustSelect(pl, "//Worker"))
		return n == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: every terminal (All, IDs, First) must materialise in document
// order — the order Platform.Walk visits — no matter how the set was built
// or how map-iteration scrambled it along the way. The registry caches
// compiled results keyed on the filter expression, so a nondeterministic
// order would poison the cache with an arbitrary permutation.
func TestWalkOrderingStable(t *testing.T) {
	pl := fixture(t)
	var walkOrder []string
	pl.Walk(func(pu, _ *core.PU) bool {
		walkOrder = append(walkOrder, pu.ID)
		return true
	})
	if !reflect.DeepEqual(walkOrder, []string{"cpu", "gpu0", "gpu1", "ppe", "spe0", "spe1"}) {
		t.Fatalf("walk order changed: %v", walkOrder)
	}
	q := New(pl)
	if !reflect.DeepEqual(q.IDs(), walkOrder) {
		t.Fatalf("New(pl).IDs() = %v; want walk order %v", q.IDs(), walkOrder)
	}
	// Selector evaluation goes through map-keyed union/dedup internally;
	// results must still come back in document order, repeatably.
	for i := 0; i < 20; i++ {
		got, err := q.Select("//Worker, //Hybrid, /Master")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.IDs(), walkOrder) {
			t.Fatalf("iteration %d: %v; want %v", i, got.IDs(), walkOrder)
		}
	}
	// Filters preserve relative document order too.
	workers := q.Workers()
	if !reflect.DeepEqual(workers.IDs(), []string{"gpu0", "gpu1", "spe0", "spe1"}) {
		t.Fatalf("workers = %v", workers.IDs())
	}
	if workers.First().ID != "gpu0" {
		t.Fatalf("First = %v", workers.First())
	}
	if workers.Head(2).Count() != 2 {
		t.Fatalf("Head(2).Count = %d", workers.Head(2).Count())
	}
}

// Two goroutines chain filters over one shared Q root: derivation must not
// mutate shared state, so the registry can hand the same compiled root to
// every concurrent HTTP request. Run under -race via the Makefile race
// subset.
func TestConcurrentReadersShareRoot(t *testing.T) {
	pl := fixture(t)
	root := New(pl)
	var wg sync.WaitGroup
	errs := make(chan string, 2)
	reader := func(chain func() []string, want []string) {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if got := chain(); !reflect.DeepEqual(got, want) {
				errs <- fmt.Sprintf("got %v; want %v", got, want)
				return
			}
		}
	}
	wg.Add(2)
	go reader(func() []string {
		return root.Workers().WithArch("gpu").IDs()
	}, []string{"gpu0", "gpu1"})
	go reader(func() []string {
		q, err := root.InGroup("gpuset").Select("//*[MAX_COMPUTE_UNITS>=15]")
		if err != nil {
			return []string{err.Error()}
		}
		return q.IDs()
	}, []string{"gpu0", "gpu1"})
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// The shared root itself is untouched.
	if root.Count() != 6 {
		t.Fatalf("root mutated: count = %d", root.Count())
	}
}
