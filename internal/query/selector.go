// Package query implements the query API over PDL platform descriptions
// referred to in the paper's case study: a compact path-selector language
// (reminiscent of XPath, specialised to the machine model) plus a fluent
// programmatic interface.
//
// Selector examples:
//
//	//Worker                          every Worker in the platform
//	//Worker[ARCHITECTURE=gpu]        every gpu Worker
//	/Master/Worker                    Workers directly controlled by a Master
//	//Hybrid/Worker[ARCHITECTURE=spe] SPEs under Hybrids
//	//*[group=gpuset]                 every PU in logic group "gpuset"
//	//Worker[MAX_COMPUTE_UNITS>=15]   numeric property comparison
//	//*[@id=gpu0]                     attribute match (@id, @name, @class, @quantity)
//	//Worker[GLOBAL_MEM_SIZE]         property-existence test
//
// The selector grammar:
//
//	selector := path ("," path)*
//	path     := step+
//	step     := ("/" | "//") class pred*
//	class    := "Master" | "Hybrid" | "Worker" | "*"
//	pred     := "[" key (op value)? "]"
//	key      := "@"ident | "group" | ident
//	op       := "=" | "!=" | "<" | "<=" | ">" | ">="
//
// "/" selects direct children of the current node set (the virtual root's
// children are the platform's Masters); "//" selects all descendants. A
// comma unions independent paths: "//Master, //Worker[ARCHITECTURE=gpu]"
// matches every Master plus the gpu Workers, deduplicated in document
// order.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Op is a predicate comparison operator.
type Op int

// Comparison operators in predicate expressions.
const (
	OpExists Op = iota // bare key: property present
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpExists:
		return ""
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Pred is one [key op value] predicate.
type Pred struct {
	Key   string // property name, "group", or "@attr"
	Op    Op
	Value string
}

// Step is one /Class[pred]* component of a selector.
type Step struct {
	Descend bool // true for "//", false for "/"
	Class   string
	Preds   []Pred
}

// Selector is a parsed selector: one or more alternative paths whose
// matches are unioned.
type Selector struct {
	Paths [][]Step
	src   string
}

// Steps returns the steps of the first path, preserving the original
// single-path API for the common case.
func (s *Selector) Steps() []Step {
	if len(s.Paths) == 0 {
		return nil
	}
	return s.Paths[0]
}

// String returns the original selector source.
func (s *Selector) String() string { return s.src }

// ParseSelector parses a selector expression.
func ParseSelector(src string) (*Selector, error) {
	sel := &Selector{src: src}
	depth := 0
	start := 0
	var parts []string
	for i := 0; i <= len(src); i++ {
		if i == len(src) {
			parts = append(parts, src[start:])
			break
		}
		switch src[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, src[start:i])
				start = i + 1
			}
		}
	}
	for _, part := range parts {
		p := &selParser{src: part}
		steps, err := p.parse()
		if err != nil {
			return nil, fmt.Errorf("query: parse %q: %w", src, err)
		}
		sel.Paths = append(sel.Paths, steps)
	}
	return sel, nil
}

type selParser struct {
	src string
	pos int
}

func (p *selParser) parse() ([]Step, error) {
	var steps []Step
	p.skipSpace()
	for p.pos < len(p.src) {
		step, err := p.step()
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
		p.skipSpace()
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("empty selector")
	}
	return steps, nil
}

func (p *selParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *selParser) step() (Step, error) {
	var st Step
	if !strings.HasPrefix(p.src[p.pos:], "/") {
		return st, fmt.Errorf("position %d: step must start with / or //", p.pos)
	}
	p.pos++
	if p.pos < len(p.src) && p.src[p.pos] == '/' {
		st.Descend = true
		p.pos++
	}
	start := p.pos
	for p.pos < len(p.src) && (isIdentChar(p.src[p.pos]) || p.src[p.pos] == '*') {
		p.pos++
	}
	st.Class = p.src[start:p.pos]
	switch st.Class {
	case "Master", "Hybrid", "Worker", "*":
	case "":
		return st, fmt.Errorf("position %d: missing class name (Master/Hybrid/Worker/*)", p.pos)
	default:
		return st, fmt.Errorf("unknown class %q", st.Class)
	}
	for p.pos < len(p.src) && p.src[p.pos] == '[' {
		pred, err := p.pred()
		if err != nil {
			return st, err
		}
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-'
}

func (p *selParser) pred() (Pred, error) {
	var pr Pred
	p.pos++ // consume '['
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		p.pos++
	}
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	pr.Key = p.src[start:p.pos]
	if pr.Key == "" || pr.Key == "@" {
		return pr, fmt.Errorf("position %d: empty predicate key", start)
	}
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		pr.Op = OpExists
		return pr, nil
	}
	// operator
	ops := []struct {
		tok string
		op  Op
	}{{"!=", OpNe}, {"<=", OpLe}, {">=", OpGe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}}
	matched := false
	for _, o := range ops {
		if strings.HasPrefix(p.src[p.pos:], o.tok) {
			pr.Op = o.op
			p.pos += len(o.tok)
			matched = true
			break
		}
	}
	if !matched {
		return pr, fmt.Errorf("position %d: expected operator or ]", p.pos)
	}
	// value: quoted or bare until ']'
	if p.pos < len(p.src) && (p.src[p.pos] == '\'' || p.src[p.pos] == '"') {
		quote := p.src[p.pos]
		p.pos++
		vstart := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return pr, fmt.Errorf("unterminated quoted value")
		}
		pr.Value = p.src[vstart:p.pos]
		p.pos++
	} else {
		vstart := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != ']' {
			p.pos++
		}
		pr.Value = strings.TrimSpace(p.src[vstart:p.pos])
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return pr, fmt.Errorf("missing ] in predicate")
	}
	p.pos++
	return pr, nil
}

// matches reports whether the predicate holds for the PU.
func (pr Pred) matches(pu *core.PU) bool {
	var have string
	var present bool
	switch {
	case strings.HasPrefix(pr.Key, "@"):
		switch pr.Key {
		case "@id":
			have, present = pu.ID, true
		case "@name":
			have, present = pu.Name, true
		case "@class":
			have, present = pu.Class.String(), true
		case "@quantity":
			have, present = strconv.Itoa(pu.EffectiveQuantity()), true
		default:
			return false
		}
	case pr.Key == "group":
		if pr.Op == OpExists {
			return len(pu.Groups) > 0
		}
		// group supports = and != only; ordered comparison is meaningless.
		in := pu.InGroup(pr.Value)
		if pr.Op == OpEq {
			return in
		}
		if pr.Op == OpNe {
			return !in
		}
		return false
	default:
		p, ok := pu.Descriptor.Get(pr.Key)
		have, present = p.Value, ok
	}
	if pr.Op == OpExists {
		return present
	}
	if !present {
		return false
	}
	return compare(have, pr.Op, pr.Value)
}

// compare applies op using numeric comparison when both sides parse as
// floats, falling back to string comparison otherwise.
func compare(have string, op Op, want string) bool {
	hf, herr := strconv.ParseFloat(have, 64)
	wf, werr := strconv.ParseFloat(want, 64)
	if herr == nil && werr == nil {
		switch op {
		case OpEq:
			return hf == wf
		case OpNe:
			return hf != wf
		case OpLt:
			return hf < wf
		case OpLe:
			return hf <= wf
		case OpGt:
			return hf > wf
		case OpGe:
			return hf >= wf
		}
	}
	switch op {
	case OpEq:
		return have == want
	case OpNe:
		return have != want
	case OpLt:
		return have < want
	case OpLe:
		return have <= want
	case OpGt:
		return have > want
	case OpGe:
		return have >= want
	}
	return false
}
