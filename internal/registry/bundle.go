// Export/import bundles: a tar of the store's durable state (one fresh
// compacted snapshot — which embeds every platform's canonical XML, its
// revision, the store version, and the full perfmodel sample history — plus
// a human-readable manifest). Bundles move registry state between air-gapped
// environments: `pdlserved export` on the source, carry the tar, `pdlserved
// import` into an empty data dir on the target. Because the snapshot holds
// canonical documents and recovery recomputes content-hash ETags from them,
// an export → wipe → import round trip serves bit-identical ETags.
package registry

import (
	"archive/tar"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// bundleSnapshotName is the snapshot's fixed name inside a bundle; import
// materialises it as epoch 1 of the target data dir.
const bundleSnapshotName = "snapshot-0000000000000001.snap"

// BundleManifest describes a bundle for humans and for import-time sanity
// checks.
type BundleManifest struct {
	Format       string    `json:"format"` // "pdlserved-bundle/1"
	CreatedAt    time.Time `json:"created_at"`
	StoreVersion uint64    `json:"store_version"`
	Platforms    int       `json:"platforms"`
	ETags        []string  `json:"etags"` // sorted with names: "name etag"
}

const bundleFormat = "pdlserved-bundle/1"

// WriteBundle exports the current store as a tar stream. The source data
// dir is not modified: the snapshot is built in memory from the live
// registry and perf state.
func (p *Persistence) WriteBundle(w io.Writer) (BundleManifest, error) {
	version, pls := p.reg.exportState()
	st := snapshotState{Seq: 1, SavedAt: time.Now(), StoreVersion: version, Platforms: pls}
	if p.perf != nil {
		pm, err := p.perf.SnapshotPerf()
		if err != nil {
			return BundleManifest{}, fmt.Errorf("registry: bundle perfmodels: %w", err)
		}
		st.Perfmodels = pm
	}
	man := BundleManifest{
		Format:       bundleFormat,
		CreatedAt:    st.SavedAt,
		StoreVersion: version,
		Platforms:    len(pls),
	}
	for _, e := range p.reg.List() {
		man.ETags = append(man.ETags, e.Name+" "+e.ETag)
	}

	// Render the snapshot through the same writer the data dir uses, via a
	// temp file, so the bundled bytes are exactly what recovery verifies.
	tmpDir, err := os.MkdirTemp("", "pdlserved-export-*")
	if err != nil {
		return man, err
	}
	defer os.RemoveAll(tmpDir)
	snapPath := filepath.Join(tmpDir, bundleSnapshotName)
	if err := writeSnapshot(snapPath, st); err != nil {
		return man, err
	}
	snapBytes, err := os.ReadFile(snapPath)
	if err != nil {
		return man, err
	}
	manBytes, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return man, err
	}

	tw := tar.NewWriter(w)
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"MANIFEST.json", manBytes},
		{bundleSnapshotName, snapBytes},
	} {
		hdr := &tar.Header{
			Name:    f.name,
			Mode:    0o644,
			Size:    int64(len(f.data)),
			ModTime: st.SavedAt,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return man, err
		}
		if _, err := tw.Write(f.data); err != nil {
			return man, err
		}
	}
	return man, tw.Close()
}

// ImportBundle reads a bundle stream into dir, which must be empty (or not
// yet exist): import never merges, it seeds a fresh store. The snapshot is
// verified (framing, CRC, every document re-parsed) before the function
// returns, so a corrupt bundle leaves dir empty rather than poisoned.
func ImportBundle(r io.Reader, dir string) (BundleManifest, error) {
	var man BundleManifest
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return man, err
	}
	if len(ents) > 0 {
		return man, fmt.Errorf("registry: import target %s is not empty (%d entries)", dir, len(ents))
	}

	var snapData []byte
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return man, fmt.Errorf("registry: read bundle: %w", err)
		}
		// Only the two well-known flat names are accepted: no paths, so no
		// traversal, and no stray files landing in the data dir.
		switch hdr.Name {
		case "MANIFEST.json":
			data, err := io.ReadAll(io.LimitReader(tr, 1<<20))
			if err != nil {
				return man, err
			}
			if err := json.Unmarshal(data, &man); err != nil {
				return man, fmt.Errorf("registry: bundle manifest: %w", err)
			}
			if man.Format != bundleFormat {
				return man, fmt.Errorf("registry: unsupported bundle format %q", man.Format)
			}
		case bundleSnapshotName:
			data, err := io.ReadAll(io.LimitReader(tr, maxSnapshotLen))
			if err != nil {
				return man, err
			}
			snapData = data
		default:
			return man, fmt.Errorf("registry: unexpected bundle member %q", hdr.Name)
		}
	}
	if snapData == nil {
		return man, errors.New("registry: bundle has no snapshot")
	}

	snapPath := filepath.Join(dir, bundleSnapshotName)
	if err := os.WriteFile(snapPath, snapData, 0o644); err != nil {
		return man, err
	}
	// Verify before declaring success: framing + CRC + a full re-parse of
	// every platform into a throwaway registry.
	st, err := readSnapshot(snapPath)
	if err == nil {
		err = New().restoreState(st.StoreVersion, st.Platforms)
	}
	if err != nil {
		os.Remove(snapPath)
		return man, fmt.Errorf("registry: bundle snapshot failed verification: %w", err)
	}
	return man, syncDir(snapPath)
}
