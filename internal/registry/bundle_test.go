package registry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/predict"
)

// TestBundleRoundTripBitIdentical drives the acceptance criterion:
// export → wipe → import reproduces registry state bit-identically — same
// ETags, same revisions, same store version, same perfmodel samples — this
// time through the real predict.Tuner rather than the harness fake.
func TestBundleRoundTripBitIdentical(t *testing.T) {
	srcDir := t.TempDir()
	reg := New()
	tuner := predict.NewTuner()
	p, err := OpenPersistence(srcDir, reg, tuner, PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	// Build state: a real platform (so patterns match), an overwrite (so a
	// revision > 1 exists), and observations (so perfmodels are non-empty).
	gtx := readTestPlatform(t, "gtx480")
	for _, step := range []struct {
		name string
		xml  []byte
	}{
		{"gtx480", gtx},
		{"edited", platformXML("edited", 1)},
		{"edited", platformXML("edited", 2)},
	} {
		prepared, err := reg.Prepare(step.name, step.xml)
		if err != nil {
			t.Fatal(err)
		}
		if cur, ok := reg.Get(step.name); ok && cur.ETag == prepared.ETag() {
			continue
		}
		if err := p.LogPut(step.name, prepared.XML(), func() { reg.CommitPrepared(prepared) }); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := reg.Get("gtx480")
	for i := 0; i < 3; i++ {
		size, secs := 256*float64(i+1), 0.002*float64(i+1)
		err := p.LogObserve("gtx480", "dgemm", size, secs, func() {
			if err := tuner.Observe(e.Platform, "dgemm", size, secs); err != nil {
				t.Fatal(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	srcImage := imageOf(t, reg, tuner)

	var bundle bytes.Buffer
	man, err := p.WriteBundle(&bundle)
	if err != nil {
		t.Fatal(err)
	}
	if man.Platforms != 2 || man.StoreVersion != reg.Version() {
		t.Fatalf("manifest = %+v", man)
	}
	p.Close()

	// "Wipe": a brand-new empty environment.
	dstDir := t.TempDir()
	if _, err := ImportBundle(bytes.NewReader(bundle.Bytes()), dstDir); err != nil {
		t.Fatal(err)
	}
	reg2 := New()
	tuner2 := predict.NewTuner()
	p2, err := OpenPersistence(dstDir, reg2, tuner2, PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	if got := imageOf(t, reg2, tuner2); !got.equal(srcImage) {
		t.Fatalf("import diverged:\n got %+v\nwant %+v", got, srcImage)
	}
	// XML served after import must be byte-identical too (same canonical
	// form behind the same ETag).
	g1, _ := reg.Get("edited")
	g2, ok := reg2.Get("edited")
	if !ok || !bytes.Equal(g1.XML, g2.XML) || g1.Revision != g2.Revision {
		t.Fatal("imported canonical XML or revision differs")
	}
}

func TestImportRefusesNonEmptyDirAndGarbage(t *testing.T) {
	srcDir := t.TempDir()
	reg := New()
	p, err := OpenPersistence(srcDir, reg, nil, PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var bundle bytes.Buffer
	if _, err := p.WriteBundle(&bundle); err != nil {
		t.Fatal(err)
	}

	// Non-empty target refused: srcDir already holds a journal.
	if _, err := ImportBundle(bytes.NewReader(bundle.Bytes()), srcDir); err == nil || !strings.Contains(err.Error(), "not empty") {
		t.Fatalf("import into non-empty dir err = %v", err)
	}
	// Garbage stream refused, leaving the target empty.
	dst := t.TempDir()
	if _, err := ImportBundle(strings.NewReader("not a tar"), dst); err == nil {
		t.Fatal("garbage bundle accepted")
	}
}
