package registry

import (
	"container/list"
	"strings"
	"sync"
)

// Cache is a concurrency-safe LRU for compiled query results. Keys embed the
// platform name and content hash (see queryKey), so a platform update can
// never serve a stale result; InvalidatePlatform additionally drops the dead
// entries eagerly instead of waiting for LRU aging to push them out.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element; element value is *cacheEntry

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key   string
	value any
}

// NewCache returns an LRU holding at most capacity entries. A capacity of
// zero or below disables caching entirely (every Get misses, Put is a no-op)
// — useful for benchmarking the uncached path.
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores value under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, value any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, value: value})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// InvalidatePlatform drops every entry belonging to the named platform
// (keys are prefixed with name + "\x00" by queryKey). Returns the number of
// entries dropped.
func (c *Cache) InvalidatePlatform(name string) int {
	prefix := name + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ce := el.Value.(*cacheEntry); strings.HasPrefix(ce.key, prefix) {
			c.ll.Remove(el)
			delete(c.items, ce.key)
			n++
		}
		el = next
	}
	c.invalidations += uint64(n)
	return n
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
}

// HitRatio returns hits / (hits+misses), or 0 with no lookups yet.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Capacity:      c.cap,
	}
}
