package registry

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the journal record decoder
// (framing + mutation payload). The contract under fuzz: never panic,
// never allocate based on an untrusted length prefix, and either fail
// cleanly or decode a payload that re-encodes to the identical framing.
// Seed corpus lives in testdata/fuzz/FuzzDecodeRecord (run in every plain
// `go test`; CI additionally runs -fuzz for a time-boxed exploration).
func FuzzDecodeRecord(f *testing.F) {
	// Seeds: one valid record of each op, a truncated tail, a corrupted
	// CRC, an oversized length claim, and junk.
	putP, _ := encodeMutation(opPut, putRecord{Name: "plat", XML: []byte("<Platform name=\"p\"/>")})
	delP, _ := encodeMutation(opDelete, deleteRecord{Name: "plat"})
	obsP, _ := encodeMutation(opObserve, observeRecord{Platform: "plat", Codelet: "dgemm", Size: 128, Seconds: 0.25})
	for _, payload := range [][]byte{putP, delP, obsP} {
		rec, err := encodeRecord(payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		f.Add(rec[:len(rec)-3]) // torn tail
		bad := append([]byte(nil), rec...)
		bad[len(bad)-1] ^= 0x80 // CRC mismatch
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := decodeRecord(data)
		if err != nil {
			// Failed decodes must consume nothing.
			if len(rest) != len(data) {
				t.Fatalf("failed decode consumed %d bytes", len(data)-len(rest))
			}
			return
		}
		if len(payload) > maxRecordLen {
			t.Fatalf("decoded payload of %d bytes exceeds cap", len(payload))
		}
		if consumed := len(data) - len(rest); consumed != recordHeaderLen+len(payload) {
			t.Fatalf("consumed %d bytes for a %d-byte payload", consumed, len(payload))
		}
		// Round-trip: re-encoding the decoded payload must reproduce the
		// consumed bytes exactly.
		rec, err := encodeRecord(payload)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(rec, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoded record differs from consumed bytes")
		}
		// The mutation decoder must also be panic-free on whatever framing
		// let through; errors are fine.
		if m, err := decodeMutation(payload); err == nil {
			switch m.Op {
			case opPut:
				if m.Put == nil || m.Put.Name == "" {
					t.Fatal("valid put decode without name")
				}
			case opDelete:
				if m.Delete == nil || m.Delete.Name == "" {
					t.Fatal("valid delete decode without name")
				}
			case opObserve:
				if m.Observe == nil || m.Observe.Size <= 0 || m.Observe.Seconds <= 0 {
					t.Fatal("valid observe decode with non-positive sample")
				}
			default:
				t.Fatalf("decodeMutation accepted unknown op %d", m.Op)
			}
		}
	})
}
