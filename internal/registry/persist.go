// Persistence orchestrates the registry's durability layer: the write-ahead
// journal (wal.go), periodic compacted snapshots (snapshot.go), recovery on
// open, and the read-only degradation the HTTP layer surfaces as
// 503 + Retry-After.
//
// Data-dir layout — files are named by epoch sequence number:
//
//	snapshot-%016d.snap   compacted store image (seq = epoch it begins)
//	journal-%016d.wal     mutations since snapshot of the same seq
//
// A compaction writes snapshot S+1 (containing everything committed so
// far), switches appends to journal S+1, and then retires files older than
// snapshot S — so the directory always holds the current epoch plus one
// full fallback epoch. Recovery loads the newest verifiable snapshot and
// replays every journal with seq >= that snapshot, in order; if the newest
// snapshot is corrupt it falls back to the previous one, whose journal
// still covers the gap.
package registry

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ErrReadOnly is returned for mutations after a journal write has failed:
// the in-memory store is still serving reads, but nothing further can be
// made durable, so nothing further is accepted.
var ErrReadOnly = errors.New("registry: persistence is read-only after a journal write failure")

// PerfState is the perfmodel side of durability: the predict.Tuner
// satisfies it. Snapshots embed SnapshotPerf's bytes verbatim; recovery
// hands them back to RestorePerf and replays journaled observations through
// Observe.
type PerfState interface {
	SnapshotPerf() ([]byte, error)
	RestorePerf(data []byte) error
	Observe(pl *core.Platform, codelet string, size, seconds float64) error
}

// PersistOptions tunes the durability layer.
type PersistOptions struct {
	// Fsync syncs the journal file on every committed mutation (the
	// durable default). Disabling trades crash safety of the last few
	// records for latency — the OS still flushes eventually.
	Fsync bool

	// SnapshotEvery compacts after this many journal records; 0 disables
	// automatic compaction (Compact can still be called explicitly).
	SnapshotEvery int

	// Logf receives recovery and degradation notices; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// RecoveryInfo describes what open found and did.
type RecoveryInfo struct {
	SnapshotSeq       uint64 // snapshot epoch recovery started from (0 = none)
	SnapshotLoaded    bool
	SnapshotFallbacks int // corrupt snapshots skipped over
	ReplayedRecords   int // journal records applied
	SkippedRecords    int // journal records that failed to re-apply (logged)
	TornTail          bool
	TruncatedBytes    int64 // bytes discarded from the torn tail
}

// PersistStats is the atomic counter block behind the pdlserved_wal_*
// metric families.
type PersistStats struct {
	Appends      uint64
	AppendErrors uint64
	Replayed     uint64
	TornTails    uint64
	Snapshots    uint64 // compactions performed by this process
	SkippedRecs  uint64
	JournalBytes int64
	JournalRecs  int
	SnapshotAt   time.Time // when the newest snapshot was written
	ReadOnly     bool
}

// PersistHealth is the /healthz "journal" block.
type PersistHealth struct {
	Mode            string  `json:"mode"` // always "durable"
	ReadOnly        bool    `json:"read_only"`
	Seq             uint64  `json:"seq"`
	JournalRecords  int     `json:"journal_records"`
	JournalBytes    int64   `json:"journal_bytes"`
	SnapshotAgeSecs float64 `json:"snapshot_age_seconds"`
	ReplayedRecords int     `json:"replayed_records"`
	TornTail        bool    `json:"torn_tail_recovered"`
	LastError       string  `json:"last_error,omitempty"`
}

// Persistence binds a Registry (and optionally a PerfState) to a data
// directory. All mutations must flow through LogPut/LogDelete/LogObserve,
// which serialise journal append + in-memory commit so the journal order is
// exactly the commit order.
type Persistence struct {
	dir  string
	reg  *Registry
	perf PerfState
	opts PersistOptions

	mu           sync.Mutex // guards journal, seq, compaction
	journal      *journal
	seq          uint64 // current epoch (journal/snapshot sequence)
	sinceCompact int    // records appended since the last snapshot

	readOnly atomic.Bool
	lastErr  atomic.Value // string

	recovery RecoveryInfo

	appends      atomic.Uint64
	appendErrors atomic.Uint64
	tornTails    atomic.Uint64
	snapshots    atomic.Uint64
	skipped      atomic.Uint64
	snapshotAt   atomic.Int64 // unix nanos; 0 = no snapshot yet

	fsyncObserve atomic.Value // func(time.Duration)
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%016d.snap", seq))
}

func journalPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%016d.wal", seq))
}

// parseSeq extracts the sequence number from a data-dir file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenPersistence recovers the store from dir (creating it if needed) and
// returns the persistence handle with the journal open for appending. The
// registry and perf state are restored in place; both should be empty.
//
// Recovery state machine:
//  1. Load the newest snapshot that verifies (magic, length, CRC, parse).
//     Corrupt candidates are logged and skipped — fallback to the previous.
//  2. Replay every journal with seq >= the loaded snapshot, ascending.
//  3. A torn tail in a journal ends its replay; the active journal is
//     truncated to the verified prefix before appends resume.
//  4. If step 1 skipped a corrupt snapshot, a fresh compaction runs
//     immediately so the next restart has a verifiable snapshot again.
func OpenPersistence(dir string, reg *Registry, perf PerfState, opts PersistOptions) (*Persistence, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := &Persistence{dir: dir, reg: reg, perf: perf, opts: opts}
	p.lastErr.Store("")
	if err := p.recover(); err != nil {
		return nil, err
	}
	if p.recovery.SnapshotFallbacks > 0 {
		// Re-establish a good snapshot right away; failure here is not
		// fatal (the store is consistent), just logged.
		if err := p.Compact(); err != nil {
			p.logf("pdlserved: post-recovery compaction failed: %v", err)
		}
	}
	return p, nil
}

func (p *Persistence) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// listSeqs returns the sorted sequence numbers of data-dir files matching
// prefix/suffix.
func (p *Persistence) listSeqs(prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if s, ok := parseSeq(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// recover implements the open-time state machine described on
// OpenPersistence.
func (p *Persistence) recover() error {
	snaps, err := p.listSeqs("snapshot-", ".snap")
	if err != nil {
		return err
	}
	// 1. Newest verifiable snapshot.
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := readSnapshot(snapshotPath(p.dir, snaps[i]))
		if err == nil {
			err = p.reg.restoreState(st.StoreVersion, st.Platforms)
		}
		if err == nil && p.perf != nil && len(st.Perfmodels) > 0 {
			err = p.perf.RestorePerf(st.Perfmodels)
		}
		if err != nil {
			p.recovery.SnapshotFallbacks++
			p.logf("pdlserved: refusing snapshot seq %d: %v (falling back)", snaps[i], err)
			continue
		}
		base = snaps[i]
		p.recovery.SnapshotLoaded = true
		p.recovery.SnapshotSeq = base
		p.snapshotAt.Store(st.SavedAt.UnixNano())
		break
	}

	// 2. Replay journals seq >= base, ascending.
	journals, err := p.listSeqs("journal-", ".wal")
	if err != nil {
		return err
	}
	var lastSeq uint64 = base
	var lastRes replayResult
	for _, seq := range journals {
		if seq < base {
			continue
		}
		res, err := replayJournal(journalPath(p.dir, seq), p.applyMutation)
		if err != nil {
			return fmt.Errorf("registry: replay journal seq %d: %w", seq, err)
		}
		p.recovery.ReplayedRecords += res.Records
		if res.Torn {
			p.recovery.TornTail = true
			p.tornTails.Add(1)
			fi, statErr := os.Stat(journalPath(p.dir, seq))
			if statErr == nil {
				p.recovery.TruncatedBytes += fi.Size() - res.GoodBytes
			}
			p.logf("pdlserved: journal seq %d has a torn tail after %d record(s); truncating to %d bytes",
				seq, res.Records, res.GoodBytes)
		}
		if seq >= lastSeq {
			lastSeq, lastRes = seq, res
		}
	}

	// 3. Open the active journal (highest epoch seen), truncating any torn
	// tail to the verified prefix first.
	if lastRes.Torn {
		if err := os.Truncate(journalPath(p.dir, lastSeq), lastRes.GoodBytes); err != nil {
			return fmt.Errorf("registry: truncate torn journal: %w", err)
		}
	}
	j, err := openJournal(journalPath(p.dir, lastSeq), lastRes.GoodBytes, p.opts.Fsync)
	if err != nil {
		return err
	}
	j.records = lastRes.Records
	j.fsyncObserve = p.observeFsync
	p.journal = j
	p.seq = lastSeq
	p.sinceCompact = lastRes.Records
	return nil
}

// applyMutation re-applies one journaled mutation during replay. Apply
// errors are tolerated: the record is counted, logged and skipped, because
// a record that failed to apply at commit time (e.g. an observation whose
// platform was later deleted mid-history cannot happen, but a skew between
// binary versions can) must not brick the store.
func (p *Persistence) applyMutation(m mutation) error {
	var err error
	switch m.Op {
	case opPut:
		_, _, err = p.reg.Put(m.Put.Name, m.Put.XML)
	case opDelete:
		p.reg.Delete(m.Delete.Name)
	case opObserve:
		if p.perf == nil {
			err = errors.New("no perfmodel state attached")
			break
		}
		e, ok := p.reg.Get(m.Observe.Platform)
		if !ok {
			err = fmt.Errorf("platform %q not in store at this point", m.Observe.Platform)
			break
		}
		err = p.perf.Observe(e.Platform, m.Observe.Codelet, m.Observe.Size, m.Observe.Seconds)
	}
	if err != nil {
		p.recovery.SkippedRecords++
		p.skipped.Add(1)
		p.logf("pdlserved: skipping unreplayable journal record (op %d): %v", m.Op, err)
	}
	return nil
}

// observeFsync forwards fsync durations to the registered observer.
func (p *Persistence) observeFsync(d time.Duration) {
	if fn, ok := p.fsyncObserve.Load().(func(time.Duration)); ok && fn != nil {
		fn(d)
	}
}

// SetFsyncObserver wires a latency observer (the server's fsync histogram).
func (p *Persistence) SetFsyncObserver(fn func(time.Duration)) {
	p.fsyncObserve.Store(fn)
}

// commit appends one journal record and, once it is durable, runs the
// in-memory commit under the same lock — journal order is commit order.
func (p *Persistence) commit(op byte, body any, apply func()) error {
	if p.readOnly.Load() {
		return ErrReadOnly
	}
	payload, err := encodeMutation(op, body)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly.Load() {
		return ErrReadOnly
	}
	if p.journal == nil {
		return fmt.Errorf("%w: persistence is closed", ErrReadOnly)
	}
	if err := p.journal.append(payload); err != nil {
		p.appendErrors.Add(1)
		p.degrade(err)
		return fmt.Errorf("%w: %v", ErrReadOnly, err)
	}
	p.appends.Add(1)
	apply()
	p.sinceCompact++
	if p.opts.SnapshotEvery > 0 && p.sinceCompact >= p.opts.SnapshotEvery {
		if err := p.compactLocked(); err != nil {
			// Compaction failure is not a commit failure: the journal holds
			// everything. Log and keep going unless the journal itself broke.
			p.logf("pdlserved: automatic compaction failed: %v", err)
		}
	}
	return nil
}

// degrade flips the store to read-only. Caller holds mu (or is in recover).
func (p *Persistence) degrade(err error) {
	p.lastErr.Store(err.Error())
	if p.readOnly.CompareAndSwap(false, true) {
		p.logf("pdlserved: JOURNAL WRITE FAILED, degrading to read-only: %v", err)
	}
}

// LogPut journals a committed platform upload, then runs apply to publish
// it. The canonical XML (not the raw upload) is journaled so replay
// reproduces the identical ETag.
func (p *Persistence) LogPut(name string, canonicalXML []byte, apply func()) error {
	return p.commit(opPut, putRecord{Name: name, XML: canonicalXML}, apply)
}

// LogDelete journals a platform removal, then runs apply.
func (p *Persistence) LogDelete(name string, apply func()) error {
	return p.commit(opDelete, deleteRecord{Name: name}, apply)
}

// LogObserve journals a perfmodel observation, then runs apply.
func (p *Persistence) LogObserve(platform, codelet string, size, seconds float64, apply func()) error {
	return p.commit(opObserve, observeRecord{
		Platform: platform, Codelet: codelet, Size: size, Seconds: seconds,
	}, apply)
}

// Compact writes a fresh snapshot of the current store, switches the
// journal to a new epoch, and retires files older than the previous
// snapshot (one full fallback epoch is always retained).
func (p *Persistence) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compactLocked()
}

func (p *Persistence) compactLocked() error {
	newSeq := p.seq + 1
	version, pls := p.reg.exportState()
	st := snapshotState{
		Seq:          newSeq,
		SavedAt:      time.Now(),
		StoreVersion: version,
		Platforms:    pls,
	}
	if p.perf != nil {
		pm, err := p.perf.SnapshotPerf()
		if err != nil {
			return fmt.Errorf("registry: snapshot perfmodels: %w", err)
		}
		st.Perfmodels = pm
	}
	if err := writeSnapshot(snapshotPath(p.dir, newSeq), st); err != nil {
		return fmt.Errorf("registry: write snapshot seq %d: %w", newSeq, err)
	}
	// From here on, new records must land in the new epoch's journal: the
	// old journal is already folded into the snapshot and will not be
	// replayed on top of it.
	j, err := openJournal(journalPath(p.dir, newSeq), 0, p.opts.Fsync)
	if err != nil {
		p.degrade(err)
		return fmt.Errorf("%w: open journal seq %d: %v", ErrReadOnly, newSeq, err)
	}
	j.fsyncObserve = p.observeFsync
	old := p.journal
	prevSnap := p.seq // previous epoch is the fallback we retain
	p.journal = j
	p.seq = newSeq
	p.sinceCompact = 0
	p.snapshots.Add(1)
	p.snapshotAt.Store(st.SavedAt.UnixNano())
	if old != nil {
		old.close()
	}
	p.retire(prevSnap)
	return nil
}

// retire removes snapshots and journals from epochs before keepFrom.
// Best-effort: a failed unlink only wastes disk.
func (p *Persistence) retire(keepFrom uint64) {
	snaps, _ := p.listSeqs("snapshot-", ".snap")
	for _, s := range snaps {
		if s < keepFrom {
			os.Remove(snapshotPath(p.dir, s))
		}
	}
	journals, _ := p.listSeqs("journal-", ".wal")
	for _, s := range journals {
		if s < keepFrom {
			os.Remove(journalPath(p.dir, s))
		}
	}
}

// Sync forces the active journal's written records to stable storage,
// regardless of the per-append fsync policy. pdlserved calls it between
// http.Server.Shutdown (after which no new /observe can arrive) and Close,
// so mutations that were acknowledged under Fsync=false — perfmodel
// observations streamed by workers, typically — are on disk before exit
// rather than riding on the page cache through process death.
func (p *Persistence) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journal == nil {
		return nil
	}
	if err := p.journal.sync(); err != nil {
		p.degrade(err)
		return err
	}
	return nil
}

// Close flushes and closes the journal. The Persistence must not be used
// afterwards.
func (p *Persistence) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journal == nil {
		return nil
	}
	err := p.journal.close()
	p.journal = nil
	return err
}

// ReadOnly reports whether the store has degraded after a journal failure.
func (p *Persistence) ReadOnly() bool { return p.readOnly.Load() }

// Recovery returns what open found and did.
func (p *Persistence) Recovery() RecoveryInfo { return p.recovery }

// Dir returns the data directory.
func (p *Persistence) Dir() string { return p.dir }

// Stats snapshots the durability counters for /metrics.
func (p *Persistence) Stats() PersistStats {
	st := PersistStats{
		Appends:      p.appends.Load(),
		AppendErrors: p.appendErrors.Load(),
		Replayed:     uint64(p.recovery.ReplayedRecords),
		TornTails:    p.tornTails.Load(),
		Snapshots:    p.snapshots.Load(),
		SkippedRecs:  p.skipped.Load(),
		ReadOnly:     p.readOnly.Load(),
	}
	if ns := p.snapshotAt.Load(); ns != 0 {
		st.SnapshotAt = time.Unix(0, ns)
	}
	p.mu.Lock()
	if p.journal != nil {
		st.JournalBytes = p.journal.size
		st.JournalRecs = p.journal.records
	}
	p.mu.Unlock()
	return st
}

// Health renders the /healthz journal block.
func (p *Persistence) Health() PersistHealth {
	st := p.Stats()
	h := PersistHealth{
		Mode:            "durable",
		ReadOnly:        st.ReadOnly,
		JournalRecords:  st.JournalRecs,
		JournalBytes:    st.JournalBytes,
		ReplayedRecords: p.recovery.ReplayedRecords,
		TornTail:        p.recovery.TornTail,
	}
	p.mu.Lock()
	h.Seq = p.seq
	p.mu.Unlock()
	if !st.SnapshotAt.IsZero() {
		h.SnapshotAgeSecs = time.Since(st.SnapshotAt).Seconds()
	}
	if s, ok := p.lastErr.Load().(string); ok && s != "" {
		h.LastError = s
	}
	return h
}

// SimulateJournalFailure closes the journal's file descriptor out from
// under the store, so the next mutation's append (or fsync) fails and the
// store degrades to read-only — a fault-injection hook for recovery drills
// and the degradation tests. The data already in the journal is unharmed.
func (p *Persistence) SimulateJournalFailure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journal != nil && p.journal.f != nil {
		p.journal.f.Close()
	}
}

// JournalSize returns the current journal's committed byte length — the
// crash-recovery harness truncates at offsets derived from it.
func (p *Persistence) JournalSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journal == nil {
		return 0
	}
	return p.journal.size
}

// ActiveJournalPath returns the file currently receiving appends.
func (p *Persistence) ActiveJournalPath() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return journalPath(p.dir, p.seq)
}
