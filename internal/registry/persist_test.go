package registry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fakePerf is a deterministic PerfState for the harness: observations
// accumulate in order and snapshot to canonical JSON, so two stores that
// saw the same committed history serialise to identical bytes.
type fakePerf struct {
	Observations []fakeObs `json:"observations"`
}

type fakeObs struct {
	Platform string  `json:"platform"`
	Codelet  string  `json:"codelet"`
	Size     float64 `json:"size"`
	Seconds  float64 `json:"seconds"`
}

func (f *fakePerf) SnapshotPerf() ([]byte, error) { return json.Marshal(f) }

func (f *fakePerf) RestorePerf(data []byte) error {
	var in fakePerf
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	f.Observations = append(f.Observations, in.Observations...)
	return nil
}

func (f *fakePerf) Observe(pl *core.Platform, codelet string, size, seconds float64) error {
	f.Observations = append(f.Observations, fakeObs{Platform: pl.Name, Codelet: codelet, Size: size, Seconds: seconds})
	return nil
}

// platformXML renders a small, schema-valid PDL document whose content —
// and therefore content-hash ETag — varies with rev.
func platformXML(name string, rev int) []byte {
	return []byte(fmt.Sprintf(`<?xml version="1.0" encoding="UTF-8"?>
<Platform name=%q schemaVersion="1.0">
  <Master id="host" quantity="%d">
    <PUDescriptor>
      <Property fixed="true">
        <name>ARCHITECTURE</name>
        <value>x86</value>
      </Property>
      <Property fixed="true">
        <name>CORES</name>
        <value>%d</value>
      </Property>
    </PUDescriptor>
  </Master>
</Platform>`, name, 1+rev%4, 2+rev))
}

// storeImage captures everything the acceptance criteria compare: per-name
// ETag+revision, the store version, and the perfmodel snapshot bytes.
type storeImage struct {
	Version  uint64
	Entries  map[string]string // name -> etag "@" revision
	PerfJSON string
}

func imageOf(t testing.TB, reg *Registry, perf PerfState) storeImage {
	t.Helper()
	img := storeImage{Version: reg.Version(), Entries: map[string]string{}}
	for _, e := range reg.List() {
		img.Entries[e.Name] = fmt.Sprintf("%s@%d", e.ETag, e.Revision)
	}
	pm, err := perf.SnapshotPerf()
	if err != nil {
		t.Fatal(err)
	}
	img.PerfJSON = string(pm)
	return img
}

func (a storeImage) equal(b storeImage) bool {
	if a.Version != b.Version || a.PerfJSON != b.PerfJSON || len(a.Entries) != len(b.Entries) {
		return false
	}
	for k, v := range a.Entries {
		if b.Entries[k] != v {
			return false
		}
	}
	return true
}

// mutationStep applies one scripted mutation through the durable path.
// Steps cycle through puts (fresh and overwriting), observes and deletes so
// the journal holds every op type; every step appends exactly one record.
func mutationStep(t testing.TB, p *Persistence, reg *Registry, i int) {
	t.Helper()
	put := func(name string) error {
		prepared, perr := reg.Prepare(name, platformXML(name, i))
		if perr != nil {
			t.Fatal(perr)
		}
		return p.LogPut(name, prepared.XML(), func() { reg.CommitPrepared(prepared) })
	}
	var err error
	switch op := i % 5; {
	case op == 2 && reg.Len() > 0: // observe an existing platform
		e := reg.List()[0]
		size, secs := float64(100+i), 0.001*float64(1+i)
		err = p.LogObserve(e.Name, "dgemm", size, secs, func() {
			p.perf.Observe(e.Platform, "dgemm", size, secs)
		})
	case op == 4 && reg.Len() > 0: // delete an existing platform
		name := reg.List()[0].Name
		err = p.LogDelete(name, func() { reg.Delete(name) })
	default:
		err = put(fmt.Sprintf("plat-%d", i%3))
	}
	if err != nil {
		t.Fatalf("step %d: %v", i, err)
	}
}

// openHarness opens a persistence over dir with a fresh registry+fakePerf.
func openHarness(t testing.TB, dir string, opts PersistOptions) (*Persistence, *Registry, *fakePerf) {
	t.Helper()
	reg := New()
	perf := &fakePerf{}
	opts.Logf = t.Logf
	p, err := OpenPersistence(dir, reg, perf, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, reg, perf
}

// copyDir clones the data dir so each truncation experiment starts from
// the same post-crash bytes.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryEveryByteOfLastRecord is the kill-and-restart property
// the issue demands: run a mutation loop, then hard-kill persistence
// mid-write by truncating the journal at EVERY byte boundary of the last
// record. Each truncated store must reopen to exactly the state after the
// previous committed mutation — the torn record is discarded, nothing
// fsync'd before it is lost, and nothing partial leaks through.
func TestCrashRecoveryEveryByteOfLastRecord(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: false})

	const steps = 8
	var sizes []int64       // journal size after each committed step
	var images []storeImage // committed store image after each step
	for i := 0; i < steps; i++ {
		mutationStep(t, p, reg, i)
		sizes = append(sizes, p.JournalSize())
		images = append(images, imageOf(t, reg, perf))
	}
	journalPath := p.ActiveJournalPath()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	prevSize, lastSize := sizes[steps-2], sizes[steps-1]
	if lastSize <= prevSize {
		t.Fatalf("last step appended nothing (sizes %v)", sizes)
	}
	for cut := prevSize; cut <= lastSize; cut++ {
		crashDir := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crashDir, filepath.Base(journalPath)), cut); err != nil {
			t.Fatal(err)
		}
		p2, reg2, perf2 := openHarness(t, crashDir, PersistOptions{Fsync: false})
		want := images[steps-2]
		if cut == lastSize {
			want = images[steps-1]
		} else if cut > prevSize && !p2.Recovery().TornTail {
			t.Errorf("cut=%d: torn tail not reported", cut)
		}
		if got := imageOf(t, reg2, perf2); !got.equal(want) {
			t.Errorf("cut=%d: recovered %+v, want %+v", cut, got, want)
		}
		// The reopened store must keep accepting (and re-journaling) work.
		mutationStep(t, p2, reg2, 0)
		p2.Close()
	}
}

// TestCrashRecoveryRandomOffsets hard-kills at randomized offsets across
// the WHOLE journal: every recovered store must equal some prefix of the
// committed history — never a state that interleaves or invents mutations.
func TestCrashRecoveryRandomOffsets(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: false})

	const steps = 24
	sizes := []int64{0}
	images := []storeImage{imageOf(t, reg, perf)} // index k = after k committed steps
	for i := 0; i < steps; i++ {
		mutationStep(t, p, reg, i)
		sizes = append(sizes, p.JournalSize())
		images = append(images, imageOf(t, reg, perf))
	}
	journalBase := filepath.Base(p.ActiveJournalPath())
	p.Close()

	rng := rand.New(rand.NewSource(42))
	total := sizes[len(sizes)-1]
	for trial := 0; trial < 40; trial++ {
		cut := int64(rng.Intn(int(total + 1)))
		crashDir := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crashDir, journalBase), cut); err != nil {
			t.Fatal(err)
		}
		_, reg2, perf2 := openHarness(t, crashDir, PersistOptions{Fsync: false})
		got := imageOf(t, reg2, perf2)

		// The recovered image must be the committed prefix whose journal
		// fits entirely within the cut — deterministically, the largest k
		// with sizes[k] <= cut.
		k := 0
		for i, s := range sizes {
			if s <= cut {
				k = i
			}
		}
		if !got.equal(images[k]) {
			t.Errorf("cut=%d: recovered store is not the %d-step committed prefix", cut, k)
		}
	}
}

// TestCrashRecoveryWithSnapshots reruns the property with aggressive
// automatic compaction, so recovery exercises snapshot load + short replay
// instead of a full-journal replay.
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: false, SnapshotEvery: 5})

	const steps = 23
	var last storeImage
	for i := 0; i < steps; i++ {
		mutationStep(t, p, reg, i)
		last = imageOf(t, reg, perf)
	}
	p.Close()

	p2, reg2, perf2 := openHarness(t, dir, PersistOptions{Fsync: false})
	if got := imageOf(t, reg2, perf2); !got.equal(last) {
		t.Fatalf("snapshot+journal recovery diverged:\n got %+v\nwant %+v", got, last)
	}
	if p2.Recovery().SnapshotSeq == 0 {
		t.Fatal("recovery did not start from a snapshot")
	}
	p2.Close()
}

// TestCorruptSnapshotFallsBack flips bytes in the newest snapshot: open
// must refuse it, fall back to the previous snapshot, and rebuild the same
// committed state from the longer replay — then immediately write a fresh
// good snapshot.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: false})

	var last storeImage
	for i := 0; i < 12; i++ {
		mutationStep(t, p, reg, i)
		last = imageOf(t, reg, perf)
	}
	// Two manual compactions leave snapshot seq 1 (fallback) and seq 2.
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 16; i++ {
		mutationStep(t, p, reg, i)
		last = imageOf(t, reg, perf)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	// Corrupt the newest snapshot's body.
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots, got %v (%v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, _ := os.ReadFile(newest)
	data[len(data)/2] ^= 0xff
	os.WriteFile(newest, data, 0o644)

	p2, reg2, perf2 := openHarness(t, dir, PersistOptions{Fsync: false})
	if got := imageOf(t, reg2, perf2); !got.equal(last) {
		t.Fatalf("fallback recovery diverged:\n got %+v\nwant %+v", got, last)
	}
	if p2.Recovery().SnapshotFallbacks == 0 {
		t.Fatal("corrupt snapshot was not reported as a fallback")
	}
	// Post-recovery compaction must have replaced the corrupt snapshot.
	st, err := readSnapshot(newestSnapshot(t, dir))
	if err != nil {
		t.Fatalf("post-recovery snapshot unreadable: %v", err)
	}
	if st.StoreVersion != last.Version {
		t.Fatalf("fresh snapshot version %d, want %d", st.StoreVersion, last.Version)
	}
	p2.Close()
}

func newestSnapshot(t testing.TB, dir string) string {
	t.Helper()
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots in %s (%v)", dir, err)
	}
	return snaps[len(snaps)-1]
}

// TestJournalFailureDegradesToReadOnly verifies the degradation contract
// at the persistence layer: after an append failure, mutations return
// ErrReadOnly, nothing half-applied leaks, and reads keep working.
func TestJournalFailureDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: false})
	for i := 0; i < 4; i++ {
		mutationStep(t, p, reg, i)
	}
	before := imageOf(t, reg, perf)

	p.SimulateJournalFailure()
	prepared, err := reg.Prepare("degraded", platformXML("degraded", 1))
	if err != nil {
		t.Fatal(err)
	}
	applied := false
	err = p.LogPut("degraded", prepared.XML(), func() { applied = true })
	if !errorsIsReadOnly(err) {
		t.Fatalf("first failing append err = %v, want journal failure", err)
	}
	if applied {
		t.Fatal("commit callback ran despite journal failure")
	}
	if !p.ReadOnly() {
		t.Fatal("store did not degrade to read-only")
	}
	// Subsequent mutations short-circuit with ErrReadOnly.
	if err := p.LogDelete("plat-0", func() {}); !errorsIsReadOnly(err) {
		t.Fatalf("post-degrade err = %v, want ErrReadOnly", err)
	}
	// Reads are untouched.
	if got := imageOf(t, reg, perf); !got.equal(before) {
		t.Fatal("read path changed after degradation")
	}
	h := p.Health()
	if !h.ReadOnly || h.LastError == "" {
		t.Fatalf("health = %+v, want read_only with last_error", h)
	}
	p.Close()

	// A restart recovers everything committed before the failure and
	// leaves read-only mode behind.
	p2, reg2, perf2 := openHarness(t, dir, PersistOptions{Fsync: false})
	if p2.ReadOnly() {
		t.Fatal("restart still read-only")
	}
	if got := imageOf(t, reg2, perf2); !got.equal(before) {
		t.Fatal("restart after degradation lost committed state")
	}
	p2.Close()
}

func errorsIsReadOnly(err error) bool {
	return err != nil && strings.Contains(err.Error(), "read-only")
}

// TestFsyncdRecoveryIdentical runs the whole loop with fsync enabled (the
// production default) to cover the fsync code path and its observer hook.
func TestFsyncdRecoveryIdentical(t *testing.T) {
	dir := t.TempDir()
	p, reg, perf := openHarness(t, dir, PersistOptions{Fsync: true})
	var syncs int
	p.SetFsyncObserver(func(time.Duration) { syncs++ })
	var last storeImage
	for i := 0; i < 6; i++ {
		mutationStep(t, p, reg, i)
		last = imageOf(t, reg, perf)
	}
	if syncs == 0 {
		t.Fatal("fsync observer never fired")
	}
	p.Close()

	_, reg2, perf2 := openHarness(t, dir, PersistOptions{Fsync: true})
	if got := imageOf(t, reg2, perf2); !got.equal(last) {
		t.Fatal("fsync'd store did not recover identically")
	}
}

// BenchmarkJournalReplay measures recovery replay cost per journal record
// (the EXPERIMENTS.md recovery-time table).
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	p, reg, _ := openHarness(b, dir, PersistOptions{Fsync: false})
	const records = 1000
	for i := 0; i < records; i++ {
		mutationStep(b, p, reg, i)
	}
	p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg2 := New()
		perf2 := &fakePerf{}
		p2, err := OpenPersistence(dir, reg2, perf2, PersistOptions{Fsync: false, Logf: func(string, ...any) {}})
		if err != nil {
			b.Fatal(err)
		}
		p2.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*records), "µs/record")
}

// BenchmarkSnapshotLoad measures snapshot restore time as the store grows.
func BenchmarkSnapshotLoad(b *testing.B) {
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("platforms=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			p, reg, _ := openHarness(b, dir, PersistOptions{Fsync: false})
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("plat-%d", i)
				prepared, err := reg.Prepare(name, platformXML(name, i))
				if err != nil {
					b.Fatal(err)
				}
				if err := p.LogPut(name, prepared.XML(), func() { reg.CommitPrepared(prepared) }); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Compact(); err != nil {
				b.Fatal(err)
			}
			p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p2, err := OpenPersistence(dir, New(), &fakePerf{}, PersistOptions{Fsync: false, Logf: func(string, ...any) {}})
				if err != nil {
					b.Fatal(err)
				}
				p2.Close()
			}
		})
	}
}
