// Package registry is a versioned, concurrency-safe in-memory store of
// parsed PDL platforms: the shared substrate behind cmd/pdlserved. Instead
// of every consumer re-parsing XML from disk, tools upload a document once
// and query the parsed form over a stable interface.
//
// Concurrency model — copy-on-write snapshots. The entry map is immutable
// once published: writers build a new map under the write lock and swap it
// in; readers take the current map pointer under a read lock and then work
// lock-free on an internally consistent snapshot. Entries themselves are
// never mutated after publication, so a reader holding an *Entry (or the
// *core.Platform inside it) can keep using it while later uploads supersede
// it — exactly the property the HTTP layer needs to evaluate queries without
// holding any lock.
//
// Versioning — content hashes. Each entry carries an ETag derived from the
// SHA-256 of the canonical (re-marshalled) XML, so re-uploading a
// byte-identical or semantically identical document is a no-op: the version
// does not bump, caches stay warm, and conditional HTTP requests can answer
// 304. The store version counts committed changes across all platforms.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
	"repro/internal/schema"
)

// Entry is one published platform revision. Entries are immutable after
// publication; a new upload produces a new Entry.
type Entry struct {
	Name     string
	Platform *core.Platform
	XML      []byte // canonical marshalled form (what GET serves)
	ETag     string // strong ETag over the canonical form, quoted
	Revision uint64 // per-platform revision, 1 on first upload
	Warnings []string
	Stored   time.Time

	// root is the pre-built query over the parsed platform. query.Q derives
	// new sets on filtering and never mutates shared state, so concurrent
	// requests chain filters off this one root (see the concurrent-readers
	// test in internal/query).
	root *query.Q
}

// Query returns the entry's shared query root.
func (e *Entry) Query() *query.Q { return e.root }

// ValidationError carries the schema/structural problems of a rejected
// upload, so HTTP callers can render them as a 422 body.
type ValidationError struct {
	Name     string
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("registry: platform %q invalid: %s", e.Name, strings.Join(e.Problems, "; "))
}

// AsValidationError unwraps a *ValidationError, if err is one.
func AsValidationError(err error) (*ValidationError, bool) {
	ve, ok := err.(*ValidationError)
	return ve, ok
}

// PUView is the JSON-serialisable projection of one matched PU returned by
// Query.
type PUView struct {
	ID       string            `json:"id"`
	Name     string            `json:"name,omitempty"`
	Class    string            `json:"class"`
	Arch     string            `json:"arch,omitempty"`
	Quantity int               `json:"quantity"`
	Groups   []string          `json:"groups,omitempty"`
	Props    map[string]string `json:"props,omitempty"`
}

// Registry is the store. The zero value is not usable; call New.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry // copy-on-write: replaced wholesale on commit
	version uint64            // bumps on every committed change (put or delete)

	schemas *schema.Registry
	cache   *Cache
}

// Option configures a Registry.
type Option func(*Registry)

// WithCacheSize sets the query-result cache capacity (default 256; <= 0
// disables caching).
func WithCacheSize(n int) Option {
	return func(r *Registry) { r.cache = NewCache(n) }
}

// WithSchemas validates uploads against the given schema registry instead of
// schema.Default().
func WithSchemas(s *schema.Registry) Option {
	return func(r *Registry) { r.schemas = s }
}

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		entries: map[string]*Entry{},
		schemas: schema.Default(),
		cache:   NewCache(256),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// etagOf computes the strong ETag of a canonical document.
func etagOf(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// Prepared is a parsed, validated, canonicalised document ready to commit.
// Splitting Put into Prepare + CommitPrepared lets the durability layer
// order the write-ahead journal append between validation and the in-memory
// commit: nothing invalid is ever journaled, and nothing is acknowledged
// before it is durable.
type Prepared struct {
	name      string
	pl        *core.Platform
	canonical []byte
	etag      string
	warnings  []string
}

// Name returns the registry key the document will commit under.
func (p *Prepared) Name() string { return p.name }

// XML returns the canonical marshalled document (what the journal records).
func (p *Prepared) XML() []byte { return p.canonical }

// ETag returns the content-hash ETag the committed entry will carry.
func (p *Prepared) ETag() string { return p.etag }

// Prepare parses, validates and canonicalises one document without touching
// the store. The returned Prepared can be committed with CommitPrepared.
func (r *Registry) Prepare(name string, xmlDoc []byte) (*Prepared, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("registry: empty platform name")
	}
	pl, err := pdlxml.Unmarshal(xmlDoc)
	if err != nil {
		return nil, fmt.Errorf("registry: parse %q: %w", name, err)
	}
	rep := schema.ValidatePlatform(pl, r.schemas)
	if !rep.OK() {
		return nil, &ValidationError{Name: name, Problems: rep.Errors}
	}
	canonical, err := pdlxml.Marshal(pl)
	if err != nil {
		return nil, fmt.Errorf("registry: canonicalise %q: %w", name, err)
	}
	return &Prepared{
		name:      name,
		pl:        pl,
		canonical: canonical,
		etag:      etagOf(canonical),
		warnings:  rep.Warnings,
	}, nil
}

// CommitPrepared publishes a prepared document. Committing a document whose
// canonical form matches the current entry returns (existing, false) without
// bumping any version or touching the cache.
func (r *Registry) CommitPrepared(p *Prepared) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.entries[p.name]; ok && cur.ETag == p.etag {
		return cur, false
	}
	entry := &Entry{
		Name:     p.name,
		Platform: p.pl,
		XML:      p.canonical,
		ETag:     p.etag,
		Revision: 1,
		Warnings: p.warnings,
		Stored:   time.Now(),
		root:     query.New(p.pl),
	}
	if cur, ok := r.entries[p.name]; ok {
		entry.Revision = cur.Revision + 1
	}
	next := make(map[string]*Entry, len(r.entries)+1)
	for k, v := range r.entries {
		next[k] = v
	}
	next[p.name] = entry
	r.entries = next
	r.version++
	r.cache.InvalidatePlatform(p.name)
	return entry, true
}

// Put parses, validates and commits one platform under the given name. The
// name is authoritative: it may differ from the document's own Platform
// name (the registry key is the upload path, like an object store).
//
// Returns the committed (or already-current) entry and whether the store
// changed. Re-uploading a document whose canonical form is unchanged returns
// (existing, false, nil) without bumping any version or touching the cache.
func (r *Registry) Put(name string, xmlDoc []byte) (*Entry, bool, error) {
	p, err := r.Prepare(name, xmlDoc)
	if err != nil {
		return nil, false, err
	}
	entry, changed := r.CommitPrepared(p)
	return entry, changed, nil
}

// Get returns the current entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := r.snapshot()[name]
	return e, ok
}

// Delete removes a platform; reports whether it existed. Deleting bumps the
// store version and drops the platform's cached queries.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	next := make(map[string]*Entry, len(r.entries)-1)
	for k, v := range r.entries {
		if k != name {
			next[k] = v
		}
	}
	r.entries = next
	r.version++
	r.cache.InvalidatePlatform(name)
	return true
}

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	snap := r.snapshot()
	out := make([]*Entry, 0, len(snap))
	for _, e := range snap {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored platforms.
func (r *Registry) Len() int { return len(r.snapshot()) }

// Version returns the store version: the count of committed changes.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// snapshot returns the current immutable entry map; safe to read without
// locks thanks to copy-on-write.
func (r *Registry) snapshot() map[string]*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries
}

// queryKey builds the cache key for a compiled query: platform name, content
// hash and canonical filter rendering. The hash makes keys self-invalidating
// across uploads; the name prefix lets InvalidatePlatform find them.
func queryKey(e *Entry, f *query.Filters) string {
	return e.Name + "\x00" + e.ETag + "\x00" + f.CacheKey()
}

// Query evaluates the filters against the named platform, serving repeated
// identical queries from the LRU cache. Reports whether the result came from
// the cache.
func (r *Registry) Query(name string, f *query.Filters) ([]PUView, bool, error) {
	e, ok := r.Get(name)
	if !ok {
		return nil, false, fmt.Errorf("registry: unknown platform %q", name)
	}
	key := queryKey(e, f)
	if v, ok := r.cache.Get(key); ok {
		return v.([]PUView), true, nil
	}
	q, err := f.Apply(e.root)
	if err != nil {
		return nil, false, err
	}
	views := viewsOf(q.All())
	r.cache.Put(key, views)
	return views, false, nil
}

// CacheStats exposes the query-cache counters (for /metrics).
func (r *Registry) CacheStats() CacheStats { return r.cache.Stats() }

// viewsOf projects matched PUs into their serialisable form.
func viewsOf(pus []*core.PU) []PUView {
	out := make([]PUView, 0, len(pus))
	for _, p := range pus {
		v := PUView{
			ID:       p.ID,
			Name:     p.Name,
			Class:    p.Class.String(),
			Arch:     p.Architecture(),
			Quantity: p.EffectiveQuantity(),
		}
		if len(p.Groups) > 0 {
			v.Groups = append([]string(nil), p.Groups...)
		}
		if len(p.Descriptor.Properties) > 0 {
			v.Props = make(map[string]string, len(p.Descriptor.Properties))
			for _, pr := range p.Descriptor.Properties {
				v.Props[pr.Name] = pr.Value
			}
		}
		out = append(out, v)
	}
	return out
}
