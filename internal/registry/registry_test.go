package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pdlxml"
	"repro/internal/query"
)

func gtx480XML(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "pdlxml", "testdata", "gtx480.pdl.xml"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustFilters(t testing.TB, pairs map[string][]string) *query.Filters {
	t.Helper()
	f, err := query.ParseFilters(pairs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPutGetRoundtrip(t *testing.T) {
	r := New()
	entry, changed, err := r.Put("gtx480", gtx480XML(t))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first Put reported no change")
	}
	if entry.Revision != 1 {
		t.Fatalf("revision = %d; want 1", entry.Revision)
	}
	if r.Version() != 1 {
		t.Fatalf("store version = %d; want 1", r.Version())
	}
	got, ok := r.Get("gtx480")
	if !ok || got != entry {
		t.Fatal("Get did not return the committed entry")
	}
	if got.Platform.Name != "gtx480" {
		t.Fatalf("platform name = %q", got.Platform.Name)
	}
	if !strings.HasPrefix(got.ETag, `"`) || !strings.HasSuffix(got.ETag, `"`) {
		t.Fatalf("ETag %q is not quoted", got.ETag)
	}
	// The stored canonical XML must round-trip.
	if _, err := pdlxml.Unmarshal(got.XML); err != nil {
		t.Fatalf("canonical XML does not parse: %v", err)
	}
}

// Satellite: re-uploading byte-identical XML must not bump any version.
func TestIdenticalUploadDoesNotBumpVersion(t *testing.T) {
	r := New()
	doc := gtx480XML(t)
	first, _, err := r.Put("gtx480", doc)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Version()

	second, changed, err := r.Put("gtx480", doc)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("identical upload reported a change")
	}
	if second != first {
		t.Fatal("identical upload replaced the entry")
	}
	if r.Version() != v {
		t.Fatalf("store version bumped %d -> %d on identical upload", v, r.Version())
	}

	// Equivalent-but-reformatted XML (same canonical form) is also a no-op.
	reformatted := strings.ReplaceAll(string(doc), "\n", "\n ")
	third, changed, err := r.Put("gtx480", []byte(reformatted))
	if err != nil {
		t.Fatal(err)
	}
	if changed || third != first {
		t.Fatal("reformatted-identical upload was treated as a change")
	}
}

func TestChangedUploadBumpsVersionAndInvalidates(t *testing.T) {
	r := New()
	if _, _, err := r.Put("gtx480", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	f := mustFilters(t, map[string][]string{"kind": {"worker"}})
	if _, cached, err := r.Query("gtx480", f); err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	if _, cached, _ := r.Query("gtx480", f); !cached {
		t.Fatal("second identical query missed the cache")
	}

	// A semantically different document: change the worker's group.
	modified := strings.Replace(string(gtx480XML(t)), "devset", "altset", 1)
	e, changed, err := r.Put("gtx480", []byte(modified))
	if err != nil {
		t.Fatal(err)
	}
	if !changed || e.Revision != 2 {
		t.Fatalf("changed=%v revision=%d; want true, 2", changed, e.Revision)
	}
	if r.Version() != 2 {
		t.Fatalf("store version = %d; want 2", r.Version())
	}
	// The cached result for the old revision must not be served.
	if _, cached, _ := r.Query("gtx480", f); cached {
		t.Fatal("query after update served a stale cache entry")
	}
}

func TestPutRejectsUnparseableAndInvalid(t *testing.T) {
	r := New()
	if _, _, err := r.Put("bad", []byte("<not-pdl>")); err == nil {
		t.Fatal("unparseable document accepted")
	}
	// Structurally invalid: Worker with a duplicated id.
	doc := `<Platform name="dup" schemaVersion="1.0">
  <Master id="m"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>x86</value></Property></PUDescriptor>
    <Worker id="w"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property></PUDescriptor></Worker>
    <Worker id="w"><PUDescriptor><Property fixed="true"><name>ARCHITECTURE</name><value>gpu</value></Property></PUDescriptor></Worker>
  </Master>
</Platform>`
	_, _, err := r.Put("dup", []byte(doc))
	if err == nil {
		t.Fatal("invalid platform accepted")
	}
	ve, ok := AsValidationError(err)
	if !ok {
		t.Fatalf("error %T is not a *ValidationError: %v", err, err)
	}
	if len(ve.Problems) == 0 {
		t.Fatal("validation error carries no problems")
	}
	if r.Len() != 0 || r.Version() != 0 {
		t.Fatal("rejected upload mutated the store")
	}
	if _, _, err := r.Put("  ", gtx480XML(t)); err == nil {
		t.Fatal("blank name accepted")
	}
}

func TestDeleteAndList(t *testing.T) {
	r := New()
	if _, _, err := r.Put("a", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Put("b", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range r.List() {
		names = append(names, e.Name)
	}
	if fmt.Sprint(names) != "[a b]" {
		t.Fatalf("List = %v", names)
	}
	if !r.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if r.Delete("a") {
		t.Fatal("double delete reported success")
	}
	if r.Len() != 1 || r.Version() != 3 {
		t.Fatalf("len=%d version=%d; want 1, 3", r.Len(), r.Version())
	}
}

func TestQueryResults(t *testing.T) {
	r := New()
	if _, _, err := r.Put("gtx480", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	views, _, err := r.Query("gtx480", mustFilters(t, map[string][]string{
		"kind": {"worker"}, "group": {"devset"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].ID != "dev0" {
		t.Fatalf("views = %+v; want [dev0]", views)
	}
	if views[0].Class != "Worker" || views[0].Arch != "gpu" {
		t.Fatalf("view = %+v", views[0])
	}
	if views[0].Props["VENDOR"] != "Nvidia" {
		t.Fatalf("props = %v", views[0].Props)
	}
	if _, _, err := r.Query("nope", mustFilters(t, nil)); err == nil {
		t.Fatal("query against unknown platform succeeded")
	}
}

func TestCacheDisabled(t *testing.T) {
	r := New(WithCacheSize(0))
	if _, _, err := r.Put("gtx480", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	f := mustFilters(t, map[string][]string{"kind": {"worker"}})
	for i := 0; i < 3; i++ {
		if _, cached, err := r.Query("gtx480", f); err != nil || cached {
			t.Fatalf("iteration %d: cached=%v err=%v", i, cached, err)
		}
	}
	if st := r.CacheStats(); st.Hits != 0 {
		t.Fatalf("disabled cache recorded %d hits", st.Hits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("p\x00e\x00a", 1)
	c.Put("p\x00e\x00b", 2)
	if _, ok := c.Get("p\x00e\x00a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("p\x00e\x00c", 3) // evicts b (least recently used)
	if _, ok := c.Get("p\x00e\x00b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("p\x00e\x00a"); !ok {
		t.Fatal("a lost")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if n := c.InvalidatePlatform("p"); n != 2 {
		t.Fatalf("invalidated %d; want 2", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after invalidation", c.Len())
	}
}

// Entries must behave as immutable snapshots: a reader holding an entry
// across an update keeps seeing the old revision consistently.
func TestSnapshotIsolation(t *testing.T) {
	r := New()
	if _, _, err := r.Put("gtx480", gtx480XML(t)); err != nil {
		t.Fatal(err)
	}
	old, _ := r.Get("gtx480")
	modified := strings.Replace(string(gtx480XML(t)), "devset", "altset", 1)
	if _, _, err := r.Put("gtx480", []byte(modified)); err != nil {
		t.Fatal(err)
	}
	// The old snapshot still answers queries about the old document.
	if !old.Platform.FindPU("dev0").InGroup("devset") {
		t.Fatal("old snapshot mutated by update")
	}
	cur, _ := r.Get("gtx480")
	if cur == old {
		t.Fatal("update did not produce a fresh entry")
	}
	if !cur.Platform.FindPU("dev0").InGroup("altset") {
		t.Fatal("new snapshot missing the update")
	}
}

// Hammer the store from concurrent writers and readers; run under -race via
// the Makefile race subset.
func TestConcurrentPutQueryDelete(t *testing.T) {
	r := New(WithCacheSize(8))
	doc := gtx480XML(t)
	alt := []byte(strings.Replace(string(doc), "devset", "altset", 1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("p%d", i%3)
				body := doc
				if i%2 == 0 {
					body = alt
				}
				if _, _, err := r.Put(name, body); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, _ := query.ParseFilters(map[string][]string{"kind": {"worker"}})
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("p%d", i%3)
				views, _, err := r.Query(name, f)
				if err != nil {
					continue // not yet uploaded or just deleted
				}
				for _, v := range views {
					if v.Class != "Worker" {
						t.Errorf("non-worker %+v in worker query", v)
						return
					}
				}
				r.List()
				r.Version()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 3 {
		t.Fatalf("len = %d; want 3", r.Len())
	}
}

func TestViewsOfHandlesBuilderPlatforms(t *testing.T) {
	pl := core.NewBuilder("b").
		Master("m", core.Arch("x86"), core.Qty(2), core.InGroups("g")).
		MustBuild()
	views := viewsOf(pl.AllPUs())
	if len(views) != 1 || views[0].Quantity != 2 || views[0].Groups[0] != "g" {
		t.Fatalf("views = %+v", views)
	}
}
