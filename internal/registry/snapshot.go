// Snapshot files for the registry's durability layer: a periodic, compacted
// image of the copy-on-write store (every platform's canonical XML plus its
// revision and store version) and the perfmodel state, so recovery replays
// snapshot + journal instead of the full mutation history.
//
// File framing (little-endian):
//
//	offset 0   8 bytes  magic "PDLSNAP1"
//	offset 8   uint32   CRC-32 (IEEE) of the body
//	offset 12  uint64   body length n
//	offset 20  n bytes  body: JSON snapshotState
//
// Snapshots are written to a temporary file, fsync'd, then atomically
// renamed into place, so a crash mid-write can never damage an existing
// snapshot — at worst it leaves a stray .tmp file that the next open
// ignores. A snapshot whose magic, length or CRC does not verify is refused
// and recovery falls back to the previous snapshot plus a longer replay.
package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/query"
)

var snapshotMagic = [8]byte{'P', 'D', 'L', 'S', 'N', 'A', 'P', '1'}

// maxSnapshotLen caps the body a snapshot header may claim, bounding the
// allocation a corrupt length field can trigger.
const maxSnapshotLen = 1 << 31

var errSnapshotCorrupt = errors.New("registry: snapshot corrupt")

// snapPlatform is one platform's durable image inside a snapshot.
type snapPlatform struct {
	Name     string    `json:"name"`
	Revision uint64    `json:"revision"`
	Stored   time.Time `json:"stored"`
	XML      []byte    `json:"xml"` // canonical form; ETag is recomputed from it
}

// snapshotState is the JSON body of a snapshot file.
type snapshotState struct {
	Seq          uint64          `json:"seq"`
	SavedAt      time.Time       `json:"saved_at"`
	StoreVersion uint64          `json:"store_version"`
	Platforms    []snapPlatform  `json:"platforms"`
	Perfmodels   json.RawMessage `json:"perfmodels,omitempty"`
}

// exportState captures the registry's durable image under the read lock:
// the copy-on-write entry map makes this a pointer walk, not a deep copy.
func (r *Registry) exportState() (version uint64, pls []snapPlatform) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pls = make([]snapPlatform, 0, len(r.entries))
	for _, e := range r.entries {
		pls = append(pls, snapPlatform{
			Name:     e.Name,
			Revision: e.Revision,
			Stored:   e.Stored,
			XML:      e.XML,
		})
	}
	return r.version, pls
}

// restoreState rebuilds the registry from a snapshot image: every document
// is re-parsed (reproducing the content-hash ETag and query root) and
// republished with its original revision; the store version is restored
// verbatim so a recovered server reports the same version it crashed at.
// Any unparsable platform fails the whole restore — the caller treats the
// snapshot as corrupt and falls back.
func (r *Registry) restoreState(version uint64, pls []snapPlatform) error {
	next := make(map[string]*Entry, len(pls))
	for _, sp := range pls {
		p, err := r.Prepare(sp.Name, sp.XML)
		if err != nil {
			return fmt.Errorf("restore %q: %w", sp.Name, err)
		}
		next[sp.Name] = &Entry{
			Name:     sp.Name,
			Platform: p.pl,
			XML:      p.canonical,
			ETag:     p.etag,
			Revision: sp.Revision,
			Warnings: p.warnings,
			Stored:   sp.Stored,
			root:     query.New(p.pl),
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = next
	r.version = version
	return nil
}

// writeSnapshot renders and atomically installs a snapshot at path.
func writeSnapshot(path string, st snapshotState) error {
	body, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("registry: encode snapshot: %w", err)
	}
	buf := make([]byte, 20+len(body))
	copy(buf[0:8], snapshotMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(body)))
	copy(buf[20:], body)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(path)
}

// readSnapshot loads and verifies a snapshot file. Corruption of any kind —
// bad magic, impossible length, trailing garbage, checksum mismatch, broken
// JSON — returns errSnapshotCorrupt (wrapped), never a partial state.
func readSnapshot(path string) (snapshotState, error) {
	var st snapshotState
	data, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if len(data) < 20 || [8]byte(data[0:8]) != snapshotMagic {
		return st, fmt.Errorf("%w: %s: bad header", errSnapshotCorrupt, path)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	if n > maxSnapshotLen || n != uint64(len(data)-20) {
		return st, fmt.Errorf("%w: %s: length mismatch", errSnapshotCorrupt, path)
	}
	body := data[20:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[8:12]) {
		return st, fmt.Errorf("%w: %s: checksum mismatch", errSnapshotCorrupt, path)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("%w: %s: %v", errSnapshotCorrupt, path, err)
	}
	return st, nil
}

// syncDir fsyncs the directory containing path so a rename survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(path string) error {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return nil
	}
	defer dir.Close()
	dir.Sync()
	return nil
}
