package registry

import "testing"

// Sync is the drain-time flush: with per-append fsync off, acknowledged
// records may only be in the page cache, and Sync must push them down
// without erroring — including when called repeatedly or after Close.
func TestPersistenceSync(t *testing.T) {
	dir := t.TempDir()
	p, reg, _ := openHarness(t, dir, PersistOptions{Fsync: false})
	for i := 0; i < 5; i++ {
		mutationStep(t, p, reg, i)
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if p.ReadOnly() {
		t.Fatal("Sync degraded a healthy store")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync after Close must be a no-op, got %v", err)
	}

	// The synced records must replay on the next open.
	p2, reg2, _ := openHarness(t, dir, PersistOptions{Fsync: false})
	defer p2.Close()
	if reg2.Len() == 0 {
		t.Fatal("no platforms recovered after Sync+Close")
	}
}
