// Write-ahead journal for the registry's durability layer (see persist.go
// for the recovery orchestration and DESIGN.md §8 for the full state
// machine). Every committed mutation — platform PUT, platform DELETE,
// perfmodel observation — is appended here *before* it is applied to the
// in-memory store, so a crashed process replays the journal on restart and
// recovers exactly the committed history.
//
// Record framing (little-endian):
//
//	offset 0  uint32  payload length n
//	offset 4  uint32  CRC-32 (IEEE) of the payload
//	offset 8  n bytes payload: [0] = op byte, [1:] = JSON body
//
// The CRC covers only the payload: a torn write (power loss mid-append)
// leaves either a short header, a short payload, or a payload that fails the
// checksum — all three are detected and treated as the end of the journal.
// Everything before the tear is intact because records are strictly
// append-only and (with fsync enabled) durable before the mutation is
// acknowledged.
package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Journal ops. The op byte is the first payload byte so the decoder can
// dispatch without parsing JSON.
const (
	opPut     = byte(1) // body: putRecord
	opDelete  = byte(2) // body: deleteRecord
	opObserve = byte(3) // body: observeRecord
)

// recordHeaderLen is the fixed framing prefix: length + CRC.
const recordHeaderLen = 8

// maxRecordLen caps a single journal record's payload. It bounds the
// allocation a corrupt length prefix can trigger (the decoder refuses larger
// claims before allocating) and comfortably exceeds the server's default
// 4 MiB upload cap.
const maxRecordLen = 16 << 20

// Decode errors. errShortRecord and errRecordCRC mark a torn tail when they
// occur at the end of a journal; anywhere else they mean corruption.
var (
	errShortRecord = errors.New("registry: journal record truncated")
	errRecordCRC   = errors.New("registry: journal record CRC mismatch")
	errRecordSize  = errors.New("registry: journal record exceeds size limit")
)

// putRecord journals one committed platform upload. XML is the canonical
// (re-marshalled) document, so replay reproduces the same content-hash ETag.
type putRecord struct {
	Name string `json:"name"`
	XML  []byte `json:"xml"`
}

// deleteRecord journals one platform removal.
type deleteRecord struct {
	Name string `json:"name"`
}

// observeRecord journals one perfmodel observation routed through
// /platforms/{name}/observe. Replay re-runs the observation against the
// platform as recovered at that point in the history, reproducing the same
// per-pattern sample attribution.
type observeRecord struct {
	Platform string  `json:"platform"`
	Codelet  string  `json:"codelet"`
	Size     float64 `json:"size"`
	Seconds  float64 `json:"seconds"`
}

// mutation is the decoded form of one journal payload: exactly one of the
// record pointers is set, according to Op.
type mutation struct {
	Op      byte
	Put     *putRecord
	Delete  *deleteRecord
	Observe *observeRecord
}

// encodeMutation renders a payload: op byte followed by the JSON body.
func encodeMutation(op byte, body any) ([]byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("registry: encode journal record: %w", err)
	}
	payload := make([]byte, 1+len(data))
	payload[0] = op
	copy(payload[1:], data)
	return payload, nil
}

// decodeMutation parses a record payload. Arbitrary bytes must only ever
// produce an error — never a panic or an unbounded allocation (the framing
// decoder has already capped the payload length).
func decodeMutation(payload []byte) (mutation, error) {
	if len(payload) < 1 {
		return mutation{}, errors.New("registry: empty journal payload")
	}
	op, body := payload[0], payload[1:]
	var m mutation
	m.Op = op
	switch op {
	case opPut:
		m.Put = new(putRecord)
		if err := json.Unmarshal(body, m.Put); err != nil {
			return mutation{}, fmt.Errorf("registry: decode put record: %w", err)
		}
		if m.Put.Name == "" {
			return mutation{}, errors.New("registry: put record without name")
		}
	case opDelete:
		m.Delete = new(deleteRecord)
		if err := json.Unmarshal(body, m.Delete); err != nil {
			return mutation{}, fmt.Errorf("registry: decode delete record: %w", err)
		}
		if m.Delete.Name == "" {
			return mutation{}, errors.New("registry: delete record without name")
		}
	case opObserve:
		m.Observe = new(observeRecord)
		if err := json.Unmarshal(body, m.Observe); err != nil {
			return mutation{}, fmt.Errorf("registry: decode observe record: %w", err)
		}
		if m.Observe.Platform == "" || m.Observe.Codelet == "" {
			return mutation{}, errors.New("registry: observe record without platform/codelet")
		}
		if m.Observe.Size <= 0 || m.Observe.Seconds <= 0 {
			return mutation{}, errors.New("registry: observe record with non-positive sample")
		}
	default:
		return mutation{}, fmt.Errorf("registry: unknown journal op %d", op)
	}
	return m, nil
}

// encodeRecord frames a payload: header (length + CRC) followed by the
// payload, returned as one slice so Append issues a single write.
func encodeRecord(payload []byte) ([]byte, error) {
	if len(payload) > maxRecordLen {
		return nil, errRecordSize
	}
	rec := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[recordHeaderLen:], payload)
	return rec, nil
}

// decodeRecord consumes one framed record from buf, returning the payload
// (a subslice of buf — no copy, no allocation) and the remaining bytes.
// It never allocates based on untrusted lengths: a length prefix larger
// than maxRecordLen fails with errRecordSize, and a length larger than the
// remaining buffer fails with errShortRecord before any slicing.
func decodeRecord(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < recordHeaderLen {
		return nil, buf, errShortRecord
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxRecordLen {
		return nil, buf, errRecordSize
	}
	if uint64(len(buf)-recordHeaderLen) < uint64(n) {
		return nil, buf, errShortRecord
	}
	payload = buf[recordHeaderLen : recordHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, buf, errRecordCRC
	}
	return payload, buf[recordHeaderLen+int(n):], nil
}

// journal is an open, append-only WAL file.
type journal struct {
	f       *os.File
	path    string
	size    int64 // bytes of committed (framed) records
	records int   // records appended or replayed through this handle
	fsync   bool  // sync after every append

	// fsyncObserve, when set, receives the duration of each fsync (wired to
	// the pdlserved_wal_fsync_seconds histogram).
	fsyncObserve func(time.Duration)
}

// openJournal opens (creating if absent) the journal at path for appending.
// The caller is responsible for having replayed and truncated any torn tail
// first; size is the verified good length.
func openJournal(path string, size int64, fsync bool) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{f: f, path: path, size: size, fsync: fsync}, nil
}

// append frames and writes one payload, then (per policy) fsyncs. On any
// error the journal must be considered broken: the caller flips the store
// to read-only rather than risk acknowledging mutations that are not
// durable.
func (j *journal) append(payload []byte) error {
	rec, err := encodeRecord(payload)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("registry: journal append: %w", err)
	}
	if j.fsync {
		start := time.Now()
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("registry: journal fsync: %w", err)
		}
		if j.fsyncObserve != nil {
			j.fsyncObserve(time.Since(start))
		}
	}
	j.size += int64(len(rec))
	j.records++
	return nil
}

// sync fsyncs the journal file unconditionally (the drain-time flush).
func (j *journal) sync() error {
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("registry: journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// replayResult summarises one journal file's replay.
type replayResult struct {
	Records   int   // records decoded and handed to apply
	GoodBytes int64 // verified prefix length (file offset of the tear, if any)
	Torn      bool  // file ended in a short or checksum-failing record
}

// replayJournal reads the journal at path and calls apply for each intact
// record in order. A torn tail (short header, short payload, or CRC
// mismatch) ends the replay without error: the result reports Torn and the
// byte offset the file should be truncated to. A missing file replays zero
// records. apply errors abort the replay and are returned as-is.
func replayJournal(path string, apply func(m mutation) error) (replayResult, error) {
	var res replayResult
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	buf := data
	for len(buf) > 0 {
		payload, rest, err := decodeRecord(buf)
		if err != nil {
			// errRecordSize means a garbage length prefix — indistinguishable
			// from any other torn/overwritten tail, so it truncates too.
			res.Torn = true
			return res, nil
		}
		m, err := decodeMutation(payload)
		if err != nil {
			// Framing was intact but the payload is not a valid mutation:
			// treat like a tear at this offset. This cannot happen for
			// records we wrote ourselves.
			res.Torn = true
			return res, nil
		}
		if err := apply(m); err != nil {
			return res, err
		}
		buf = rest
		res.Records++
		res.GoodBytes = int64(len(data) - len(buf))
	}
	return res, nil
}
