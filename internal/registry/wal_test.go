package registry

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	payload, err := encodeMutation(opPut, putRecord{Name: "p", XML: []byte("<x/>")})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := encodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := decodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q vs %q", got, payload)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected %d trailing bytes", len(rest))
	}
	m, err := decodeMutation(got)
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != opPut || m.Put == nil || m.Put.Name != "p" || string(m.Put.XML) != "<x/>" {
		t.Fatalf("decoded mutation = %+v", m)
	}
}

func TestDecodeRecordTornAndCorrupt(t *testing.T) {
	payload, _ := encodeMutation(opDelete, deleteRecord{Name: "p"})
	rec, _ := encodeRecord(payload)

	// Every strict prefix of a record is torn, never valid and never a panic.
	for cut := 0; cut < len(rec); cut++ {
		if _, _, err := decodeRecord(rec[:cut]); err == nil {
			t.Fatalf("cut at %d decoded successfully", cut)
		}
	}

	// A flipped payload bit fails the checksum.
	bad := append([]byte(nil), rec...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := decodeRecord(bad); !errors.Is(err, errRecordCRC) {
		t.Fatalf("corrupt payload err = %v, want CRC mismatch", err)
	}

	// A garbage length prefix must not trigger a giant allocation.
	huge := append([]byte(nil), rec...)
	binary.LittleEndian.PutUint32(huge[0:4], maxRecordLen+1)
	if _, _, err := decodeRecord(huge); !errors.Is(err, errRecordSize) {
		t.Fatalf("oversized length err = %v, want size error", err)
	}
}

func TestJournalAppendReplayTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	j, err := openJournal(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for _, name := range []string{"a", "b", "c"} {
		p, _ := encodeMutation(opDelete, deleteRecord{Name: name})
		payloads = append(payloads, p)
		if err := j.append(p); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := j.size
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: half of a fourth record.
	tornRec, _ := encodeRecord(payloads[0])
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write(tornRec[:len(tornRec)/2])
	f.Close()

	var names []string
	res, err := replayJournal(path, func(m mutation) error {
		names = append(names, m.Delete.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn {
		t.Fatal("torn tail not detected")
	}
	if res.GoodBytes != goodSize {
		t.Fatalf("GoodBytes = %d, want %d", res.GoodBytes, goodSize)
	}
	if res.Records != 3 || len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("replayed %d records (%v), want the 3 intact ones", res.Records, names)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	res, err := replayJournal(filepath.Join(t.TempDir(), "absent.wal"), func(mutation) error {
		t.Fatal("apply called")
		return nil
	})
	if err != nil || res.Records != 0 || res.Torn {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	reg := New()
	xml := readTestPlatform(t, "gtx480")
	if _, _, err := reg.Put("gtx480", xml); err != nil {
		t.Fatal(err)
	}
	version, pls := reg.exportState()
	if err := writeSnapshot(path, snapshotState{Seq: 1, StoreVersion: version, Platforms: pls}); err != nil {
		t.Fatal(err)
	}

	st, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.restoreState(st.StoreVersion, st.Platforms); err != nil {
		t.Fatal(err)
	}
	orig, _ := reg.Get("gtx480")
	got, ok := restored.Get("gtx480")
	if !ok || got.ETag != orig.ETag || got.Revision != orig.Revision {
		t.Fatalf("restored entry = %+v, want etag %s rev %d", got, orig.ETag, orig.Revision)
	}
	if restored.Version() != reg.Version() {
		t.Fatalf("restored version %d != %d", restored.Version(), reg.Version())
	}

	// Any flipped body byte must be refused.
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, err := readSnapshot(path); !errors.Is(err, errSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot err = %v", err)
	}
}

// readTestPlatform loads a document from the shared pdlxml testdata set.
func readTestPlatform(t testing.TB, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "pdlxml", "testdata", name+".pdl.xml"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}
