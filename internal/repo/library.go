package repo

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/pragma"
	"repro/internal/taskrt"
)

// The built-in library variants of the paper's case study. The DGEMM
// interface carries three implementations:
//
//   - dgemm_goto: the GotoBLAS2 stand-in, a cache-blocked Go kernel for x86
//     (real-mode runnable);
//   - dgemm_goto_par: the same kernel parallelised over the tile rows, used
//     when one task should occupy several cores;
//   - dgemm_cublas: the CuBLAS stand-in for gpu units — simulation-only,
//     since no physical GPU is present; its cost comes from the PDL
//     calibration.
//
// The vecadd interface mirrors the paper's annotation example.

// GemmPayload is the payload convention of the dgemm variants: three matrix
// views C += A·B.
type GemmPayload struct {
	A, B, C *blas.Matrix
}

func gemmKernel(blocked bool) func(*taskrt.TaskContext) error {
	return func(tc *taskrt.TaskContext) error {
		p, ok := tc.Payload(0).(*GemmPayload)
		if !ok {
			return fmt.Errorf("repo: dgemm payload is %T, want *GemmPayload", tc.Payload(0))
		}
		if blocked {
			// The GotoBLAS2 stand-in uses the packing kernel, which keeps
			// its locality on strided tile views.
			return blas.GemmPacked(p.A, p.B, p.C, blas.DefaultBlock)
		}
		return blas.GemmNaive(p.A, p.B, p.C)
	}
}

func vecaddKernel(tc *taskrt.TaskContext) error {
	a, ok := tc.Payload(0).([]float64)
	if !ok {
		return fmt.Errorf("repo: vecadd payload 0 is %T, want []float64", tc.Payload(0))
	}
	b, ok := tc.Payload(1).([]float64)
	if !ok {
		return fmt.Errorf("repo: vecadd payload 1 is %T, want []float64", tc.Payload(1))
	}
	return blas.VecAdd(a, b)
}

// Interface names of the built-in library.
const (
	IfaceDGEMM  = "Idgemm"
	IfaceVecAdd = "Ivecadd"
)

// WithLibrary registers the built-in library variants into r and returns r
// for chaining.
func WithLibrary(r *Repository) (*Repository, error) {
	rwRead3 := []pragma.Param{
		{Name: "A", Mode: taskrt.Read},
		{Name: "B", Mode: taskrt.Read},
		{Name: "C", Mode: taskrt.ReadWrite},
	}
	variants := []*Variant{
		{
			Interface: IfaceDGEMM, Name: "dgemm_goto",
			Targets: []string{"x86", "smp", "starpu", "seq"},
			Params:  rwRead3, Arch: "x86",
			Kernel: gemmKernel(true), Origin: Library,
		},
		{
			Interface: IfaceDGEMM, Name: "dgemm_naive",
			Targets: []string{"x86", "seq"},
			Params:  rwRead3, Arch: "x86",
			Kernel: gemmKernel(false), SpeedFactor: 0.25, Origin: Library,
		},
		{
			Interface: IfaceDGEMM, Name: "dgemm_cublas",
			Targets: []string{"cuda", "opencl", "host-device", "multi-gpu"},
			Params:  rwRead3, Arch: "gpu",
			Origin: Library, // simulation-only: no physical GPU present
		},
		{
			Interface: IfaceVecAdd, Name: "vecadd_x86",
			Targets: []string{"x86", "smp", "starpu", "seq"},
			Params: []pragma.Param{
				{Name: "A", Mode: taskrt.ReadWrite},
				{Name: "B", Mode: taskrt.Read},
			},
			Arch: "x86", Kernel: vecaddKernel, Origin: Library,
		},
		{
			Interface: IfaceVecAdd, Name: "vecadd_gpu",
			Targets: []string{"cuda", "opencl", "host-device"},
			Params: []pragma.Param{
				{Name: "A", Mode: taskrt.ReadWrite},
				{Name: "B", Mode: taskrt.Read},
			},
			Arch: "gpu", Origin: Library,
		},
	}
	for _, v := range variants {
		if err := r.Add(v); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// NewWithLibrary returns a repository preloaded with the built-in library.
func NewWithLibrary() *Repository {
	r, err := WithLibrary(New())
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return r
}

// DefaultKernels maps the implementation names used in the examples'
// annotated sources to runnable kernels, so user variants parsed from source
// become executable (the repository's "binary" for that variant).
func DefaultKernels() map[string]func(*taskrt.TaskContext) error {
	return map[string]func(*taskrt.TaskContext) error{
		"vecadd01":  vecaddKernel,
		"dgemm_seq": gemmKernel(true),
		"dgemm01":   gemmKernel(true),
	}
}
