// Package repo implements Cascabel's task-implementation repository (paper
// Section IV-C step 1): task interface names map to implementation variants,
// each declaring which platform patterns it targets. Variants come from two
// sources, exactly as in the paper's prototype — user code outlined with
// task annotations, and library implementations shipped with the repository
// (the GotoBLAS/CuBLAS DGEMM variants of the case study, here backed by
// internal/blas kernels and simulated GPU codelets).
package repo

import (
	"fmt"
	"sort"

	"repro/internal/csrc"
	"repro/internal/pragma"
	"repro/internal/taskrt"
)

// Origin records where a variant came from.
type Origin int

const (
	// User marks a variant registered from an annotated source program.
	User Origin = iota
	// Library marks a variant shipped with the repository.
	Library
)

func (o Origin) String() string {
	if o == User {
		return "user"
	}
	return "library"
}

// Variant is one task implementation.
type Variant struct {
	// Interface is the task interface name (taskidentifier), e.g. "Ivecadd".
	Interface string
	// Name is the unique implementation name (taskname), e.g. "vecadd01".
	Name string
	// Targets lists the platform patterns this variant is written for
	// (pattern.FromTarget names: "x86", "opencl", "cuda", "cell", ...).
	Targets []string
	// Params declare the parameter access modes.
	Params []pragma.Param
	// Arch is the taskrt architecture tag the variant executes on.
	Arch string
	// Kernel is the real-mode implementation; nil for variants that exist
	// only in simulation (e.g. GPU kernels on a machine without GPUs).
	Kernel func(*taskrt.TaskContext) error
	// SpeedFactor scales the calibrated architecture rate for this kernel
	// in simulation (1.0 when zero).
	SpeedFactor float64
	// Source is the original C body for user variants ("" for library).
	Source string
	// Origin records the provenance.
	Origin Origin
}

// TargetsPattern reports whether the variant lists the given target.
func (v *Variant) TargetsPattern(name string) bool {
	for _, t := range v.Targets {
		if t == name {
			return true
		}
	}
	return false
}

func (v *Variant) String() string {
	return fmt.Sprintf("%s/%s[%s] targets=%v", v.Interface, v.Name, v.Origin, v.Targets)
}

// Repository stores variants keyed by interface.
type Repository struct {
	byIface map[string][]*Variant
	byName  map[string]*Variant
}

// New returns an empty repository.
func New() *Repository {
	return &Repository{
		byIface: map[string][]*Variant{},
		byName:  map[string]*Variant{},
	}
}

// Add registers a variant. Implementation names must be unique across the
// repository (the paper's taskname uniqueness rule); every variant needs an
// interface, at least one target and an architecture tag.
func (r *Repository) Add(v *Variant) error {
	if v.Interface == "" || v.Name == "" {
		return fmt.Errorf("repo: variant needs interface and name (got %q/%q)", v.Interface, v.Name)
	}
	if len(v.Targets) == 0 {
		return fmt.Errorf("repo: variant %s/%s has no target platforms", v.Interface, v.Name)
	}
	if v.Arch == "" {
		return fmt.Errorf("repo: variant %s/%s has no architecture tag", v.Interface, v.Name)
	}
	if _, dup := r.byName[v.Name]; dup {
		return fmt.Errorf("repo: duplicate implementation name %q", v.Name)
	}
	r.byName[v.Name] = v
	r.byIface[v.Interface] = append(r.byIface[v.Interface], v)
	return nil
}

// VariantsFor returns the variants registered for an interface, in
// registration order.
func (r *Repository) VariantsFor(iface string) []*Variant {
	return append([]*Variant(nil), r.byIface[iface]...)
}

// ByName returns the variant with the given implementation name.
func (r *Repository) ByName(name string) (*Variant, bool) {
	v, ok := r.byName[name]
	return v, ok
}

// Interfaces returns the registered interface names, sorted.
func (r *Repository) Interfaces() []string {
	out := make([]string, 0, len(r.byIface))
	for k := range r.byIface {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered variants.
func (r *Repository) Len() int { return len(r.byName) }

// targetArch maps a target platform pattern to the architecture tag its
// kernels execute on.
func targetArch(target string) string {
	switch target {
	case "opencl", "cuda", "host-device", "multi-gpu":
		return "gpu"
	case "cell":
		return "spe"
	default: // seq, x86, smp, starpu
		return "x86"
	}
}

// RegisterProgram registers every task definition of a parsed program as a
// user variant. The kernel registry maps implementation names to runnable
// Go kernels (the repository's "compiled binaries"); unknown names become
// sim-only variants.
func (r *Repository) RegisterProgram(prog *csrc.Program, kernels map[string]func(*taskrt.TaskContext) error) error {
	for _, td := range prog.TaskDefs() {
		a := td.Annotation
		arch := targetArch(a.Targets[0])
		v := &Variant{
			Interface: a.Interface,
			Name:      a.Name,
			Targets:   append([]string(nil), a.Targets...),
			Params:    append([]pragma.Param(nil), a.Params...),
			Arch:      arch,
			Source:    td.Func.Body,
			Origin:    User,
		}
		if kernels != nil {
			v.Kernel = kernels[a.Name]
		}
		if err := r.Add(v); err != nil {
			return err
		}
	}
	return nil
}
