package repo

import (
	"strings"
	"testing"

	"repro/internal/blas"
	"repro/internal/csrc"
	"repro/internal/taskrt"
)

func TestAddValidation(t *testing.T) {
	r := New()
	if err := r.Add(&Variant{Name: "x", Targets: []string{"x86"}, Arch: "x86"}); err == nil {
		t.Fatal("missing interface must fail")
	}
	if err := r.Add(&Variant{Interface: "I", Name: "x", Arch: "x86"}); err == nil {
		t.Fatal("missing targets must fail")
	}
	if err := r.Add(&Variant{Interface: "I", Name: "x", Targets: []string{"x86"}}); err == nil {
		t.Fatal("missing arch must fail")
	}
	v := &Variant{Interface: "I", Name: "x", Targets: []string{"x86"}, Arch: "x86"}
	if err := r.Add(v); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Variant{Interface: "J", Name: "x", Targets: []string{"x86"}, Arch: "x86"}); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestLookups(t *testing.T) {
	r := NewWithLibrary()
	dg := r.VariantsFor(IfaceDGEMM)
	if len(dg) != 3 {
		t.Fatalf("dgemm variants = %d", len(dg))
	}
	if _, ok := r.ByName("dgemm_cublas"); !ok {
		t.Fatal("dgemm_cublas missing")
	}
	if _, ok := r.ByName("nonesuch"); ok {
		t.Fatal("ByName false positive")
	}
	ifaces := r.Interfaces()
	if len(ifaces) != 2 || ifaces[0] != IfaceDGEMM {
		t.Fatalf("interfaces = %v", ifaces)
	}
	cublas, _ := r.ByName("dgemm_cublas")
	if !cublas.TargetsPattern("cuda") || cublas.TargetsPattern("x86") {
		t.Fatal("TargetsPattern wrong")
	}
	if cublas.Kernel != nil {
		t.Fatal("cublas variant must be simulation-only")
	}
	if !strings.Contains(cublas.String(), "library") {
		t.Fatalf("String() = %q", cublas.String())
	}
	// Mutating the returned slice must not corrupt the repository.
	vs := r.VariantsFor(IfaceDGEMM)
	vs[0] = nil
	if r.VariantsFor(IfaceDGEMM)[0] == nil {
		t.Fatal("VariantsFor exposes internal slice")
	}
}

func TestLibraryKernelsRun(t *testing.T) {
	r := NewWithLibrary()
	goto_, _ := r.ByName("dgemm_goto")
	a, b, c := blas.NewMatrix(8, 8), blas.NewMatrix(8, 8), blas.NewMatrix(8, 8)
	a.FillRandom(1)
	b.FillIdentity()
	tc := &taskrt.TaskContext{Data: []any{&GemmPayload{A: a, B: b, C: c}}}
	if err := goto_.Kernel(tc); err != nil {
		t.Fatal(err)
	}
	if !blas.Equal(a, c, 1e-12) {
		t.Fatal("dgemm_goto kernel wrong")
	}
	// Wrong payload type errors cleanly.
	if err := goto_.Kernel(&taskrt.TaskContext{Data: []any{42}}); err == nil {
		t.Fatal("wrong payload must fail")
	}

	va, _ := r.ByName("vecadd_x86")
	x := []float64{1, 2}
	y := []float64{3, 4}
	if err := va.Kernel(&taskrt.TaskContext{Data: []any{x, y}}); err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 6 {
		t.Fatalf("vecadd result = %v", x)
	}
	if err := va.Kernel(&taskrt.TaskContext{Data: []any{42, y}}); err == nil {
		t.Fatal("wrong payload 0 must fail")
	}
	if err := va.Kernel(&taskrt.TaskContext{Data: []any{x, "y"}}); err == nil {
		t.Fatal("wrong payload 1 must fail")
	}
}

const annotated = `#pragma cascabel task : x86
 : Ivecadd
 : vecadd01
 : (A:readwrite, B:read)
void vector_add(double *A, double *B) { }
#pragma cascabel task : opencl, cuda
 : Ivecadd
 : vecadd_gpu01
 : (A:readwrite, B:read)
void vector_add_gpu(double *A, double *B) { }
`

func TestRegisterProgram(t *testing.T) {
	prog, err := csrc.ParseProgram(annotated)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.RegisterProgram(prog, DefaultKernels()); err != nil {
		t.Fatal(err)
	}
	vs := r.VariantsFor("Ivecadd")
	if len(vs) != 2 {
		t.Fatalf("variants = %d", len(vs))
	}
	cpu, _ := r.ByName("vecadd01")
	if cpu.Origin != User || cpu.Arch != "x86" {
		t.Fatalf("cpu variant = %+v", cpu)
	}
	if cpu.Kernel == nil {
		t.Fatal("vecadd01 should resolve a runnable kernel from the registry")
	}
	gpu, _ := r.ByName("vecadd_gpu01")
	if gpu.Arch != "gpu" {
		t.Fatalf("gpu variant arch = %q", gpu.Arch)
	}
	if gpu.Kernel != nil {
		t.Fatal("unknown kernel names must stay simulation-only")
	}
	// Duplicate registration collides on names.
	if err := r.RegisterProgram(prog, nil); err == nil {
		t.Fatal("re-registering must fail on duplicate names")
	}
}

func TestTargetArchMapping(t *testing.T) {
	cases := map[string]string{
		"x86": "x86", "seq": "x86", "smp": "x86", "starpu": "x86",
		"opencl": "gpu", "cuda": "gpu", "multi-gpu": "gpu", "host-device": "gpu",
		"cell": "spe",
	}
	for target, want := range cases {
		if got := targetArch(target); got != want {
			t.Errorf("targetArch(%q) = %q; want %q", target, got, want)
		}
	}
}
