package schema

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindString:    "string",
		KindInt:       "int",
		KindFloat:     "float",
		KindBool:      "bool",
		KindSize:      "size",
		KindFrequency: "frequency",
		KindBandwidth: "bandwidth",
		KindDuration:  "duration",
		KindEnum:      "enum",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q; want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestBaseSpecsSortedAndComplete(t *testing.T) {
	specs := Default().BaseSpecs()
	if len(specs) < 10 {
		t.Fatalf("base specs = %d", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Fatal("BaseSpecs not sorted")
		}
	}
	// Every base spec has documentation (tooling renders it).
	for _, s := range specs {
		if s.Doc == "" {
			t.Errorf("spec %s lacks a doc line", s.Name)
		}
	}
}

func TestSubschemaQualifiedType(t *testing.T) {
	sub := &Subschema{Prefix: "ocl", TypeName: "oclDevicePropertyType"}
	if sub.QualifiedType() != "ocl:oclDevicePropertyType" {
		t.Fatal("QualifiedType wrong")
	}
}

func TestAddBaseOverrides(t *testing.T) {
	r := NewRegistry()
	r.AddBase(Spec{Name: "X", Kind: KindInt})
	r.AddBase(Spec{Name: "X", Kind: KindFloat})
	if len(r.BaseSpecs()) != 1 || r.BaseSpecs()[0].Kind != KindFloat {
		t.Fatal("AddBase should replace same-named specs")
	}
}
