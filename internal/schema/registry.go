package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Subschema is a named, versioned set of property specs. Subschemas inherit
// the base vocabulary: a property validated against subschema type
// "ocl:oclDevicePropertyType" may use any spec of the subschema or of the
// base schema (the PDL's schema-inheritance rule).
type Subschema struct {
	Prefix   string // e.g. "ocl"
	TypeName string // e.g. "oclDevicePropertyType"
	Version  string // "major.minor"
	Specs    map[string]Spec
}

// QualifiedType returns the xsi:type string of the subschema.
func (s *Subschema) QualifiedType() string { return s.Prefix + ":" + s.TypeName }

// Registry holds the base schema plus registered subschemas. The zero value
// is unusable; use NewRegistry (empty base) or Default().
type Registry struct {
	mu    sync.RWMutex
	base  map[string]Spec
	subs  map[string]*Subschema // key: qualified type "pfx:Type"
	byPfx map[string]*Subschema
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		base:  map[string]Spec{},
		subs:  map[string]*Subschema{},
		byPfx: map[string]*Subschema{},
	}
}

// AddBase registers a base-schema property spec, replacing any previous spec
// with the same name.
func (r *Registry) AddBase(s Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base[s.Name] = s
}

// Register adds a subschema. The qualified type and the prefix must be new.
func (r *Registry) Register(sub *Subschema) error {
	if sub.Prefix == "" || sub.TypeName == "" {
		return fmt.Errorf("schema: subschema needs prefix and type name")
	}
	if !validVersion(sub.Version) {
		return fmt.Errorf("schema: subschema %s has bad version %q (want major.minor)", sub.QualifiedType(), sub.Version)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	qt := sub.QualifiedType()
	if _, ok := r.subs[qt]; ok {
		return fmt.Errorf("schema: subschema %s already registered", qt)
	}
	r.subs[qt] = sub
	r.byPfx[sub.Prefix] = sub
	return nil
}

func validVersion(v string) bool {
	parts := strings.Split(v, ".")
	if len(parts) != 2 {
		return false
	}
	for _, p := range parts {
		if p == "" {
			return false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return false
			}
		}
	}
	return true
}

// CompatibleVersions reports whether two subschema versions are compatible:
// equal major components (the minor component only adds specs).
func CompatibleVersions(a, b string) bool {
	if !validVersion(a) || !validVersion(b) {
		return false
	}
	return strings.Split(a, ".")[0] == strings.Split(b, ".")[0]
}

// Lookup resolves the spec governing a property: the subschema named by its
// Type (if any) first, then the base schema (inheritance). ok is false when
// no spec constrains the property, which is allowed — the PDL property space
// is open.
func (r *Registry) Lookup(p core.Property) (Spec, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if p.Type != "" {
		sub, ok := r.subs[p.Type]
		if !ok {
			return Spec{}, false, fmt.Errorf("schema: property %s uses unregistered type %q", p.Name, p.Type)
		}
		if s, ok := sub.Specs[p.Name]; ok {
			return s, true, nil
		}
	}
	if s, ok := r.base[p.Name]; ok {
		return s, true, nil
	}
	return Spec{}, false, nil
}

// Subschemas lists registered subschemas sorted by qualified type.
func (r *Registry) Subschemas() []*Subschema {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Subschema, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QualifiedType() < out[j].QualifiedType() })
	return out
}

// BaseSpecs lists base-schema specs sorted by name.
func (r *Registry) BaseSpecs() []Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Spec, 0, len(r.base))
	for _, s := range r.base {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the registry preloaded with the base vocabulary used by
// the paper's examples and the predefined ocl/cuda/cell/sim subschemas.
func Default() *Registry {
	defaultOnce.Do(func() {
		r := NewRegistry()
		for _, s := range []Spec{
			{Name: core.PropArchitecture, Kind: KindString, Doc: "core architecture tag (x86, gpu, spe, ppc, ...)"},
			{Name: core.PropDeviceName, Kind: KindString, Doc: "marketing device name"},
			{Name: core.PropVendor, Kind: KindString, Doc: "hardware vendor"},
			{Name: core.PropCores, Kind: KindInt, Doc: "physical core count"},
			{Name: core.PropClockMHz, Kind: KindFrequency, Doc: "core clock", NeedUnit: true},
			{Name: core.PropMemSize, Kind: KindSize, Doc: "addressable memory size"},
			{Name: core.PropLocalMem, Kind: KindSize, Doc: "per-unit local memory size"},
			{Name: core.PropComputeUnits, Kind: KindInt, Doc: "compute units exposed by the runtime"},
			{Name: core.PropWorkItemDims, Kind: KindInt, Doc: "work item dimensionality"},
			{Name: core.PropGFlopsDP, Kind: KindFloat, Doc: "calibrated double-precision throughput (GFLOP/s)"},
			{Name: core.PropRuntime, Kind: KindEnum, Enum: []string{"OpenCL", "Cuda", "CellSDK", "StarPU", "seq", "taskrt"}, Doc: "software runtime available on the unit"},
			{Name: "BANDWIDTH", Kind: KindBandwidth, Doc: "link bandwidth", NeedUnit: true},
			{Name: "LATENCY", Kind: KindDuration, Doc: "link latency", NeedUnit: true},
		} {
			r.AddBase(s)
		}
		must := func(err error) {
			if err != nil {
				panic(err)
			}
		}
		must(r.Register(&Subschema{
			Prefix: "ocl", TypeName: "oclDevicePropertyType", Version: "1.0",
			Specs: map[string]Spec{
				"DEVICE_NAME":              {Name: "DEVICE_NAME", Kind: KindString},
				"MAX_COMPUTE_UNITS":        {Name: "MAX_COMPUTE_UNITS", Kind: KindInt},
				"MAX_WORK_ITEM_DIMENSIONS": {Name: "MAX_WORK_ITEM_DIMENSIONS", Kind: KindInt},
				"GLOBAL_MEM_SIZE":          {Name: "GLOBAL_MEM_SIZE", Kind: KindSize},
				"LOCAL_MEM_SIZE":           {Name: "LOCAL_MEM_SIZE", Kind: KindSize},
				"DEVICE_VERSION":           {Name: "DEVICE_VERSION", Kind: KindString},
				"DRIVER_VERSION":           {Name: "DRIVER_VERSION", Kind: KindString},
			},
		}))
		must(r.Register(&Subschema{
			Prefix: "cuda", TypeName: "cudaDevicePropertyType", Version: "1.0",
			Specs: map[string]Spec{
				"DEVICE_NAME":        {Name: "DEVICE_NAME", Kind: KindString},
				"COMPUTE_CAPABILITY": {Name: "COMPUTE_CAPABILITY", Kind: KindString},
				"MULTIPROCESSORS":    {Name: "MULTIPROCESSORS", Kind: KindInt},
				"GLOBAL_MEM_SIZE":    {Name: "GLOBAL_MEM_SIZE", Kind: KindSize},
				"SHARED_MEM_PER_SM":  {Name: "SHARED_MEM_PER_SM", Kind: KindSize},
			},
		}))
		must(r.Register(&Subschema{
			Prefix: "cell", TypeName: "cellPropertyType", Version: "1.0",
			Specs: map[string]Spec{
				"SPE_COUNT":      {Name: "SPE_COUNT", Kind: KindInt},
				"LOCAL_STORE":    {Name: "LOCAL_STORE", Kind: KindSize},
				"EIB_BANDWIDTH":  {Name: "EIB_BANDWIDTH", Kind: KindBandwidth, NeedUnit: true},
				"PPE_HW_THREADS": {Name: "PPE_HW_THREADS", Kind: KindInt},
			},
		}))
		must(r.Register(&Subschema{
			Prefix: "sim", TypeName: "simDevicePropertyType", Version: "1.0",
			Specs: map[string]Spec{
				"PEAK_GFLOPS_DP":   {Name: "PEAK_GFLOPS_DP", Kind: KindFloat},
				"DGEMM_EFFICIENCY": {Name: "DGEMM_EFFICIENCY", Kind: KindFloat},
				"KERNEL_LAUNCH_US": {Name: "KERNEL_LAUNCH_US", Kind: KindFloat},
			},
		}))
		defaultReg = r
	})
	return defaultReg
}
