// Package schema provides the typed layer above raw PDL properties: a
// registry of property specifications grouped into versioned subschemas, unit
// parsing for quantitative values, and a validator that checks a platform's
// descriptors against the registered schemas.
//
// It plays the role the XML Schema Definition (XSD) plays in the paper:
// predefined Descriptor/Property subschemas have unique identification and
// versioning, new subschemas for novel platforms can be registered at any
// time, and subschemas inherit the base property vocabulary (schema
// inheritance).
package schema

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Kind classifies the value space of a property.
type Kind int

const (
	// KindString accepts any value (the base key/value mechanism).
	KindString Kind = iota
	// KindInt requires a decimal integer.
	KindInt
	// KindFloat requires a decimal floating-point number.
	KindFloat
	// KindBool requires "true" or "false".
	KindBool
	// KindSize requires an integer with an optional size unit (B/kB/MB/GB).
	KindSize
	// KindFrequency requires a number with a frequency unit (Hz/kHz/MHz/GHz).
	KindFrequency
	// KindBandwidth requires a number with a rate unit (B/s .. GB/s).
	KindBandwidth
	// KindDuration requires a number with a time unit (ns/us/ms/s).
	KindDuration
	// KindEnum requires one of a fixed value set.
	KindEnum
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindSize:
		return "size"
	case KindFrequency:
		return "frequency"
	case KindBandwidth:
		return "bandwidth"
	case KindDuration:
		return "duration"
	case KindEnum:
		return "enum"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one property: its value kind, whether a unit is mandatory,
// and for enums the allowed values.
type Spec struct {
	Name     string
	Kind     Kind
	Enum     []string // allowed values for KindEnum
	Doc      string   // one-line description for tooling output
	NeedUnit bool     // quantitative kinds: require an explicit unit
}

// check validates a property value against the spec.
func (s Spec) check(p core.Property) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("property %s: "+format, append([]any{p.Name}, args...)...)
	}
	if s.NeedUnit && p.Unit == "" {
		return fail("missing unit (kind %s)", s.Kind)
	}
	switch s.Kind {
	case KindString:
		return nil
	case KindInt:
		if _, err := strconv.ParseInt(p.Value, 10, 64); err != nil {
			return fail("value %q is not an integer", p.Value)
		}
	case KindFloat:
		if _, err := strconv.ParseFloat(p.Value, 64); err != nil {
			return fail("value %q is not a number", p.Value)
		}
	case KindBool:
		if p.Value != "true" && p.Value != "false" {
			return fail("value %q is not a bool", p.Value)
		}
	case KindSize:
		if _, err := ParseSize(p.Value, p.Unit); err != nil {
			return fail("%v", err)
		}
	case KindFrequency:
		if _, err := ParseFrequency(p.Value, p.Unit); err != nil {
			return fail("%v", err)
		}
	case KindBandwidth:
		if _, err := ParseBandwidth(p.Value, p.Unit); err != nil {
			return fail("%v", err)
		}
	case KindDuration:
		if _, err := ParseDuration(p.Value, p.Unit); err != nil {
			return fail("%v", err)
		}
	case KindEnum:
		for _, v := range s.Enum {
			if p.Value == v {
				return nil
			}
		}
		return fail("value %q not in enum %v", p.Value, s.Enum)
	}
	return nil
}

// ParseSize converts a value/unit pair into bytes. An empty unit means bytes.
func ParseSize(value, unit string) (uint64, error) {
	n, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("schema: bad size value %q", value)
	}
	switch strings.ToLower(unit) {
	case "", "b":
		return n, nil
	case "kb", "kib":
		return n << 10, nil
	case "mb", "mib":
		return n << 20, nil
	case "gb", "gib":
		return n << 30, nil
	case "tb", "tib":
		return n << 40, nil
	}
	return 0, fmt.Errorf("schema: unknown size unit %q", unit)
}

// ParseFrequency converts a value/unit pair into Hz. An empty unit means Hz.
func ParseFrequency(value, unit string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return 0, fmt.Errorf("schema: bad frequency value %q", value)
	}
	switch strings.ToLower(unit) {
	case "", "hz":
		return f, nil
	case "khz":
		return f * 1e3, nil
	case "mhz":
		return f * 1e6, nil
	case "ghz":
		return f * 1e9, nil
	}
	return 0, fmt.Errorf("schema: unknown frequency unit %q", unit)
}

// ParseBandwidth converts a value/unit pair into bytes per second.
func ParseBandwidth(value, unit string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return 0, fmt.Errorf("schema: bad bandwidth value %q", value)
	}
	switch strings.ToLower(unit) {
	case "", "b/s":
		return f, nil
	case "kb/s":
		return f * (1 << 10), nil
	case "mb/s":
		return f * (1 << 20), nil
	case "gb/s":
		return f * (1 << 30), nil
	}
	return 0, fmt.Errorf("schema: unknown bandwidth unit %q", unit)
}

// ParseDuration converts a value/unit pair into seconds. An empty unit means
// seconds.
func ParseDuration(value, unit string) (float64, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
	if err != nil {
		return 0, fmt.Errorf("schema: bad duration value %q", value)
	}
	switch strings.ToLower(unit) {
	case "", "s":
		return f, nil
	case "ms":
		return f * 1e-3, nil
	case "us", "µs":
		return f * 1e-6, nil
	case "ns":
		return f * 1e-9, nil
	}
	return 0, fmt.Errorf("schema: unknown duration unit %q", unit)
}
