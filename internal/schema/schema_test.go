package schema

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		value, unit string
		want        uint64
		ok          bool
	}{
		{"1", "", 1, true},
		{"1", "B", 1, true},
		{"1", "kB", 1024, true},
		{"1572864", "kB", 1572864 * 1024, true},
		{"2", "MB", 2 << 20, true},
		{"3", "GB", 3 << 30, true},
		{"1", "TB", 1 << 40, true},
		{"1", "KiB", 1024, true},
		{"-1", "kB", 0, false},
		{"x", "kB", 0, false},
		{"1", "parsecs", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSize(c.value, c.unit)
		if (err == nil) != c.ok {
			t.Errorf("ParseSize(%q,%q) err=%v; want ok=%v", c.value, c.unit, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseSize(%q,%q) = %d; want %d", c.value, c.unit, got, c.want)
		}
	}
}

func TestParseFrequencyBandwidthDuration(t *testing.T) {
	if hz, err := ParseFrequency("2660", "MHz"); err != nil || hz != 2.66e9 {
		t.Errorf("ParseFrequency = %g, %v", hz, err)
	}
	if hz, err := ParseFrequency("2.66", "GHz"); err != nil || hz != 2.66e9 {
		t.Errorf("ParseFrequency GHz = %g, %v", hz, err)
	}
	if _, err := ParseFrequency("1", "eV"); err == nil {
		t.Error("bad frequency unit accepted")
	}
	if bw, err := ParseBandwidth("5", "GB/s"); err != nil || bw != 5*(1<<30) {
		t.Errorf("ParseBandwidth = %g, %v", bw, err)
	}
	if _, err := ParseBandwidth("x", "GB/s"); err == nil {
		t.Error("bad bandwidth value accepted")
	}
	if s, err := ParseDuration("10", "us"); err != nil || s < 9.9e-6 || s > 10.1e-6 {
		t.Errorf("ParseDuration = %g, %v", s, err)
	}
	if _, err := ParseDuration("10", "fortnights"); err == nil {
		t.Error("bad duration unit accepted")
	}
}

func TestSpecCheckKinds(t *testing.T) {
	cases := []struct {
		spec Spec
		prop core.Property
		ok   bool
	}{
		{Spec{Kind: KindString}, core.Property{Name: "A", Value: "anything"}, true},
		{Spec{Kind: KindInt}, core.Property{Name: "A", Value: "15"}, true},
		{Spec{Kind: KindInt}, core.Property{Name: "A", Value: "15.5"}, false},
		{Spec{Kind: KindFloat}, core.Property{Name: "A", Value: "2.66"}, true},
		{Spec{Kind: KindFloat}, core.Property{Name: "A", Value: "fast"}, false},
		{Spec{Kind: KindBool}, core.Property{Name: "A", Value: "true"}, true},
		{Spec{Kind: KindBool}, core.Property{Name: "A", Value: "yes"}, false},
		{Spec{Kind: KindSize}, core.Property{Name: "A", Value: "48", Unit: "kB"}, true},
		{Spec{Kind: KindSize}, core.Property{Name: "A", Value: "48", Unit: "knots"}, false},
		{Spec{Kind: KindEnum, Enum: []string{"OpenCL", "Cuda"}}, core.Property{Name: "A", Value: "Cuda"}, true},
		{Spec{Kind: KindEnum, Enum: []string{"OpenCL", "Cuda"}}, core.Property{Name: "A", Value: "Brook"}, false},
		{Spec{Kind: KindBandwidth, NeedUnit: true}, core.Property{Name: "A", Value: "5"}, false},
		{Spec{Kind: KindBandwidth, NeedUnit: true}, core.Property{Name: "A", Value: "5", Unit: "GB/s"}, true},
		{Spec{Kind: KindDuration}, core.Property{Name: "A", Value: "10", Unit: "us"}, true},
		{Spec{Kind: KindFrequency}, core.Property{Name: "A", Value: "2660", Unit: "MHz"}, true},
	}
	for i, c := range cases {
		err := c.spec.check(c.prop)
		if (err == nil) != c.ok {
			t.Errorf("case %d (%s): err = %v; want ok=%v", i, c.spec.Kind, err, c.ok)
		}
	}
}

func TestRegistryLookupInheritance(t *testing.T) {
	reg := Default()
	// Subschema-specific spec.
	p := core.Property{Name: "MAX_COMPUTE_UNITS", Value: "15", Type: "ocl:oclDevicePropertyType"}
	spec, ok, err := reg.Lookup(p)
	if err != nil || !ok || spec.Kind != KindInt {
		t.Fatalf("Lookup ocl = %v %v %v", spec, ok, err)
	}
	// Inherited base spec through a subschema type.
	p2 := core.Property{Name: core.PropArchitecture, Value: "gpu", Type: "ocl:oclDevicePropertyType"}
	if _, ok, err := reg.Lookup(p2); err != nil || !ok {
		t.Fatalf("base inheritance failed: %v %v", ok, err)
	}
	// Unregistered type errors.
	p3 := core.Property{Name: "X", Value: "1", Type: "nope:thing"}
	if _, _, err := reg.Lookup(p3); err == nil {
		t.Fatal("unregistered subschema type must error")
	}
	// Ungoverned plain property: allowed, not governed.
	p4 := core.Property{Name: "MY_CUSTOM_TAG", Value: "1"}
	if _, ok, err := reg.Lookup(p4); err != nil || ok {
		t.Fatalf("open property should be ungoverned: %v %v", ok, err)
	}
}

func TestRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Subschema{Prefix: "", TypeName: "t", Version: "1.0"}); err == nil {
		t.Fatal("empty prefix must fail")
	}
	if err := r.Register(&Subschema{Prefix: "p", TypeName: "t", Version: "one"}); err == nil {
		t.Fatal("bad version must fail")
	}
	ok := &Subschema{Prefix: "p", TypeName: "t", Version: "1.2", Specs: map[string]Spec{}}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if n := len(r.Subschemas()); n != 1 {
		t.Fatalf("Subschemas() len = %d", n)
	}
}

func TestCompatibleVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"1.0", "1.5", true},
		{"1.0", "2.0", false},
		{"1.0", "1.0", true},
		{"1", "1.0", false},
		{"x.y", "1.0", false},
	}
	for _, c := range cases {
		if got := CompatibleVersions(c.a, c.b); got != c.want {
			t.Errorf("CompatibleVersions(%q,%q) = %v; want %v", c.a, c.b, got, c.want)
		}
	}
}

func validFixture(t testing.TB) *core.Platform {
	t.Helper()
	pl, err := core.NewBuilder("fixture").
		Master("cpu", core.Arch("x86"),
			core.WithUnitProp(core.PropClockMHz, "2660", "MHz"),
			core.WithProp(core.PropCores, "8")).
		Worker("gpu0", core.Arch("gpu")).
		Link(core.ICTypePCIe, "cpu", "gpu0", core.Bandwidth(5), core.Latency(10)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pl.FindPU("gpu0").Descriptor.Set(core.Property{
		Name: "MAX_COMPUTE_UNITS", Value: "15", Type: "ocl:oclDevicePropertyType",
	})
	return pl
}

func TestValidatePlatformOK(t *testing.T) {
	rep := ValidatePlatform(validFixture(t), Default())
	if !rep.OK() {
		t.Fatalf("valid platform rejected: %v", rep.Errors)
	}
	if rep.Err() != nil {
		t.Fatal("Err() should be nil for ok report")
	}
	if !strings.Contains(rep.String(), "ok") && len(rep.Warnings) == 0 {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestValidatePlatformTypedErrors(t *testing.T) {
	pl := validFixture(t)
	pl.FindPU("cpu").Descriptor.Set(core.Property{Name: core.PropCores, Value: "many", Fixed: true})
	rep := ValidatePlatform(pl, Default())
	if rep.OK() {
		t.Fatal("non-integer CORES must be rejected")
	}
	if !strings.Contains(rep.Err().Error(), "not an integer") {
		t.Fatalf("err = %v", rep.Err())
	}
}

func TestValidatePlatformStructuralErrorsSurface(t *testing.T) {
	pl := &core.Platform{} // no masters
	rep := ValidatePlatform(pl, Default())
	if rep.OK() {
		t.Fatal("structurally invalid platform accepted")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "no Master") {
			found = true
		}
	}
	if !found {
		t.Fatalf("structural problem not in report: %v", rep.Errors)
	}
}

func TestValidatePlatformWarnsOnOpenProperties(t *testing.T) {
	pl := validFixture(t)
	pl.FindPU("cpu").Descriptor.SetFixed("MY_SITE_LABEL", "rack42")
	rep := ValidatePlatform(pl, Default())
	if !rep.OK() {
		t.Fatalf("open property must not be an error: %v", rep.Errors)
	}
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[0], "MY_SITE_LABEL") {
		t.Fatalf("warnings = %v", rep.Warnings)
	}
	if !strings.Contains(rep.String(), "warning:") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestValidatePlatformEmptyPropertyName(t *testing.T) {
	pl := validFixture(t)
	pl.FindPU("cpu").Descriptor.Properties = append(pl.FindPU("cpu").Descriptor.Properties,
		core.Property{Name: "  ", Value: "x"})
	rep := ValidatePlatform(pl, Default())
	if rep.OK() || !strings.Contains(rep.Err().Error(), "empty name") {
		t.Fatalf("report = %+v", rep)
	}
}

func TestValidatePlatformChecksLinkDescriptors(t *testing.T) {
	pl := validFixture(t)
	// Corrupt the interconnect bandwidth property.
	m := pl.FindPU("cpu")
	for i := range m.Links {
		m.Links[i].Descriptor.Set(core.Property{Name: "BANDWIDTH", Value: "warp", Unit: "GB/s", Fixed: true})
	}
	rep := ValidatePlatform(pl, Default())
	if rep.OK() {
		t.Fatal("bad link bandwidth accepted")
	}
}

// Property-based: ParseSize is monotone in the unit ladder.
func TestQuickSizeUnitsMonotone(t *testing.T) {
	f := func(n uint16) bool {
		v := int64(n%1000) + 1
		s := func(u string) uint64 {
			b, err := ParseSize(strings.TrimSpace(fmtInt(v)), u)
			if err != nil {
				t.Fatalf("ParseSize: %v", err)
			}
			return b
		}
		return s("B") < s("kB") && s("kB") < s("MB") && s("MB") < s("GB")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
