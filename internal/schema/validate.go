package schema

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Report collects validation findings at two severities. A platform with
// errors is rejected; warnings flag open-vocabulary properties that no
// registered schema constrains (legal, but worth surfacing to tooling).
type Report struct {
	Errors   []string
	Warnings []string
}

// OK reports whether validation found no errors.
func (r *Report) OK() bool { return len(r.Errors) == 0 }

// Err returns an error summarising the report when it contains errors.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("schema: %d error(s): %s", len(r.Errors), strings.Join(r.Errors, "; "))
}

// String renders the report for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "error: %s\n", e)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if r.OK() && len(r.Warnings) == 0 {
		b.WriteString("ok\n")
	}
	return b.String()
}

// ValidatePlatform checks a platform against both the structural machine
// model (core.Platform.Validate) and the typed property schemas in the
// registry. Property names must be non-empty; values of schema-governed
// properties must parse according to their spec kind; xsi-typed properties
// must reference registered subschemas.
func ValidatePlatform(pl *core.Platform, reg *Registry) *Report {
	rep := &Report{}
	if err := pl.Validate(); err != nil {
		if ve, ok := core.AsValidationError(err); ok {
			rep.Errors = append(rep.Errors, ve.Problems...)
		} else {
			rep.Errors = append(rep.Errors, err.Error())
		}
	}
	checkDesc := func(where string, d core.Descriptor) {
		for _, p := range d.Properties {
			if strings.TrimSpace(p.Name) == "" {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: property with empty name", where))
				continue
			}
			spec, governed, err := reg.Lookup(p)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", where, err))
				continue
			}
			if !governed {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("%s: property %s not covered by any registered schema", where, p.Name))
				continue
			}
			if err := spec.check(p); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", where, err))
			}
		}
	}
	pl.Walk(func(pu, _ *core.PU) bool {
		where := fmt.Sprintf("%s %q", pu.Class, pu.ID)
		checkDesc(where, pu.Descriptor)
		for _, m := range pu.Memory {
			checkDesc(fmt.Sprintf("%s memory %q", where, m.ID), m.Descriptor)
		}
		for _, ic := range pu.Links {
			checkDesc(fmt.Sprintf("%s interconnect %q", where, ic.ID), ic.Descriptor)
		}
		return true
	})
	return rep
}
