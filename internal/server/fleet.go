package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Fleet metrics federation: pdlserved already knows every live worker
// through the lease table, so it is the natural scrape authority — one
// process polls each worker's /metrics, keeps the latest taskrt_worker_*
// families per node, and re-exports them on its own /metrics as node-
// labelled taskrt_fleet_* series. Operators (and CI) point one scrape at
// the master and see kernel latency histograms for the whole cluster; a
// node that dies, deregisters, or stops answering has its series removed
// rather than frozen at their last values.

// DefaultFleetScrapeEvery is the sweep interval StartFleetScrape uses when
// given a non-positive duration.
const DefaultFleetScrapeEvery = 10 * time.Second

// maxScrapeBody bounds how much of a worker exposition the federator will
// read — a malfunctioning worker must not balloon the master's memory.
const maxScrapeBody = 8 << 20

// fleetScrapeFailLimit is how many consecutive failed scrapes a leased
// worker gets before its federated series are dropped (it re-appears on
// the next success). One transient timeout should not blank a node.
const fleetScrapeFailLimit = 2

// StartFleetScrape launches the background federation sweep and returns a
// stop function (idempotent). every <= 0 takes DefaultFleetScrapeEvery.
func (s *Server) StartFleetScrape(every time.Duration) (stop func()) {
	if every <= 0 {
		every = DefaultFleetScrapeEvery
	}
	timeout := every
	if timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		fails := map[string]int{}
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.scrapeFleet(client, fails)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// scrapeFleet runs one federation sweep: every leased worker is scraped
// and its families replace the previous snapshot (so repeated sweeps can
// never double-count); federated nodes whose lease has expired, or that
// have failed fleetScrapeFailLimit sweeps in a row, are dropped. fails is
// the sweep goroutine's private consecutive-failure ledger.
func (s *Server) scrapeFleet(client *http.Client, fails map[string]int) {
	leases := s.workers.list()
	live := make(map[string]bool, len(leases))
	for _, l := range leases {
		live[l.ID] = true
	}
	// Lease expiry is authoritative: no lease, no federated series.
	for _, node := range s.fleet.Nodes() {
		if !live[node] {
			s.fleet.Drop(node)
		}
	}
	for id := range fails {
		if !live[id] {
			delete(fails, id)
		}
	}
	for _, l := range leases {
		fams, err := scrapeWorker(client, l.Addr)
		if err != nil {
			s.metrics.fleetScrapeErrs.With(l.ID).Inc()
			if fails[l.ID]++; fails[l.ID] >= fleetScrapeFailLimit {
				s.fleet.Drop(l.ID)
			}
			continue
		}
		delete(fails, l.ID)
		s.metrics.fleetScrapes.With(l.ID).Inc()
		s.fleet.Update(l.ID, fams)
	}
	s.metrics.fleetLastScrape.Set(float64(time.Now().Unix()))
}

// scrapeWorker fetches and parses one worker's Prometheus exposition.
func scrapeWorker(client *http.Client, addr string) ([]metrics.PromFamily, error) {
	url := strings.TrimSuffix(addr, "/") + "/metrics"
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		io.CopyN(io.Discard, resp.Body, 512)
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	return metrics.ParsePromText(io.LimitReader(resp.Body, maxScrapeBody))
}
