package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeWorker serves a minimal pdlworkerd-style exposition whose counter
// value is controllable, plus a switch to start failing scrapes.
type fakeWorker struct {
	execs atomic.Int64
	fail  atomic.Bool
	srv   *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	fw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if fw.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `# HELP taskrt_worker_executions_total Kernels executed.
# TYPE taskrt_worker_executions_total counter
taskrt_worker_executions_total{codelet="gemm",arch="x86"} %d
# HELP taskrt_worker_kernel_seconds Kernel latency.
# TYPE taskrt_worker_kernel_seconds histogram
taskrt_worker_kernel_seconds_bucket{codelet="gemm",le="0.1"} %d
taskrt_worker_kernel_seconds_bucket{codelet="gemm",le="+Inf"} %d
taskrt_worker_kernel_seconds_sum{codelet="gemm"} 0.5
taskrt_worker_kernel_seconds_count{codelet="gemm"} %d
# HELP pdlworkerd_uptime_seconds Not a taskrt_worker_ family; must not federate.
# TYPE pdlworkerd_uptime_seconds gauge
pdlworkerd_uptime_seconds 12
`, fw.execs.Load(), fw.execs.Load(), fw.execs.Load(), fw.execs.Load())
	}))
	t.Cleanup(fw.srv.Close)
	return fw
}

func scrapeMaster(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestFleetScrapeFederatesLeasedWorkers(t *testing.T) {
	s, ts := workerServer(t, 0)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.execs.Store(3)
	w2.execs.Store(7)
	postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: w1.srv.URL})
	postJSON(t, ts.URL+"/workers/w2", WorkerInfo{ID: "w2", Addr: w2.srv.URL})

	client := &http.Client{}
	fails := map[string]int{}
	s.scrapeFleet(client, fails)
	body := scrapeMaster(t, ts)

	for _, want := range []string{
		`taskrt_fleet_executions_total{node="w1",codelet="gemm",arch="x86"} 3`,
		`taskrt_fleet_executions_total{node="w2",codelet="gemm",arch="x86"} 7`,
		`taskrt_fleet_kernel_seconds_bucket{node="w1",codelet="gemm",le="+Inf"} 3`,
		`taskrt_fleet_kernel_seconds_count{node="w2",codelet="gemm"} 7`,
		`pdlserved_fleet_nodes 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("master /metrics missing %q", want)
		}
	}
	if strings.Contains(body, "pdlworkerd_uptime_seconds{node=") {
		t.Error("non-taskrt_worker_ family leaked into the federated export")
	}

	// Dedup: a second sweep replaces the snapshot — the updated value
	// appears exactly once, never summed with the previous scrape.
	w1.execs.Store(5)
	s.scrapeFleet(client, fails)
	body = scrapeMaster(t, ts)
	if n := strings.Count(body, `taskrt_fleet_executions_total{node="w1"`); n != 1 {
		t.Fatalf("w1 fleet counter appears %d times after two sweeps; want exactly 1", n)
	}
	if !strings.Contains(body, `taskrt_fleet_executions_total{node="w1",codelet="gemm",arch="x86"} 5`) {
		t.Error("second sweep did not replace w1's counter value")
	}
}

func TestFleetScrapeDropsDeadNodes(t *testing.T) {
	s, ts := workerServer(t, 0)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.execs.Store(1)
	w2.execs.Store(1)
	postJSON(t, ts.URL+"/workers/w1", WorkerInfo{ID: "w1", Addr: w1.srv.URL})
	postJSON(t, ts.URL+"/workers/w2", WorkerInfo{ID: "w2", Addr: w2.srv.URL})

	client := &http.Client{}
	fails := map[string]int{}
	s.scrapeFleet(client, fails)
	if got := s.fleet.Nodes(); len(got) != 2 {
		t.Fatalf("nodes after first sweep = %v; want 2", got)
	}

	// Explicit deregistration removes the series immediately.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/workers/w2", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete w2: %v status=%v", err, resp.StatusCode)
	}
	if body := scrapeMaster(t, ts); strings.Contains(body, `taskrt_fleet_executions_total{node="w2"`) {
		t.Error("w2 series survived explicit deregistration")
	}

	// A failing worker keeps its last snapshot for one bad sweep, then is
	// dropped on the second consecutive failure.
	w1.fail.Store(true)
	s.scrapeFleet(client, fails)
	if body := scrapeMaster(t, ts); !strings.Contains(body, `taskrt_fleet_executions_total{node="w1"`) {
		t.Error("w1 series vanished after a single failed scrape")
	}
	s.scrapeFleet(client, fails)
	if body := scrapeMaster(t, ts); strings.Contains(body, `taskrt_fleet_executions_total{node="w1"`) {
		t.Errorf("w1 series survived %d consecutive failed scrapes", fleetScrapeFailLimit)
	}

	// Recovery: the node re-appears on the next successful sweep.
	w1.fail.Store(false)
	s.scrapeFleet(client, fails)
	if body := scrapeMaster(t, ts); !strings.Contains(body, `taskrt_fleet_executions_total{node="w1"`) {
		t.Error("w1 series did not re-appear after the worker recovered")
	}
}
