package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen for an in-memory service: sub-millisecond cache hits up
// to second-scale uploads.
var latencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// metrics collects request counters and a latency histogram, rendered in
// Prometheus text exposition format by WriteTo. Everything is guarded by one
// mutex; the critical sections are a few array writes, far off the request
// hot path's real costs.
type metrics struct {
	mu          sync.Mutex
	requests    map[routeKey]uint64
	bucketCount []uint64 // per latencyBuckets bound; +Inf is implicit in count
	latencySum  float64
	latencyN    uint64
	inflight    int64
	rateLimited uint64
	bodyTooBig  uint64
}

type routeKey struct {
	method string
	route  string // the registered pattern, not the raw path (bounded cardinality)
	code   int
}

func newMetrics() *metrics {
	return &metrics{
		requests:    map[routeKey]uint64{},
		bucketCount: make([]uint64, len(latencyBuckets)),
	}
}

func (m *metrics) observe(method, route string, code int, dur time.Duration) {
	s := dur.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeKey{method, route, code}]++
	m.latencySum += s
	m.latencyN++
	for i, bound := range latencyBuckets {
		if s <= bound {
			m.bucketCount[i]++
		}
	}
}

func (m *metrics) addInflight(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

func (m *metrics) incRateLimited() {
	m.mu.Lock()
	m.rateLimited++
	m.mu.Unlock()
}

func (m *metrics) incBodyTooBig() {
	m.mu.Lock()
	m.bodyTooBig++
	m.mu.Unlock()
}

// requestCount returns the total requests observed for a route pattern
// (any method/code); used by tests to assert counters advance.
func (m *metrics) requestCount(route string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for k, v := range m.requests {
		if k.route == route {
			n += v
		}
	}
	return n
}

// gauges the server layer injects at render time.
type gaugeSet struct {
	storeVersion  uint64
	platforms     int
	cacheHits     uint64
	cacheMisses   uint64
	cacheEntries  int
	cacheHitRatio float64
}

// render writes the Prometheus text format.
func (m *metrics) render(b *strings.Builder, g gaugeSet) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(b, "# HELP pdlserved_requests_total Requests served, by method, route pattern and status code.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_requests_total counter\n")
	keys := make([]routeKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.route != c.route {
			return a.route < c.route
		}
		if a.method != c.method {
			return a.method < c.method
		}
		return a.code < c.code
	})
	for _, k := range keys {
		fmt.Fprintf(b, "pdlserved_requests_total{method=%q,route=%q,code=\"%d\"} %d\n", k.method, k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(b, "# HELP pdlserved_request_seconds Request latency histogram.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_request_seconds histogram\n")
	for i, bound := range latencyBuckets {
		fmt.Fprintf(b, "pdlserved_request_seconds_bucket{le=\"%g\"} %d\n", bound, m.bucketCount[i])
	}
	fmt.Fprintf(b, "pdlserved_request_seconds_bucket{le=\"+Inf\"} %d\n", m.latencyN)
	fmt.Fprintf(b, "pdlserved_request_seconds_sum %g\n", m.latencySum)
	fmt.Fprintf(b, "pdlserved_request_seconds_count %d\n", m.latencyN)

	fmt.Fprintf(b, "# HELP pdlserved_inflight_requests Requests currently being served.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_inflight_requests gauge\n")
	fmt.Fprintf(b, "pdlserved_inflight_requests %d\n", m.inflight)

	fmt.Fprintf(b, "# HELP pdlserved_ratelimited_total Requests rejected by the per-client rate limiter.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_ratelimited_total counter\n")
	fmt.Fprintf(b, "pdlserved_ratelimited_total %d\n", m.rateLimited)

	fmt.Fprintf(b, "# HELP pdlserved_body_too_large_total Uploads rejected for exceeding the body limit.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_body_too_large_total counter\n")
	fmt.Fprintf(b, "pdlserved_body_too_large_total %d\n", m.bodyTooBig)

	fmt.Fprintf(b, "# HELP pdlserved_store_version Registry store version (committed changes).\n")
	fmt.Fprintf(b, "# TYPE pdlserved_store_version gauge\n")
	fmt.Fprintf(b, "pdlserved_store_version %d\n", g.storeVersion)

	fmt.Fprintf(b, "# HELP pdlserved_platforms Platforms currently stored.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_platforms gauge\n")
	fmt.Fprintf(b, "pdlserved_platforms %d\n", g.platforms)

	fmt.Fprintf(b, "# HELP pdlserved_query_cache_hits_total Query-cache hits.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_query_cache_hits_total counter\n")
	fmt.Fprintf(b, "pdlserved_query_cache_hits_total %d\n", g.cacheHits)

	fmt.Fprintf(b, "# HELP pdlserved_query_cache_misses_total Query-cache misses.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_query_cache_misses_total counter\n")
	fmt.Fprintf(b, "pdlserved_query_cache_misses_total %d\n", g.cacheMisses)

	fmt.Fprintf(b, "# HELP pdlserved_query_cache_entries Live query-cache entries.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_query_cache_entries gauge\n")
	fmt.Fprintf(b, "pdlserved_query_cache_entries %d\n", g.cacheEntries)

	fmt.Fprintf(b, "# HELP pdlserved_query_cache_hit_ratio Hits over lookups since start.\n")
	fmt.Fprintf(b, "# TYPE pdlserved_query_cache_hit_ratio gauge\n")
	fmt.Fprintf(b, "pdlserved_query_cache_hit_ratio %g\n", g.cacheHitRatio)
}
