package server

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen for an in-memory service: sub-millisecond cache hits up
// to second-scale uploads.
var latencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// serverMetrics instruments the HTTP layer on the shared internal/metrics
// substrate. Each Server owns its own registry (so tests can spin up many
// servers without family-name collisions); /metrics renders it followed by
// metrics.Default, where the task runtime registers its taskrt_* families —
// one scrape covers the service and any in-process runtime activity.
type serverMetrics struct {
	reg         *metrics.Registry
	requests    *metrics.CounterVec // method, route pattern, status code
	latency     *metrics.Histogram
	inflight    *metrics.Gauge
	rateLimited *metrics.Counter
	bodyTooBig  *metrics.Counter
}

func newMetrics() *serverMetrics {
	reg := metrics.New()
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("pdlserved_requests_total",
			"Requests served, by method, route pattern and status code.",
			"method", "route", "code"),
		latency: reg.Histogram("pdlserved_request_seconds",
			"Request latency histogram.", latencyBuckets),
		inflight: reg.Gauge("pdlserved_inflight_requests",
			"Requests currently being served."),
		rateLimited: reg.Counter("pdlserved_ratelimited_total",
			"Requests rejected by the per-client rate limiter."),
		bodyTooBig: reg.Counter("pdlserved_body_too_large_total",
			"Uploads rejected for exceeding the body limit."),
	}
}

func (m *serverMetrics) observe(method, route string, code int, dur time.Duration) {
	m.requests.With(method, route, strconv.Itoa(code)).Inc()
	m.latency.Observe(dur.Seconds())
}

// registerGauges wires the render-time gauges over registry/cache state.
// Called once from New, after the Server's dependencies exist.
func (m *serverMetrics) registerGauges(s *Server) {
	m.reg.GaugeFunc("pdlserved_store_version",
		"Registry store version (committed changes).",
		func() float64 { return float64(s.reg.Version()) })
	m.reg.GaugeFunc("pdlserved_platforms",
		"Platforms currently stored.",
		func() float64 { return float64(s.reg.Len()) })
	m.reg.CounterFunc("pdlserved_query_cache_hits_total",
		"Query-cache hits.",
		func() float64 { return float64(s.reg.CacheStats().Hits) })
	m.reg.CounterFunc("pdlserved_query_cache_misses_total",
		"Query-cache misses.",
		func() float64 { return float64(s.reg.CacheStats().Misses) })
	m.reg.GaugeFunc("pdlserved_query_cache_entries",
		"Live query-cache entries.",
		func() float64 { return float64(s.reg.CacheStats().Entries) })
	m.reg.GaugeFunc("pdlserved_query_cache_hit_ratio",
		"Hits over lookups since start.",
		func() float64 { return s.reg.CacheStats().HitRatio() })
}
