package server

import (
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/registry"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram, chosen for an in-memory service: sub-millisecond cache hits up
// to second-scale uploads.
var latencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// serverMetrics instruments the HTTP layer on the shared internal/metrics
// substrate. Each Server owns its own registry (so tests can spin up many
// servers without family-name collisions); /metrics renders it followed by
// metrics.Default, where the task runtime registers its taskrt_* families —
// one scrape covers the service and any in-process runtime activity.
type serverMetrics struct {
	reg              *metrics.Registry
	requests         *metrics.CounterVec // method, route pattern, status code
	latency          *metrics.Histogram
	inflight         *metrics.Gauge
	rateLimited      *metrics.Counter
	bodyTooBig       *metrics.Counter
	readOnlyRejected *metrics.Counter

	fleetScrapes    *metrics.CounterVec // node
	fleetScrapeErrs *metrics.CounterVec // node
	fleetLastScrape *metrics.Gauge      // unix seconds of last completed sweep
}

func newMetrics() *serverMetrics {
	reg := metrics.New()
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("pdlserved_requests_total",
			"Requests served, by method, route pattern and status code.",
			"method", "route", "code"),
		latency: reg.Histogram("pdlserved_request_seconds",
			"Request latency histogram.", latencyBuckets),
		inflight: reg.Gauge("pdlserved_inflight_requests",
			"Requests currently being served."),
		rateLimited: reg.Counter("pdlserved_ratelimited_total",
			"Requests rejected by the per-client rate limiter."),
		bodyTooBig: reg.Counter("pdlserved_body_too_large_total",
			"Uploads rejected for exceeding the body limit."),
		readOnlyRejected: reg.Counter("pdlserved_readonly_rejected_total",
			"Mutations rejected because the durability layer is read-only."),
		fleetScrapes: reg.CounterVec("pdlserved_fleet_scrapes_total",
			"Successful worker /metrics scrapes, by node.", "node"),
		fleetScrapeErrs: reg.CounterVec("pdlserved_fleet_scrape_errors_total",
			"Failed worker /metrics scrapes, by node.", "node"),
		fleetLastScrape: reg.Gauge("pdlserved_fleet_last_scrape_unix",
			"Unix time of the last completed federation sweep (0 before the first)."),
	}
}

func (m *serverMetrics) observe(method, route string, code int, dur time.Duration) {
	m.requests.With(method, route, strconv.Itoa(code)).Inc()
	m.latency.Observe(dur.Seconds())
}

// registerGauges wires the render-time gauges over registry/cache state.
// Called once from New, after the Server's dependencies exist.
func (m *serverMetrics) registerGauges(s *Server) {
	m.reg.GaugeFunc("pdlserved_store_version",
		"Registry store version (committed changes).",
		func() float64 { return float64(s.reg.Version()) })
	m.reg.GaugeFunc("pdlserved_platforms",
		"Platforms currently stored.",
		func() float64 { return float64(s.reg.Len()) })
	m.reg.CounterFunc("pdlserved_query_cache_hits_total",
		"Query-cache hits.",
		func() float64 { return float64(s.reg.CacheStats().Hits) })
	m.reg.CounterFunc("pdlserved_query_cache_misses_total",
		"Query-cache misses.",
		func() float64 { return float64(s.reg.CacheStats().Misses) })
	m.reg.GaugeFunc("pdlserved_query_cache_entries",
		"Live query-cache entries.",
		func() float64 { return float64(s.reg.CacheStats().Entries) })
	m.reg.GaugeFunc("pdlserved_query_cache_hit_ratio",
		"Hits over lookups since start.",
		func() float64 { return s.reg.CacheStats().HitRatio() })
	m.reg.GaugeFunc("pdlserved_workers",
		"Cluster workers holding an active lease.",
		func() float64 { return float64(s.workers.len()) })
	m.reg.GaugeFunc("pdlserved_fleet_nodes",
		"Worker nodes represented in the federated taskrt_fleet_* export.",
		func() float64 { return float64(len(s.fleet.Nodes())) })
	m.reg.GaugeFunc("pdlserved_draining",
		"1 after BeginDrain: worker leases are being refused ahead of shutdown.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
}

// fsyncBuckets span commodity-SSD fsync latencies (tens of µs) up to a
// spinning disk or overloaded volume (hundreds of ms).
var fsyncBuckets = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5}

// registerWAL wires the pdlserved_wal_* families over the durability
// layer: append/replay/compaction counters, journal size and snapshot age
// gauges, the read-only flag, and an fsync latency histogram fed by the
// journal's commit path.
func (m *serverMetrics) registerWAL(p *registry.Persistence) {
	m.reg.CounterFunc("pdlserved_wal_appends_total",
		"Journal records appended (committed mutations).",
		func() float64 { return float64(p.Stats().Appends) })
	m.reg.CounterFunc("pdlserved_wal_append_errors_total",
		"Journal append or fsync failures (each flips read-only mode).",
		func() float64 { return float64(p.Stats().AppendErrors) })
	m.reg.CounterFunc("pdlserved_wal_replayed_records_total",
		"Journal records replayed during the last recovery.",
		func() float64 { return float64(p.Stats().Replayed) })
	m.reg.CounterFunc("pdlserved_wal_torn_tails_total",
		"Torn journal tails discarded during recovery.",
		func() float64 { return float64(p.Stats().TornTails) })
	m.reg.CounterFunc("pdlserved_wal_skipped_records_total",
		"Journal records that could not be re-applied during replay.",
		func() float64 { return float64(p.Stats().SkippedRecs) })
	m.reg.CounterFunc("pdlserved_wal_snapshots_total",
		"Compacted snapshots written by this process.",
		func() float64 { return float64(p.Stats().Snapshots) })
	m.reg.GaugeFunc("pdlserved_wal_journal_bytes",
		"Size of the active journal in bytes.",
		func() float64 { return float64(p.Stats().JournalBytes) })
	m.reg.GaugeFunc("pdlserved_wal_journal_records",
		"Records in the active journal (replay cost of a restart now).",
		func() float64 { return float64(p.Stats().JournalRecs) })
	m.reg.GaugeFunc("pdlserved_wal_snapshot_age_seconds",
		"Seconds since the newest snapshot was written (-1 before the first).",
		func() float64 {
			at := p.Stats().SnapshotAt
			if at.IsZero() {
				return -1
			}
			return time.Since(at).Seconds()
		})
	m.reg.GaugeFunc("pdlserved_wal_read_only",
		"1 when the store has degraded to read-only after a journal failure.",
		func() float64 {
			if p.ReadOnly() {
				return 1
			}
			return 0
		})
	fsync := m.reg.Histogram("pdlserved_wal_fsync_seconds",
		"Journal fsync latency per committed mutation.", fsyncBuckets)
	p.SetFsyncObserver(func(d time.Duration) { fsync.Observe(d.Seconds()) })
}
