package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// statusWriter records the status code and bytes written, for access logs
// and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer so wrapped handlers keep
// streaming (the plain struct embedding satisfies http.Flusher only if the
// method is forwarded explicitly — interface assertions on the wrapper would
// otherwise fail and handlers would silently buffer).
func (w *statusWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tokenBucket is one client's budget under the rate limiter.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter applies a token bucket per client key. A zero/negative rate
// disables limiting.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens added per second
	burst   float64 // bucket capacity
	clients map[string]*tokenBucket
	now     func() time.Time // injectable for tests
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: burst, clients: map[string]*tokenBucket{}, now: time.Now}
}

// allow consumes one token for the client, refilling by elapsed time first.
func (l *rateLimiter) allow(client string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[client]
	if !ok {
		// Prune idle clients opportunistically so the map stays bounded by
		// the set of recently active peers rather than every address ever
		// seen.
		if len(l.clients) >= 4096 {
			for k, old := range l.clients {
				if now.Sub(old.last) > time.Minute {
					delete(l.clients, k)
				}
			}
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientKey extracts the peer identity used for rate limiting: the remote
// host without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// accessRecord is one structured access-log line (JSON, one object per line).
type accessRecord struct {
	Time   string  `json:"ts"`
	Client string  `json:"client"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	Millis float64 `json:"ms"`
	Route  string  `json:"route,omitempty"`
}

// accessLogger serialises log writes; safe for concurrent handlers.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (a *accessLogger) log(rec accessRecord) {
	if a == nil || a.w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.w.Write(append(line, '\n'))
}
