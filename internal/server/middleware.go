package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// statusWriter records the status code and bytes written, for access logs
// and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the underlying writer so wrapped handlers keep
// streaming (the plain struct embedding satisfies http.Flusher only if the
// method is forwarded explicitly — interface assertions on the wrapper would
// otherwise fail and handlers would silently buffer).
func (w *statusWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tokenBucket is one client's budget under the rate limiter.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// limiterSweepEvery is how often the limiter scans for stale buckets. The
// sweep rides on the allow() path (no background goroutine to leak), so
// it runs at most once per interval and only under traffic — which is
// exactly when the map can grow.
const limiterSweepEvery = time.Minute

// limiterMaxClients forces an immediate sweep when exceeded, bounding the
// map even if a burst of unique clients arrives within one sweep interval.
const limiterMaxClients = 4096

// rateLimiter applies a token bucket per client key. A zero/negative rate
// disables limiting. Stale buckets are evicted: a one-shot client's entry
// survives at most the idle TTL plus one sweep interval, so the map tracks
// recently active peers instead of every address ever seen (previously it
// only pruned once 4096 clients had accumulated — a slow leak under
// steady real-world traffic that never reached the threshold).
type rateLimiter struct {
	mu        sync.Mutex
	rate      float64 // tokens added per second
	burst     float64 // bucket capacity
	clients   map[string]*tokenBucket
	lastSweep time.Time
	now       func() time.Time // injectable for tests
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: burst, clients: map[string]*tokenBucket{}, now: time.Now}
}

// idleTTL is how long an untouched bucket is kept. It is never shorter
// than the time a drained bucket takes to refill completely: evicting
// sooner would hand a throttled client a fresh full burst on its next
// request.
func (l *rateLimiter) idleTTL() time.Duration {
	ttl := 5 * time.Minute
	if l.rate > 0 {
		if refill := time.Duration(l.burst / l.rate * float64(time.Second)); refill > ttl {
			ttl = refill
		}
	}
	return ttl
}

// sweepLocked drops buckets idle past the TTL. Caller holds mu.
func (l *rateLimiter) sweepLocked(now time.Time) {
	ttl := l.idleTTL()
	for k, b := range l.clients {
		if now.Sub(b.last) > ttl {
			delete(l.clients, k)
		}
	}
	l.lastSweep = now
}

// size reports the tracked-client count (for tests and bound checks).
func (l *rateLimiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// allow consumes one token for the client, refilling by elapsed time first.
func (l *rateLimiter) allow(client string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.Sub(l.lastSweep) >= limiterSweepEvery || len(l.clients) >= limiterMaxClients {
		l.sweepLocked(now)
	}
	b, ok := l.clients[client]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// clientKey extracts the peer identity used for rate limiting: the remote
// host without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// accessRecord is one structured access-log line (JSON, one object per line).
type accessRecord struct {
	Time   string  `json:"ts"`
	Client string  `json:"client"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	Millis float64 `json:"ms"`
	Route  string  `json:"route,omitempty"`
}

// accessLogger serialises log writes; safe for concurrent handlers.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (a *accessLogger) log(rec accessRecord) {
	if a == nil || a.w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.w.Write(append(line, '\n'))
}
