package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// Regression: statusWriter embeds the http.ResponseWriter interface, which
// does not promote the concrete writer's Flush method, so wrapped handlers
// asserting http.Flusher saw the assertion fail and silently buffered their
// streaming output (e.g. the JSONL trace feed). The wrapper must forward
// Flush explicitly.
func TestStatusWriterFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}

	f, ok := interface{}(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if sw.status != http.StatusOK {
		t.Fatalf("status after Flush = %d, want %d (flushing commits headers)", sw.status, http.StatusOK)
	}
}

// The full middleware chain must hand streaming handlers a flushable writer.
func TestWrapPreservesFlusher(t *testing.T) {
	s := New(Config{})
	sawFlusher := false
	h := s.wrap("/stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			w.Write([]byte("chunk\n"))
			f.Flush()
		}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !sawFlusher {
		t.Fatal("handler behind wrap did not receive an http.Flusher")
	}
	if !rec.Flushed {
		t.Fatal("handler Flush did not propagate through the middleware chain")
	}
}
