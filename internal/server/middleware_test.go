package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Regression: statusWriter embeds the http.ResponseWriter interface, which
// does not promote the concrete writer's Flush method, so wrapped handlers
// asserting http.Flusher saw the assertion fail and silently buffered their
// streaming output (e.g. the JSONL trace feed). The wrapper must forward
// Flush explicitly.
func TestStatusWriterFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}

	f, ok := interface{}(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if sw.status != http.StatusOK {
		t.Fatalf("status after Flush = %d, want %d (flushing commits headers)", sw.status, http.StatusOK)
	}
}

// The full middleware chain must hand streaming handlers a flushable writer.
// TestRateLimiterEvictsStaleClients pins the bounded-memory property: a
// client that stops sending requests is dropped from the bucket map after
// the idle TTL, instead of accumulating one entry per address forever.
func TestRateLimiterEvictsStaleClients(t *testing.T) {
	l := newRateLimiter(10, 20)
	now := time.Unix(1700000000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 100; i++ {
		if !l.allow(fmt.Sprintf("10.0.0.%d", i)) {
			t.Fatalf("fresh client %d throttled", i)
		}
	}
	if got := l.size(); got != 100 {
		t.Fatalf("tracked clients = %d, want 100", got)
	}

	// One client stays active past the idle TTL; the other 99 go quiet.
	ttl := l.idleTTL()
	for i := 0; i < 4; i++ {
		now = now.Add(ttl/2 + time.Second)
		l.allow("10.0.0.0")
	}
	// The next request after the TTL triggers the periodic sweep.
	now = now.Add(limiterSweepEvery)
	l.allow("10.9.9.9")
	if got := l.size(); got != 2 { // the active client + the new one
		t.Fatalf("after sweep tracked clients = %d, want 2", got)
	}
	if _, ok := l.clients["10.0.0.0"]; !ok {
		t.Fatal("active client was evicted")
	}
	if _, ok := l.clients["10.0.0.50"]; ok {
		t.Fatal("stale client survived the sweep")
	}
}

// TestRateLimiterEvictionKeepsThrottleState ensures eviction cannot be used
// to launder a drained bucket: the TTL is at least the full-refill time, so
// by the time a bucket is evictable its replacement would be full anyway.
func TestRateLimiterEvictionKeepsThrottleState(t *testing.T) {
	l := newRateLimiter(1, 600) // refill time 10 min > 5 min floor
	if got, want := l.idleTTL(), 10*time.Minute; got != want {
		t.Fatalf("idleTTL = %v, want %v", got, want)
	}
}

// TestRateLimiterSweepBoundsBurstOfUniqueClients forces the size-triggered
// sweep: even within one sweep interval the map cannot grow without bound.
func TestRateLimiterSweepBoundsBurstOfUniqueClients(t *testing.T) {
	l := newRateLimiter(10, 20)
	now := time.Unix(1700000000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < limiterMaxClients+500; i++ {
		l.allow(fmt.Sprintf("c-%d", i))
		// Each client is one-shot and immediately idle.
		now = now.Add(l.idleTTL() / limiterMaxClients * 2)
	}
	if got := l.size(); got > limiterMaxClients {
		t.Fatalf("tracked clients = %d, want <= %d", got, limiterMaxClients)
	}
}

func TestWrapPreservesFlusher(t *testing.T) {
	s := New(Config{})
	sawFlusher := false
	h := s.wrap("/stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			w.Write([]byte("chunk\n"))
			f.Flush()
		}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !sawFlusher {
		t.Fatal("handler behind wrap did not receive an http.Flusher")
	}
	if !rec.Flushed {
		t.Fatal("handler Flush did not propagate through the middleware chain")
	}
}
