package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/predict"
	"repro/internal/registry"
)

// durableServer stands up a Server backed by a data dir, returning the
// pieces a test needs to kill and resurrect it.
type durableServer struct {
	dir     string
	reg     *registry.Registry
	tuner   *predict.Tuner
	persist *registry.Persistence
	srv     *Server
	url     string
}

func newDurableServer(t testing.TB, dir string) *durableServer {
	t.Helper()
	reg := registry.New()
	tuner := predict.NewTuner()
	persist, err := registry.OpenPersistence(dir, reg, tuner, registry.PersistOptions{Fsync: false, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { persist.Close() })
	s, ts := newTestServer(t, Config{Registry: reg, Tuner: tuner, Persist: persist})
	return &durableServer{dir: dir, reg: reg, tuner: tuner, persist: persist, srv: s, url: ts.URL}
}

// TestDurableRestartServesIdenticalState is the HTTP face of the
// kill-and-restart property: upload, overwrite, observe, hard-stop the
// process (close without compaction), restart over the same dir, and the
// new server answers with identical ETags, revisions, store version and
// prediction state.
func TestDurableRestartServesIdenticalState(t *testing.T) {
	dir := t.TempDir()
	d := newDurableServer(t, dir)

	resp, body := doReq(t, "PUT", d.url+"/platforms/gtx480", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status = %d: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	for i := 1; i <= 3; i++ {
		obs := fmt.Sprintf(`{"codelet":"dgemm","size":%d,"seconds":%g}`, 512*i, 0.004*float64(i))
		resp, body = doReq(t, "POST", d.url+"/platforms/gtx480/observe", []byte(obs), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe status = %d: %s", resp.StatusCode, body)
		}
	}
	resp, body = doReq(t, "GET", d.url+"/platforms/gtx480/predict?codelet=dgemm&size=1024", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d: %s", resp.StatusCode, body)
	}
	var predBefore struct {
		Seconds float64 `json:"seconds"`
		Samples int     `json:"samples"`
	}
	json.Unmarshal(body, &predBefore)
	versionBefore := d.reg.Version()

	// Hard stop: no compaction, no graceful anything — journal only.
	d.persist.Close()

	d2 := newDurableServer(t, dir)
	if got := d2.reg.Version(); got != versionBefore {
		t.Fatalf("restarted version = %d, want %d", got, versionBefore)
	}
	resp, body = doReq(t, "GET", d2.url+"/platforms/gtx480", nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET after restart = %d (etag drifted): %s", resp.StatusCode, body)
	}
	resp, body = doReq(t, "GET", d2.url+"/platforms/gtx480/predict?codelet=dgemm&size=1024", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after restart = %d: %s", resp.StatusCode, body)
	}
	var predAfter struct {
		Seconds float64 `json:"seconds"`
		Samples int     `json:"samples"`
	}
	json.Unmarshal(body, &predAfter)
	if predAfter != predBefore {
		t.Fatalf("prediction drifted across restart: %+v vs %+v", predAfter, predBefore)
	}

	// Healthz reports the journal block with the replayed history.
	resp, body = doReq(t, "GET", d2.url+"/healthz", nil, nil)
	var hz struct {
		Status  string                 `json:"status"`
		Journal registry.PersistHealth `json:"journal"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz: %v: %s", err, body)
	}
	if hz.Status != "ok" || hz.Journal.Mode != "durable" || hz.Journal.ReplayedRecords == 0 {
		t.Fatalf("healthz journal block = %+v", hz)
	}
}

// TestJournalFailureGives503AndReadsKeepWorking drives the degradation
// contract over HTTP: after a journal write failure, every mutation gets
// 503 + Retry-After, reads still serve, /healthz says degraded, and the
// wal metrics expose the read-only flag.
func TestJournalFailureGives503AndReadsKeepWorking(t *testing.T) {
	d := newDurableServer(t, t.TempDir())
	resp, body := doReq(t, "PUT", d.url+"/platforms/gtx480", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("put status = %d: %s", resp.StatusCode, body)
	}

	d.persist.SimulateJournalFailure()

	// The failing append happens on the next mutation...
	resp, body = doReq(t, "PUT", d.url+"/platforms/other", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mutation during failure = %d (Retry-After %q): %s",
			resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if _, ok := d.reg.Get("other"); ok {
		t.Fatal("failed mutation leaked into the store")
	}
	// ...and every subsequent mutation is rejected up front by the wrap
	// gate, across all mutating routes.
	for _, m := range []struct{ method, path, payload string }{
		{"PUT", "/platforms/another", string(gtx480XML(t))},
		{"DELETE", "/platforms/gtx480", ""},
		{"POST", "/platforms/gtx480/observe", `{"codelet":"dgemm","size":64,"seconds":0.01}`},
	} {
		var p []byte
		if m.payload != "" {
			p = []byte(m.payload)
		}
		resp, body = doReq(t, m.method, d.url+m.path, p, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during read-only = %d: %s", m.method, m.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s: missing Retry-After", m.method, m.path)
		}
	}

	// Reads keep working on the consistent in-memory state.
	for _, path := range []string{"/platforms", "/platforms/gtx480", "/platforms/gtx480/pus?kind=worker", "/metrics"} {
		resp, body = doReq(t, "GET", d.url+path, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s during read-only = %d: %s", path, resp.StatusCode, body)
		}
	}

	// Health and metrics surface the degradation.
	resp, body = doReq(t, "GET", d.url+"/healthz", nil, nil)
	var hz struct {
		Status  string                 `json:"status"`
		Journal registry.PersistHealth `json:"journal"`
	}
	json.Unmarshal(body, &hz)
	if hz.Status != "degraded" || !hz.Journal.ReadOnly || hz.Journal.LastError == "" {
		t.Fatalf("healthz during read-only = %+v", hz)
	}
	_, metricsBody := doReq(t, "GET", d.url+"/metrics", nil, nil)
	for _, want := range []string{
		"pdlserved_wal_read_only 1",
		"pdlserved_wal_append_errors_total 1",
		"pdlserved_readonly_rejected_total 3",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestWALMetricsExposed asserts the pdlserved_wal_* families render on a
// healthy durable server, including the fsync histogram wiring.
func TestWALMetricsExposed(t *testing.T) {
	d := newDurableServer(t, t.TempDir())
	doReq(t, "PUT", d.url+"/platforms/gtx480", gtx480XML(t), nil)
	_, body := doReq(t, "GET", d.url+"/metrics", nil, nil)
	for _, family := range []string{
		"pdlserved_wal_appends_total 1",
		"pdlserved_wal_replayed_records_total 0",
		"pdlserved_wal_torn_tails_total 0",
		"pdlserved_wal_journal_bytes",
		"pdlserved_wal_journal_records 1",
		"pdlserved_wal_snapshot_age_seconds",
		"pdlserved_wal_fsync_seconds_bucket",
		"pdlserved_wal_read_only 0",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("metrics missing %q", family)
		}
	}
}

// TestDuplicateUploadJournalsNothing pins the dedupe interaction: an
// identical re-upload must not grow the journal (replay stays cheap and
// ETag-stable).
func TestDuplicateUploadJournalsNothing(t *testing.T) {
	d := newDurableServer(t, t.TempDir())
	doReq(t, "PUT", d.url+"/platforms/gtx480", gtx480XML(t), nil)
	size := d.persist.JournalSize()
	resp, body := doReq(t, "PUT", d.url+"/platforms/gtx480", gtx480XML(t), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status = %d: %s", resp.StatusCode, body)
	}
	if got := d.persist.JournalSize(); got != size {
		t.Fatalf("identical re-upload grew journal %d -> %d bytes", size, got)
	}
}
