// Package server exposes the platform registry over HTTP: upload+validate
// of PDL XML, the query DSL shared with cmd/pdlquery, perfmodel-backed
// prediction and variant ranking, plus health and Prometheus-style metrics.
// The paper positions the PDL next to hwloc and the OpenCL platform query
// API; pdlserved is that query API lifted out of process, so runtimes,
// auto-tuners and remote workers consult one authoritative descriptor store
// instead of each re-parsing XML from disk.
//
// Production posture: bounded request bodies, per-client token-bucket rate
// limiting, structured JSON access logs, bounded-cardinality metrics keyed
// by route pattern, and handlers that evaluate queries against immutable
// registry snapshots so no request ever blocks an upload (or vice versa)
// beyond the map swap itself.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/query"
	"repro/internal/registry"
	"repro/internal/repo"
	"repro/internal/trace"
)

// Config wires the server's dependencies and limits.
type Config struct {
	Registry *registry.Registry // required
	Tuner    *predict.Tuner     // optional; NewTuner when nil
	Repo     *repo.Repository   // optional; NewWithLibrary when nil

	// Persist is the durability layer. When set, every mutation (platform
	// PUT/DELETE, observation) is write-ahead journaled before it is
	// applied, a journal-write failure degrades the server to read-only
	// (mutations answer 503 + Retry-After while reads keep working), and
	// /healthz + /metrics surface the journal state. Nil keeps the PR 3
	// in-memory behaviour.
	Persist *registry.Persistence

	MaxBodyBytes int64   // upload size cap; default 4 MiB
	RateLimit    float64 // requests/second per client; <= 0 disables
	RateBurst    float64 // bucket capacity; default 2*RateLimit (min 1)

	// WorkerTTL is the lease lifetime for registered cluster workers;
	// DefaultWorkerTTL when zero.
	WorkerTTL time.Duration

	AccessLog io.Writer // JSON lines; nil disables

	// RuntimeMetrics is rendered on /metrics after the server's own
	// families; nil takes metrics.Default, where the task runtime registers
	// its taskrt_* instruments.
	RuntimeMetrics *metrics.Registry
}

// Server is the HTTP facade over the registry.
type Server struct {
	cfg     Config
	reg     *registry.Registry
	tuner   *predict.Tuner
	repo    *repo.Repository
	persist *registry.Persistence // nil = in-memory only
	metrics *serverMetrics
	limiter *rateLimiter
	logger  *accessLogger
	mux     *http.ServeMux

	workers  *workerTable
	fleet    *metrics.Federator
	draining atomic.Bool
}

// BeginDrain flips the server into drain mode: new worker registrations and
// heartbeat renewals answer 503 so the fleet fails over promptly, while
// reads and in-flight requests complete normally. Called by pdlserved ahead
// of http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// New builds a Server. The zero limits get production defaults.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = registry.New()
	}
	if cfg.Tuner == nil {
		cfg.Tuner = predict.NewTuner()
	}
	if cfg.Repo == nil {
		cfg.Repo = repo.NewWithLibrary()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 2 * cfg.RateLimit
	}
	if cfg.RuntimeMetrics == nil {
		cfg.RuntimeMetrics = metrics.Default
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		tuner:   cfg.Tuner,
		repo:    cfg.Repo,
		persist: cfg.Persist,
		metrics: newMetrics(),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		logger:  &accessLogger{w: cfg.AccessLog},
		mux:     http.NewServeMux(),
		workers: newWorkerTable(cfg.WorkerTTL),
		fleet:   metrics.NewFederator(),
	}
	s.metrics.registerGauges(s)
	if s.persist != nil {
		s.metrics.registerWAL(s.persist)
	}
	s.routes()
	return s
}

// route registers a pattern with the full middleware chain; the pattern
// (not the raw path) keys the metrics, keeping label cardinality bounded.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.wrap(pattern, h))
}

func (s *Server) routes() {
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /platforms", s.handleList)
	s.route("PUT /platforms/{name}", s.handlePut)
	s.route("GET /platforms/{name}", s.handleGetXML)
	s.route("DELETE /platforms/{name}", s.handleDelete)
	s.route("GET /platforms/{name}/pus", s.handleQuery)
	s.route("GET /platforms/{name}/predict", s.handlePredict)
	s.route("GET /platforms/{name}/rank", s.handleRank)
	s.route("POST /platforms/{name}/observe", s.handleObserve)
	s.route("GET /workers", s.handleWorkerList)
	s.route("POST /workers/{id}", s.handleWorkerPut)
	s.route("POST /workers/{id}/heartbeat", s.handleWorkerBeat)
	s.route("DELETE /workers/{id}", s.handleWorkerDelete)
	s.route("GET /debug/trace", s.handleDebugTrace)
}

// Handler returns the root handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// wrap applies rate limiting, body bounding, metrics and access logging.
func (s *Server) wrap(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		client := clientKey(r)

		s.metrics.inflight.Inc()
		defer s.metrics.inflight.Dec()

		if !s.limiter.allow(client) {
			s.metrics.rateLimited.Inc()
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusTooManyRequests, "rate limit exceeded")
		} else if s.readOnlyRejects(r) {
			// The durability layer has degraded: nothing further can be
			// made durable, so mutations are refused while reads (GET
			// /platforms, queries, predictions, metrics) keep serving from
			// the consistent in-memory state.
			s.metrics.readOnlyRejected.Inc()
			sw.Header().Set("Retry-After", "30")
			writeError(sw, http.StatusServiceUnavailable,
				"registry is read-only: journal write failed; mutations are not accepted")
		} else {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			h(sw, r)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		s.metrics.observe(r.Method, pattern, sw.status, dur)
		s.logger.log(accessRecord{
			Time:   start.UTC().Format(time.RFC3339Nano),
			Client: client,
			Method: r.Method,
			Path:   r.URL.Path,
			Status: sw.status,
			Bytes:  sw.bytes,
			Millis: float64(dur.Microseconds()) / 1000,
			Route:  pattern,
		})
	})
}

// readOnlyRejects reports whether the request is a mutation arriving while
// the durability layer is degraded.
func (s *Server) readOnlyRejects(r *http.Request) bool {
	if s.persist == nil || !s.persist.ReadOnly() {
		return false
	}
	return r.Method != http.MethodGet && r.Method != http.MethodHead
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error    string   `json:"error"`
	Problems []string `json:"problems,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string, problems ...string) {
	writeJSON(w, code, errorBody{Error: msg, Problems: problems})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":    "ok",
		"platforms": s.reg.Len(),
		"version":   s.reg.Version(),
	}
	if s.persist != nil {
		h := s.persist.Health()
		body["journal"] = h
		if h.ReadOnly {
			body["status"] = "degraded"
		}
	} else {
		body["journal"] = map[string]string{"mode": "memory"}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.reg.WritePrometheus(&b)
	if s.cfg.RuntimeMetrics != nil {
		// The runtime layer: taskrt_* families registered in the shared
		// registry, so one scrape covers HTTP service and task runtime.
		s.cfg.RuntimeMetrics.WritePrometheus(&b)
	}
	// The fleet layer: node-labelled taskrt_fleet_* families re-exported
	// from the most recent scrape of every leased worker, so one endpoint
	// shows kernel latency and cache state across the whole cluster.
	s.fleet.WritePrometheus(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// handleDebugTrace serves the most recently published execution trace in
// Chrome trace_event JSON (default, loadable in Perfetto) or JSONL
// (?format=jsonl) — the HTTP face of the causal span layer.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := trace.Published()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace has been recorded in this process")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChrome(w); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := tr.WriteJSONL(w); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown trace format %q (want chrome or jsonl)", format))
	}
}

// platformInfo is the JSON projection of a registry entry (sans document).
type platformInfo struct {
	Name     string   `json:"name"`
	Platform string   `json:"platform"` // the document's own name attribute
	ETag     string   `json:"etag"`
	Revision uint64   `json:"revision"`
	Units    int      `json:"units"`
	Warnings []string `json:"warnings,omitempty"`
}

func infoOf(e *registry.Entry) platformInfo {
	return platformInfo{
		Name:     e.Name,
		Platform: e.Platform.Name,
		ETag:     e.ETag,
		Revision: e.Revision,
		Units:    e.Platform.TotalUnits(),
		Warnings: e.Warnings,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]platformInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, infoOf(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"platforms": out, "version": s.reg.Version()})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.bodyTooBig.Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	prepared, err := s.reg.Prepare(name, body)
	if err != nil {
		if ve, ok := registry.AsValidationError(err); ok {
			writeError(w, http.StatusUnprocessableEntity, "platform failed validation", ve.Problems...)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var (
		entry   *registry.Entry
		changed bool
	)
	if cur, ok := s.reg.Get(name); ok && cur.ETag == prepared.ETag() {
		// Content-hash dedupe: nothing would change, so nothing is
		// journaled — re-uploads of identical documents stay free.
		entry, changed = cur, false
	} else if s.persist != nil {
		// Write-ahead ordering: the canonical document reaches the journal
		// (and disk, under -fsync) before the in-memory commit publishes
		// it. A journal failure means the mutation is not acknowledged.
		err := s.persist.LogPut(name, prepared.XML(), func() {
			entry, changed = s.reg.CommitPrepared(prepared)
		})
		if err != nil {
			writeJournalError(w, err)
			return
		}
	} else {
		entry, changed = s.reg.CommitPrepared(prepared)
	}
	w.Header().Set("ETag", entry.ETag)
	code := http.StatusOK
	if changed && entry.Revision == 1 {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{
		"platform": infoOf(entry),
		"changed":  changed,
		"version":  s.reg.Version(),
	})
}

func (s *Server) handleGetXML(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown platform")
		return
	}
	w.Header().Set("ETag", e.ETag)
	if match := r.Header.Get("If-None-Match"); ifNoneMatchHits(match, e.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(e.XML)
}

// ifNoneMatchHits implements the strong-comparison subset of RFC 9110
// If-None-Match: a comma-separated list of entity tags, or "*".
func ifNoneMatchHits(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, tag := range strings.Split(header, ",") {
		if strings.TrimSpace(tag) == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.reg.Get(name); !ok {
		writeError(w, http.StatusNotFound, "unknown platform")
		return
	}
	if s.persist != nil {
		err := s.persist.LogDelete(name, func() { s.reg.Delete(name) })
		if err != nil {
			writeJournalError(w, err)
			return
		}
	} else {
		s.reg.Delete(name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "version": s.reg.Version()})
}

// writeJournalError maps a durability-layer failure to 503 + Retry-After:
// the mutation was refused (or could not be made durable) and the client
// should retry against a healthy replica or after operator intervention.
func writeJournalError(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "30")
	writeError(w, http.StatusServiceUnavailable, err.Error())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	filters, err := query.ParseFilters(r.URL.Query())
	if err != nil {
		if fe, ok := query.AsFilterError(err); ok {
			writeError(w, http.StatusBadRequest, "invalid query", fe.Problems...)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	views, cached, err := s.reg.Query(name, filters)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown platform") {
			code = http.StatusNotFound
		}
		writeError(w, code, err.Error())
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"platform": name,
		"query":    filters.CacheKey(),
		"count":    len(views),
		"pus":      views,
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown platform")
		return
	}
	codelet := r.URL.Query().Get("codelet")
	sizeStr := r.URL.Query().Get("size")
	if codelet == "" || sizeStr == "" {
		writeError(w, http.StatusBadRequest, "codelet and size query parameters are required")
		return
	}
	size, err := strconv.ParseFloat(sizeStr, 64)
	if err != nil || size <= 0 {
		writeError(w, http.StatusBadRequest, "size must be a positive number")
		return
	}
	pred, err := s.tuner.Predict(e.Platform, codelet, size)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"codelet": pred.Codelet,
		"pattern": pred.Pattern,
		"seconds": pred.Seconds,
		"samples": pred.Samples,
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown platform")
		return
	}
	iface := r.URL.Query().Get("iface")
	sizeStr := r.URL.Query().Get("size")
	if iface == "" || sizeStr == "" {
		writeError(w, http.StatusBadRequest, "iface and size query parameters are required")
		return
	}
	size, err := strconv.ParseFloat(sizeStr, 64)
	if err != nil || size <= 0 {
		writeError(w, http.StatusBadRequest, "size must be a positive number")
		return
	}
	ranked, err := s.tuner.RankVariants(s.repo, iface, e.Platform, size)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	type rankedOut struct {
		Variant string  `json:"variant"`
		Seconds float64 `json:"seconds,omitempty"`
		Pattern string  `json:"pattern,omitempty"`
		Error   string  `json:"error,omitempty"`
	}
	out := make([]rankedOut, 0, len(ranked))
	for _, rk := range ranked {
		ro := rankedOut{Variant: rk.Variant.Name}
		if rk.Err != nil {
			ro.Error = rk.Err.Error()
		} else {
			ro.Seconds = rk.Prediction.Seconds
			ro.Pattern = rk.Prediction.Pattern
		}
		out = append(out, ro)
	}
	writeJSON(w, http.StatusOK, map[string]any{"iface": iface, "ranked": out})
}

// observation is the POST /platforms/{name}/observe payload.
type observation struct {
	Codelet string  `json:"codelet"`
	Size    float64 `json:"size"`
	Seconds float64 `json:"seconds"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown platform")
		return
	}
	var obs observation
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obs); err != nil {
		writeError(w, http.StatusBadRequest, "decoding observation: "+err.Error())
		return
	}
	if obs.Codelet == "" || obs.Size <= 0 || obs.Seconds <= 0 {
		writeError(w, http.StatusBadRequest, "observation needs codelet, positive size and positive seconds")
		return
	}
	if s.persist != nil {
		// Validate before journaling (an unattributable observation must
		// never be written ahead), then journal, then record.
		if err := s.tuner.CheckObservable(e.Platform); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		var obsErr error
		err := s.persist.LogObserve(e.Name, obs.Codelet, obs.Size, obs.Seconds, func() {
			obsErr = s.tuner.Observe(e.Platform, obs.Codelet, obs.Size, obs.Seconds)
		})
		if err != nil {
			writeJournalError(w, err)
			return
		}
		if obsErr != nil {
			writeError(w, http.StatusUnprocessableEntity, obsErr.Error())
			return
		}
	} else if err := s.tuner.Observe(e.Platform, obs.Codelet, obs.Size, obs.Seconds); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"recorded": true})
}
